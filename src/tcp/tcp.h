// TCP NewReno sender (the paper's "TCP" baseline).
//
// Slow start / congestion avoidance on a byte-granularity cwnd, fast
// retransmit + NewReno recovery with window inflation, multiplicative
// backoff on RTO. Loss-driven only; ECN bits are ignored.

#ifndef SRC_TCP_TCP_H_
#define SRC_TCP_TCP_H_

#include "src/transport/reliable_sender.h"

namespace tfc {

struct TcpConfig {
  TransportConfig transport;
  double initial_cwnd_segments = 3.0;  // Linux 2.6.38-era IW
  double min_cwnd_segments = 1.0;
};

class TcpSender : public ReliableSender {
 public:
  TcpSender(Network* network, Host* local, Host* remote, const TcpConfig& config);

  double cwnd_bytes() const { return cwnd_; }
  double ssthresh_bytes() const { return ssthresh_; }

 protected:
  bool CanSendMore(Bytes inflight_payload) const override;
  void OnAckedData(const Packet& ack, Bytes newly_acked) override;
  void OnDuplicateAck() override;
  void OnEnterRecovery(Bytes flight_size) override;
  void OnPartialAck(Bytes newly_acked) override;
  void OnExitRecovery() override;
  void OnRetransmitTimeout() override;

  // Additive/multiplicative pieces exposed so DCTCP can reuse them.
  void GrowWindow(Bytes newly_acked);
  double mss() const { return static_cast<double>(transport_config().mss); }
  double min_cwnd() const { return config_.min_cwnd_segments * mss(); }
  void set_cwnd(double cwnd) { cwnd_ = std::max(cwnd, min_cwnd()); }
  void set_ssthresh(double v) { ssthresh_ = v; }

 private:
  TcpConfig config_;
  double cwnd_;
  double ssthresh_;
};

}  // namespace tfc

#endif  // SRC_TCP_TCP_H_
