#include "src/tcp/tcp.h"

#include <algorithm>

namespace tfc {

TcpSender::TcpSender(Network* network, Host* local, Host* remote, const TcpConfig& config)
    : ReliableSender(network, local, remote, config.transport),
      config_(config),
      cwnd_(config.initial_cwnd_segments * mss()),
      ssthresh_(static_cast<double>(config.transport.receive_window)) {
  InitializeReceiver();
  metrics_.AddCallbackGauge(metric_prefix() + ".cwnd_bytes", [this] { return cwnd_; });
  metrics_.AddCallbackGauge(metric_prefix() + ".ssthresh_bytes",
                            [this] { return ssthresh_; });
}

bool TcpSender::CanSendMore(Bytes inflight_payload) const {
  return static_cast<double>(inflight_payload) < cwnd_;
}

void TcpSender::GrowWindow(Bytes newly_acked) {
  // Appropriate Byte Counting (RFC 3465, L = 2): a single cumulative ACK
  // covering many segments must not grow the window as if each segment had
  // been acknowledged separately.
  const double acked = std::min(static_cast<double>(newly_acked), 2.0 * mss());
  if (cwnd_ < ssthresh_) {
    // Slow start: one MSS per MSS acknowledged (byte counting).
    cwnd_ += acked;
    cwnd_ = std::min(cwnd_, ssthresh_ + mss());
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    cwnd_ += mss() * acked / cwnd_;
  }
}

void TcpSender::OnAckedData(const Packet& ack, Bytes newly_acked) {
  (void)ack;
  GrowWindow(newly_acked);
}

void TcpSender::OnDuplicateAck() {
  // Window inflation during fast recovery: each dup ACK signals a departed
  // segment, so allow one more into the pipe.
  cwnd_ += mss();
}

void TcpSender::OnEnterRecovery(Bytes flight_size) {
  ssthresh_ = std::max(static_cast<double>(flight_size) / 2.0, 2.0 * mss());
  cwnd_ = ssthresh_ + 3.0 * mss();
}

void TcpSender::OnPartialAck(Bytes newly_acked) {
  // NewReno deflation: remove the acked data from the inflated window, then
  // allow one new segment.
  cwnd_ = std::max(min_cwnd(), cwnd_ - static_cast<double>(newly_acked) + mss());
}

void TcpSender::OnExitRecovery() { cwnd_ = std::max(ssthresh_, min_cwnd()); }

void TcpSender::OnRetransmitTimeout() {
  ssthresh_ = std::max(static_cast<double>(inflight_bytes()) / 2.0, 2.0 * mss());
  cwnd_ = min_cwnd();
}

}  // namespace tfc
