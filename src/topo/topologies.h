// Topology builders for every scenario in the paper's evaluation.
//
// All builders leave routing unbuilt until the caller finishes adding any
// extra links; call net.BuildRoutes() (the builders do it for you unless
// noted). Hosts are returned in declaration order matching the paper's
// figures.

#ifndef SRC_TOPO_TOPOLOGIES_H_
#define SRC_TOPO_TOPOLOGIES_H_

#include <vector>

#include "src/net/network.h"

namespace tfc {

// Paper Fig. 4: the NetFPGA testbed. NF0 is the root; NF1..NF3 each connect
// three hosts. All links 1 Gbps. hosts[i] is H(i+1) in the paper; NF1 hosts
// H1-H3, NF2 hosts H4-H6, NF3 hosts H7-H9.
struct TestbedTopology {
  std::vector<Host*> hosts;     // H1..H9
  std::vector<Switch*> switches;  // NF0..NF3
};
TestbedTopology BuildTestbed(Network& net, const LinkOptions& opts = LinkOptions(),
                             BitsPerSec bps = kGbps, TimeNs link_delay = Microseconds(5));

// Paper Fig. 5: work-conserving scenario. Host 1 -- S1 -- S2 -- {2, 3, 4}.
// Bottleneck A: S1->S2 uplink; bottleneck B: S2->host3 downlink.
struct MultiBottleneckTopology {
  Host* h1;
  Host* h2;
  Host* h3;
  Host* h4;
  Switch* s1;
  Switch* s2;
};
MultiBottleneckTopology BuildMultiBottleneck(Network& net,
                                             const LinkOptions& opts = LinkOptions(),
                                             BitsPerSec bps = kGbps,
                                             TimeNs link_delay = Microseconds(5));

// Single-switch star: n hosts on one switch — the incast micro-topology
// (paper Sec. 6.2.1 uses this shape at 10 Gbps with 512 KB buffers).
struct StarTopology {
  std::vector<Host*> hosts;
  Switch* sw;
};
StarTopology BuildStar(Network& net, int num_hosts, const LinkOptions& opts = LinkOptions(),
                       BitsPerSec bps = kGbps, TimeNs link_delay = Microseconds(5));

// Paper Sec. 6.2.2: two-tier tree for the large-scale benchmark — `racks`
// leaf switches, each with `hosts_per_rack` servers on 1 Gbps downlinks and
// one 10 Gbps uplink to a single top switch. Per the paper each link's
// latency is 20 µs (4-hop RTT 160 µs, 2-hop RTT 80 µs).
struct LeafSpineTopology {
  std::vector<std::vector<Host*>> racks;  // racks[r][i]
  std::vector<Switch*> leaves;
  Switch* spine;
  std::vector<Host*> all_hosts;  // flattened, rack-major
};
LeafSpineTopology BuildLeafSpine(Network& net, int racks, int hosts_per_rack,
                                 const LinkOptions& opts = LinkOptions(),
                                 BitsPerSec host_bps = kGbps, BitsPerSec uplink_bps = 10 * kGbps,
                                 TimeNs link_delay = Microseconds(20));

// Three-tier k-ary fat tree (Al-Fares et al., referenced by the paper as
// the canonical multi-rooted multi-path topology). k must be even:
// k pods x (k/2 edge + k/2 aggregation switches), (k/2)^2 core switches,
// (k/2)^2 hosts per pod — k=4 gives 16 hosts / 20 switches. Every
// inter-pod host pair has (k/2)^2 equal-cost paths, exercised by the
// switches' per-flow ECMP.
struct FatTreeTopology {
  int k = 0;
  std::vector<Host*> hosts;                    // pod-major order
  std::vector<std::vector<Switch*>> edges;     // [pod][i]
  std::vector<std::vector<Switch*>> aggs;      // [pod][i]
  std::vector<Switch*> cores;

  Host* host(int pod, int index) const {
    return hosts.at(static_cast<size_t>(pod * (k / 2) * (k / 2) + index));
  }
};
FatTreeTopology BuildFatTree(Network& net, int k, const LinkOptions& opts = LinkOptions(),
                             BitsPerSec bps = kGbps, TimeNs link_delay = Microseconds(5));

}  // namespace tfc

#endif  // SRC_TOPO_TOPOLOGIES_H_
