#include "src/topo/topologies.h"

#include <string>

#include "src/sim/check.h"

namespace tfc {

TestbedTopology BuildTestbed(Network& net, const LinkOptions& opts, BitsPerSec bps,
                             TimeNs link_delay) {
  TestbedTopology topo;
  for (int i = 0; i < 4; ++i) {
    topo.switches.push_back(net.AddSwitch("NF" + std::to_string(i)));
  }
  for (int i = 0; i < 9; ++i) {
    topo.hosts.push_back(net.AddHost("H" + std::to_string(i + 1)));
  }
  // Leaf switches hang off the root.
  for (int i = 1; i <= 3; ++i) {
    net.Link(topo.switches[0], topo.switches[static_cast<size_t>(i)], bps, link_delay, opts);
  }
  // Three hosts per leaf: H1-H3 on NF1, H4-H6 on NF2, H7-H9 on NF3.
  for (int i = 0; i < 9; ++i) {
    net.Link(topo.switches[static_cast<size_t>(1 + i / 3)], topo.hosts[static_cast<size_t>(i)],
             bps, link_delay, opts);
  }
  net.BuildRoutes();
  return topo;
}

MultiBottleneckTopology BuildMultiBottleneck(Network& net, const LinkOptions& opts,
                                             BitsPerSec bps, TimeNs link_delay) {
  MultiBottleneckTopology topo;
  topo.s1 = net.AddSwitch("S1");
  topo.s2 = net.AddSwitch("S2");
  topo.h1 = net.AddHost("h1");
  topo.h2 = net.AddHost("h2");
  topo.h3 = net.AddHost("h3");
  topo.h4 = net.AddHost("h4");
  net.Link(topo.h1, topo.s1, bps, link_delay, opts);
  net.Link(topo.s1, topo.s2, bps, link_delay, opts);
  net.Link(topo.h2, topo.s2, bps, link_delay, opts);
  net.Link(topo.h3, topo.s2, bps, link_delay, opts);
  net.Link(topo.h4, topo.s2, bps, link_delay, opts);
  net.BuildRoutes();
  return topo;
}

StarTopology BuildStar(Network& net, int num_hosts, const LinkOptions& opts, BitsPerSec bps,
                       TimeNs link_delay) {
  StarTopology topo;
  topo.sw = net.AddSwitch("S");
  for (int i = 0; i < num_hosts; ++i) {
    Host* h = net.AddHost("h" + std::to_string(i));
    net.Link(h, topo.sw, bps, link_delay, opts);
    topo.hosts.push_back(h);
  }
  net.BuildRoutes();
  return topo;
}

LeafSpineTopology BuildLeafSpine(Network& net, int racks, int hosts_per_rack,
                                 const LinkOptions& opts, BitsPerSec host_bps,
                                 BitsPerSec uplink_bps, TimeNs link_delay) {
  LeafSpineTopology topo;
  topo.spine = net.AddSwitch("spine");
  for (int r = 0; r < racks; ++r) {
    Switch* leaf = net.AddSwitch("leaf" + std::to_string(r));
    net.Link(leaf, topo.spine, uplink_bps, link_delay, opts);
    topo.leaves.push_back(leaf);
    std::vector<Host*> rack_hosts;
    for (int i = 0; i < hosts_per_rack; ++i) {
      Host* h = net.AddHost("h" + std::to_string(r) + "_" + std::to_string(i));
      net.Link(leaf, h, host_bps, link_delay, opts);
      rack_hosts.push_back(h);
      topo.all_hosts.push_back(h);
    }
    topo.racks.push_back(std::move(rack_hosts));
  }
  net.BuildRoutes();
  return topo;
}

FatTreeTopology BuildFatTree(Network& net, int k, const LinkOptions& opts, BitsPerSec bps,
                             TimeNs link_delay) {
  TFC_CHECK(k >= 2 && k % 2 == 0);
  const int half = k / 2;
  FatTreeTopology topo;
  topo.k = k;

  // Core layer: (k/2)^2 switches arranged as half groups of half.
  for (int i = 0; i < half * half; ++i) {
    topo.cores.push_back(net.AddSwitch("core" + std::to_string(i)));
  }

  for (int pod = 0; pod < k; ++pod) {
    std::vector<Switch*> edge_row;
    std::vector<Switch*> agg_row;
    for (int i = 0; i < half; ++i) {
      edge_row.push_back(
          net.AddSwitch("edge" + std::to_string(pod) + "_" + std::to_string(i)));
      agg_row.push_back(
          net.AddSwitch("agg" + std::to_string(pod) + "_" + std::to_string(i)));
    }
    // Full bipartite edge <-> aggregation mesh within the pod.
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        net.Link(edge_row[static_cast<size_t>(e)], agg_row[static_cast<size_t>(a)], bps,
                 link_delay, opts);
      }
    }
    // Aggregation switch a connects to core group a (cores a*half .. a*half+half-1).
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        net.Link(agg_row[static_cast<size_t>(a)],
                 topo.cores[static_cast<size_t>(a * half + c)], bps, link_delay, opts);
      }
    }
    // Hosts: half per edge switch.
    for (int e = 0; e < half; ++e) {
      for (int h = 0; h < half; ++h) {
        Host* host = net.AddHost("h" + std::to_string(pod) + "_" + std::to_string(e) +
                                 "_" + std::to_string(h));
        net.Link(edge_row[static_cast<size_t>(e)], host, bps, link_delay, opts);
        topo.hosts.push_back(host);
      }
    }
    topo.edges.push_back(std::move(edge_row));
    topo.aggs.push_back(std::move(agg_row));
  }
  net.BuildRoutes();
  return topo;
}

}  // namespace tfc
