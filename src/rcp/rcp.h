// RCP — Rate Control Protocol (Dukkipati et al., "Processor Sharing Flows
// in the Internet", IWQoS 2005). One of the explicit protocols the TFC
// paper positions itself against (Sec. 7): routers compute a single fair
// rate per link from aggregate measurements and stamp it into packets, so
// no per-flow state is needed — but the rate evolves through a control
// loop over many control intervals, which is why RCP converges slowly
// compared to TFC's one-slot allocation, and why flow joins eat buffer.
//
// Router update (per control interval T ~= d-hat, the average RTT):
//     R <- R * (1 + (T/d-hat) * (alpha*(C - y) - beta*q/d-hat) / C)
// where y is the measured input rate and q the queue. Senders translate
// the stamped rate into a window R * rtt (rate-based window emulation).

#ifndef SRC_RCP_RCP_H_
#define SRC_RCP_RCP_H_

#include <memory>

#include "src/net/port.h"
#include "src/net/switch.h"
#include "src/sim/timer.h"
#include "src/transport/reliable_sender.h"

namespace tfc {

struct RcpSwitchConfig {
  double alpha = 0.4;
  double beta = 0.226;
  // Initial fair-rate guess as a fraction of the link (RCP typically starts
  // at C/N0 for an operator-chosen N0; we start at a modest fraction).
  double initial_rate_fraction = 0.05;
  // Bounds on the advertised rate.
  double min_rate_fraction = 0.001;
  double max_rate_fraction = 1.0;
  // Fallback control interval / d-hat before any RTT hints arrive.
  TimeNs initial_dhat = Microseconds(160);
  // EWMA gain for averaging the RTT hints into d-hat.
  double dhat_gain = 0.02;
};

// Per-egress-port RCP logic.
class RcpPortAgent : public PortAgent {
 public:
  RcpPortAgent(Switch* owner, Port* port, const RcpSwitchConfig& config);

  void OnEgress(Packet& pkt) override;
  bool OnReverse(PacketPtr& pkt) override {
    (void)pkt;
    return true;
  }

  double fair_rate_bps() const { return rate_bps_; }
  TimeNs dhat() const { return dhat_; }

  static RcpPortAgent* FromPort(Port* port);

 private:
  void UpdateRate();

  Port* port_;
  RcpSwitchConfig config_;
  Scheduler* scheduler_;
  double capacity_bps_;
  double rate_bps_;
  TimeNs dhat_;
  uint64_t arrived_bytes_ = 0;
  TimeNs last_update_ = 0;
  Timer update_timer_;
};

// Attaches RCP agents to all switch ports. Returns the number installed.
int InstallRcpSwitches(Network& network, const RcpSwitchConfig& config = RcpSwitchConfig());

struct RcpHostConfig {
  TransportConfig transport;
};

class RcpReceiver : public ReliableReceiver {
 public:
  using ReliableReceiver::ReliableReceiver;

 protected:
  void DecorateAck(const Packet& data, Packet& ack) override {
    ReliableReceiver::DecorateAck(data, ack);
    ack.rate_bps = data.rate_bps;  // echo the path-min fair rate
  }
};

class RcpSender : public ReliableSender {
 public:
  RcpSender(Network* network, Host* local, Host* remote, const RcpHostConfig& config);

  double rate_bps() const { return rate_bps_; }
  double cwnd_bytes() const { return cwnd_; }

 protected:
  bool CanSendMore(Bytes inflight_payload) const override;
  void OnAckHeader(const Packet& ack) override;
  void DecorateData(Packet& pkt, bool retransmission) override;
  std::unique_ptr<ReliableReceiver> MakeReceiver() override;

 private:
  double rate_bps_ = 0.0;
  double cwnd_;  // payload bytes = rate * rtt
};

}  // namespace tfc

#endif  // SRC_RCP_RCP_H_
