#include "src/rcp/rcp.h"

#include <algorithm>

#include "src/net/network.h"
#include "src/sim/check.h"

namespace tfc {

// ---------------------------------------------------------------------------
// Switch side
// ---------------------------------------------------------------------------

RcpPortAgent::RcpPortAgent(Switch* owner, Port* port, const RcpSwitchConfig& config)
    : port_(port),
      config_(config),
      scheduler_(port->scheduler()),
      capacity_bps_(static_cast<double>(port->bps())),
      rate_bps_(config.initial_rate_fraction * capacity_bps_),
      dhat_(config.initial_dhat),
      update_timer_(port->scheduler(), [this] { UpdateRate(); }) {
  (void)owner;
  last_update_ = scheduler_->now();
  update_timer_.RestartAfter(dhat_);
}

RcpPortAgent* RcpPortAgent::FromPort(Port* port) {
  return dynamic_cast<RcpPortAgent*>(port->agent());
}

void RcpPortAgent::OnEgress(Packet& pkt) {
  arrived_bytes_ += pkt.wire_bytes();
  if (!pkt.is_data()) {
    return;
  }
  // Average the carried RTT hints into d-hat.
  if (pkt.rtt_hint > 0) {
    dhat_ = static_cast<TimeNs>((1.0 - config_.dhat_gain) * static_cast<double>(dhat_) +
                                config_.dhat_gain * static_cast<double>(pkt.rtt_hint));
  }
  // Stamp the path-minimum fair rate.
  const uint64_t rate = static_cast<uint64_t>(rate_bps_);
  if (pkt.rate_bps == 0 || rate < pkt.rate_bps) {
    pkt.rate_bps = rate;
  }
}

void RcpPortAgent::UpdateRate() {
  const TimeNs now = scheduler_->now();
  const TimeNs interval = now - last_update_;
  last_update_ = now;
  if (interval > 0) {
    const double y =
        static_cast<double>(arrived_bytes_) * 8.0 / ToSeconds(interval);  // input bps
    const double q_bits = static_cast<double>(port_->queue_bytes()) * 8.0;
    const double dhat_s = ToSeconds(dhat_);
    const double spare = config_.alpha * (capacity_bps_ - y) - config_.beta * q_bits / dhat_s;
    const double gain = ToSeconds(interval) / dhat_s;
    rate_bps_ = rate_bps_ * (1.0 + gain * spare / capacity_bps_);
    rate_bps_ = std::clamp(rate_bps_, config_.min_rate_fraction * capacity_bps_,
                           config_.max_rate_fraction * capacity_bps_);
  }
  arrived_bytes_ = 0;
  update_timer_.RestartAfter(std::max<TimeNs>(dhat_, Microseconds(10)));
}

int InstallRcpSwitches(Network& network, const RcpSwitchConfig& config) {
  int installed = 0;
  for (const auto& node : network.nodes()) {
    auto* sw = dynamic_cast<Switch*>(node.get());
    if (sw == nullptr) {
      continue;
    }
    for (const auto& port : sw->ports()) {
      port->set_agent(std::make_unique<RcpPortAgent>(sw, port.get(), config));
      ++installed;
    }
  }
  return installed;
}

// ---------------------------------------------------------------------------
// Host side
// ---------------------------------------------------------------------------

RcpSender::RcpSender(Network* network, Host* local, Host* remote, const RcpHostConfig& config)
    : ReliableSender(network, local, remote, config.transport),
      cwnd_(static_cast<double>(kMssBytes)) {
  InitializeReceiver();
}

std::unique_ptr<ReliableReceiver> RcpSender::MakeReceiver() {
  return std::make_unique<RcpReceiver>(network(), remote(), flow_id(),
                                       transport_config().receive_window,
                                       transport_config().ack_every,
                                       transport_config().delayed_ack_timeout);
}

bool RcpSender::CanSendMore(Bytes inflight_payload) const {
  return static_cast<double>(inflight_payload) < cwnd_;
}

void RcpSender::OnAckHeader(const Packet& ack) {
  if (ack.rate_bps == 0) {
    return;
  }
  rate_bps_ = static_cast<double>(ack.rate_bps);
  // Rate-to-window translation: R * RTT of payload in flight.
  const TimeNs rtt = srtt() > 0 ? srtt() : Milliseconds(1);
  cwnd_ = std::max(rate_bps_ * ToSeconds(rtt) / 8.0, static_cast<double>(kMssBytes));
}

void RcpSender::DecorateData(Packet& pkt, bool retransmission) {
  (void)retransmission;
  pkt.rtt_hint = srtt();
  pkt.rate_bps = 0;  // filled by the first RCP router on the path
}

}  // namespace tfc
