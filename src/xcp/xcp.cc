#include "src/xcp/xcp.h"

#include <algorithm>
#include <cmath>

#include "src/net/network.h"

namespace tfc {

// ---------------------------------------------------------------------------
// Switch side
// ---------------------------------------------------------------------------

XcpPortAgent::XcpPortAgent(Switch* owner, Port* port, const XcpSwitchConfig& config)
    : port_(port),
      config_(config),
      scheduler_(port->scheduler()),
      capacity_Bps_(static_cast<double>(port->bps()) / 8.0),
      dhat_(config.initial_dhat),
      update_timer_(port->scheduler(), [this] { UpdateControl(); }) {
  (void)owner;
  last_update_ = scheduler_->now();
  update_timer_.RestartAfter(dhat_);
}

XcpPortAgent* XcpPortAgent::FromPort(Port* port) {
  return dynamic_cast<XcpPortAgent*>(port->agent());
}

void XcpPortAgent::OnEgress(Packet& pkt) {
  const double size = pkt.wire_bytes();
  arrived_bytes_ += pkt.wire_bytes();
  if (!pkt.is_data() || pkt.payload == 0) {
    return;
  }
  const double rtt = pkt.rtt_hint > 0 ? ToSeconds(pkt.rtt_hint) : ToSeconds(dhat_);
  const double cwnd = std::max<double>(pkt.cwnd_hint, kMssBytes);

  // Per-interval estimator sums (Katabi Sec. 3.5):
  //   xi_p denominator: sum s_i * rtt_i / cwnd_i   [seconds]
  //   xi_n denominator: sum s_i                    [bytes]
  sum_rtt_per_cwnd_ += size * rtt / cwnd;
  sum_data_bytes_ += size;
  sum_rtt_weighted_ += size * rtt;

  // Feedback for this packet from the *previous* interval's control state.
  const double feedback = xi_p_ * rtt * rtt * size / cwnd - xi_n_ * rtt * size;
  if (!pkt.xcp_feedback_set || feedback < pkt.xcp_feedback) {
    pkt.xcp_feedback = feedback;
    pkt.xcp_feedback_set = true;
  }
}

void XcpPortAgent::UpdateControl() {
  const TimeNs now = scheduler_->now();
  const TimeNs interval = now - last_update_;
  last_update_ = now;

  if (interval > 0 && arrived_bytes_ > 0) {
    const double d = ToSeconds(interval);
    const double y = static_cast<double>(arrived_bytes_) / d;  // input Bps
    const double q = static_cast<double>(port_->queue_bytes());
    const double spare = capacity_Bps_ - y;
    const double phi = config_.alpha * d * spare - config_.beta * q;  // bytes
    const double shuffle = std::max(0.0, config_.gamma * static_cast<double>(arrived_bytes_) -
                                             std::abs(phi));
    const double pos = shuffle + std::max(phi, 0.0);
    const double neg = shuffle + std::max(-phi, 0.0);
    xi_p_ = sum_rtt_per_cwnd_ > 0 ? pos / (d * sum_rtt_per_cwnd_) : 0.0;
    xi_n_ = sum_data_bytes_ > 0 ? neg / (d * sum_data_bytes_) : 0.0;

    // d-hat: byte-weighted mean RTT of the passing traffic.
    const double mean_rtt =
        sum_data_bytes_ > 0 ? sum_rtt_weighted_ / sum_data_bytes_ : 0.0;
    if (mean_rtt > 0) {
      dhat_ = std::max<TimeNs>(Microseconds(10), static_cast<TimeNs>(mean_rtt * 1e9));
    }
  } else if (arrived_bytes_ == 0) {
    // Idle port: zero feedback state so a first packet isn't punished.
    xi_p_ = 0.0;
    xi_n_ = 0.0;
  }

  arrived_bytes_ = 0;
  sum_rtt_per_cwnd_ = 0.0;
  sum_data_bytes_ = 0.0;
  sum_rtt_weighted_ = 0.0;
  update_timer_.RestartAfter(dhat_);
}

int InstallXcpSwitches(Network& network, const XcpSwitchConfig& config) {
  int installed = 0;
  for (const auto& node : network.nodes()) {
    auto* sw = dynamic_cast<Switch*>(node.get());
    if (sw == nullptr) {
      continue;
    }
    for (const auto& port : sw->ports()) {
      port->set_agent(std::make_unique<XcpPortAgent>(sw, port.get(), config));
      ++installed;
    }
  }
  return installed;
}

// ---------------------------------------------------------------------------
// Host side
// ---------------------------------------------------------------------------

XcpSender::XcpSender(Network* network, Host* local, Host* remote, const XcpHostConfig& config)
    : ReliableSender(network, local, remote, config.transport),
      cwnd_(static_cast<double>(kMssBytes)) {
  InitializeReceiver();
}

std::unique_ptr<ReliableReceiver> XcpSender::MakeReceiver() {
  return std::make_unique<XcpReceiver>(network(), remote(), flow_id(),
                                       transport_config().receive_window,
                                       transport_config().ack_every,
                                       transport_config().delayed_ack_timeout);
}

bool XcpSender::CanSendMore(Bytes inflight_payload) const {
  return static_cast<double>(inflight_payload) < cwnd_;
}

void XcpSender::OnAckHeader(const Packet& ack) {
  if (!ack.xcp_feedback_set) {
    return;
  }
  cwnd_ = std::max(cwnd_ + ack.xcp_feedback, static_cast<double>(kMssBytes));
  cwnd_ = std::min(cwnd_, static_cast<double>(transport_config().receive_window));
}

void XcpSender::OnRetransmitTimeout() {
  cwnd_ = static_cast<double>(kMssBytes);  // fall back conservatively on loss
}

void XcpSender::DecorateData(Packet& pkt, bool retransmission) {
  (void)retransmission;
  // cwnd_ is unbounded above by receive_window only; at giant windows the
  // old unguarded double->uint32 cast was UB. Saturate instead.
  pkt.cwnd_hint = SaturatingU32(cwnd_);
  pkt.rtt_hint = srtt();
  pkt.xcp_feedback = 0.0;
  pkt.xcp_feedback_set = false;
}

}  // namespace tfc
