// XCP — eXplicit Control Protocol (Katabi, Handley, Rohrs, SIGCOMM 2002).
// The other explicit baseline the TFC paper positions itself against
// (Sec. 7): routers compute per-packet *window deltas* from an efficiency
// controller (drive spare bandwidth and queue to zero) plus a fairness
// controller (bandwidth shuffling), so windows still *evolve* round by
// round — the slow-convergence behaviour TFC's direct allocation avoids.
//
// Per control interval d (the mean RTT of passing traffic):
//   phi = alpha * d * S - beta * Q        (bytes; S = spare bps, Q = queue)
//   h   = max(0, gamma * y * d - |phi|)   (shuffled traffic for fairness)
//   xi_p = (h + phi+) / (d * sum_i s_i * rtt_i / cwnd_i)
//   xi_n = (h + phi-) / (d * sum_i s_i)
// and each data packet of size s with header (cwnd, rtt) receives
//   feedback = xi_p * rtt^2 * s / cwnd - xi_n * rtt * s.
// Routers keep the minimum (most restrictive) feedback along the path; the
// receiver echoes it; the sender applies cwnd += feedback per ACK.

#ifndef SRC_XCP_XCP_H_
#define SRC_XCP_XCP_H_

#include <memory>

#include "src/net/port.h"
#include "src/net/switch.h"
#include "src/sim/timer.h"
#include "src/transport/reliable_sender.h"

namespace tfc {

struct XcpSwitchConfig {
  double alpha = 0.4;
  double beta = 0.226;
  double gamma = 0.1;
  TimeNs initial_dhat = Microseconds(160);
};

class XcpPortAgent : public PortAgent {
 public:
  XcpPortAgent(Switch* owner, Port* port, const XcpSwitchConfig& config);

  void OnEgress(Packet& pkt) override;
  bool OnReverse(PacketPtr& pkt) override {
    (void)pkt;
    return true;
  }

  double xi_positive() const { return xi_p_; }
  double xi_negative() const { return xi_n_; }
  TimeNs dhat() const { return dhat_; }

  static XcpPortAgent* FromPort(Port* port);

 private:
  void UpdateControl();

  Port* port_;
  XcpSwitchConfig config_;
  Scheduler* scheduler_;
  double capacity_Bps_;  // bytes per second

  // Measured during the current interval.
  uint64_t arrived_bytes_ = 0;
  double sum_rtt_per_cwnd_ = 0.0;     // sum s_i * rtt_i / cwnd_i  (seconds)
  double sum_data_bytes_ = 0.0;       // sum s_i                   (bytes)
  double sum_rtt_weighted_ = 0.0;     // for the d-hat average

  // Control outputs applied during the next interval.
  double xi_p_ = 0.0;
  double xi_n_ = 0.0;
  TimeNs dhat_;
  TimeNs last_update_ = 0;
  Timer update_timer_;
};

int InstallXcpSwitches(Network& network, const XcpSwitchConfig& config = XcpSwitchConfig());

struct XcpHostConfig {
  TransportConfig transport;
};

class XcpReceiver : public ReliableReceiver {
 public:
  using ReliableReceiver::ReliableReceiver;

 protected:
  void DecorateAck(const Packet& data, Packet& ack) override {
    ReliableReceiver::DecorateAck(data, ack);
    ack.xcp_feedback = data.xcp_feedback;
    ack.xcp_feedback_set = data.xcp_feedback_set;
  }
};

class XcpSender : public ReliableSender {
 public:
  XcpSender(Network* network, Host* local, Host* remote, const XcpHostConfig& config);

  double cwnd_bytes() const { return cwnd_; }

 protected:
  bool CanSendMore(Bytes inflight_payload) const override;
  void OnAckHeader(const Packet& ack) override;
  void OnRetransmitTimeout() override;
  void DecorateData(Packet& pkt, bool retransmission) override;
  std::unique_ptr<ReliableReceiver> MakeReceiver() override;

 private:
  double cwnd_;
};

}  // namespace tfc

#endif  // SRC_XCP_XCP_H_
