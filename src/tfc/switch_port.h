// TFC per-port switch logic (paper Fig. 3).
//
// One TfcPortAgent guards one egress port of a switch and implements the
// paper's control-path modules:
//   RTT Timer         — delimiter-flow round marks delimit time slots;
//                       rtt_m = slot length, rtt_b = min full-frame slot
//   N Counter         — counts round-marked (RM) arrivals per slot => E[n]
//   Rho Counter       — accumulates arrival bytes per slot => ρ[n]
//   Token Allocator   — T[n] = c·rtt_b·ρ0/ρ[n], EWMA-smoothed (Eqs. 7–8)
//   Window Calculator — W[n+1] = T[n]/E[n], stamped into data packets
//   Delay Arbiter     — parks RMA ACKs carrying W < MSS until a token-bucket
//                       counter affords one MSS, then upgrades them (Sec. 4.6)
//
// The agent is attached to the port via the net layer's PortAgent interface:
// OnEgress sees every packet entering the port's queue (the data direction);
// OnReverse sees every packet the owning switch receives from this port's
// peer (the direction the data path's ACKs travel).

#ifndef SRC_TFC_SWITCH_PORT_H_
#define SRC_TFC_SWITCH_PORT_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/net/port.h"
#include "src/net/switch.h"
#include "src/sim/audit.h"
#include "src/sim/timer.h"
#include "src/sim/units.h"
#include "src/tfc/config.h"

namespace tfc {

class TfcPortAgent : public PortAgent {
 public:
  TfcPortAgent(Switch* owner, Port* port, const TfcSwitchConfig& config);

  // PortAgent:
  void OnEgress(Packet& pkt) override;
  bool OnReverse(PacketPtr& pkt) override;
  // Fault hook (src/net/fault.h): device reboot. Every protocol register —
  // delimiter, rtt_b epochs, token/window, the arbiter counter and its
  // ledger — reverts to construction values; parked ACKs are switch memory
  // and are handed to the caller for destruction. The agent then
  // re-converges from live traffic exactly like a cold start.
  void WipeState(std::deque<PacketPtr>* lost) override;

  // Observation snapshot emitted at the end of every time slot.
  struct SlotInfo {
    TimeNs end_time;
    TimeNs rtt_m;      // instantaneous slot length
    TimeNs rtt_b;      // running min RTT (no-queueing estimate)
    int effective_flows;  // E[n]
    Ratio rho;         // measured utilization during the slot
    Tokens token;      // T[n] after EWMA + clamps
    Tokens window;     // W[n+1] = T[n]/E[n]
  };
  std::function<void(const SlotInfo&)> on_slot;

  // --- observers (tests, samplers, benches) ---
  TimeNs rtt_b() const { return rttb_; }
  TimeNs rtt_m() const { return rttm_last_; }
  int last_effective_flows() const { return last_E_; }
  Tokens token() const { return token_; }
  Tokens window() const { return window_; }
  // Raw-double views for stats/test assertions (the named escape hatch).
  double token_bytes() const { return token_.value(); }  // lint:allow units
  double window_bytes() const { return window_.value(); }  // lint:allow units
  bool has_window() const { return have_window_; }
  int delimiter_flow() const { return delimiter_flow_; }
  uint64_t slots_completed() const { return slots_completed_; }
  uint64_t delayed_acks() const { return delayed_acks_; }
  size_t delay_queue_length() const { return delay_queue_.size(); }
  uint64_t delimiter_failovers() const { return delimiter_failovers_; }
  uint64_t arbiter_expired() const { return arbiter_expired_; }
  uint64_t state_wipes() const { return state_wipes_; }
  const TfcSwitchConfig& config() const { return config_; }

  // Convenience downcast for a port known to run TFC (null otherwise).
  static TfcPortAgent* FromPort(Port* port);

  // Runtime-auditor hook (registered with the network's AuditRegistry at
  // construction): per-port token conservation — the delay arbiter's
  // byte-exact ledger, counter and token bounds, rtt/slot-state sanity,
  // and parked-ACK queue consistency. See docs/correctness.md.
  void AuditInvariants(Auditor& audit) const;

 private:
  void AdoptDelimiter(const Packet& pkt);
  void EndSlot(const Packet& pkt);
  void StampWindow(Packet& pkt) const;
  void ArmFailover();
  void OnFailoverTimer();

  // Delay arbiter internals.
  void RefillCounter();
  void ScheduleRelease();
  void ReleaseParkedAcks();
  // Expires parked ACKs older than delay_park_timeout (they sit at the
  // queue front: parking order is arrival order).
  void ExpireAgedParkedAcks(TimeNs now);
  // Destroys parked ACKs granting to `flow_id` (its FIN passed the data
  // path: the grant can never be used).
  void PurgeParkedAcks(int flow_id);
  void DropParkedAck(PacketPtr pkt);
  Tokens bdp() const;  // c · rtt_b (fractional bytes)

  Switch* switch_;
  Port* port_;
  TfcSwitchConfig config_;
  Scheduler* scheduler_;
  BitsPerSec link_rate_;  // the guarded port's line rate c

  // Slot / delimiter state.
  int delimiter_flow_ = -1;
  bool delimiter_closed_ = false;
  bool want_new_delimiter_ = true;
  TimeNs slot_start_ = 0;
  TimeNs rttb_;
  TimeNs rttb_epoch_min_;
  TimeNs rttb_prev_epoch_min_;
  uint64_t rttb_epoch_count_ = 0;
  bool rttb_measured_ = false;
  TimeNs rttm_last_ = 0;
  int E_ = 1;
  int synfin_count_ = 0;  // only maintained in FlowCountMode::kSynFin
  Bytes arrived_wire_bytes_ = 0;
  Bytes slot_start_queue_bytes_ = 0;
  int miss_k_ = 0;
  Timer failover_timer_;

  // Allocation state.
  Tokens token_;
  Tokens window_;
  bool have_window_ = false;
  int last_E_ = 0;
  uint64_t slots_completed_ = 0;

  // Delay arbiter state.
  struct ParkedAck {
    PacketPtr pkt;
    TimeNs parked_at;
  };
  Tokens counter_;
  TimeNs counter_refill_time_ = 0;
  std::deque<ParkedAck> delay_queue_;
  Timer release_timer_;
  uint64_t delayed_acks_ = 0;
  uint64_t arbiter_expired_ = 0;  // parked ACKs destroyed (FIN purge + age-out)

  // Resilience statistics.
  uint64_t delimiter_failovers_ = 0;
  uint64_t state_wipes_ = 0;

  // Token-conservation ledger (audited): every token entering or leaving
  // counter_ is recorded, so the auditor can re-derive the counter from the
  // ledger and verify that tokens granted never exceed tokens the allocator
  // made available:
  //   counter == initial + refilled - overflow - debited + forgiven.
  // All entries are Tokens: the dimension check is the point — Bytes of
  // measured traffic only enter through Tokens::FromBytes.
  Tokens counter_initial_;      // the construction-time counter value
  Tokens refilled_total_;       // RefillCounter additions (at rho0 * c)
  Tokens overflow_total_;       // refill discarded at the counter cap
  Tokens debited_total_;        // grants charged (full windows + quanta)
  Tokens forgiven_total_;       // debt discarded at the counter floor
  Tokens counter_floor_lo_;     // lowest debt floor ever applied
  Tokens granted_mss_;          // sub-MSS upgrades admitted (paper Sec. 4.6)

  // Observation state for the auditor.
  Ratio last_rho_ = 0.0;
  Tokens token_bound_hi_;  // the upper clamp applied at the last EndSlot

  // Shared profiler sites ("tfc.release_parked", "tfc.failover").
  ProfileSite* release_site_ = nullptr;
  ProfileSite* failover_site_ = nullptr;

  // Keep these last: registered with Network::audit()/metrics(); their
  // callbacks capture `this`, so they must unregister (and thus be
  // destroyed) before any state the callbacks read.
  // Metric gauges "tfc.<switch>.p<index>.*": the exact signals behind the
  // paper's Figs. 6-8 (token counter, N, rho, rtt_b, parked-ACK queue).
  ScopedMetrics metrics_;
  ScopedAudit audit_registration_;
};

// Attaches a TfcPortAgent to every port of every switch in the network.
// Must run after all links are created. Returns the number of agents.
int InstallTfcSwitches(Network& network, const TfcSwitchConfig& config = TfcSwitchConfig());

}  // namespace tfc

#endif  // SRC_TFC_SWITCH_PORT_H_
