#include "src/tfc/endpoints.h"

#include <algorithm>
#include <cmath>

#include "src/net/network.h"

namespace tfc {

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

void TfcReceiver::DecorateAck(const Packet& data, Packet& ack) {
  ReliableReceiver::DecorateAck(data, ack);
  // Only data-packet round marks carry a switch allocation. A marked SYN is
  // counted by switches but not stamped (the flow takes its window with the
  // acquisition probe instead), so the SYNACK must not echo a window.
  if (data.rm && data.type == PacketType::kData) {
    // Echo the minimum window stamped along the path, bounded by our own
    // advertised window (Sec. 5.3).
    ack.rma = true;
    ack.window = std::min(Bytes(data.window), advertised_window()).ToU32Saturating();
  } else {
    // The window field of non-RMA ACKs carries no allocation.
    ack.window = kWindowInfinite;
  }
}

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

TfcSender::TfcSender(Network* network, Host* local, Host* remote, const TfcHostConfig& config)
    : ReliableSender(network, local, remote, config.transport),
      config_(config),
      probe_timer_(&network->scheduler(), [this] { OnProbeRetryTimer(); }) {
  InitializeReceiver();
  metrics_.AddCallbackGauge(metric_prefix() + ".cwnd_frame_bytes",
                            [this] { return cwnd_frames_; });
  metrics_.AddCallbackGauge(metric_prefix() + ".probes_sent",
                            [this] { return static_cast<double>(probes_sent_); });
  metrics_.AddCallbackGauge(metric_prefix() + ".probe_retries",
                            [this] { return static_cast<double>(probe_retries_); });
}

std::unique_ptr<ReliableReceiver> TfcSender::MakeReceiver() {
  return std::make_unique<TfcReceiver>(network(), remote(), flow_id(),
                                       transport_config().receive_window,
                                       transport_config().ack_every,
                                       transport_config().delayed_ack_timeout);
}

Bytes TfcSender::FrameBytesInFlight(Bytes inflight_payload) const {
  const uint32_t mss = transport_config().mss;
  const int64_t packets = (inflight_payload + (mss - 1)) / Bytes(mss);
  return inflight_payload + packets * kHeaderBytes;
}

bool TfcSender::CanSendMore(Bytes inflight_payload) const {
  if (!have_window_) {
    return false;  // window-acquisition phase: hold data until the RMA
  }
  const Bytes frames = FrameBytesInFlight(inflight_payload);
  return static_cast<double>(frames) < cwnd_frames_;
}

void TfcSender::SendProbe() {
  // Zero-payload RM data packet; switches stamp their window into it and the
  // receiver's RMA brings the allocation back (Sec. 4.6).
  PacketPtr pkt = MakePacket(PacketType::kData);
  pkt->seq = acked_bytes();
  pkt->payload = 0;
  pkt->rm = true;
  pkt->weight = config_.weight;
  pkt->ts = network()->scheduler().now();
  ++probes_sent_;
  if (network()->TraceActive()) {
    FlightEvent e = ControlFlightEvent(FlightEventType::kProbeSend, local()->id(),
                                       -1, flow_id());
    e.seq = static_cast<uint64_t>(pkt->seq);
    e.a = probe_attempts_;
    network()->EmitFlight(e);
  }
  SendPacket(std::move(pkt));
  RestartRtoTimer();
  ArmProbeRetry();
}

void TfcSender::ArmProbeRetry() {
  // A lost probe (or its RMA) must not wedge the acquisition phase until the
  // RTO safety net: retry on a capped exponential backoff, jittered so that
  // senders whose probes died together do not retry in lockstep.
  if (config_.probe_retry_base <= 0) {
    return;  // disabled: RTO-only recovery
  }
  TimeNs delay = config_.probe_retry_base;
  for (int i = 0; i < probe_attempts_ && delay < config_.probe_retry_cap; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, config_.probe_retry_cap);
  if (config_.probe_retry_jitter > 0) {
    delay += static_cast<TimeNs>(static_cast<double>(delay) * config_.probe_retry_jitter *
                                 network()->rng().Uniform());
  }
  probe_timer_.RestartAfter(delay);
}

void TfcSender::OnProbeRetryTimer() {
  if (state() != State::kEstablished || !awaiting_probe_rma_) {
    // The RMA arrived or the flow moved on (e.g. FIN'd); stop retrying.
    probe_attempts_ = 0;
    return;
  }
  ++probe_attempts_;
  ++probe_retries_;
  if (network()->TraceActive()) {
    FlightEvent e = ControlFlightEvent(FlightEventType::kProbeRetry, local()->id(),
                                       -1, flow_id());
    e.a = probe_attempts_;
    network()->EmitFlight(e);
  }
  SendProbe();  // re-arms the timer with the doubled delay
}

void TfcSender::OnEstablished() {
  awaiting_probe_rma_ = true;
  SendProbe();
}

void TfcSender::OnWrite() {
  const TimeNs now = network()->scheduler().now();
  if (config_.resume_probe && state() == State::kEstablished && inflight_bytes() == 0 &&
      have_window_ && now - last_activity_ > config_.resume_idle_threshold) {
    // Resuming after a long silence: the cached window is stale (other flows
    // have absorbed the bandwidth), so re-acquire before bursting.
    have_window_ = false;
    awaiting_probe_rma_ = true;
    SendProbe();
  }
  last_activity_ = now;
}

void TfcSender::OnAckHeader(const Packet& ack) {
  last_activity_ = network()->scheduler().now();
  if (!ack.rma || ack.window == kWindowInfinite) {
    return;
  }
  // The granted window is per allocation unit; a weighted flow holds
  // `weight` units. The delay arbiter guarantees at least one MSS-sized
  // frame; floor at *this sender's* full frame so it can always keep one
  // packet in flight — with jumbo frames the arbiter quantum (configured
  // per switch) may be smaller than one of our packets, and flooring at
  // the default MTU would deadlock the flow.
  const double full_frame = static_cast<double>(transport_config().mss + kHeaderBytes);
  cwnd_frames_ =
      std::max(static_cast<double>(ack.window) * config_.weight, full_frame);
  have_window_ = true;
  awaiting_probe_rma_ = false;
  probe_attempts_ = 0;
  probe_timer_.Cancel();
  if (network()->TraceActive()) {
    FlightEvent e = ControlFlightEvent(FlightEventType::kRmaReceive, local()->id(),
                                       -1, flow_id());
    e.a = FlightI32(ack.window);
    e.b = FlightI32(cwnd_frames_);
    network()->EmitFlight(e);
  }
  // Per Sec. 5.1: after receiving an RMA, mark the next outgoing data packet.
  pending_rm_ = true;
  SendAvailable();
}

void TfcSender::DecorateData(Packet& pkt, bool retransmission) {
  (void)retransmission;
  pkt.weight = config_.weight;
  if (pending_rm_) {
    pkt.rm = true;
    pending_rm_ = false;
  }
  last_activity_ = network()->scheduler().now();
}

void TfcSender::OnRetransmitTimeout() {
  // Restart the round: the RM (or its RMA) may have been lost, and without a
  // new RM the switch would stop counting this flow.
  pending_rm_ = true;
}

bool TfcSender::OnIdleTimeout() {
  if (awaiting_probe_rma_) {
    SendProbe();
    return true;
  }
  return false;
}

}  // namespace tfc
