// TFC end-host endpoints (paper Sec. 5.1, 5.3).
//
// Sender: marks the first packet of every full window with RM (round mark),
// obtains its congestion window exclusively from RMA-marked ACKs, and runs
// the window-acquisition phase — a zero-payload RM probe right after
// connection establishment — so a new flow learns its fair window before
// injecting any data (Sec. 4.6 "Traffic Bursts").
//
// Receiver: echoes the switch-stamped window of every RM data packet into
// an RMA-marked ACK, min'ed with its advertised window (Sec. 5.3).

#ifndef SRC_TFC_ENDPOINTS_H_
#define SRC_TFC_ENDPOINTS_H_

#include <memory>

#include "src/sim/timer.h"
#include "src/tfc/config.h"
#include "src/transport/reliable_sender.h"

namespace tfc {

class TfcReceiver : public ReliableReceiver {
 public:
  using ReliableReceiver::ReliableReceiver;

 protected:
  void DecorateAck(const Packet& data, Packet& ack) override;
};

class TfcSender : public ReliableSender {
 public:
  TfcSender(Network* network, Host* local, Host* remote, const TfcHostConfig& config);

  // Congestion window assigned by the network, in frame bytes (raw view
  // for stats/tests).
  double cwnd_frame_bytes() const { return cwnd_frames_; }  // lint:allow units
  bool window_acquired() const { return have_window_; }
  uint64_t probes_sent() const { return probes_sent_; }
  // Probes re-sent by the capped-exponential-backoff retry timer (a lost
  // probe or RMA no longer waits for the 200 ms RTO safety net).
  uint64_t probe_retries() const { return probe_retries_; }

 protected:
  bool MarkSyn() const override { return true; }
  bool CanSendMore(Bytes inflight_payload) const override;
  void OnEstablished() override;
  void OnWrite() override;
  void OnAckHeader(const Packet& ack) override;
  void OnRetransmitTimeout() override;
  bool OnIdleTimeout() override;
  void DecorateData(Packet& pkt, bool retransmission) override;
  std::unique_ptr<ReliableReceiver> MakeReceiver() override;

 private:
  void SendProbe();
  void ArmProbeRetry();
  void OnProbeRetryTimer();
  Bytes FrameBytesInFlight(Bytes inflight_payload) const;

  TfcHostConfig config_;
  double cwnd_frames_ = 0.0;
  bool have_window_ = false;
  bool awaiting_probe_rma_ = false;
  bool pending_rm_ = false;
  uint64_t probes_sent_ = 0;
  uint64_t probe_retries_ = 0;
  int probe_attempts_ = 0;  // consecutive unanswered probes (backoff exponent)
  TimeNs last_activity_ = 0;
  Timer probe_timer_;
};

}  // namespace tfc

#endif  // SRC_TFC_ENDPOINTS_H_
