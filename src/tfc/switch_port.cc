#include "src/tfc/switch_port.h"

#include <algorithm>
#include <cmath>

#include "src/net/network.h"
#include "src/sim/check.h"

namespace tfc {

TfcPortAgent::TfcPortAgent(Switch* owner, Port* port, const TfcSwitchConfig& config)
    : switch_(owner),
      port_(port),
      config_(config),
      scheduler_(port->scheduler()),
      bytes_per_ns_(static_cast<double>(port->bps()) / 8.0 / 1e9),
      rttb_(config.initial_rttb),
      rttb_epoch_min_(config.initial_rttb),
      rttb_prev_epoch_min_(config.initial_rttb),
      failover_timer_(scheduler_, [this] { OnFailoverTimer(); }),
      token_bytes_(bdp_bytes()),
      counter_bytes_(config.counter_cap_quanta * config.delay_quantum),
      release_timer_(scheduler_, [this] { ReleaseParkedAcks(); }) {
  TFC_CHECK(port->bps() > 0);
  TFC_CHECK(config.rho0 > 0.0 && config.rho0 <= 1.0);
  TFC_CHECK(config.history_weight >= 0.0 && config.history_weight < 1.0);
}

double TfcPortAgent::bdp_bytes() const {
  return bytes_per_ns_ * static_cast<double>(rttb_);
}

TfcPortAgent* TfcPortAgent::FromPort(Port* port) {
  return dynamic_cast<TfcPortAgent*>(port->agent());
}

// ---------------------------------------------------------------------------
// Data path (egress direction): arrival accounting, slot machinery, stamping.
// ---------------------------------------------------------------------------

void TfcPortAgent::OnEgress(Packet& pkt) {
  arrived_wire_bytes_ += pkt.wire_bytes();
  if (!pkt.is_data()) {
    return;
  }

  // Strawman flow counting (D3-style): track connection handshakes. A
  // retransmitted SYN is indistinguishable from a new flow, so the counter
  // accumulates error — the failure mode the paper's Sec. 4.2 describes.
  if (config_.flow_count_mode == FlowCountMode::kSynFin) {
    if (pkt.type == PacketType::kSyn) {
      ++synfin_count_;
    } else if (pkt.type == PacketType::kFin && synfin_count_ > 1) {
      --synfin_count_;
    }
  }

  // A FIN of the delimiter flow means its round marks will never return:
  // elect the next RM packet as the new delimiter (Sec. 5.2).
  if (pkt.type == PacketType::kFin && pkt.flow_id == delimiter_flow_) {
    delimiter_closed_ = true;
    want_new_delimiter_ = true;
  }

  if (pkt.rm) {
    if (pkt.flow_id == delimiter_flow_ && !delimiter_closed_) {
      EndSlot(pkt);
    } else if (delimiter_flow_ < 0 || want_new_delimiter_) {
      AdoptDelimiter(pkt);
    } else {
      E_ += std::max<int>(1, pkt.weight);
    }
  }

  if (pkt.type == PacketType::kData) {
    StampWindow(pkt);
  }
}

void TfcPortAgent::StampWindow(Packet& pkt) const {
  // Until the first slot completes *and* rtt_b has actually been measured,
  // this port has no trustworthy allocation: the configured initial rtt_b
  // may overestimate the real RTT by an order of magnitude (e.g. 160 us
  // initial vs ~10 us at 40 Gbps), and windows computed from it would burst
  // several BDPs into the buffer. Hand out just under one frame instead —
  // staying below the delay-arbiter quantum also means a crowd of flows
  // starting together has its very first grants paced by the arbiter rather
  // than all firing one frame into an empty port at once.
  const uint32_t w = (have_window_ && rttb_measured_)
                         ? static_cast<uint32_t>(std::max(1.0, std::floor(window_bytes_)))
                         : config_.delay_quantum - 1;
  pkt.window = std::min(pkt.window, w);
}

void TfcPortAgent::AdoptDelimiter(const Packet& pkt) {
  if (pkt.flow_id != delimiter_flow_) {
    // rtt_b is the minimum RTT *of the delimiter flow* (Sec. 4.4): tokens
    // use rtt_b and the slot length uses rtt_m of the same flow, so their
    // ratio is ~1 regardless of which flow is chosen. Carrying a previous
    // (shorter-RTT) delimiter's minimum over would permanently undersize
    // the token value relative to the new delimiter's slots. Seed the new
    // minimum from the last measured slot RTT — the right magnitude for
    // this port (unlike the configured initial) and an overestimate that
    // the new delimiter's own samples min-correct within a round or two.
    const TimeNs seed = rttm_last_ > 0 ? rttm_last_ : config_.initial_rttb;
    rttb_ = seed;
    rttb_epoch_min_ = seed;
    rttb_prev_epoch_min_ = seed;
    rttb_epoch_count_ = 0;
  }
  delimiter_flow_ = pkt.flow_id;
  delimiter_closed_ = false;
  want_new_delimiter_ = false;
  // Deliberately keep miss_k_: it only resets on a *successful* slot
  // (EndSlot). If the port's true RTT has inflated past 2^k·rtt_last, each
  // adopted delimiter would otherwise be deposed before completing a slot
  // and the window would never update; the exponential backoff must span
  // adoptions to break that cycle.
  slot_start_ = scheduler_->now();
  slot_start_queue_bytes_ = port_->queue_bytes();
  E_ = std::max<int>(1, pkt.weight);  // the adopting RM starts the slot
  arrived_wire_bytes_ = pkt.wire_bytes();
  ArmFailover();
}

void TfcPortAgent::EndSlot(const Packet& pkt) {
  const TimeNs now = scheduler_->now();
  const TimeNs rtt_m = now - slot_start_;
  if (rtt_m <= 0) {
    return;  // degenerate zero-length slot; keep accumulating
  }

  // rtt_b only learns from full-size frames (Sec. 4.4): store-and-forward
  // latency depends on frame length, so small probes would bias it low.
  // The slot interval includes the time the slot-opening RM spent in *this*
  // port's queue — a queueing component the switch can observe directly and
  // subtract, rather than relying on the min alone to catch an empty-queue
  // round. Without this correction a standing queue feeds itself: rtt_b
  // absorbs the queueing delay, which inflates the token value, which
  // sustains the queue (remote hops' queueing is still handled by the min).
  if (pkt.frame_bytes() >= config_.rtt_measure_min_frame) {
    const TimeNs local_wait =
        static_cast<TimeNs>(static_cast<double>(slot_start_queue_bytes_) / bytes_per_ns_);
    const TimeNs candidate = std::max(rtt_m - local_wait, rtt_m / 8);
    rttb_measured_ = true;
    rttb_epoch_min_ = std::min(rttb_epoch_min_, candidate);
    if (config_.rttb_epoch_slots > 0 &&
        ++rttb_epoch_count_ >= config_.rttb_epoch_slots) {
      // Rotate: forget samples older than two epochs.
      rttb_prev_epoch_min_ = rttb_epoch_min_;
      rttb_epoch_min_ = candidate;
      rttb_epoch_count_ = 0;
    }
    rttb_ = std::min(rttb_epoch_min_, rttb_prev_epoch_min_);
  }

  // The RM ending this slot belongs to the next one; account it there.
  const uint64_t slot_bytes = arrived_wire_bytes_ - pkt.wire_bytes();

  // ρ[n] = A[n] / (c · rtt_m[n])  — Sec. 4.5.
  const double capacity_bytes = bytes_per_ns_ * static_cast<double>(rtt_m);
  double rho = static_cast<double>(slot_bytes) / capacity_bytes;
  rho = std::max(rho, config_.rho_floor);

  // Token adjustment (Eq. 7) with engineering clamps, then EWMA (Eq. 8).
  const double bdp = bdp_bytes();
  double target = config_.enable_token_adjustment ? bdp * config_.rho0 / rho : bdp;
  target = std::clamp(target, static_cast<double>(config_.delay_quantum),
                      config_.token_boost_cap * bdp);
  token_bytes_ =
      config_.history_weight * token_bytes_ + (1.0 - config_.history_weight) * target;
  token_bytes_ = std::clamp(token_bytes_, static_cast<double>(config_.delay_quantum),
                            config_.token_boost_cap * bdp);

  // W[n+1] = T[n] / E[n]  (Eq. 5).
  const int effective = config_.flow_count_mode == FlowCountMode::kSynFin
                            ? std::max(1, synfin_count_)
                            : E_;
  window_bytes_ = token_bytes_ / static_cast<double>(effective);
  have_window_ = true;
  last_E_ = effective;
  rttm_last_ = rtt_m;
  ++slots_completed_;

  if (on_slot) {
    on_slot(SlotInfo{now, rtt_m, rttb_, E_, rho, token_bytes_, window_bytes_});
  }

  // Start the next slot; this RM counts as its first effective flow(s).
  E_ = std::max<int>(1, pkt.weight);
  arrived_wire_bytes_ = pkt.wire_bytes();
  slot_start_ = now;
  slot_start_queue_bytes_ = port_->queue_bytes();
  miss_k_ = 0;
  ArmFailover();
}

void TfcPortAgent::ArmFailover() {
  TimeNs base = rttm_last_ > 0 ? rttm_last_ : config_.initial_rttb;
  // In the sub-MSS regime a flow's round is paced by the delay arbiter, not
  // its RTT: one grant per flow per E-grant cycle at ~rho0*c. Deposing the
  // delimiter on an RTT timescale would churn it every round (and each
  // churn re-seeds rtt_b from a load-inflated sample), so size the deadline
  // to the grant cycle instead.
  if (have_window_ && window_bytes_ < config_.delay_quantum && last_E_ > 0) {
    const double cycle_ns = static_cast<double>(last_E_) * config_.delay_quantum /
                            (config_.rho0 * bytes_per_ns_);
    base = std::max(base, static_cast<TimeNs>(cycle_ns));
  }
  const int k = std::min(miss_k_, config_.max_miss_exponent);
  failover_timer_.RestartAfter(base * (TimeNs{1} << (k + 1)));
}

void TfcPortAgent::OnFailoverTimer() {
  // The delimiter flow went silent: catch another RM packet as the new
  // delimiter. Back off exponentially while the port stays idle.
  want_new_delimiter_ = true;
  ++miss_k_;
  if (miss_k_ <= config_.max_miss_exponent) {
    ArmFailover();
  }
}

// ---------------------------------------------------------------------------
// Reverse path: the delay arbiter for windows below one MSS (Sec. 4.6).
// ---------------------------------------------------------------------------

void TfcPortAgent::RefillCounter() {
  const TimeNs now = scheduler_->now();
  const TimeNs dt = now - counter_refill_time_;
  if (dt > 0) {
    // Refill at the *target* utilization, not raw line rate: released grants
    // become full frames with preamble/IFG overhead on the wire, and with
    // zero headroom the queue would random-walk into the buffer limit.
    counter_bytes_ += config_.rho0 * bytes_per_ns_ * static_cast<double>(dt) *
                      (static_cast<double>(config_.delay_quantum) /
                       static_cast<double>(config_.delay_quantum + kWireOverheadBytes));
    counter_refill_time_ = now;
  }
  const double cap = config_.counter_cap_quanta * config_.delay_quantum;
  counter_bytes_ = std::min(counter_bytes_, cap);
}

bool TfcPortAgent::OnReverse(PacketPtr& pkt) {
  if (!config_.enable_delay_function || !pkt->is_ack() || !pkt->rma ||
      pkt->window == kWindowInfinite) {
    return true;
  }
  RefillCounter();
  const double quantum = config_.delay_quantum;
  const double w = pkt->window;

  if (w >= quantum) {
    // Full windows pass immediately but debit the counter, which throttles
    // the sub-MSS release rate so that the port's total allocation per slot
    // stays within the token value. Bound the debt so a long burst of large
    // windows cannot starve small flows indefinitely.
    counter_bytes_ = std::max(counter_bytes_ - w, -config_.token_boost_cap * bdp_bytes());
    return true;
  }

  // Sub-MSS window: upgrade to one MSS if the counter affords it now (and
  // nobody is already waiting), otherwise park the ACK.
  if (delay_queue_.empty() && counter_bytes_ >= quantum) {
    pkt->window = config_.delay_quantum;
    counter_bytes_ -= quantum;
    return true;
  }
  if (delay_queue_.size() >= config_.delay_queue_limit) {
    pkt->window = config_.delay_quantum;  // fail open rather than drop
    return true;
  }
  delay_queue_.push_back(std::move(pkt));
  ++delayed_acks_;
  ScheduleRelease();
  return false;
}

void TfcPortAgent::ScheduleRelease() {
  if (release_timer_.pending() || delay_queue_.empty()) {
    return;
  }
  const double deficit = config_.delay_quantum - counter_bytes_;
  TimeNs wait = 0;
  if (deficit > 0) {
    wait = static_cast<TimeNs>(std::ceil(deficit / (config_.rho0 * bytes_per_ns_)));
  }
  release_timer_.RestartAfter(wait);
}

void TfcPortAgent::ReleaseParkedAcks() {
  RefillCounter();
  const double quantum = config_.delay_quantum;
  while (!delay_queue_.empty() && counter_bytes_ >= quantum) {
    PacketPtr pkt = std::move(delay_queue_.front());
    delay_queue_.pop_front();
    pkt->window = config_.delay_quantum;
    counter_bytes_ -= quantum;
    switch_->Forward(std::move(pkt));
  }
  ScheduleRelease();
}

// ---------------------------------------------------------------------------

int InstallTfcSwitches(Network& network, const TfcSwitchConfig& config) {
  int installed = 0;
  for (const auto& node : network.nodes()) {
    auto* sw = dynamic_cast<Switch*>(node.get());
    if (sw == nullptr) {
      continue;
    }
    for (const auto& port : sw->ports()) {
      port->set_agent(std::make_unique<TfcPortAgent>(sw, port.get(), config));
      ++installed;
    }
  }
  return installed;
}

}  // namespace tfc
