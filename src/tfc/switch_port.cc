#include "src/tfc/switch_port.h"

#include <algorithm>
#include <cmath>

#include "src/net/network.h"
#include "src/sim/check.h"

namespace tfc {

TfcPortAgent::TfcPortAgent(Switch* owner, Port* port, const TfcSwitchConfig& config)
    : switch_(owner),
      port_(port),
      config_(config),
      scheduler_(port->scheduler()),
      link_rate_(port->bps()),
      rttb_(config.initial_rttb),
      rttb_epoch_min_(config.initial_rttb),
      rttb_prev_epoch_min_(config.initial_rttb),
      failover_timer_(scheduler_, [this] { OnFailoverTimer(); }),
      token_(bdp()),
      counter_(config.counter_cap_quanta *
               Tokens::FromBytes(config.delay_quantum)),
      release_timer_(scheduler_, [this] { ReleaseParkedAcks(); }),
      counter_initial_(counter_),
      token_bound_hi_(config.token_boost_cap * bdp()),
      metrics_(&owner->network()->metrics()),
      audit_registration_(&owner->network()->audit(),
                          "tfc.port:" + owner->name() + "." +
                              std::to_string(port->index()),
                          [this](Auditor& a) { AuditInvariants(a); }) {
  TFC_CHECK_GT(port->bps().count(), 0u);
  TFC_CHECK_MSG(config.rho0 > 0.0 && config.rho0 <= 1.0, "rho0=" << config.rho0);
  TFC_CHECK_MSG(config.history_weight >= 0.0 && config.history_weight < 1.0,
                "history_weight=" << config.history_weight);
  // The control-path signals behind the paper's Figs. 6-8, exposed as
  // pull gauges (sampled by the telemetry recorder, free otherwise).
  release_site_ = owner->network()->profiler().Site("tfc.release_parked");
  failover_site_ = owner->network()->profiler().Site("tfc.failover");
  // An agent built for a port that already has one (tests wrap or replace
  // the installed agent) takes over the port's metric names.
  metrics_.set_replace_on_collision(true);
  const std::string prefix =
      "tfc." + owner->name() + ".p" + std::to_string(port->index());
  metrics_.AddCallbackGauge(prefix + ".token_bytes", [this] { return token_.value(); });
  metrics_.AddCallbackGauge(prefix + ".window_bytes", [this] { return window_.value(); });
  metrics_.AddCallbackGauge(prefix + ".effective_flows",
                            [this] { return static_cast<double>(last_E_); });
  metrics_.AddCallbackGauge(prefix + ".rho", [this] { return last_rho_.value(); });
  metrics_.AddCallbackGauge(prefix + ".rtt_b_ns",
                            [this] { return static_cast<double>(rttb_); });
  metrics_.AddCallbackGauge(prefix + ".rtt_m_ns",
                            [this] { return static_cast<double>(rttm_last_); });
  metrics_.AddCallbackGauge(prefix + ".parked_acks",
                            [this] { return static_cast<double>(delay_queue_.size()); });
  metrics_.AddCallbackGauge(prefix + ".delayed_acks_total",
                            [this] { return static_cast<double>(delayed_acks_); });
  metrics_.AddCallbackGauge(prefix + ".slots_completed",
                            [this] { return static_cast<double>(slots_completed_); });
  metrics_.AddCallbackGauge(prefix + ".delimiter_failovers",
                            [this] { return static_cast<double>(delimiter_failovers_); });
  metrics_.AddCallbackGauge(prefix + ".arbiter_expired",
                            [this] { return static_cast<double>(arbiter_expired_); });
  metrics_.AddCallbackGauge(prefix + ".state_wipes",
                            [this] { return static_cast<double>(state_wipes_); });
}

Tokens TfcPortAgent::bdp() const {
  // BitsPerSec x TimeNs -> Tokens: the same bytes_per_ns * (double)ns
  // product the raw code computed (src/sim/units.h).
  return link_rate_ * rttb_;
}

TfcPortAgent* TfcPortAgent::FromPort(Port* port) {
  return dynamic_cast<TfcPortAgent*>(port->agent());
}

// ---------------------------------------------------------------------------
// Data path (egress direction): arrival accounting, slot machinery, stamping.
// ---------------------------------------------------------------------------

void TfcPortAgent::OnEgress(Packet& pkt) {
  arrived_wire_bytes_ += Bytes(pkt.wire_bytes());
  if (!pkt.is_data()) {
    return;
  }

  // Strawman flow counting (D3-style): track connection handshakes. A
  // retransmitted SYN is indistinguishable from a new flow, so the counter
  // accumulates error — the failure mode the paper's Sec. 4.2 describes.
  if (config_.flow_count_mode == FlowCountMode::kSynFin) {
    if (pkt.type == PacketType::kSyn) {
      ++synfin_count_;
    } else if (pkt.type == PacketType::kFin && synfin_count_ > 1) {
      --synfin_count_;
    }
  }

  if (pkt.type == PacketType::kFin) {
    // The flow is closing: any of its RMA ACKs still parked in the delay
    // arbiter grant a window nobody will use — destroy them now instead of
    // letting them strand queue slots until age-out.
    PurgeParkedAcks(pkt.flow_id);
    // A FIN of the delimiter flow means its round marks will never return:
    // elect the next RM packet as the new delimiter (Sec. 5.2).
    if (pkt.flow_id == delimiter_flow_) {
      delimiter_closed_ = true;
      want_new_delimiter_ = true;
    }
  }

  if (pkt.rm) {
    if (pkt.flow_id == delimiter_flow_ && !delimiter_closed_) {
      EndSlot(pkt);
    } else if (delimiter_flow_ < 0 || want_new_delimiter_) {
      AdoptDelimiter(pkt);
    } else {
      E_ += std::max<int>(1, pkt.weight);
    }
  }

  if (pkt.type == PacketType::kData) {
    StampWindow(pkt);
  }
}

void TfcPortAgent::StampWindow(Packet& pkt) const {
  // Until the first slot completes *and* rtt_b has actually been measured,
  // this port has no trustworthy allocation: the configured initial rtt_b
  // may overestimate the real RTT by an order of magnitude (e.g. 160 us
  // initial vs ~10 us at 40 Gbps), and windows computed from it would burst
  // several BDPs into the buffer. Hand out just under one frame instead —
  // staying below the delay-arbiter quantum also means a crowd of flows
  // starting together has its very first grants paced by the arbiter rather
  // than all firing one frame into an empty port at once.
  //
  // The double must be clamped into uint32 range *before* the cast: for a
  // fast link with a large rtt_b (100 Gbps x the 160 us initial, or a slot
  // inflated by delimiter silence) 4 BDPs exceeds 2^32 and the unguarded
  // float->int conversion is undefined behavior. SaturatingU32 (units.h) is
  // that clamp, named; the min against kWindowInfinite keeps the stamped
  // value meaning "infinite" rather than merely "huge".
  const uint32_t w =
      (have_window_ && rttb_measured_)
          ? SaturatingU32(std::min(std::max(1.0, std::floor(window_.value())),
                                   static_cast<double>(kWindowInfinite)))
          : (config_.delay_quantum - 1).ToU32Saturating();
  pkt.window = std::min(pkt.window, w);
}

void TfcPortAgent::AdoptDelimiter(const Packet& pkt) {
  if (pkt.flow_id != delimiter_flow_) {
    // rtt_b is the minimum RTT *of the delimiter flow* (Sec. 4.4): tokens
    // use rtt_b and the slot length uses rtt_m of the same flow, so their
    // ratio is ~1 regardless of which flow is chosen. Carrying a previous
    // (shorter-RTT) delimiter's minimum over would permanently undersize
    // the token value relative to the new delimiter's slots. Seed the new
    // minimum from the last measured slot RTT — the right magnitude for
    // this port (unlike the configured initial) and an overestimate that
    // the new delimiter's own samples min-correct within a round or two.
    const TimeNs seed = rttm_last_ > 0 ? rttm_last_ : config_.initial_rttb;
    rttb_ = seed;
    rttb_epoch_min_ = seed;
    rttb_prev_epoch_min_ = seed;
    rttb_epoch_count_ = 0;
  }
  delimiter_flow_ = pkt.flow_id;
  delimiter_closed_ = false;
  want_new_delimiter_ = false;
  // Deliberately keep miss_k_: it only resets on a *successful* slot
  // (EndSlot). If the port's true RTT has inflated past 2^k·rtt_last, each
  // adopted delimiter would otherwise be deposed before completing a slot
  // and the window would never update; the exponential backoff must span
  // adoptions to break that cycle.
  slot_start_ = scheduler_->now();
  slot_start_queue_bytes_ = port_->queue_bytes();
  E_ = std::max<int>(1, pkt.weight);  // the adopting RM starts the slot
  arrived_wire_bytes_ = Bytes(pkt.wire_bytes());
  if (Network* net = switch_->network(); net->TraceActive()) {
    net->EmitFlight(ControlFlightEvent(FlightEventType::kDelimiterAdopt,
                                       switch_->id(), port_->index(),
                                       delimiter_flow_));
    FlightEvent begin = ControlFlightEvent(FlightEventType::kSlotBegin,
                                           switch_->id(), port_->index(),
                                           delimiter_flow_);
    begin.seq = static_cast<uint64_t>(E_);
    net->EmitFlight(begin);
  }
  ArmFailover();
}

void TfcPortAgent::EndSlot(const Packet& pkt) {
  const TimeNs now = scheduler_->now();
  const TimeNs rtt_m = now - slot_start_;
  if (rtt_m <= 0) {
    return;  // degenerate zero-length slot; keep accumulating
  }

  // rtt_b only learns from full-size frames (Sec. 4.4): store-and-forward
  // latency depends on frame length, so small probes would bias it low.
  // The slot interval includes the time the slot-opening RM spent in *this*
  // port's queue — a queueing component the switch can observe directly and
  // subtract, rather than relying on the min alone to catch an empty-queue
  // round. Without this correction a standing queue feeds itself: rtt_b
  // absorbs the queueing delay, which inflates the token value, which
  // sustains the queue (remote hops' queueing is still handled by the min).
  if (Bytes(pkt.frame_bytes()) >= config_.rtt_measure_min_frame) {
    const TimeNs local_wait = TimeNs(
        static_cast<double>(slot_start_queue_bytes_.count()) / link_rate_.bytes_per_ns());
    const TimeNs candidate = std::max(rtt_m - local_wait, rtt_m / 8);
    rttb_measured_ = true;
    rttb_epoch_min_ = std::min(rttb_epoch_min_, candidate);
    if (config_.rttb_epoch_slots > 0 &&
        ++rttb_epoch_count_ >= config_.rttb_epoch_slots) {
      // Rotate: forget samples older than two epochs.
      rttb_prev_epoch_min_ = rttb_epoch_min_;
      rttb_epoch_min_ = candidate;
      rttb_epoch_count_ = 0;
    }
    rttb_ = std::min(rttb_epoch_min_, rttb_prev_epoch_min_);
  }

  // The RM ending this slot belongs to the next one; account it there.
  const Bytes slot_bytes = arrived_wire_bytes_ - Bytes(pkt.wire_bytes());

  // ρ[n] = A[n] / (c · rtt_m[n])  — Sec. 4.5. Measured traffic (Bytes)
  // enters the token dimension through the explicit FromBytes boundary.
  const Tokens capacity = link_rate_ * rtt_m;
  Ratio rho = Tokens::FromBytes(slot_bytes) / capacity;
  rho = std::max<double>(rho, config_.rho_floor);

  // Token adjustment (Eq. 7) with engineering clamps, then EWMA (Eq. 8).
  // The upper clamp is floored at one quantum: after a delimiter handover
  // re-seeds rtt_b from an anomalously short slot, token_boost_cap * bdp can
  // drop below one frame, which would invert the clamp bounds (UB) and
  // allocate less than the arbiter's release unit.
  const Tokens bdp_now = bdp();
  const Tokens quantum = Tokens::FromBytes(config_.delay_quantum);
  const Tokens bound_hi = std::max(config_.token_boost_cap * bdp_now, quantum);
  Tokens target = config_.enable_token_adjustment
                      ? Tokens(bdp_now.value() * config_.rho0 / rho.value())
                      : bdp_now;
  target = std::clamp(target, quantum, bound_hi);
  token_ = config_.history_weight * token_ + (1.0 - config_.history_weight) * target;
  token_ = std::clamp(token_, quantum, bound_hi);
  last_rho_ = rho;
  token_bound_hi_ = bound_hi;

  // W[n+1] = T[n] / E[n]  (Eq. 5).
  const int effective = config_.flow_count_mode == FlowCountMode::kSynFin
                            ? std::max(1, synfin_count_)
                            : E_;
  const bool was_cold = !have_window_;  // converging from cold start / wipe
  window_ = token_ / static_cast<double>(effective);
  have_window_ = true;
  last_E_ = effective;
  rttm_last_ = rtt_m;
  ++slots_completed_;

  if (on_slot) {
    on_slot(SlotInfo{now, rtt_m, rttb_, E_, rho, token_, window_});
  }

  // Start the next slot; this RM counts as its first effective flow(s).
  E_ = std::max<int>(1, pkt.weight);
  arrived_wire_bytes_ = Bytes(pkt.wire_bytes());
  slot_start_ = now;
  slot_start_queue_bytes_ = port_->queue_bytes();
  miss_k_ = 0;
  if (Network* net = switch_->network(); net->TraceActive()) {
    FlightEvent end = ControlFlightEvent(FlightEventType::kSlotEnd, switch_->id(),
                                         port_->index(), delimiter_flow_);
    end.seq = static_cast<uint64_t>(effective);
    end.a = FlightI32(token_.value());
    end.b = FlightI32(window_.value());
    end.c = FlightI32(rtt_m.count());
    net->EmitFlight(end);
    if (was_cold) {
      FlightEvent conv = ControlFlightEvent(FlightEventType::kAgentConverge,
                                            switch_->id(), port_->index(),
                                            delimiter_flow_);
      conv.a = FlightI32(static_cast<int64_t>(slots_completed_));
      net->EmitFlight(conv);
    }
    FlightEvent begin = ControlFlightEvent(FlightEventType::kSlotBegin,
                                           switch_->id(), port_->index(),
                                           delimiter_flow_);
    begin.seq = static_cast<uint64_t>(E_);
    net->EmitFlight(begin);
  }
  ArmFailover();
}

void TfcPortAgent::ArmFailover() {
  TimeNs base = rttm_last_ > 0 ? rttm_last_ : config_.initial_rttb;
  // In the sub-MSS regime a flow's round is paced by the delay arbiter, not
  // its RTT: one grant per flow per E-grant cycle at ~rho0*c. Deposing the
  // delimiter on an RTT timescale would churn it every round (and each
  // churn re-seeds rtt_b from a load-inflated sample), so size the deadline
  // to the grant cycle instead.
  if (have_window_ && window_ < Tokens::FromBytes(config_.delay_quantum) && last_E_ > 0) {
    base = std::max(base, TimeNs(static_cast<double>(last_E_) *
                                 static_cast<double>(config_.delay_quantum.count()) /
                                 (config_.rho0 * link_rate_.bytes_per_ns())));
  }
  const int k = std::min(miss_k_, config_.max_miss_exponent);
  failover_timer_.RestartAfter(base * (int64_t{1} << (k + 1)));
}

void TfcPortAgent::OnFailoverTimer() {
  ProfileScope prof(&switch_->network()->profiler(), failover_site_);
  // The delimiter flow went silent: catch another RM packet as the new
  // delimiter. Back off exponentially while the port stays idle.
  want_new_delimiter_ = true;
  ++delimiter_failovers_;
  ++miss_k_;
  if (Network* net = switch_->network(); net->TraceActive()) {
    FlightEvent e = ControlFlightEvent(FlightEventType::kDelimiterFailover,
                                       switch_->id(), port_->index(),
                                       delimiter_flow_);
    e.a = miss_k_;
    net->EmitFlight(e);
  }
  if (miss_k_ <= config_.max_miss_exponent) {
    ArmFailover();
  }
}

// ---------------------------------------------------------------------------
// Reverse path: the delay arbiter for windows below one MSS (Sec. 4.6).
// ---------------------------------------------------------------------------

void TfcPortAgent::RefillCounter() {
  const TimeNs now = scheduler_->now();
  const TimeNs dt = now - counter_refill_time_;
  if (dt > 0) {
    // Refill at the *target* utilization, not raw line rate: released grants
    // become full frames with preamble/IFG overhead on the wire, and with
    // zero headroom the queue would random-walk into the buffer limit.
    const Tokens add =
        Tokens(config_.rho0 * link_rate_.bytes_per_ns() * static_cast<double>(dt.count()) *
               (static_cast<double>(config_.delay_quantum.count()) /
                static_cast<double>((config_.delay_quantum + kWireOverheadBytes).count())));
    counter_ += add;
    refilled_total_ += add;
    counter_refill_time_ = now;
    if (Network* net = switch_->network(); net->TraceActive()) {
      FlightEvent e = ControlFlightEvent(FlightEventType::kTokenRefill,
                                         switch_->id(), port_->index(), -1);
      e.a = FlightI32(add.value());
      e.b = FlightI32(counter_.value());
      net->EmitFlight(e);
    }
  }
  const Tokens cap = config_.counter_cap_quanta * Tokens::FromBytes(config_.delay_quantum);
  if (counter_ > cap) {
    overflow_total_ += counter_ - cap;
    counter_ = cap;
  }
}

bool TfcPortAgent::OnReverse(PacketPtr& pkt) {
  if (!config_.enable_delay_function || !pkt->is_ack() || !pkt->rma ||
      pkt->window == kWindowInfinite) {
    return true;
  }
  RefillCounter();
  const Tokens quantum = Tokens::FromBytes(config_.delay_quantum);
  const Tokens w = Tokens(static_cast<double>(pkt->window));

  if (w >= quantum) {
    // Full windows pass immediately but debit the counter, which throttles
    // the sub-MSS release rate so that the port's total allocation per slot
    // stays within the token value. Bound the debt so a long burst of large
    // windows cannot starve small flows indefinitely.
    counter_ -= w;
    debited_total_ += w;
    const Tokens floor = -config_.token_boost_cap * bdp();
    counter_floor_lo_ = std::min(counter_floor_lo_, floor);
    if (counter_ < floor) {
      forgiven_total_ += floor - counter_;
      counter_ = floor;
    }
    if (Network* net = switch_->network(); net->TraceActive()) {
      FlightEvent e = ControlFlightEvent(FlightEventType::kTokenGrant,
                                         switch_->id(), port_->index(),
                                         pkt->flow_id);
      e.a = FlightI32(w.value());
      e.b = FlightI32(counter_.value());
      net->EmitFlight(e);
    }
    return true;
  }

  // Sub-MSS window: upgrade to one MSS if the counter affords it now (and
  // nobody is already waiting), otherwise park the ACK.
  if (delay_queue_.empty() && counter_ >= quantum) {
    pkt->window = config_.delay_quantum.ToU32Saturating();
    counter_ -= quantum;
    debited_total_ += quantum;
    granted_mss_ += quantum;
    if (Network* net = switch_->network(); net->TraceActive()) {
      FlightEvent e = ControlFlightEvent(FlightEventType::kTokenGrant,
                                         switch_->id(), port_->index(),
                                         pkt->flow_id);
      e.a = FlightI32(quantum.value());
      e.b = FlightI32(counter_.value());
      net->EmitFlight(e);
    }
    return true;
  }
  if (delay_queue_.size() >= config_.delay_queue_limit) {
    pkt->window = config_.delay_quantum.ToU32Saturating();  // fail open rather than drop
    return true;
  }
  const int32_t parked_window = FlightI32(pkt->window);
  const int parked_flow = pkt->flow_id;
  delay_queue_.push_back(ParkedAck{std::move(pkt), scheduler_->now()});
  ++delayed_acks_;
  if (Network* net = switch_->network(); net->TraceActive()) {
    FlightEvent e = ControlFlightEvent(FlightEventType::kArbiterPark,
                                       switch_->id(), port_->index(), parked_flow);
    e.a = parked_window;
    e.c = FlightI32(static_cast<uint64_t>(delay_queue_.size()));
    net->EmitFlight(e);
  }
  ScheduleRelease();
  return false;
}

void TfcPortAgent::ScheduleRelease() {
  if (release_timer_.pending() || delay_queue_.empty()) {
    return;
  }
  const Tokens deficit = Tokens::FromBytes(config_.delay_quantum) - counter_;
  TimeNs wait = 0;
  if (deficit > Tokens(0.0)) {
    wait = TimeNs(std::ceil(deficit.value() / (config_.rho0 * link_rate_.bytes_per_ns())));
  }
  // Never sleep past the park timeout: the release pass is also the expiry
  // pass, so a deeply indebted counter (full-window debt floor) must not
  // delay aging out undeliverable grants.
  if (config_.delay_park_timeout > 0 && wait > config_.delay_park_timeout) {
    wait = config_.delay_park_timeout;
  }
  release_timer_.RestartAfter(wait);
}

void TfcPortAgent::DropParkedAck(PacketPtr pkt) {
  // Parked grants are destroyed without touching the ledger: the debit for
  // a parked ACK only happens at release, so an expired ACK costs nothing.
  ++arbiter_expired_;
  Network* net = switch_->network();
  net->EmitTrace(  // lint:allow packet-drop (arbiter_expired_)
      TraceEventType::kDrop, *pkt, switch_, port_);
  if (net->TraceActive()) {
    FlightEvent e = ControlFlightEvent(FlightEventType::kArbiterExpire,
                                       switch_->id(), port_->index(),
                                       pkt->flow_id);
    e.c = FlightI32(static_cast<uint64_t>(delay_queue_.size()));
    net->EmitFlight(e);
  }
  pkt.reset();
}

void TfcPortAgent::ExpireAgedParkedAcks(TimeNs now) {
  if (config_.delay_park_timeout <= 0) {
    return;
  }
  // Parking order is arrival order, so aged-out entries sit at the front.
  while (!delay_queue_.empty() &&
         now - delay_queue_.front().parked_at >= config_.delay_park_timeout) {
    PacketPtr pkt = std::move(delay_queue_.front().pkt);
    delay_queue_.pop_front();
    DropParkedAck(std::move(pkt));
  }
}

void TfcPortAgent::PurgeParkedAcks(int flow_id) {
  if (delay_queue_.empty()) {
    return;
  }
  for (auto it = delay_queue_.begin(); it != delay_queue_.end();) {
    if (it->pkt->flow_id == flow_id) {
      PacketPtr pkt = std::move(it->pkt);
      it = delay_queue_.erase(it);
      DropParkedAck(std::move(pkt));
    } else {
      ++it;
    }
  }
}

void TfcPortAgent::ReleaseParkedAcks() {
  ProfileScope prof(&switch_->network()->profiler(), release_site_);
  RefillCounter();
  ExpireAgedParkedAcks(scheduler_->now());
  const Tokens quantum = Tokens::FromBytes(config_.delay_quantum);
  while (!delay_queue_.empty() && counter_ >= quantum) {
    PacketPtr pkt = std::move(delay_queue_.front().pkt);
    delay_queue_.pop_front();
    pkt->window = config_.delay_quantum.ToU32Saturating();
    counter_ -= quantum;
    debited_total_ += quantum;
    granted_mss_ += quantum;
    if (Network* net = switch_->network(); net->TraceActive()) {
      FlightEvent e = ControlFlightEvent(FlightEventType::kArbiterRelease,
                                         switch_->id(), port_->index(),
                                         pkt->flow_id);
      e.a = FlightI32(quantum.value());
      e.b = FlightI32(counter_.value());
      net->EmitFlight(e);
    }
    switch_->Forward(std::move(pkt));
  }
  ScheduleRelease();
}

// ---------------------------------------------------------------------------
// Fault path: device reboot (src/net/fault.h).
// ---------------------------------------------------------------------------

void TfcPortAgent::WipeState(std::deque<PacketPtr>* lost) {
  // Parked ACKs are switch memory; they die with the device. The caller
  // (FaultInjector) traces and accounts their destruction.
  for (ParkedAck& parked : delay_queue_) {
    lost->push_back(std::move(parked.pkt));
  }
  delay_queue_.clear();
  failover_timer_.Cancel();
  release_timer_.Cancel();

  // Slot / delimiter machinery back to construction state: the next RM
  // packet is adopted as delimiter and rtt_b re-converges from scratch.
  delimiter_flow_ = -1;
  delimiter_closed_ = false;
  want_new_delimiter_ = true;
  slot_start_ = scheduler_->now();
  rttb_ = config_.initial_rttb;
  rttb_epoch_min_ = config_.initial_rttb;
  rttb_prev_epoch_min_ = config_.initial_rttb;
  rttb_epoch_count_ = 0;
  rttb_measured_ = false;
  rttm_last_ = 0;
  E_ = 1;
  synfin_count_ = 0;
  arrived_wire_bytes_ = 0;
  slot_start_queue_bytes_ = 0;
  miss_k_ = 0;

  // Allocation state. token_ derives from the freshly reset rtt_b.
  token_ = bdp();
  window_ = Tokens(0.0);
  have_window_ = false;
  last_E_ = 0;

  // Arbiter counter and its conservation ledger restart from zero history.
  // counter_refill_time_ must move to now, or the first post-reboot refill
  // would credit the entire pre-reboot interval.
  counter_ = config_.counter_cap_quanta * Tokens::FromBytes(config_.delay_quantum);
  counter_initial_ = counter_;
  counter_refill_time_ = scheduler_->now();
  refilled_total_ = Tokens(0.0);
  overflow_total_ = Tokens(0.0);
  debited_total_ = Tokens(0.0);
  forgiven_total_ = Tokens(0.0);
  counter_floor_lo_ = Tokens(0.0);
  granted_mss_ = Tokens(0.0);

  last_rho_ = 0.0;
  token_bound_hi_ = std::max(config_.token_boost_cap * bdp(),
                             Tokens::FromBytes(config_.delay_quantum));

  // slots_completed_ / delayed_acks_ / failover counts are simulation-side
  // observability, not device registers: they survive so tests and metrics
  // keep their cumulative meaning across reboots.
  ++state_wipes_;
  if (Network* net = switch_->network(); net->TraceActive()) {
    FlightEvent e = ControlFlightEvent(FlightEventType::kAgentWipe, switch_->id(),
                                       port_->index(), -1);
    e.a = FlightI32(static_cast<int64_t>(state_wipes_));
    net->EmitFlight(e);
  }
}

// ---------------------------------------------------------------------------
// Runtime invariants (paper Secs. 4.2-4.6; see docs/correctness.md).
// ---------------------------------------------------------------------------

void TfcPortAgent::AuditInvariants(Auditor& audit) const {
  const double quantum = static_cast<double>(config_.delay_quantum.count());
  const double cap = config_.counter_cap_quanta * quantum;

  // Token conservation (Sec. 4.6): the arbiter counter must equal its
  // byte-exact ledger — initial credit plus refills, minus cap overflow and
  // grants, plus forgiven debt. Tolerance scales with ledger volume (each
  // double add can lose ~1 ulp). The ledger is held in Tokens; the audit
  // compares the underlying doubles through the named .value() escape.
  const double expected = counter_initial_.value() + refilled_total_.value() -
                          overflow_total_.value() - debited_total_.value() +
                          forgiven_total_.value();
  const double tol = 1e-6 * (1.0 + refilled_total_.value() + debited_total_.value() +
                             overflow_total_.value() + forgiven_total_.value());
  audit.CheckNear(counter_.value(), expected, tol, "counter==ledger balance");

  // Counter bounds: never above the cap (burst bound), never below the
  // lowest full-window debt floor actually applied. (The floor is a function
  // of rtt_b, which min-corrects downward over time — auditing against the
  // *current* floor would flag historical, then-legal debt.)
  audit.CheckLe(counter_.value(), cap + tol, "counter<=cap");
  audit.CheckGe(counter_.value(), counter_floor_lo_.value() - tol, "counter>=debt floor");

  // Sub-MSS grants are paid for: every admitted quantum was debited, so
  // granted tokens can never exceed what the allocator made available.
  audit.CheckLe(granted_mss_.value(), counter_initial_.value() + refilled_total_.value() + tol,
                "granted<=initial+refilled");

  // Token allocator (Secs. 4.4-4.5): positive token within the bound used
  // at its last clamp; window derived from it with E >= 1 consumers.
  audit.Check(token_ > Tokens(0.0), "token>0");
  // Gate on have_window_, not the cumulative slot count: a state wipe
  // clears the per-boot allocation state (rho, window) but deliberately
  // preserves slots_completed_ as a lifetime statistic.
  if (have_window_) {
    audit.CheckLe(token_.value(), token_bound_hi_.value() * (1.0 + 1e-9), "token<=boost cap");
    audit.CheckGe(token_.value(), quantum * (1.0 - 1e-9), "token>=one quantum");
    audit.CheckGe(last_rho_.value(), config_.rho_floor, "rho>=floor");
    audit.CheckLe(window_.value(), token_.value() * (1.0 + 1e-9), "window<=token");
  }
  audit.CheckGe(E_, 1, "effective flows>=1");
  audit.CheckGe(synfin_count_, 0, "synfin count>=0");

  // RTT estimator (Sec. 4.4): rtt_b is the min over the two epochs.
  audit.Check(rttb_ > 0, "rtt_b>0");
  audit.CheckLe(rttb_, rttb_epoch_min_, "rtt_b<=epoch min");
  audit.CheckLe(rttb_, rttb_prev_epoch_min_, "rtt_b<=prev epoch min");

  // Delay arbiter queue: bounded, and every parked packet is a live sub-MSS
  // RMA ack (a poisoned uid here is a use-after-free of a pooled packet).
  // With expiry enabled no entry may outlive two park timeouts: the release
  // timer fires within one timeout of any park and each firing expires every
  // aged-out entry (they are contiguous at the front, FIFO order).
  audit.CheckLe(delay_queue_.size(), config_.delay_queue_limit, "parked<=limit");
  const TimeNs now = scheduler_->now();
  for (const ParkedAck& parked : delay_queue_) {
    const PacketPtr& p = parked.pkt;
    audit.Check(p->uid != kPoisonUid, "parked packet is live (not freed)");
    audit.Check(p->is_ack() && p->rma, "parked packet is an RMA ack");
    audit.Check(static_cast<double>(p->window) < quantum, "parked window<quantum");
    audit.CheckLe(parked.parked_at, now, "parked in the past");
    if (config_.delay_park_timeout > 0) {
      audit.CheckLe(now - parked.parked_at, 2 * config_.delay_park_timeout,
                    "parked age<=2x park timeout");
    }
  }
  // A non-empty park queue must have a release scheduled, or it would
  // starve (ScheduleRelease runs after every park and every drain).
  audit.Check(delay_queue_.empty() || release_timer_.pending(),
              "release timer armed while acks parked");
}

// ---------------------------------------------------------------------------

int InstallTfcSwitches(Network& network, const TfcSwitchConfig& config) {
  int installed = 0;
  for (const auto& node : network.nodes()) {
    auto* sw = dynamic_cast<Switch*>(node.get());
    if (sw == nullptr) {
      continue;
    }
    for (const auto& port : sw->ports()) {
      port->set_agent(std::make_unique<TfcPortAgent>(sw, port.get(), config));
      ++installed;
    }
  }
  return installed;
}

}  // namespace tfc
