// TFC configuration knobs — switch side and host side.

#ifndef SRC_TFC_CONFIG_H_
#define SRC_TFC_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "src/net/packet.h"
#include "src/sim/time.h"
#include "src/transport/reliable_sender.h"

namespace tfc {

// How the switch estimates the number of consumers per slot.
enum class FlowCountMode {
  // Paper's mechanism (Sec. 4.2): count round-marked packets per slot.
  // Stateless, self-correcting, excludes silent flows.
  kRoundMarks,
  // The strawman the paper rejects (D3-style): a persistent counter bumped
  // on SYN and decremented on FIN. Retransmitted handshakes accumulate
  // error and silent flows keep consuming allocation. Provided for the
  // comparison bench/tests.
  kSynFin,
};

// Per-port switch parameters (paper Sec. 4–5; defaults from Sec. 6.1.1).
struct TfcSwitchConfig {
  FlowCountMode flow_count_mode = FlowCountMode::kRoundMarks;

  // Target link utilization ρ0 used by the token adjustment (Eq. 7).
  double rho0 = 0.97;
  // Disable to ablate the Sec. 4.5 token adjustment: T = c·rtt_b with no
  // ρ0/ρ scaling (the work-conserving benches show what this costs).
  bool enable_token_adjustment = true;
  // Weight of the history token value in the EWMA (Eq. 8, paper: α = 7/8).
  double history_weight = 7.0 / 8.0;
  // Initial rtt_b before any measurement (paper Sec. 5.2: 160 µs).
  TimeNs initial_rttb = Microseconds(160);

  // --- engineering bounds the paper leaves implicit ---
  // Floor on the measured utilization ρ, so the Eq. 7 boost T·ρ0/ρ cannot
  // diverge during a near-idle slot.
  double rho_floor = 0.05;
  // Cap on the token value, as a multiple of c·rtt_b (one BDP). Bounds the
  // work-conserving boost while still allowing multi-bottleneck recovery.
  double token_boost_cap = 4.0;

  // --- RTT measurement ---
  // Only delimiter round-marks whose frame is at least this long update
  // rtt_b (Sec. 4.4: store-and-forward time differs with packet size).
  Bytes rtt_measure_min_frame = 1500;
  // Re-elect the delimiter after 2^k·rtt_last of silence, k <= this
  // (Sec. 5.2: maximum k is 7).
  int max_miss_exponent = 7;
  // rtt_b is a running minimum (paper-faithful with 0 = no aging, the
  // default). Setting this positive takes the minimum over two rotating
  // epochs of this many slots instead: the estimate can then recover from an
  // anomalously short sample, at the cost of slowly absorbing any standing
  // queue into rtt_b (which weakens the zero-queue property — see the
  // fig14_rho0 bench, which only tracks ρ0 with the pure min).
  uint64_t rttb_epoch_slots = 0;

  // --- delay function for sub-MSS windows (Sec. 4.6) ---
  bool enable_delay_function = true;
  // Release quantum: one full-size frame.
  Bytes delay_quantum = kMtuFrameBytes;
  // Counter cap, in quanta, bounding the burst of simultaneously released
  // sub-MSS flows.
  double counter_cap_quanta = 2.0;
  // Fail-open bound on the number of parked ACKs.
  size_t delay_queue_limit = 1 << 16;
  // Parked RMA ACKs older than this are expired (destroyed) instead of
  // released: the flow they grant to has typically FIN'd or died, and an
  // undeliverable grant parked forever would strand arbiter slots (the
  // sender's own retransmission machinery recovers the flow if it is still
  // alive). 0 disables expiry. Expiry is also run when the data path sees
  // the flow's FIN, which is the common, immediate case.
  TimeNs delay_park_timeout = Milliseconds(10);
};

// Host-side parameters.
struct TfcHostConfig {
  TransportConfig transport;

  // After this much idle time a resuming flow re-runs the window-acquisition
  // probe instead of bursting its stale window. Without this, barrier-
  // synchronized workloads (incast rounds) hoard one-MSS grants while idle
  // and fire them simultaneously — n frames hitting one port at once, which
  // overflows the buffer for n in the hundreds. The paper's window
  // acquisition phase covers flow *start*; this extends it to flow *resume*
  // (its Sec. 2 motivates exactly this silent-flow case). Set false for the
  // strictly paper-described behaviour.
  bool resume_probe = true;
  TimeNs resume_idle_threshold = Microseconds(300);

  // Window-acquisition probe retry (robustness to probe/RMA loss). The
  // paper assumes the probe's RMA always returns; with real loss a lost
  // probe or RMA would otherwise wedge the sender in awaiting_probe_rma_
  // until the 200 ms RTO. Instead the sender retries the probe with capped
  // exponential backoff: delay = min(base * 2^attempt, cap), each delay
  // stretched by Uniform[0, jitter) to de-synchronize retry storms.
  // base = 0 disables the dedicated retry timer (RTO-only, the old
  // behaviour).
  TimeNs probe_retry_base = Milliseconds(2);
  TimeNs probe_retry_cap = Milliseconds(100);
  double probe_retry_jitter = 0.25;

  // Weighted-allocation extension (paper Sec. 4.1): this flow counts as
  // `weight` consumers at every switch and scales the granted per-unit
  // window accordingly, so its bandwidth share is weight-proportional.
  // 1 = the paper's equal-share policy.
  uint8_t weight = 1;

  TfcHostConfig() {
    // TFC reacts through switch feedback, not timeouts; the RTO is only a
    // safety net, so the Linux default minimum is kept.
    transport.rto_min = Milliseconds(200);
  }
};

}  // namespace tfc

#endif  // SRC_TFC_CONFIG_H_
