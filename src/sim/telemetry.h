// Telemetry layer: metrics registry, time-series recorder, run exporter.
//
// The paper's entire evaluation (Sec. 6, Figs. 6-16) is built from internal
// time series — per-port queue length, token counter, effective flow count,
// rho, per-flow cwnd — and this layer is the unified way to record them.
//
// Three pieces:
//
//   MetricRegistry   named counters, gauges, and log-linear histograms.
//                    Register once (cold path, name lookup); update on the
//                    hot path through the returned pointer — a branch-free
//                    increment, no map access, no formatting. Callback
//                    gauges invert the flow: components expose an existing
//                    member (queue_bytes_, token_bytes_) through a pull
//                    function, so instrumented hot paths pay nothing at all
//                    until somebody actually samples. Registration also
//                    interns a dense MetricId: sampling loops read through
//                    the id (flat-vector index), never the name.
//
//   TimeSeriesRecorder  samples watched metrics on a fixed cadence into
//                    append/ring buffers through a *compiled sample plan*:
//                    watch names and prefixes resolve to (MetricId, Ring*)
//                    pairs once, re-resolved only when the registry
//                    generation changes, so a tick touches no strings and
//                    no maps. Ticks are *daemon* events
//                    (Scheduler::ScheduleDaemonAfter), so an attached
//                    recorder never keeps Run() alive and never perturbs
//                    "no leaked timers" pending() assertions.
//
//   Run exporter     writes a per-run directory: manifest.json (what ran),
//                    metrics.tfcb (the recorded series, binary spill
//                    format), summary.json (final snapshot of every metric
//                    + profiler sites). ConvertMetricsTfcbToJsonl (exposed
//                    as `tfcsim --convert`) renders the spill back to the
//                    PR-3 metrics.jsonl byte-compatibly. Formats are
//                    documented in docs/observability.md and validated by
//                    tools/telemetry_schema.py in CI.
//
// The registry lives on the Network (Network::metrics()) next to the audit
// registry; components self-register their gauges at construction and
// unregister through ScopedMetrics when destroyed mid-run.

#ifndef SRC_SIM_TELEMETRY_H_
#define SRC_SIM_TELEMETRY_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/inplace_function.h"
#include "src/sim/scheduler.h"
#include "src/sim/time.h"

namespace tfc {

class Auditor;

// Monotonically increasing event count. Hot-path update is `counter->Add()`
// — one add through a stable pointer, no branches. The registry's audit
// hook verifies monotonicity between audit passes.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

  // Test seam for the monotonicity audit: real code never decreases a
  // counter; the audit test uses this to simulate a buggy component.
  void ResetForTest() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Last-written value (instantaneous level: queue depth, cwnd, rho).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Log-linear histogram over non-negative integer samples (latencies in us,
// sizes in bytes). Octaves above 2^kSubBits are split into kSub linear
// sub-buckets, so relative resolution is bounded by 1/kSub (6.25%) while
// the whole uint64 range fits in kNumBuckets fixed slots. Values below kSub
// are recorded exactly. Hot-path Record is a bit-scan plus two increments.
class Histogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSub = 1 << kSubBits;  // 16 sub-buckets per octave
  static constexpr int kNumBuckets = (64 - kSubBits) * kSub + kSub;

  void Record(uint64_t v) {
    ++buckets_[static_cast<size_t>(BucketIndex(v))];
    ++count_;
    sum_ += v;
    if (v > max_) {
      max_ = v;
    }
    if (v < min_) {
      min_ = v;
    }
  }

  // Bucket index for a value; shared with the tests that pin boundaries.
  static int BucketIndex(uint64_t v) {
    const int shift = std::max(0, static_cast<int>(std::bit_width(v)) - 1 - kSubBits);
    return shift * kSub + static_cast<int>(v >> shift);
  }

  // Smallest value mapping to bucket `b` (inverse of BucketIndex).
  static uint64_t BucketLowerBound(int b) {
    if (b < kSub) {
      return static_cast<uint64_t>(b);
    }
    const int shift = b / kSub - 1;
    const uint64_t mantissa = static_cast<uint64_t>(b - shift * kSub);
    return mantissa << shift;
  }

  // One past the largest value mapping to bucket `b` (0 = unbounded top).
  static uint64_t BucketUpperBound(int b) {
    return b + 1 < kNumBuckets ? BucketLowerBound(b + 1) : 0;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return count_ > 0 ? max_ : 0; }
  uint64_t min() const { return count_ > 0 ? min_ : 0; }
  double mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }
  uint64_t bucket_count(int b) const { return buckets_.at(static_cast<size_t>(b)); }

  // Upper estimate of the p-th percentile (p in [0,100]): the smallest
  // bucket upper bound such that at least p% of samples fall at or below
  // it, clamped to the observed max. Error is bounded by one sub-bucket
  // (<= 6.25% relative).
  uint64_t Percentile(double p) const;

  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<uint64_t> buckets_ = std::vector<uint64_t>(kNumBuckets, 0);
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = ~0ull;
};

enum class MetricKind : uint8_t {
  kCounter,
  kGauge,          // push gauge (Gauge::Set)
  kCallbackGauge,  // pull gauge (sampled via function)
  kHistogram,
};

const char* MetricKindName(MetricKind kind);

// Dense interned handle for a registered metric: an index into the
// registry's flat id table, assigned at registration. Id-indexed reads are
// the sampling hot path — one bounds check, one vector index, one kind
// switch; no string, no map. An id freed by Unregister may be reused by a
// later registration, and every register/unregister bumps the registry
// generation, so consumers caching ids (the recorder's sample plan)
// re-resolve exactly when the mapping can have changed.
using MetricId = uint32_t;
inline constexpr MetricId kInvalidMetricId = ~static_cast<MetricId>(0);

// Registry of named metrics. Registration and lookup are cold-path (map by
// name); the returned pointers are stable for the metric's lifetime, so hot
// paths touch only the metric object. Duplicate names abort (TFC_CHECK):
// two components claiming the same series is a wiring bug, not a runtime
// condition. Not thread-safe (the simulator is single-threaded).
class MetricRegistry {
 public:
  using GaugeFn = InplaceFunction<double(), kDefaultInplaceCapacity>;

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* AddCounter(std::string name);
  Gauge* AddGauge(std::string name);
  void AddCallbackGauge(std::string name, GaugeFn fn);
  Histogram* AddHistogram(std::string name);

  // Removes a metric (no-op if absent). Components that can die before the
  // registry (flows, replaced agents) unregister via ScopedMetrics.
  void Unregister(const std::string& name);

  // Removes a metric only if it is still owned by `token` (see
  // ScopedMetrics): after a replace-on-collision, the displaced owner's
  // cleanup must not take the new owner's entry with it.
  void UnregisterOwned(const std::string& name, uint64_t token);

  bool Has(const std::string& name) const { return entries_.count(name) > 0; }
  size_t size() const { return entries_.size(); }

  // Reads the current numeric value of a counter or gauge (histograms and
  // absent names return false). Non-const: callback gauges may be stateful.
  bool Read(const std::string& name, double* out);

  // Id-indexed Read: the sampling hot path. Freed slots, out-of-range ids,
  // and histograms return false. Ids stay valid while generation() is
  // unchanged.
  bool ReadId(MetricId id, double* out) {
    if (id >= by_id_.size() || by_id_[id] == nullptr) {
      return false;
    }
    Entry& e = *by_id_[id];
    switch (e.kind) {
      case MetricKind::kCounter:
        *out = static_cast<double>(e.counter.value());
        return true;
      case MetricKind::kGauge:
        *out = e.gauge.value();
        return true;
      case MetricKind::kCallbackGauge:
        *out = e.fn();
        return true;
      case MetricKind::kHistogram:
        return false;
    }
    return false;
  }

  // A read compiled all the way down: one indirect call through `fn(obj)`
  // with the kind dispatch resolved at compile-the-plan time instead of per
  // sample. Valid under the same contract as ids — until generation()
  // changes.
  struct CompiledRead {
    double (*fn)(void*);
    void* obj;
  };

  // Compiles a live counter/gauge/callback id to a direct read. Histograms,
  // freed slots, and empty callbacks return false (cold path).
  bool CompileReadId(MetricId id, CompiledRead* out) {
    if (id >= by_id_.size() || by_id_[id] == nullptr) {
      return false;
    }
    Entry& e = *by_id_[id];
    switch (e.kind) {
      case MetricKind::kCounter:
        out->fn = [](void* p) {
          return static_cast<double>(static_cast<Counter*>(p)->value());
        };
        out->obj = &e.counter;
        return true;
      case MetricKind::kGauge:
        out->fn = [](void* p) { return static_cast<Gauge*>(p)->value(); };
        out->obj = &e.gauge;
        return true;
      case MetricKind::kCallbackGauge:
        out->fn = e.fn.raw_invoke();
        out->obj = e.fn.raw_storage();
        return out->fn != nullptr;
      case MetricKind::kHistogram:
        return false;
    }
    return false;
  }

  // Resolves a name to its interned id (cold path; kInvalidMetricId when
  // absent), and the kind of a live id (precondition: id is live).
  MetricId IdOf(const std::string& name) const;
  MetricKind KindOfId(MetricId id) const;

  // Bumped on every register and unregister. Consumers holding resolved ids
  // (the recorder's compiled sample plan) re-resolve when this changes.
  uint64_t generation() const { return generation_; }

  // Visits every metric in name order: fn(name, kind). Use Read /
  // FindHistogram to pull values; name order makes exports deterministic.
  template <typename Fn>
  void ForEachName(Fn&& fn) const {
    for (const auto& [name, entry] : entries_) {
      fn(name, entry.kind);
    }
  }

  // Like ForEachName but also hands out the interned id: fn(name, kind, id).
  // Plan builders use this to resolve prefix watches in one ordered pass.
  template <typename Fn>
  void ForEachMetric(Fn&& fn) const {
    for (const auto& [name, entry] : entries_) {
      fn(name, entry.kind, entry.id);
    }
  }

  const Histogram* FindHistogram(const std::string& name) const;
  const Histogram* FindHistogram(MetricId id) const;

  // Runtime-auditor hook: every counter must be monotone between audit
  // passes (a shrinking counter means double-release or reset-in-flight).
  void AuditInvariants(Auditor& audit);

 private:
  friend class ScopedMetrics;

  struct Entry {
    MetricKind kind;
    Counter counter;           // kCounter
    Gauge gauge;               // kGauge
    GaugeFn fn;                // kCallbackGauge
    Histogram* hist = nullptr;  // kHistogram (owned; ~8 KB, heap-allocated)
    uint64_t last_audited = 0;  // monotonicity watermark for counters
    uint64_t owner = 0;         // ScopedMetrics token; 0 = direct registration
    MetricId id = kInvalidMetricId;  // dense slot in by_id_
    ~Entry();
    Entry() : kind(MetricKind::kCounter) {}
    Entry(Entry&&) = delete;
  };

  // `replace` re-claims an existing name (dropping the previous entry)
  // instead of aborting; only ScopedMetrics exposes it.
  Entry& Insert(std::string name, MetricKind kind, uint64_t owner, bool replace);

  // Id bookkeeping: both bump generation_ so cached plans re-resolve.
  void AssignId(Entry& e);
  void ReleaseId(Entry& e);

  uint64_t NewOwnerToken() { return next_owner_token_++; }

  // std::map: stable node addresses (metric pointers survive unrelated
  // inserts/erases) and deterministic name-ordered iteration for exports.
  std::map<std::string, Entry> entries_;
  // Dense id -> entry; nullptr marks a freed slot awaiting reuse. Entry
  // addresses are map-node stable, so these pointers survive churn.
  std::vector<Entry*> by_id_;
  std::vector<MetricId> free_ids_;
  uint64_t generation_ = 1;  // starts above the recorder's "no plan" zero
  uint64_t next_owner_token_ = 1;
};

// RAII bundle of registrations: everything added through this object is
// unregistered when it is destroyed, so a component destroyed mid-run
// cannot leave a dangling callback gauge behind (same contract as
// ScopedAudit). Default-constructed inert; Reset() binds a registry.
class ScopedMetrics {
 public:
  ScopedMetrics() = default;
  explicit ScopedMetrics(MetricRegistry* registry) { Reset(registry); }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;
  ~ScopedMetrics() { Clear(); }

  // Binds (or rebinds) the registry; unregisters anything already added.
  void Reset(MetricRegistry* registry) {
    Clear();
    registry_ = registry;
    token_ = registry_ != nullptr ? registry_->NewOwnerToken() : 0;
  }

  // When set, a name collision re-claims the existing metric instead of
  // aborting. For components that can be legitimately rebuilt for the same
  // resource (a port's protocol agent replaced mid-test): the new instance
  // takes over the names, and the displaced instance's destructor cannot
  // remove them (ownership-token mismatch).
  void set_replace_on_collision(bool v) { replace_ = v; }

  Counter* AddCounter(std::string name);
  Gauge* AddGauge(std::string name);
  void AddCallbackGauge(std::string name, MetricRegistry::GaugeFn fn);
  Histogram* AddHistogram(std::string name);

  MetricRegistry* registry() const { return registry_; }
  bool bound() const { return registry_ != nullptr; }

 private:
  void Clear();

  MetricRegistry* registry_ = nullptr;
  uint64_t token_ = 0;
  bool replace_ = false;
  std::vector<std::string> names_;
};

// Samples watched counters/gauges on a fixed cadence into per-metric
// buffers. Ticks are daemon events: they fire inside Run()/RunUntil() like
// any event but do not keep drain-mode Run() alive and are excluded from
// pending(). A watched metric that disappears (its component unregistered)
// simply stops extending its series.
//
// Ticks run off a compiled sample plan: watches and prefixes resolve once
// to (MetricId, Ring*) pairs, re-resolved only when the registry
// generation changes, so the per-tick cost is an id-indexed read plus a
// ring append per watched metric — no string compares, no map lookups.
class TimeSeriesRecorder {
 public:
  struct Sample {
    // The user-provided (empty) default constructor leaves members
    // uninitialized on purpose: MaterializeLog resize()s rings and then
    // overwrites every slot, and value-initialization would memset
    // megabytes only to throw the zeros away.
    Sample() {}
    Sample(TimeNs t_, double v_) : t(t_), v(v_) {}
    TimeNs t;
    double v;
  };

  TimeSeriesRecorder(Scheduler* scheduler, MetricRegistry* registry)
      : scheduler_(scheduler), registry_(registry) {}
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;
  ~TimeSeriesRecorder() { Stop(); }

  // Watch one metric by exact name (duplicates are ignored: one watch, one
  // sample per tick), or every current and future metric whose name starts
  // with `prefix` (the plan re-expands when the registry changes, so
  // metrics registered after Start() are picked up).
  void Watch(std::string name);
  void WatchPrefix(std::string prefix);
  void WatchAll() { WatchPrefix(""); }

  // Ring capacity per series; 0 (default) = unbounded append. When capped,
  // rings are preallocated at plan build, the newest samples win, and
  // dropped_samples() counts the overwritten.
  void set_max_samples_per_series(size_t n) {
    MaterializeLog();  // drain the flat log before the mode can change
    max_samples_ = n;
    plan_generation_ = 0;  // re-plan so rings preallocate to the new cap
  }

  // Test seam: rebuild the sample plan on every tick instead of only on
  // generation change — the reference the cached plan is checked against.
  void set_replan_every_tick_for_test(bool v) { replan_every_tick_ = v; }

  // Starts sampling every `period`, first tick after `first_delay`
  // (defaults to 0: an immediate baseline sample). Restart re-paces.
  void Start(TimeNs period, TimeNs first_delay = 0);
  void Stop();
  bool running() const { return running_; }

  TimeNs period() const { return period_; }
  uint64_t ticks() const { return ticks_; }
  uint64_t dropped_samples() const { return dropped_; }

  // How many times the sample plan was compiled — equals the number of
  // registry-churn episodes the recorder saw (plus the initial build).
  // ticks() >> plan_rebuilds() is the signature of a healthy hot path.
  uint64_t plan_rebuilds() const { return plan_rebuilds_; }

  // Number of distinct recorded series / total live samples across them
  // (capped rings count their current occupancy, not overwritten history).
  size_t series_count() const { return series_.size(); }
  size_t total_samples() const;

  // Recorded series for `name`, oldest sample first (empty if never
  // sampled). Materializes ring order; cheap for append-mode series.
  std::vector<Sample> Series(const std::string& name) const;

  // Names with at least one sample, sorted.
  std::vector<std::string> SeriesNames() const;

  // Visits every (name, samples oldest-first) pair in name order.
  template <typename Fn>
  void ForEachSeries(Fn&& fn) const {
    MaterializeLog();
    for (const auto& [name, buf] : series_) {
      if (buf.wrapped) {
        fn(name, Unroll(buf));
      } else {
        fn(name, buf.samples);  // already oldest-first; no rotate, no copy
      }
    }
  }

 private:
  struct Ring {
    std::vector<Sample> samples;
    size_t head = 0;  // index of oldest when wrapped
    bool wrapped = false;
  };

  // Uncapped ticks append to a value-stream log — contiguous cursors
  // instead of ~N scattered ring tails — and readers demux into the rings
  // later. A tick stores one timestamp plus its values in plan order; the
  // sid sequence those values map to is snapshotted once per plan epoch,
  // so the per-sample record is just the 8-byte double.
  struct LogEpoch {
    std::vector<uint32_t> sids;  // plan sid order when the epoch began
    uint64_t ticks = 0;          // ticks recorded under this epoch
  };

  // One compiled sample: call `read.fn(read.obj)`, then append — to the
  // flat log (uncapped; sid implied by plan position via the epoch
  // snapshot) or straight into `ring` (capped). Rings live in the
  // node-stable `series_` map, so the pointers survive re-plans, and
  // compiled reads share the id contract: valid until the registry
  // generation moves, which forces a rebuild before the next sample.
  struct PlanEntry {
    MetricRegistry::CompiledRead read;
    uint32_t sid;
    Ring* ring;
  };

  static std::vector<Sample> Unroll(const Ring& ring);

  void Tick();
  void RebuildPlan();
  void AddPlanEntry(const std::string& name, MetricId id);
  void AppendTo(Ring& ring, TimeNs t, double v);
  // Demuxes the flat log into the per-series rings (counted reserve, one
  // pass); cold path, called by readers and on mode changes. Const because
  // every accessor needs it; only the log and ring contents move.
  void MaterializeLog() const;
  void GrowLogV(size_t need) const;  // ensures capacity for `need` more

  Scheduler* scheduler_;
  MetricRegistry* registry_;
  std::vector<std::string> watches_;
  std::vector<std::string> prefixes_;
  std::map<std::string, Ring> series_;
  std::map<std::string, uint32_t> sid_by_name_;
  std::vector<Ring*> rings_by_sid_;  // map-node stable targets for demux
  // Value log, tick-major. A raw buffer instead of std::vector<double>
  // because resize() value-initializes: the tick path would memset every
  // slot it is about to overwrite. GrowLogV keeps amortized growth.
  mutable std::unique_ptr<double[]> log_v_;
  mutable size_t log_v_size_ = 0;
  mutable size_t log_v_cap_ = 0;
  mutable std::vector<TimeNs> log_t_;  // one timestamp per tick
  mutable std::vector<LogEpoch> log_epochs_;
  // Plan changed (or the log drained) since the last epoch snapshot.
  mutable bool epoch_dirty_ = true;
  std::vector<PlanEntry> plan_;
  // plan_[i].read duplicated densely (16B vs 32B stride): the uncapped tick
  // loop streams this array once per tick, so half the stride is half the
  // cache traffic on the hottest loop in the recorder.
  std::vector<MetricRegistry::CompiledRead> plan_reads_;
  uint64_t plan_generation_ = 0;  // registry generation the plan matches;
                                  // 0 = never built (registry starts at 1)
  uint64_t plan_rebuilds_ = 0;
  bool replan_every_tick_ = false;
  TimeNs period_ = 0;
  size_t max_samples_ = 0;
  uint64_t ticks_ = 0;
  uint64_t dropped_ = 0;
  bool running_ = false;
  Scheduler::EventId tick_event_;
};

// ---------------------------------------------------------------------------
// Run exporter: manifest.json + metrics.tfcb + summary.json per run.
// ---------------------------------------------------------------------------

class Profiler;

// metrics.tfcb — compact binary series spill (all fields little-endian):
//
//   header   "TFCB" magic, u32 version (=1), u32 series_count,
//            u64 record_count                              (20 bytes)
//   names    series_count entries of {u32 len, bytes};
//            a name's position in the table is its series_id
//   records  record_count entries of {u32 series_id, u64 t_ns, f64 v},
//            grouped by series in name-table order, oldest first
//
// The converter re-emits the legacy metrics.jsonl byte-compatibly (same
// shortest-round-trip number formatting as the old exporter).
inline constexpr char kTfcbMagic[4] = {'T', 'F', 'C', 'B'};
inline constexpr uint32_t kTfcbVersion = 1;

// Buffered writer for metrics.tfcb. AppendRecord is the hot call: it only
// memcpy-packs into the buffer; file I/O happens in batched Flush()es.
class SpillWriter {
 public:
  static constexpr size_t kRecordBytes = 4 + 8 + 8;  // series_id, t_ns, v
  static constexpr size_t kBufferBytes = 256 * 1024;

  SpillWriter() { buf_.reserve(kBufferBytes); }
  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;
  ~SpillWriter() { Close(); }

  // Opens `path` and writes the header. Returns false on I/O failure.
  bool Open(const std::string& path, uint32_t series_count,
            uint64_t record_count);
  // Appends one name-table entry; call series_count times after Open.
  void AppendName(const std::string& name);
  // Hot path: packs one fixed-width record into the batch buffer.
  void AppendRecord(uint32_t series_id, TimeNs t_ns, double v);
  // Flushes the buffer and closes the file. Returns false if any write
  // failed (sticky across the writer's lifetime).
  bool Close();

 private:
  void Flush();

  std::FILE* file_ = nullptr;
  std::vector<unsigned char> buf_;
  bool ok_ = true;
};

// Offline converter: decodes `tfcb_path` and writes the legacy JSONL
// (`{"t_ns": ..., "name": ..., "v": ...}` per line) to `jsonl_path`,
// byte-compatible with the pre-binary exporter. Returns false and fills
// *error on decode or I/O failure. Exposed via `tfcsim --convert=RUN_DIR`.
bool ConvertMetricsTfcbToJsonl(const std::string& tfcb_path,
                               const std::string& jsonl_path,
                               std::string* error);

// Ordered key/value description of what ran (workload, protocol, topology,
// seeds, flags). Values keep their JSON type; the exporter adds
// schema_version, git_describe, and wall-clock timestamps itself.
class RunManifest {
 public:
  void Set(const std::string& key, const std::string& value);
  void SetInt(const std::string& key, int64_t value);
  void SetDouble(const std::string& key, double value);
  void SetBool(const std::string& key, bool value);

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;  // key -> pre-encoded JSON literal
  }

 private:
  void SetLiteral(const std::string& key, std::string json);
  std::vector<std::pair<std::string, std::string>> entries_;
};

// `git describe --always --dirty` of the working tree, or "unknown" when
// git/repo are unavailable. Cached after the first call (cold path only).
const std::string& GitDescribe();

// Writes the per-run directory (created if needed):
//   dir/manifest.json   schema_version, git describe, timestamps, manifest
//   dir/metrics.tfcb    binary series spill (header-only when recorder is
//                       null); convert to JSONL with tfcsim --convert
//   dir/summary.json    final value of every registry metric, histogram
//                       percentiles, and profiler sites (profiler may be null)
// Returns false and fills *error on filesystem failure. Formats are stable
// and validated by tools/telemetry_schema.py.
bool WriteRunDirectory(const std::string& dir, const RunManifest& manifest,
                       MetricRegistry& metrics, const TimeSeriesRecorder* recorder,
                       const Profiler* profiler, std::string* error);

// JSON string escaping for the exporter and tracers (exposed for tests).
std::string JsonEscape(const std::string& s);
// Finite doubles render with shortest round-trip precision; NaN/inf render
// as null (JSON has no non-finite numbers).
std::string JsonNumber(double v);

}  // namespace tfc

#endif  // SRC_SIM_TELEMETRY_H_
