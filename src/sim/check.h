// Lightweight invariant checking for the simulator.
//
// TFC_CHECK is always on (simulation correctness depends on these holding);
// TFC_DCHECK compiles out in NDEBUG builds and is meant for hot paths.

#ifndef SRC_SIM_CHECK_H_
#define SRC_SIM_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace tfc {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

}  // namespace tfc

#define TFC_CHECK(cond)                               \
  do {                                                \
    if (!(cond)) {                                    \
      ::tfc::CheckFailed(#cond, __FILE__, __LINE__);  \
    }                                                 \
  } while (0)

#ifdef NDEBUG
#define TFC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define TFC_DCHECK(cond) TFC_CHECK(cond)
#endif

#endif  // SRC_SIM_CHECK_H_
