// Lightweight invariant checking for the simulator.
//
// TFC_CHECK is always on (simulation correctness depends on these holding);
// TFC_DCHECK compiles out in NDEBUG builds and is meant for hot paths.
//
// The comparison forms (TFC_CHECK_EQ/NE/LE/LT/GE/GT and their TFC_DCHECK_*
// twins) print both operands on failure, so a violated invariant reports the
// actual values instead of just the spelled-out condition. TFC_CHECK_MSG
// appends stream-style context:
//
//   TFC_CHECK_EQ(sum, queue_bytes_);
//   TFC_CHECK_MSG(rho >= 0.0, "port " << name << " rho=" << rho);
//
// The failure path is deliberately out-of-line and never inlined: the hot
// path pays one predictable branch per check.

#ifndef SRC_SIM_CHECK_H_
#define SRC_SIM_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tfc {

// Post-mortem hook (src/sim/flight.cc): drains every flight recorder armed
// via FlightRecorder::ArmPostMortem to its flight.tfct spill, so the events
// leading up to a failed check survive the abort.
void DumpArmedFlightRecorders();

[[noreturn]] inline void CheckFailed(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", cond, file, line);
  DumpArmedFlightRecorders();
  std::abort();
}

[[noreturn]] inline void CheckFailed(const char* cond, const char* file, int line,
                                     const std::string& detail) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n  %s\n", cond, file, line,
               detail.c_str());
  DumpArmedFlightRecorders();
  std::abort();
}

namespace check_internal {

// Streams an operand into the failure message; char-sized integers print as
// numbers (a uint8_t weight of 1 should report "1", not an SOH byte).
template <typename T>
void StreamOperand(std::ostream& os, const T& v) {
  if constexpr (std::is_same_v<T, signed char> || std::is_same_v<T, unsigned char> ||
                std::is_same_v<T, char>) {
    os << static_cast<int>(v);
  } else {
    os << v;
  }
}

template <typename A, typename B>
[[noreturn, gnu::noinline, gnu::cold]] void CheckOpFailed(const char* expr,
                                                          const char* file, int line,
                                                          const A& a, const B& b) {
  std::ostringstream oss;
  oss << "lhs = ";
  StreamOperand(oss, a);
  oss << ", rhs = ";
  StreamOperand(oss, b);
  CheckFailed(expr, file, line, oss.str());
}

}  // namespace check_internal
}  // namespace tfc

#define TFC_CHECK(cond)                               \
  do {                                                \
    if (!(cond)) {                                    \
      ::tfc::CheckFailed(#cond, __FILE__, __LINE__);  \
    }                                                 \
  } while (0)

// TFC_CHECK_MSG(cond, "context " << value): stream-style detail, evaluated
// only on failure.
#define TFC_CHECK_MSG(cond, stream_expr)                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::std::ostringstream tfc_check_oss_;                                    \
      tfc_check_oss_ << stream_expr;                                          \
      ::tfc::CheckFailed(#cond, __FILE__, __LINE__, tfc_check_oss_.str());    \
    }                                                                         \
  } while (0)

// Operand-printing comparisons. Each operand is evaluated exactly once.
#define TFC_CHECK_OP_(a, b, op)                                                \
  do {                                                                         \
    const auto& tfc_check_a_ = (a);                                            \
    const auto& tfc_check_b_ = (b);                                            \
    if (!(tfc_check_a_ op tfc_check_b_)) {                                     \
      ::tfc::check_internal::CheckOpFailed(#a " " #op " " #b, __FILE__,        \
                                           __LINE__, tfc_check_a_,             \
                                           tfc_check_b_);                      \
    }                                                                          \
  } while (0)

#define TFC_CHECK_EQ(a, b) TFC_CHECK_OP_(a, b, ==)
#define TFC_CHECK_NE(a, b) TFC_CHECK_OP_(a, b, !=)
#define TFC_CHECK_LE(a, b) TFC_CHECK_OP_(a, b, <=)
#define TFC_CHECK_LT(a, b) TFC_CHECK_OP_(a, b, <)
#define TFC_CHECK_GE(a, b) TFC_CHECK_OP_(a, b, >=)
#define TFC_CHECK_GT(a, b) TFC_CHECK_OP_(a, b, >)

#ifdef NDEBUG
#define TFC_DCHECK(cond) \
  do {                   \
  } while (0)
#define TFC_DCHECK_OP_(a, b, op) \
  do {                           \
  } while (0)
#else
#define TFC_DCHECK(cond) TFC_CHECK(cond)
#define TFC_DCHECK_OP_(a, b, op) TFC_CHECK_OP_(a, b, op)
#endif

#define TFC_DCHECK_EQ(a, b) TFC_DCHECK_OP_(a, b, ==)
#define TFC_DCHECK_NE(a, b) TFC_DCHECK_OP_(a, b, !=)
#define TFC_DCHECK_LE(a, b) TFC_DCHECK_OP_(a, b, <=)
#define TFC_DCHECK_LT(a, b) TFC_DCHECK_OP_(a, b, <)
#define TFC_DCHECK_GE(a, b) TFC_DCHECK_OP_(a, b, >=)
#define TFC_DCHECK_GT(a, b) TFC_DCHECK_OP_(a, b, >)

#endif  // SRC_SIM_CHECK_H_
