// Scheduler/component profiler.
//
// Answers "where do the events go and where does the wall-clock go"
// per run instead of per benchmark: each instrumented callback site owns a
// ProfileSite that counts dispatches (always on — one increment through a
// stable pointer) and, only when profiling is enabled, accumulates
// wall-clock and simulated time per site. The whole thing exports through
// the telemetry registry ("profile.<site>.hits" / ".wall_ns" / ".sim_ns"
// callback gauges) and the run exporter's summary.json "profile" section,
// so a telemetry run doubles as a coarse profile.
//
// Wall-clock sampling costs two std::chrono::steady_clock reads per scope;
// the enable flag gates exactly those reads, so a disabled profiler adds a
// predictable branch and nothing else to the hot path (regression-tested by
// bench/micro_core.cc against BENCH_core.json).
//
// Confined, not shared: a Profiler belongs to one Network, sites register
// against that instance (never a process-wide table), so concurrent
// simulations — e.g. sweep workers (src/sim/sweep.h) — profile
// independently without locks.

#ifndef SRC_SIM_PROFILE_H_
#define SRC_SIM_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "src/sim/telemetry.h"
#include "src/sim/time.h"

namespace tfc {

// Per-callback-site accumulator. Obtained once from Profiler::Site() (cold
// path); hot paths touch only the returned pointer.
class ProfileSite {
 public:
  explicit ProfileSite(std::string name) : name_(std::move(name)) {}

  void Hit() { ++hits_; }
  void AddWall(uint64_t ns) { wall_ns_ += ns; }
  void AddSim(TimeNs ns) { sim_ns_ += ns; }

  const std::string& name() const { return name_; }
  uint64_t hits() const { return hits_; }
  uint64_t wall_ns() const { return wall_ns_; }  // lint:allow units (host wall clock)
  TimeNs sim_ns() const { return sim_ns_; }

 private:
  std::string name_;
  uint64_t hits_ = 0;
  // Host wall-clock nanoseconds from std::chrono, not simulated TimeNs —
  // the one clock the unit layer deliberately leaves raw.
  uint64_t wall_ns_ = 0;  // lint:allow units (accumulated only while enabled)
  TimeNs sim_ns_ = 0;     // simulated time attributed by the component
};

// Registry of profile sites. When constructed with a MetricRegistry, each
// site self-exports as "profile.<name>.hits|wall_ns|sim_ns" callback
// gauges, so the time-series recorder and summary.json see sites with no
// extra wiring. Not thread-safe (the simulator is single-threaded).
class Profiler {
 public:
  explicit Profiler(MetricRegistry* registry = nullptr)
      : metrics_(registry), enabled_(ProfileEnabledByDefault()) {}
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Get-or-create the site named `name`. The pointer is stable for the
  // profiler's lifetime.
  ProfileSite* Site(const std::string& name);

  // Enables/disables wall-clock sampling (hit counting is always on).
  // Defaults to the TFC_PROFILE environment variable.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  size_t site_count() const { return sites_.size(); }

  // Visits every site in name order: fn(const ProfileSite&).
  template <typename Fn>
  void ForEachSite(Fn&& fn) const {
    for (const auto& [name, site] : sites_) {
      fn(site);
    }
  }

  static bool ProfileEnabledByDefault();

 private:
  // std::map: stable ProfileSite addresses across unrelated inserts.
  std::map<std::string, ProfileSite> sites_;
  ScopedMetrics metrics_;
  bool enabled_;
};

// RAII wall-clock scope around one callback dispatch:
//
//   void Port::OnSerialized() {
//     ProfileScope prof(profiler_, serialize_site_);
//     ...
//   }
//
// Always counts the hit; reads steady_clock only when the profiler is
// enabled. Null profiler/site pointers make the scope a no-op, so call
// sites need no "is telemetry wired" branches of their own.
class ProfileScope {
 public:
  ProfileScope(Profiler* profiler, ProfileSite* site) : site_(site) {
    if (site_ == nullptr) {
      return;
    }
    site_->Hit();
    if (profiler != nullptr && profiler->enabled()) {
      timing_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;
  ~ProfileScope() {
    if (timing_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      site_->AddWall(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    }
  }

 private:
  ProfileSite* site_;
  bool timing_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tfc

#endif  // SRC_SIM_PROFILE_H_
