// Deterministic random number generation for workloads.
//
// A single Rng instance is threaded through the simulation so that a fixed
// seed reproduces a run bit-for-bit. All distribution helpers are methods
// (rather than std:: distribution objects at call sites) so the consumed
// entropy per call is well defined.

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "src/sim/check.h"

namespace tfc {

class Rng {
 public:
  explicit Rng(uint64_t seed = 1) : engine_(seed) {}

  // Uniform in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Exponential with the given mean (> 0).
  double Exponential(double mean) {
    TFC_CHECK_GT(mean, 0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Lognormal parameterized by the mean and sigma of the underlying normal.
  double Lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  bool Bernoulli(double p) { return Uniform() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Piecewise-linear empirical CDF sampler: given (value, cumulative
// probability) knots, samples by inverse transform with linear interpolation
// between knots. Used to reproduce the measured flow-size and interarrival
// distributions of the DCTCP benchmark workload.
class EmpiricalCdf {
 public:
  struct Knot {
    double value;  // sample value at this knot
    double cum;    // cumulative probability in [0, 1], non-decreasing
  };

  explicit EmpiricalCdf(std::vector<Knot> knots) : knots_(std::move(knots)) {
    TFC_CHECK_GE(knots_.size(), 2u);
    TFC_CHECK_EQ(knots_.front().cum, 0.0);
    TFC_CHECK_EQ(knots_.back().cum, 1.0);
    for (size_t i = 1; i < knots_.size(); ++i) {
      TFC_CHECK_GE(knots_[i].cum, knots_[i - 1].cum);
      TFC_CHECK_GE(knots_[i].value, knots_[i - 1].value);
    }
  }

  double Sample(Rng& rng) const {
    const double u = rng.Uniform();
    // Find the first knot with cum >= u and interpolate from its predecessor.
    size_t hi = 1;
    while (hi < knots_.size() - 1 && knots_[hi].cum < u) {
      ++hi;
    }
    const Knot& a = knots_[hi - 1];
    const Knot& b = knots_[hi];
    if (b.cum <= a.cum) {
      return b.value;
    }
    const double frac = (u - a.cum) / (b.cum - a.cum);
    return a.value + frac * (b.value - a.value);
  }

  // Expected value of the distribution (area under the inverse CDF).
  double Mean() const {
    double mean = 0.0;
    for (size_t i = 1; i < knots_.size(); ++i) {
      const double width = knots_[i].cum - knots_[i - 1].cum;
      mean += width * 0.5 * (knots_[i].value + knots_[i - 1].value);
    }
    return mean;
  }

 private:
  std::vector<Knot> knots_;
};

}  // namespace tfc

#endif  // SRC_SIM_RANDOM_H_
