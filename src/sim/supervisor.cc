#include "src/sim/supervisor.h"

// The supervisor is the one sanctioned process-spawning site in src/: it
// forks one child per run attempt, supervises the fleet single-threaded
// (poll + waitpid, no worker threads), and does only cold-path file I/O —
// once per attempt, never per event. lint:allow hot-io

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "src/sim/check.h"
#include "src/sim/telemetry.h"

namespace tfc {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepMs(int64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
  nanosleep(&ts, nullptr);
}

std::string DescribeSignal(int sig) {
  const char* name = strsignal(sig);
  std::ostringstream oss;
  oss << "signal " << sig << " (" << (name != nullptr ? name : "?") << ")";
  return oss.str();
}

}  // namespace

const char* RunStatusName(RunStatus s) {
  switch (s) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kFailed:
      return "failed";
    case RunStatus::kTimeout:
      return "timeout";
    case RunStatus::kSkippedCached:
      return "skipped-cached";
  }
  return "?";
}

RunSupervisor::RunSupervisor(const SupervisorOptions& options)
    : options_(options) {
  TFC_CHECK_GE(options_.workers, 1);
  TFC_CHECK_GE(options_.max_retries, 0);
}

void RunSupervisor::Add(std::string name, std::string run_dir,
                        std::string cache_key, JobFn fn) {
  TFC_CHECK(fn != nullptr);
  TFC_CHECK_MSG(!ran_, "RunSupervisor is single-use: Add before Run");
  Job job;
  job.name = std::move(name);
  job.run_dir = std::move(run_dir);
  job.cache_key = std::move(cache_key);
  job.fn = std::move(fn);
  job.result.index = static_cast<int>(jobs_.size());
  job.result.name = job.name;
  jobs_.push_back(std::move(job));
}

int64_t RunSupervisor::BackoffMs(int failures, int base_ms, int cap_ms) {
  if (failures < 1) {
    failures = 1;
  }
  if (base_ms < 0) {
    base_ms = 0;
  }
  const int64_t cap = cap_ms < base_ms ? base_ms : cap_ms;
  const int shift = failures - 1 > 30 ? 30 : failures - 1;
  const int64_t ms = static_cast<int64_t>(base_ms) << shift;
  return ms > cap ? cap : ms;
}

uint64_t RunSupervisor::HashKey(const std::string& key) {
  // FNV-1a 64: stable across platforms, good enough to key a done marker
  // (the marker also embeds the full key, so a collision cannot validate
  // a mismatched config — matching compares the whole contents).
  uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string RunSupervisor::DoneMarkerContents(const std::string& cache_key) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(HashKey(cache_key)));
  std::string out = "tfc-run-done v1\nhash ";
  out += hex;
  out += "\nkey ";
  out += cache_key;
  out += "\n";
  return out;
}

std::string RunSupervisor::DoneMarkerPath(const std::string& run_dir) {
  return run_dir + "/done";
}

bool RunSupervisor::DoneMarkerMatches(const std::string& run_dir,
                                      const std::string& cache_key) {
  if (run_dir.empty() || cache_key.empty()) {
    return false;
  }
  std::ifstream f(DoneMarkerPath(run_dir), std::ios::binary);
  if (!f) {
    return false;
  }
  std::ostringstream got;
  got << f.rdbuf();
  return got.str() == DoneMarkerContents(cache_key);
}

bool RunSupervisor::WriteDoneMarker(const std::string& run_dir,
                                    const std::string& cache_key,
                                    std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(run_dir, ec);
  if (ec) {
    *error = "create_directories(" + run_dir + "): " + ec.message();
    return false;
  }
  const std::string path = DoneMarkerPath(run_dir);
  std::ofstream f(path, std::ios::trunc | std::ios::binary);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  f << DoneMarkerContents(cache_key);
  f.flush();
  if (!f) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

std::vector<std::string> RunSupervisor::ListRunDirFiles(
    const std::string& run_dir) {
  std::vector<std::string> out;
  if (run_dir.empty()) {
    return out;
  }
  std::error_code ec;
  std::filesystem::directory_iterator it(run_dir, ec);
  if (ec) {
    return out;
  }
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec) && !ec) {
      out.push_back(entry.path().filename().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RunSupervisor::SalvageForRetry(Job& job, int attempt) {
  // A retry reruns the job into the same run directory; move what the
  // failed attempt left behind (partial telemetry, the flight.tfct
  // post-mortem) out of the blast radius first.
  const std::vector<std::string> files = ListRunDirFiles(job.run_dir);
  if (files.empty()) {
    return;
  }
  const std::filesystem::path salvage_dir =
      std::filesystem::path(job.run_dir) /
      ("salvage-attempt-" + std::to_string(attempt));
  std::error_code ec;
  std::filesystem::create_directories(salvage_dir, ec);
  if (ec) {
    job.result.report += "supervisor: salvage dir failed: " + ec.message() + "\n";
    return;
  }
  for (const std::string& f : files) {
    std::filesystem::rename(std::filesystem::path(job.run_dir) / f,
                            salvage_dir / f, ec);
    if (ec) {
      job.result.report +=
          "supervisor: salvage of " + f + " failed: " + ec.message() + "\n";
    }
  }
  job.result.report += "supervisor: salvaged " + std::to_string(files.size()) +
                       " file(s) from attempt " + std::to_string(attempt) +
                       " to " + salvage_dir.string() + "/\n";
}

bool RunSupervisor::SpawnNext(int64_t now_ms) {
  size_t pick = jobs_.size();
  for (size_t i = 0; i < jobs_.size(); ++i) {
    Job& j = jobs_[i];
    if (!j.done && !j.running && j.ready_at_ms <= now_ms) {
      pick = i;
      break;
    }
  }
  if (pick == jobs_.size()) {
    return false;
  }
  Job& job = jobs_[pick];

  int fds[2];
  if (pipe(fds) != 0) {
    job.result.report += std::string("supervisor: pipe failed: ") +
                         std::strerror(errno) + "\n";
    job.result.status = RunStatus::kFailed;
    job.result.exit_code = 71;  // EX_OSERR
    job.done = true;
    ++completed_;
    return true;
  }

  // Buffered stdio crossing fork would be flushed twice (once per process);
  // drain it on the parent side first. The child itself only write()s.
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    job.result.report += std::string("supervisor: fork failed: ") +
                         std::strerror(errno) + "\n";
    job.result.status = RunStatus::kFailed;
    job.result.exit_code = 71;
    job.done = true;
    ++completed_;
    return true;
  }
  if (pid == 0) {
    // Child: run the job, ship the report over the pipe, and _Exit — no
    // atexit handlers, no static destructors, no double-flushed parent
    // buffers. An abort inside fn() (TFC_CHECK, audit, watchdog) never
    // reaches this epilogue; the post-mortem flight dump and the parent's
    // signal capture cover that path instead.
    close(fds[0]);
    std::string report;
    int code = 0;
    try {
      code = job.fn(&report);
    } catch (const std::exception& e) {
      code = 70;  // EX_SOFTWARE, matching SweepRunner
      report += std::string("sweep job threw: ") + e.what() + "\n";
    } catch (...) {
      code = 70;
      report += "sweep job threw a non-std exception\n";
    }
    const char* p = report.data();
    size_t left = report.size();
    while (left > 0) {
      const ssize_t n = write(fds[1], p, left);
      if (n <= 0) {
        break;
      }
      p += static_cast<size_t>(n);
      left -= static_cast<size_t>(n);
    }
    close(fds[1]);
    std::_Exit(code);
  }

  // Parent.
  close(fds[1]);
  const int flags = fcntl(fds[0], F_GETFL, 0);
  fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
  job.running = true;
  ++job.attempts;
  Child c;
  c.pid = pid;
  c.job = pick;
  c.read_fd = fds[0];
  c.start_ms = now_ms;
  c.deadline_ms = options_.timeout_s > 0.0
                      ? now_ms + static_cast<int64_t>(options_.timeout_s * 1000.0)
                      : 0;
  children_.push_back(std::move(c));
  return true;
}

void RunSupervisor::DrainPipe(Child& c) {
  if (c.read_fd < 0) {
    return;
  }
  char buf[4096];
  for (;;) {
    const ssize_t n = read(c.read_fd, buf, sizeof buf);
    if (n > 0) {
      c.report.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      close(c.read_fd);  // EOF: writer gone
      c.read_fd = -1;
    }
    return;  // EOF, EAGAIN, or error — all end this drain
  }
}

void RunSupervisor::HandleExit(Child& c, int wait_status, int64_t now_ms) {
  DrainPipe(c);
  if (c.read_fd >= 0) {
    close(c.read_fd);
    c.read_fd = -1;
  }
  Job& job = jobs_[c.job];
  job.running = false;
  job.result.attempts = job.attempts;
  job.result.wall_seconds =
      static_cast<double>(now_ms - c.start_ms) / 1000.0;
  job.result.report += c.report;

  const bool exited = WIFEXITED(wait_status);
  const int exit_status = exited ? WEXITSTATUS(wait_status) : 0;
  if (exited && exit_status == 0) {
    job.result.status = RunStatus::kOk;
    job.result.exit_code = 0;
    job.result.term_signal = 0;
    if (!job.run_dir.empty() && !job.cache_key.empty()) {
      std::string error;
      if (!WriteDoneMarker(job.run_dir, job.cache_key, &error)) {
        // A missing marker only costs a redundant re-run on resume; the
        // run itself succeeded, so warn instead of failing it.
        job.result.report +=
            "supervisor: done marker not written: " + error + "\n";
      }
    }
    job.done = true;
    ++completed_;
    return;
  }

  // Failure path: classify, then retry or finalize.
  const int term_signal = WIFSIGNALED(wait_status) ? WTERMSIG(wait_status) : 0;
  const RunStatus status =
      c.kill_sent ? RunStatus::kTimeout : RunStatus::kFailed;
  const int exit_code = exited ? exit_status : 128 + term_signal;

  std::ostringstream line;
  line << "supervisor: " << job.name << " attempt " << job.attempts << "/"
       << (1 + options_.max_retries) << ": ";
  if (status == RunStatus::kTimeout) {
    line << "timed out after " << options_.timeout_s << "s (SIGKILL)";
  } else if (term_signal != 0) {
    line << "killed by " << DescribeSignal(term_signal);
  } else {
    line << "exited with code " << exit_code;
  }

  const bool identical = job.have_failure_sig && job.sig_status == status &&
                         job.sig_exit == exit_code &&
                         job.sig_signal == term_signal;
  const bool can_retry = job.attempts < 1 + options_.max_retries;
  if (can_retry && !identical) {
    const int64_t backoff = BackoffMs(job.attempts, options_.backoff_base_ms,
                                      options_.backoff_cap_ms);
    line << "; retrying in " << backoff << "ms\n";
    job.result.report += line.str();
    job.have_failure_sig = true;
    job.sig_status = status;
    job.sig_exit = exit_code;
    job.sig_signal = term_signal;
    SalvageForRetry(job, job.attempts);
    job.ready_at_ms = now_ms + backoff;
    return;  // back to pending
  }

  if (identical) {
    line << "; same failure twice — deterministic, not retrying\n";
  } else if (options_.max_retries > 0) {
    line << "; retry budget exhausted\n";
  } else {
    line << "\n";
  }
  job.result.report += line.str();
  job.result.status = status;
  job.result.exit_code = exit_code;
  job.result.term_signal = term_signal;
  // Inventory what the failed run left behind (the post-mortem flight.tfct
  // above all) so the manifest can point an operator at it.
  job.result.salvaged = ListRunDirFiles(job.run_dir);
  job.done = true;
  ++completed_;
}

std::vector<SupervisedResult> RunSupervisor::Run() {
  TFC_CHECK_MSG(!ran_, "RunSupervisor::Run is single-use");
  ran_ = true;

  // Resume: verified done markers complete without forking.
  for (Job& job : jobs_) {
    if (options_.resume && DoneMarkerMatches(job.run_dir, job.cache_key)) {
      job.result.status = RunStatus::kSkippedCached;
      job.result.attempts = 0;
      job.result.report = "supervisor: done marker verified, skipping\n";
      job.done = true;
      ++completed_;
    }
  }

  while (completed_ < jobs_.size()) {
    int64_t now = NowMs();
    bool activity = false;
    while (children_.size() < static_cast<size_t>(options_.workers) &&
           SpawnNext(now)) {
      activity = true;
    }
    for (Child& c : children_) {
      DrainPipe(c);
      if (c.deadline_ms > 0 && !c.kill_sent && NowMs() >= c.deadline_ms) {
        kill(c.pid, SIGKILL);
        c.kill_sent = true;
      }
    }
    // Reap with per-pid waitpid: a process-wide waitpid(-1) could steal
    // children that are not ours (GitDescribe's popen, a test harness).
    for (size_t i = 0; i < children_.size();) {
      int wait_status = 0;
      const pid_t p = waitpid(children_[i].pid, &wait_status, WNOHANG);
      if (p == children_[i].pid) {
        HandleExit(children_[i], wait_status, NowMs());
        children_.erase(children_.begin() + static_cast<long>(i));
        activity = true;
      } else {
        ++i;
      }
    }
    if (!activity && completed_ < jobs_.size()) {
      SleepMs(1);
    }
  }

  std::vector<SupervisedResult> out;
  out.reserve(jobs_.size());
  for (Job& job : jobs_) {
    out.push_back(std::move(job.result));
  }
  return out;
}

std::string SweepCacheKey(const std::string& config_fingerprint,
                          uint64_t seed) {
  return config_fingerprint + "|seed=" + std::to_string(seed) +
         "|git=" + GitDescribe() +
         "|sweep_schema=" + std::to_string(kSweepSchemaVersion);
}

bool WriteSweepManifest(const std::string& path, const RunManifest& extra,
                        const std::vector<SupervisedResult>& results,
                        std::string* error) {
  std::vector<SweepRunRow> rows;
  rows.reserve(results.size());
  for (const SupervisedResult& r : results) {
    SweepRunRow row;
    row.index = r.index;
    row.name = r.name;
    row.status = RunStatusName(r.status);
    row.exit_code = r.exit_code;
    row.signal = r.term_signal;
    row.attempts = r.attempts;
    row.wall_seconds = r.wall_seconds;
    row.salvaged = r.salvaged;
    rows.push_back(std::move(row));
  }
  return WriteSweepManifestRows(path, extra, rows, error);
}

}  // namespace tfc
