#include "src/sim/profile.h"

#include <cstdlib>
#include <cstring>

namespace tfc {

ProfileSite* Profiler::Site(const std::string& name) {
  auto it = sites_.find(name);
  if (it != sites_.end()) {
    return &it->second;
  }
  it = sites_.emplace(name, ProfileSite(name)).first;
  ProfileSite* site = &it->second;
  if (metrics_.bound()) {
    metrics_.AddCallbackGauge("profile." + name + ".hits",
                              [site] { return static_cast<double>(site->hits()); });
    metrics_.AddCallbackGauge("profile." + name + ".wall_ns",
                              [site] { return static_cast<double>(site->wall_ns()); });
    metrics_.AddCallbackGauge("profile." + name + ".sim_ns",
                              [site] { return static_cast<double>(site->sim_ns()); });
  }
  return site;
}

bool Profiler::ProfileEnabledByDefault() {
  const char* env = std::getenv("TFC_PROFILE");
  if (env == nullptr) {
    return false;
  }
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "") == 0);
}

}  // namespace tfc
