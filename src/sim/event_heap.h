// Indexed d-ary timer heap.
//
// A 4-ary min-heap over (time, seq) with a slot index, so cancelling an
// event is a true O(log n) removal instead of the classic lazy-tombstone
// scheme. Retransmission timers are cancelled on nearly every ACK, so a
// tombstone set grows with every RTT of every flow; here a cancel physically
// removes the entry and the heap never holds more than the live event count.
//
// Handles are (slab index, generation) pairs: firing or removing an event
// bumps its slab record's generation, so a stale handle — including a
// cancel of an already-fired event — is detected exactly and is a no-op.
//
// Layout notes, because this structure is the single hottest data path in
// the simulator (sifting a 100k-event heap is memory-bound, so every byte
// moved per level counts):
//   - heap slots are 16 bytes: (time, record id). The FIFO tie-break seq
//     lives in the record's Meta entry and is read only when two times
//     compare equal, so the common-case sift touches half the bytes a
//     (time, seq, rec) slot would;
//   - the slot array is allocated 64-byte aligned with the base offset so
//     that a node's four children (indices 4i+1..4i+4) share exactly one
//     cache line — one miss per level instead of up to two;
//   - Pop uses Floyd's hole-sinking: the root hole sinks to a leaf on
//     child-vs-child compares only (3 per level instead of 4), then the
//     displaced last element — which almost always belongs near the bottom
//     — bubbles up a step or less;
//   - the back-index is a per-record Meta array ((seq, heap pos, gen)), so
//     the per-level position writebacks during sifting stay cache-dense;
//     when a record is free, the pos word threads the free list;
//   - callbacks sit in their own chunked slab with stable addresses,
//     touched exactly once on push and once on pop/remove — never during
//     sifting, and never relocated on growth (growing a flat vector of
//     callables would re-run every move constructor through an indirect
//     call, which dominated cold-start cost in profiling). Chunks are
//     default-initialized: value-initializing would memset the whole
//     chunk's callable storage on every capacity step.
// The 4-ary fanout halves tree depth vs binary and, with the alignment
// above, costs one cache line per level.

#ifndef SRC_SIM_EVENT_HEAP_H_
#define SRC_SIM_EVENT_HEAP_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/sim/audit.h"
#include "src/sim/check.h"
#include "src/sim/time.h"

namespace tfc {

template <typename Callback>
class EventHeap {
 public:
  struct Handle {
    uint32_t index = kNullIndex;
    uint32_t gen = 0;
    bool valid() const { return index != kNullIndex; }
  };

  EventHeap() = default;
  EventHeap(const EventHeap&) = delete;
  EventHeap& operator=(const EventHeap&) = delete;
  ~EventHeap() {
    // Chunks are raw storage; every record < meta_.size() holds a
    // constructed Callback (possibly empty) that must be destroyed.
    for (uint32_t rec = 0; rec < meta_.size(); ++rec) {
      CbAt(rec).~Callback();
    }
    ::operator delete(raw_, std::align_val_t{kLineBytes});
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  // Key of the earliest event; heap must be non-empty.
  TimeNs top_time() const { return slots_[0].time; }

  // Inserts an event. `seq` is the FIFO tie-break for equal times and must
  // be unique and increasing across Push calls. `f` is any callable the
  // Callback type accepts; it is constructed directly in the callback slab
  // (no intermediate Callback object, no extra move).
  template <typename F>
  Handle Push(TimeNs time, uint64_t seq, F&& f) {
    uint32_t rec;
    if (free_head_ != kNullIndex) {
      rec = free_head_;
      free_head_ = meta_[rec].pos_or_next_free;
    } else {
      rec = static_cast<uint32_t>(meta_.size());
      if ((rec >> kChunkShift) == cb_chunks_.size()) {
        // Raw storage: entries are constructed lazily on first use, so a
        // new chunk costs one allocation, not an 80KB initialization sweep.
        cb_chunks_.emplace_back(new unsigned char[kChunkBytes]);
      }
      meta_.push_back(Meta{});
      ::new (static_cast<void*>(&CbAt(rec))) Callback();
    }
    CbAt(rec).Assign(std::forward<F>(f));
    meta_[rec].seq = seq;
    if (size_ == cap_) {
      GrowSlots();
    }
    const uint32_t pos = size_++;
    SiftUp(pos, Slot{time, rec, 0});
    return Handle{rec, meta_[rec].gen};
  }

  // Removes the event named by `h` if it is still pending. Returns false
  // for invalid, already-fired, or already-removed handles.
  bool Remove(Handle h) {
    if (!h.valid() || h.index >= meta_.size() || meta_[h.index].gen != h.gen) {
      return false;
    }
    const uint32_t pos = meta_[h.index].pos_or_next_free;
    TFC_DCHECK(pos < size_ && slots_[pos].rec == h.index);
    CbAt(h.index) = Callback();  // destroy the callable eagerly
    FreeRecord(h.index);
    FillHole(pos);
    return true;
  }

  // Structural self-check, used by the runtime auditor and the differential
  // fuzz harness. Re-derives from scratch what the incremental operations
  // maintain: the d-ary heap property, back-index agreement for every live
  // slot, free-list integrity (no cycles, no out-of-range links), and the
  // live + free = allocated record ledger.
  void AuditInvariants(Auditor& audit) const {
    audit.CheckLe(size_, cap_, "size<=cap");
    for (uint32_t pos = 0; pos < size_; ++pos) {
      const uint32_t rec = slots_[pos].rec;
      if (rec >= meta_.size()) {
        audit.Check(false, "slot.rec in range",
                    "pos " + std::to_string(pos) + " rec " + std::to_string(rec));
        continue;
      }
      audit.CheckEq(meta_[rec].pos_or_next_free, pos, "back-index matches slot");
      if (pos > 0) {
        const uint32_t parent = (pos - 1) / kArity;
        audit.Check(!SlotBefore(slots_[pos], slots_[parent]), "heap property",
                    "child at " + std::to_string(pos) + " precedes parent");
      }
    }
    // Walk the free list; it must terminate within the record count (a
    // longer walk means a cycle) and never point into the live heap region.
    uint32_t free_count = 0;
    uint32_t rec = free_head_;
    while (rec != kNullIndex && free_count <= meta_.size()) {
      if (rec >= meta_.size()) {
        audit.Check(false, "free-list link in range", "rec " + std::to_string(rec));
        return;
      }
      ++free_count;
      rec = meta_[rec].pos_or_next_free;
    }
    audit.CheckLe(free_count, meta_.size(), "free list acyclic");
    audit.CheckEq(size_ + free_count, meta_.size(), "live+free==allocated records");
  }

  // Pops the earliest event, returning its callback and writing its time.
  Callback Pop(TimeNs* time) {
    TFC_DCHECK_GT(size_, 0u);
    const uint32_t rec = slots_[0].rec;
    *time = slots_[0].time;
    Callback cb = std::move(CbAt(rec));  // leaves the slab entry empty
    FreeRecord(rec);
    FillHole(0);
    return cb;
  }

 private:
  static constexpr uint32_t kNullIndex = 0xffffffffu;
  static constexpr uint32_t kArity = 4;
  static constexpr size_t kLineBytes = 64;
  static constexpr uint32_t kChunkShift = 10;  // 1024 callbacks per chunk
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr uint32_t kChunkMask = kChunkSize - 1;
  static constexpr size_t kChunkBytes = size_t{kChunkSize} * sizeof(Callback);

  struct Slot {
    TimeNs time;
    uint32_t rec;
    uint32_t pad;
  };
  static_assert(sizeof(Slot) == 16 && std::is_trivially_copyable_v<Slot>);

  // Back-index entry. `pos_or_next_free` is the heap position while the
  // record is live and the free-list link while it is free; the generation
  // disambiguates the two states for stale handles. `seq` is the FIFO
  // tie-break, kept here (not in the heap slot) because it is only read on
  // equal-time compares.
  struct Meta {
    uint64_t seq;
    uint32_t pos_or_next_free;
    uint32_t gen;
  };

  Callback& CbAt(uint32_t rec) {
    unsigned char* chunk = cb_chunks_[rec >> kChunkShift].get();
    return *reinterpret_cast<Callback*>(
        chunk + size_t{rec & kChunkMask} * sizeof(Callback));
  }

  bool SlotBefore(const Slot& a, const Slot& b) const {
    return a.time != b.time ? a.time < b.time
                            : meta_[a.rec].seq < meta_[b.rec].seq;
  }

  void FreeRecord(uint32_t rec) {
    Meta& m = meta_[rec];
    ++m.gen;
    m.pos_or_next_free = free_head_;
    free_head_ = rec;
  }

  // Grows the slot array, keeping `slots_` offset inside the 64B-aligned
  // allocation so child groups (4i+1..4i+4, 16 bytes each) start on cache
  // lines. Slots are trivially copyable, so growth is a single memcpy.
  void GrowSlots() {
    const uint32_t new_cap = cap_ != 0 ? cap_ * 2 : 256;
    void* raw = ::operator new(
        static_cast<size_t>(new_cap) * sizeof(Slot) + kLineBytes,
        std::align_val_t{kLineBytes});
    Slot* slots = reinterpret_cast<Slot*>(static_cast<unsigned char*>(raw) +
                                          (kLineBytes - sizeof(Slot)));
    if (size_ != 0) {
      std::memcpy(slots, slots_, static_cast<size_t>(size_) * sizeof(Slot));
    }
    ::operator delete(raw_, std::align_val_t{kLineBytes});
    raw_ = raw;
    slots_ = slots;
    cap_ = new_cap;
  }

  // Removes the element at `pos`: Floyd's hole-sinking. The hole sinks to a
  // leaf along the min-child path (child-vs-child compares only), then the
  // displaced last element bubbles up from the leaf. Works for the root
  // (Pop) and interior holes (Remove) alike — sift-up is globally valid, so
  // no restore-direction bookkeeping is needed.
  void FillHole(uint32_t pos) {
    --size_;
    if (pos == size_) {
      return;  // the hole was the last element
    }
    for (;;) {
      const uint32_t first_child = pos * kArity + 1;
      if (first_child >= size_) {
        break;
      }
      const uint32_t end = std::min(first_child + kArity, size_);
      uint32_t best = first_child;
      for (uint32_t c = first_child + 1; c < end; ++c) {
        if (SlotBefore(slots_[c], slots_[best])) {
          best = c;
        }
      }
      slots_[pos] = slots_[best];
      meta_[slots_[pos].rec].pos_or_next_free = pos;
      pos = best;
    }
    SiftUp(pos, slots_[size_]);
  }

  // Bubbles `moving` up from `pos` and writes it (and its back-index) into
  // its final position.
  void SiftUp(uint32_t pos, Slot moving) {
    const TimeNs t = moving.time;
    const uint64_t s = meta_[moving.rec].seq;
    while (pos > 0) {
      const uint32_t parent = (pos - 1) / kArity;
      const Slot& p = slots_[parent];
      const bool less = t != p.time ? t < p.time : s < meta_[p.rec].seq;
      if (!less) {
        break;
      }
      slots_[pos] = p;
      meta_[slots_[pos].rec].pos_or_next_free = pos;
      pos = parent;
    }
    slots_[pos] = moving;
    meta_[moving.rec].pos_or_next_free = pos;
  }

  // 16-byte slots in a 64B-aligned buffer; element 1 starts a cache line,
  // so each 4-child group occupies exactly one line.
  Slot* slots_ = nullptr;
  void* raw_ = nullptr;
  uint32_t size_ = 0;
  uint32_t cap_ = 0;
  std::vector<Meta> meta_;  // record -> (seq, heap position / free link, gen)
  // record -> callable, in address-stable raw-storage chunks; untouched by
  // sifting. Alignment: operator new[] returns max_align_t-aligned memory
  // and sizeof(Callback) is a multiple of its alignment.
  std::vector<std::unique_ptr<unsigned char[]>> cb_chunks_;
  uint32_t free_head_ = kNullIndex;
};

}  // namespace tfc

#endif  // SRC_SIM_EVENT_HEAP_H_
