#include "src/sim/sweep.h"

// The sweep runner is the one sanctioned threading site in src/ (with
// src/sim/thread_annotations.h): it owns the worker pool, and everything it
// hands a worker is confined to that worker. File I/O here is cold — once
// per sweep, after the simulations finish. lint:allow hot-io

#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <thread>
#include <utility>

#include "src/sim/check.h"

namespace tfc {

SweepRunner::SweepRunner(int workers) : workers_(workers < 1 ? 1 : workers) {}

void SweepRunner::Add(std::string name, JobFn fn) {
  TFC_CHECK(fn != nullptr);
  jobs_.push_back(Job{std::move(name), std::move(fn)});
}

int SweepRunner::DefaultWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void SweepRunner::WorkerLoop() {
  for (;;) {
    size_t i;
    {
      MutexLock lock(&mu_);
      if (next_ >= jobs_.size()) {
        return;
      }
      i = next_++;
    }
    // Run the job outside the lock: jobs_ is immutable during Run() and the
    // result slot is claimed exclusively via next_, so workers only contend
    // on the two short critical sections around claim and store.
    SweepResult r;
    r.index = static_cast<int>(i);
    r.name = jobs_[i].name;
    const auto start = std::chrono::steady_clock::now();
    try {
      r.exit_code = jobs_[i].fn(&r.report);
    } catch (const std::exception& e) {
      r.exit_code = 70;  // EX_SOFTWARE
      r.report += std::string("sweep job threw: ") + e.what() + "\n";
    } catch (...) {
      r.exit_code = 70;
      r.report += "sweep job threw a non-std exception\n";
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    r.wall_seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
    {
      MutexLock lock(&mu_);
      results_[i] = std::move(r);
    }
  }
}

std::vector<SweepResult> SweepRunner::Run() {
  {
    MutexLock lock(&mu_);
    TFC_CHECK_MSG(next_ == 0 && results_.empty(),
                  "SweepRunner::Run is single-use");
    results_.resize(jobs_.size());
  }
  const size_t pool = std::min<size_t>(static_cast<size_t>(workers_), jobs_.size());
  if (pool <= 1) {
    // Serial path: run in the calling thread — no pool, identical results.
    WorkerLoop();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (size_t w = 0; w < pool; ++w) {
      threads.emplace_back([this] { WorkerLoop(); });
    }
    for (std::thread& t : threads) {
      t.join();
    }
  }
  MutexLock lock(&mu_);
  return std::move(results_);
}

bool WriteSweepManifestRows(const std::string& path, const RunManifest& extra,
                            const std::vector<SweepRunRow>& rows,
                            std::string* error) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      *error = "create_directories(" + parent.string() + "): " + ec.message();
      return false;
    }
  }
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  f << "{\n  \"schema_version\": " << kSweepSchemaVersion << ",\n";
  f << "  \"git_describe\": \"" << JsonEscape(GitDescribe()) << "\",\n";
  f << "  \"sweep\": {";
  bool first = true;
  for (const auto& [key, json] : extra.entries()) {
    f << (first ? "\n" : ",\n") << "    \"" << JsonEscape(key) << "\": " << json;
    first = false;
  }
  f << (first ? "}," : "\n  },") << "\n";
  f << "  \"runs\": [";
  first = true;
  for (const SweepRunRow& r : rows) {
    f << (first ? "\n" : ",\n") << "    {\"index\": " << r.index << ", \"name\": \""
      << JsonEscape(r.name) << "\", \"status\": \"" << JsonEscape(r.status)
      << "\", \"exit_code\": " << r.exit_code << ", \"signal\": " << r.signal
      << ", \"attempts\": " << r.attempts
      << ", \"wall_seconds\": " << JsonNumber(r.wall_seconds);
    if (!r.salvaged.empty()) {
      f << ", \"salvaged\": [";
      for (size_t i = 0; i < r.salvaged.size(); ++i) {
        f << (i == 0 ? "" : ", ") << "\"" << JsonEscape(r.salvaged[i]) << "\"";
      }
      f << "]";
    }
    f << "}";
    first = false;
  }
  f << (first ? "]" : "\n  ]") << "\n}\n";
  f.flush();
  if (!f) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

bool WriteSweepManifest(const std::string& path, const RunManifest& extra,
                        const std::vector<SweepResult>& results,
                        std::string* error) {
  std::vector<SweepRunRow> rows;
  rows.reserve(results.size());
  for (const SweepResult& r : results) {
    SweepRunRow row;
    row.index = r.index;
    row.name = r.name;
    row.status = r.exit_code == 0 ? "ok" : "failed";
    row.exit_code = r.exit_code;
    row.attempts = 1;
    row.wall_seconds = r.wall_seconds;
    rows.push_back(std::move(row));
  }
  return WriteSweepManifestRows(path, extra, rows, error);
}

}  // namespace tfc
