// Parallel experiment-sweep runner.
//
// The paper's evaluation (Figs. 6-16) is a grid of *independent*
// simulations — flow counts, RTTs, loads, seeds — that share nothing but
// the binary they run in. The sweep runner executes such a grid on a small
// worker pool: every job owns a fully isolated simulation instance (its own
// Network, and therefore its own Scheduler, PacketPool, MetricRegistry,
// Profiler, AuditRegistry, and telemetry output directory), so N jobs on J
// workers finish in ~serial/J wall-clock with *bit-identical* per-run
// output — parallelism changes only which thread a run executes on, never
// what it computes (regression-tested by tests/sweep_test.cc, raced-checked
// by the tsan preset, and statically checked by -Wthread-safety under
// clang; see src/sim/thread_annotations.h for the confinement discipline).
//
// Jobs communicate with the caller only through their SweepResult slot:
// stdout-style output is buffered into `report` and emitted by the caller
// in submission order, so interleaving cannot scramble run logs.

#ifndef SRC_SIM_SWEEP_H_
#define SRC_SIM_SWEEP_H_

// The sweep layer is cold orchestration (one callback per *simulation*, not
// per event), so type-erased heap-allocating callables are fine here,
// unlike in the event hot path.
#include <functional>  // lint:allow std-function
#include <string>
#include <vector>

#include "src/sim/telemetry.h"
#include "src/sim/thread_annotations.h"

namespace tfc {

// Outcome of one sweep job, in submission order.
struct SweepResult {
  int index = -1;        // position in submission order
  std::string name;      // caller-supplied label, e.g. "run-0003/tfc"
  int exit_code = 0;     // 0 = success; 70 = job threw
  std::string report;    // buffered human-readable output for this run
  double wall_seconds = 0.0;  // wall-clock of this job alone
};

// Runs a list of independent jobs on `jobs` worker threads (1 = serial, in
// the calling thread). Results land in submission order regardless of
// completion order. The runner is single-use: Add everything, then Run once.
class SweepRunner {
 public:
  // A job writes its buffered output into *report and returns an exit code.
  // The callable must be self-contained: it builds, runs, and tears down its
  // own simulation and touches no state shared with other jobs.
  using JobFn = std::function<int(std::string* report)>;  // lint:allow std-function

  explicit SweepRunner(int workers);
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  void Add(std::string name, JobFn fn);

  // Executes all jobs; blocks until every job has finished. result[i]
  // corresponds to the i-th Add call.
  std::vector<SweepResult> Run();

  int workers() const { return workers_; }
  size_t job_count() const { return jobs_.size(); }

  // std::thread::hardware_concurrency(), clamped to >= 1.
  static int DefaultWorkers();

 private:
  struct Job {
    std::string name;
    JobFn fn;
  };

  void WorkerLoop();

  const int workers_;
  std::vector<Job> jobs_;  // immutable once Run() starts

  Mutex mu_;
  size_t next_ TFC_GUARDED_BY(mu_) = 0;          // next unclaimed job index
  std::vector<SweepResult> results_ TFC_GUARDED_BY(mu_);
};

// sweep.json schema: v2 added per-run status ("ok" / "failed" / "timeout" /
// "skipped-cached"), terminating signal, attempt count, and salvaged-file
// inventory so a degraded sweep is still queryable run by run.
inline constexpr int kSweepSchemaVersion = 2;

// One row of the merged sweep manifest — the common shape between the
// in-process SweepRunner and the fork-based RunSupervisor
// (src/sim/supervisor.h).
struct SweepRunRow {
  int index = -1;
  std::string name;
  std::string status;  // "ok" | "failed" | "timeout" | "skipped-cached"
  int exit_code = 0;
  int signal = 0;      // terminating signal (0 = exited)
  int attempts = 1;
  double wall_seconds = 0.0;
  std::vector<std::string> salvaged;  // files left by a failed run
};

// Writes the merged sweep manifest `<path>` (conventionally
// <sweep-dir>/sweep.json): schema header, sweep-level config from `extra`,
// and one entry per row. Returns false and sets *error on I/O failure.
bool WriteSweepManifestRows(const std::string& path, const RunManifest& extra,
                            const std::vector<SweepRunRow>& rows,
                            std::string* error);

// In-process runner convenience: every SweepResult becomes a single-attempt
// row ("ok" on exit 0, "failed" otherwise, no signal — an in-process job
// that dies by signal takes the whole sweep with it, which is exactly what
// the supervisor exists to fix).
bool WriteSweepManifest(const std::string& path, const RunManifest& extra,
                        const std::vector<SweepResult>& results,
                        std::string* error);

}  // namespace tfc

#endif  // SRC_SIM_SWEEP_H_
