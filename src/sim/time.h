// Simulation time representation.
//
// All simulation timestamps and durations are TimeNs — a strong type over a
// signed 64-bit nanosecond count (src/sim/units.h). Nanosecond granularity
// is fine enough to represent serialization of a minimum-size Ethernet
// frame at 100 Gbps (~6.7 ns) and coarse enough that an int64_t covers
// ~292 years of simulated time. Since PR 7, TimeNs is a real type, not an
// alias: time refuses to mix with byte counts, rates, or tokens at compile
// time.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

#include "src/sim/units.h"

namespace tfc {

inline constexpr TimeNs kNanosecond{1};
inline constexpr TimeNs kMicrosecond = 1000 * kNanosecond;
inline constexpr TimeNs kMillisecond = 1000 * kMicrosecond;
inline constexpr TimeNs kSecond = 1000 * kMillisecond;

// Convenience constructors for readable call sites.
constexpr TimeNs Nanoseconds(int64_t n) { return TimeNs(n); }
constexpr TimeNs Microseconds(int64_t n) { return n * kMicrosecond; }
constexpr TimeNs Milliseconds(int64_t n) { return n * kMillisecond; }
constexpr TimeNs Seconds(double s) {
  return TimeNs(s * static_cast<double>(kSecond.count()));
}

// Conversions to floating-point seconds, for statistics and printing.
constexpr double ToSeconds(TimeNs t) {
  return static_cast<double>(t.count()) / static_cast<double>(kSecond.count());
}
constexpr double ToMicroseconds(TimeNs t) {
  return static_cast<double>(t.count()) / static_cast<double>(kMicrosecond.count());
}
constexpr double ToMilliseconds(TimeNs t) {
  return static_cast<double>(t.count()) / static_cast<double>(kMillisecond.count());
}

}  // namespace tfc

#endif  // SRC_SIM_TIME_H_
