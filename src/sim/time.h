// Simulation time representation.
//
// All simulation timestamps and durations are signed 64-bit nanosecond
// counts. Nanosecond granularity is fine enough to represent serialization
// of a minimum-size Ethernet frame at 100 Gbps (~6.7 ns) and coarse enough
// that an int64_t covers ~292 years of simulated time.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace tfc {

// A point in simulated time, or a duration, in nanoseconds.
using TimeNs = int64_t;

inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1000;
inline constexpr TimeNs kMillisecond = 1000 * kMicrosecond;
inline constexpr TimeNs kSecond = 1000 * kMillisecond;

// Convenience constructors for readable call sites.
constexpr TimeNs Nanoseconds(int64_t n) { return n; }
constexpr TimeNs Microseconds(int64_t n) { return n * kMicrosecond; }
constexpr TimeNs Milliseconds(int64_t n) { return n * kMillisecond; }
constexpr TimeNs Seconds(double s) { return static_cast<TimeNs>(s * static_cast<double>(kSecond)); }

// Conversions to floating-point seconds, for statistics and printing.
constexpr double ToSeconds(TimeNs t) { return static_cast<double>(t) / static_cast<double>(kSecond); }
constexpr double ToMicroseconds(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}
constexpr double ToMilliseconds(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace tfc

#endif  // SRC_SIM_TIME_H_
