// Runtime invariant auditor.
//
// The paper's headline claims — zero congestion loss, near-zero queues,
// per-port token conservation — are properties a reproduction can silently
// violate through a sign error or a leaked packet while the topline numbers
// still "look right". The auditor turns them into machine-checked
// invariants: components register named callbacks that re-derive their
// internal consistency from scratch (queue byte counts vs. actual queue
// contents, pool alloc/free ledgers, heap structure, token ledgers), and
// the registry sweeps every registered component periodically during the
// run and once at teardown.
//
// An audit pass is O(live state) — it walks queues, free lists, and the
// event heap — so it is off by default and enabled in the sanitizer /
// hardened CI presets (cmake -DTFC_AUDIT=ON, or the TFC_AUDIT=1 environment
// variable; see docs/correctness.md). Failures abort with every violated
// invariant listed, the same contract as TFC_CHECK.
//
// Callbacks are InplaceFunctions, not std::functions: the registry lives in
// src/sim where heap-allocating type-erased callables are banned by
// tools/lint.py, and a registration is always a {this}-capture that fits
// inline.
//
// Confined, not shared: each Network owns its AuditRegistry and components
// register with their own Network's instance — there is deliberately no
// process-wide registry, so two simulations auditing concurrently (sweep
// workers, tests/sweep_test.cc MultiInstance*) never touch each other.

#ifndef SRC_SIM_AUDIT_H_
#define SRC_SIM_AUDIT_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/inplace_function.h"

namespace tfc {

// One violated invariant, as reported by a component callback.
struct AuditFailure {
  std::string component;  // registry name, e.g. "tfc.port:nf0.2"
  std::string invariant;  // short id, e.g. "queue_bytes==sum(frames)"
  std::string detail;     // operand values, empty if none were given
};

// Result of one full audit pass.
struct AuditReport {
  uint64_t checks = 0;  // invariants evaluated (passed + failed)
  uint64_t components = 0;
  std::vector<AuditFailure> failures;

  bool ok() const { return failures.empty(); }
  // Human-readable multi-line summary of every failure.
  std::string ToString() const;
};

// Handed to each component callback; records passed/failed invariants.
class Auditor {
 public:
  explicit Auditor(AuditReport* report) : report_(report) {}

  // Records one named invariant; a false `ok` files a failure.
  void Check(bool ok, std::string_view invariant, std::string detail = {});

  // Comparison forms that format both operands into the failure detail
  // (formatting happens only on failure).
  template <typename A, typename B>
  void CheckEq(const A& a, const B& b, std::string_view invariant) {
    const bool ok = a == b;
    Check(ok, invariant, ok ? std::string{} : Format(a, b, "=="));
  }
  template <typename A, typename B>
  void CheckLe(const A& a, const B& b, std::string_view invariant) {
    const bool ok = a <= b;
    Check(ok, invariant, ok ? std::string{} : Format(a, b, "<="));
  }
  template <typename A, typename B>
  void CheckGe(const A& a, const B& b, std::string_view invariant) {
    const bool ok = a >= b;
    Check(ok, invariant, ok ? std::string{} : Format(a, b, ">="));
  }
  // |a - b| <= tol, for floating-point ledgers.
  void CheckNear(double a, double b, double tol, std::string_view invariant);

  // Component name attributed to subsequent Check calls (set by the
  // registry before invoking each callback).
  void set_component(std::string name) { component_ = std::move(name); }
  const std::string& component() const { return component_; }

 private:
  template <typename A, typename B>
  static std::string Format(const A& a, const B& b, const char* op);

  AuditReport* report_;
  std::string component_;
};

template <typename A, typename B>
std::string Auditor::Format(const A& a, const B& b, const char* op) {
  std::ostringstream oss;
  oss << "lhs = " << a << ", rhs = " << b << " (want " << op << ")";
  return oss.str();
}

// Registry of named invariant callbacks. Not thread-safe (the simulator is
// single-threaded). Components unregister via the id (or the ScopedAudit
// RAII helper) when they can be destroyed before the registry.
class AuditRegistry {
 public:
  using AuditFn = InplaceFunction<void(Auditor&), kDefaultInplaceCapacity>;

  AuditRegistry() = default;
  AuditRegistry(const AuditRegistry&) = delete;
  AuditRegistry& operator=(const AuditRegistry&) = delete;

  // Registers `fn` under `name`; returns an id for Unregister.
  uint64_t Register(std::string name, AuditFn fn);
  void Unregister(uint64_t id);

  // Runs every registered callback and collects the results.
  AuditReport RunAll();

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    uint64_t id;
    std::string name;
    AuditFn fn;
  };
  std::vector<Entry> entries_;
  uint64_t next_id_ = 1;
};

// RAII registration: unregisters on destruction, so a component destroyed
// mid-simulation (e.g. a replaced port agent) cannot leave a dangling
// callback behind.
class ScopedAudit {
 public:
  ScopedAudit() = default;
  ScopedAudit(AuditRegistry* registry, std::string name, AuditRegistry::AuditFn fn)
      : registry_(registry), id_(registry->Register(std::move(name), std::move(fn))) {}
  ScopedAudit(const ScopedAudit&) = delete;
  ScopedAudit& operator=(const ScopedAudit&) = delete;
  ~ScopedAudit() {
    if (registry_ != nullptr) {
      registry_->Unregister(id_);
    }
  }

 private:
  AuditRegistry* registry_ = nullptr;
  uint64_t id_ = 0;
};

// True when auditing should be on without an explicit EnableAudit call:
// the TFC_AUDIT environment variable ("1"/"on" enables, "0"/"off"
// disables) overrides the compile-time default (-DTFC_AUDIT=ON presets).
bool AuditEnabledByDefault();

}  // namespace tfc

#endif  // SRC_SIM_AUDIT_H_
