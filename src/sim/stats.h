// Small statistics helpers shared across the library: running summaries,
// percentile extraction, and Jain's fairness index.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/sim/check.h"

namespace tfc {

// Running min/max/mean/variance without storing samples (Welford).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Stores samples for percentile queries (FCT distributions, CDFs).
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Mean() const {
    if (samples_.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (double s : samples_) {
      sum += s;
    }
    return sum / static_cast<double>(samples_.size());
  }

  // Percentile p in [0, 100], linearly interpolated between the two
  // neighbouring order statistics (the "exclusive" definition used by
  // numpy.percentile's default): p maps to fractional rank
  // p/100 * (n - 1), and the result is lerped between samples_[floor] and
  // samples_[ceil]. Exact for p=0 (min) and p=100 (max).
  double Percentile(double p) {
    if (samples_.empty()) {
      return 0.0;
    }
    Sort();
    return PercentileSorted(p);
  }

  // Batch percentile query: one sort, then one interpolation per requested
  // p. Results are in the same order as `ps`.
  std::vector<double> Percentiles(const std::vector<double>& ps) {
    std::vector<double> out;
    out.reserve(ps.size());
    if (samples_.empty()) {
      out.assign(ps.size(), 0.0);
      return out;
    }
    Sort();
    for (double p : ps) {
      out.push_back(PercentileSorted(p));
    }
    return out;
  }

  double Min() {
    Sort();
    return samples_.empty() ? 0.0 : samples_.front();
  }
  double Max() {
    Sort();
    return samples_.empty() ? 0.0 : samples_.back();
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void Sort() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  // Requires Sort() to have run and samples_ to be non-empty.
  double PercentileSorted(double p) const {
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
  }

  std::vector<double> samples_;
  bool sorted_ = false;
};

// Jain's fairness index over per-entity allocations: (sum x)^2 / (n * sum x^2).
// 1.0 = perfectly fair; 1/n = maximally unfair.
inline double JainFairness(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sumsq = 0.0;
  for (double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) {
    return 1.0;
  }
  return sum * sum / (static_cast<double>(xs.size()) * sumsq);
}

}  // namespace tfc

#endif  // SRC_SIM_STATS_H_
