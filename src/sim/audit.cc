#include "src/sim/audit.h"

#include <cmath>
#include <cstdlib>

namespace tfc {

std::string AuditReport::ToString() const {
  std::ostringstream oss;
  oss << "audit: " << checks << " checks over " << components << " components, "
      << failures.size() << " failure(s)";
  for (const AuditFailure& f : failures) {
    oss << "\n  [" << f.component << "] " << f.invariant;
    if (!f.detail.empty()) {
      oss << ": " << f.detail;
    }
  }
  return oss.str();
}

void Auditor::Check(bool ok, std::string_view invariant, std::string detail) {
  ++report_->checks;
  if (!ok) {
    report_->failures.push_back(
        AuditFailure{component_, std::string(invariant), std::move(detail)});
  }
}

void Auditor::CheckNear(double a, double b, double tol, std::string_view invariant) {
  const bool ok = std::abs(a - b) <= tol;
  std::string detail;
  if (!ok) {
    std::ostringstream oss;
    oss << "lhs = " << a << ", rhs = " << b << ", |diff| = " << std::abs(a - b)
        << " > tol " << tol;
    detail = oss.str();
  }
  Check(ok, invariant, std::move(detail));
}

uint64_t AuditRegistry::Register(std::string name, AuditFn fn) {
  const uint64_t id = next_id_++;
  entries_.push_back(Entry{id, std::move(name), std::move(fn)});
  return id;
}

void AuditRegistry::Unregister(uint64_t id) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id == id) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

AuditReport AuditRegistry::RunAll() {
  AuditReport report;
  report.components = entries_.size();
  Auditor auditor(&report);
  for (Entry& e : entries_) {
    auditor.set_component(e.name);
    e.fn(auditor);
  }
  return report;
}

bool AuditEnabledByDefault() {
  if (const char* env = std::getenv("TFC_AUDIT")) {
    // "0", "off", and empty disable; anything else ("1", "on", ...) enables.
    const std::string_view v(env);
    return !(v.empty() || v == "0" || v == "off");
  }
#ifdef TFC_AUDIT_DEFAULT_ON
  return true;
#else
  return false;
#endif
}

}  // namespace tfc
