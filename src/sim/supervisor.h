// Crash-isolated run supervisor: forked children, timeouts, retry, resume.
//
// The in-process SweepRunner (src/sim/sweep.h) is fast and race-checked,
// but it shares one fate with its jobs: a TFC_CHECK trip, audit violation,
// watchdog stall, or plain segfault in *any* run kills the whole sweep and
// discards every completed result. The supervisor is the job-isolation
// layer the Fig. 15/16-scale grids (and the planned tfcsimd service) need:
//
//   * every job executes in a forked child process — an aborting run takes
//     only its own process down, siblings keep running, and the parent
//     captures both the exit status and the terminating signal;
//   * a per-run wall-clock timeout SIGKILLs runaway children (status
//     `timeout`), so one hung run cannot pin a worker slot forever;
//   * failed runs retry up to `max_retries` times with deterministic capped
//     exponential backoff, classifying deterministic vs. transient
//     failures: two attempts that die the *same* way (same status, exit
//     code, and signal) mark the failure deterministic and stop retrying;
//   * artifacts a failed attempt left in its run directory (most notably
//     the post-mortem flight.tfct dump, src/sim/flight.h) are salvaged —
//     moved aside to salvage-attempt-N/ before a retry can clobber them,
//     and inventoried in the result on final failure;
//   * completed runs write a `done` marker keyed by a hash of (config,
//     seed, git-describe, sweep-schema-version); with `resume` set, runs
//     whose marker verifies are skipped (`skipped-cached`) without forking.
//
// Determinism contract: the supervisor never changes what a run computes —
// a retried or resumed run with the same seed produces byte-identical
// output to a clean serial run (regression-tested in
// tests/supervisor_test.cc and gated end-to-end by `ci.sh sweep`).
//
// The parent is single-threaded: concurrency comes from having several
// children alive at once, not from threads, so fork() here never races the
// in-process pool (the two runners are never active simultaneously).

#ifndef SRC_SIM_SUPERVISOR_H_
#define SRC_SIM_SUPERVISOR_H_

// Cold orchestration layer, one callback per *process*: type-erased
// heap-allocating callables are fine here, as in sweep.h.
#include <functional>  // lint:allow std-function
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/sweep.h"

namespace tfc {

// Terminal state of one supervised run.
enum class RunStatus {
  kOk,            // child exited 0
  kFailed,        // nonzero exit or killed by a signal (its own abort/crash)
  kTimeout,       // parent SIGKILLed it at the wall-clock deadline
  kSkippedCached, // resume: verified done marker, never forked
};

const char* RunStatusName(RunStatus s);

struct SupervisorOptions {
  int workers = 1;           // max concurrent children (>= 1)
  int max_retries = 0;       // extra attempts after the first failure
  double timeout_s = 0.0;    // per-run wall-clock limit; 0 = unlimited
  int backoff_base_ms = 250; // first retry delay
  int backoff_cap_ms = 8000; // backoff ceiling
  bool resume = false;       // skip runs with a verified done marker
};

// Outcome of one supervised job, in submission order.
struct SupervisedResult {
  int index = -1;
  std::string name;
  RunStatus status = RunStatus::kOk;
  int exit_code = 0;    // child exit code; 128+signal when signal-killed
  int term_signal = 0;  // terminating signal (0 when it exited)
  int attempts = 0;     // child executions (0 when skipped-cached)
  std::string report;   // every attempt's buffered output, in order
  double wall_seconds = 0.0;  // wall-clock of the final attempt
  // Top-level files left in the run directory by a finally-failed run
  // (flight.tfct, partial telemetry, ...), sorted. Empty on success.
  std::vector<std::string> salvaged;

  bool ok() const {
    return status == RunStatus::kOk || status == RunStatus::kSkippedCached;
  }
};

// Runs a list of independent jobs, each in its own forked child process.
// Single-use like SweepRunner: Add everything, then Run once. POSIX-only
// (fork/pipe/waitpid) — the one sanctioned process-spawning site in src/.
class RunSupervisor {
 public:
  // Same shape as SweepRunner::JobFn: the callable runs *in the child*,
  // builds and tears down its own simulation, writes its buffered output
  // into *report, and returns an exit code. The report crosses back to the
  // parent over a pipe; a crashed child's report is whatever the
  // supervisor can reconstruct (termination cause) plus salvaged files.
  using JobFn = std::function<int(std::string* report)>;  // lint:allow std-function

  explicit RunSupervisor(const SupervisorOptions& options);
  RunSupervisor(const RunSupervisor&) = delete;
  RunSupervisor& operator=(const RunSupervisor&) = delete;

  // `run_dir` is the job's artifact directory ("" = none: no salvage, no
  // caching). `cache_key` keys the done marker ("" = never cached); build
  // it with SweepCacheKey so git-describe and the schema version are in.
  void Add(std::string name, std::string run_dir, std::string cache_key,
           JobFn fn);

  // Executes all jobs; blocks until every job reached a terminal status.
  // result[i] corresponds to the i-th Add call.
  std::vector<SupervisedResult> Run();

  const SupervisorOptions& options() const { return options_; }
  size_t job_count() const { return jobs_.size(); }

  // Deterministic capped exponential backoff before retry number
  // `failures` (1-based): min(cap_ms, base_ms << (failures - 1)).
  static int64_t BackoffMs(int failures, int base_ms, int cap_ms);

  // Done-marker plumbing (exposed for tests and tools).
  static uint64_t HashKey(const std::string& key);  // FNV-1a 64
  static std::string DoneMarkerContents(const std::string& cache_key);
  static std::string DoneMarkerPath(const std::string& run_dir);
  static bool DoneMarkerMatches(const std::string& run_dir,
                                const std::string& cache_key);
  static bool WriteDoneMarker(const std::string& run_dir,
                              const std::string& cache_key,
                              std::string* error);

 private:
  struct Job {
    std::string name;
    std::string run_dir;
    std::string cache_key;
    JobFn fn;
    // Scheduling state (parent-side only).
    int attempts = 0;        // executions started so far
    bool running = false;
    bool done = false;
    int64_t ready_at_ms = 0; // steady-clock ms; backoff gate for retries
    bool have_failure_sig = false;  // previous failure's signature
    RunStatus sig_status = RunStatus::kOk;
    int sig_exit = 0;
    int sig_signal = 0;
    SupervisedResult result;
  };

  struct Child {
    int pid = -1;
    size_t job = 0;
    int read_fd = -1;
    std::string report;      // drained from the pipe so far
    int64_t start_ms = 0;
    int64_t deadline_ms = 0; // 0 = no timeout
    bool kill_sent = false;  // timeout SIGKILL dispatched
  };

  bool SpawnNext(int64_t now_ms);
  void DrainPipe(Child& c);
  void HandleExit(Child& c, int wait_status, int64_t now_ms);
  void SalvageForRetry(Job& job, int attempt);
  static std::vector<std::string> ListRunDirFiles(const std::string& run_dir);

  const SupervisorOptions options_;
  std::vector<Job> jobs_;
  std::vector<Child> children_;
  size_t completed_ = 0;
  bool ran_ = false;
};

// Canonical cache-key string for a sweep run: the caller's config
// fingerprint (every flag that influences the run's output) plus the seed,
// `git describe`, and the sweep.json schema version — so a rebuilt binary
// or a schema bump invalidates cached runs instead of silently reusing
// stale artifacts.
std::string SweepCacheKey(const std::string& config_fingerprint,
                          uint64_t seed);

// Writes the merged sweep manifest (sweep.json, schema v2) from supervised
// results: per-run status/exit_code/signal/attempts/salvaged, written even
// when runs failed so a degraded sweep still ships a queryable manifest.
// Returns false and sets *error on I/O failure.
bool WriteSweepManifest(const std::string& path, const RunManifest& extra,
                        const std::vector<SupervisedResult>& results,
                        std::string* error);

}  // namespace tfc

#endif  // SRC_SIM_SUPERVISOR_H_
