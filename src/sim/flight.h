// Flight recorder: an always-armable binary ring buffer of fixed-width
// simulation events (docs/observability.md "Flight recorder").
//
// The metric registry answers "how much of everything happened"; the flight
// recorder answers "what led up to it". Every packet event (enqueue /
// transmit / drop / deliver / fault-drop) and every TFC control-plane
// transition (token grant/refill, slot begin/end, delimiter adoption and
// failover, acquisition probes and retries, arbiter park/release/expiry,
// agent wipes and re-convergence, link and host faults) can be recorded as
// one 40-byte FlightEvent stamped with sim time, pre-interned node/port
// ids, and a flow id — enough to reconstruct a packet's life or a flow's
// token history as causal spans, offline.
//
// Append follows the telemetry hot-path rules (docs/perf.md, lint.py
// recorder-hot): no allocation, no map/string lookups, no I/O — one armed
// branch, one masked store, one increment. Wraparound is by index mask
// (capacity is rounded up to a power of two), so a long run keeps the most
// recent `capacity` events.
//
// Sinks layer on top of the same event struct:
//   - TextTracer / CountingTracer (src/net/trace.h) render live events;
//   - Dump() drains the ring to a `flight.tfct` binary spill, and
//     ArmPostMortem() registers the ring with a process-wide hook so any
//     TFC_CHECK failure (audit violation, watchdog trip) drains it before
//     aborting;
//   - LoadFlightDump() + the Perfetto exporter (src/net/trace.h) read the
//     spill back for offline analysis.

#ifndef SRC_SIM_FLIGHT_H_
#define SRC_SIM_FLIGHT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace tfc {

enum class FlightEventType : uint8_t {
  // Packet data-path events (ns-2 style; TextTracer chars + - d r x).
  kEnqueue = 0,    // packet entered a port's transmit queue
  kTransmit = 1,   // packet finished serializing onto the link
  kDrop = 2,       // packet tail-dropped at a full buffer
  kDeliver = 3,    // packet handed to a host endpoint
  kFaultDrop = 4,  // packet destroyed by an injected fault

  // TFC control plane (src/tfc): the token machinery behind the packets.
  kSlotBegin = 5,          // a delimiter RM opened a time slot   seq=E
  kSlotEnd = 6,            // slot closed: a=token b=window c=rtt_m(ns) seq=E
  kDelimiterAdopt = 7,     // this flow was elected delimiter
  kDelimiterFailover = 8,  // delimiter went silent: a=miss exponent
  kTokenRefill = 9,        // arbiter counter refill: a=added b=counter
  kTokenGrant = 10,        // window debited from counter: a=grant b=counter
  kArbiterPark = 11,       // sub-MSS RMA parked: a=window c=parked depth
  kArbiterRelease = 12,    // parked RMA released: a=grant b=counter
  kArbiterExpire = 13,     // parked RMA aged out / purged: c=parked depth
  kProbeSend = 14,         // window-acquisition probe sent: a=attempt
  kProbeRetry = 15,        // probe retry timer fired: a=attempt
  kRmaReceive = 16,        // sender got its allocation: a=window b=cwnd
  kAgentWipe = 17,         // switch agent state wiped: a=lifetime wipes
  kAgentConverge = 18,     // first slot completed from cold state: a=slots

  // Fault-injection transitions (src/net/fault.h).
  kLinkDown = 19,
  kLinkUp = 20,
  kHostDown = 21,
  kHostUp = 22,
};

inline constexpr int kFlightEventTypeCount = 23;

// Packet events carry a live Packet at emission time; control events do not.
constexpr bool IsPacketFlightEvent(FlightEventType t) {
  return static_cast<uint8_t>(t) <= static_cast<uint8_t>(FlightEventType::kFaultDrop);
}

// Short stable mnemonic ("slot_end", "grant", ...) used by the text
// renderer, the Perfetto exporter, and the docs event table.
const char* FlightEventName(FlightEventType t);

// FlightEvent.flags bits (packet events only).
inline constexpr uint8_t kFlightRm = 1;   // round-mark bit
inline constexpr uint8_t kFlightRma = 2;  // RM-ack bit (window valid in b)
inline constexpr uint8_t kFlightCe = 4;   // ECN congestion-experienced

// One fixed-width record. All ids are pre-interned integers: Node::id()
// (dense index into Network::nodes()), Port::index(), flow id. The a/b/c
// payload fields are event-specific (see the enum); for packet events
// a=payload length, b=advertised window, c=queue bytes after the event.
struct FlightEvent {
  TimeNs time = 0;    // sim time stamp
  uint64_t seq = 0;   // packet sequence number / event-specific count
  int32_t a = 0;
  int32_t b = 0;
  int32_t c = 0;
  int32_t flow = -1;  // flow/span id (-1 = none)
  int16_t node = -1;  // Node::id()
  int16_t port = -1;  // Port::index() (-1 = node-level event)
  FlightEventType type = FlightEventType::kEnqueue;
  uint8_t ptype = 0;  // PacketType for packet events
  uint8_t flags = 0;  // kFlightRm | kFlightRma | kFlightCe
  uint8_t weight = 0; // packet weight
};
static_assert(sizeof(FlightEvent) == 40, "flight.tfct records are 40 bytes");

// Saturating conversions into the event payload fields: recorder inputs
// arrive as doubles (token values), int64 byte counts, and u32 windows.
constexpr int32_t FlightI32(double v) {
  if (!(v >= static_cast<double>(std::numeric_limits<int32_t>::min()))) {
    return std::numeric_limits<int32_t>::min();  // also catches NaN
  }
  if (v >= static_cast<double>(std::numeric_limits<int32_t>::max())) {
    return std::numeric_limits<int32_t>::max();
  }
  return static_cast<int32_t>(v);
}
constexpr int32_t FlightI32(int64_t v) {
  if (v < std::numeric_limits<int32_t>::min()) {
    return std::numeric_limits<int32_t>::min();
  }
  if (v > std::numeric_limits<int32_t>::max()) {
    return std::numeric_limits<int32_t>::max();
  }
  return static_cast<int32_t>(v);
}
constexpr int32_t FlightI32(uint64_t v) {
  return v > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())
             ? std::numeric_limits<int32_t>::max()
             : static_cast<int32_t>(v);
}
constexpr int32_t FlightI32(uint32_t v) { return FlightI32(static_cast<uint64_t>(v)); }

// Builds a control-plane event skeleton; the call site fills seq/a/b/c.
constexpr FlightEvent ControlFlightEvent(FlightEventType type, int node, int port,
                                         int flow) {
  FlightEvent e;
  e.type = type;
  e.node = static_cast<int16_t>(node);
  e.port = static_cast<int16_t>(port);
  e.flow = flow;
  return e;
}

// Resolves a FlightEvent's interned node id back to a display name.
// Implemented by Network (live rendering) and FlightDump (offline).
class FlightNames {
 public:
  virtual ~FlightNames() = default;
  // Returns an empty view for unknown ids; renderers fall back to "n<id>".
  virtual std::string_view NodeName(int id) const = 0;
};

// The ring. Confined like everything a Network owns: one thread appends.
// Dump() and ForEach() are cold read paths.
class FlightRecorder {
 public:
  static constexpr size_t kMinCapacity = 64;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();  // unregisters any post-mortem hook

  // Preallocates the ring (capacity rounded up to a power of two, minimum
  // kMinCapacity) and starts recording. Re-arming resets the ring.
  void Arm(size_t capacity);
  void Disarm();
  bool armed() const { return armed_; }

  size_t capacity() const { return ring_.size(); }
  // Total appends over the recorder's lifetime (monotone across wraps).
  uint64_t recorded() const { return recorded_; }
  // Events currently live in the ring.
  size_t size() const {
    return recorded_ < static_cast<uint64_t>(ring_.size())
               ? static_cast<size_t>(recorded_)
               : ring_.size();
  }

  // Hot path: one predictable branch when disarmed; when armed, one masked
  // store and one increment. No allocation, no lookups, no I/O.
  void Record(const FlightEvent& e) {
    if (!armed_) {
      return;
    }
    ring_[static_cast<size_t>(recorded_) & mask_] = e;
    ++recorded_;
  }

  // Armed-only variant for the per-packet fast path: claims the next slot
  // so the caller fills the record in place instead of copying 40 bytes
  // through a local. Callers must check armed() first.
  FlightEvent* Append() {
    FlightEvent* slot = &ring_[static_cast<size_t>(recorded_) & mask_];
    ++recorded_;
    return slot;
  }

  // Visits the live window oldest-first (time order: appends are stamped
  // with the monotone scheduler clock).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const uint64_t n = static_cast<uint64_t>(size());
    for (uint64_t i = recorded_ - n; i < recorded_; ++i) {
      fn(ring_[static_cast<size_t>(i) & mask_]);
    }
  }

  // Drains the live window to a `flight.tfct` binary spill (header, node
  // name table, oldest-first records — see docs/observability.md). Cold
  // path; deterministic bytes for a deterministic run (sim time only).
  bool Dump(const std::string& path, const std::vector<std::string>& node_names,
            std::string* error) const;

  // Registers this ring with the process-wide post-mortem hook: any
  // TFC_CHECK failure — including audit-report and watchdog-trip aborts —
  // drains it to `path` before the process dies. The name snapshot is taken
  // now (the Network may be mid-destruction when the dump runs). The hook
  // unregisters on Disarm/destruction.
  void ArmPostMortem(std::string path, std::vector<std::string> node_names);
  void DisarmPostMortem();
  const std::string& post_mortem_path() const { return post_mortem_path_; }

 private:
  friend void DumpArmedFlightRecorders();

  std::vector<FlightEvent> ring_;
  size_t mask_ = 0;
  uint64_t recorded_ = 0;
  bool armed_ = false;
  std::string post_mortem_path_;
  std::vector<std::string> post_mortem_names_;
  bool post_mortem_registered_ = false;
};

// A loaded flight.tfct spill: events oldest-first plus the node name table,
// usable directly as the renderer's name source.
struct FlightDump : FlightNames {
  std::vector<std::string> nodes;
  std::vector<FlightEvent> events;
  uint64_t recorded_total = 0;  // includes events overwritten by wraparound

  std::string_view NodeName(int id) const override {
    return id >= 0 && static_cast<size_t>(id) < nodes.size()
               ? std::string_view(nodes[static_cast<size_t>(id)])
               : std::string_view();
  }
};

// Decodes a flight.tfct spill. Returns false and fills *error on a missing
// file, bad magic/version, or truncation.
bool LoadFlightDump(const std::string& path, FlightDump* out, std::string* error);

}  // namespace tfc

#endif  // SRC_SIM_FLIGHT_H_
