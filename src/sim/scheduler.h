// Discrete-event scheduler.
//
// The scheduler is the heart of the simulator: every link transmission,
// timer expiry, application arrival, and sampler tick is an event. Events
// with equal timestamps fire in insertion order (FIFO tie-break on a
// monotonically increasing sequence number), which makes simulations fully
// deterministic for a fixed seed.

#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/time.h"

namespace tfc {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  // Handle for a scheduled event; can be used to cancel it before it fires.
  // A default-constructed EventId is invalid and safe to Cancel (no-op).
  struct EventId {
    uint64_t seq = 0;
    bool valid() const { return seq != 0; }
  };

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  TimeNs now() const { return now_; }

  // Schedules `cb` to run at absolute time `t` (must be >= now()).
  EventId ScheduleAt(TimeNs t, Callback cb) {
    TFC_CHECK(t >= now_);
    uint64_t seq = ++next_seq_;
    heap_.push(Entry{t, seq, std::move(cb)});
    ++live_;
    return EventId{seq};
  }

  // Schedules `cb` to run `delay` nanoseconds from now (delay >= 0).
  EventId ScheduleAfter(TimeNs delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  // Cancels a pending event. Returns true if the event was still pending.
  // Cancelling an already-fired, already-cancelled, or invalid id is a no-op.
  bool Cancel(EventId id) {
    if (!id.valid() || id.seq > next_seq_) {
      return false;
    }
    bool inserted = cancelled_.insert(id.seq).second;
    if (inserted) {
      --live_;
      return true;
    }
    return false;
  }

  // Number of pending (non-cancelled) events.
  size_t pending() const { return live_; }

  // Total number of events executed so far.
  uint64_t executed() const { return executed_; }

  // Runs until the event queue drains or Stop() is called.
  void Run() {
    stopped_ = false;
    while (!stopped_ && PopAndRunOne(/*limit=*/INT64_MAX)) {
    }
  }

  // Runs all events with timestamp <= t, then advances the clock to t.
  void RunUntil(TimeNs t) {
    TFC_CHECK(t >= now_);
    stopped_ = false;
    while (!stopped_ && PopAndRunOne(t)) {
    }
    if (!stopped_ && now_ < t) {
      now_ = t;
    }
  }

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

 private:
  struct Entry {
    TimeNs time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // Pops and runs the earliest event if its time is <= limit.
  // Returns false when there is nothing (eligible) left.
  bool PopAndRunOne(TimeNs limit) {
    while (!heap_.empty()) {
      const Entry& top = heap_.top();
      if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
        cancelled_.erase(it);
        heap_.pop();
        continue;
      }
      if (top.time > limit) {
        return false;
      }
      // Move the callback out before popping so the entry can be released.
      Entry entry = std::move(const_cast<Entry&>(top));
      heap_.pop();
      --live_;
      TFC_DCHECK(entry.time >= now_);
      now_ = entry.time;
      ++executed_;
      entry.cb();
      return true;
    }
    return false;
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<uint64_t> cancelled_;
  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t live_ = 0;
  bool stopped_ = false;
};

}  // namespace tfc

#endif  // SRC_SIM_SCHEDULER_H_
