// Discrete-event scheduler.
//
// The scheduler is the heart of the simulator: every link transmission,
// timer expiry, application arrival, and sampler tick is an event. Events
// with equal timestamps fire in insertion order (FIFO tie-break on a
// monotonically increasing sequence number), which makes simulations fully
// deterministic for a fixed seed.
//
// Engineering notes (see docs/perf.md): events live in an indexed 4-ary
// heap (src/sim/event_heap.h) so Cancel is a true O(log n) removal — no
// tombstone set that grows with every cancelled retransmission timer — and
// callbacks are small-buffer-optimized move-only callables
// (src/sim/inplace_function.h), so scheduling an event performs zero heap
// allocations.

#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <cstdint>

#include "src/sim/check.h"
#include "src/sim/event_heap.h"
#include "src/sim/inplace_function.h"
#include "src/sim/time.h"

namespace tfc {

class Scheduler {
 public:
  using Callback = InplaceFunction<void(), kDefaultInplaceCapacity>;

  // Handle for a scheduled event; can be used to cancel it before it fires.
  // A default-constructed EventId is invalid and safe to Cancel (no-op), as
  // is the id of an event that has already fired or been cancelled.
  using EventId = EventHeap<Callback>::Handle;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  TimeNs now() const { return now_; }

  // Schedules `cb` to run at absolute time `t` (must be >= now()). Takes
  // the callable itself (not a pre-built Callback) so it can be constructed
  // directly in the event heap's callback slab.
  template <typename F>
  EventId ScheduleAt(TimeNs t, F&& cb) {
    TFC_CHECK(t >= now_);
    return heap_.Push(t, ++next_seq_, std::forward<F>(cb));
  }

  // Schedules `cb` to run `delay` nanoseconds from now (delay >= 0).
  template <typename F>
  EventId ScheduleAfter(TimeNs delay, F&& cb) {
    return ScheduleAt(now_ + delay, std::forward<F>(cb));
  }

  // Cancels a pending event. Returns true if the event was still pending.
  // Cancelling an already-fired, already-cancelled, or invalid id is a no-op.
  bool Cancel(EventId id) { return heap_.Remove(id); }

  // Number of pending (non-cancelled) events.
  size_t pending() const { return heap_.size(); }

  // Total number of events executed so far.
  uint64_t executed() const { return executed_; }

  // Runs until the event queue drains or Stop() is called.
  void Run() {
    stopped_ = false;
    while (!stopped_ && PopAndRunOne(/*limit=*/INT64_MAX)) {
    }
  }

  // Runs all events with timestamp <= t, then advances the clock to t.
  void RunUntil(TimeNs t) {
    TFC_CHECK(t >= now_);
    stopped_ = false;
    while (!stopped_ && PopAndRunOne(t)) {
    }
    if (!stopped_ && now_ < t) {
      now_ = t;
    }
  }

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

 private:
  // Pops and runs the earliest event if its time is <= limit.
  // Returns false when there is nothing eligible left.
  bool PopAndRunOne(TimeNs limit) {
    if (heap_.empty() || heap_.top_time() > limit) {
      return false;
    }
    TimeNs t;
    Callback cb = heap_.Pop(&t);
    TFC_DCHECK(t >= now_);
    now_ = t;
    ++executed_;
    cb();
    return true;
  }

  EventHeap<Callback> heap_;
  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace tfc

#endif  // SRC_SIM_SCHEDULER_H_
