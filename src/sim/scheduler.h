// Discrete-event scheduler.
//
// The scheduler is the heart of the simulator: every link transmission,
// timer expiry, application arrival, and sampler tick is an event. Events
// with equal timestamps fire in insertion order (FIFO tie-break on a
// monotonically increasing sequence number), which makes simulations fully
// deterministic for a fixed seed.
//
// Engineering notes (see docs/perf.md): events live in an indexed 4-ary
// heap (src/sim/event_heap.h) so Cancel is a true O(log n) removal — no
// tombstone set that grows with every cancelled retransmission timer — and
// callbacks are small-buffer-optimized move-only callables
// (src/sim/inplace_function.h), so scheduling an event performs zero heap
// allocations.

#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <cstdint>

#include "src/sim/audit.h"
#include "src/sim/check.h"
#include "src/sim/event_heap.h"
#include "src/sim/inplace_function.h"
#include "src/sim/time.h"

namespace tfc {

class Scheduler {
 public:
  using Callback = InplaceFunction<void(), kDefaultInplaceCapacity>;

  // Handle for a scheduled event; can be used to cancel it before it fires.
  // A default-constructed EventId is invalid and safe to Cancel (no-op), as
  // is the id of an event that has already fired or been cancelled.
  using EventId = EventHeap<Callback>::Handle;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  TimeNs now() const { return now_; }

  // Schedules `cb` to run at absolute time `t` (must be >= now()). Takes
  // the callable itself (not a pre-built Callback) so it can be constructed
  // directly in the event heap's callback slab.
  template <typename F>
  EventId ScheduleAt(TimeNs t, F&& cb) {
    TFC_CHECK_GE(t, now_);
    return heap_.Push(t, ++next_seq_, std::forward<F>(cb));
  }

  // Schedules `cb` to run `delay` nanoseconds from now (delay >= 0).
  template <typename F>
  EventId ScheduleAfter(TimeNs delay, F&& cb) {
    return ScheduleAt(now_ + delay, std::forward<F>(cb));
  }

  // Schedules a *daemon* event: it fires like any other event inside
  // Run()/RunUntil(), but does not keep Run() alive — drain-mode Run()
  // returns as soon as only daemon events remain pending. This is what
  // lets a self-rescheduling background service (the periodic invariant
  // auditor, the telemetry recorder) coexist with tests that run the
  // simulation to completion. A pending daemon event must be cancelled with
  // CancelDaemon, never Cancel — plain Cancel cannot see the daemon
  // accounting and would leave pending() permanently short by one.
  template <typename F>
  EventId ScheduleDaemonAfter(TimeNs delay, F&& cb) {
    ++daemon_pending_;
    return ScheduleAt(now_ + delay,
                      [this, f = std::forward<F>(cb)]() mutable {
                        --daemon_pending_;
                        f();
                      });
  }

  // Cancels a pending event. Returns true if the event was still pending.
  // Cancelling an already-fired, already-cancelled, or invalid id is a no-op.
  bool Cancel(EventId id) { return heap_.Remove(id); }

  // Cancels a pending daemon event (one scheduled with ScheduleDaemonAfter).
  // The daemon counter is adjusted only when the event was actually removed,
  // so cancelling an already-fired daemon id is a safe no-op.
  bool CancelDaemon(EventId id) {
    if (heap_.Remove(id)) {
      TFC_DCHECK_GT(daemon_pending_, 0u);
      --daemon_pending_;
      return true;
    }
    return false;
  }

  // Number of pending (non-cancelled) user events. Daemon events are
  // infrastructure (the invariant auditor's tick) and are excluded, so
  // "no leaked timers" assertions keep working with the auditor enabled.
  size_t pending() const { return heap_.size() - daemon_pending_; }

  // Number of pending events including daemons.
  size_t pending_total() const { return heap_.size(); }

  // Number of pending daemon events.
  size_t daemon_pending() const { return daemon_pending_; }

  // Total number of events executed so far.
  uint64_t executed() const { return executed_; }

  // Runs until the event queue drains (daemon events excepted) or Stop()
  // is called.
  void Run() {
    stopped_ = false;
    while (!stopped_ && PopAndRunOne(/*limit=*/INT64_MAX, /*drain_mode=*/true)) {
    }
  }

  // Runs all events with timestamp <= t, then advances the clock to t.
  void RunUntil(TimeNs t) {
    TFC_CHECK_GE(t, now_);
    stopped_ = false;
    while (!stopped_ && PopAndRunOne(t, /*drain_mode=*/false)) {
    }
    if (!stopped_ && now_ < t) {
      now_ = t;
    }
  }

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  // Runtime-auditor hook: structural validation of the event heap plus the
  // clock/queue relationship (no pending event may be in the past).
  void AuditInvariants(Auditor& audit) const {
    if (!heap_.empty()) {
      audit.CheckGe(heap_.top_time(), now_, "no pending event in the past");
    }
    heap_.AuditInvariants(audit);
  }

 private:
  // Pops and runs the earliest event if its time is <= limit.
  // Returns false when there is nothing eligible left; in drain mode a
  // queue holding only daemon events counts as drained (their times are
  // always > now_ here — an eligible daemon would have been popped on an
  // earlier iteration).
  bool PopAndRunOne(TimeNs limit, bool drain_mode) {
    if (heap_.empty() || heap_.top_time() > limit ||
        (drain_mode && heap_.size() == daemon_pending_)) {
      return false;
    }
    TimeNs t;
    Callback cb = heap_.Pop(&t);
    TFC_DCHECK_GE(t, now_);
    now_ = t;
    ++executed_;
    cb();
    return true;
  }

  EventHeap<Callback> heap_;
  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t daemon_pending_ = 0;
  bool stopped_ = false;
};

}  // namespace tfc

#endif  // SRC_SIM_SCHEDULER_H_
