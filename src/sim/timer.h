// One-shot restartable timer built on the scheduler.
//
// Used for retransmission timeouts, delayed actions, and periodic samplers.
// The timer owns its pending event: destroying or restarting it cancels any
// outstanding expiry, so callbacks never fire on dead objects as long as the
// Timer member outlives the scheduler run (the usual composition is a Timer
// field inside the object whose method it calls).

#ifndef SRC_SIM_TIMER_H_
#define SRC_SIM_TIMER_H_

#include <utility>

#include "src/sim/inplace_function.h"
#include "src/sim/scheduler.h"
#include "src/sim/time.h"

namespace tfc {

class Timer {
 public:
  using Callback = InplaceFunction<void(), kDefaultInplaceCapacity>;

  Timer(Scheduler* scheduler, Callback cb)
      : scheduler_(scheduler), cb_(std::move(cb)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { Cancel(); }

  // (Re)arms the timer to fire `delay` from now. Cancels any pending expiry.
  void RestartAfter(TimeNs delay) {
    Cancel();
    expiry_ = scheduler_->now() + delay;
    id_ = scheduler_->ScheduleAt(expiry_, [this] {
      id_ = {};
      cb_();
    });
  }

  void Cancel() {
    if (id_.valid()) {
      scheduler_->Cancel(id_);
      id_ = {};
    }
  }

  bool pending() const { return id_.valid(); }

  // Absolute expiry time of the last arming (meaningful while pending()).
  TimeNs expiry() const { return expiry_; }

 private:
  Scheduler* scheduler_;
  Callback cb_;
  Scheduler::EventId id_;
  TimeNs expiry_ = 0;
};

// Fixed-interval periodic callback (samplers, application ticks).
class PeriodicTimer {
 public:
  using Callback = InplaceFunction<void(), kDefaultInplaceCapacity>;

  PeriodicTimer(Scheduler* scheduler, Callback cb)
      : scheduler_(scheduler), cb_(std::move(cb)), timer_(scheduler, [this] { Fire(); }) {}

  // Starts ticking every `interval`, first tick at now + interval
  // (or now + first_delay when given).
  void Start(TimeNs interval) { Start(interval, interval); }
  void Start(TimeNs interval, TimeNs first_delay) {
    interval_ = interval;
    stopped_ = false;
    timer_.RestartAfter(first_delay);
  }

  void Stop() {
    stopped_ = true;
    timer_.Cancel();
  }
  bool running() const { return !stopped_ && timer_.pending(); }
  Scheduler* scheduler() const { return scheduler_; }

 private:
  void Fire() {
    cb_();
    // The callback may have called Stop() (the one-shot timer has already
    // fired, so Stop's Cancel alone cannot prevent the re-arm — the
    // `stopped_` flag must be consulted here) or Start() with a new cadence
    // (in which case the timer is pending again and must not be overridden).
    if (!stopped_ && !timer_.pending()) {
      timer_.RestartAfter(interval_);
    }
  }

  Scheduler* scheduler_;
  Callback cb_;
  Timer timer_;
  TimeNs interval_ = 0;
  bool stopped_ = true;
};

}  // namespace tfc

#endif  // SRC_SIM_TIMER_H_
