// Dimensional analysis at compile time: strong unit types for the
// quantities TFC's correctness depends on — time, bytes, tokens, link
// rate, and dimensionless ratios.
//
// TFC is an exercise in unit discipline: tokens are denominated in bytes,
// windows are stamped into packet headers as integers, and BDP is a
// rate x time product. Two shipped bugs were exactly unit/narrowing
// confusions (the StampWindow unguarded double->uint32 cast, the EndSlot
// clamp inversion), so this layer turns that whole bug class into a
// compile error:
//
//   - Quantities of different dimensions do not mix: Bytes + TimeNs,
//     Tokens + Bytes, and every other cross-dimension operator simply do
//     not exist (tests/units_compile_fail/ pins this down).
//   - Nothing converts *out* implicitly: `uint32_t w = bytes;` does not
//     compile. Narrowing to wire-format fields goes through the checked
//     ToU32Saturating() helpers, never a raw static_cast.
//   - Only the physically meaningful products exist:
//         BitsPerSec * TimeNs -> Tokens  (fractional bytes; BDP, capacity)
//         Bytes / BitsPerSec  -> TimeNs  (serialization time, exact integer)
//         Tokens / Tokens     -> Ratio   (utilization rho)
//   - Tokens are byte-denominated but deliberately NOT interconvertible
//     with Bytes: the token-conservation ledger converts only through the
//     explicit Tokens::FromBytes / Tokens::ToBytes boundary, so the ledger
//     arithmetic is dimension-checked end to end.
//
// Zero overhead by construction: every type wraps exactly one scalar, every
// operation is constexpr/inline and performs the same machine arithmetic
// (same operand order, same rounding) as the raw code it replaced — the
// fig08/fig09, sweep, and chaos-replay byte-identity gates prove the
// migration is purely a type-level change.
//
// Entering a dimension from a raw scalar is deliberately cheap (implicit
// from integral literals, so `TimeNs t = 0;` and `Write(64 * 1024)` read
// naturally); floating-point entry is explicit because it truncates.
// Leaving a dimension always names the escape: count(), value(), or an
// explicit cast. The conversion policy table lives in docs/correctness.md.

#ifndef SRC_SIM_UNITS_H_
#define SRC_SIM_UNITS_H_

#include <cstdint>
#include <limits>
#include <ostream>
#include <type_traits>

namespace tfc {

namespace units_internal {
template <typename T>
inline constexpr bool is_integer_v = std::is_integral_v<T> && !std::is_same_v<T, bool>;
}  // namespace units_internal

// Checked narrowing for wire-format fields: clamps into [0, 2^32-1] before
// the float->int conversion, so the cast is always defined behaviour. This
// replaces the unguarded `static_cast<uint32_t>(double)` pattern that was
// UB at giant BDP (the PR 2 StampWindow bug).
constexpr uint32_t SaturatingU32(double v) {
  if (!(v > 0.0)) {  // negative and NaN both clamp to zero
    return 0;
  }
  if (v >= 4294967295.0) {
    return 0xffffffffu;
  }
  return static_cast<uint32_t>(v);
}

constexpr uint32_t SaturatingU32(int64_t v) {
  if (v < 0) {
    return 0;
  }
  if (v > INT64_C(0xffffffff)) {
    return 0xffffffffu;
  }
  return static_cast<uint32_t>(v);
}

// ---------------------------------------------------------------------------
// TimeNs — a point in simulated time, or a duration, in nanoseconds.
//
// Signed 64-bit: fine enough for one min-size frame at 100 Gbps (~6.7 ns),
// wide enough for ~292 years of simulated time. Promoted from a weak
// `using TimeNs = int64_t;` alias to a real type: time now refuses to mix
// with byte counts, rates, or tokens.
// ---------------------------------------------------------------------------
class TimeNs {
 public:
  constexpr TimeNs() = default;
  // Implicit from integer counts: nanoseconds are the native tick, and
  // `TimeNs t = 0;` / `RunUntil(Seconds(2))` must stay frictionless.
  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  constexpr TimeNs(T ns) : ns_(static_cast<int64_t>(ns)) {}  // NOLINT(runtime/explicit)
  // Explicit from floating point: the conversion truncates.
  template <typename T, std::enable_if_t<std::is_floating_point_v<T>, int> = 0>
  explicit constexpr TimeNs(T ns) : ns_(static_cast<int64_t>(ns)) {}

  constexpr int64_t count() const { return ns_; }
  explicit constexpr operator int64_t() const { return ns_; }
  explicit constexpr operator double() const { return static_cast<double>(ns_); }

  constexpr TimeNs& operator+=(TimeNs d) {
    ns_ += d.ns_;
    return *this;
  }
  constexpr TimeNs& operator-=(TimeNs d) {
    ns_ -= d.ns_;
    return *this;
  }
  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  constexpr TimeNs& operator*=(T k) {
    ns_ *= static_cast<int64_t>(k);
    return *this;
  }

  friend constexpr TimeNs operator+(TimeNs a, TimeNs b) { return TimeNs(a.ns_ + b.ns_); }
  friend constexpr TimeNs operator-(TimeNs a, TimeNs b) { return TimeNs(a.ns_ - b.ns_); }
  friend constexpr TimeNs operator-(TimeNs a) { return TimeNs(-a.ns_); }
  // Scaling by a dimensionless integer keeps the dimension.
  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  friend constexpr TimeNs operator*(TimeNs a, T k) {
    return TimeNs(a.ns_ * static_cast<int64_t>(k));
  }
  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  friend constexpr TimeNs operator*(T k, TimeNs a) {
    return TimeNs(static_cast<int64_t>(k) * a.ns_);
  }
  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  friend constexpr TimeNs operator/(TimeNs a, T k) {
    return TimeNs(a.ns_ / static_cast<int64_t>(k));
  }
  // time / time is a dimensionless count (integer division, like the raw
  // int64 arithmetic it replaces).
  friend constexpr int64_t operator/(TimeNs a, TimeNs b) { return a.ns_ / b.ns_; }
  friend constexpr TimeNs operator%(TimeNs a, TimeNs b) { return TimeNs(a.ns_ % b.ns_); }

  friend constexpr bool operator==(TimeNs a, TimeNs b) { return a.ns_ == b.ns_; }
  friend constexpr bool operator!=(TimeNs a, TimeNs b) { return a.ns_ != b.ns_; }
  friend constexpr bool operator<(TimeNs a, TimeNs b) { return a.ns_ < b.ns_; }
  friend constexpr bool operator<=(TimeNs a, TimeNs b) { return a.ns_ <= b.ns_; }
  friend constexpr bool operator>(TimeNs a, TimeNs b) { return a.ns_ > b.ns_; }
  friend constexpr bool operator>=(TimeNs a, TimeNs b) { return a.ns_ >= b.ns_; }

 private:
  int64_t ns_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, TimeNs t) { return os << t.count(); }

// ---------------------------------------------------------------------------
// Bytes — an integer byte count (queue occupancy, buffer limits, flow
// sizes, transfer goals). Signed 64-bit so differences are safe.
// ---------------------------------------------------------------------------
class Bytes {
 public:
  constexpr Bytes() = default;
  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  constexpr Bytes(T n) : n_(static_cast<int64_t>(n)) {}  // NOLINT(runtime/explicit)
  template <typename T, std::enable_if_t<std::is_floating_point_v<T>, int> = 0>
  explicit constexpr Bytes(T n) : n_(static_cast<int64_t>(n)) {}

  constexpr int64_t count() const { return n_; }
  explicit constexpr operator int64_t() const { return n_; }
  explicit constexpr operator double() const { return static_cast<double>(n_); }

  // Checked narrowing to a 32-bit wire-format field.
  constexpr uint32_t ToU32Saturating() const { return SaturatingU32(n_); }

  constexpr Bytes& operator+=(Bytes d) {
    n_ += d.n_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes d) {
    n_ -= d.n_;
    return *this;
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes(a.n_ + b.n_); }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes(a.n_ - b.n_); }
  friend constexpr Bytes operator-(Bytes a) { return Bytes(-a.n_); }
  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  friend constexpr Bytes operator*(Bytes a, T k) {
    return Bytes(a.n_ * static_cast<int64_t>(k));
  }
  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  friend constexpr Bytes operator*(T k, Bytes a) {
    return Bytes(static_cast<int64_t>(k) * a.n_);
  }
  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  friend constexpr Bytes operator/(Bytes a, T k) {
    return Bytes(a.n_ / static_cast<int64_t>(k));
  }
  friend constexpr int64_t operator/(Bytes a, Bytes b) { return a.n_ / b.n_; }

  friend constexpr bool operator==(Bytes a, Bytes b) { return a.n_ == b.n_; }
  friend constexpr bool operator!=(Bytes a, Bytes b) { return a.n_ != b.n_; }
  friend constexpr bool operator<(Bytes a, Bytes b) { return a.n_ < b.n_; }
  friend constexpr bool operator<=(Bytes a, Bytes b) { return a.n_ <= b.n_; }
  friend constexpr bool operator>(Bytes a, Bytes b) { return a.n_ > b.n_; }
  friend constexpr bool operator>=(Bytes a, Bytes b) { return a.n_ >= b.n_; }

 private:
  int64_t n_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Bytes b) { return os << b.count(); }

// ---------------------------------------------------------------------------
// Ratio — a dimensionless quantity (utilization rho, EWMA weights, link
// fractions). Converts to and from double freely: there is no dimension to
// protect, the type exists so signatures can say what they mean.
// ---------------------------------------------------------------------------
class Ratio {
 public:
  constexpr Ratio() = default;
  constexpr Ratio(double v) : v_(v) {}  // NOLINT(runtime/explicit)
  constexpr operator double() const { return v_; }  // NOLINT(runtime/explicit)
  constexpr double value() const { return v_; }

 private:
  double v_ = 0.0;
};

// ---------------------------------------------------------------------------
// Tokens — TFC's allocation currency. Byte-denominated (one token buys one
// byte of transmission) but *fractional*: refills accrue at rho0*c per
// nanosecond and the EWMA mixes histories, so the ledger lives in doubles.
//
// Deliberately NOT interconvertible with Bytes: a token is a *claim* on
// future transmission, not traffic that happened. Crossing the boundary is
// explicit — Tokens::FromBytes() when measured traffic enters the ledger,
// ToBytes()/ToU32Saturating() when an allocation is stamped into a packet —
// so conservation arithmetic (counter == initial + refilled - overflow -
// debited + forgiven) is dimension-checked by the compiler.
// ---------------------------------------------------------------------------
class Tokens {
 public:
  constexpr Tokens() = default;
  explicit constexpr Tokens(double v) : v_(v) {}

  static constexpr Tokens FromBytes(Bytes b) {
    return Tokens(static_cast<double>(b.count()));
  }

  constexpr double value() const { return v_; }
  explicit constexpr operator double() const { return v_; }

  // Truncating conversion back to integer bytes (named, never implicit).
  constexpr Bytes ToBytes() const { return Bytes(static_cast<int64_t>(v_)); }
  // Checked narrowing to a 32-bit wire-format window field.
  constexpr uint32_t ToU32Saturating() const { return SaturatingU32(v_); }

  constexpr Tokens& operator+=(Tokens d) {
    v_ += d.v_;
    return *this;
  }
  constexpr Tokens& operator-=(Tokens d) {
    v_ -= d.v_;
    return *this;
  }

  friend constexpr Tokens operator+(Tokens a, Tokens b) { return Tokens(a.v_ + b.v_); }
  friend constexpr Tokens operator-(Tokens a, Tokens b) { return Tokens(a.v_ - b.v_); }
  friend constexpr Tokens operator-(Tokens a) { return Tokens(-a.v_); }
  friend constexpr Tokens operator*(Tokens a, double k) { return Tokens(a.v_ * k); }
  friend constexpr Tokens operator*(double k, Tokens a) { return Tokens(k * a.v_); }
  friend constexpr Tokens operator/(Tokens a, double k) { return Tokens(a.v_ / k); }
  // tokens / tokens is dimensionless (utilization, shares).
  friend constexpr Ratio operator/(Tokens a, Tokens b) { return Ratio(a.v_ / b.v_); }

  friend constexpr bool operator==(Tokens a, Tokens b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Tokens a, Tokens b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Tokens a, Tokens b) { return a.v_ < b.v_; }
  friend constexpr bool operator<=(Tokens a, Tokens b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>(Tokens a, Tokens b) { return a.v_ > b.v_; }
  friend constexpr bool operator>=(Tokens a, Tokens b) { return a.v_ >= b.v_; }

 private:
  double v_ = 0.0;
};

inline std::ostream& operator<<(std::ostream& os, Tokens t) { return os << t.value(); }

// ---------------------------------------------------------------------------
// BitsPerSec — a link rate. Unsigned 64-bit bits per second (100 Gbps is
// 1e11, far inside range).
// ---------------------------------------------------------------------------
class BitsPerSec {
 public:
  constexpr BitsPerSec() = default;
  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  constexpr BitsPerSec(T bps) : bps_(static_cast<uint64_t>(bps)) {}  // NOLINT(runtime/explicit)

  constexpr uint64_t count() const { return bps_; }
  explicit constexpr operator uint64_t() const { return bps_; }
  explicit constexpr operator double() const { return static_cast<double>(bps_); }

  // The rate as fractional bytes per nanosecond / per second — the exact
  // double expressions the control-plane math has always used, so swapping
  // a cached `double bytes_per_ns_` for `rate_.bytes_per_ns()` is
  // bit-identical.
  constexpr double bytes_per_ns() const { return static_cast<double>(bps_) / 8.0 / 1e9; }
  constexpr double bytes_per_sec() const { return static_cast<double>(bps_) / 8.0; }

  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  friend constexpr BitsPerSec operator*(BitsPerSec a, T k) {
    return BitsPerSec(a.bps_ * static_cast<uint64_t>(k));
  }
  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  friend constexpr BitsPerSec operator*(T k, BitsPerSec a) {
    return BitsPerSec(static_cast<uint64_t>(k) * a.bps_);
  }
  template <typename T, std::enable_if_t<units_internal::is_integer_v<T>, int> = 0>
  friend constexpr BitsPerSec operator/(BitsPerSec a, T k) {
    return BitsPerSec(a.bps_ / static_cast<uint64_t>(k));
  }
  friend constexpr double operator/(BitsPerSec a, BitsPerSec b) {
    return static_cast<double>(a.bps_) / static_cast<double>(b.bps_);
  }

  friend constexpr bool operator==(BitsPerSec a, BitsPerSec b) { return a.bps_ == b.bps_; }
  friend constexpr bool operator!=(BitsPerSec a, BitsPerSec b) { return a.bps_ != b.bps_; }
  friend constexpr bool operator<(BitsPerSec a, BitsPerSec b) { return a.bps_ < b.bps_; }
  friend constexpr bool operator<=(BitsPerSec a, BitsPerSec b) { return a.bps_ <= b.bps_; }
  friend constexpr bool operator>(BitsPerSec a, BitsPerSec b) { return a.bps_ > b.bps_; }
  friend constexpr bool operator>=(BitsPerSec a, BitsPerSec b) { return a.bps_ >= b.bps_; }

 private:
  uint64_t bps_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, BitsPerSec r) { return os << r.count(); }

// ---------------------------------------------------------------------------
// The physically meaningful cross-dimension products. Nothing else exists:
// Bytes + TimeNs, Tokens + Bytes, TimeNs * TimeNs and friends are compile
// errors (tests/units_compile_fail/).
// ---------------------------------------------------------------------------

// rate x time -> fractional bytes (BDP, slot capacity). Same double math as
// the raw `bytes_per_ns * (double)ns` it replaces.
constexpr Tokens operator*(BitsPerSec rate, TimeNs t) {
  return Tokens(rate.bytes_per_ns() * static_cast<double>(t.count()));
}
constexpr Tokens operator*(TimeNs t, BitsPerSec rate) { return rate * t; }

// bytes / rate -> serialization time. Exact integer arithmetic in 128 bits
// (bits * 1e9 cannot overflow), truncating like the port TX path always has.
constexpr TimeNs operator/(Bytes b, BitsPerSec rate) {
  const unsigned __int128 bits = static_cast<unsigned __int128>(b.count()) * 8;
  return TimeNs(static_cast<int64_t>(bits * 1'000'000'000ull / rate.count()));
}

}  // namespace tfc

// std::numeric_limits<UnitType>: without these, the unspecialized primary
// template silently "works" — numeric_limits<TimeNs>::max() compiles and
// returns TimeNs{} == 0, which turned the fault injector's "no stop
// configured" sentinel into "stop immediately" during the migration. The
// specializations give max/min/lowest their obvious meanings; every other
// numeric_limits member is intentionally absent so novel uses fail loud.
namespace std {
template <>
class numeric_limits<tfc::TimeNs> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr tfc::TimeNs max() noexcept { return tfc::TimeNs(numeric_limits<int64_t>::max()); }
  static constexpr tfc::TimeNs min() noexcept { return tfc::TimeNs(numeric_limits<int64_t>::min()); }
  static constexpr tfc::TimeNs lowest() noexcept { return min(); }
};
template <>
class numeric_limits<tfc::Bytes> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr tfc::Bytes max() noexcept { return tfc::Bytes(numeric_limits<int64_t>::max()); }
  static constexpr tfc::Bytes min() noexcept { return tfc::Bytes(numeric_limits<int64_t>::min()); }
  static constexpr tfc::Bytes lowest() noexcept { return min(); }
};
template <>
class numeric_limits<tfc::Tokens> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr tfc::Tokens max() noexcept { return tfc::Tokens(numeric_limits<double>::max()); }
  static constexpr tfc::Tokens min() noexcept { return tfc::Tokens(numeric_limits<double>::min()); }
  static constexpr tfc::Tokens lowest() noexcept { return tfc::Tokens(numeric_limits<double>::lowest()); }
};
template <>
class numeric_limits<tfc::BitsPerSec> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr tfc::BitsPerSec max() noexcept { return tfc::BitsPerSec(numeric_limits<uint64_t>::max()); }
  static constexpr tfc::BitsPerSec min() noexcept { return tfc::BitsPerSec(0); }
  static constexpr tfc::BitsPerSec lowest() noexcept { return min(); }
};
}  // namespace std

#endif  // SRC_SIM_UNITS_H_
