// Clang Thread Safety Analysis annotations + annotated mutex wrappers.
//
// The simulator's threading model is *confinement*: one simulation instance
// (Network, Scheduler, PacketPool, registries, apps) is owned end-to-end by
// exactly one thread, and the sweep runner (src/sim/sweep.h) runs many such
// instances on a small worker pool. Under that model almost nothing needs a
// lock — the only legitimate cross-thread state is the handful of
// process-wide caches (e.g. the git-describe cache in src/sim/telemetry.cc)
// and the sweep runner's own work queue.
//
// This header makes both halves of the model checkable at compile time with
// Clang's -Wthread-safety (the capability/annotation system described in
// "C/C++ Thread Safety Analysis", CAV 2014, and used throughout abseil):
//
//   * every mutex in src/ must be a tfc::Mutex (tools/lint.py bans raw
//     std::mutex outside this header and src/sim/sweep.cc), so every lock
//     is visible to the analysis;
//   * shared data carries TFC_GUARDED_BY(mu), and functions that expect a
//     lock held carry TFC_REQUIRES(mu); forgetting the lock is then a
//     compile error under clang, not a TSan report you hope to trigger.
//
// Under GCC (which has no thread-safety analysis) every macro expands to
// nothing and tfc::Mutex is a zero-overhead std::mutex wrapper; the TSan
// preset (cmake --preset tsan) provides the runtime check there.
//
// Macro set and spellings follow abseil's thread_annotations.h with a TFC_
// prefix; see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.

#ifndef SRC_SIM_THREAD_ANNOTATIONS_H_
#define SRC_SIM_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define TFC_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define TFC_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op under GCC/MSVC
#endif

// Data members: which mutex protects this field.
#define TFC_GUARDED_BY(x) TFC_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))
// Pointer members: the *pointee* is protected by the mutex.
#define TFC_PT_GUARDED_BY(x) TFC_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// Lock-ordering declarations between mutexes.
#define TFC_ACQUIRED_AFTER(...) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))
#define TFC_ACQUIRED_BEFORE(...) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

// Function contracts: caller must hold (exclusively / shared), must NOT hold.
#define TFC_REQUIRES(...) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define TFC_REQUIRES_SHARED(...) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))
#define TFC_EXCLUDES(...) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// Function effects: acquires / releases the capability.
#define TFC_ACQUIRE(...) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define TFC_ACQUIRE_SHARED(...) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))
#define TFC_RELEASE(...) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define TFC_RELEASE_SHARED(...) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))
#define TFC_RELEASE_GENERIC(...) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))
#define TFC_TRY_ACQUIRE(...) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#define TFC_TRY_ACQUIRE_SHARED(...) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_shared_capability(__VA_ARGS__))

// Runtime assertions the analysis trusts ("I know this lock is held").
#define TFC_ASSERT_CAPABILITY(x) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))
#define TFC_ASSERT_SHARED_CAPABILITY(x) \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(assert_shared_capability(x))

// Type/return annotations.
#define TFC_CAPABILITY(x) TFC_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))
#define TFC_SCOPED_CAPABILITY TFC_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)
#define TFC_RETURN_CAPABILITY(x) TFC_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use must carry
// a comment explaining why the analysis cannot see the invariant.
#define TFC_NO_THREAD_SAFETY_ANALYSIS \
  TFC_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

namespace tfc {

// Annotated exclusive mutex. The one sanctioned mutex type in src/ — wrapping
// std::mutex so the capability attribute rides along and every Lock/Unlock
// is visible to -Wthread-safety. Non-recursive; lock ordering is the
// annotator's job (TFC_ACQUIRED_BEFORE/AFTER).
class TFC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TFC_ACQUIRE() { mu_.lock(); }
  void Unlock() TFC_RELEASE() { mu_.unlock(); }
  bool TryLock() TFC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For CondVar::Wait only: the analysis treats the wait as keeping the
  // capability held, which matches condition_variable semantics.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock for tfc::Mutex, annotated as a scoped capability so the analysis
// tracks the critical section's extent:
//
//   tfc::MutexLock lock(&mu_);
//   ++shared_counter_;  // OK: shared_counter_ is TFC_GUARDED_BY(mu_)
class TFC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TFC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() TFC_RELEASE() { mu_->Unlock(); }

 private:
  Mutex* mu_;
};

// Condition variable paired with tfc::Mutex. Wait takes the predicate form
// only — bare waits invite the spurious-wakeup bugs that
// bugprone-spuriously-wake-up-functions exists to catch.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Predicate>
  void Wait(Mutex* mu, Predicate pred) TFC_REQUIRES(mu) {
    // The analysis cannot see through unique_lock's adopt/release dance, but
    // the capability is genuinely held on entry and exit.
    std::unique_lock<std::mutex> lock(mu->native_handle(), std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();  // ownership stays with the caller's MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tfc

#endif  // SRC_SIM_THREAD_ANNOTATIONS_H_
