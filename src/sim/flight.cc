#include "src/sim/flight.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/thread_annotations.h"

namespace tfc {
namespace {

// ---------------------------------------------------------------------------
// flight.tfct wire format (little-endian, validated by telemetry_schema.py):
//
//   header   "TFCT" magic, u32 version (=1), u32 record_bytes (=40),
//            u32 node_count, u64 recorded_total, u64 event_count
//   names    node_count × { u32 len, len bytes }   (node id = table index)
//   records  event_count × 40-byte FlightEvent, oldest first:
//            i64 time, u64 seq, i32 a, i32 b, i32 c, i32 flow,
//            i16 node, i16 port, u8 type, u8 ptype, u8 flags, u8 weight
//
// Fields are packed byte-by-byte (same idiom as telemetry.cc's SpillWriter)
// so the file is identical regardless of host struct layout. Everything in
// it derives from sim time and interned ids: a deterministic run dumps
// deterministic bytes.
// ---------------------------------------------------------------------------

constexpr char kTfctMagic[4] = {'T', 'F', 'C', 'T'};
constexpr uint32_t kTfctVersion = 1;
constexpr uint32_t kTfctRecordBytes = 40;
constexpr size_t kTfctHeaderBytes = 4 + 4 + 4 + 4 + 8 + 8;

void PutU16(std::vector<unsigned char>* out, uint16_t v) {
  out->push_back(static_cast<unsigned char>(v));
  out->push_back(static_cast<unsigned char>(v >> 8));
}

void PutU32(std::vector<unsigned char>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void PutU64(std::vector<unsigned char>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

void PutEvent(std::vector<unsigned char>* out, const FlightEvent& e) {
  PutU64(out, static_cast<uint64_t>(e.time.count()));
  PutU64(out, e.seq);
  PutU32(out, static_cast<uint32_t>(e.a));
  PutU32(out, static_cast<uint32_t>(e.b));
  PutU32(out, static_cast<uint32_t>(e.c));
  PutU32(out, static_cast<uint32_t>(e.flow));
  PutU16(out, static_cast<uint16_t>(e.node));
  PutU16(out, static_cast<uint16_t>(e.port));
  out->push_back(static_cast<unsigned char>(e.type));
  out->push_back(e.ptype);
  out->push_back(e.flags);
  out->push_back(e.weight);
}

uint16_t GetU16(const unsigned char* p) {
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) |
                               static_cast<uint16_t>(p[1]) << 8);
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

FlightEvent GetEvent(const unsigned char* p) {
  FlightEvent e;
  e.time = TimeNs(static_cast<int64_t>(GetU64(p)));
  e.seq = GetU64(p + 8);
  e.a = static_cast<int32_t>(GetU32(p + 16));
  e.b = static_cast<int32_t>(GetU32(p + 20));
  e.c = static_cast<int32_t>(GetU32(p + 24));
  e.flow = static_cast<int32_t>(GetU32(p + 28));
  e.node = static_cast<int16_t>(GetU16(p + 32));
  e.port = static_cast<int16_t>(GetU16(p + 34));
  e.type = static_cast<FlightEventType>(p[36]);
  e.ptype = p[37];
  e.flags = p[38];
  e.weight = p[39];
  return e;
}

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) {
    *error = std::move(message);
  }
  return false;
}

// Process-wide post-mortem registry. CheckFailed (any thread, any Network)
// funnels through DumpArmedFlightRecorders, so registration is the one
// place flight recorders from different confined Networks meet.
Mutex g_flight_mu;
std::vector<FlightRecorder*>* g_armed_recorders TFC_GUARDED_BY(g_flight_mu) = nullptr;
// A dump can itself trip a check (e.g. fopen-failure paths calling code
// with checks); don't recurse.
bool g_dump_in_progress TFC_GUARDED_BY(g_flight_mu) = false;

}  // namespace

const char* FlightEventName(FlightEventType t) {
  switch (t) {
    case FlightEventType::kEnqueue: return "enqueue";
    case FlightEventType::kTransmit: return "transmit";
    case FlightEventType::kDrop: return "drop";
    case FlightEventType::kDeliver: return "deliver";
    case FlightEventType::kFaultDrop: return "fault_drop";
    case FlightEventType::kSlotBegin: return "slot_begin";
    case FlightEventType::kSlotEnd: return "slot_end";
    case FlightEventType::kDelimiterAdopt: return "delim_adopt";
    case FlightEventType::kDelimiterFailover: return "delim_failover";
    case FlightEventType::kTokenRefill: return "refill";
    case FlightEventType::kTokenGrant: return "grant";
    case FlightEventType::kArbiterPark: return "park";
    case FlightEventType::kArbiterRelease: return "release";
    case FlightEventType::kArbiterExpire: return "expire";
    case FlightEventType::kProbeSend: return "probe";
    case FlightEventType::kProbeRetry: return "probe_retry";
    case FlightEventType::kRmaReceive: return "rma";
    case FlightEventType::kAgentWipe: return "wipe";
    case FlightEventType::kAgentConverge: return "converge";
    case FlightEventType::kLinkDown: return "link_down";
    case FlightEventType::kLinkUp: return "link_up";
    case FlightEventType::kHostDown: return "host_down";
    case FlightEventType::kHostUp: return "host_up";
  }
  return "unknown";
}

FlightRecorder::~FlightRecorder() { DisarmPostMortem(); }

void FlightRecorder::Arm(size_t capacity) {
  size_t rounded = kMinCapacity;
  while (rounded < capacity) {
    rounded <<= 1;
  }
  ring_.assign(rounded, FlightEvent{});
  mask_ = rounded - 1;
  recorded_ = 0;
  armed_ = true;
}

void FlightRecorder::Disarm() {
  armed_ = false;
  DisarmPostMortem();
}

bool FlightRecorder::Dump(const std::string& path,
                          const std::vector<std::string>& node_names,
                          std::string* error) const {
  std::vector<unsigned char> buf;
  buf.reserve(kTfctHeaderBytes + size() * kTfctRecordBytes);
  buf.insert(buf.end(), kTfctMagic, kTfctMagic + 4);
  PutU32(&buf, kTfctVersion);
  PutU32(&buf, kTfctRecordBytes);
  PutU32(&buf, static_cast<uint32_t>(node_names.size()));
  PutU64(&buf, recorded_);
  PutU64(&buf, static_cast<uint64_t>(size()));
  for (const std::string& name : node_names) {
    PutU32(&buf, static_cast<uint32_t>(name.size()));
    buf.insert(buf.end(), name.begin(), name.end());
  }
  ForEach([&buf](const FlightEvent& e) { PutEvent(&buf, e); });

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Fail(error, "flight: cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != buf.size() || !closed) {
    return Fail(error, "flight: short write to '" + path + "'");
  }
  return true;
}

void FlightRecorder::ArmPostMortem(std::string path,
                                   std::vector<std::string> node_names) {
  post_mortem_path_ = std::move(path);
  post_mortem_names_ = std::move(node_names);
  MutexLock lock(&g_flight_mu);
  if (g_armed_recorders == nullptr) {
    g_armed_recorders = new std::vector<FlightRecorder*>();  // leaked by design
  }
  if (!post_mortem_registered_) {
    g_armed_recorders->push_back(this);
    post_mortem_registered_ = true;
  }
}

void FlightRecorder::DisarmPostMortem() {
  if (!post_mortem_registered_) {
    return;
  }
  MutexLock lock(&g_flight_mu);
  if (g_armed_recorders != nullptr) {
    for (size_t i = 0; i < g_armed_recorders->size(); ++i) {
      if ((*g_armed_recorders)[i] == this) {
        g_armed_recorders->erase(g_armed_recorders->begin() +
                                 static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  post_mortem_registered_ = false;
}

void DumpArmedFlightRecorders() {
  MutexLock lock(&g_flight_mu);
  if (g_dump_in_progress || g_armed_recorders == nullptr) {
    return;
  }
  g_dump_in_progress = true;
  for (FlightRecorder* rec : *g_armed_recorders) {
    std::string error;
    if (rec->Dump(rec->post_mortem_path_, rec->post_mortem_names_, &error)) {
      std::fprintf(stderr, "flight: dumped %llu event(s) to %s\n",
                   static_cast<unsigned long long>(rec->size()),
                   rec->post_mortem_path_.c_str());
    } else {
      std::fprintf(stderr, "flight: %s\n", error.c_str());
    }
  }
  g_dump_in_progress = false;
}

bool LoadFlightDump(const std::string& path, FlightDump* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Fail(error, "flight: cannot open '" + path + "'");
  }
  std::vector<unsigned char> buf;
  unsigned char chunk[1 << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + n);
  }
  std::fclose(f);

  if (buf.size() < kTfctHeaderBytes) {
    return Fail(error, "flight: '" + path + "' truncated header");
  }
  if (std::memcmp(buf.data(), kTfctMagic, 4) != 0) {
    return Fail(error, "flight: '" + path + "' bad magic (want TFCT)");
  }
  const uint32_t version = GetU32(buf.data() + 4);
  if (version != kTfctVersion) {
    return Fail(error, "flight: '" + path + "' unsupported version " +
                           std::to_string(version));
  }
  const uint32_t record_size = GetU32(buf.data() + 8);
  if (record_size != kTfctRecordBytes) {
    return Fail(error, "flight: '" + path + "' unexpected record size " +
                           std::to_string(record_size));
  }
  const uint32_t node_count = GetU32(buf.data() + 12);
  out->recorded_total = GetU64(buf.data() + 16);
  const uint64_t event_count = GetU64(buf.data() + 24);

  size_t off = kTfctHeaderBytes;
  out->nodes.clear();
  out->nodes.reserve(node_count);
  for (uint32_t i = 0; i < node_count; ++i) {
    if (off + 4 > buf.size()) {
      return Fail(error, "flight: '" + path + "' truncated name table");
    }
    const uint32_t len = GetU32(buf.data() + off);
    off += 4;
    if (off + len > buf.size()) {
      return Fail(error, "flight: '" + path + "' truncated node name");
    }
    out->nodes.emplace_back(reinterpret_cast<const char*>(buf.data() + off), len);
    off += len;
  }

  if (off + event_count * kTfctRecordBytes != buf.size()) {
    return Fail(error, "flight: '" + path + "' record section size mismatch");
  }
  out->events.clear();
  out->events.reserve(static_cast<size_t>(event_count));
  for (uint64_t i = 0; i < event_count; ++i) {
    out->events.push_back(GetEvent(buf.data() + off));
    off += kTfctRecordBytes;
  }
  return true;
}

}  // namespace tfc
