#include "src/sim/telemetry.h"

// The exporter is the one sanctioned I/O path out of the hot layers: it
// runs after (or between) simulation phases, never per event.
// lint:allow hot-io

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

#include "src/sim/audit.h"
#include "src/sim/profile.h"
#include "src/sim/thread_annotations.h"

namespace tfc {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kCallbackGauge:
      return "callback_gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank over buckets: the first bucket whose cumulative count
  // reaches ceil(p% of n) holds the percentile sample.
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  uint64_t cum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cum += buckets_[static_cast<size_t>(b)];
    if (cum >= target) {
      const uint64_t ub = BucketUpperBound(b);
      const uint64_t largest_in_bucket = ub == 0 ? max_ : ub - 1;
      return std::min(largest_in_bucket, max_);
    }
  }
  return max_;
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

MetricRegistry::Entry::~Entry() { delete hist; }

MetricRegistry::Entry& MetricRegistry::Insert(std::string name, MetricKind kind,
                                              uint64_t owner, bool replace) {
  TFC_CHECK_MSG(!name.empty(), "metric names must be non-empty");
  auto [it, inserted] = entries_.try_emplace(std::move(name));
  if (!inserted) {
    TFC_CHECK_MSG(replace, "duplicate metric name: " << it->first);
    // Re-claim: drop the displaced entry (std::map node stability keeps
    // every other metric pointer valid) and rebuild it fresh.
    ReleaseId(it->second);
    std::string key = it->first;
    entries_.erase(it);
    it = entries_.try_emplace(std::move(key)).first;
  }
  it->second.kind = kind;
  it->second.owner = owner;
  AssignId(it->second);
  return it->second;
}

void MetricRegistry::AssignId(Entry& e) {
  if (!free_ids_.empty()) {
    e.id = free_ids_.back();
    free_ids_.pop_back();
    by_id_[e.id] = &e;
  } else {
    e.id = static_cast<MetricId>(by_id_.size());
    by_id_.push_back(&e);
  }
  ++generation_;
}

void MetricRegistry::ReleaseId(Entry& e) {
  if (e.id != kInvalidMetricId) {
    by_id_[e.id] = nullptr;
    free_ids_.push_back(e.id);
    e.id = kInvalidMetricId;
  }
  ++generation_;
}

MetricId MetricRegistry::IdOf(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() ? it->second.id : kInvalidMetricId;
}

MetricKind MetricRegistry::KindOfId(MetricId id) const {
  TFC_CHECK(id < by_id_.size() && by_id_[id] != nullptr);
  return by_id_[id]->kind;
}

Counter* MetricRegistry::AddCounter(std::string name) {
  return &Insert(std::move(name), MetricKind::kCounter, /*owner=*/0, /*replace=*/false)
              .counter;
}

Gauge* MetricRegistry::AddGauge(std::string name) {
  return &Insert(std::move(name), MetricKind::kGauge, /*owner=*/0, /*replace=*/false)
              .gauge;
}

void MetricRegistry::AddCallbackGauge(std::string name, GaugeFn fn) {
  Insert(std::move(name), MetricKind::kCallbackGauge, /*owner=*/0, /*replace=*/false)
      .fn = std::move(fn);
}

Histogram* MetricRegistry::AddHistogram(std::string name) {
  Entry& e = Insert(std::move(name), MetricKind::kHistogram, /*owner=*/0,
                    /*replace=*/false);
  e.hist = new Histogram();
  return e.hist;
}

void MetricRegistry::Unregister(const std::string& name) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    ReleaseId(it->second);
    entries_.erase(it);
  }
}

void MetricRegistry::UnregisterOwned(const std::string& name, uint64_t token) {
  auto it = entries_.find(name);
  if (it != entries_.end() && it->second.owner == token) {
    ReleaseId(it->second);
    entries_.erase(it);
  }
}

bool MetricRegistry::Read(const std::string& name, double* out) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return false;
  }
  Entry& e = it->second;
  switch (e.kind) {
    case MetricKind::kCounter:
      *out = static_cast<double>(e.counter.value());
      return true;
    case MetricKind::kGauge:
      *out = e.gauge.value();
      return true;
    case MetricKind::kCallbackGauge:
      *out = e.fn();
      return true;
    case MetricKind::kHistogram:
      return false;
  }
  return false;
}

const Histogram* MetricRegistry::FindHistogram(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != MetricKind::kHistogram) {
    return nullptr;
  }
  return it->second.hist;
}

const Histogram* MetricRegistry::FindHistogram(MetricId id) const {
  if (id >= by_id_.size() || by_id_[id] == nullptr ||
      by_id_[id]->kind != MetricKind::kHistogram) {
    return nullptr;
  }
  return by_id_[id]->hist;
}

void MetricRegistry::AuditInvariants(Auditor& audit) {
  for (auto& [name, entry] : entries_) {
    if (entry.kind != MetricKind::kCounter) {
      continue;
    }
    const bool ok = entry.counter.value() >= entry.last_audited;
    audit.Check(ok, "counter monotone between audit passes",
                ok ? std::string{}
                   : name + " went " + std::to_string(entry.last_audited) +
                         " -> " + std::to_string(entry.counter.value()));
    entry.last_audited = entry.counter.value();
  }
}

// ---------------------------------------------------------------------------
// ScopedMetrics
// ---------------------------------------------------------------------------

Counter* ScopedMetrics::AddCounter(std::string name) {
  TFC_CHECK(registry_ != nullptr);
  names_.push_back(name);
  return &registry_->Insert(std::move(name), MetricKind::kCounter, token_, replace_)
              .counter;
}

Gauge* ScopedMetrics::AddGauge(std::string name) {
  TFC_CHECK(registry_ != nullptr);
  names_.push_back(name);
  return &registry_->Insert(std::move(name), MetricKind::kGauge, token_, replace_)
              .gauge;
}

void ScopedMetrics::AddCallbackGauge(std::string name, MetricRegistry::GaugeFn fn) {
  TFC_CHECK(registry_ != nullptr);
  names_.push_back(name);
  registry_->Insert(std::move(name), MetricKind::kCallbackGauge, token_, replace_).fn =
      std::move(fn);
}

Histogram* ScopedMetrics::AddHistogram(std::string name) {
  TFC_CHECK(registry_ != nullptr);
  names_.push_back(name);
  MetricRegistry::Entry& e =
      registry_->Insert(std::move(name), MetricKind::kHistogram, token_, replace_);
  e.hist = new Histogram();
  return e.hist;
}

void ScopedMetrics::Clear() {
  if (registry_ != nullptr) {
    for (const std::string& name : names_) {
      registry_->UnregisterOwned(name, token_);
    }
  }
  names_.clear();
}

// ---------------------------------------------------------------------------
// TimeSeriesRecorder
// ---------------------------------------------------------------------------

void TimeSeriesRecorder::Watch(std::string name) {
  if (std::find(watches_.begin(), watches_.end(), name) != watches_.end()) {
    return;  // one watch, one sample per tick
  }
  watches_.push_back(std::move(name));
  plan_generation_ = 0;
}

void TimeSeriesRecorder::WatchPrefix(std::string prefix) {
  if (std::find(prefixes_.begin(), prefixes_.end(), prefix) != prefixes_.end()) {
    return;
  }
  prefixes_.push_back(std::move(prefix));
  plan_generation_ = 0;
}

void TimeSeriesRecorder::Start(TimeNs period, TimeNs first_delay) {
  TFC_CHECK_GT(period, 0);
  TFC_CHECK_GE(first_delay, 0);
  Stop();
  period_ = period;
  running_ = true;
  if (max_samples_ == 0 && log_v_cap_ == 0) {
    // One large reservation up front: growing the value log by doubling
    // measurably dominates recording cost (allocator churn + copy), and
    // reserved-but-untouched pages are free.
    GrowLogV(1u << 19);
  }
  tick_event_ = scheduler_->ScheduleDaemonAfter(first_delay, [this] { Tick(); });
}

void TimeSeriesRecorder::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  scheduler_->CancelDaemon(tick_event_);
  tick_event_ = Scheduler::EventId{};
}

// Cold path, runs only when the registry generation moved (or on the first
// tick): resolves watches and prefixes to (id, ring) pairs in the exact
// order the pre-plan Tick sampled them — exact watches in insertion order,
// then prefix matches in registry name order minus the exact names — so
// stateful callback gauges see an identical read sequence.
void TimeSeriesRecorder::RebuildPlan() {
  ++plan_rebuilds_;
  plan_.clear();
  plan_reads_.clear();
  for (const std::string& name : watches_) {
    const MetricId id = registry_->IdOf(name);
    if (id == kInvalidMetricId ||
        registry_->KindOfId(id) == MetricKind::kHistogram) {
      // A watched metric that has disappeared (component destroyed mid-run)
      // silently stops extending its series; distributions export via
      // summary.json, not as series.
      continue;
    }
    AddPlanEntry(name, id);
  }
  if (!prefixes_.empty()) {
    registry_->ForEachMetric(
        [this](const std::string& name, MetricKind kind, MetricId id) {
          if (kind == MetricKind::kHistogram) {
            return;
          }
          bool matched = false;
          for (const std::string& p : prefixes_) {
            if (name.compare(0, p.size(), p) == 0) {
              matched = true;
              break;
            }
          }
          if (!matched ||
              std::find(watches_.begin(), watches_.end(), name) != watches_.end()) {
            return;  // not watched, or already planned via the exact-name list
          }
          AddPlanEntry(name, id);
        });
  }
  plan_generation_ = registry_->generation();
  epoch_dirty_ = true;
}

void TimeSeriesRecorder::AddPlanEntry(const std::string& name, MetricId id) {
  Ring& ring = series_[name];
  if (max_samples_ > 0) {
    // Preallocate to the cap so the tick-path append never reallocates.
    ring.samples.reserve(max_samples_);
  }
  MetricRegistry::CompiledRead read;
  if (!registry_->CompileReadId(id, &read)) {
    // Defensive (the callers exclude histograms and dead ids): the series
    // exists but never extends, exactly as an unreadable metric behaved.
    return;
  }
  // Series ids persist for the recorder's lifetime (sid_by_name_ never
  // shrinks), so flat-log records written under older plans stay valid.
  auto [it, inserted] =
      sid_by_name_.try_emplace(name, static_cast<uint32_t>(rings_by_sid_.size()));
  if (inserted) {
    rings_by_sid_.push_back(&ring);
  }
  plan_.push_back(PlanEntry{read, it->second, &ring});
  plan_reads_.push_back(read);
}

void TimeSeriesRecorder::Tick() {
  if (!running_) {
    return;
  }
  ++ticks_;
  if (replan_every_tick_ || plan_generation_ != registry_->generation()) {
    RebuildPlan();
  }
  const TimeNs t = scheduler_->now();
  if (max_samples_ > 0) {
    for (const PlanEntry& pe : plan_) {
      AppendTo(*pe.ring, t, pe.read.fn(pe.read.obj));
    }
  } else {
    // Uncapped: append values to one contiguous stream instead of hundreds
    // of scattered ring tails; readers demux lazily (MaterializeLog). The
    // sid each value belongs to is implied by its plan position — the sid
    // order is snapshotted once per plan epoch — so the per-sample record
    // on the hot path is just the 8-byte value.
    if (epoch_dirty_) {
      LogEpoch epoch;
      epoch.sids.reserve(plan_.size());
      for (const PlanEntry& pe : plan_) {
        epoch.sids.push_back(pe.sid);
      }
      log_epochs_.push_back(std::move(epoch));
      epoch_dirty_ = false;
    }
    // Write through a raw cursor: reads can run arbitrary callback-gauge
    // code, so everything the loop needs lives in locals the compiler can
    // keep in registers instead of vector internals it must reload.
    const size_t n = plan_.size();
    if (log_v_cap_ - log_v_size_ < n) {
      GrowLogV(n);
    }
    double* out = log_v_.get() + log_v_size_;
    const MetricRegistry::CompiledRead* reads = plan_reads_.data();
    for (size_t pos = 0; pos < n; ++pos) {
      out[pos] = reads[pos].fn(reads[pos].obj);
    }
    log_v_size_ += n;
    log_t_.push_back(t);
    ++log_epochs_.back().ticks;
  }
  tick_event_ = scheduler_->ScheduleDaemonAfter(period_, [this] { Tick(); });
}

void TimeSeriesRecorder::MaterializeLog() const {
  if (log_t_.empty()) {
    return;
  }
  // Per-series sample counts fall out of the epoch snapshots (ticks x
  // planned sids) without scanning the value stream; each ring then grows
  // exactly once, and a raw write cursor per sid replaces push_back so the
  // single demux pass never touches the scattered vector headers.
  std::vector<size_t> counts(rings_by_sid_.size(), 0);
  for (const LogEpoch& e : log_epochs_) {
    for (uint32_t sid : e.sids) {
      counts[sid] += e.ticks;
    }
  }
  std::vector<Sample*> cur(rings_by_sid_.size(), nullptr);
  for (size_t sid = 0; sid < counts.size(); ++sid) {
    if (counts[sid] > 0) {
      std::vector<Sample>& samples = rings_by_sid_[sid]->samples;
      const size_t old = samples.size();
      samples.resize(old + counts[sid]);
      cur[sid] = samples.data() + old;
    }
  }
  // The log is tick-major but the rings want series-major, so the demux is
  // a transpose. Do it in tiles of kTileTicks ticks with a series-major
  // inner loop: each series receives its tile chunk as one sequential
  // burst (long store runs amortize cache-line and page costs), while the
  // tile's value rows are small enough to stay cache-resident across the
  // per-series strided reads. Ticks are chronological, so tile after tile
  // keeps every series oldest-first.
  constexpr size_t kTileTicks = 64;
  Sample** const curp = cur.data();
  const double* v = log_v_.get();
  const TimeNs* tt = log_t_.data();
  for (const LogEpoch& e : log_epochs_) {
    const uint32_t* const sids = e.sids.data();
    const size_t width = e.sids.size();
    for (uint64_t done = 0; done < e.ticks; done += kTileTicks) {
      const size_t tile =
          static_cast<size_t>(std::min<uint64_t>(kTileTicks, e.ticks - done));
      for (size_t pos = 0; pos < width; ++pos) {
        Sample* s = curp[sids[pos]];
        const double* vp = v + pos;
        for (size_t k = 0; k < tile; ++k, vp += width) {
          s[k] = Sample{tt[k], *vp};
        }
        curp[sids[pos]] = s + tile;
      }
      v += tile * width;
      tt += tile;
    }
  }
  log_v_size_ = 0;  // capacity is kept; the next run reuses the buffer
  log_t_.clear();
  log_epochs_.clear();
  epoch_dirty_ = true;  // the next tick must re-snapshot its sid order
}

void TimeSeriesRecorder::GrowLogV(size_t need) const {
  const size_t want = log_v_size_ + need;
  size_t cap = log_v_cap_ < 4096 ? 4096 : log_v_cap_;
  while (cap < want) {
    cap *= 2;
  }
  // new double[cap] (not make_unique) keeps the slack default-initialized
  // instead of zero-filling memory the ticks will overwrite anyway.
  std::unique_ptr<double[]> buf(new double[cap]);
  if (log_v_size_ > 0) {
    std::memcpy(buf.get(), log_v_.get(), log_v_size_ * sizeof(double));
  }
  log_v_ = std::move(buf);
  log_v_cap_ = cap;
}

void TimeSeriesRecorder::AppendTo(Ring& ring, TimeNs t, double v) {
  if (max_samples_ == 0 || ring.samples.size() < max_samples_) {
    // Capped rings are reserve()d at plan build, so this push_back never
    // grows on the capped path.
    ring.samples.push_back(Sample{t, v});
    return;
  }
  ring.samples[ring.head] = Sample{t, v};
  if (++ring.head == ring.samples.size()) {
    ring.head = 0;  // compare-and-reset; no modulo on the tick path
  }
  ring.wrapped = true;
  ++dropped_;
}

std::vector<TimeSeriesRecorder::Sample> TimeSeriesRecorder::Unroll(const Ring& ring) {
  if (!ring.wrapped) {
    return ring.samples;
  }
  std::vector<Sample> out;
  out.reserve(ring.samples.size());
  for (size_t i = 0; i < ring.samples.size(); ++i) {
    out.push_back(ring.samples[(ring.head + i) % ring.samples.size()]);
  }
  return out;
}

std::vector<TimeSeriesRecorder::Sample> TimeSeriesRecorder::Series(
    const std::string& name) const {
  MaterializeLog();
  auto it = series_.find(name);
  if (it == series_.end()) {
    return {};
  }
  return Unroll(it->second);
}

std::vector<std::string> TimeSeriesRecorder::SeriesNames() const {
  MaterializeLog();
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, ring] : series_) {
    names.push_back(name);
  }
  return names;
}

size_t TimeSeriesRecorder::total_samples() const {
  MaterializeLog();
  size_t n = 0;
  for (const auto& [name, ring] : series_) {
    n += ring.samples.size();
  }
  return n;
}

// ---------------------------------------------------------------------------
// JSON helpers
// ---------------------------------------------------------------------------

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "null";  // JSON has no NaN/inf
  }
  // Integers that fit exactly render without a fraction — counter values
  // and byte counts stay greppable as plain integers.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) {
    return "null";
  }
  return std::string(buf, ptr);
}

namespace {

std::string Quoted(const std::string& s) { return "\"" + JsonEscape(s) + "\""; }

}  // namespace

// ---------------------------------------------------------------------------
// Binary spill (metrics.tfcb)
// ---------------------------------------------------------------------------

namespace {

// Fixed little-endian packing, independent of host byte order.
void PutU32(std::vector<unsigned char>& buf, uint32_t v) {
  buf.push_back(static_cast<unsigned char>(v));
  buf.push_back(static_cast<unsigned char>(v >> 8));
  buf.push_back(static_cast<unsigned char>(v >> 16));
  buf.push_back(static_cast<unsigned char>(v >> 24));
}

void PutU64(std::vector<unsigned char>& buf, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

bool GetU32(const std::string& d, size_t& off, uint32_t* out) {
  if (off + 4 > d.size()) {
    return false;
  }
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(d[off + static_cast<size_t>(i)]);
  }
  *out = v;
  off += 4;
  return true;
}

bool GetU64(const std::string& d, size_t& off, uint64_t* out) {
  if (off + 8 > d.size()) {
    return false;
  }
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(d[off + static_cast<size_t>(i)]);
  }
  *out = v;
  off += 8;
  return true;
}

}  // namespace

bool SpillWriter::Open(const std::string& path, uint32_t series_count,
                       uint64_t record_count) {
  Close();
  ok_ = true;
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    ok_ = false;
    return false;
  }
  buf_.clear();
  for (const char c : kTfcbMagic) {
    buf_.push_back(static_cast<unsigned char>(c));
  }
  PutU32(buf_, kTfcbVersion);
  PutU32(buf_, series_count);
  PutU64(buf_, record_count);
  return true;
}

void SpillWriter::AppendName(const std::string& name) {
  if (buf_.size() + 4 + name.size() > kBufferBytes) {
    Flush();
  }
  PutU32(buf_, static_cast<uint32_t>(name.size()));
  buf_.insert(buf_.end(), name.begin(), name.end());
}

void SpillWriter::AppendRecord(uint32_t series_id, TimeNs t_ns, double v) {
  if (buf_.size() + kRecordBytes > kBufferBytes) {
    Flush();
  }
  PutU32(buf_, series_id);
  PutU64(buf_, static_cast<uint64_t>(t_ns.count()));
  PutU64(buf_, std::bit_cast<uint64_t>(v));
}

void SpillWriter::Flush() {
  if (file_ != nullptr && !buf_.empty()) {
    if (std::fwrite(buf_.data(), 1, buf_.size(), file_) != buf_.size()) {
      ok_ = false;
    }
  }
  buf_.clear();
}

bool SpillWriter::Close() {
  if (file_ == nullptr) {
    return ok_;
  }
  Flush();
  if (std::fclose(file_) != 0) {
    ok_ = false;
  }
  file_ = nullptr;
  return ok_;
}

bool ConvertMetricsTfcbToJsonl(const std::string& tfcb_path,
                               const std::string& jsonl_path,
                               std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  std::ifstream in(tfcb_path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + tfcb_path;
    return false;
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  size_t off = 0;
  if (data.size() < 20 ||
      data.compare(0, sizeof kTfcbMagic, kTfcbMagic, sizeof kTfcbMagic) != 0) {
    *error = tfcb_path + ": not a TFCB file (bad magic)";
    return false;
  }
  off = sizeof kTfcbMagic;
  uint32_t version = 0;
  uint32_t series_count = 0;
  uint64_t record_count = 0;
  GetU32(data, off, &version);
  GetU32(data, off, &series_count);
  GetU64(data, off, &record_count);
  if (version != kTfcbVersion) {
    *error = tfcb_path + ": unsupported TFCB version " + std::to_string(version);
    return false;
  }

  // Name table; a name's position is its series_id. Pre-quote once so the
  // record loop only concatenates.
  std::vector<std::string> quoted_names;
  quoted_names.reserve(series_count);
  for (uint32_t i = 0; i < series_count; ++i) {
    uint32_t len = 0;
    if (!GetU32(data, off, &len) || off + len > data.size()) {
      *error = tfcb_path + ": truncated name table";
      return false;
    }
    quoted_names.push_back(Quoted(data.substr(off, len)));
    off += len;
  }

  if (data.size() - off != record_count * SpillWriter::kRecordBytes) {
    *error = tfcb_path + ": record section is " +
             std::to_string(data.size() - off) + " bytes, header promises " +
             std::to_string(record_count * SpillWriter::kRecordBytes);
    return false;
  }

  std::ofstream out(jsonl_path, std::ios::trunc);
  if (!out) {
    *error = "cannot open " + jsonl_path;
    return false;
  }
  for (uint64_t i = 0; i < record_count; ++i) {
    uint32_t series_id = 0;
    uint64_t t_bits = 0;
    uint64_t v_bits = 0;
    GetU32(data, off, &series_id);
    GetU64(data, off, &t_bits);
    GetU64(data, off, &v_bits);
    if (series_id >= series_count) {
      *error = tfcb_path + ": record " + std::to_string(i) +
               " names out-of-range series " + std::to_string(series_id);
      return false;
    }
    // Byte-compatible with the legacy exporter line:
    //   {"t_ns": T, "name": "...", "v": V}
    out << "{\"t_ns\": " << static_cast<int64_t>(t_bits)
        << ", \"name\": " << quoted_names[series_id]
        << ", \"v\": " << JsonNumber(std::bit_cast<double>(v_bits)) << "}\n";
  }
  out.flush();
  if (!out) {
    *error = "write failed: " + jsonl_path;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// RunManifest
// ---------------------------------------------------------------------------

void RunManifest::SetLiteral(const std::string& key, std::string json) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(json);
      return;
    }
  }
  entries_.emplace_back(key, std::move(json));
}

void RunManifest::Set(const std::string& key, const std::string& value) {
  SetLiteral(key, Quoted(value));
}

void RunManifest::SetInt(const std::string& key, int64_t value) {
  SetLiteral(key, std::to_string(value));
}

void RunManifest::SetDouble(const std::string& key, double value) {
  SetLiteral(key, JsonNumber(value));
}

void RunManifest::SetBool(const std::string& key, bool value) {
  SetLiteral(key, value ? "true" : "false");
}

// ---------------------------------------------------------------------------
// Exporter
// ---------------------------------------------------------------------------

namespace {

std::string RunGitDescribe() {
  std::string out = "unknown";
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe != nullptr) {
    std::string text;
    char buf[256];
    while (std::fgets(buf, sizeof buf, pipe) != nullptr) {
      text += buf;
    }
    const int rc = ::pclose(pipe);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    if (rc == 0 && !text.empty()) {
      out = std::move(text);
    }
  }
  return out;
}

// The one process-wide cache in the telemetry layer. Every sweep worker
// exporting a manifest reads it concurrently, so it is explicitly guarded
// and annotated rather than left as a magic static hiding a popen() — the
// subprocess spawn runs exactly once, under the lock, and the returned
// reference is immutable afterwards (annotation-checked under clang,
// TSan-checked under the tsan preset).
Mutex g_git_describe_mu;
std::string* g_git_describe TFC_GUARDED_BY(g_git_describe_mu) = nullptr;

}  // namespace

const std::string& GitDescribe() {
  MutexLock lock(&g_git_describe_mu);
  if (g_git_describe == nullptr) {
    g_git_describe = new std::string(RunGitDescribe());  // leaked by design
  }
  return *g_git_describe;
}

namespace {

bool WriteManifest(const std::string& path, const RunManifest& manifest,
                   std::string* error) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  const std::time_t now = std::time(nullptr);
  char utc[32] = "unknown";
  std::tm tm_utc{};
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(utc, sizeof utc, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  }
  f << "{\n";
  // v2: metrics.tfcb (binary spill) replaced metrics.jsonl as the recorded
  // format; everything else is unchanged.
  f << "  \"schema_version\": 2,\n";
  f << "  \"git_describe\": " << Quoted(GitDescribe()) << ",\n";
  f << "  \"created_unix\": " << static_cast<int64_t>(now) << ",\n";
  f << "  \"created_utc\": " << Quoted(utc) << ",\n";
  f << "  \"run\": {";
  bool first = true;
  for (const auto& [key, json] : manifest.entries()) {
    f << (first ? "\n" : ",\n") << "    " << Quoted(key) << ": " << json;
    first = false;
  }
  f << (first ? "}" : "\n  }") << "\n}\n";
  f.flush();
  if (!f) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

bool WriteMetricsTfcb(const std::string& path, const TimeSeriesRecorder* recorder,
                      std::string* error) {
  SpillWriter w;
  const uint32_t series_count =
      recorder != nullptr ? static_cast<uint32_t>(recorder->series_count()) : 0;
  const uint64_t record_count =
      recorder != nullptr ? recorder->total_samples() : 0;
  if (!w.Open(path, series_count, record_count)) {
    *error = "cannot open " + path;
    return false;
  }
  if (recorder != nullptr) {
    // SeriesNames() and ForEachSeries both walk the series map in name
    // order, so a series' position in the name table is its series_id.
    for (const std::string& name : recorder->SeriesNames()) {
      w.AppendName(name);
    }
    uint32_t series_id = 0;
    recorder->ForEachSeries(
        [&w, &series_id](const std::string&,
                         const std::vector<TimeSeriesRecorder::Sample>& samples) {
          for (const TimeSeriesRecorder::Sample& s : samples) {
            w.AppendRecord(series_id, s.t, s.v);
          }
          ++series_id;
        });
  }
  if (!w.Close()) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

void WriteHistogramJson(std::ofstream& f, const Histogram& h, const char* indent) {
  f << "{\n";
  f << indent << "  \"count\": " << h.count() << ",\n";
  f << indent << "  \"sum\": " << h.sum() << ",\n";
  f << indent << "  \"min\": " << h.min() << ",\n";
  f << indent << "  \"max\": " << h.max() << ",\n";
  f << indent << "  \"mean\": " << JsonNumber(h.mean()) << ",\n";
  f << indent << "  \"p50\": " << h.Percentile(50) << ",\n";
  f << indent << "  \"p90\": " << h.Percentile(90) << ",\n";
  f << indent << "  \"p99\": " << h.Percentile(99) << ",\n";
  f << indent << "  \"p999\": " << h.Percentile(99.9) << ",\n";
  f << indent << "  \"buckets\": [";
  bool first = true;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t n = h.bucket_count(b);
    if (n == 0) {
      continue;  // sparse export: all-zero buckets dominate and carry nothing
    }
    f << (first ? "" : ", ") << "[" << Histogram::BucketLowerBound(b) << ", "
      << Histogram::BucketUpperBound(b) << ", " << n << "]";
    first = false;
  }
  f << "]\n" << indent << "}";
}

bool WriteSummary(const std::string& path, MetricRegistry& metrics,
                  const Profiler* profiler, std::string* error) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  f << "{\n  \"schema_version\": 2,\n";

  f << "  \"counters\": {";
  bool first = true;
  metrics.ForEachName([&](const std::string& name, MetricKind kind) {
    if (kind != MetricKind::kCounter) {
      return;
    }
    double v = 0.0;
    metrics.Read(name, &v);
    f << (first ? "\n" : ",\n") << "    " << Quoted(name) << ": " << JsonNumber(v);
    first = false;
  });
  f << (first ? "}," : "\n  },") << "\n";

  f << "  \"gauges\": {";
  first = true;
  metrics.ForEachName([&](const std::string& name, MetricKind kind) {
    if (kind != MetricKind::kGauge && kind != MetricKind::kCallbackGauge) {
      return;
    }
    double v = 0.0;
    metrics.Read(name, &v);
    f << (first ? "\n" : ",\n") << "    " << Quoted(name) << ": " << JsonNumber(v);
    first = false;
  });
  f << (first ? "}," : "\n  },") << "\n";

  f << "  \"histograms\": {";
  first = true;
  metrics.ForEachName([&](const std::string& name, MetricKind kind) {
    if (kind != MetricKind::kHistogram) {
      return;
    }
    const Histogram* h = metrics.FindHistogram(name);
    f << (first ? "\n" : ",\n") << "    " << Quoted(name) << ": ";
    WriteHistogramJson(f, *h, "    ");
    first = false;
  });
  f << (first ? "}," : "\n  },") << "\n";

  f << "  \"profile\": {";
  first = true;
  if (profiler != nullptr) {
    profiler->ForEachSite([&](const ProfileSite& site) {
      f << (first ? "\n" : ",\n") << "    " << Quoted(site.name()) << ": {\"hits\": "
        << site.hits() << ", \"sim_ns\": " << site.sim_ns() << ", \"wall_ns\": "
        << site.wall_ns() << "}";
      first = false;
    });
  }
  f << (first ? "}" : "\n  }") << "\n}\n";

  f.flush();
  if (!f) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace

bool WriteRunDirectory(const std::string& dir, const RunManifest& manifest,
                       MetricRegistry& metrics, const TimeSeriesRecorder* recorder,
                       const Profiler* profiler, std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    *error = "create_directories(" + dir + "): " + ec.message();
    return false;
  }
  return WriteManifest(dir + "/manifest.json", manifest, error) &&
         WriteMetricsTfcb(dir + "/metrics.tfcb", recorder, error) &&
         WriteSummary(dir + "/summary.json", metrics, profiler, error);
}

}  // namespace tfc
