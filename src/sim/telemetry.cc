#include "src/sim/telemetry.h"

// The exporter is the one sanctioned I/O path out of the hot layers: it
// runs after (or between) simulation phases, never per event.
// lint:allow hot-io

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "src/sim/audit.h"
#include "src/sim/profile.h"
#include "src/sim/thread_annotations.h"

namespace tfc {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kCallbackGauge:
      return "callback_gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank over buckets: the first bucket whose cumulative count
  // reaches ceil(p% of n) holds the percentile sample.
  const uint64_t target =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  uint64_t cum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cum += buckets_[static_cast<size_t>(b)];
    if (cum >= target) {
      const uint64_t ub = BucketUpperBound(b);
      const uint64_t largest_in_bucket = ub == 0 ? max_ : ub - 1;
      return std::min(largest_in_bucket, max_);
    }
  }
  return max_;
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

MetricRegistry::Entry::~Entry() { delete hist; }

MetricRegistry::Entry& MetricRegistry::Insert(std::string name, MetricKind kind,
                                              uint64_t owner, bool replace) {
  TFC_CHECK_MSG(!name.empty(), "metric names must be non-empty");
  auto [it, inserted] = entries_.try_emplace(std::move(name));
  if (!inserted) {
    TFC_CHECK_MSG(replace, "duplicate metric name: " << it->first);
    // Re-claim: drop the displaced entry (std::map node stability keeps
    // every other metric pointer valid) and rebuild it fresh.
    std::string key = it->first;
    entries_.erase(it);
    it = entries_.try_emplace(std::move(key)).first;
  }
  it->second.kind = kind;
  it->second.owner = owner;
  return it->second;
}

Counter* MetricRegistry::AddCounter(std::string name) {
  return &Insert(std::move(name), MetricKind::kCounter, /*owner=*/0, /*replace=*/false)
              .counter;
}

Gauge* MetricRegistry::AddGauge(std::string name) {
  return &Insert(std::move(name), MetricKind::kGauge, /*owner=*/0, /*replace=*/false)
              .gauge;
}

void MetricRegistry::AddCallbackGauge(std::string name, GaugeFn fn) {
  Insert(std::move(name), MetricKind::kCallbackGauge, /*owner=*/0, /*replace=*/false)
      .fn = std::move(fn);
}

Histogram* MetricRegistry::AddHistogram(std::string name) {
  Entry& e = Insert(std::move(name), MetricKind::kHistogram, /*owner=*/0,
                    /*replace=*/false);
  e.hist = new Histogram();
  return e.hist;
}

void MetricRegistry::Unregister(const std::string& name) { entries_.erase(name); }

void MetricRegistry::UnregisterOwned(const std::string& name, uint64_t token) {
  auto it = entries_.find(name);
  if (it != entries_.end() && it->second.owner == token) {
    entries_.erase(it);
  }
}

bool MetricRegistry::Read(const std::string& name, double* out) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return false;
  }
  Entry& e = it->second;
  switch (e.kind) {
    case MetricKind::kCounter:
      *out = static_cast<double>(e.counter.value());
      return true;
    case MetricKind::kGauge:
      *out = e.gauge.value();
      return true;
    case MetricKind::kCallbackGauge:
      *out = e.fn();
      return true;
    case MetricKind::kHistogram:
      return false;
  }
  return false;
}

const Histogram* MetricRegistry::FindHistogram(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != MetricKind::kHistogram) {
    return nullptr;
  }
  return it->second.hist;
}

void MetricRegistry::AuditInvariants(Auditor& audit) {
  for (auto& [name, entry] : entries_) {
    if (entry.kind != MetricKind::kCounter) {
      continue;
    }
    const bool ok = entry.counter.value() >= entry.last_audited;
    audit.Check(ok, "counter monotone between audit passes",
                ok ? std::string{}
                   : name + " went " + std::to_string(entry.last_audited) +
                         " -> " + std::to_string(entry.counter.value()));
    entry.last_audited = entry.counter.value();
  }
}

// ---------------------------------------------------------------------------
// ScopedMetrics
// ---------------------------------------------------------------------------

Counter* ScopedMetrics::AddCounter(std::string name) {
  TFC_CHECK(registry_ != nullptr);
  names_.push_back(name);
  return &registry_->Insert(std::move(name), MetricKind::kCounter, token_, replace_)
              .counter;
}

Gauge* ScopedMetrics::AddGauge(std::string name) {
  TFC_CHECK(registry_ != nullptr);
  names_.push_back(name);
  return &registry_->Insert(std::move(name), MetricKind::kGauge, token_, replace_)
              .gauge;
}

void ScopedMetrics::AddCallbackGauge(std::string name, MetricRegistry::GaugeFn fn) {
  TFC_CHECK(registry_ != nullptr);
  names_.push_back(name);
  registry_->Insert(std::move(name), MetricKind::kCallbackGauge, token_, replace_).fn =
      std::move(fn);
}

Histogram* ScopedMetrics::AddHistogram(std::string name) {
  TFC_CHECK(registry_ != nullptr);
  names_.push_back(name);
  MetricRegistry::Entry& e =
      registry_->Insert(std::move(name), MetricKind::kHistogram, token_, replace_);
  e.hist = new Histogram();
  return e.hist;
}

void ScopedMetrics::Clear() {
  if (registry_ != nullptr) {
    for (const std::string& name : names_) {
      registry_->UnregisterOwned(name, token_);
    }
  }
  names_.clear();
}

// ---------------------------------------------------------------------------
// TimeSeriesRecorder
// ---------------------------------------------------------------------------

void TimeSeriesRecorder::Watch(std::string name) { watches_.push_back(std::move(name)); }

void TimeSeriesRecorder::WatchPrefix(std::string prefix) {
  prefixes_.push_back(std::move(prefix));
}

void TimeSeriesRecorder::Start(TimeNs period, TimeNs first_delay) {
  TFC_CHECK_GT(period, 0);
  TFC_CHECK_GE(first_delay, 0);
  Stop();
  period_ = period;
  running_ = true;
  tick_event_ = scheduler_->ScheduleDaemonAfter(first_delay, [this] { Tick(); });
}

void TimeSeriesRecorder::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  scheduler_->CancelDaemon(tick_event_);
  tick_event_ = Scheduler::EventId{};
}

void TimeSeriesRecorder::Tick() {
  if (!running_) {
    return;
  }
  ++ticks_;
  const TimeNs t = scheduler_->now();
  double v = 0.0;
  for (const std::string& name : watches_) {
    // A watched metric that has disappeared (component destroyed mid-run)
    // silently stops extending its series.
    if (registry_->Read(name, &v)) {
      Append(name, t, v);
    }
  }
  if (!prefixes_.empty()) {
    registry_->ForEachName([&](const std::string& name, MetricKind kind) {
      if (kind == MetricKind::kHistogram) {
        return;  // distributions export via summary.json, not as series
      }
      bool matched = false;
      for (const std::string& p : prefixes_) {
        if (name.compare(0, p.size(), p) == 0) {
          matched = true;
          break;
        }
      }
      if (!matched ||
          std::find(watches_.begin(), watches_.end(), name) != watches_.end()) {
        return;  // not watched, or already sampled via the exact-name list
      }
      if (registry_->Read(name, &v)) {
        Append(name, t, v);
      }
    });
  }
  tick_event_ = scheduler_->ScheduleDaemonAfter(period_, [this] { Tick(); });
}

void TimeSeriesRecorder::Append(const std::string& name, TimeNs t, double v) {
  Ring& ring = series_[name];
  if (max_samples_ == 0 || ring.samples.size() < max_samples_) {
    ring.samples.push_back(Sample{t, v});
    return;
  }
  ring.samples[ring.head] = Sample{t, v};
  ring.head = (ring.head + 1) % max_samples_;
  ring.wrapped = true;
  ++dropped_;
}

std::vector<TimeSeriesRecorder::Sample> TimeSeriesRecorder::Unroll(const Ring& ring) {
  if (!ring.wrapped) {
    return ring.samples;
  }
  std::vector<Sample> out;
  out.reserve(ring.samples.size());
  for (size_t i = 0; i < ring.samples.size(); ++i) {
    out.push_back(ring.samples[(ring.head + i) % ring.samples.size()]);
  }
  return out;
}

std::vector<TimeSeriesRecorder::Sample> TimeSeriesRecorder::Series(
    const std::string& name) const {
  auto it = series_.find(name);
  if (it == series_.end()) {
    return {};
  }
  return Unroll(it->second);
}

std::vector<std::string> TimeSeriesRecorder::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, ring] : series_) {
    names.push_back(name);
  }
  return names;
}

// ---------------------------------------------------------------------------
// JSON helpers
// ---------------------------------------------------------------------------

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "null";  // JSON has no NaN/inf
  }
  // Integers that fit exactly render without a fraction — counter values
  // and byte counts stay greppable as plain integers.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) {
    return "null";
  }
  return std::string(buf, ptr);
}

namespace {

std::string Quoted(const std::string& s) { return "\"" + JsonEscape(s) + "\""; }

}  // namespace

// ---------------------------------------------------------------------------
// RunManifest
// ---------------------------------------------------------------------------

void RunManifest::SetLiteral(const std::string& key, std::string json) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(json);
      return;
    }
  }
  entries_.emplace_back(key, std::move(json));
}

void RunManifest::Set(const std::string& key, const std::string& value) {
  SetLiteral(key, Quoted(value));
}

void RunManifest::SetInt(const std::string& key, int64_t value) {
  SetLiteral(key, std::to_string(value));
}

void RunManifest::SetDouble(const std::string& key, double value) {
  SetLiteral(key, JsonNumber(value));
}

void RunManifest::SetBool(const std::string& key, bool value) {
  SetLiteral(key, value ? "true" : "false");
}

// ---------------------------------------------------------------------------
// Exporter
// ---------------------------------------------------------------------------

namespace {

std::string RunGitDescribe() {
  std::string out = "unknown";
  FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe != nullptr) {
    std::string text;
    char buf[256];
    while (std::fgets(buf, sizeof buf, pipe) != nullptr) {
      text += buf;
    }
    const int rc = ::pclose(pipe);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    if (rc == 0 && !text.empty()) {
      out = std::move(text);
    }
  }
  return out;
}

// The one process-wide cache in the telemetry layer. Every sweep worker
// exporting a manifest reads it concurrently, so it is explicitly guarded
// and annotated rather than left as a magic static hiding a popen() — the
// subprocess spawn runs exactly once, under the lock, and the returned
// reference is immutable afterwards (annotation-checked under clang,
// TSan-checked under the tsan preset).
Mutex g_git_describe_mu;
std::string* g_git_describe TFC_GUARDED_BY(g_git_describe_mu) = nullptr;

}  // namespace

const std::string& GitDescribe() {
  MutexLock lock(&g_git_describe_mu);
  if (g_git_describe == nullptr) {
    g_git_describe = new std::string(RunGitDescribe());  // leaked by design
  }
  return *g_git_describe;
}

namespace {

bool WriteManifest(const std::string& path, const RunManifest& manifest,
                   std::string* error) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  const std::time_t now = std::time(nullptr);
  char utc[32] = "unknown";
  std::tm tm_utc{};
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(utc, sizeof utc, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  }
  f << "{\n";
  f << "  \"schema_version\": 1,\n";
  f << "  \"git_describe\": " << Quoted(GitDescribe()) << ",\n";
  f << "  \"created_unix\": " << static_cast<int64_t>(now) << ",\n";
  f << "  \"created_utc\": " << Quoted(utc) << ",\n";
  f << "  \"run\": {";
  bool first = true;
  for (const auto& [key, json] : manifest.entries()) {
    f << (first ? "\n" : ",\n") << "    " << Quoted(key) << ": " << json;
    first = false;
  }
  f << (first ? "}" : "\n  }") << "\n}\n";
  f.flush();
  if (!f) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

bool WriteMetricsJsonl(const std::string& path, const TimeSeriesRecorder* recorder,
                       std::string* error) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  if (recorder != nullptr) {
    recorder->ForEachSeries(
        [&f](const std::string& name, const std::vector<TimeSeriesRecorder::Sample>& samples) {
          const std::string quoted_name = Quoted(name);
          for (const TimeSeriesRecorder::Sample& s : samples) {
            f << "{\"t_ns\": " << s.t << ", \"name\": " << quoted_name
              << ", \"v\": " << JsonNumber(s.v) << "}\n";
          }
        });
  }
  f.flush();
  if (!f) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

void WriteHistogramJson(std::ofstream& f, const Histogram& h, const char* indent) {
  f << "{\n";
  f << indent << "  \"count\": " << h.count() << ",\n";
  f << indent << "  \"sum\": " << h.sum() << ",\n";
  f << indent << "  \"min\": " << h.min() << ",\n";
  f << indent << "  \"max\": " << h.max() << ",\n";
  f << indent << "  \"mean\": " << JsonNumber(h.mean()) << ",\n";
  f << indent << "  \"p50\": " << h.Percentile(50) << ",\n";
  f << indent << "  \"p90\": " << h.Percentile(90) << ",\n";
  f << indent << "  \"p99\": " << h.Percentile(99) << ",\n";
  f << indent << "  \"p999\": " << h.Percentile(99.9) << ",\n";
  f << indent << "  \"buckets\": [";
  bool first = true;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    const uint64_t n = h.bucket_count(b);
    if (n == 0) {
      continue;  // sparse export: all-zero buckets dominate and carry nothing
    }
    f << (first ? "" : ", ") << "[" << Histogram::BucketLowerBound(b) << ", "
      << Histogram::BucketUpperBound(b) << ", " << n << "]";
    first = false;
  }
  f << "]\n" << indent << "}";
}

bool WriteSummary(const std::string& path, MetricRegistry& metrics,
                  const Profiler* profiler, std::string* error) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  f << "{\n  \"schema_version\": 1,\n";

  f << "  \"counters\": {";
  bool first = true;
  metrics.ForEachName([&](const std::string& name, MetricKind kind) {
    if (kind != MetricKind::kCounter) {
      return;
    }
    double v = 0.0;
    metrics.Read(name, &v);
    f << (first ? "\n" : ",\n") << "    " << Quoted(name) << ": " << JsonNumber(v);
    first = false;
  });
  f << (first ? "}," : "\n  },") << "\n";

  f << "  \"gauges\": {";
  first = true;
  metrics.ForEachName([&](const std::string& name, MetricKind kind) {
    if (kind != MetricKind::kGauge && kind != MetricKind::kCallbackGauge) {
      return;
    }
    double v = 0.0;
    metrics.Read(name, &v);
    f << (first ? "\n" : ",\n") << "    " << Quoted(name) << ": " << JsonNumber(v);
    first = false;
  });
  f << (first ? "}," : "\n  },") << "\n";

  f << "  \"histograms\": {";
  first = true;
  metrics.ForEachName([&](const std::string& name, MetricKind kind) {
    if (kind != MetricKind::kHistogram) {
      return;
    }
    const Histogram* h = metrics.FindHistogram(name);
    f << (first ? "\n" : ",\n") << "    " << Quoted(name) << ": ";
    WriteHistogramJson(f, *h, "    ");
    first = false;
  });
  f << (first ? "}," : "\n  },") << "\n";

  f << "  \"profile\": {";
  first = true;
  if (profiler != nullptr) {
    profiler->ForEachSite([&](const ProfileSite& site) {
      f << (first ? "\n" : ",\n") << "    " << Quoted(site.name()) << ": {\"hits\": "
        << site.hits() << ", \"sim_ns\": " << site.sim_ns() << ", \"wall_ns\": "
        << site.wall_ns() << "}";
      first = false;
    });
  }
  f << (first ? "}" : "\n  }") << "\n}\n";

  f.flush();
  if (!f) {
    *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace

bool WriteRunDirectory(const std::string& dir, const RunManifest& manifest,
                       MetricRegistry& metrics, const TimeSeriesRecorder* recorder,
                       const Profiler* profiler, std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    *error = "create_directories(" + dir + "): " + ec.message();
    return false;
  }
  return WriteManifest(dir + "/manifest.json", manifest, error) &&
         WriteMetricsJsonl(dir + "/metrics.jsonl", recorder, error) &&
         WriteSummary(dir + "/summary.json", metrics, profiler, error);
}

}  // namespace tfc
