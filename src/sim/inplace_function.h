// Small-buffer-optimized callable wrapper.
//
// InplaceFunction is a move-only std::function replacement with a fixed
// inline capture buffer and no heap allocation. The scheduler creates one
// of these per event — several per simulated packet — so avoiding the
// std::function heap allocation is a first-order win on the hot path.
// Being move-only it also accepts move-only captures (e.g. a PacketPtr
// moved into a delivery lambda), which std::function cannot hold at all.
//
// A callable that does not fit in Capacity bytes is a compile error, not a
// silent fallback to the heap: shrink the capture list or raise Capacity at
// the declaration site.

#ifndef SRC_SIM_INPLACE_FUNCTION_H_
#define SRC_SIM_INPLACE_FUNCTION_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace tfc {

inline constexpr size_t kDefaultInplaceCapacity = 64;

template <typename Signature, size_t Capacity = kDefaultInplaceCapacity>
class InplaceFunction;

template <typename R, typename... Args, size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() noexcept = default;
  InplaceFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename Fn = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, InplaceFunction> &&
                                        std::is_invocable_r_v<R, Fn&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(runtime/explicit)
    static_assert(sizeof(Fn) <= Capacity,
                  "capture list does not fit the inline buffer; shrink it or "
                  "raise Capacity at the declaration site");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callables are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callables must be nothrow-movable (the event heap moves "
                  "them while sifting)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::value;
  }

  // Constructs a callable in place, replacing the current one. Equivalent
  // to `*this = InplaceFunction(f)` without the intermediate object and its
  // move — the event heap uses this to build callbacks directly in its slab.
  template <typename F,
            typename Fn = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<Fn, InplaceFunction> &&
                                        std::is_invocable_r_v<R, Fn&, Args...>>>
  void Assign(F&& f) {
    static_assert(sizeof(Fn) <= Capacity,
                  "capture list does not fit the inline buffer; shrink it or "
                  "raise Capacity at the declaration site");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callables are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callables must be nothrow-movable (the event heap moves "
                  "them while sifting)");
    Reset();
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::value;
  }
  void Assign(InplaceFunction&& other) { *this = std::move(other); }

  InplaceFunction(InplaceFunction&& other) noexcept { MoveFrom(other); }
  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  // Raw dispatch pair — the invoke entry point and the callable storage it
  // expects — for callers that compile calls into flat tables instead of
  // paying the ops_-> indirection per call (the telemetry sample plan).
  // Valid while this object stays alive and unmodified; null when empty.
  using RawInvokeFn = R (*)(void*, Args&&...);
  RawInvokeFn raw_invoke() const noexcept {
    return ops_ != nullptr ? ops_->invoke : nullptr;
  }
  void* raw_storage() noexcept { return storage_; }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    // Move-constructs the callable into dst from src, then destroys src.
    // Null for small trivially relocatable callables: movers do a fixed
    // 16-byte inline copy instead of paying an indirect call per move —
    // cheaper for the one-or-two-pointer captures that dominate the event
    // hot path.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);  // null for trivially destructible callables
  };

  // Fixed size of the inline fast-path copy; a 16-byte memcpy is a single
  // vector load/store pair.
  static constexpr size_t kInlineCopyBytes = Capacity < 16 ? Capacity : 16;

  template <typename Fn>
  struct OpsFor {
    static constexpr bool kTrivial = std::is_trivially_copyable_v<Fn> &&
                                     std::is_trivially_destructible_v<Fn> &&
                                     sizeof(Fn) <= kInlineCopyBytes;
    static R Invoke(void* s, Args&&... args) {
      return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) noexcept {
      Fn* f = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*f));
      f->~Fn();
    }
    static void Destroy(void* s) noexcept { static_cast<Fn*>(s)->~Fn(); }
    static constexpr Ops value{&Invoke, kTrivial ? nullptr : &Relocate,
                               kTrivial ? nullptr : &Destroy};
  };

  void Reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

  void MoveFrom(InplaceFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate == nullptr) {
        // Fixed-size copy: branchless vector moves, cheaper than a call.
        // The copy deliberately reads up to kInlineCopyBytes even when the
        // callable is smaller; the pad bytes are indeterminate but copying
        // them through unsigned-char storage is well-defined, so silence
        // GCC's uninitialized-read warning for exactly this statement.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
        std::memcpy(storage_, other.storage_, kInlineCopyBytes);
#pragma GCC diagnostic pop
      } else {
        other.ops_->relocate(storage_, other.storage_);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace tfc

#endif  // SRC_SIM_INPLACE_FUNCTION_H_
