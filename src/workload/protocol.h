// Protocol selection shared by examples, tests, and benches: one struct
// bundles the three protocol configurations and knows how to create a
// sender of the selected kind and how to provision the network (ECN
// thresholds for DCTCP, switch agents for TFC).

#ifndef SRC_WORKLOAD_PROTOCOL_H_
#define SRC_WORKLOAD_PROTOCOL_H_

#include <memory>

#include "src/dctcp/dctcp.h"
#include "src/net/network.h"
#include "src/tcp/tcp.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"

namespace tfc {

enum class Protocol { kTcp, kDctcp, kTfc };

inline const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kTcp:
      return "TCP";
    case Protocol::kDctcp:
      return "DCTCP";
    case Protocol::kTfc:
      return "TFC";
  }
  return "?";
}

struct ProtocolSuite {
  Protocol protocol = Protocol::kTfc;
  TcpConfig tcp;
  DctcpConfig dctcp;
  TfcHostConfig tfc;
  TfcSwitchConfig tfc_switch;

  std::unique_ptr<ReliableSender> MakeSender(Network* net, Host* src, Host* dst) const {
    switch (protocol) {
      case Protocol::kTcp:
        return std::make_unique<TcpSender>(net, src, dst, tcp);
      case Protocol::kDctcp:
        return std::make_unique<DctcpSender>(net, src, dst, dctcp);
      case Protocol::kTfc:
        return std::make_unique<TfcSender>(net, src, dst, tfc);
    }
    return nullptr;
  }

  // ECN threshold for LinkOptions (pass when building the topology).
  Bytes EcnThresholdBytes(BitsPerSec link_bps = kGbps) const {
    if (protocol != Protocol::kDctcp) {
      return 0;
    }
    return link_bps >= 10 * kGbps ? kDctcpMarkingThreshold10G : kDctcpMarkingThreshold1G;
  }

  // Installs switch-side logic; call after the topology is built.
  void InstallSwitchLogic(Network& net) const {
    if (protocol == Protocol::kTfc) {
      InstallTfcSwitches(net, tfc_switch);
    }
  }

  const char* name() const { return ProtocolName(protocol); }
};

}  // namespace tfc

#endif  // SRC_WORKLOAD_PROTOCOL_H_
