#include "src/workload/benchmark_traffic.h"

#include <algorithm>

#include "src/sim/check.h"

namespace tfc {

EmpiricalCdf WebSearchFlowSizes() {
  // Piecewise-linear approximation of the DCTCP web-search background
  // distribution: half the flows are short messages under 10 KB; the top
  // ~2% of flows (multi-MB) carry most of the bytes. Mean ~= 0.9 MB.
  return EmpiricalCdf({
      {100, 0.00},
      {1'000, 0.10},
      {5'000, 0.30},
      {10'000, 0.50},
      {100'000, 0.70},
      {1'000'000, 0.85},
      {10'000'000, 0.98},
      {30'000'000, 1.00},
  });
}

BenchmarkTrafficApp::BenchmarkTrafficApp(Network* net, const ProtocolSuite& suite,
                                         std::vector<Host*> hosts,
                                         const BenchmarkTrafficConfig& config)
    : net_(net),
      suite_(suite),
      hosts_(std::move(hosts)),
      config_(config),
      background_sizes_(WebSearchFlowSizes()) {
  TFC_CHECK_GE(hosts_.size(), 2u);
}

void BenchmarkTrafficApp::Start() {
  if (config_.query_interarrival > 0) {
    ScheduleNextQuery();
  }
  if (config_.background_interarrival > 0) {
    ScheduleNextBackground();
  }
}

void BenchmarkTrafficApp::ScheduleNextQuery() {
  const TimeNs gap = static_cast<TimeNs>(
      net_->rng().Exponential(static_cast<double>(config_.query_interarrival)));
  const TimeNs at = net_->scheduler().now() + std::max<TimeNs>(gap, 1);
  if (at > config_.stop_time) {
    return;
  }
  net_->scheduler().ScheduleAt(at, [this] {
    LaunchQuery();
    ScheduleNextQuery();
  });
}

void BenchmarkTrafficApp::ScheduleNextBackground() {
  const TimeNs gap = static_cast<TimeNs>(
      net_->rng().Exponential(static_cast<double>(config_.background_interarrival)));
  const TimeNs at = net_->scheduler().now() + std::max<TimeNs>(gap, 1);
  if (at > config_.stop_time) {
    return;
  }
  net_->scheduler().ScheduleAt(at, [this] {
    LaunchBackground();
    ScheduleNextBackground();
  });
}

void BenchmarkTrafficApp::LaunchQuery() {
  // Rotate the aggregator across hosts; every (or `query_fanin`) other host
  // responds with one 2 KB flow — the partition/aggregate fan-in.
  Host* aggregator = hosts_[next_aggregator_ % hosts_.size()];
  ++next_aggregator_;
  int fanin = config_.query_fanin > 0
                  ? std::min<int>(config_.query_fanin, static_cast<int>(hosts_.size()) - 1)
                  : static_cast<int>(hosts_.size()) - 1;
  // Deterministic but rotating choice of responders.
  for (size_t i = 0; i < hosts_.size() && fanin > 0; ++i) {
    Host* responder = hosts_[(next_aggregator_ + i) % hosts_.size()];
    if (responder == aggregator) {
      continue;
    }
    StartFlow(responder, aggregator, config_.query_response_bytes, /*is_query=*/true);
    --fanin;
  }
}

void BenchmarkTrafficApp::LaunchBackground() {
  const EmpiricalCdf& kSizes = background_sizes_;
  const size_t n = hosts_.size();
  const size_t src = static_cast<size_t>(net_->rng().UniformInt(0, static_cast<int64_t>(n) - 1));
  size_t dst = static_cast<size_t>(net_->rng().UniformInt(0, static_cast<int64_t>(n) - 2));
  if (dst >= src) {
    ++dst;
  }
  const Bytes bytes = std::max<uint64_t>(100, static_cast<uint64_t>(kSizes.Sample(net_->rng())));
  StartFlow(hosts_[src], hosts_[dst], bytes, /*is_query=*/false);
}

void BenchmarkTrafficApp::StartFlow(Host* src, Host* dst, Bytes bytes, bool is_query) {
  auto flow = suite_.MakeSender(net_, src, dst);
  ReliableSender* raw = flow.get();
  flow->Write(bytes);
  flow->Close();
  flow->on_complete = [this, raw, bytes, is_query] {
    ++flows_completed_;
    total_timeouts_ += raw->stats().timeouts;
    if (is_query) {
      fct_.AddQuery(raw->stats().fct());
    } else {
      fct_.AddBackground(bytes, raw->stats().fct());
    }
    // Reap asynchronously: the sender's call stack is still active here.
    net_->scheduler().ScheduleAfter(0, [this, raw] {
      auto it = std::find_if(live_flows_.begin(), live_flows_.end(),
                             [raw](const auto& p) { return p.get() == raw; });
      if (it != live_flows_.end()) {
        std::swap(*it, live_flows_.back());
        live_flows_.pop_back();
      }
    });
  };
  flow->Start();
  ++flows_started_;
  live_flows_.push_back(std::move(flow));
}

}  // namespace tfc
