#include "src/workload/shuffle.h"

#include "src/sim/check.h"

namespace tfc {

ShuffleApp::ShuffleApp(Network* net, const ProtocolSuite& suite,
                       std::vector<Host*> participants, const ShuffleConfig& config)
    : net_(net), config_(config) {
  TFC_CHECK_GE(participants.size(), 2u);
  for (Host* src : participants) {
    for (Host* dst : participants) {
      if (src == dst) {
        continue;
      }
      auto flow = suite.MakeSender(net, src, dst);
      flow->Write(config_.block_bytes);
      flow->Close();
      flow->on_complete = [this] {
        ++completed_;
        if (completed_ == flows_.size()) {
          finish_time_ = net_->scheduler().now();
          if (on_finished) {
            on_finished();
          }
        }
      };
      flows_.push_back(std::move(flow));
    }
  }
}

void ShuffleApp::Start() {
  start_time_ = net_->scheduler().now();
  for (auto& f : flows_) {
    f->Start();
  }
}

TimeNs ShuffleApp::elapsed() const {
  const TimeNs end = finished() ? finish_time_ : net_->scheduler().now();
  return end - start_time_;
}

double ShuffleApp::goodput_bps() const {
  const double secs = ToSeconds(elapsed());
  if (secs <= 0) {
    return 0.0;
  }
  uint64_t delivered = 0;
  for (const auto& f : flows_) {
    delivered += f->delivered_bytes();
  }
  return static_cast<double>(delivered) * 8.0 / secs;
}

uint64_t ShuffleApp::total_timeouts() const {
  uint64_t total = 0;
  for (const auto& f : flows_) {
    total += f->stats().timeouts;
  }
  return total;
}

}  // namespace tfc
