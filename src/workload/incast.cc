#include "src/workload/incast.h"

#include <algorithm>

#include "src/sim/check.h"

namespace tfc {

IncastApp::IncastApp(Network* net, const ProtocolSuite& suite, Host* receiver,
                     std::vector<Host*> senders, const IncastConfig& config)
    : net_(net), config_(config) {
  TFC_CHECK(!senders.empty());
  TFC_CHECK_GT(config.rounds, 0);
  block_fcts_.resize(senders.size());
  for (size_t i = 0; i < senders.size(); ++i) {
    Host* s = senders[i];
    TFC_CHECK_NE(s, receiver);
    auto flow = suite.MakeSender(net, s, receiver);
    flow->on_drained = [this, i] { OnFlowDrained(i); };
    flows_.push_back(std::move(flow));
  }
  // FCT sink: every block completion lands in both the per-flow sample sets
  // and the registry histogram, so telemetry runs export the incast FCT
  // distribution without touching the app. Keyed by receiver so several
  // incast apps on one network do not collide.
  metrics_.Reset(&net->metrics());
  const std::string prefix = "incast." + receiver->name();
  rounds_counter_ = metrics_.AddCounter(prefix + ".rounds_completed");
  fct_hist_ = metrics_.AddHistogram(prefix + ".block_fct_us");
}

void IncastApp::Start() {
  start_time_ = net_->scheduler().now();
  for (auto& f : flows_) {
    f->Start();
  }
  // First request goes out once connections settle: schedule it after the
  // request delay like every later round.
  net_->scheduler().ScheduleAfter(config_.request_delay, [this] { BeginRound(); });
}

void IncastApp::BeginRound() {
  pending_in_round_ = static_cast<int>(flows_.size());
  round_start_ = net_->scheduler().now();
  for (auto& f : flows_) {
    f->Write(config_.block_bytes);
  }
}

void IncastApp::OnFlowDrained(size_t flow_index) {
  TFC_CHECK_GT(pending_in_round_, 0);
  const TimeNs fct = net_->scheduler().now() - round_start_;
  block_fcts_[flow_index].Add(ToSeconds(fct));
  fct_hist_->Record(static_cast<uint64_t>(std::max<int64_t>(fct / kMicrosecond, 0)));
  if (--pending_in_round_ > 0) {
    return;
  }
  ++rounds_completed_;
  rounds_counter_->Add();
  if (rounds_completed_ >= config_.rounds) {
    finished_ = true;
    finish_time_ = net_->scheduler().now();
    for (auto& f : flows_) {
      f->Close();
    }
    if (on_finished) {
      on_finished();
    }
    return;
  }
  net_->scheduler().ScheduleAfter(config_.request_delay, [this] { BeginRound(); });
}

double IncastApp::goodput_bps() const {
  const TimeNs end = finished_ ? finish_time_ : net_->scheduler().now();
  const double elapsed = ToSeconds(end - start_time_);
  if (elapsed <= 0) {
    return 0.0;
  }
  const double bytes = static_cast<double>(config_.block_bytes) *
                       static_cast<double>(flows_.size()) *
                       static_cast<double>(rounds_completed_);
  return bytes * 8.0 / elapsed;
}

uint64_t IncastApp::total_timeouts() const {
  uint64_t total = 0;
  for (const auto& f : flows_) {
    total += f->stats().timeouts;
  }
  return total;
}

double IncastApp::max_timeouts_per_block() const {
  const double rounds = std::max(1, rounds_completed_);
  double worst = 0.0;
  for (const auto& f : flows_) {
    worst = std::max(worst, static_cast<double>(f->stats().timeouts) / rounds);
  }
  return worst;
}

SampleSet IncastApp::MergedBlockFcts() const {
  SampleSet merged;
  for (const SampleSet& per_flow : block_fcts_) {
    for (double s : per_flow.samples()) {
      merged.Add(s);
    }
  }
  return merged;
}

}  // namespace tfc
