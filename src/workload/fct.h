// Flow-completion-time bookkeeping, binned the way the paper reports it
// (Fig. 13 / Fig. 16): query flows as one population with mean + tail
// percentiles; background flows binned by size.

#ifndef SRC_WORKLOAD_FCT_H_
#define SRC_WORKLOAD_FCT_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/sim/stats.h"
#include "src/sim/time.h"
#include "src/sim/units.h"

namespace tfc {

// Background-flow size bins used by the paper's Fig. 13b / 16b.
inline constexpr int kNumSizeBins = 6;
inline constexpr std::array<uint64_t, kNumSizeBins - 1> kSizeBinEdges = {
    1'000, 10'000, 100'000, 1'000'000, 10'000'000};
inline constexpr std::array<const char*, kNumSizeBins> kSizeBinLabels = {
    "<1KB", "1-10KB", "10-100KB", "100KB-1MB", "1-10MB", ">10MB"};

inline int SizeBin(Bytes bytes) {
  for (int i = 0; i < kNumSizeBins - 1; ++i) {
    if (bytes < Bytes(kSizeBinEdges[static_cast<size_t>(i)])) {
      return i;
    }
  }
  return kNumSizeBins - 1;
}

class FctRecorder {
 public:
  void AddQuery(TimeNs fct) { query_.Add(ToMicroseconds(fct)); }
  void AddBackground(Bytes bytes, TimeNs fct) {
    background_[static_cast<size_t>(SizeBin(bytes))].Add(ToMicroseconds(fct));
  }

  SampleSet& query() { return query_; }
  SampleSet& background(int bin) { return background_.at(static_cast<size_t>(bin)); }

 private:
  SampleSet query_;
  std::array<SampleSet, kNumSizeBins> background_;
};

}  // namespace tfc

#endif  // SRC_WORKLOAD_FCT_H_
