// Measurement instruments: periodic queue-length and goodput samplers.

#ifndef SRC_WORKLOAD_SAMPLERS_H_
#define SRC_WORKLOAD_SAMPLERS_H_

#include <functional>
#include <utility>
#include <vector>

#include "src/net/port.h"
#include "src/sim/stats.h"
#include "src/sim/time.h"
#include "src/sim/timer.h"

namespace tfc {

struct TimeSeries {
  std::vector<double> t;  // seconds
  std::vector<double> v;

  void Add(double time_s, double value) {
    t.push_back(time_s);
    v.push_back(value);
  }
  size_t size() const { return v.size(); }
};

// Samples a port's instantaneous queue occupancy (frame bytes).
class QueueSampler {
 public:
  QueueSampler(Scheduler* scheduler, Port* port, TimeNs interval)
      : port_(port), timer_(scheduler, [this, scheduler] {
          const double bytes = static_cast<double>(port_->queue_bytes());
          series.Add(ToSeconds(scheduler->now()), bytes);
          stats.Add(bytes);
        }) {
    timer_.Start(interval, /*first_delay=*/0);
  }

  void Stop() { timer_.Stop(); }

  TimeSeries series;
  RunningStats stats;

 private:
  Port* port_;
  PeriodicTimer timer_;
};

// Samples the rate of an arbitrary cumulative byte counter (e.g. a
// receiver's delivered bytes, or a sum over several flows) and reports it
// in bits per second per interval.
class GoodputSampler {
 public:
  using ByteCounter = std::function<Bytes()>;

  GoodputSampler(Scheduler* scheduler, ByteCounter counter, TimeNs interval)
      : counter_(std::move(counter)),
        interval_(interval),
        timer_(scheduler, [this, scheduler] { Tick(scheduler->now()); }) {
    last_bytes_ = counter_();
    timer_.Start(interval);
  }

  void Stop() { timer_.Stop(); }

  // Mean rate over all samples collected so far (bps).
  double mean_bps() const { return stats.mean(); }  // lint:allow units

  TimeSeries series;  // bps per interval
  RunningStats stats;

 private:
  void Tick(TimeNs now) {
    const Bytes bytes = counter_();
    const double bps =
        static_cast<double>(bytes - last_bytes_) * 8.0 / ToSeconds(interval_);
    last_bytes_ = bytes;
    series.Add(ToSeconds(now), bps);
    stats.Add(bps);
  }

  ByteCounter counter_;
  TimeNs interval_;
  Bytes last_bytes_ = 0;
  PeriodicTimer timer_;
};

}  // namespace tfc

#endif  // SRC_WORKLOAD_SAMPLERS_H_
