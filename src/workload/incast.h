// Incast (partition/aggregate) workload — paper Sec. 6.1.2 "Bursty Fan-in
// traffic" and Sec. 6.2.1.
//
// A receiver requests a data block from every sender; all senders respond
// synchronously over persistent connections; the receiver cannot request the
// next round until every block of the current round has arrived (barrier).
// The request itself is modelled as a fixed notification delay rather than a
// packet exchange (it is a single small packet on an idle reverse path).

#ifndef SRC_WORKLOAD_INCAST_H_
#define SRC_WORKLOAD_INCAST_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/sim/stats.h"
#include "src/sim/telemetry.h"
#include "src/workload/protocol.h"

namespace tfc {

struct IncastConfig {
  Bytes block_bytes = 256 * 1024;
  int rounds = 50;
  // One-way request notification delay (request packet path latency).
  TimeNs request_delay = Microseconds(30);
};

class IncastApp {
 public:
  IncastApp(Network* net, const ProtocolSuite& suite, Host* receiver,
            std::vector<Host*> senders, const IncastConfig& config);

  // Opens all connections and schedules the first round.
  void Start();

  std::function<void()> on_finished;

  // --- results ---
  int rounds_completed() const { return rounds_completed_; }
  bool finished() const { return finished_; }
  TimeNs start_time() const { return start_time_; }
  TimeNs finish_time() const { return finish_time_; }

  // Application goodput: payload bits delivered per second of elapsed time.
  double goodput_bps() const;  // lint:allow units (measured, fractional)

  uint64_t total_timeouts() const;
  // Worst per-flow average timeouts per block (paper Fig. 15b metric).
  double max_timeouts_per_block() const;

  const std::vector<std::unique_ptr<ReliableSender>>& flows() const { return flows_; }

  // Per-flow block completion times (one sample per block, in seconds):
  // the incast FCT sink. Also exported to the telemetry registry as the
  // "incast.block_fct_us" histogram plus "incast.rounds_completed".
  const SampleSet& block_fcts(size_t flow_index) const {
    return block_fcts_.at(flow_index);
  }
  // All flows' block FCT samples merged (for percentile queries).
  SampleSet MergedBlockFcts() const;

 private:
  void BeginRound();
  void OnFlowDrained(size_t flow_index);

  Network* net_;
  IncastConfig config_;
  std::vector<std::unique_ptr<ReliableSender>> flows_;
  std::vector<SampleSet> block_fcts_;  // seconds, one SampleSet per flow
  int pending_in_round_ = 0;
  int rounds_completed_ = 0;
  bool finished_ = false;
  TimeNs start_time_ = 0;
  TimeNs finish_time_ = 0;
  TimeNs round_start_ = 0;
  ScopedMetrics metrics_;
  Counter* rounds_counter_ = nullptr;
  Histogram* fct_hist_ = nullptr;  // microseconds
};

}  // namespace tfc

#endif  // SRC_WORKLOAD_INCAST_H_
