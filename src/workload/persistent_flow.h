// A long-lived flow that keeps its sender saturated while "active" —
// the building block for the paper's long-lived and on-off (Storm-like)
// workloads. While active, a fresh chunk is written every time the send
// buffer drains; while inactive, the flow stays open but silent, which is
// exactly the "silent flow" case TFC's effective-flow counting handles.

#ifndef SRC_WORKLOAD_PERSISTENT_FLOW_H_
#define SRC_WORKLOAD_PERSISTENT_FLOW_H_

#include <memory>

#include "src/transport/reliable_sender.h"

namespace tfc {

class PersistentFlow {
 public:
  // The default refill chunk is a whole number of segments: a partial tail
  // packet would otherwise leave window room for one extra packet exactly at
  // every chunk boundary, and lockstep flows would all spend that extra
  // packet in the same RTT — a periodic synchronized burst that is an
  // artifact of the chunking, not of the protocol under test.
  explicit PersistentFlow(std::unique_ptr<ReliableSender> sender,
                          Bytes chunk_bytes = 64 * kMssBytes)
      : sender_(std::move(sender)), chunk_bytes_(chunk_bytes) {
    // Refill as soon as the transmit buffer runs dry (not when it drains of
    // ACKs), so an active flow never leaves a bubble in the pipe.
    sender_->on_tx_buffer_empty = [this] {
      if (active_) {
        sender_->Write(chunk_bytes_);
      }
    };
  }

  // Connects; begins writing immediately if already activated.
  void Start() {
    sender_->Start();
    if (active_) {
      sender_->Write(chunk_bytes_);
    }
  }

  void SetActive(bool active) {
    if (active == active_) {
      return;
    }
    active_ = active;
    if (active_) {
      sender_->Write(chunk_bytes_);
    }
  }

  bool active() const { return active_; }
  ReliableSender& sender() { return *sender_; }
  uint64_t delivered_bytes() const { return sender_->delivered_bytes(); }  // lint:allow units

 private:
  std::unique_ptr<ReliableSender> sender_;
  Bytes chunk_bytes_;
  bool active_ = true;
};

}  // namespace tfc

#endif  // SRC_WORKLOAD_PERSISTENT_FLOW_H_
