// All-to-all shuffle workload — the MapReduce phase the paper's intro cites
// as a driver of data-center congestion. Every participant sends one block
// to every other participant; the shuffle completes when the last byte of
// the last transfer is acknowledged. Unlike incast there is no per-round
// barrier: all n*(n-1) flows run concurrently, stressing every egress port
// at once.

#ifndef SRC_WORKLOAD_SHUFFLE_H_
#define SRC_WORKLOAD_SHUFFLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/workload/protocol.h"

namespace tfc {

struct ShuffleConfig {
  Bytes block_bytes = 1024 * 1024;  // per (src, dst) pair
};

class ShuffleApp {
 public:
  ShuffleApp(Network* net, const ProtocolSuite& suite, std::vector<Host*> participants,
             const ShuffleConfig& config);

  void Start();

  std::function<void()> on_finished;

  bool finished() const { return completed_ == flows_.size() && !flows_.empty(); }
  size_t flows_total() const { return flows_.size(); }
  size_t flows_completed() const { return completed_; }
  TimeNs start_time() const { return start_time_; }
  TimeNs finish_time() const { return finish_time_; }
  // Shuffle duration so far (or final, once finished).
  TimeNs elapsed() const;
  // Aggregate goodput: total payload moved / elapsed.
  double goodput_bps() const;  // lint:allow units (measured, fractional)
  uint64_t total_timeouts() const;

  const std::vector<std::unique_ptr<ReliableSender>>& flows() const { return flows_; }

 private:
  Network* net_;
  ShuffleConfig config_;
  std::vector<std::unique_ptr<ReliableSender>> flows_;
  size_t completed_ = 0;
  TimeNs start_time_ = 0;
  TimeNs finish_time_ = 0;
};

}  // namespace tfc

#endif  // SRC_WORKLOAD_SHUFFLE_H_
