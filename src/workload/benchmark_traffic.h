// Realistic "web search" benchmark traffic — paper Sec. 6.1.2 "Benchmark".
//
// The paper replays query, short-message, and background traffic generated
// from the interarrival and flow-size distributions measured in the DCTCP
// paper (6000 production servers). Those raw traces are not public, so this
// generator reproduces the *described* statistical structure:
//   - Query traffic: Poisson query arrivals; each query makes every other
//     participating server send a 2 KB response to one aggregator
//     (partition/aggregate fan-in; in the large-scale setup this is the
//     paper's "359 servers transmit a query response to the last server").
//   - Background traffic: Poisson flow arrivals between random host pairs
//     with a heavy-tailed empirical size distribution approximating the
//     DCTCP paper's CDF (most flows small, most bytes in multi-MB flows);
//     short messages are the small-size mass of the same distribution.
// FCTs land in an FctRecorder binned exactly like the paper's Fig. 13/16.

#ifndef SRC_WORKLOAD_BENCHMARK_TRAFFIC_H_
#define SRC_WORKLOAD_BENCHMARK_TRAFFIC_H_

#include <memory>
#include <vector>

#include "src/workload/fct.h"
#include "src/workload/protocol.h"

namespace tfc {

// Heavy-tailed background flow-size distribution (bytes), approximating the
// DCTCP web-search workload: ~50% of flows under 10 KB, ~2% above 10 MB.
EmpiricalCdf WebSearchFlowSizes();

struct BenchmarkTrafficConfig {
  // Mean interarrival of queries (Poisson). 0 disables query traffic.
  TimeNs query_interarrival = Milliseconds(10);
  // Servers responding per query (0 = all hosts except the aggregator).
  int query_fanin = 0;
  Bytes query_response_bytes = 2 * 1024;
  // Mean interarrival of background flows (Poisson). 0 disables.
  TimeNs background_interarrival = Milliseconds(2);
  // Stop generating new flows at this time (flows in flight still finish).
  TimeNs stop_time = Seconds(2);
};

class BenchmarkTrafficApp {
 public:
  BenchmarkTrafficApp(Network* net, const ProtocolSuite& suite, std::vector<Host*> hosts,
                      const BenchmarkTrafficConfig& config);

  void Start();

  FctRecorder& fct() { return fct_; }
  uint64_t flows_started() const { return flows_started_; }
  uint64_t flows_completed() const { return flows_completed_; }
  uint64_t total_timeouts() const { return total_timeouts_; }

 private:
  void ScheduleNextQuery();
  void ScheduleNextBackground();
  void LaunchQuery();
  void LaunchBackground();
  void StartFlow(Host* src, Host* dst, Bytes bytes, bool is_query);

  Network* net_;
  ProtocolSuite suite_;
  std::vector<Host*> hosts_;
  BenchmarkTrafficConfig config_;
  // Per-instance copy (not a function-local static): concurrent sweep
  // workers each own their sampler, so no cross-simulation sharing.
  EmpiricalCdf background_sizes_;
  FctRecorder fct_;
  std::vector<std::unique_ptr<ReliableSender>> live_flows_;
  uint64_t flows_started_ = 0;
  uint64_t flows_completed_ = 0;
  uint64_t total_timeouts_ = 0;
  size_t next_aggregator_ = 0;
};

}  // namespace tfc

#endif  // SRC_WORKLOAD_BENCHMARK_TRAFFIC_H_
