// Sender half of a flow: connection setup, sliding window, retransmission.
//
// ReliableSender implements the protocol-independent machinery — SYN/FIN
// handshakes, byte-sequence sliding window, RTT estimation (RFC 6298),
// duplicate-ACK fast retransmit with NewReno-style recovery bookkeeping,
// and the retransmission timer — and delegates congestion control to
// subclasses through virtual hooks. TcpSender/DctcpSender/TfcSender only
// implement window policy.
//
// Application API:
//   sender.Write(bytes);   // append bytes to transmit (callable repeatedly)
//   sender.Start();        // connect; data flows once established
//   sender.Close();        // FIN once everything written is acknowledged
//   sender.on_drained      // fired whenever all written bytes are acked
//   sender.on_complete     // fired when the FIN is acknowledged
//
// The sender constructs and owns its peer ReliableReceiver on the remote
// host (the "listening socket"), so creating a sender fully provisions a
// flow.

#ifndef SRC_TRANSPORT_RELIABLE_SENDER_H_
#define SRC_TRANSPORT_RELIABLE_SENDER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/net/host.h"
#include "src/net/packet.h"
#include "src/sim/profile.h"
#include "src/sim/telemetry.h"
#include "src/sim/timer.h"
#include "src/transport/flow_stats.h"
#include "src/transport/reliable_receiver.h"

namespace tfc {

class Network;

struct TransportConfig {
  uint32_t mss = kMssBytes;            // max payload per segment
  TimeNs rto_min = Milliseconds(200);  // Linux default; DC deployments tune this
  TimeNs rto_max = Seconds(60);
  TimeNs rto_initial = Milliseconds(200);
  uint32_t dupack_threshold = 3;
  Bytes receive_window = 4 * 1024 * 1024;     // advertised window (payload bytes)

  // Delayed ACKs: acknowledge every Nth in-order data packet, flushing
  // after `delayed_ack_timeout` if no further data arrives. 1 = per-packet
  // ACKs (the default; what this repo's experiments use). Control packets,
  // out-of-order arrivals, CE-marked and round-marked packets are always
  // acknowledged immediately so loss recovery, DCTCP, and TFC stay exact.
  uint32_t ack_every = 1;
  TimeNs delayed_ack_timeout = Microseconds(200);
};

class ReliableSender : public Endpoint {
 public:
  enum class State : uint8_t {
    kIdle,
    kSynSent,
    kEstablished,
    kFinSent,
    kClosed,
  };

  ReliableSender(Network* network, Host* local, Host* remote, const TransportConfig& config);
  ~ReliableSender() override;

  // Begins connection establishment (sends SYN).
  void Start();

  // Appends `bytes` to the transmit goal. May be called before Start() and
  // repeatedly afterwards (persistent connections).
  void Write(Bytes bytes);

  // Requests connection close: a FIN goes out once all written bytes are
  // acknowledged.
  void Close();

  void OnReceive(PacketPtr pkt) final;

  // --- observers ---
  const FlowStats& stats() const { return stats_; }
  int flow_id() const { return flow_id_; }
  State state() const { return state_; }
  Host* local() const { return local_; }
  Host* remote() const { return remote_; }
  Bytes inflight_bytes() const { return Bytes(static_cast<int64_t>(snd_next_ - snd_una_)); }
  uint64_t write_goal() const { return write_goal_; }
  // Sequence-space positions, not sizes: seq space stays raw uint64.
  uint64_t acked_bytes() const { return snd_una_; }  // lint:allow units
  bool drained() const { return snd_una_ == write_goal_; }
  ReliableReceiver& receiver() { return *receiver_; }
  uint64_t delivered_bytes() const { return receiver_->delivered_bytes(); }  // lint:allow units
  TimeNs srtt() const { return srtt_; }
  TimeNs rto() const { return rto_; }
  // Most recent raw RTT sample (0 before the first ACK).
  TimeNs last_rtt_sample() const { return last_rtt_sample_; }

  std::function<void()> on_drained;
  std::function<void()> on_complete;
  // Fired whenever the transmit buffer runs dry (everything written has been
  // sent, though not necessarily acknowledged). Writing more data from this
  // callback keeps the pipe full with no ACK-drain bubble.
  std::function<void()> on_tx_buffer_empty;

 protected:
  // --- congestion-control hooks ---

  // May the sender emit another segment given current in-flight payload?
  virtual bool CanSendMore(Bytes inflight_payload) const = 0;

  // Whether the SYN carries the TFC round mark.
  virtual bool MarkSyn() const { return false; }

  // Invoked after the connection is established (SYNACK received).
  virtual void OnEstablished() {}

  // Invoked at the start of every Write() (TFC's resume-probe extension).
  virtual void OnWrite() {}

  // Invoked for every arriving ACK before cumulative processing, so
  // protocols can consume header fields (ECN echo, TFC window).
  virtual void OnAckHeader(const Packet& ack) { (void)ack; }

  // Invoked when an ACK advanced snd_una by `newly_acked` bytes.
  virtual void OnAckedData(const Packet& ack, Bytes newly_acked) {
    (void)ack;
    (void)newly_acked;
  }

  // Invoked for every duplicate ACK after the first (window inflation).
  virtual void OnDuplicateAck() {}

  // Invoked when the dup-ACK threshold trips (before the fast retransmit).
  virtual void OnEnterRecovery(Bytes flight_size) { (void)flight_size; }

  // Invoked on a partial ACK while in recovery (NewReno hole repair follows).
  virtual void OnPartialAck(Bytes newly_acked) { (void)newly_acked; }

  // Invoked when recovery completes (snd_una reached the recovery point).
  virtual void OnExitRecovery() {}

  // Invoked on RTO expiry before the go-back-N retransmission.
  virtual void OnRetransmitTimeout() {}

  // Lets protocols stamp outgoing data segments (TFC round marks).
  virtual void DecorateData(Packet& pkt, bool retransmission) {
    (void)pkt;
    (void)retransmission;
  }

  // Handles an RTO when established but with nothing in flight (TFC uses
  // this to retry its window-acquisition probe). Return true if the timer
  // should be re-armed.
  virtual bool OnIdleTimeout() { return false; }

  // Whether outgoing data should be ECN-capable (DCTCP).
  virtual bool EcnCapable() const { return false; }

  // Creates the peer receiver; TFC overrides to create a TfcReceiver.
  virtual std::unique_ptr<ReliableReceiver> MakeReceiver();

  // --- services for subclasses ---
  void SendAvailable();                        // pump the send window
  void SendControl(PacketType type, bool rm);  // SYN / FIN / probes
  PacketPtr MakePacket(PacketType type) const;
  void SendPacket(PacketPtr pkt);
  void ArmTimerIfNeeded();
  void RestartRtoTimer() { rto_timer_.RestartAfter(rto_); }
  Network* network() const { return network_; }
  const TransportConfig& transport_config() const { return config_; }

  // Must be called exactly once at the end of each leaf-class constructor
  // (creates the receiver via the MakeReceiver virtual).
  void InitializeReceiver();

  // Telemetry name prefix for this flow: "flow.<id>". The base class
  // registers .acked_bytes/.delivered_bytes/.srtt_ns/.timeouts/.retransmits
  // gauges; congestion-control subclasses add their state (cwnd, alpha)
  // through the same ScopedMetrics so everything unregisters together when
  // the flow is destroyed.
  std::string metric_prefix() const { return "flow." + std::to_string(flow_id_); }
  ScopedMetrics metrics_;

 private:
  void HandleAck(PacketPtr pkt);
  void HandleTimeout();
  // Sends the segment starting at `seq`; returns its payload length.
  uint32_t SendSegment(uint64_t seq, bool retransmission);
  void SampleRtt(TimeNs sample);
  void MaybeFinish();
  void BackOffRto();

  Network* network_;
  Host* local_;
  Host* remote_;
  TransportConfig config_;
  int flow_id_;
  std::unique_ptr<ReliableReceiver> receiver_;

  State state_ = State::kIdle;
  bool close_requested_ = false;

  uint64_t write_goal_ = 0;
  uint64_t snd_una_ = 0;
  uint64_t snd_next_ = 0;
  uint64_t highest_sent_ = 0;

  uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  uint64_t recover_ = 0;

  TimeNs srtt_ = 0;
  TimeNs rttvar_ = 0;
  TimeNs last_rtt_sample_ = 0;
  TimeNs rto_;

  Timer rto_timer_;
  ProfileSite* rto_site_ = nullptr;  // shared "transport.rto" site
  FlowStats stats_;
  bool drained_notified_ = true;
  bool in_tx_empty_callback_ = false;
};

}  // namespace tfc

#endif  // SRC_TRANSPORT_RELIABLE_SENDER_H_
