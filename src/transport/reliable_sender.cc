#include "src/transport/reliable_sender.h"

#include <algorithm>

#include "src/net/network.h"
#include "src/sim/check.h"

namespace tfc {

ReliableSender::ReliableSender(Network* network, Host* local, Host* remote,
                               const TransportConfig& config)
    : network_(network),
      local_(local),
      remote_(remote),
      config_(config),
      flow_id_(network->AllocateFlowId()),
      rto_(config.rto_initial),
      rto_timer_(&network->scheduler(), [this] { HandleTimeout(); }) {
  TFC_CHECK_NE(local_, remote_);
  local_->RegisterEndpoint(flow_id_, this);
  rto_site_ = network->profiler().Site("transport.rto");
  metrics_.Reset(&network->metrics());
  const std::string prefix = metric_prefix();
  metrics_.AddCallbackGauge(prefix + ".acked_bytes",
                            [this] { return static_cast<double>(snd_una_); });
  // Guard: the receiver is created later by InitializeReceiver, and a
  // recorder with first_delay=0 may sample before data ever flows.
  metrics_.AddCallbackGauge(prefix + ".delivered_bytes", [this] {
    return receiver_ != nullptr ? static_cast<double>(receiver_->delivered_bytes()) : 0.0;
  });
  metrics_.AddCallbackGauge(prefix + ".srtt_ns",
                            [this] { return static_cast<double>(srtt_); });
  metrics_.AddCallbackGauge(prefix + ".timeouts",
                            [this] { return static_cast<double>(stats_.timeouts); });
  metrics_.AddCallbackGauge(prefix + ".retransmits", [this] {
    return static_cast<double>(stats_.retransmits);
  });
}

ReliableSender::~ReliableSender() { local_->UnregisterEndpoint(flow_id_); }

void ReliableSender::InitializeReceiver() {
  TFC_CHECK_EQ(receiver_, nullptr);
  receiver_ = MakeReceiver();
}

std::unique_ptr<ReliableReceiver> ReliableSender::MakeReceiver() {
  return std::make_unique<ReliableReceiver>(network_, remote_, flow_id_,
                                            config_.receive_window, config_.ack_every,
                                            config_.delayed_ack_timeout);
}

void ReliableSender::Start() {
  TFC_CHECK(state_ == State::kIdle);
  TFC_CHECK(receiver_ != nullptr);  // subclass forgot InitializeReceiver()
  stats_.start_time = network_->scheduler().now();
  state_ = State::kSynSent;
  SendControl(PacketType::kSyn, MarkSyn());
  RestartRtoTimer();
}

void ReliableSender::Write(Bytes bytes) {
  TFC_CHECK(!close_requested_);
  if (bytes == 0) {
    return;
  }
  write_goal_ += static_cast<uint64_t>(bytes.count());
  stats_.bytes_goal = write_goal_;
  drained_notified_ = false;
  OnWrite();
  if (state_ == State::kEstablished) {
    SendAvailable();
  }
}

void ReliableSender::Close() {
  close_requested_ = true;
  MaybeFinish();
}

PacketPtr ReliableSender::MakePacket(PacketType type) const {
  PacketPtr pkt = network_->AllocatePacket();
  pkt->flow_id = flow_id_;
  pkt->src = local_->id();
  pkt->dst = remote_->id();
  pkt->type = type;
  pkt->window = kWindowInfinite;
  return pkt;
}

void ReliableSender::SendPacket(PacketPtr pkt) { local_->Send(std::move(pkt)); }

void ReliableSender::SendControl(PacketType type, bool rm) {
  PacketPtr pkt = MakePacket(type);
  pkt->seq = snd_next_;
  pkt->rm = rm;
  pkt->ts = network_->scheduler().now();
  pkt->ecn_capable = EcnCapable();
  SendPacket(std::move(pkt));
}

uint32_t ReliableSender::SendSegment(uint64_t seq, bool retransmission) {
  TFC_DCHECK_LT(seq, write_goal_);
  const uint32_t payload =
      static_cast<uint32_t>(std::min<uint64_t>(config_.mss, write_goal_ - seq));
  PacketPtr pkt = MakePacket(PacketType::kData);
  pkt->seq = seq;
  pkt->payload = payload;
  pkt->ts = network_->scheduler().now();
  pkt->ecn_capable = EcnCapable();
  DecorateData(*pkt, retransmission);
  ++stats_.data_packets_sent;
  if (retransmission) {
    ++stats_.retransmits;
  }
  highest_sent_ = std::max(highest_sent_, seq + payload);
  SendPacket(std::move(pkt));
  // A data segment is now outstanding (the caller may not have advanced
  // snd_next_ yet, so don't consult inflight_bytes() here).
  if (!rto_timer_.pending()) {
    RestartRtoTimer();
  }
  return payload;
}

void ReliableSender::SendAvailable() {
  while (state_ == State::kEstablished) {
    while (snd_next_ < write_goal_ && inflight_bytes() < config_.receive_window &&
           CanSendMore(inflight_bytes())) {
      // Anything below the high-water mark is a go-back-N retransmission.
      snd_next_ += SendSegment(snd_next_, /*retransmission=*/snd_next_ < highest_sent_);
    }
    // Give the application a chance to top up the buffer while the window
    // still has room; loop again if it did.
    if (snd_next_ == write_goal_ && on_tx_buffer_empty && !in_tx_empty_callback_ &&
        CanSendMore(inflight_bytes())) {
      in_tx_empty_callback_ = true;
      on_tx_buffer_empty();
      in_tx_empty_callback_ = false;
      if (snd_next_ < write_goal_) {
        continue;
      }
    }
    break;
  }
  MaybeFinish();
}

void ReliableSender::MaybeFinish() {
  if (close_requested_ && state_ == State::kEstablished && snd_una_ == write_goal_ &&
      snd_next_ == write_goal_) {
    state_ = State::kFinSent;
    SendControl(PacketType::kFin, /*rm=*/false);
    RestartRtoTimer();
  }
}

void ReliableSender::ArmTimerIfNeeded() {
  if (rto_timer_.pending()) {
    return;
  }
  if (inflight_bytes() > 0 || state_ == State::kSynSent || state_ == State::kFinSent) {
    RestartRtoTimer();
  }
}

void ReliableSender::OnReceive(PacketPtr pkt) {
  if (!pkt->is_ack()) {
    return;  // sender half ignores stray data packets
  }
  HandleAck(std::move(pkt));
}

void ReliableSender::SampleRtt(TimeNs sample) {
  if (sample <= 0) {
    return;
  }
  last_rtt_sample_ = sample;
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const TimeNs err = std::abs((srtt_ - sample).count());
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, config_.rto_min, config_.rto_max);
}

void ReliableSender::HandleAck(PacketPtr pkt) {
  ++stats_.acks_received;
  if (pkt->ts_echo > 0) {
    SampleRtt(network_->scheduler().now() - pkt->ts_echo);
  }
  OnAckHeader(*pkt);

  switch (pkt->type) {
    case PacketType::kSynAck: {
      if (state_ != State::kSynSent) {
        return;  // duplicate SYNACK
      }
      state_ = State::kEstablished;
      rto_timer_.Cancel();
      OnEstablished();
      SendAvailable();
      ArmTimerIfNeeded();
      return;
    }
    case PacketType::kFinAck: {
      if (state_ != State::kFinSent) {
        return;
      }
      state_ = State::kClosed;
      rto_timer_.Cancel();
      stats_.complete_time = network_->scheduler().now();
      if (on_complete) {
        on_complete();
      }
      return;
    }
    case PacketType::kAck:
      break;
    default:
      return;
  }

  if (state_ != State::kEstablished && state_ != State::kFinSent) {
    return;
  }

  if (pkt->ack > snd_una_) {
    const Bytes newly = Bytes(static_cast<int64_t>(pkt->ack - snd_una_));
    snd_una_ = pkt->ack;
    TFC_CHECK_LE(snd_una_, write_goal_);
    // After a go-back-N rewind, an ACK for old in-flight data can overtake
    // the rewound send point; everything it covers was sent, so jump ahead.
    snd_next_ = std::max(snd_next_, snd_una_);
    stats_.bytes_acked = snd_una_;
    dupacks_ = 0;
    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        in_recovery_ = false;
        OnExitRecovery();
      } else {
        OnPartialAck(newly);
        // NewReno: repair the next hole immediately.
        SendSegment(snd_una_, /*retransmission=*/true);
      }
    }
    OnAckedData(*pkt, newly);
    if (inflight_bytes() == 0) {
      rto_timer_.Cancel();
    } else {
      RestartRtoTimer();
    }
    if (drained() && !drained_notified_) {
      drained_notified_ = true;
      if (on_drained) {
        on_drained();
      }
    }
    SendAvailable();
    return;
  }

  // Potential duplicate ACK (no forward progress while data is in flight).
  if (inflight_bytes() > 0 && pkt->ack == snd_una_) {
    ++dupacks_;
    if (!in_recovery_ && dupacks_ >= config_.dupack_threshold) {
      in_recovery_ = true;
      recover_ = snd_next_;
      OnEnterRecovery(inflight_bytes());
      SendSegment(snd_una_, /*retransmission=*/true);
    } else if (in_recovery_) {
      OnDuplicateAck();
    }
    SendAvailable();
  }
}

void ReliableSender::BackOffRto() { rto_ = std::min(rto_ * 2, config_.rto_max); }

void ReliableSender::HandleTimeout() {
  ProfileScope prof(&network_->profiler(), rto_site_);
  switch (state_) {
    case State::kSynSent: {
      ++stats_.timeouts;
      BackOffRto();
      SendControl(PacketType::kSyn, MarkSyn());
      RestartRtoTimer();
      return;
    }
    case State::kFinSent: {
      ++stats_.timeouts;
      BackOffRto();
      SendControl(PacketType::kFin, /*rm=*/false);
      RestartRtoTimer();
      return;
    }
    case State::kEstablished: {
      if (inflight_bytes() == 0) {
        if (OnIdleTimeout()) {
          BackOffRto();
          RestartRtoTimer();
        }
        return;
      }
      ++stats_.timeouts;
      OnRetransmitTimeout();
      in_recovery_ = false;
      dupacks_ = 0;
      // Go-back-N: rewind and let the window policy re-clock transmission.
      snd_next_ = snd_una_;
      BackOffRto();
      RestartRtoTimer();
      SendAvailable();
      return;
    }
    default:
      return;
  }
}

}  // namespace tfc
