// Receiver half of a flow: reassembly, cumulative ACK generation, ECN echo.
//
// By default the receiver ACKs every data packet. With `ack_every > 1` it
// runs a classic delayed-ACK policy: in-order, unmarked data is coalesced
// and acknowledged every Nth packet or after a short timeout, while
// anything that carries a signal — out-of-order arrivals (dup-ACKs drive
// fast retransmit), CE marks (DCTCP needs per-packet echo), TFC round
// marks (the RMA carries the window grant), zero-payload probes, and
// control packets — is acknowledged immediately. Protocol-specific ACK
// decoration (TFC's RMA bit + window echo) is a virtual hook.

#ifndef SRC_TRANSPORT_RELIABLE_RECEIVER_H_
#define SRC_TRANSPORT_RELIABLE_RECEIVER_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/net/host.h"
#include "src/net/packet.h"
#include "src/sim/timer.h"

namespace tfc {

class Network;

class ReliableReceiver : public Endpoint {
 public:
  ReliableReceiver(Network* network, Host* local, int flow_id, Bytes advertised_window,
                   uint32_t ack_every = 1, TimeNs delayed_ack_timeout = Microseconds(200));
  ~ReliableReceiver() override;

  void OnReceive(PacketPtr pkt) override;

  // In-order payload bytes delivered to the application so far — a
  // sequence-space position, so it stays raw uint64 like the rest of
  // seq space.
  uint64_t delivered_bytes() const { return rcv_next_; }  // lint:allow units

  // Number of ACK packets this receiver has emitted.
  uint64_t acks_sent() const { return acks_sent_; }

  // Called with the number of new in-order bytes each time delivery advances.
  std::function<void(uint64_t)> on_deliver;

  Host* local() const { return local_; }
  int flow_id() const { return flow_id_; }

 protected:
  // Fills protocol-specific ACK fields from the data packet it acknowledges.
  // Base behaviour: echo ECN CE, advertise the receive window.
  virtual void DecorateAck(const Packet& data, Packet& ack);

  Bytes advertised_window() const { return advertised_window_; }

 private:
  void HandleData(const Packet& pkt);
  void SendAck(const Packet& cause, PacketType type);
  void FlushDelayedAck();

  Network* network_;
  Host* local_;
  int flow_id_;
  Bytes advertised_window_;
  uint32_t ack_every_;
  TimeNs delayed_ack_timeout_;

  uint64_t rcv_next_ = 0;
  std::map<uint64_t, uint64_t> out_of_order_;  // start -> end (exclusive)

  // Delayed-ACK state.
  uint32_t unacked_data_ = 0;
  int32_t pending_ack_src_ = -1;
  TimeNs pending_ack_ts_ = 0;
  Timer delack_timer_;
  uint64_t acks_sent_ = 0;
};

}  // namespace tfc

#endif  // SRC_TRANSPORT_RELIABLE_RECEIVER_H_
