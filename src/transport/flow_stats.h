// Per-flow lifetime statistics, filled in by the transport machinery and
// consumed by the workload/statistics layer.

#ifndef SRC_TRANSPORT_FLOW_STATS_H_
#define SRC_TRANSPORT_FLOW_STATS_H_

#include <cstdint>

#include "src/sim/time.h"

namespace tfc {

struct FlowStats {
  TimeNs start_time = -1;     // when Start() was called
  TimeNs complete_time = -1;  // when the FIN was acknowledged
  uint64_t bytes_goal = 0;    // total payload bytes requested so far
  uint64_t bytes_acked = 0;   // payload bytes cumulatively acknowledged
  uint64_t data_packets_sent = 0;
  uint64_t acks_received = 0;
  uint64_t retransmits = 0;  // fast retransmits + timeout retransmissions
  uint64_t timeouts = 0;     // RTO expirations

  bool complete() const { return complete_time >= 0; }
  TimeNs fct() const { return complete() ? complete_time - start_time : -1; }
};

}  // namespace tfc

#endif  // SRC_TRANSPORT_FLOW_STATS_H_
