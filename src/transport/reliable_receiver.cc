#include "src/transport/reliable_receiver.h"

#include "src/net/network.h"
#include "src/sim/check.h"

namespace tfc {

ReliableReceiver::ReliableReceiver(Network* network, Host* local, int flow_id,
                                   Bytes advertised_window, uint32_t ack_every,
                                   TimeNs delayed_ack_timeout)
    : network_(network),
      local_(local),
      flow_id_(flow_id),
      advertised_window_(advertised_window),
      ack_every_(ack_every),
      delayed_ack_timeout_(delayed_ack_timeout),
      delack_timer_(&network->scheduler(), [this] { FlushDelayedAck(); }) {
  TFC_CHECK_GE(ack_every_, 1u);
  local_->RegisterEndpoint(flow_id_, this);
}

ReliableReceiver::~ReliableReceiver() { local_->UnregisterEndpoint(flow_id_); }

void ReliableReceiver::OnReceive(PacketPtr pkt) {
  switch (pkt->type) {
    case PacketType::kSyn:
      SendAck(*pkt, PacketType::kSynAck);
      return;
    case PacketType::kData:
      HandleData(*pkt);
      return;
    case PacketType::kFin:
      // The sender only emits FIN once all data is acknowledged, so a FIN
      // whose seq matches rcv_next_ terminates cleanly; anything else is a
      // stale retransmission and gets a plain cumulative ACK.
      if (pkt->seq <= rcv_next_) {
        SendAck(*pkt, PacketType::kFinAck);
      } else {
        SendAck(*pkt, PacketType::kAck);
      }
      return;
    default:
      return;  // receivers ignore stray ACK-type packets
  }
}

void ReliableReceiver::HandleData(const Packet& pkt) {
  bool advanced_in_order = false;
  if (pkt.payload > 0) {
    const uint64_t start = pkt.seq;
    const uint64_t end = pkt.seq + pkt.payload;
    const uint64_t before = rcv_next_;
    if (end > rcv_next_) {
      // Merge [max(start, rcv_next_), end) into the out-of-order store.
      uint64_t s = std::max(start, rcv_next_);
      auto it = out_of_order_.lower_bound(s);
      if (it != out_of_order_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= s) {
          s = prev->first;
          it = prev;
        }
      }
      uint64_t e = end;
      while (it != out_of_order_.end() && it->first <= e) {
        e = std::max(e, it->second);
        s = std::min(s, it->first);
        it = out_of_order_.erase(it);
      }
      out_of_order_[s] = e;
      // Advance the in-order frontier.
      auto head = out_of_order_.begin();
      if (head != out_of_order_.end() && head->first <= rcv_next_) {
        rcv_next_ = std::max(rcv_next_, head->second);
        out_of_order_.erase(head);
      }
    }
    if (rcv_next_ > before) {
      advanced_in_order = out_of_order_.empty();
      if (on_deliver) {
        on_deliver(rcv_next_ - before);
      }
    }
  }

  // Decide between an immediate and a delayed cumulative ACK. Anything the
  // sender must react to promptly short-circuits the delay.
  const bool must_ack_now = ack_every_ <= 1 || !advanced_in_order || pkt.payload == 0 ||
                            pkt.rm || pkt.ecn_ce;
  ++unacked_data_;
  if (must_ack_now || unacked_data_ >= ack_every_) {
    unacked_data_ = 0;
    delack_timer_.Cancel();
    SendAck(pkt, PacketType::kAck);
    return;
  }
  pending_ack_src_ = pkt.src;
  pending_ack_ts_ = pkt.ts;
  if (!delack_timer_.pending()) {
    delack_timer_.RestartAfter(delayed_ack_timeout_);
  }
}

void ReliableReceiver::FlushDelayedAck() {
  if (unacked_data_ == 0 || pending_ack_src_ < 0) {
    return;
  }
  unacked_data_ = 0;
  Packet cause;
  cause.flow_id = flow_id_;
  cause.src = pending_ack_src_;
  cause.dst = local_->id();
  cause.type = PacketType::kData;
  cause.ts = pending_ack_ts_;
  SendAck(cause, PacketType::kAck);
}

void ReliableReceiver::SendAck(const Packet& cause, PacketType type) {
  PacketPtr ack = network_->AllocatePacket();
  ack->flow_id = flow_id_;
  ack->src = local_->id();
  ack->dst = cause.src;
  ack->type = type;
  ack->ack = rcv_next_;
  ack->ts_echo = cause.ts;
  DecorateAck(cause, *ack);
  ++acks_sent_;
  local_->Send(std::move(ack));
}

void ReliableReceiver::DecorateAck(const Packet& data, Packet& ack) {
  ack.ecn_echo = data.ecn_ce;
  ack.window = std::min(advertised_window_, Bytes(kWindowInfinite)).ToU32Saturating();
}

}  // namespace tfc
