#include "src/net/packet_pool.h"

namespace tfc {

void PacketDeleter::operator()(Packet* p) const {
  if (pool != nullptr) {
    pool->Release(p);
  } else {
    delete p;
  }
}

}  // namespace tfc
