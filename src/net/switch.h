// Output-queued store-and-forward switch with static shortest-path routing
// and per-flow ECMP across equal-cost next hops.

#ifndef SRC_NET_SWITCH_H_
#define SRC_NET_SWITCH_H_

#include <vector>

#include "src/net/node.h"

namespace tfc {

class Switch : public Node {
 public:
  Switch(Network* network, int id, std::string name);

  void Receive(PacketPtr pkt, Port* ingress) override;

  // Routes and enqueues on the egress port, bypassing ingress agent hooks.
  // Used both by Receive and by agents re-injecting delayed packets.
  void Forward(PacketPtr pkt);

  // Filled in by Network::BuildRoutes: next_hops_[dest_node_id] lists all
  // equal-cost ports toward the destination. A flow hashes to one of them
  // (per-flow ECMP: stable path per flow, no intra-flow reordering).
  void set_next_hops(std::vector<std::vector<Port*>> table) {
    next_hops_ = std::move(table);
  }
  // First (or only) next hop toward `dest`; null if unreachable.
  Port* next_hop(int dest) const {
    const auto& choices = next_hops_.at(static_cast<size_t>(dest));
    return choices.empty() ? nullptr : choices.front();
  }
  const std::vector<Port*>& equal_cost_ports(int dest) const {
    return next_hops_.at(static_cast<size_t>(dest));
  }

  uint64_t unroutable_packets() const { return unroutable_; }

 private:
  std::vector<std::vector<Port*>> next_hops_;
  uint64_t unroutable_ = 0;
};

}  // namespace tfc

#endif  // SRC_NET_SWITCH_H_
