// Packet-level tracing.
//
// A Tracer registered on the Network observes every queue/transmit/drop/
// delivery event, ns-2 style. The hot path costs one pointer test when no
// tracer is installed. TextTracer renders one line per event:
//
//   3.021840 + s[NF2]:p2 DATA f=7 seq=14600 len=1460 rm q=3036
//   ^time(s)  ^event     ^packet                        ^queue after
//
// Events: '+' enqueue, '-' transmit, 'd' drop, 'r' deliver-to-host.

#ifndef SRC_NET_TRACE_H_
#define SRC_NET_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "src/net/packet.h"
#include "src/sim/time.h"

namespace tfc {

class Node;
class Port;

enum class TraceEventType : uint8_t {
  kEnqueue,    // packet entered a port's transmit queue
  kTransmit,   // packet finished serializing onto the link
  kDrop,       // packet tail-dropped at a full buffer
  kDeliver,    // packet handed to a host endpoint
  kFaultDrop,  // packet destroyed by an injected fault (loss, link down,
               // crashed host, wiped switch state) — never a queue drop
};

struct TraceEvent {
  TimeNs time;
  TraceEventType type;
  const Packet* packet;  // valid only for the duration of the callback
  const Node* node;      // owner of the port, or the receiving host
  const Port* port;      // null for kDeliver
};

class Tracer {
 public:
  virtual ~Tracer() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

// Renders events as text. Optionally restricted to one flow id (-1 = all),
// one node, and/or one port index; filters compose (AND).
class TextTracer : public Tracer {
 public:
  explicit TextTracer(std::ostream* out, int flow_filter = -1)
      : out_(out), flow_filter_(flow_filter) {}

  // Only events at the node with this name (empty = all nodes, the default).
  void set_node_filter(std::string node_name) { node_filter_ = std::move(node_name); }
  // Only events at ports with this index (-1 = all, the default). A port
  // filter excludes kDeliver events: deliveries carry no port.
  void set_port_filter(int index) { port_filter_ = index; }

  void OnEvent(const TraceEvent& event) override;

  uint64_t events_written() const { return events_written_; }

 private:
  std::ostream* out_;
  int flow_filter_;
  std::string node_filter_;
  int port_filter_ = -1;
  uint64_t events_written_ = 0;
};

// Counts events per type without formatting (cheap assertions in tests).
class CountingTracer : public Tracer {
 public:
  void OnEvent(const TraceEvent& event) override;

  uint64_t enqueues = 0;
  uint64_t transmits = 0;
  uint64_t drops = 0;
  uint64_t delivers = 0;
  uint64_t fault_drops = 0;
};

}  // namespace tfc

#endif  // SRC_NET_TRACE_H_
