// Event tracing: live renderers and offline exporters over flight events.
//
// Since PR 8 the trace layer is a set of *readers* of the flight recorder's
// fixed-width FlightEvent struct (src/sim/flight.h). The Network builds one
// FlightEvent per packet or control-plane event and hands it to the armed
// ring buffer and/or the installed Tracer; the hot path costs one pointer
// test when neither is active. TextTracer renders one line per event:
//
//   3.021840 + s[NF2]:p2 DATA f=7 seq=14600 len=1460 rm q=3036
//   ^time(s)  ^event     ^packet                        ^queue after
//
// Packet events: '+' enqueue, '-' transmit, 'd' drop, 'r' deliver-to-host,
// 'x' fault-drop. TFC control-plane events render with a '*' marker and the
// event mnemonic:
//
//   0.000213 * s[NF2]:p2 slot_end E=11680 token=2920 w=1460 rtt_m=52000
//   0.000201 * a grant w=2920 ctr=11680 f=3
//
// ExportFlightTrace() turns a dumped flight.tfct into Chrome/Perfetto
// trace-event JSON (one track per port, one async span per flow) plus a
// per-flow text timeline; load the JSON at https://ui.perfetto.dev.

#ifndef SRC_NET_TRACE_H_
#define SRC_NET_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "src/net/node.h"
#include "src/net/packet.h"
#include "src/sim/flight.h"
#include "src/sim/time.h"

namespace tfc {

// Packet events predate the flight recorder; existing call sites spell the
// shared event enum as TraceEventType.
using TraceEventType = FlightEventType;

class Tracer {
 public:
  virtual ~Tracer() = default;
  // `names` resolves event.node back to a display name; it is the live
  // Network during simulation and a loaded FlightDump offline.
  virtual void OnEvent(const FlightEvent& event, const FlightNames& names) = 0;
};

// Packs a live packet event into the fixed-width record: a=payload length,
// b=advertised window (saturated), c=queue bytes after the event (0 when
// portless), flags=rm/rma/ce bits, ptype=PacketType. Inline: an armed ring
// pays this per packet event, so the fill must compile down to direct
// stores (the run_bench.sh armed-ring gate holds the all-in cost to 1.15x).
inline FlightEvent MakePacketEvent(TimeNs time, FlightEventType type,
                                   const Packet& pkt, const Node* node,
                                   const Port* port) {
  FlightEvent e;
  e.time = time;
  e.type = type;
  e.seq = pkt.seq;
  e.a = FlightI32(pkt.payload);
  e.b = FlightI32(pkt.window);
  e.c = port != nullptr ? FlightI32(port->queue_bytes().count()) : 0;
  e.flow = pkt.flow_id;
  e.node = static_cast<int16_t>(node->id());
  e.port = port != nullptr ? static_cast<int16_t>(port->index())
                           : static_cast<int16_t>(-1);
  e.ptype = static_cast<uint8_t>(pkt.type);
  e.flags = static_cast<uint8_t>((pkt.rm ? kFlightRm : 0) |
                                 (pkt.rma ? kFlightRma : 0) |
                                 (pkt.ecn_ce ? kFlightCe : 0));
  e.weight = pkt.weight;
  return e;
}

// Renders events as text. Optionally restricted to one flow id (-1 = all),
// one node, and/or one port index; filters compose (AND).
class TextTracer : public Tracer {
 public:
  explicit TextTracer(std::ostream* out, int flow_filter = -1)
      : out_(out), flow_filter_(flow_filter) {}

  // Only events at the node with this name (empty = all nodes, the default).
  void set_node_filter(std::string node_name) { node_filter_ = std::move(node_name); }
  // Only events at ports with this index (-1 = all, the default). A port
  // filter excludes portless events: deliveries and host-side control
  // events (probe/rma) carry no port.
  void set_port_filter(int index) { port_filter_ = index; }

  void OnEvent(const FlightEvent& event, const FlightNames& names) override;

  uint64_t events_written() const { return events_written_; }

 private:
  std::ostream* out_;
  int flow_filter_;
  std::string node_filter_;
  int port_filter_ = -1;
  uint64_t events_written_ = 0;
};

// Counts events per type without formatting (cheap assertions in tests).
class CountingTracer : public Tracer {
 public:
  void OnEvent(const FlightEvent& event, const FlightNames& names) override;

  uint64_t enqueues = 0;
  uint64_t transmits = 0;
  uint64_t drops = 0;
  uint64_t delivers = 0;
  uint64_t fault_drops = 0;
  // TFC control-plane + fault-transition events, total and per type.
  uint64_t control = 0;
  uint64_t by_type[kFlightEventTypeCount] = {};
};

// Offline exporter for `tfcsim --export-trace=DIR`: reads DIR/flight.tfct
// and writes
//   DIR/trace.perfetto.json  Chrome trace-event JSON — metadata names every
//                            node (process) and port (thread), each TFC
//                            slot is a complete ("X") event on its port
//                            track, each flow is an async ("b"/"e") span,
//                            everything else an instant event; timestamps
//                            are microseconds, emitted in monotone order
//   DIR/flows.txt            per-flow text timeline (TextTracer rendering
//                            grouped by flow id)
// Returns false and fills *error if the dump is missing or malformed.
bool ExportFlightTrace(const std::string& dir, std::string* error);

}  // namespace tfc

#endif  // SRC_NET_TRACE_H_
