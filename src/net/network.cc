#include "src/net/network.h"

#include <queue>

#include "src/sim/check.h"

namespace tfc {

Network::Network(uint64_t seed) : rng_(seed) {
  // Built-in audits: the simulator core and net-layer structures. Every
  // component above this layer (TFC port agents, transports) registers its
  // own invariants on top via audit().
  audit_registry_.Register("sim.scheduler",
                           [this](Auditor& a) { scheduler_.AuditInvariants(a); });
  audit_registry_.Register("net.packet_pool",
                           [this](Auditor& a) { packet_pool_.AuditInvariants(a); });
  audit_registry_.Register("net.ports", [this](Auditor& a) {
    for (const auto& node : nodes_) {
      for (const auto& port : node->ports()) {
        port->AuditInvariants(a);
      }
    }
  });
  // Counter monotonicity is itself an audited invariant: a counter that
  // shrinks between passes means a reset (or double accounting) in flight.
  audit_registry_.Register("sim.metrics",
                           [this](Auditor& a) { metrics_.AuditInvariants(a); });
  // Simulator-core gauges. All callback gauges over existing members: zero
  // hot-path cost until something actually samples them.
  metrics_.AddCallbackGauge("sim.now_ns",
                            [this] { return static_cast<double>(scheduler_.now()); });
  metrics_.AddCallbackGauge("sim.events_executed",
                            [this] { return static_cast<double>(scheduler_.executed()); });
  metrics_.AddCallbackGauge("sim.events_pending",
                            [this] { return static_cast<double>(scheduler_.pending()); });
  metrics_.AddCallbackGauge("pool.outstanding", [this] {
    return static_cast<double>(packet_pool_.outstanding());
  });
  metrics_.AddCallbackGauge("pool.high_water", [this] {
    return static_cast<double>(packet_pool_.high_water());
  });
  metrics_.AddCallbackGauge("pool.misses",
                            [this] { return static_cast<double>(packet_pool_.misses()); });
  if (AuditEnabledByDefault()) {
    EnableAudit();
  }
}

Network::~Network() {
  if (audit_enabled_) {
    const AuditReport report = RunAudit();
    ++audit_passes_;
    TFC_CHECK_MSG(report.ok(), "teardown " << report.ToString());
  }
}

void Network::EnableAudit(TimeNs period) {
  TFC_CHECK_GT(period, 0);
  audit_period_ = period;
  if (audit_enabled_) {
    return;
  }
  audit_enabled_ = true;
  scheduler_.ScheduleDaemonAfter(audit_period_, [this] { AuditTick(); });
}

void Network::AuditTick() {
  ProfileScope prof(&profiler_, profiler_.Site("net.audit_tick"));
  const AuditReport report = RunAudit();
  ++audit_passes_;
  TFC_CHECK_MSG(report.ok(), report.ToString());
  scheduler_.ScheduleDaemonAfter(audit_period_, [this] { AuditTick(); });
}

void Network::EmitFlight(FlightEvent event) {
  event.time = scheduler_.now();
  flight_.Record(event);
  if (tracer_ != nullptr) {
    tracer_->OnEvent(event, *this);
  }
}

std::string_view Network::NodeName(int id) const {
  return id >= 0 && id < num_nodes()
             ? std::string_view(nodes_[static_cast<size_t>(id)]->name())
             : std::string_view();
}

void Network::ArmFlightPostMortem(const std::string& path) {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    names.push_back(node->name());
  }
  flight_.ArmPostMortem(path, std::move(names));
}

bool Network::DumpFlight(const std::string& path, std::string* error) const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    names.push_back(node->name());
  }
  return flight_.Dump(path, names, error);
}

Host* Network::AddHost(std::string name) {
  auto host = std::make_unique<Host>(this, num_nodes(), std::move(name));
  Host* raw = host.get();
  nodes_.push_back(std::move(host));
  return raw;
}

Switch* Network::AddSwitch(std::string name) {
  auto sw = std::make_unique<Switch>(this, num_nodes(), std::move(name));
  Switch* raw = sw.get();
  nodes_.push_back(std::move(sw));
  return raw;
}

Port* Network::Link(Node* a, Node* b, BitsPerSec bps, TimeNs prop_delay,
                    const LinkOptions& opts) {
  Port* pa = a->AddPort();
  Port* pb = b->AddPort();
  pa->Connect(pb, bps, prop_delay);
  pb->Connect(pa, bps, prop_delay);
  pa->set_buffer_limit(a->is_host() ? opts.host_buffer_bytes : opts.switch_buffer_bytes);
  pb->set_buffer_limit(b->is_host() ? opts.host_buffer_bytes : opts.switch_buffer_bytes);
  if (opts.ecn_threshold_bytes > 0) {
    if (!a->is_host()) {
      pa->set_ecn_threshold(opts.ecn_threshold_bytes);
    }
    if (!b->is_host()) {
      pb->set_ecn_threshold(opts.ecn_threshold_bytes);
    }
  }
  return pa;
}

void Network::BuildRoutes() {
  const size_t n = static_cast<size_t>(num_nodes());
  // toward[dest][v] = every port of node v that lies on a shortest path to
  // dest (the ECMP set), in port-index order for determinism.
  std::vector<std::vector<std::vector<Port*>>> toward(
      n, std::vector<std::vector<Port*>>(n));

  for (size_t dest = 0; dest < n; ++dest) {
    std::vector<int> dist(n, -1);
    std::queue<size_t> frontier;
    dist[dest] = 0;
    frontier.push(dest);
    while (!frontier.empty()) {
      const size_t u = frontier.front();
      frontier.pop();
      for (const auto& up : node(static_cast<int>(u))->ports()) {
        if (up->peer() == nullptr) {
          continue;
        }
        const size_t v = static_cast<size_t>(up->peer()->id());
        if (dist[v] == -1) {
          dist[v] = dist[u] + 1;
          frontier.push(v);
        }
      }
    }
    // Second pass: for every node, every neighbor one hop closer to dest is
    // an equal-cost next hop.
    for (size_t v = 0; v < n; ++v) {
      if (dist[v] <= 0) {
        continue;  // dest itself or unreachable
      }
      for (const auto& vp : node(static_cast<int>(v))->ports()) {
        if (vp->peer() == nullptr) {
          continue;
        }
        const size_t u = static_cast<size_t>(vp->peer()->id());
        if (dist[u] != -1 && dist[u] == dist[v] - 1) {
          toward[dest][v].push_back(vp.get());
        }
      }
    }
  }

  for (size_t v = 0; v < n; ++v) {
    auto* sw = dynamic_cast<Switch*>(node(static_cast<int>(v)));
    if (sw == nullptr) {
      continue;
    }
    std::vector<std::vector<Port*>> table(n);
    for (size_t dest = 0; dest < n; ++dest) {
      table[dest] = toward[dest][v];
    }
    sw->set_next_hops(std::move(table));
  }
}

Port* Network::FindPort(Node* a, Node* b) {
  for (const auto& p : a->ports()) {
    if (p->peer() == b) {
      return p.get();
    }
  }
  return nullptr;
}

}  // namespace tfc
