#include "src/net/port.h"

#include <utility>

#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/node.h"
#include "src/sim/check.h"

namespace tfc {

Port::Port(Scheduler* scheduler, Node* owner, int index)
    : scheduler_(scheduler), owner_(owner), index_(index) {}

void Port::Connect(Port* peer_port, BitsPerSec bps, TimeNs prop_delay) {
  TFC_CHECK_EQ(peer_port_, nullptr);
  TFC_CHECK_GT(bps.count(), 0u);
  peer_port_ = peer_port;
  peer_node_ = peer_port->owner();
  bps_ = bps;
  prop_delay_ = prop_delay;
  RegisterMetrics();
}

std::string Port::metric_prefix() const {
  return "port." + owner_->name() + ".p" + std::to_string(index_);
}

void Port::RegisterMetrics() {
  // All callback gauges over members the port maintains anyway, so the
  // data path pays nothing until a recorder or exporter samples them.
  serialize_site_ = owner_->network()->profiler().Site("port.serialize");
  metrics_.Reset(&owner_->network()->metrics());
  const std::string prefix = metric_prefix();
  metrics_.AddCallbackGauge(prefix + ".queue_bytes",
                            [this] { return static_cast<double>(queue_bytes_); });
  metrics_.AddCallbackGauge(prefix + ".queue_packets",
                            [this] { return static_cast<double>(queue_.size()); });
  metrics_.AddCallbackGauge(prefix + ".drops",
                            [this] { return static_cast<double>(drops_); });
  metrics_.AddCallbackGauge(prefix + ".tx_bytes",
                            [this] { return static_cast<double>(tx_bytes_); });
  metrics_.AddCallbackGauge(prefix + ".ecn_marks",
                            [this] { return static_cast<double>(ecn_marks_); });
  metrics_.AddCallbackGauge(prefix + ".busy_ns",
                            [this] { return static_cast<double>(busy_ns_); });
  metrics_.AddCallbackGauge(prefix + ".max_queue_bytes",
                            [this] { return static_cast<double>(max_queue_bytes_); });
}

void Port::AuditInvariants(Auditor& audit) const {
  if (peer_port_ == nullptr) {
    return;  // unconnected port: no queue activity possible
  }
  // Bound by the largest limit ever configured: packets admitted under an
  // earlier, larger limit legitimately remain queued after the limit shrinks.
  audit.CheckLe(queue_bytes_, buffer_limit_hi_bytes_, "occupancy<=buffer");
  audit.CheckLe(max_queue_bytes_, buffer_limit_hi_bytes_, "max occupancy<=buffer");
  Bytes sum = 0;
  for (const PacketPtr& p : queue_) {
    sum += Bytes(p->frame_bytes());
    audit.Check(p->uid != kPoisonUid, "queued packet is live (not freed)");
  }
  audit.CheckEq(queue_bytes_, sum, "queue_bytes==sum(queued frames)");
  // Between events the transmitter is busy whenever the queue is non-empty
  // (TryTransmit runs before every return to the scheduler).
  audit.Check(queue_.empty() || busy_, "transmitter busy while queue non-empty");
}

TimeNs Port::SerializationTime(Bytes wire_bytes) const {
  // Bytes / BitsPerSec -> TimeNs: bits * 1e9 / bps, computed in 128-bit to
  // avoid overflow for large frames (src/sim/units.h).
  return wire_bytes / bps_;
}

void Port::Enqueue(PacketPtr pkt) {
  TFC_CHECK_NE(peer_port_, nullptr);
  if (agent_ != nullptr) {
    agent_->OnEgress(*pkt);
  }
  const Bytes frame = pkt->frame_bytes();
  if (queue_bytes_ + frame > buffer_limit_bytes_) {
    ++drops_;
    dropped_bytes_ += frame;
    owner_->network()->EmitTrace(TraceEventType::kDrop, *pkt, owner_, this);
    return;  // tail drop
  }
  // DCTCP-style instantaneous marking: mark when the queue the packet joins
  // already exceeds the threshold.
  if (ecn_threshold_bytes_ > 0 && pkt->ecn_capable && queue_bytes_ >= ecn_threshold_bytes_) {
    pkt->ecn_ce = true;
    ++ecn_marks_;
  }
  queue_bytes_ += frame;
  if (queue_bytes_ > max_queue_bytes_) {
    max_queue_bytes_ = queue_bytes_;
  }
  owner_->network()->EmitTrace(TraceEventType::kEnqueue, *pkt, owner_, this);
  queue_.push_back(std::move(pkt));
  TryTransmit();
}

void Port::TryTransmit() {
  if (busy_ || queue_.empty()) {
    return;
  }
  busy_ = true;
  busy_since_ = scheduler_->now();
  Packet& pkt = *queue_.front();
  const TimeNs ser = SerializationTime(pkt.wire_bytes());
  scheduler_->ScheduleAfter(ser, [this] { OnSerialized(); });
}

void Port::OnSerialized() {
  ProfileScope prof(&owner_->network()->profiler(), serialize_site_);
  TFC_CHECK(busy_ && !queue_.empty());
  PacketPtr pkt = std::move(queue_.front());
  queue_.pop_front();
  queue_bytes_ -= Bytes(pkt->frame_bytes());
  ++tx_packets_;
  tx_bytes_ += Bytes(pkt->frame_bytes());
  const TimeNs ser = scheduler_->now() - busy_since_;
  busy_ns_ += ser;
  serialize_site_->AddSim(ser);
  busy_ = false;
  owner_->network()->EmitTrace(TraceEventType::kTransmit, *pkt, owner_, this);

  // The wire: with an injector attached the packet may be lost, duplicated,
  // or delayed here instead of (or in addition to) the normal delivery.
  if (fault_ != nullptr) {
    fault_->OnWire(this, std::move(pkt));
  } else {
    DeliverToPeer(std::move(pkt), 0);
  }

  TryTransmit();
}

void Port::DeliverToPeer(PacketPtr pkt, TimeNs extra_delay) {
  // The packet rides inside the event. The Network owns nodes for the whole
  // simulation lifetime.
  Node* peer = peer_node_;
  Port* ingress = peer_port_;
  scheduler_->ScheduleAfter(prop_delay_ + extra_delay,
                            [peer, ingress, pkt = std::move(pkt)]() mutable {
                              peer->Receive(std::move(pkt), ingress);
                            });
}

}  // namespace tfc
