#include "src/net/host.h"

#include <utility>

#include "src/net/network.h"
#include "src/sim/check.h"

namespace tfc {

Host::Host(Network* network, int id, std::string name)
    : Node(network, id, std::move(name)) {
  metrics_.Reset(&network->metrics());
  const std::string prefix = "host." + name_;
  metrics_.AddCallbackGauge(prefix + ".unroutable",
                            [this] { return static_cast<double>(unroutable_); });
  metrics_.AddCallbackGauge(prefix + ".down_drops",
                            [this] { return static_cast<double>(down_drops_); });
}

void Host::Receive(PacketPtr pkt, Port* ingress) {
  (void)ingress;
  if (down_) {
    // Crashed host: the NIC is dead, the packet is lost on arrival.
    ++down_drops_;
    network_->EmitTrace(TraceEventType::kFaultDrop, *pkt, this, nullptr);  // lint:allow packet-drop
    return;
  }
  network_->EmitTrace(TraceEventType::kDeliver, *pkt, this, nullptr);
  auto it = endpoints_.find(pkt->flow_id);
  if (it == endpoints_.end()) {
    // Packet for a finished/unknown flow (e.g. a retransmitted FIN's ACK
    // arriving after teardown): account and trace the drop so post-teardown
    // traffic is observable, then destroy it.
    ++unroutable_;
    network_->EmitTrace(TraceEventType::kDrop, *pkt, this, nullptr);  // lint:allow packet-drop
    return;
  }
  it->second->OnReceive(std::move(pkt));
}

void Host::Send(PacketPtr pkt) {
  TFC_CHECK(!ports_.empty());
  if (down_) {
    ++down_drops_;
    network_->EmitTrace(TraceEventType::kFaultDrop, *pkt, this, nullptr);  // lint:allow packet-drop
    return;
  }
  Scheduler& sched = network_->scheduler();
  TimeNs delay = proc_base_;
  if (proc_jitter_ > 0) {
    delay += static_cast<TimeNs>(network_->rng().Uniform(0.0, static_cast<double>(proc_jitter_)));
  }
  if (delay == 0) {
    nic()->Enqueue(std::move(pkt));
    return;
  }
  // Preserve FIFO departure order under random delay.
  TimeNs depart = sched.now() + delay;
  if (depart < last_departure_) {
    depart = last_departure_;
  }
  last_departure_ = depart;
  Port* nic_port = nic();
  sched.ScheduleAt(depart, [nic_port, pkt = std::move(pkt)]() mutable {
    nic_port->Enqueue(std::move(pkt));
  });
}

void Host::RegisterEndpoint(int flow_id, Endpoint* ep) {
  TFC_CHECK(endpoints_.emplace(flow_id, ep).second);
}

void Host::UnregisterEndpoint(int flow_id) { endpoints_.erase(flow_id); }

}  // namespace tfc
