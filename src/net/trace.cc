#include "src/net/trace.h"

#include <iomanip>

#include "src/net/node.h"
#include "src/net/port.h"

namespace tfc {

namespace {

char EventChar(TraceEventType t) {
  switch (t) {
    case TraceEventType::kEnqueue:
      return '+';
    case TraceEventType::kTransmit:
      return '-';
    case TraceEventType::kDrop:
      return 'd';
    case TraceEventType::kDeliver:
      return 'r';
    case TraceEventType::kFaultDrop:
      return 'x';
  }
  return '?';
}

}  // namespace

void TextTracer::OnEvent(const TraceEvent& event) {
  const Packet& pkt = *event.packet;
  if (flow_filter_ >= 0 && pkt.flow_id != flow_filter_) {
    return;
  }
  if (!node_filter_.empty() && event.node->name() != node_filter_) {
    return;
  }
  if (port_filter_ >= 0 &&
      (event.port == nullptr || event.port->index() != port_filter_)) {
    return;
  }
  std::ostream& out = *out_;
  out << std::fixed << std::setprecision(6) << ToSeconds(event.time) << ' '
      << EventChar(event.type) << ' ' << event.node->name();
  if (event.port != nullptr) {
    out << ":p" << event.port->index();
  }
  out << ' ' << PacketTypeName(pkt.type) << " f=" << pkt.flow_id << " seq=" << pkt.seq
      << " len=" << pkt.payload;
  if (pkt.rm) {
    out << " rm";
  }
  if (pkt.rma) {
    out << " rma w=" << pkt.window;
  }
  if (pkt.ecn_ce) {
    out << " ce";
  }
  if (event.port != nullptr) {
    out << " q=" << event.port->queue_bytes();
  }
  out << '\n';
  ++events_written_;
}

void CountingTracer::OnEvent(const TraceEvent& event) {
  switch (event.type) {
    case TraceEventType::kEnqueue:
      ++enqueues;
      break;
    case TraceEventType::kTransmit:
      ++transmits;
      break;
    case TraceEventType::kDrop:
      ++drops;
      break;
    case TraceEventType::kDeliver:
      ++delivers;
      break;
    case TraceEventType::kFaultDrop:
      ++fault_drops;
      break;
  }
}

}  // namespace tfc
