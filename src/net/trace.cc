#include "src/net/trace.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "src/net/node.h"
#include "src/net/port.h"
#include "src/sim/telemetry.h"

namespace tfc {

namespace {

char EventChar(FlightEventType t) {
  switch (t) {
    case FlightEventType::kEnqueue:
      return '+';
    case FlightEventType::kTransmit:
      return '-';
    case FlightEventType::kDrop:
      return 'd';
    case FlightEventType::kDeliver:
      return 'r';
    case FlightEventType::kFaultDrop:
      return 'x';
    default:
      return '*';
  }
}

void WriteNodeRef(std::ostream& out, std::string_view name, const FlightEvent& e) {
  if (name.empty()) {
    out << 'n' << e.node;
  } else {
    out << name;
  }
  if (e.port >= 0) {
    out << ":p" << e.port;
  }
}

// The per-type payload fields, rendered identically in the text timeline
// ("key=value") and the Perfetto args (JSON). Packet events carry their own
// dedicated rendering below.
std::vector<std::pair<const char*, int64_t>> ControlFields(const FlightEvent& e) {
  std::vector<std::pair<const char*, int64_t>> kv;
  switch (e.type) {
    case FlightEventType::kSlotBegin:
      kv.emplace_back("E", static_cast<int64_t>(e.seq));
      break;
    case FlightEventType::kSlotEnd:
      kv.emplace_back("E", static_cast<int64_t>(e.seq));
      kv.emplace_back("token", e.a);
      kv.emplace_back("w", e.b);
      kv.emplace_back("rtt_m", e.c);
      break;
    case FlightEventType::kDelimiterFailover:
      kv.emplace_back("miss", e.a);
      break;
    case FlightEventType::kTokenRefill:
      kv.emplace_back("add", e.a);
      kv.emplace_back("ctr", e.b);
      break;
    case FlightEventType::kTokenGrant:
      kv.emplace_back("w", e.a);
      kv.emplace_back("ctr", e.b);
      break;
    case FlightEventType::kArbiterPark:
      kv.emplace_back("w", e.a);
      kv.emplace_back("parked", e.c);
      break;
    case FlightEventType::kArbiterRelease:
      kv.emplace_back("w", e.a);
      kv.emplace_back("ctr", e.b);
      break;
    case FlightEventType::kArbiterExpire:
      kv.emplace_back("parked", e.c);
      break;
    case FlightEventType::kProbeSend:
      kv.emplace_back("seq", static_cast<int64_t>(e.seq));
      kv.emplace_back("attempt", e.a);
      break;
    case FlightEventType::kProbeRetry:
      kv.emplace_back("attempt", e.a);
      break;
    case FlightEventType::kRmaReceive:
      kv.emplace_back("w", e.a);
      kv.emplace_back("cwnd", e.b);
      break;
    case FlightEventType::kAgentWipe:
      kv.emplace_back("n", e.a);
      break;
    case FlightEventType::kAgentConverge:
      kv.emplace_back("slots", e.a);
      break;
    default:
      break;  // adopt + link/host transitions carry no payload
  }
  return kv;
}

}  // namespace

void TextTracer::OnEvent(const FlightEvent& event, const FlightNames& names) {
  if (flow_filter_ >= 0 && event.flow != flow_filter_) {
    return;
  }
  const std::string_view node_name = names.NodeName(event.node);
  if (!node_filter_.empty() && node_name != node_filter_) {
    return;
  }
  if (port_filter_ >= 0 && event.port != port_filter_) {
    return;
  }
  std::ostream& out = *out_;
  out << std::fixed << std::setprecision(6) << ToSeconds(event.time) << ' '
      << EventChar(event.type) << ' ';
  WriteNodeRef(out, node_name, event);
  if (IsPacketFlightEvent(event.type)) {
    out << ' ' << PacketTypeName(static_cast<PacketType>(event.ptype))
        << " f=" << event.flow << " seq=" << event.seq << " len=" << event.a;
    if ((event.flags & kFlightRm) != 0) {
      out << " rm";
    }
    if ((event.flags & kFlightRma) != 0) {
      out << " rma w=" << event.b;
    }
    if ((event.flags & kFlightCe) != 0) {
      out << " ce";
    }
    if (event.port >= 0) {
      out << " q=" << event.c;
    }
  } else {
    out << ' ' << FlightEventName(event.type);
    for (const auto& [key, value] : ControlFields(event)) {
      out << ' ' << key << '=' << value;
    }
    if (event.flow >= 0) {
      out << " f=" << event.flow;
    }
  }
  out << '\n';
  ++events_written_;
}

void CountingTracer::OnEvent(const FlightEvent& event, const FlightNames&) {
  const auto index = static_cast<size_t>(event.type);
  if (index < static_cast<size_t>(kFlightEventTypeCount)) {
    ++by_type[index];
  }
  switch (event.type) {
    case FlightEventType::kEnqueue:
      ++enqueues;
      break;
    case FlightEventType::kTransmit:
      ++transmits;
      break;
    case FlightEventType::kDrop:
      ++drops;
      break;
    case FlightEventType::kDeliver:
      ++delivers;
      break;
    case FlightEventType::kFaultDrop:
      ++fault_drops;
      break;
    default:
      ++control;
      break;
  }
}

namespace {

// One pending trace-event JSON object, keyed by its nanosecond timestamp so
// the emitted `ts` sequence is monotone (ISSUE 8: Perfetto export must have
// monotone timestamps and paired spans). Equal-time entries keep insertion
// order via stable_sort.
struct JsonEntry {
  int64_t time = 0;  // lint:allow units (sort key over FlightEvent times)
  std::string json;
};

std::string TsField(int64_t time) {
  return "\"ts\":" + JsonNumber(static_cast<double>(time) / 1000.0);
}

std::string ArgsJson(const std::vector<std::pair<const char*, int64_t>>& kv) {
  std::string out = "{";
  for (size_t i = 0; i < kv.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '"';
    out += kv[i].first;
    out += "\":";
    out += std::to_string(kv[i].second);
  }
  out += '}';
  return out;
}

std::string DisplayName(const FlightDump& dump, int node) {
  const std::string_view name = dump.NodeName(node);
  return name.empty() ? "n" + std::to_string(node) : std::string(name);
}

}  // namespace

bool ExportFlightTrace(const std::string& dir, std::string* error) {
  FlightDump dump;
  if (!LoadFlightDump(dir + "/flight.tfct", &dump, error)) {
    return false;
  }

  std::vector<JsonEntry> entries;
  entries.reserve(dump.events.size() + 16);

  // Track discovery: every (node) becomes a Perfetto process, every
  // (node, port) a thread (tid = port + 1; tid 0 is the node-level track).
  std::map<int, std::map<int, bool>> tracks;  // node -> port -> seen
  // Open slot per (node, port): slot spans pair kSlotBegin with the next
  // kSlotEnd on the same port track. Unpaired begins are dropped rather
  // than emitted unbalanced.
  std::map<std::pair<int, int>, FlightEvent> open_slots;
  // Flow span extent: first/last event time + anchor node per flow id.
  struct FlowSpan {
    int64_t first_time = 0;  // lint:allow units (span extent, FlightEvent times)
    int64_t last_time = 0;   // lint:allow units
    int node = 0;
  };
  std::map<int, FlowSpan> flows;

  for (const FlightEvent& e : dump.events) {
    const int node = e.node;
    const int tid = e.port >= 0 ? e.port + 1 : 0;
    tracks[node][tid] = true;
    if (e.flow >= 0) {
      auto [it, inserted] = flows.try_emplace(e.flow);
      if (inserted) {
        it->second.first_time = e.time.count();
        it->second.node = node;
      }
      it->second.last_time = e.time.count();
    }

    if (e.type == FlightEventType::kSlotBegin) {
      open_slots[{node, e.port}] = e;
      continue;
    }
    if (e.type == FlightEventType::kSlotEnd) {
      auto open = open_slots.find({node, e.port});
      if (open != open_slots.end()) {
        const int64_t begin = open->second.time.count();
        const int64_t duration = e.time.count() - begin;
        std::string json = "{\"ph\":\"X\",\"name\":\"slot\",\"cat\":\"tfc\",";
        json += "\"pid\":" + std::to_string(node) + ",\"tid\":" + std::to_string(tid) +
                ',' + TsField(begin) +
                ",\"dur\":" + JsonNumber(static_cast<double>(duration) / 1000.0) +
                ",\"args\":" + ArgsJson(ControlFields(e)) + '}';
        entries.push_back({begin, std::move(json)});
        open_slots.erase(open);
        continue;
      }
      // A slot end with no recorded begin (ring wrapped past it): fall
      // through and emit it as an instant so the information isn't lost.
    }

    std::vector<std::pair<const char*, int64_t>> args;
    std::string name;
    std::string cat;
    if (IsPacketFlightEvent(e.type)) {
      name = std::string(FlightEventName(e.type)) + ' ' +
             PacketTypeName(static_cast<PacketType>(e.ptype));
      cat = "packet";
      args.emplace_back("flow", e.flow);
      args.emplace_back("seq", static_cast<int64_t>(e.seq));
      args.emplace_back("len", e.a);
      if ((e.flags & kFlightRma) != 0) {
        args.emplace_back("w", e.b);
      }
      if (e.port >= 0) {
        args.emplace_back("q", e.c);
      }
    } else {
      name = FlightEventName(e.type);
      cat = "tfc";
      args = ControlFields(e);
      if (e.flow >= 0) {
        args.emplace_back("flow", e.flow);
      }
    }
    std::string json = "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" + JsonEscape(name) +
                       "\",\"cat\":\"" + cat + "\",\"pid\":" + std::to_string(node) +
                       ",\"tid\":" + std::to_string(tid) + ',' +
                       TsField(e.time.count()) + ",\"args\":" + ArgsJson(args) + '}';
    entries.push_back({e.time.count(), std::move(json)});
  }

  // Async span per flow: "b"/"e" pairs keyed by (cat="flow", id).
  for (const auto& [flow, span] : flows) {
    const std::string common = "\"cat\":\"flow\",\"id\":" + std::to_string(flow) +
                               ",\"name\":\"flow " + std::to_string(flow) +
                               "\",\"pid\":" + std::to_string(span.node) +
                               ",\"tid\":0,";
    entries.push_back(
        {span.first_time,
         "{\"ph\":\"b\"," + common + TsField(span.first_time) + ",\"args\":{}}"});
    entries.push_back(
        {span.last_time,
         "{\"ph\":\"e\"," + common + TsField(span.last_time) + ",\"args\":{}}"});
  }

  std::stable_sort(entries.begin(), entries.end(),
                   [](const JsonEntry& a, const JsonEntry& b) { return a.time < b.time; });

  const std::string json_path = dir + "/trace.perfetto.json";
  std::ofstream out(json_path, std::ios::binary);
  if (!out) {
    if (error != nullptr) {
      *error = "flight: cannot open '" + json_path + "' for writing";
    }
    return false;
  }
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  // Metadata first: process (node) and thread (port) names.
  for (const auto& [node, tids] : tracks) {
    out << (first ? "" : ",\n")
        << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << node
        << ",\"args\":{\"name\":\"" << JsonEscape(DisplayName(dump, node)) << "\"}}";
    first = false;
    for (const auto& [tid, seen] : tids) {
      (void)seen;
      out << ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << node
          << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
          << (tid == 0 ? std::string("node") : "p" + std::to_string(tid - 1))
          << "\"}}";
    }
  }
  for (const JsonEntry& entry : entries) {
    out << (first ? "" : ",\n") << entry.json;
    first = false;
  }
  out << "\n]}\n";
  out.close();
  if (!out) {
    if (error != nullptr) {
      *error = "flight: short write to '" + json_path + "'";
    }
    return false;
  }

  // Per-flow text timeline: the same TextTracer rendering, grouped by flow.
  const std::string flows_path = dir + "/flows.txt";
  std::ofstream ftxt(flows_path, std::ios::binary);
  if (!ftxt) {
    if (error != nullptr) {
      *error = "flight: cannot open '" + flows_path + "' for writing";
    }
    return false;
  }
  for (const auto& [flow, span] : flows) {
    (void)span;
    ftxt << "=== flow " << flow << " ===\n";
    TextTracer tracer(&ftxt, flow);
    for (const FlightEvent& e : dump.events) {
      tracer.OnEvent(e, dump);
    }
  }
  ftxt.close();
  if (!ftxt) {
    if (error != nullptr) {
      *error = "flight: short write to '" + flows_path + "'";
    }
    return false;
  }
  return true;
}

}  // namespace tfc
