// Deterministic, seeded fault injection.
//
// A FaultInjector sits on the wire of selected ports (Port::OnSerialized
// routes every serialized packet through OnWire when an injector is
// attached) and can drop, duplicate, or delay packets under a per-port
// stochastic profile, take links down (outages and flapping), wipe a switch
// port agent's protocol state (the paper-testbed analog of a NetFPGA
// power-cycle), and crash/restart hosts mid-flow. All randomness comes from
// the injector's own Rng, so a fixed (network seed, fault seed) pair
// replays bit-identically; all timeline events are scheduler *daemon*
// events, so an armed injector never keeps drain-mode Run() alive.
//
// Every destroyed packet emits a TraceEventType::kFaultDrop trace event and
// bumps a `fault.*` metric — loss injected here is always observable,
// never silent (tools/lint.py's packet-drop rule enforces that the only
// other loss site in the stack is the tail-drop in Port::Enqueue).
//
// The companion LivenessWatchdog is the detector side: it samples progress
// functions (typically telemetry counters) on a fixed cadence and flags any
// watched entity that is neither done nor making progress — the chaos
// harness's definition of a stuck flow.
//
// Lifetime: the injector must be destroyed *before* the Network it attaches
// to (declare it after the Network). Its destructor detaches every port and
// cancels every pending fault-timeline event.

#ifndef SRC_NET_FAULT_H_
#define SRC_NET_FAULT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/inplace_function.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/sim/telemetry.h"
#include "src/sim/time.h"

namespace tfc {

class Host;
class Network;
class Port;

// Stochastic impairment profile for one port's wire. All probabilities are
// per packet. The Gilbert-Elliott pair (ge_enter_bad, ge_exit_bad) enables
// 2-state burst loss: the chain transitions once per packet and drops with
// ge_drop_bad while in the bad state (ge_drop_good while good, usually 0).
// Stochastic impairments apply only within [active_from, active_until);
// active_until == 0 means no end. Deterministic controls (filters, link
// down, wipes) are not gated by the window.
struct FaultProfile {
  double drop_prob = 0.0;        // i.i.d. corruption-drop
  double dup_prob = 0.0;         // deliver a copy in addition to the original
  double reorder_prob = 0.0;     // delay delivery by Uniform(0, reorder_max_delay]
  TimeNs reorder_max_delay = 0;
  double ge_enter_bad = 0.0;     // P(good -> bad) per packet
  double ge_exit_bad = 0.0;      // P(bad -> good) per packet
  double ge_drop_good = 0.0;
  double ge_drop_bad = 0.0;
  TimeNs active_from = 0;
  TimeNs active_until = 0;       // 0 = forever

  bool AnyStochastic() const {
    return drop_prob > 0 || dup_prob > 0 || reorder_prob > 0 ||
           ge_enter_bad > 0 || ge_drop_good > 0;
  }
};

// Textual fault schedule for `tfcsim --fault-spec` and the chaos harness.
// Comma-separated key=value pairs; durations take ns/us/ms/s suffixes
// (bare numbers are ns). Example:
//
//   drop=0.01,ge=0.02/0.3/0.5,reorder=0.005,reorder_delay=20us,
//   flap=5ms/500us,wipe=10ms,host_down=4ms+1ms,start=1ms,stop=50ms,seed=7
//
// Keys: drop, dup, reorder (probabilities), reorder_delay (duration),
// ge=ENTER/EXIT/DROPBAD, flap=MEANUP/MEANDOWN (one random inter-switch
// link flaps with exponential dwell times), wipe=PERIOD (round-robin agent
// wipes across switch ports), host_down=AT+FOR (one random host crashes at
// AT for FOR), start/stop (active window for the stochastic profile),
// seed=N (the injector Rng seed used by FaultInjector::ApplySpec callers).
struct FaultSpec {
  FaultProfile profile;
  TimeNs flap_mean_up = 0;
  TimeNs flap_mean_down = 0;
  TimeNs wipe_period = 0;
  TimeNs host_down_at = 0;
  TimeNs host_down_for = 0;
  uint64_t seed = 1;

  // Parses `text` into *out. On failure returns false and sets *error to a
  // human-readable reason (unknown key, malformed value).
  static bool Parse(const std::string& text, FaultSpec* out, std::string* error);
};

class FaultInjector {
 public:
  // Returns true if the packet should be destroyed on the wire.
  using PacketFilter = InplaceFunction<bool(const Packet&), kDefaultInplaceCapacity>;

  FaultInjector(Network* net, uint64_t seed);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- stochastic impairments ---
  void Attach(Port* port, const FaultProfile& profile);
  void Detach(Port* port);

  // Deterministic targeted loss: destroy every wire packet on `port` for
  // which `filter` returns true (tests use this to kill a specific probe or
  // the delimiter's RM packets). The filter may keep mutable state in its
  // capture (e.g. "drop the first N matches").
  void DropMatching(Port* port, PacketFilter filter);
  void ClearFilter(Port* port);

  // --- link failures ---
  // Takes one direction of a link down: packets finishing serialization on
  // `port` are destroyed until the link comes back up. SetDuplexDown also
  // downs the peer's direction.
  void SetLinkDown(Port* port, bool down);
  void SetDuplexDown(Port* port, bool down);
  bool link_down(Port* port) const;
  void ScheduleLinkDown(Port* port, TimeNs at, TimeNs duration, bool duplex = true);
  // Random up/down flapping with exponential dwell times over [start, stop);
  // the link is forced up at stop.
  void ScheduleFlapping(Port* port, TimeNs mean_up, TimeNs mean_down, TimeNs start,
                        TimeNs stop);

  // --- state wipes and host crashes ---
  // Reboots the protocol agent on `port` (PortAgent::WipeState): the agent
  // reverts to construction-time state and any packets it was holding are
  // destroyed (accounted as fault drops). No-op on agentless ports.
  void WipeAgentNow(Port* port);
  void ScheduleAgentWipe(Port* port, TimeNs at);

  // Crashes / restarts a host (Host::set_down): while down the host drops
  // everything it would send or receive.
  void SetHostDown(Host* host, bool down);
  void ScheduleHostOutage(Host* host, TimeNs at, TimeNs duration);

  // Applies a parsed spec to the whole network: the stochastic profile on
  // every switch port, flapping on one rng-chosen inter-switch link,
  // round-robin agent wipes across switch ports, and one rng-chosen host
  // outage. Topology choices draw from the injector's Rng, so the same
  // (topology, spec, seed) triple replays identically.
  void ApplySpec(const FaultSpec& spec);

  // Wire hook, called by Port::OnSerialized for every serialized packet.
  void OnWire(Port* port, PacketPtr pkt);

  // --- statistics (also exported as fault.* metrics) ---
  uint64_t inspected() const { return inspected_; }  // packets seen by OnWire
  uint64_t drops() const { return drops_; }  // all injector-destroyed packets
  uint64_t random_drops() const { return random_drops_; }
  uint64_t burst_drops() const { return burst_drops_; }
  uint64_t filtered_drops() const { return filtered_drops_; }
  uint64_t link_drops() const { return link_drops_; }
  uint64_t dups() const { return dups_; }
  uint64_t reorders() const { return reorders_; }
  uint64_t agent_wipes() const { return agent_wipes_; }
  uint64_t wiped_parked_acks() const { return wiped_parked_acks_; }
  uint64_t link_transitions() const { return link_transitions_; }
  uint64_t host_transitions() const { return host_transitions_; }
  TimeNs link_down_ns() const;  // cumulative, across all links, including open outages

  Rng& rng() { return rng_; }

 private:
  struct PortState {
    Port* port = nullptr;  // back-pointer for detach-on-destruction
    FaultProfile profile;
    bool attached = false;  // profile in force (filters/down work regardless)
    bool ge_bad = false;
    bool down = false;
    TimeNs down_since = 0;
    TimeNs down_accum = 0;
    PacketFilter filter;
  };

  // Deterministic port identity: (owner node id, port index). Keying the
  // state map by this instead of the Port* keeps lookup O(log n) while
  // making iteration order a pure function of the topology — a pointer key
  // would order (and, in an unordered map, bucket) entries by heap address,
  // which varies run-to-run under ASLR and would leak into anything that
  // walks the map (det-pointer-key / det-unordered-iter, tools/astlint.py).
  using PortKey = std::pair<int, int>;
  static PortKey KeyOf(const Port* port);

  // Finds-or-creates the state for `port` and points the port at us.
  PortState& State(Port* port);
  // Destroys a wire packet: trace event + total-drop accounting. Callers
  // bump the per-reason counter themselves.
  void Destroy(Port* port, PacketPtr pkt);
  void FlapStep(Port* port, TimeNs mean_up, TimeNs mean_down, TimeNs stop, bool to_down);
  void WipeTick(std::vector<Port*> targets, size_t next, TimeNs period, TimeNs stop);
  template <typename F>
  void ScheduleDaemon(TimeNs at, F&& fn);
  void RegisterMetrics();

  Network* net_;
  Rng rng_;
  std::map<PortKey, PortState> states_;
  std::vector<Scheduler::EventId> timeline_;  // cancelled on destruction

  uint64_t inspected_ = 0;
  uint64_t drops_ = 0;
  uint64_t random_drops_ = 0;
  uint64_t burst_drops_ = 0;
  uint64_t filtered_drops_ = 0;
  uint64_t link_drops_ = 0;
  uint64_t dups_ = 0;
  uint64_t reorders_ = 0;
  uint64_t agent_wipes_ = 0;
  uint64_t wiped_parked_acks_ = 0;
  uint64_t link_transitions_ = 0;
  uint64_t host_transitions_ = 0;

  // Keep last: gauges capture `this`.
  ScopedMetrics metrics_;
};

// No-progress detector. Each watched entry pairs a progress function
// (monotone value: bytes delivered, a telemetry counter) with a done
// predicate; an entry that is not done and whose progress value has not
// changed for `stall_after` of simulated time is flagged. Flags are sticky
// (flagged() accumulates every entry that ever stalled); Stalled() reports
// the currently-stuck set, so an entry that recovers leaves Stalled() but
// stays on the flagged record. Ticks are daemon events.
class LivenessWatchdog {
 public:
  using ProgressFn = InplaceFunction<double(), kDefaultInplaceCapacity>;
  using DoneFn = InplaceFunction<bool(), kDefaultInplaceCapacity>;

  LivenessWatchdog(Scheduler* scheduler, TimeNs check_period, TimeNs stall_after);
  ~LivenessWatchdog();
  LivenessWatchdog(const LivenessWatchdog&) = delete;
  LivenessWatchdog& operator=(const LivenessWatchdog&) = delete;

  void Watch(std::string name, ProgressFn progress, DoneFn done);

  // Convenience: watch a registry metric by name as the progress value.
  void WatchMetric(MetricRegistry* registry, const std::string& metric_name, DoneFn done);

  void Start();
  void Stop();
  bool running() const { return running_; }

  // When set, a freshly flagged stall aborts the process through the
  // TFC_CHECK funnel — which drains any armed flight recorders to their
  // flight.tfct spills first (src/sim/flight.h). Off by default: tests
  // assert on flagged() instead.
  void set_abort_on_stall(bool abort) { abort_on_stall_ = abort; }
  bool abort_on_stall() const { return abort_on_stall_; }

  // Entities stuck right now (not done, no progress for stall_after).
  // Non-const: evaluates the progress/done callables.
  std::vector<std::string> Stalled();
  // Every entity that was ever flagged as stalled, in flag order.
  const std::vector<std::string>& flagged() const { return flagged_; }
  bool clean() const { return flagged_.empty(); }
  uint64_t ticks() const { return ticks_; }

 private:
  struct Entry {
    std::string name;
    ProgressFn progress;
    DoneFn done;
    double last_value = 0.0;
    TimeNs last_change = 0;
    bool flagged = false;
  };

  void Tick();

  Scheduler* scheduler_;
  TimeNs period_;
  TimeNs stall_after_;
  std::vector<Entry> entries_;
  std::vector<std::string> flagged_;
  uint64_t ticks_ = 0;
  bool running_ = false;
  bool abort_on_stall_ = false;
  Scheduler::EventId tick_event_;
};

}  // namespace tfc

#endif  // SRC_NET_FAULT_H_
