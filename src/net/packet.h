// Packet model.
//
// A single flat header struct carries the union of the fields the simulated
// protocols need (ns-2 style). Sizes follow Ethernet/IP/TCP framing so that
// goodput numbers are directly comparable with the paper's testbed:
//   payload <= kMssBytes (1460)
//   frame   =  payload + kHeaderBytes (Ethernet+IP+TCP = 58, incl. FCS)
//   wire    =  max(frame, 64) + 20 (preamble + inter-frame gap)
// Buffers and queue lengths are accounted in frame bytes; link serialization
// is charged in wire bytes.

#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "src/sim/time.h"

namespace tfc {

inline constexpr uint32_t kMssBytes = 1460;
inline constexpr uint32_t kHeaderBytes = 58;
inline constexpr uint32_t kMinFrameBytes = 64;
inline constexpr uint32_t kWireOverheadBytes = 20;
inline constexpr uint32_t kMtuFrameBytes = kMssBytes + kHeaderBytes;

// Initial value of the TFC window field (paper: 0xffff); any real window is
// smaller, so switches min() it down along the path.
inline constexpr uint32_t kWindowInfinite = 0xffffffffu;

// Poison stamped into released packets by the pool (src/net/packet_pool.h).
// Live uids are sequential from 1, so the pattern can never collide with a
// real packet; seeing it outside the free list means a use-after-free, and
// seeing it on a packet being released means a double free.
inline constexpr uint64_t kPoisonUid = 0xDEADDEADDEADDEADull;

enum class PacketType : uint8_t {
  kData,
  kAck,
  kSyn,
  kSynAck,
  kFin,
  kFinAck,
};

struct Packet {
  uint64_t uid = 0;     // globally unique, for tracing
  int32_t flow_id = -1;
  int32_t src = -1;     // source host node id
  int32_t dst = -1;     // destination host node id
  PacketType type = PacketType::kData;

  uint64_t seq = 0;     // first payload byte (data) / probe round id
  uint64_t ack = 0;     // cumulative ACK (next expected byte)
  uint32_t payload = 0;

  // TFC round-mark bits (two reserved TCP flag bits in the paper).
  bool rm = false;   // first packet of a full window of data
  bool rma = false;  // ACK of an RM packet

  // TFC weighted-allocation extension (paper Sec. 4.1: tokens can be split
  // "according to any allocation policies"): an RM mark contributes this
  // many units to the effective-flow count, and the sender scales the
  // granted per-unit window by it. 1 = the paper's equal-share policy.
  uint8_t weight = 1;

  // ECN bits (used by DCTCP).
  bool ecn_capable = false;
  bool ecn_ce = false;    // congestion experienced, set by switches
  bool ecn_echo = false;  // echoed back to the sender in ACKs

  // TFC window field, in frame bytes. Switches min() their computed window
  // into data packets; the receiver echoes it in the RMA ACK.
  uint32_t window = kWindowInfinite;

  // Timestamp option: sender stamp echoed by the receiver for RTT sampling.
  TimeNs ts = 0;
  TimeNs ts_echo = 0;

  // RCP baseline fields: routers stamp the minimum fair rate along the path
  // into data packets; the receiver echoes it in ACKs. The sender also
  // carries its current RTT estimate so routers can average d-hat.
  uint64_t rate_bps = 0;  // 0 = unset/unlimited
  TimeNs rtt_hint = 0;

  // XCP baseline fields: the congestion header. Senders advertise their
  // current cwnd; routers compute a per-packet window delta and keep the
  // most restrictive value along the path; receivers echo it.
  uint32_t cwnd_hint = 0;          // sender's cwnd in payload bytes
  double xcp_feedback = 0.0;       // delta-cwnd in bytes (signed)
  bool xcp_feedback_set = false;   // whether any router stamped feedback

  uint32_t frame_bytes() const { return payload + kHeaderBytes; }
  uint32_t wire_bytes() const {
    return std::max(frame_bytes(), kMinFrameBytes) + kWireOverheadBytes;
  }

  bool is_data() const {
    return type == PacketType::kData || type == PacketType::kSyn ||
           type == PacketType::kFin;
  }
  bool is_ack() const {
    return type == PacketType::kAck || type == PacketType::kSynAck ||
           type == PacketType::kFinAck;
  }
};

// Packets are pool-recycled (src/net/packet_pool.h): PacketPtr carries a
// deleter that returns the packet to its pool instead of freeing it. A
// null pool (the default, and what plain std::make_unique<Packet>() yields
// via the implicit conversion below) falls back to `delete`, so tests and
// tools can keep constructing loose packets.
class PacketPool;

struct PacketDeleter {
  PacketPool* pool = nullptr;

  constexpr PacketDeleter() noexcept = default;
  explicit constexpr PacketDeleter(PacketPool* p) noexcept : pool(p) {}
  // Lets std::unique_ptr<Packet> convert to PacketPtr.
  constexpr PacketDeleter(std::default_delete<Packet>) noexcept {}  // NOLINT

  void operator()(Packet* p) const;  // defined in packet_pool.cc
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

inline const char* PacketTypeName(PacketType t) {
  switch (t) {
    case PacketType::kData:
      return "DATA";
    case PacketType::kAck:
      return "ACK";
    case PacketType::kSyn:
      return "SYN";
    case PacketType::kSynAck:
      return "SYNACK";
    case PacketType::kFin:
      return "FIN";
    case PacketType::kFinAck:
      return "FINACK";
  }
  return "?";
}

}  // namespace tfc

#endif  // SRC_NET_PACKET_H_
