// End host: owns transport endpoints and a single NIC port.
//
// The host models a configurable random per-packet processing delay on the
// send path (OS stack + NIC). The delay is applied so that packet order is
// preserved (a later packet never departs before an earlier one), matching
// how a real transmit path behaves. This is the jitter source behind the
// paper's Fig. 6 observation that the switch-measured rtt_b sits a constant
// few microseconds below the full reference RTT.

#ifndef SRC_NET_HOST_H_
#define SRC_NET_HOST_H_

#include <map>

#include "src/net/node.h"
#include "src/sim/random.h"
#include "src/sim/telemetry.h"

namespace tfc {

// Transport endpoint interface (a sender or receiver half of a flow).
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void OnReceive(PacketPtr pkt) = 0;
};

class Host : public Node {
 public:
  Host(Network* network, int id, std::string name);

  bool is_host() const override { return true; }

  void Receive(PacketPtr pkt, Port* ingress) override;

  // Sends through the NIC, applying the host processing-delay model.
  void Send(PacketPtr pkt);

  // Endpoint registration: packets are dispatched by flow id.
  void RegisterEndpoint(int flow_id, Endpoint* ep);
  void UnregisterEndpoint(int flow_id);

  // Host processing delay: base + Uniform[0, jitter) per packet.
  void set_processing_delay(TimeNs base, TimeNs jitter) {
    proc_base_ = base;
    proc_jitter_ = jitter;
  }

  Port* nic() const { return ports_.at(0).get(); }

  // Crash/restart (fault injection): while down the host drops everything it
  // would send or receive. Endpoint state survives — the model is a machine
  // that is unreachable, not one with wiped memory; transports recover via
  // their own retransmission machinery once the host is back.
  void set_down(bool down) { down_ = down; }
  bool down() const { return down_; }

  // Packets for a finished/unknown flow, dropped at dispatch. Also exported
  // as the `host.<name>.unroutable` metric and a kDrop trace event.
  uint64_t unroutable_packets() const { return unroutable_; }
  // Packets destroyed because the host was down (fault.* analog at the
  // host; exported as `host.<name>.down_drops`).
  uint64_t down_drops() const { return down_drops_; }

 private:
  // Ordered by flow id: iteration order (and with it any future traversal)
  // is deterministic, never a function of libc hash salt (det-unordered-iter,
  // tools/astlint.py).
  std::map<int, Endpoint*> endpoints_;
  TimeNs proc_base_ = 0;
  TimeNs proc_jitter_ = 0;
  TimeNs last_departure_ = 0;
  uint64_t unroutable_ = 0;
  uint64_t down_drops_ = 0;
  bool down_ = false;
  // Keep last: gauges capture `this`.
  ScopedMetrics metrics_;
};

}  // namespace tfc

#endif  // SRC_NET_HOST_H_
