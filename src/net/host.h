// End host: owns transport endpoints and a single NIC port.
//
// The host models a configurable random per-packet processing delay on the
// send path (OS stack + NIC). The delay is applied so that packet order is
// preserved (a later packet never departs before an earlier one), matching
// how a real transmit path behaves. This is the jitter source behind the
// paper's Fig. 6 observation that the switch-measured rtt_b sits a constant
// few microseconds below the full reference RTT.

#ifndef SRC_NET_HOST_H_
#define SRC_NET_HOST_H_

#include <unordered_map>

#include "src/net/node.h"
#include "src/sim/random.h"

namespace tfc {

// Transport endpoint interface (a sender or receiver half of a flow).
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void OnReceive(PacketPtr pkt) = 0;
};

class Host : public Node {
 public:
  Host(Network* network, int id, std::string name);

  bool is_host() const override { return true; }

  void Receive(PacketPtr pkt, Port* ingress) override;

  // Sends through the NIC, applying the host processing-delay model.
  void Send(PacketPtr pkt);

  // Endpoint registration: packets are dispatched by flow id.
  void RegisterEndpoint(int flow_id, Endpoint* ep);
  void UnregisterEndpoint(int flow_id);

  // Host processing delay: base + Uniform[0, jitter) per packet.
  void set_processing_delay(TimeNs base, TimeNs jitter) {
    proc_base_ = base;
    proc_jitter_ = jitter;
  }

  Port* nic() const { return ports_.at(0).get(); }

  uint64_t unroutable_packets() const { return unroutable_; }

 private:
  std::unordered_map<int, Endpoint*> endpoints_;
  TimeNs proc_base_ = 0;
  TimeNs proc_jitter_ = 0;
  TimeNs last_departure_ = 0;
  uint64_t unroutable_ = 0;
};

}  // namespace tfc

#endif  // SRC_NET_HOST_H_
