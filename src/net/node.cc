#include "src/net/node.h"

#include "src/net/network.h"

namespace tfc {

Node::Node(Network* network, int id, std::string name)
    : network_(network), id_(id), name_(std::move(name)) {}

Port* Node::AddPort() {
  ports_.push_back(std::make_unique<Port>(&network_->scheduler(), this,
                                          static_cast<int>(ports_.size())));
  return ports_.back().get();
}

}  // namespace tfc
