#include "src/net/fault.h"

#include <cstdlib>
#include <limits>
#include <utility>

#include "src/net/host.h"
#include "src/net/network.h"
#include "src/net/node.h"
#include "src/net/port.h"
#include "src/sim/check.h"

namespace tfc {

namespace {

// Far enough that "no stop configured" timelines never hit it, small enough
// that start+dwell arithmetic cannot overflow.
constexpr TimeNs kNoStop = std::numeric_limits<TimeNs>::max() / 4;

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (true) {
    const size_t end = s.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(s.substr(begin));
      return parts;
    }
    parts.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseProb(const std::string& s, double* out) {
  double v = 0.0;
  if (!ParseDouble(s, &v) || v < 0.0 || v > 1.0) {
    return false;
  }
  *out = v;
  return true;
}

// Durations: "500" (ns), "20us", "5ms", "1.5s".
bool ParseDuration(const std::string& s, TimeNs* out) {
  if (s.empty()) {
    return false;
  }
  double scale = 1.0;
  std::string num = s;
  auto strip = [&num](size_t n) { num.resize(num.size() - n); };
  if (num.size() > 2 && num.compare(num.size() - 2, 2, "ns") == 0) {
    strip(2);
  } else if (num.size() > 2 && num.compare(num.size() - 2, 2, "us") == 0) {
    scale = 1e3;
    strip(2);
  } else if (num.size() > 2 && num.compare(num.size() - 2, 2, "ms") == 0) {
    scale = 1e6;
    strip(2);
  } else if (num.size() > 1 && num.back() == 's') {
    scale = 1e9;
    strip(1);
  }
  double v = 0.0;
  if (!ParseDouble(num, &v) || v < 0.0) {
    return false;
  }
  *out = static_cast<TimeNs>(v * scale);
  return true;
}

}  // namespace

bool FaultSpec::Parse(const std::string& text, FaultSpec* out, std::string* error) {
  FaultSpec spec;
  for (const std::string& item : Split(text, ',')) {
    if (item.empty()) {
      continue;
    }
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      *error = "fault-spec: missing '=' in '" + item + "'";
      return false;
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    bool ok = true;
    if (key == "drop") {
      ok = ParseProb(val, &spec.profile.drop_prob);
    } else if (key == "dup") {
      ok = ParseProb(val, &spec.profile.dup_prob);
    } else if (key == "reorder") {
      ok = ParseProb(val, &spec.profile.reorder_prob);
    } else if (key == "reorder_delay") {
      ok = ParseDuration(val, &spec.profile.reorder_max_delay);
    } else if (key == "ge") {
      const std::vector<std::string> parts = Split(val, '/');
      ok = parts.size() == 3 && ParseProb(parts[0], &spec.profile.ge_enter_bad) &&
           ParseProb(parts[1], &spec.profile.ge_exit_bad) &&
           ParseProb(parts[2], &spec.profile.ge_drop_bad);
    } else if (key == "flap") {
      const std::vector<std::string> parts = Split(val, '/');
      ok = parts.size() == 2 && ParseDuration(parts[0], &spec.flap_mean_up) &&
           ParseDuration(parts[1], &spec.flap_mean_down) && spec.flap_mean_up > 0 &&
           spec.flap_mean_down > 0;
    } else if (key == "wipe") {
      ok = ParseDuration(val, &spec.wipe_period) && spec.wipe_period > 0;
    } else if (key == "host_down") {
      const std::vector<std::string> parts = Split(val, '+');
      ok = parts.size() == 2 && ParseDuration(parts[0], &spec.host_down_at) &&
           ParseDuration(parts[1], &spec.host_down_for) && spec.host_down_for > 0;
    } else if (key == "start") {
      ok = ParseDuration(val, &spec.profile.active_from);
    } else if (key == "stop") {
      ok = ParseDuration(val, &spec.profile.active_until);
    } else if (key == "seed") {
      char* end = nullptr;
      spec.seed = std::strtoull(val.c_str(), &end, 10);
      ok = !val.empty() && end == val.c_str() + val.size();
    } else {
      *error = "fault-spec: unknown key '" + key + "'";
      return false;
    }
    if (!ok) {
      *error = "fault-spec: bad value for '" + key + "': '" + val + "'";
      return false;
    }
  }
  if (spec.profile.reorder_prob > 0 && spec.profile.reorder_max_delay == 0) {
    *error = "fault-spec: reorder needs reorder_delay > 0";
    return false;
  }
  *out = spec;
  return true;
}

FaultInjector::FaultInjector(Network* net, uint64_t seed) : net_(net), rng_(seed) {
  RegisterMetrics();
}

FaultInjector::~FaultInjector() {
  for (auto& [key, state] : states_) {
    (void)key;
    if (state.port->fault_injector() == this) {
      state.port->set_fault_injector(nullptr);
    }
  }
  Scheduler& sched = net_->scheduler();
  for (Scheduler::EventId id : timeline_) {
    sched.CancelDaemon(id);  // fired/cancelled ids are safe no-ops
  }
}

void FaultInjector::RegisterMetrics() {
  metrics_.Reset(&net_->metrics());
  // A replacement injector (tests rebuild them mid-run) takes over the
  // fault.* names rather than aborting on the collision.
  metrics_.set_replace_on_collision(true);
  metrics_.AddCallbackGauge("fault.drops",
                            [this] { return static_cast<double>(drops_); });
  metrics_.AddCallbackGauge("fault.random_drops",
                            [this] { return static_cast<double>(random_drops_); });
  metrics_.AddCallbackGauge("fault.burst_drops",
                            [this] { return static_cast<double>(burst_drops_); });
  metrics_.AddCallbackGauge("fault.filtered_drops",
                            [this] { return static_cast<double>(filtered_drops_); });
  metrics_.AddCallbackGauge("fault.link_drops",
                            [this] { return static_cast<double>(link_drops_); });
  metrics_.AddCallbackGauge("fault.dups", [this] { return static_cast<double>(dups_); });
  metrics_.AddCallbackGauge("fault.reorders",
                            [this] { return static_cast<double>(reorders_); });
  metrics_.AddCallbackGauge("fault.agent_wipes",
                            [this] { return static_cast<double>(agent_wipes_); });
  metrics_.AddCallbackGauge("fault.wiped_parked_acks",
                            [this] { return static_cast<double>(wiped_parked_acks_); });
  metrics_.AddCallbackGauge("fault.link_transitions",
                            [this] { return static_cast<double>(link_transitions_); });
  metrics_.AddCallbackGauge("fault.host_transitions",
                            [this] { return static_cast<double>(host_transitions_); });
  metrics_.AddCallbackGauge("fault.link_down_ns",
                            [this] { return static_cast<double>(link_down_ns()); });
}

FaultInjector::PortKey FaultInjector::KeyOf(const Port* port) {
  return PortKey(port->owner()->id(), port->index());
}

FaultInjector::PortState& FaultInjector::State(Port* port) {
  auto [it, inserted] = states_.try_emplace(KeyOf(port));
  if (inserted) {
    it->second.port = port;
    port->set_fault_injector(this);
  }
  return it->second;
}

void FaultInjector::Attach(Port* port, const FaultProfile& profile) {
  PortState& st = State(port);
  st.profile = profile;
  st.attached = true;
  st.ge_bad = false;
}

void FaultInjector::Detach(Port* port) {
  auto it = states_.find(KeyOf(port));
  if (it == states_.end()) {
    return;
  }
  states_.erase(it);
  if (port->fault_injector() == this) {
    port->set_fault_injector(nullptr);
  }
}

void FaultInjector::DropMatching(Port* port, PacketFilter filter) {
  State(port).filter = std::move(filter);
}

void FaultInjector::ClearFilter(Port* port) {
  auto it = states_.find(KeyOf(port));
  if (it != states_.end()) {
    it->second.filter = PacketFilter();
  }
}

void FaultInjector::SetLinkDown(Port* port, bool down) {
  PortState& st = State(port);
  if (st.down == down) {
    return;
  }
  const TimeNs now = net_->scheduler().now();
  st.down = down;
  ++link_transitions_;
  if (down) {
    st.down_since = now;
  } else {
    st.down_accum += now - st.down_since;
  }
  if (net_->TraceActive()) {
    net_->EmitFlight(ControlFlightEvent(
        down ? FlightEventType::kLinkDown : FlightEventType::kLinkUp,
        port->owner()->id(), port->index(), -1));
  }
}

void FaultInjector::SetDuplexDown(Port* port, bool down) {
  SetLinkDown(port, down);
  if (port->peer_port() != nullptr) {
    SetLinkDown(port->peer_port(), down);
  }
}

bool FaultInjector::link_down(Port* port) const {
  auto it = states_.find(KeyOf(port));
  return it != states_.end() && it->second.down;
}

TimeNs FaultInjector::link_down_ns() const {
  const TimeNs now = net_->scheduler().now();
  TimeNs total = 0;
  // TimeNs additions commute exactly, but the sorted key still matters:
  // a pointer-keyed walk would touch entries in ASLR-dependent order.
  for (const auto& [key, st] : states_) {
    (void)key;
    total += st.down_accum + (st.down ? now - st.down_since : 0);
  }
  return total;
}

template <typename F>
void FaultInjector::ScheduleDaemon(TimeNs at, F&& fn) {
  Scheduler& sched = net_->scheduler();
  const TimeNs now = sched.now();
  timeline_.push_back(sched.ScheduleDaemonAfter(at > now ? at - now : 0, std::forward<F>(fn)));
}

void FaultInjector::ScheduleLinkDown(Port* port, TimeNs at, TimeNs duration, bool duplex) {
  TFC_CHECK_GT(duration, 0);
  ScheduleDaemon(at, [this, port, duplex] {
    if (duplex) {
      SetDuplexDown(port, true);
    } else {
      SetLinkDown(port, true);
    }
  });
  ScheduleDaemon(at + duration, [this, port, duplex] {
    if (duplex) {
      SetDuplexDown(port, false);
    } else {
      SetLinkDown(port, false);
    }
  });
}

void FaultInjector::ScheduleFlapping(Port* port, TimeNs mean_up, TimeNs mean_down,
                                     TimeNs start, TimeNs stop) {
  TFC_CHECK_GT(mean_up, 0);
  TFC_CHECK_GT(mean_down, 0);
  if (stop <= 0) {
    stop = kNoStop;
  }
  // The first step "transitions" to up (a no-op), dwells Exp(mean_up), and
  // only then takes the link down — so [start, start+dwell) stays healthy.
  ScheduleDaemon(start, [this, port, mean_up, mean_down, stop] {
    FlapStep(port, mean_up, mean_down, stop, /*to_down=*/false);
  });
}

void FaultInjector::FlapStep(Port* port, TimeNs mean_up, TimeNs mean_down, TimeNs stop,
                             bool to_down) {
  const TimeNs now = net_->scheduler().now();
  if (now >= stop) {
    SetDuplexDown(port, false);  // never strand the link down past the window
    return;
  }
  SetDuplexDown(port, to_down);
  TimeNs dwell =
      static_cast<TimeNs>(rng_.Exponential(static_cast<double>(to_down ? mean_down : mean_up)));
  if (dwell < 1) {
    dwell = 1;
  }
  ScheduleDaemon(now + dwell, [this, port, mean_up, mean_down, stop, to_down] {
    FlapStep(port, mean_up, mean_down, stop, !to_down);
  });
}

void FaultInjector::WipeAgentNow(Port* port) {
  PortAgent* agent = port->agent();
  if (agent == nullptr) {
    return;
  }
  std::deque<PacketPtr> lost;
  agent->WipeState(&lost);
  ++agent_wipes_;
  for (PacketPtr& pkt : lost) {
    ++wiped_parked_acks_;
    ++drops_;
    net_->EmitTrace(TraceEventType::kFaultDrop, *pkt, port->owner(), port);
    pkt.reset();
  }
}

void FaultInjector::ScheduleAgentWipe(Port* port, TimeNs at) {
  ScheduleDaemon(at, [this, port] { WipeAgentNow(port); });
}

void FaultInjector::SetHostDown(Host* host, bool down) {
  if (host->down() == down) {
    return;
  }
  ++host_transitions_;
  host->set_down(down);
  if (net_->TraceActive()) {
    net_->EmitFlight(ControlFlightEvent(
        down ? FlightEventType::kHostDown : FlightEventType::kHostUp, host->id(),
        -1, -1));
  }
}

void FaultInjector::ScheduleHostOutage(Host* host, TimeNs at, TimeNs duration) {
  TFC_CHECK_GT(duration, 0);
  ScheduleDaemon(at, [this, host] { SetHostDown(host, true); });
  ScheduleDaemon(at + duration, [this, host] { SetHostDown(host, false); });
}

void FaultInjector::WipeTick(std::vector<Port*> targets, size_t next, TimeNs period,
                             TimeNs stop) {
  const TimeNs now = net_->scheduler().now();
  if (targets.empty() || now >= stop) {
    return;
  }
  WipeAgentNow(targets[next % targets.size()]);
  ScheduleDaemon(now + period,
                 [this, targets = std::move(targets), next, period, stop]() mutable {
                   WipeTick(std::move(targets), next + 1, period, stop);
                 });
}

void FaultInjector::ApplySpec(const FaultSpec& spec) {
  // Deterministic target collection: node order is insertion order.
  std::vector<Port*> switch_ports;
  std::vector<Port*> trunk_ports;  // inter-switch, one direction per cable
  std::vector<Host*> hosts;
  for (const auto& node : net_->nodes()) {
    if (node->is_host()) {
      hosts.push_back(static_cast<Host*>(node.get()));
      continue;
    }
    for (const auto& port : node->ports()) {
      if (port->peer() == nullptr) {
        continue;
      }
      switch_ports.push_back(port.get());
      if (!port->peer()->is_host() && node->id() < port->peer()->id()) {
        trunk_ports.push_back(port.get());
      }
    }
  }
  const TimeNs start = spec.profile.active_from;
  const TimeNs stop = spec.profile.active_until > 0 ? spec.profile.active_until : kNoStop;

  if (spec.profile.AnyStochastic()) {
    for (Port* p : switch_ports) {
      Attach(p, spec.profile);
    }
  }
  if (spec.flap_mean_up > 0 && spec.flap_mean_down > 0 && !switch_ports.empty()) {
    const std::vector<Port*>& pool = trunk_ports.empty() ? switch_ports : trunk_ports;
    Port* victim = pool[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
    ScheduleFlapping(victim, spec.flap_mean_up, spec.flap_mean_down, start, stop);
  }
  if (spec.wipe_period > 0 && !switch_ports.empty()) {
    ScheduleDaemon(start + spec.wipe_period,
                   [this, switch_ports, period = spec.wipe_period, stop]() mutable {
                     WipeTick(std::move(switch_ports), 0, period, stop);
                   });
  }
  if (spec.host_down_for > 0 && !hosts.empty()) {
    Host* victim = hosts[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(hosts.size()) - 1))];
    ScheduleHostOutage(victim, spec.host_down_at, spec.host_down_for);
  }
}

void FaultInjector::Destroy(Port* port, PacketPtr pkt) {
  ++drops_;
  net_->EmitTrace(TraceEventType::kFaultDrop, *pkt, port->owner(), port);
  pkt.reset();
}

void FaultInjector::OnWire(Port* port, PacketPtr pkt) {
  ++inspected_;
  auto it = states_.find(KeyOf(port));
  if (it == states_.end()) {
    port->DeliverToPeer(std::move(pkt), 0);
    return;
  }
  PortState& st = it->second;
  if (st.down) {
    ++link_drops_;
    Destroy(port, std::move(pkt));
    return;
  }
  if (st.filter && st.filter(*pkt)) {
    ++filtered_drops_;
    Destroy(port, std::move(pkt));
    return;
  }
  TimeNs extra = 0;
  if (st.attached) {
    const FaultProfile& p = st.profile;
    const TimeNs now = net_->scheduler().now();
    const bool active = now >= p.active_from && (p.active_until == 0 || now < p.active_until);
    if (active) {
      if (p.ge_enter_bad > 0 || p.ge_exit_bad > 0) {
        // One chain transition per packet, then drop by the current state.
        if (st.ge_bad) {
          if (rng_.Bernoulli(p.ge_exit_bad)) {
            st.ge_bad = false;
          }
        } else if (rng_.Bernoulli(p.ge_enter_bad)) {
          st.ge_bad = true;
        }
        const double drop_p = st.ge_bad ? p.ge_drop_bad : p.ge_drop_good;
        if (drop_p > 0 && rng_.Bernoulli(drop_p)) {
          ++burst_drops_;
          Destroy(port, std::move(pkt));
          return;
        }
      }
      if (p.drop_prob > 0 && rng_.Bernoulli(p.drop_prob)) {
        ++random_drops_;
        Destroy(port, std::move(pkt));
        return;
      }
      if (p.dup_prob > 0 && rng_.Bernoulli(p.dup_prob)) {
        // The duplicate is a distinct wire packet: fresh uid, same contents.
        PacketPtr copy = net_->AllocatePacket();
        const uint64_t uid = copy->uid;
        *copy = *pkt;
        copy->uid = uid;
        ++dups_;
        port->DeliverToPeer(std::move(copy), 0);
      }
      if (p.reorder_prob > 0 && p.reorder_max_delay > 0 && rng_.Bernoulli(p.reorder_prob)) {
        extra = rng_.UniformInt(1, p.reorder_max_delay.count());
        ++reorders_;
      }
    }
  }
  port->DeliverToPeer(std::move(pkt), extra);
}

// ---------------------------------------------------------------------------
// LivenessWatchdog
// ---------------------------------------------------------------------------

LivenessWatchdog::LivenessWatchdog(Scheduler* scheduler, TimeNs check_period,
                                   TimeNs stall_after)
    : scheduler_(scheduler), period_(check_period), stall_after_(stall_after) {
  TFC_CHECK_GT(period_, 0);
  TFC_CHECK_GT(stall_after_, 0);
}

LivenessWatchdog::~LivenessWatchdog() { Stop(); }

void LivenessWatchdog::Watch(std::string name, ProgressFn progress, DoneFn done) {
  Entry e;
  e.name = std::move(name);
  e.progress = std::move(progress);
  e.done = std::move(done);
  e.last_value = e.progress();
  e.last_change = scheduler_->now();
  entries_.push_back(std::move(e));
}

void LivenessWatchdog::WatchMetric(MetricRegistry* registry, const std::string& metric_name,
                                   DoneFn done) {
  // Init-capture: a by-copy capture of the const& parameter would produce a
  // *const* string member, whose move is the throwing copy constructor —
  // which InplaceFunction rejects.
  Watch(metric_name,
        [registry, name = std::string(metric_name)]() {
          double v = 0.0;
          registry->Read(name, &v);
          return v;
        },
        std::move(done));
}

void LivenessWatchdog::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  const TimeNs now = scheduler_->now();
  for (Entry& e : entries_) {
    e.last_value = e.progress();
    e.last_change = now;
  }
  tick_event_ = scheduler_->ScheduleDaemonAfter(period_, [this] { Tick(); });
}

void LivenessWatchdog::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  scheduler_->CancelDaemon(tick_event_);
  tick_event_ = Scheduler::EventId();
}

void LivenessWatchdog::Tick() {
  ++ticks_;
  const TimeNs now = scheduler_->now();
  for (Entry& e : entries_) {
    if (e.done()) {
      continue;
    }
    const double v = e.progress();
    if (v != e.last_value) {
      e.last_value = v;
      e.last_change = now;
      continue;
    }
    if (now - e.last_change >= stall_after_ && !e.flagged) {
      e.flagged = true;
      flagged_.push_back(e.name);
      // Routed through the TFC_CHECK funnel so armed flight recorders dump
      // the events leading up to the stall before the process dies.
      TFC_CHECK_MSG(!abort_on_stall_, "liveness watchdog: '"
                                          << e.name << "' stalled (no progress for "
                                          << (now - e.last_change) << " ns)");
    }
  }
  tick_event_ = scheduler_->ScheduleDaemonAfter(period_, [this] { Tick(); });
}

std::vector<std::string> LivenessWatchdog::Stalled() {
  std::vector<std::string> out;
  const TimeNs now = scheduler_->now();
  for (Entry& e : entries_) {
    if (e.done()) {
      continue;
    }
    if (now - e.last_change >= stall_after_ && e.progress() == e.last_value) {
      out.push_back(e.name);
    }
  }
  return out;
}

}  // namespace tfc
