// Network: owns the scheduler, RNG, nodes, and links; computes routes.
//
// Typical construction:
//   Network net(/*seed=*/42);
//   Host* a = net.AddHost("a");
//   Host* b = net.AddHost("b");
//   Switch* s = net.AddSwitch("s");
//   net.Link(a, s, kGbps, Microseconds(20));
//   net.Link(s, b, kGbps, Microseconds(20));
//   net.BuildRoutes();

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/host.h"
#include "src/net/packet_pool.h"
#include "src/net/switch.h"
#include "src/net/trace.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace tfc {

inline constexpr uint64_t kGbps = 1'000'000'000ull;

struct LinkOptions {
  // Per-port buffer on switch-owned ports (paper testbed: 256 KB/port at
  // 1 Gbps; large-scale simulation: 512 KB at 10 Gbps).
  uint64_t switch_buffer_bytes = 256 * 1024;
  // Host NICs get a deep buffer; they are never the experiment bottleneck.
  uint64_t host_buffer_bytes = 8 * 1024 * 1024;
  // ECN marking threshold applied to switch-owned ports only (0 = off).
  uint64_t ecn_threshold_bytes = 0;
};

class Network {
 public:
  explicit Network(uint64_t seed = 1) : rng_(seed) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Host* AddHost(std::string name);
  Switch* AddSwitch(std::string name);

  // Creates a full-duplex link (two cross-connected ports) between a and b.
  // Returns the port owned by `a`; its peer_port() is owned by `b`.
  Port* Link(Node* a, Node* b, uint64_t bps, TimeNs prop_delay,
             const LinkOptions& opts = LinkOptions());

  // Computes shortest-path next-hop tables for every switch (BFS per
  // destination; ties broken by port insertion order, deterministic).
  void BuildRoutes();

  Scheduler& scheduler() { return scheduler_; }
  Rng& rng() { return rng_; }

  Node* node(int id) const { return nodes_.at(static_cast<size_t>(id)).get(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }

  int AllocateFlowId() { return next_flow_id_++; }
  uint64_t AllocatePacketUid() { return next_packet_uid_++; }

  // Draws a recycled packet from the pool with a fresh uid; all other
  // fields are default-initialized. This is the allocation path every
  // transport send and ACK goes through.
  PacketPtr AllocatePacket() {
    PacketPtr pkt = packet_pool_.Allocate();
    pkt->uid = next_packet_uid_++;
    return pkt;
  }

  PacketPool& packet_pool() { return packet_pool_; }
  const PacketPool& packet_pool() const { return packet_pool_; }

  // Packet-level tracing: the tracer (not owned) sees every enqueue,
  // transmit, drop, and delivery. Null disables tracing (the default).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }
  void EmitTrace(TraceEventType type, const Packet& pkt, const Node* node,
                 const Port* port) {
    if (tracer_ != nullptr) {
      tracer_->OnEvent(TraceEvent{scheduler_.now(), type, &pkt, node, port});
    }
  }

  // Finds the port on `a` whose peer is `b` (first match); null if none.
  static Port* FindPort(Node* a, Node* b);

 private:
  // Declared before the scheduler and nodes so it is destroyed after them:
  // pending events and port queues may hold PacketPtrs whose deleters
  // release into this pool.
  PacketPool packet_pool_;
  Scheduler scheduler_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  int next_flow_id_ = 1;
  uint64_t next_packet_uid_ = 1;
  Tracer* tracer_ = nullptr;
};

}  // namespace tfc

#endif  // SRC_NET_NETWORK_H_
