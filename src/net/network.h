// Network: owns the scheduler, RNG, nodes, and links; computes routes.
//
// Thread-compatibility contract (docs/correctness.md "Thread safety"):
// a Network and everything it owns — Scheduler, PacketPool,
// MetricRegistry, Profiler, AuditRegistry, tracer, RNG — is *confined*:
// one thread drives one instance, with no cross-instance shared state, so
// distinct instances run concurrently without synchronization. The
// parallel sweep runner (src/sim/sweep.h) and the MultiInstance tests in
// tests/sweep_test.cc rely on exactly this.
//
// Typical construction:
//   Network net(/*seed=*/42);
//   Host* a = net.AddHost("a");
//   Host* b = net.AddHost("b");
//   Switch* s = net.AddSwitch("s");
//   net.Link(a, s, kGbps, Microseconds(20));
//   net.Link(s, b, kGbps, Microseconds(20));
//   net.BuildRoutes();

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/host.h"
#include "src/net/packet_pool.h"
#include "src/net/switch.h"
#include "src/net/trace.h"
#include "src/sim/audit.h"
#include "src/sim/flight.h"
#include "src/sim/profile.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/sim/telemetry.h"

namespace tfc {

inline constexpr BitsPerSec kGbps = 1'000'000'000ull;

struct LinkOptions {
  // Per-port buffer on switch-owned ports (paper testbed: 256 KB/port at
  // 1 Gbps; large-scale simulation: 512 KB at 10 Gbps).
  Bytes switch_buffer_bytes = 256 * 1024;
  // Host NICs get a deep buffer; they are never the experiment bottleneck.
  Bytes host_buffer_bytes = 8 * 1024 * 1024;
  // ECN marking threshold applied to switch-owned ports only (0 = off).
  Bytes ecn_threshold_bytes = 0;
};

class Network : public FlightNames {
 public:
  explicit Network(uint64_t seed = 1);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();  // runs a final audit pass when auditing is enabled

  Host* AddHost(std::string name);
  Switch* AddSwitch(std::string name);

  // Creates a full-duplex link (two cross-connected ports) between a and b.
  // Returns the port owned by `a`; its peer_port() is owned by `b`.
  Port* Link(Node* a, Node* b, BitsPerSec bps, TimeNs prop_delay,
             const LinkOptions& opts = LinkOptions());

  // Computes shortest-path next-hop tables for every switch (BFS per
  // destination; ties broken by port insertion order, deterministic).
  void BuildRoutes();

  Scheduler& scheduler() { return scheduler_; }
  Rng& rng() { return rng_; }

  Node* node(int id) const { return nodes_.at(static_cast<size_t>(id)).get(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }

  int AllocateFlowId() { return next_flow_id_++; }
  uint64_t AllocatePacketUid() { return next_packet_uid_++; }

  // Draws a recycled packet from the pool with a fresh uid; all other
  // fields are default-initialized. This is the allocation path every
  // transport send and ACK goes through.
  PacketPtr AllocatePacket() {
    PacketPtr pkt = packet_pool_.Allocate();
    pkt->uid = next_packet_uid_++;
    return pkt;
  }

  PacketPool& packet_pool() { return packet_pool_; }
  const PacketPool& packet_pool() const { return packet_pool_; }

  // Event tracing: the tracer (not owned) sees every packet and
  // control-plane event live; the flight recorder, once armed, keeps the
  // most recent events in a ring for post-mortem dumps and offline export.
  // Null tracer + disarmed ring disables tracing (the default): the hot
  // path pays two predictable loads and a branch.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }
  // True when any sink (tracer or armed ring) consumes events. Control-
  // plane instrumentation gates its event construction on this.
  bool TraceActive() const { return tracer_ != nullptr || flight_.armed(); }
  void EmitTrace(TraceEventType type, const Packet& pkt, const Node* node,
                 const Port* port) {
    if (tracer_ == nullptr && !flight_.armed()) {
      return;
    }
    EmitTraceArmed(type, pkt, node, port);
  }
  // Records a pre-built control-plane event, stamping the current sim time.
  // Call sites gate on TraceActive() before building the event.
  void EmitFlight(FlightEvent event);

  // FlightNames: resolves an interned node id for the live renderer.
  std::string_view NodeName(int id) const override;
  // Snapshots node names and registers the armed ring with the process-wide
  // post-mortem hook: any TFC_CHECK failure (audit violation, watchdog
  // trip) drains it to `path` before aborting.
  void ArmFlightPostMortem(const std::string& path);
  // Drains the armed ring to `path` now (end-of-run export).
  bool DumpFlight(const std::string& path, std::string* error) const;

  // Finds the port on `a` whose peer is `b` (first match); null if none.
  static Port* FindPort(Node* a, Node* b);

  // --- runtime invariant auditing (src/sim/audit.h) ---
  // Components register invariant callbacks here; the network itself
  // registers the scheduler's event heap, the packet pool, and every port.
  AuditRegistry& audit() { return audit_registry_; }

  // Turns on periodic auditing: every `period` of simulated time (and once
  // at teardown) all registered invariants run, aborting with a full report
  // on any violation. Called automatically from the constructor when
  // AuditEnabledByDefault() (TFC_AUDIT preset/env). Idempotent.
  void EnableAudit(TimeNs period = Milliseconds(5));
  bool audit_enabled() const { return audit_enabled_; }
  uint64_t audit_passes() const { return audit_passes_; }

  // Runs one audit pass now and returns the report (does not abort; tests
  // assert on the result).
  AuditReport RunAudit() { return audit_registry_.RunAll(); }

  // --- telemetry (src/sim/telemetry.h, src/sim/profile.h) ---
  // Components self-register counters/gauges here at construction; the
  // network itself exposes the simulator core (scheduler, packet pool).
  // Attach a TimeSeriesRecorder to this registry to record runs.
  MetricRegistry& metrics() { return metrics_; }
  Profiler& profiler() { return profiler_; }

 private:
  void AuditTick();
  // Armed path: fills the fixed-width record straight into the claimed ring
  // slot (inline MakePacketEvent, no intermediate copy), then feeds any
  // text tracer. Inline so the bench-gated armed cost stays call-free.
  void EmitTraceArmed(TraceEventType type, const Packet& pkt, const Node* node,
                      const Port* port) {
    if (flight_.armed()) {
      FlightEvent& event = *flight_.Append();
      event = MakePacketEvent(scheduler_.now(), type, pkt, node, port);
      if (tracer_ != nullptr) {
        tracer_->OnEvent(event, *this);
      }
    } else {
      const FlightEvent event =
          MakePacketEvent(scheduler_.now(), type, pkt, node, port);
      tracer_->OnEvent(event, *this);
    }
  }
  // Member order is destruction order in reverse: the audit and metric
  // registries are declared first so they are destroyed last — components
  // hold ScopedAudit/ScopedMetrics registrations that unregister in their
  // destructors. The packet pool precedes the scheduler and nodes because
  // pending events and port queues hold PacketPtrs whose deleters release
  // into the pool.
  AuditRegistry audit_registry_;
  MetricRegistry metrics_;
  Profiler profiler_{&metrics_};
  // Declared before the scheduler and nodes so the ring (and its post-
  // mortem registration) outlives the final audit pass in ~Network.
  FlightRecorder flight_;
  PacketPool packet_pool_;
  Scheduler scheduler_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  int next_flow_id_ = 1;
  uint64_t next_packet_uid_ = 1;
  Tracer* tracer_ = nullptr;
  bool audit_enabled_ = false;
  TimeNs audit_period_ = 0;
  uint64_t audit_passes_ = 0;
};

}  // namespace tfc

#endif  // SRC_NET_NETWORK_H_
