// Packet free-list recycler.
//
// Every simulated send and every ACK used to pay a malloc/free pair for its
// Packet. The pool keeps released packets on a free list and hands them
// back out fully reset to the default-constructed state, so steady-state
// simulation performs no packet allocations at all: the pool's footprint
// converges to the high-water mark of simultaneously-live packets (queue
// occupancy + in-flight events), typically a few hundred objects.
//
// Ownership flows through PacketPtr (src/net/packet.h), whose deleter
// returns the packet to the pool that allocated it. The pool must outlive
// every packet it issued; Network guarantees this by declaring its pool
// before the scheduler and nodes (members are destroyed in reverse order).

#ifndef SRC_NET_PACKET_POOL_H_
#define SRC_NET_PACKET_POOL_H_

#include <cstdint>
#include <vector>

#include "src/net/packet.h"

namespace tfc {

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  ~PacketPool() {
    for (Packet* p : free_) {
      delete p;
    }
  }

  // Hands out a default-initialized packet, recycling a released one when
  // available.
  PacketPtr Allocate() {
    Packet* p;
    if (!free_.empty()) {
      p = free_.back();
      free_.pop_back();
      *p = Packet{};  // scrub every field; no state leaks between flows
      ++hits_;
    } else {
      p = new Packet();
      ++misses_;
    }
    ++outstanding_;
    if (outstanding_ > high_water_) {
      high_water_ = outstanding_;
    }
    return PacketPtr(p, PacketDeleter(this));
  }

  // Called by PacketDeleter; not for direct use.
  void Release(Packet* p) {
    free_.push_back(p);
    --outstanding_;
  }

  // --- statistics (exposed for the bench harness) ---
  uint64_t hits() const { return hits_; }      // allocations served from the free list
  uint64_t misses() const { return misses_; }  // allocations that hit malloc
  uint64_t outstanding() const { return outstanding_; }
  uint64_t high_water() const { return high_water_; }  // peak live packets
  size_t free_size() const { return free_.size(); }

 private:
  std::vector<Packet*> free_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t outstanding_ = 0;
  uint64_t high_water_ = 0;
};

}  // namespace tfc

#endif  // SRC_NET_PACKET_POOL_H_
