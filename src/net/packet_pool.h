// Packet free-list recycler.
//
// Every simulated send and every ACK used to pay a malloc/free pair for its
// Packet. The pool keeps released packets on a free list and hands them
// back out fully reset to the default-constructed state, so steady-state
// simulation performs no packet allocations at all: the pool's footprint
// converges to the high-water mark of simultaneously-live packets (queue
// occupancy + in-flight events), typically a few hundred objects.
//
// Ownership flows through PacketPtr (src/net/packet.h), whose deleter
// returns the packet to the pool that allocated it. The pool must outlive
// every packet it issued; Network guarantees this by declaring its pool
// before the scheduler and nodes (members are destroyed in reverse order).

#ifndef SRC_NET_PACKET_POOL_H_
#define SRC_NET_PACKET_POOL_H_

#include <cstdint>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/audit.h"
#include "src/sim/check.h"

namespace tfc {

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  ~PacketPool() {
    for (Packet* p : free_) {
      delete p;
    }
  }

  // Hands out a default-initialized packet, recycling a released one when
  // available.
  PacketPtr Allocate() {
    Packet* p;
    if (!free_.empty()) {
      p = free_.back();
      free_.pop_back();
      TFC_DCHECK_EQ(p->uid, kPoisonUid);  // free-list entries stay poisoned
      *p = Packet{};  // scrub every field; no state leaks between flows
      ++hits_;
    } else {
      p = new Packet();  // lint:allow new-packet (the one sanctioned site)
      ++misses_;
    }
    ++outstanding_;
    if (outstanding_ > high_water_) {
      high_water_ = outstanding_;
    }
    return PacketPtr(p, PacketDeleter(this));
  }

  // Called by PacketDeleter; not for direct use. Poisons the returned
  // packet: a second release of the same pointer trips the poison check
  // (classic double-free), and the audit pass verifies the free list is
  // still fully poisoned (a write through a stale PacketPtr — use after
  // free — clobbers the pattern).
  void Release(Packet* p) {
    TFC_CHECK_MSG(p->uid != kPoisonUid,
                  "packet pool double free (packet already released)");
    Poison(p);
    free_.push_back(p);
    ++freed_;
    --outstanding_;
  }

  // Runtime-auditor hook: the allocation ledger must balance exactly
  // (every packet ever handed out is either freed or still live), the free
  // list must agree with the ledger, and freed packets must still carry
  // the poison pattern.
  void AuditInvariants(Auditor& audit) const {
    audit.CheckEq(hits_ + misses_, freed_ + outstanding_,
                  "alloc==freed+outstanding");
    audit.CheckEq(free_.size(), freed_ - hits_, "free list matches ledger");
    for (const Packet* p : free_) {
      audit.Check(p->uid == kPoisonUid && p->seq == kPoisonUid &&
                      p->ack == kPoisonUid,
                  "freed packet still poisoned (use-after-free write)");
    }
  }

  // --- statistics (exposed for the bench harness) ---
  uint64_t hits() const { return hits_; }      // allocations served from the free list
  uint64_t misses() const { return misses_; }  // allocations that hit malloc
  uint64_t freed() const { return freed_; }    // packets returned to the pool
  uint64_t outstanding() const { return outstanding_; }
  uint64_t high_water() const { return high_water_; }  // peak live packets
  size_t free_size() const { return free_.size(); }

 private:
  static void Poison(Packet* p) {
    p->uid = kPoisonUid;
    p->seq = kPoisonUid;
    p->ack = kPoisonUid;
    p->payload = 0xDEADBEEFu;
    p->window = 0xDEADBEEFu;
  }

  std::vector<Packet*> free_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t freed_ = 0;
  uint64_t outstanding_ = 0;
  uint64_t high_water_ = 0;
};

}  // namespace tfc

#endif  // SRC_NET_PACKET_POOL_H_
