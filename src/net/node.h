// Node base class: anything with ports that can receive packets.

#ifndef SRC_NET_NODE_H_
#define SRC_NET_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/net/port.h"

namespace tfc {

class Network;

class Node {
 public:
  Node(Network* network, int id, std::string name);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Delivers a fully received packet. `ingress` is the port of *this* node
  // whose peer sent the packet.
  virtual void Receive(PacketPtr pkt, Port* ingress) = 0;

  virtual bool is_host() const { return false; }

  Port* AddPort();

  Network* network() const { return network_; }
  int id() const { return id_; }
  const std::string& name() const { return name_; }
  const std::vector<std::unique_ptr<Port>>& ports() const { return ports_; }
  Port* port(size_t i) const { return ports_.at(i).get(); }

 protected:
  Network* network_;
  int id_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
};

}  // namespace tfc

#endif  // SRC_NET_NODE_H_
