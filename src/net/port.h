// Output port: drop-tail FIFO queue + attached simplex link.
//
// A full-duplex cable between two nodes is modelled as a pair of Ports, one
// on each node, cross-connected. Each Port owns the transmit queue for its
// direction; serialization occupies the port for wire_bytes*8/bps and the
// packet is delivered to the peer node after an additional propagation
// delay. Packets received *from* the peer are attributed to this Port as
// their ingress, which is what lets per-port protocol agents (TFC) see both
// the data direction (egress enqueue) and the matching reverse ACK stream.

#ifndef SRC_NET_PORT_H_
#define SRC_NET_PORT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "src/net/packet.h"
#include "src/sim/audit.h"
#include "src/sim/profile.h"
#include "src/sim/scheduler.h"
#include "src/sim/telemetry.h"
#include "src/sim/time.h"

namespace tfc {

class FaultInjector;
class Node;
class Port;

// Hook interface for per-port protocol logic living inside a switch.
// Implemented by the TFC switch module; the net layer knows only this shape.
class PortAgent {
 public:
  virtual ~PortAgent() = default;

  // Called for every packet at the moment it is enqueued on this (egress)
  // port, before the drop decision. May rewrite header fields (e.g. stamp
  // the TFC window into data packets) and account arrival traffic.
  virtual void OnEgress(Packet& pkt) = 0;

  // Called when the owning switch receives `pkt` from this port's peer
  // (i.e. the reverse direction of this port's data path). Returning false
  // transfers ownership of the packet to the agent, which must re-inject it
  // later via Switch::Forward (TFC's ACK delay function). Returning true
  // lets normal forwarding continue.
  virtual bool OnReverse(PacketPtr& pkt) = 0;

  // Fault hook: the device holding this agent's state rebooted (the paper's
  // testbed analog is a NetFPGA power-cycle). The agent must return to its
  // construction-time state and re-converge from live traffic. Any packets
  // the agent was holding (parked ACKs) are switch memory and are lost with
  // it: the agent appends them to `lost` and the caller (FaultInjector)
  // accounts their destruction. Default: stateless agent, nothing to do.
  virtual void WipeState(std::deque<PacketPtr>* lost) { (void)lost; }
};

class Port {
 public:
  Port(Scheduler* scheduler, Node* owner, int index);
  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  // Wires this port to `peer_port`'s owner over a link with the given rate
  // and one-way propagation delay. Called once by Network::Link.
  void Connect(Port* peer_port, BitsPerSec bps, TimeNs prop_delay);

  // Enqueues for transmission; drops (tail) if the buffer is full. Runs the
  // agent egress hook and ECN marking first.
  void Enqueue(PacketPtr pkt);

  // --- configuration ---
  void set_buffer_limit(Bytes bytes) {
    buffer_limit_bytes_ = bytes;
    if (bytes > buffer_limit_hi_bytes_) {
      buffer_limit_hi_bytes_ = bytes;
    }
  }
  void set_ecn_threshold(Bytes bytes) { ecn_threshold_bytes_ = bytes; }
  void set_agent(std::unique_ptr<PortAgent> agent) { agent_ = std::move(agent); }

  // Fault injection (src/net/fault.h): when set, every packet that finishes
  // serializing is routed through the injector, which may drop, duplicate,
  // or delay it instead of delivering it. Not owned; the injector detaches
  // itself on destruction. Null (the default) costs one branch per packet.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }
  FaultInjector* fault_injector() const { return fault_; }

  // Schedules delivery of `pkt` to the peer node after this link's
  // propagation delay plus `extra_delay` (the fault injector's reordering
  // lever). Exposed for the injector; everything else goes through Enqueue.
  void DeliverToPeer(PacketPtr pkt, TimeNs extra_delay);

  // --- accessors ---
  Node* owner() const { return owner_; }
  Node* peer() const { return peer_node_; }
  Port* peer_port() const { return peer_port_; }
  int index() const { return index_; }
  BitsPerSec bps() const { return bps_; }
  TimeNs prop_delay() const { return prop_delay_; }
  PortAgent* agent() const { return agent_.get(); }
  Scheduler* scheduler() const { return scheduler_; }

  // Queue occupancy in frame bytes (the packet being serialized remains
  // queued, and counted, until its serialization completes).
  Bytes queue_bytes() const { return queue_bytes_; }
  size_t queue_packets() const { return queue_.size(); }
  Bytes buffer_limit() const { return buffer_limit_bytes_; }

  // Runtime-auditor hook: re-derives queue accounting from the queue's
  // actual contents and checks occupancy against the buffer limit.
  void AuditInvariants(Auditor& audit) const;

  // --- statistics ---
  uint64_t tx_packets() const { return tx_packets_; }
  Bytes tx_bytes() const { return tx_bytes_; }  // frame bytes
  uint64_t drops() const { return drops_; }
  Bytes dropped_bytes() const { return dropped_bytes_; }
  Bytes max_queue_bytes() const { return max_queue_bytes_; }
  uint64_t ecn_marks() const { return ecn_marks_; }
  void ResetMaxQueue() { max_queue_bytes_ = queue_bytes_; }

  // Cumulative time the transmitter spent serializing (simulated time).
  // busy_ns / elapsed = link utilization; docs/observability.md.
  TimeNs busy_ns() const { return busy_ns_; }

  // Telemetry name prefix for this port: "port.<node>.p<index>".
  // Registered metrics: .queue_bytes .queue_packets .drops .tx_bytes
  // .ecn_marks .busy_ns .max_queue_bytes (see docs/observability.md).
  std::string metric_prefix() const;

  // Serialization time of `wire_bytes` on this link.
  TimeNs SerializationTime(Bytes wire_bytes) const;

 private:
  void TryTransmit();
  void OnSerialized();
  void RegisterMetrics();

  Scheduler* scheduler_;
  Node* owner_;
  int index_;

  Port* peer_port_ = nullptr;
  Node* peer_node_ = nullptr;
  BitsPerSec bps_ = 0;
  TimeNs prop_delay_ = 0;

  std::deque<PacketPtr> queue_;
  Bytes queue_bytes_ = 0;
  Bytes buffer_limit_bytes_ = 256 * 1024;
  // Largest limit ever configured; tests shrink the limit mid-run to break
  // paths, so the auditor bounds occupancy by the historical maximum.
  Bytes buffer_limit_hi_bytes_ = 256 * 1024;
  Bytes ecn_threshold_bytes_ = 0;  // 0 = marking disabled
  bool busy_ = false;

  std::unique_ptr<PortAgent> agent_;
  FaultInjector* fault_ = nullptr;

  uint64_t tx_packets_ = 0;
  Bytes tx_bytes_ = 0;
  uint64_t drops_ = 0;
  Bytes dropped_bytes_ = 0;
  Bytes max_queue_bytes_ = 0;
  uint64_t ecn_marks_ = 0;
  TimeNs busy_ns_ = 0;         // cumulative serialization time
  TimeNs busy_since_ = 0;      // start of the in-progress serialization
  ProfileSite* serialize_site_ = nullptr;  // shared "port.serialize" site

  // Callback-gauge registrations into the network's MetricRegistry (made at
  // Connect time). Keep last: gauges capture `this`.
  ScopedMetrics metrics_;
};

}  // namespace tfc

#endif  // SRC_NET_PORT_H_
