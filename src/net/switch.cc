#include "src/net/switch.h"

#include "src/net/network.h"

namespace tfc {

Switch::Switch(Network* network, int id, std::string name)
    : Node(network, id, std::move(name)) {}

void Switch::Receive(PacketPtr pkt, Port* ingress) {
  // Give the ingress port's agent (the data-direction egress logic of that
  // port) a chance to intercept reverse-path packets — TFC delays RMA ACKs
  // whose carried window is below one MSS here.
  if (ingress->agent() != nullptr) {
    if (!ingress->agent()->OnReverse(pkt)) {
      return;  // agent took ownership and will call Forward() later
    }
  }
  Forward(std::move(pkt));
}

namespace {

// Deterministic per-switch flow-id mix: without the switch-id salt every
// tier would make the same choice for a flow and multi-stage topologies
// would only ever use the "diagonal" paths (the classic ECMP hash
// correlation problem; real switches salt their hash the same way).
inline size_t EcmpIndex(int flow_id, int switch_id, size_t choices) {
  uint64_t mixed = static_cast<uint64_t>(flow_id) * 0x9e3779b97f4a7c15ull;
  mixed ^= static_cast<uint64_t>(switch_id) * 0xc2b2ae3d27d4eb4full;
  mixed ^= mixed >> 29;
  mixed *= 0xbf58476d1ce4e5b9ull;
  return static_cast<size_t>((mixed >> 32) % choices);
}

}  // namespace

void Switch::Forward(PacketPtr pkt) {
  const size_t dest = static_cast<size_t>(pkt->dst);
  if (dest >= next_hops_.size() || next_hops_[dest].empty()) {
    ++unroutable_;
    return;
  }
  const auto& choices = next_hops_[dest];
  Port* out = choices.size() == 1
                  ? choices.front()
                  : choices[EcmpIndex(pkt->flow_id, id(), choices.size())];
  out->Enqueue(std::move(pkt));
}

}  // namespace tfc
