// DCTCP sender (Alizadeh et al., SIGCOMM 2010) — the paper's main baseline.
//
// Switch side: ECN marking when the instantaneous queue exceeds K (the net
// layer's Port handles this; topologies enable it via
// LinkOptions::ecn_threshold_bytes — K = 32 KB at 1 Gbps per the paper).
// Host side, implemented here:
//   alpha <- (1-g)*alpha + g*F every window, F = fraction of marked bytes
//   cwnd  <- cwnd * (1 - alpha/2), at most once per window, on ECN echo
// Loss behaviour falls back to the inherited NewReno machinery.

#ifndef SRC_DCTCP_DCTCP_H_
#define SRC_DCTCP_DCTCP_H_

#include "src/tcp/tcp.h"

namespace tfc {

struct DctcpConfig {
  TcpConfig tcp;
  double g = 1.0 / 16.0;  // paper's recommended EWMA gain
};

// Recommended marking threshold at 1 Gbps (paper Sec. 6.1.1: K = 32 KB).
inline constexpr uint64_t kDctcpMarkingThreshold1G = 32 * 1024;
// Scaled threshold used in the 10 Gbps large-scale simulations.
inline constexpr uint64_t kDctcpMarkingThreshold10G = 100 * 1024;

class DctcpSender : public TcpSender {
 public:
  DctcpSender(Network* network, Host* local, Host* remote, const DctcpConfig& config);

  double alpha() const { return alpha_; }

 protected:
  bool EcnCapable() const override { return true; }
  void OnAckedData(const Packet& ack, Bytes newly_acked) override;

 private:
  DctcpConfig config_;
  double alpha_ = 1.0;  // start conservative, as the Linux implementation does
  Bytes acked_window_ = 0;
  Bytes marked_window_ = 0;
  uint64_t alpha_update_seq_ = 0;  // update alpha when snd_una passes this
  uint64_t reduce_end_seq_ = 0;    // at most one reduction per window
};

}  // namespace tfc

#endif  // SRC_DCTCP_DCTCP_H_
