#include "src/dctcp/dctcp.h"

#include <algorithm>

namespace tfc {

DctcpSender::DctcpSender(Network* network, Host* local, Host* remote, const DctcpConfig& config)
    : TcpSender(network, local, remote, config.tcp), config_(config) {
  metrics_.AddCallbackGauge(metric_prefix() + ".alpha", [this] { return alpha_; });
}

void DctcpSender::OnAckedData(const Packet& ack, Bytes newly_acked) {
  acked_window_ += newly_acked;
  if (ack.ecn_echo) {
    marked_window_ += newly_acked;
    // React once per window of data.
    if (acked_bytes() > reduce_end_seq_) {
      const double reduced = cwnd_bytes() * (1.0 - alpha_ / 2.0);
      set_cwnd(reduced);
      set_ssthresh(std::max(reduced, 2.0 * mss()));
      reduce_end_seq_ = acked_bytes() + static_cast<uint64_t>(inflight_bytes().count());
    }
  } else {
    // Unmarked progress grows the window exactly like TCP.
    GrowWindow(newly_acked);
  }

  if (acked_bytes() > alpha_update_seq_) {
    const double f =
        acked_window_ > 0
            ? static_cast<double>(marked_window_.count()) / static_cast<double>(acked_window_.count())
            : 0.0;
    alpha_ = (1.0 - config_.g) * alpha_ + config_.g * f;
    acked_window_ = 0;
    marked_window_ = 0;
    alpha_update_seq_ = acked_bytes() + static_cast<uint64_t>(inflight_bytes().count());
  }
}

}  // namespace tfc
