// Minimal mock of the std surface tools/astlint.py inspects. Fixture TUs
// are parsed with -nostdinc/-nostdinc++ so they are hermetic (no dependence
// on whatever system headers the analyzing machine has) and fast; this
// header provides just enough of the real declarations for the analyzer's
// canonical-type and namespace-ancestry checks to behave as they do against
// the real standard library. Keep it free of rule violations: findings in
// this header would leak into every fixture's golden file.

#ifndef TESTS_ASTLINT_FIXTURES_STD_MOCK_H_
#define TESTS_ASTLINT_FIXTURES_STD_MOCK_H_

#define assert(expr) ((void)0)

// Global-namespace C entry points (the analyzer accepts both ::rand and
// std::rand spellings).
long time(long*);
int rand();
struct timeval {
  long tv_sec;
  long tv_usec;
};
int gettimeofday(timeval*, void*);

namespace std {

using size_t = unsigned long;
using time_t = long;

template <class T>
struct allocator {};
template <class T>
struct less {};
template <class T>
struct hash {};
template <class T>
struct equal_to {};

template <class K, class V>
struct pair {
  K first;
  V second;
};

template <class T>
struct mock_iterator {
  T* p = nullptr;
  T& operator*() const { return *p; }
  mock_iterator& operator++() { return *this; }
  bool operator!=(const mock_iterator& o) const { return p != o.p; }
};

template <class K, class V, class H = hash<K>, class E = equal_to<K>,
          class A = allocator<pair<const K, V>>>
class unordered_map {
 public:
  using value_type = pair<const K, V>;
  using iterator = mock_iterator<value_type>;
  using const_iterator = mock_iterator<value_type>;
  iterator begin() { return {}; }
  iterator end() { return {}; }
  const_iterator begin() const { return {}; }
  const_iterator end() const { return {}; }
  iterator find(const K&) { return {}; }
  const_iterator find(const K&) const { return {}; }
  size_t count(const K&) const { return 0; }
  V& operator[](const K&);
};

template <class K, class H = hash<K>, class E = equal_to<K>,
          class A = allocator<K>>
class unordered_set {
 public:
  using value_type = K;
  using iterator = mock_iterator<K>;
  using const_iterator = mock_iterator<K>;
  iterator begin() { return {}; }
  iterator end() { return {}; }
  const_iterator begin() const { return {}; }
  const_iterator end() const { return {}; }
  iterator find(const K&) { return {}; }
  size_t count(const K&) const { return 0; }
};

template <class K, class V, class C = less<K>,
          class A = allocator<pair<const K, V>>>
class map {
 public:
  using value_type = pair<const K, V>;
  using iterator = mock_iterator<value_type>;
  using const_iterator = mock_iterator<value_type>;
  iterator begin() { return {}; }
  iterator end() { return {}; }
  const_iterator begin() const { return {}; }
  const_iterator end() const { return {}; }
  iterator find(const K&) { return {}; }
  const_iterator find(const K&) const { return {}; }
  size_t count(const K&) const { return 0; }
  V& operator[](const K&);
};

template <class K, class C = less<K>, class A = allocator<K>>
class set {
 public:
  using value_type = K;
  using iterator = mock_iterator<K>;
  iterator begin() { return {}; }
  iterator end() { return {}; }
  size_t count(const K&) const { return 0; }
};

template <class T, class C = less<T>>
class priority_queue {
 public:
  void push(const T&);
  const T& top() const;
  void pop();
};

template <class T, class A = allocator<T>>
class vector {
 public:
  using iterator = mock_iterator<T>;
  iterator begin() { return {}; }
  iterator end() { return {}; }
  void push_back(const T&);
  void reserve(size_t);
  void resize(size_t);
  T& operator[](size_t);
  size_t size() const { return 0; }
};

namespace chrono {

struct mock_duration {
  long ticks = 0;
  long count() const { return ticks; }
  mock_duration operator-(const mock_duration& o) const {
    return {ticks - o.ticks};
  }
};

struct steady_clock {
  using time_point = mock_duration;
  static time_point now();
};
struct system_clock {
  using time_point = mock_duration;
  static time_point now();
};
struct high_resolution_clock {
  using time_point = mock_duration;
  static time_point now();
};

}  // namespace chrono

class random_device {
 public:
  unsigned operator()();
};

class mt19937 {
 public:
  explicit mt19937(unsigned seed);
  unsigned operator()();
};

time_t time(time_t*);
int rand();
void srand(unsigned);

struct ostream {
  ostream& put(char c);
  ostream& write(const char* s, size_t n);
};
extern ostream cout;
extern ostream cerr;

template <class C>
class basic_ofstream {
 public:
  void open(const char* path);
  void close();
};
using ofstream = basic_ofstream<char>;

int printf(const char*, ...);
int fprintf(void*, const char*, ...);

}  // namespace std

#endif  // TESTS_ASTLINT_FIXTURES_STD_MOCK_H_
