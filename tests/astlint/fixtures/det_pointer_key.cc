// Seeded violations for the det-pointer-key rule: containers keyed or
// ordered by raw pointer value order entries by heap address, which varies
// across ASLR runs. Pointer *values* (mapped-to) are fine. Golden:
// det_pointer_key.expected.

#include "std_mock.h"

namespace tfc {

struct Port {
  int id = 0;
};

class FaultMap {
 private:
  std::map<Port*, int> by_port_;          // VIOLATION det-pointer-key
  std::unordered_set<const Port*> seen_;  // VIOLATION det-pointer-key
  std::map<int, Port*> by_id_;            // clean: int key, pointer value
};

using PortQueue = std::priority_queue<Port*>;  // VIOLATION det-pointer-key

void Local() {
  std::set<Port*> pending;  // VIOLATION det-pointer-key
  (void)pending;
}

}  // namespace tfc
