// Seeded violation for the bare-assert rule: an assert() macro
// instantiation (found via the preprocessing record, not regex) must be
// TFC_CHECK / TFC_DCHECK instead. Golden: bare_assert.expected.

#include "std_mock.h"

namespace tfc {

int Checked(int credits) {
  assert(credits >= 0);  // VIOLATION bare-assert
  return credits;
}

}  // namespace tfc
