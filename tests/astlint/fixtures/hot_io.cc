// Seeded violations for the hot-io rule: stream/printf I/O referenced from
// a hot layer. Golden: hot_io.expected.

#include "std_mock.h"

namespace tfc {

void Narrate(long now) {
  std::printf("t=%ld\n", now);  // VIOLATION hot-io
}

class Dumper {
 public:
  void Open() { out_.open("dump.txt"); }  // clean: uses, doesn't declare

 private:
  std::ofstream out_;  // VIOLATION hot-io (stream member in hot layer)
};

void Stream() {
  std::cout.put('x');  // VIOLATION hot-io
}

}  // namespace tfc
