// Seeded violations for the recorder-hot rule: the hot scopes are resolved
// from the actual FunctionDecls (class-qualified names), so same-named
// methods outside the catalogue — and cold methods like Arm() — stay clean.
// Golden: recorder_hot.expected.

#include "std_mock.h"

namespace tfc {

class TimeSeriesRecorder {
 public:
  void Tick(long now) {
    auto it = cells_.find(now);  // VIOLATION recorder-hot (lookup per event)
    (void)it;
    total_ += now;
  }

  void AppendTo(long v) {
    buf_[0] = v;  // clean: indexed store into a pre-sized buffer
  }

  void Arm() {
    auto it = cells_.find(0);  // clean: Arm() is the sanctioned cold setup
    (void)it;
  }

 private:
  std::map<long, long> cells_;
  long total_ = 0;
  long buf_[8] = {};
};

class FlightRecorder {
 public:
  void Record(long v) {
    ring_.push_back(v);      // VIOLATION recorder-hot (growth in append path)
    long* p = new long(v);   // VIOLATION recorder-hot (allocation per event)
    delete p;
  }

 private:
  std::vector<long> ring_;
};

}  // namespace tfc
