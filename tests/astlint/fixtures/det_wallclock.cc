// Seeded violations for the det-wallclock rule: every ambient time/entropy
// source in a deterministic layer must be flagged; the seeded generator at
// the bottom must not. Golden: det_wallclock.expected.

#include "std_mock.h"

namespace tfc {

long WallSeconds() {
  return std::time(nullptr);  // VIOLATION det-wallclock
}

int AmbientEntropy() {
  std::random_device rd;  // VIOLATION det-wallclock
  return static_cast<int>(rd());
}

long MonotonicNow() {
  return std::chrono::steady_clock::now().count();  // VIOLATION det-wallclock
}

int LibcRand() {
  return rand();  // VIOLATION det-wallclock (global-namespace spelling)
}

int SeededDraw(std::mt19937& rng) {
  return static_cast<int>(rng());  // clean: seeded generator is the contract
}

}  // namespace tfc
