// Clean control: deterministic idioms the analyzer must NOT flag — ordered
// traversal, keyed lookup, seeded randomness. Golden: clean_control.expected
// (empty).

#include "std_mock.h"

namespace tfc {

class Scheduler {
 public:
  long DrainUntil(long deadline) {
    long processed = 0;
    for (const auto& kv : queue_) {  // clean: std::map iterates in key order
      if (kv.first > deadline) {
        break;
      }
      ++processed;
    }
    return processed;
  }

  bool Pending(long t) const {
    return queue_.count(t) != 0;  // clean: keyed lookup
  }

 private:
  std::map<long, int> queue_;
};

int Draw(std::mt19937& rng) {
  return static_cast<int>(rng());  // clean: seeded generator
}

}  // namespace tfc
