// Seeded violations for the det-unordered-iter rule: traversing an
// unordered container leaks hash-salt order; keyed lookup and ordered
// traversal stay clean. Golden: det_unordered_iter.expected.

#include "std_mock.h"

namespace tfc {

class FlowTable {
 public:
  long Sum() {
    long total = 0;
    for (const auto& kv : flows_) {  // VIOLATION det-unordered-iter
      total += kv.second;
    }
    return total;
  }

  long SumOrdered() {
    long total = 0;
    for (const auto& kv : ordered_) {  // clean: std::map iterates sorted
      total += kv.second;
    }
    return total;
  }

  bool Has(int id) const {
    return flows_.count(id) != 0;  // clean: keyed lookup, no traversal
  }

  auto First() {
    return members_.begin();  // VIOLATION det-unordered-iter
  }

 private:
  std::unordered_map<int, long> flows_;
  std::map<int, long> ordered_;
  std::unordered_set<int> members_;
};

}  // namespace tfc
