// Telemetry layer tests: registry mechanics (ownership, collisions, audit),
// histogram bucket math, recorder cadence/drain semantics, and the run
// exporter's JSON formats (round-tripped through the schema the files
// promise in docs/observability.md).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/audit.h"
#include "src/sim/profile.h"
#include "src/sim/scheduler.h"
#include "src/sim/telemetry.h"

namespace tfc {
namespace {

// --- MetricRegistry ---------------------------------------------------------

TEST(MetricRegistryTest, CountersGaugesAndCallbacksReadBack) {
  MetricRegistry registry;
  Counter* c = registry.AddCounter("c");
  Gauge* g = registry.AddGauge("g");
  double source = 7.5;
  registry.AddCallbackGauge("cb", [&source] { return source; });

  c->Add();
  c->Add(41);
  g->Set(-2.25);

  double v = 0;
  ASSERT_TRUE(registry.Read("c", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
  ASSERT_TRUE(registry.Read("g", &v));
  EXPECT_DOUBLE_EQ(v, -2.25);
  ASSERT_TRUE(registry.Read("cb", &v));
  EXPECT_DOUBLE_EQ(v, 7.5);
  source = 8.5;
  ASSERT_TRUE(registry.Read("cb", &v));
  EXPECT_DOUBLE_EQ(v, 8.5);

  EXPECT_FALSE(registry.Read("missing", &v));
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_TRUE(registry.Has("c"));
  registry.Unregister("c");
  EXPECT_FALSE(registry.Has("c"));
}

TEST(MetricRegistryTest, ForEachNameVisitsInNameOrder) {
  MetricRegistry registry;
  registry.AddGauge("z");
  registry.AddCounter("a");
  registry.AddHistogram("m");

  std::vector<std::string> names;
  std::vector<MetricKind> kinds;
  registry.ForEachName([&](const std::string& name, MetricKind kind) {
    names.push_back(name);
    kinds.push_back(kind);
  });
  EXPECT_EQ(names, (std::vector<std::string>{"a", "m", "z"}));
  EXPECT_EQ(kinds[0], MetricKind::kCounter);
  EXPECT_EQ(kinds[1], MetricKind::kHistogram);
  EXPECT_EQ(kinds[2], MetricKind::kGauge);
}

TEST(MetricRegistryDeathTest, DuplicateNameAborts) {
  MetricRegistry registry;
  registry.AddCounter("dup");
  EXPECT_DEATH(registry.AddCounter("dup"), "duplicate metric name: dup");
  // Across kinds too: a gauge cannot shadow a counter.
  EXPECT_DEATH(registry.AddGauge("dup"), "duplicate metric name: dup");
}

TEST(ScopedMetricsTest, UnregistersOnDestructionAndReset) {
  MetricRegistry registry;
  {
    ScopedMetrics scoped(&registry);
    scoped.AddCounter("s.c");
    scoped.AddGauge("s.g");
    EXPECT_EQ(registry.size(), 2u);
    scoped.Reset(&registry);  // rebind unregisters previous names
    EXPECT_EQ(registry.size(), 0u);
    scoped.AddHistogram("s.h");
    EXPECT_EQ(registry.size(), 1u);
  }
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ScopedMetricsTest, ReplaceOnCollisionHandsOverOwnership) {
  MetricRegistry registry;
  ScopedMetrics first(&registry);
  Counter* c1 = first.AddCounter("shared");
  c1->Add(5);

  ScopedMetrics second(&registry);
  second.set_replace_on_collision(true);
  Counter* c2 = second.AddCounter("shared");
  EXPECT_EQ(c2->value(), 0u);  // fresh metric, not the displaced one's 5
  c2->Add(1);
  double v = 0;
  ASSERT_TRUE(registry.Read("shared", &v));
  EXPECT_DOUBLE_EQ(v, 1.0);

  // The displaced owner's cleanup must not remove the new owner's entry.
  first.Reset(nullptr);
  EXPECT_TRUE(registry.Has("shared"));
  ASSERT_TRUE(registry.Read("shared", &v));
  EXPECT_DOUBLE_EQ(v, 1.0);

  second.Reset(nullptr);
  EXPECT_FALSE(registry.Has("shared"));
}

TEST(MetricRegistryTest, CounterMonotonicityAudit) {
  MetricRegistry registry;
  Counter* good = registry.AddCounter("good");
  Counter* bad = registry.AddCounter("bad");
  good->Add(10);
  bad->Add(10);

  AuditReport report;
  Auditor auditor(&report);
  registry.AuditInvariants(auditor);
  EXPECT_TRUE(report.ok());

  good->Add(1);          // fine: still monotone
  bad->ResetForTest();   // regression: value went backwards
  AuditReport second;
  Auditor auditor2(&second);
  registry.AuditInvariants(auditor2);
  ASSERT_EQ(second.failures.size(), 1u);
  EXPECT_NE(second.failures[0].detail.find("bad"), std::string::npos);
}

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, SmallValuesAreExactAndBoundariesAreContinuous) {
  // Below kSub (16) every value has its own bucket.
  for (uint64_t v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<int>(v)) << v;
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<int>(v)), v);
  }
  // The 15 -> 16 and 31 -> 32 octave seams: indexes advance by exactly one
  // bucket and lower bounds match the values.
  EXPECT_EQ(Histogram::BucketIndex(16), Histogram::BucketIndex(15) + 1);
  EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(16)), 16u);
  EXPECT_EQ(Histogram::BucketIndex(31), Histogram::BucketIndex(32) - 1);
  EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(32)), 32u);

  // Global continuity: every bucket's upper bound is the next bucket's
  // lower bound, and BucketIndex(lower_bound(b)) == b.
  for (int b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketUpperBound(b), Histogram::BucketLowerBound(b + 1)) << b;
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(b)), b) << b;
  }
  // Boundary values land in the bucket they open, one less in the previous.
  for (uint64_t v : {16ull, 32ull, 1024ull, 1ull << 40}) {
    EXPECT_EQ(Histogram::BucketIndex(v - 1) + 1, Histogram::BucketIndex(v)) << v;
    EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(v)), v) << v;
  }
}

TEST(HistogramTest, RecordAndSummaryStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500'500u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);

  // Log-linear percentiles are upper bounds within one sub-bucket (6.25%).
  EXPECT_GE(h.Percentile(50), 500u);
  EXPECT_LE(h.Percentile(50), 532u);
  EXPECT_GE(h.Percentile(99), 990u);
  EXPECT_LE(h.Percentile(99), 1000u);  // clamped to observed max
  EXPECT_EQ(h.Percentile(100), 1000u);
  EXPECT_EQ(h.Percentile(0), 1u);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0u);
}

// --- TimeSeriesRecorder -----------------------------------------------------

TEST(TimeSeriesRecorderTest, SamplesOnCadenceWithoutPerturbingPending) {
  Scheduler sched;
  MetricRegistry registry;
  Gauge* g = registry.AddGauge("g");

  TimeSeriesRecorder recorder(&sched, &registry);
  recorder.Watch("g");
  recorder.Start(Microseconds(10));

  // The armed daemon tick is invisible to user-event accounting.
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_EQ(sched.daemon_pending(), 1u);

  // A user event ramps the gauge; drain-mode Run() must return even though
  // the recorder would re-arm forever.
  sched.ScheduleAt(Microseconds(25), [g] { g->Set(1.0); });
  sched.Run();
  EXPECT_EQ(sched.pending(), 0u);

  // Ticks at t=0, 10us, 20us fired before the queue drained (the 25us user
  // event kept the 20us tick eligible; the re-armed 30us tick did not run).
  std::vector<TimeSeriesRecorder::Sample> s = recorder.Series("g");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].t, 0);
  EXPECT_EQ(s[1].t, Microseconds(10));
  EXPECT_EQ(s[2].t, Microseconds(20));
  EXPECT_DOUBLE_EQ(s[2].v, 0.0);  // gauge set at 25us, after the 20us tick

  recorder.Stop();
  EXPECT_EQ(sched.daemon_pending(), 0u);
  EXPECT_FALSE(recorder.running());
}

TEST(TimeSeriesRecorderTest, FirstDelayAndRestartRepace) {
  Scheduler sched;
  MetricRegistry registry;
  Gauge* g = registry.AddGauge("g");
  g->Set(3.0);

  TimeSeriesRecorder recorder(&sched, &registry);
  recorder.Watch("g");
  recorder.Start(Microseconds(10), /*first_delay=*/Microseconds(5));
  sched.ScheduleAt(Microseconds(16), [] {});
  sched.Run();
  std::vector<TimeSeriesRecorder::Sample> s = recorder.Series("g");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].t, Microseconds(5));
  EXPECT_EQ(s[1].t, Microseconds(15));

  // Restart re-paces from "now" with the new period.
  recorder.Start(Microseconds(2));
  sched.ScheduleAt(Microseconds(21), [] {});
  sched.Run();
  s = recorder.Series("g");
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[2].t, Microseconds(16));
  EXPECT_EQ(s[3].t, Microseconds(18));
  EXPECT_EQ(s[4].t, Microseconds(20));
  EXPECT_EQ(recorder.ticks(), 5u);
}

TEST(TimeSeriesRecorderTest, PrefixWatchPicksUpLateMetrics) {
  Scheduler sched;
  MetricRegistry registry;
  registry.AddGauge("app.early")->Set(1.0);

  TimeSeriesRecorder recorder(&sched, &registry);
  recorder.WatchPrefix("app.");
  recorder.Start(Microseconds(10));
  sched.ScheduleAt(Microseconds(15), [&registry] {
    registry.AddGauge("app.late")->Set(2.0);
  });
  sched.ScheduleAt(Microseconds(21), [] {});
  sched.Run();

  EXPECT_EQ(recorder.Series("app.early").size(), 3u);  // t=0,10,20
  std::vector<TimeSeriesRecorder::Sample> late = recorder.Series("app.late");
  ASSERT_EQ(late.size(), 1u);  // only the t=20us tick saw it
  EXPECT_EQ(late[0].t, Microseconds(20));
  EXPECT_EQ(recorder.SeriesNames(),
            (std::vector<std::string>{"app.early", "app.late"}));
}

TEST(TimeSeriesRecorderTest, RingCapKeepsNewestAndCountsDrops) {
  Scheduler sched;
  MetricRegistry registry;
  uint64_t n = 0;
  registry.AddCallbackGauge("n", [&n] { return static_cast<double>(n++); });

  TimeSeriesRecorder recorder(&sched, &registry);
  recorder.Watch("n");
  recorder.set_max_samples_per_series(3);
  recorder.Start(Microseconds(1));
  sched.ScheduleAt(Microseconds(9), [] {});
  sched.Run();
  // Ticks fire at 0..8us (at t=9 the user event pops first on FIFO order,
  // after which only the re-armed daemon remains and drain mode stops):
  // 9 samples through a 3-deep ring keeps the newest 3.
  std::vector<TimeSeriesRecorder::Sample> s = recorder.Series("n");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].t, Microseconds(6));
  EXPECT_EQ(s[2].t, Microseconds(8));
  EXPECT_DOUBLE_EQ(s[2].v, 8.0);
  EXPECT_EQ(recorder.dropped_samples(), 6u);
}

// --- Exporter ---------------------------------------------------------------

std::string Slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(ExporterTest, JsonEscapeAndNumber) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("tab\there\n"), "tab\\there\\n");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");

  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  EXPECT_EQ(JsonNumber(2.5), "2.5");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(ExporterTest, RunDirectoryGoldenRoundTrip) {
  Scheduler sched;
  MetricRegistry registry;
  Profiler profiler(&registry);
  registry.AddCounter("events")->Add(3);
  Gauge* q = registry.AddGauge("queue");
  Histogram* h = registry.AddHistogram("fct_us");
  h->Record(10);
  h->Record(20);
  ProfileSite* site = profiler.Site("test.site");
  site->Hit();
  site->AddSim(50);

  TimeSeriesRecorder recorder(&sched, &registry);
  recorder.Watch("queue");
  recorder.Start(Microseconds(10));
  sched.ScheduleAt(Microseconds(5), [q] { q->Set(1500.0); });
  sched.ScheduleAt(Microseconds(12), [] {});
  sched.Run();
  recorder.Stop();

  RunManifest manifest;
  manifest.Set("workload", "unit\"test");
  manifest.SetInt("seed", 7);
  manifest.SetDouble("duration_s", 0.5);
  manifest.SetBool("quick", true);

  const std::string dir = testing::TempDir() + "/telemetry_golden";
  std::string error;
  ASSERT_TRUE(WriteRunDirectory(dir, manifest, registry, &recorder, &profiler,
                                &error))
      << error;

  // metrics.jsonl is fully deterministic: golden-compare it whole.
  EXPECT_EQ(Slurp(dir + "/metrics.jsonl"),
            "{\"t_ns\": 0, \"name\": \"queue\", \"v\": 0}\n"
            "{\"t_ns\": 10000, \"name\": \"queue\", \"v\": 1500}\n");

  // The manifest carries the verbatim run section (with escaping) plus the
  // exporter's own provenance keys.
  const std::string manifest_text = Slurp(dir + "/manifest.json");
  EXPECT_NE(manifest_text.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(manifest_text.find("\"git_describe\": "), std::string::npos);
  EXPECT_NE(manifest_text.find("\"workload\": \"unit\\\"test\""), std::string::npos);
  EXPECT_NE(manifest_text.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(manifest_text.find("\"duration_s\": 0.5"), std::string::npos);
  EXPECT_NE(manifest_text.find("\"quick\": true"), std::string::npos);

  // summary.json: every metric's final value, histogram stats with sparse
  // buckets, and the profiler site.
  const std::string summary = Slurp(dir + "/summary.json");
  EXPECT_NE(summary.find("\"events\": 3"), std::string::npos);
  EXPECT_NE(summary.find("\"queue\": 1500"), std::string::npos);
  EXPECT_NE(summary.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(summary.find("\"buckets\": [[10, 11, 1], [20, 21, 1]]"),
            std::string::npos);
  EXPECT_NE(summary.find("\"test.site\": {\"hits\": 1, \"sim_ns\": 50, "
                         "\"wall_ns\": 0}"),
            std::string::npos);
}

TEST(ExporterTest, WriteFailureReportsError) {
  MetricRegistry registry;
  RunManifest manifest;
  std::string error;
  EXPECT_FALSE(WriteRunDirectory("/proc/definitely/not/writable", manifest,
                                 registry, nullptr, nullptr, &error));
  EXPECT_FALSE(error.empty());
}

// --- Profiler ---------------------------------------------------------------

TEST(ProfilerTest, SitesRegisterGaugesAndScopeCounts) {
  MetricRegistry registry;
  Profiler profiler(&registry);
  ProfileSite* site = profiler.Site("x.y");
  EXPECT_EQ(profiler.Site("x.y"), site);  // get-or-create
  EXPECT_EQ(profiler.site_count(), 1u);

  {
    ProfileScope scope(&profiler, site);
  }
  {
    ProfileScope scope(&profiler, site);
  }
  EXPECT_EQ(site->hits(), 2u);

  double v = 0;
  ASSERT_TRUE(registry.Read("profile.x.y.hits", &v));
  EXPECT_DOUBLE_EQ(v, 2.0);
  ASSERT_TRUE(registry.Read("profile.x.y.wall_ns", &v));
  ASSERT_TRUE(registry.Read("profile.x.y.sim_ns", &v));

  // Disabled profiler (the default unless TFC_PROFILE is set): hits count,
  // wall clock is never read.
  if (!profiler.enabled()) {
    EXPECT_EQ(site->wall_ns(), 0u);
  }

  // Null-safe: a scope on a component with no profiler wired is a no-op.
  ProfileScope inert(nullptr, nullptr);
}

}  // namespace
}  // namespace tfc
