// Telemetry layer tests: registry mechanics (ownership, collisions, audit),
// histogram bucket math, recorder cadence/drain semantics, and the run
// exporter's JSON formats (round-tripped through the schema the files
// promise in docs/observability.md).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/audit.h"
#include "src/sim/profile.h"
#include "src/sim/scheduler.h"
#include "src/sim/telemetry.h"

namespace tfc {
namespace {

// --- MetricRegistry ---------------------------------------------------------

TEST(MetricRegistryTest, CountersGaugesAndCallbacksReadBack) {
  MetricRegistry registry;
  Counter* c = registry.AddCounter("c");
  Gauge* g = registry.AddGauge("g");
  double source = 7.5;
  registry.AddCallbackGauge("cb", [&source] { return source; });

  c->Add();
  c->Add(41);
  g->Set(-2.25);

  double v = 0;
  ASSERT_TRUE(registry.Read("c", &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
  ASSERT_TRUE(registry.Read("g", &v));
  EXPECT_DOUBLE_EQ(v, -2.25);
  ASSERT_TRUE(registry.Read("cb", &v));
  EXPECT_DOUBLE_EQ(v, 7.5);
  source = 8.5;
  ASSERT_TRUE(registry.Read("cb", &v));
  EXPECT_DOUBLE_EQ(v, 8.5);

  EXPECT_FALSE(registry.Read("missing", &v));
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_TRUE(registry.Has("c"));
  registry.Unregister("c");
  EXPECT_FALSE(registry.Has("c"));
}

TEST(MetricRegistryTest, ForEachNameVisitsInNameOrder) {
  MetricRegistry registry;
  registry.AddGauge("z");
  registry.AddCounter("a");
  registry.AddHistogram("m");

  std::vector<std::string> names;
  std::vector<MetricKind> kinds;
  registry.ForEachName([&](const std::string& name, MetricKind kind) {
    names.push_back(name);
    kinds.push_back(kind);
  });
  EXPECT_EQ(names, (std::vector<std::string>{"a", "m", "z"}));
  EXPECT_EQ(kinds[0], MetricKind::kCounter);
  EXPECT_EQ(kinds[1], MetricKind::kHistogram);
  EXPECT_EQ(kinds[2], MetricKind::kGauge);
}

TEST(MetricRegistryDeathTest, DuplicateNameAborts) {
  MetricRegistry registry;
  registry.AddCounter("dup");
  EXPECT_DEATH(registry.AddCounter("dup"), "duplicate metric name: dup");
  // Across kinds too: a gauge cannot shadow a counter.
  EXPECT_DEATH(registry.AddGauge("dup"), "duplicate metric name: dup");
}

TEST(ScopedMetricsTest, UnregistersOnDestructionAndReset) {
  MetricRegistry registry;
  {
    ScopedMetrics scoped(&registry);
    scoped.AddCounter("s.c");
    scoped.AddGauge("s.g");
    EXPECT_EQ(registry.size(), 2u);
    scoped.Reset(&registry);  // rebind unregisters previous names
    EXPECT_EQ(registry.size(), 0u);
    scoped.AddHistogram("s.h");
    EXPECT_EQ(registry.size(), 1u);
  }
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ScopedMetricsTest, ReplaceOnCollisionHandsOverOwnership) {
  MetricRegistry registry;
  ScopedMetrics first(&registry);
  Counter* c1 = first.AddCounter("shared");
  c1->Add(5);

  ScopedMetrics second(&registry);
  second.set_replace_on_collision(true);
  Counter* c2 = second.AddCounter("shared");
  EXPECT_EQ(c2->value(), 0u);  // fresh metric, not the displaced one's 5
  c2->Add(1);
  double v = 0;
  ASSERT_TRUE(registry.Read("shared", &v));
  EXPECT_DOUBLE_EQ(v, 1.0);

  // The displaced owner's cleanup must not remove the new owner's entry.
  first.Reset(nullptr);
  EXPECT_TRUE(registry.Has("shared"));
  ASSERT_TRUE(registry.Read("shared", &v));
  EXPECT_DOUBLE_EQ(v, 1.0);

  second.Reset(nullptr);
  EXPECT_FALSE(registry.Has("shared"));
}

TEST(MetricRegistryTest, IdIndexedReadsAndGenerationTracking) {
  MetricRegistry registry;
  const uint64_t gen0 = registry.generation();
  Counter* c = registry.AddCounter("c");
  registry.AddHistogram("h");
  EXPECT_GT(registry.generation(), gen0);  // registration bumps

  const MetricId c_id = registry.IdOf("c");
  const MetricId h_id = registry.IdOf("h");
  ASSERT_NE(c_id, kInvalidMetricId);
  EXPECT_EQ(registry.IdOf("missing"), kInvalidMetricId);
  EXPECT_EQ(registry.KindOfId(c_id), MetricKind::kCounter);

  c->Add(42);
  double v = 0;
  ASSERT_TRUE(registry.ReadId(c_id, &v));
  EXPECT_DOUBLE_EQ(v, 42.0);
  EXPECT_FALSE(registry.ReadId(h_id, &v));  // histograms are not scalars
  EXPECT_EQ(registry.FindHistogram(h_id), registry.FindHistogram("h"));
  EXPECT_EQ(registry.FindHistogram(c_id), nullptr);

  // Unregister frees the slot (reads fail) and bumps the generation; a
  // later registration may reuse the id, which is why consumers re-resolve
  // on generation change.
  const uint64_t gen1 = registry.generation();
  registry.Unregister("c");
  EXPECT_GT(registry.generation(), gen1);
  EXPECT_FALSE(registry.ReadId(c_id, &v));
  registry.AddGauge("g2")->Set(5.0);
  EXPECT_EQ(registry.IdOf("g2"), c_id);  // freed id reused
  ASSERT_TRUE(registry.ReadId(c_id, &v));
  EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(MetricRegistryTest, CounterMonotonicityAudit) {
  MetricRegistry registry;
  Counter* good = registry.AddCounter("good");
  Counter* bad = registry.AddCounter("bad");
  good->Add(10);
  bad->Add(10);

  AuditReport report;
  Auditor auditor(&report);
  registry.AuditInvariants(auditor);
  EXPECT_TRUE(report.ok());

  good->Add(1);          // fine: still monotone
  bad->ResetForTest();   // regression: value went backwards
  AuditReport second;
  Auditor auditor2(&second);
  registry.AuditInvariants(auditor2);
  ASSERT_EQ(second.failures.size(), 1u);
  EXPECT_NE(second.failures[0].detail.find("bad"), std::string::npos);
}

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, SmallValuesAreExactAndBoundariesAreContinuous) {
  // Below kSub (16) every value has its own bucket.
  for (uint64_t v = 0; v < Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<int>(v)) << v;
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<int>(v)), v);
  }
  // The 15 -> 16 and 31 -> 32 octave seams: indexes advance by exactly one
  // bucket and lower bounds match the values.
  EXPECT_EQ(Histogram::BucketIndex(16), Histogram::BucketIndex(15) + 1);
  EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(16)), 16u);
  EXPECT_EQ(Histogram::BucketIndex(31), Histogram::BucketIndex(32) - 1);
  EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(32)), 32u);

  // Global continuity: every bucket's upper bound is the next bucket's
  // lower bound, and BucketIndex(lower_bound(b)) == b.
  for (int b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketUpperBound(b), Histogram::BucketLowerBound(b + 1)) << b;
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(b)), b) << b;
  }
  // Boundary values land in the bucket they open, one less in the previous.
  for (uint64_t v : {16ull, 32ull, 1024ull, 1ull << 40}) {
    EXPECT_EQ(Histogram::BucketIndex(v - 1) + 1, Histogram::BucketIndex(v)) << v;
    EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(v)), v) << v;
  }
}

TEST(HistogramTest, RecordAndSummaryStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500'500u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);

  // Log-linear percentiles are upper bounds within one sub-bucket (6.25%).
  EXPECT_GE(h.Percentile(50), 500u);
  EXPECT_LE(h.Percentile(50), 532u);
  EXPECT_GE(h.Percentile(99), 990u);
  EXPECT_LE(h.Percentile(99), 1000u);  // clamped to observed max
  EXPECT_EQ(h.Percentile(100), 1000u);
  EXPECT_EQ(h.Percentile(0), 1u);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0u);
}

// --- TimeSeriesRecorder -----------------------------------------------------

TEST(TimeSeriesRecorderTest, SamplesOnCadenceWithoutPerturbingPending) {
  Scheduler sched;
  MetricRegistry registry;
  Gauge* g = registry.AddGauge("g");

  TimeSeriesRecorder recorder(&sched, &registry);
  recorder.Watch("g");
  recorder.Start(Microseconds(10));

  // The armed daemon tick is invisible to user-event accounting.
  EXPECT_EQ(sched.pending(), 0u);
  EXPECT_EQ(sched.daemon_pending(), 1u);

  // A user event ramps the gauge; drain-mode Run() must return even though
  // the recorder would re-arm forever.
  sched.ScheduleAt(Microseconds(25), [g] { g->Set(1.0); });
  sched.Run();
  EXPECT_EQ(sched.pending(), 0u);

  // Ticks at t=0, 10us, 20us fired before the queue drained (the 25us user
  // event kept the 20us tick eligible; the re-armed 30us tick did not run).
  std::vector<TimeSeriesRecorder::Sample> s = recorder.Series("g");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].t, 0);
  EXPECT_EQ(s[1].t, Microseconds(10));
  EXPECT_EQ(s[2].t, Microseconds(20));
  EXPECT_DOUBLE_EQ(s[2].v, 0.0);  // gauge set at 25us, after the 20us tick

  recorder.Stop();
  EXPECT_EQ(sched.daemon_pending(), 0u);
  EXPECT_FALSE(recorder.running());
}

TEST(TimeSeriesRecorderTest, FirstDelayAndRestartRepace) {
  Scheduler sched;
  MetricRegistry registry;
  Gauge* g = registry.AddGauge("g");
  g->Set(3.0);

  TimeSeriesRecorder recorder(&sched, &registry);
  recorder.Watch("g");
  recorder.Start(Microseconds(10), /*first_delay=*/Microseconds(5));
  sched.ScheduleAt(Microseconds(16), [] {});
  sched.Run();
  std::vector<TimeSeriesRecorder::Sample> s = recorder.Series("g");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].t, Microseconds(5));
  EXPECT_EQ(s[1].t, Microseconds(15));

  // Restart re-paces from "now" with the new period.
  recorder.Start(Microseconds(2));
  sched.ScheduleAt(Microseconds(21), [] {});
  sched.Run();
  s = recorder.Series("g");
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s[2].t, Microseconds(16));
  EXPECT_EQ(s[3].t, Microseconds(18));
  EXPECT_EQ(s[4].t, Microseconds(20));
  EXPECT_EQ(recorder.ticks(), 5u);
}

TEST(TimeSeriesRecorderTest, PrefixWatchPicksUpLateMetrics) {
  Scheduler sched;
  MetricRegistry registry;
  registry.AddGauge("app.early")->Set(1.0);

  TimeSeriesRecorder recorder(&sched, &registry);
  recorder.WatchPrefix("app.");
  recorder.Start(Microseconds(10));
  sched.ScheduleAt(Microseconds(15), [&registry] {
    registry.AddGauge("app.late")->Set(2.0);
  });
  sched.ScheduleAt(Microseconds(21), [] {});
  sched.Run();

  EXPECT_EQ(recorder.Series("app.early").size(), 3u);  // t=0,10,20
  std::vector<TimeSeriesRecorder::Sample> late = recorder.Series("app.late");
  ASSERT_EQ(late.size(), 1u);  // only the t=20us tick saw it
  EXPECT_EQ(late[0].t, Microseconds(20));
  EXPECT_EQ(recorder.SeriesNames(),
            (std::vector<std::string>{"app.early", "app.late"}));
}

TEST(TimeSeriesRecorderTest, RingCapKeepsNewestAndCountsDrops) {
  Scheduler sched;
  MetricRegistry registry;
  uint64_t n = 0;
  registry.AddCallbackGauge("n", [&n] { return static_cast<double>(n++); });

  TimeSeriesRecorder recorder(&sched, &registry);
  recorder.Watch("n");
  recorder.set_max_samples_per_series(3);
  recorder.Start(Microseconds(1));
  sched.ScheduleAt(Microseconds(9), [] {});
  sched.Run();
  // Ticks fire at 0..8us (at t=9 the user event pops first on FIFO order,
  // after which only the re-armed daemon remains and drain mode stops):
  // 9 samples through a 3-deep ring keeps the newest 3.
  std::vector<TimeSeriesRecorder::Sample> s = recorder.Series("n");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].t, Microseconds(6));
  EXPECT_EQ(s[2].t, Microseconds(8));
  EXPECT_DOUBLE_EQ(s[2].v, 8.0);
  EXPECT_EQ(recorder.dropped_samples(), 6u);
}

TEST(TimeSeriesRecorderTest, DuplicateWatchRecordsOneSamplePerTick) {
  Scheduler sched;
  MetricRegistry registry;
  registry.AddGauge("g")->Set(1.0);

  TimeSeriesRecorder recorder(&sched, &registry);
  // Redundant watches of every flavor must still record exactly one sample
  // per tick (watches_ used to be an un-deduped vector: each duplicate
  // exact watch appended its own sample).
  recorder.Watch("g");
  recorder.Watch("g");
  recorder.WatchPrefix("g");
  recorder.WatchPrefix("g");
  recorder.Start(Microseconds(10));
  sched.ScheduleAt(Microseconds(21), [] {});
  sched.Run();

  EXPECT_EQ(recorder.Series("g").size(), 3u);  // t=0,10,20 — one each
}

TEST(TimeSeriesRecorderTest, CachedPlanMatchesFreshPlanUnderRegistryChurn) {
  // Two recorders over the same registry: one uses the cached sample plan
  // (rebuilt only on registry-generation change), the reference rebuilds
  // from strings on every tick. ScopedMetrics churn — a component destroyed
  // and replaced mid-run — must leave their series identical.
  Scheduler sched;
  MetricRegistry registry;
  registry.AddGauge("app.stable")->Set(1.0);

  auto churn = std::make_unique<ScopedMetrics>(&registry);
  churn->AddGauge("churn.q")->Set(10.0);

  TimeSeriesRecorder cached(&sched, &registry);
  TimeSeriesRecorder fresh(&sched, &registry);
  fresh.set_replan_every_tick_for_test(true);
  for (TimeSeriesRecorder* r : {&cached, &fresh}) {
    r->Watch("churn.q");
    r->WatchPrefix("app.");
    r->Start(Microseconds(10));
  }

  sched.ScheduleAt(Microseconds(15), [&churn] {
    churn.reset();  // component dies: churn.q and its id disappear
  });
  sched.ScheduleAt(Microseconds(35), [&churn, &registry] {
    // Replacement component re-registers the same name (new id) plus a new
    // prefix-matched metric the next plan must pick up.
    churn = std::make_unique<ScopedMetrics>(&registry);
    churn->AddGauge("churn.q")->Set(20.0);
    churn->AddGauge("app.late")->Set(2.0);
  });
  sched.ScheduleAt(Microseconds(51), [] {});
  sched.Run();

  // Ticks at 0,10,20,30,40,50: churn.q recorded at 0,10 (v=10) and 40,50
  // (v=20); app.late at 40,50; app.stable at every tick.
  std::vector<TimeSeriesRecorder::Sample> q = cached.Series("churn.q");
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q[1].t, Microseconds(10));
  EXPECT_DOUBLE_EQ(q[1].v, 10.0);
  EXPECT_EQ(q[2].t, Microseconds(40));
  EXPECT_DOUBLE_EQ(q[2].v, 20.0);
  EXPECT_EQ(cached.Series("app.late").size(), 2u);
  EXPECT_EQ(cached.Series("app.stable").size(), 6u);

  ASSERT_EQ(cached.SeriesNames(), fresh.SeriesNames());
  for (const std::string& name : cached.SeriesNames()) {
    std::vector<TimeSeriesRecorder::Sample> a = cached.Series(name);
    std::vector<TimeSeriesRecorder::Sample> b = fresh.Series(name);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].t, b[i].t) << name << "[" << i << "]";
      EXPECT_DOUBLE_EQ(a[i].v, b[i].v) << name << "[" << i << "]";
    }
  }
}

// --- Exporter ---------------------------------------------------------------

std::string Slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(ExporterTest, JsonEscapeAndNumber) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("tab\there\n"), "tab\\there\\n");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");

  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  EXPECT_EQ(JsonNumber(2.5), "2.5");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(ExporterTest, RunDirectoryGoldenRoundTrip) {
  Scheduler sched;
  MetricRegistry registry;
  Profiler profiler(&registry);
  registry.AddCounter("events")->Add(3);
  Gauge* q = registry.AddGauge("queue");
  Histogram* h = registry.AddHistogram("fct_us");
  h->Record(10);
  h->Record(20);
  ProfileSite* site = profiler.Site("test.site");
  site->Hit();
  site->AddSim(50);

  TimeSeriesRecorder recorder(&sched, &registry);
  recorder.Watch("queue");
  recorder.Start(Microseconds(10));
  sched.ScheduleAt(Microseconds(5), [q] { q->Set(1500.0); });
  sched.ScheduleAt(Microseconds(12), [] {});
  sched.Run();
  recorder.Stop();

  RunManifest manifest;
  manifest.Set("workload", "unit\"test");
  manifest.SetInt("seed", 7);
  manifest.SetDouble("duration_s", 0.5);
  manifest.SetBool("quick", true);

  const std::string dir = testing::TempDir() + "/telemetry_golden";
  std::string error;
  ASSERT_TRUE(WriteRunDirectory(dir, manifest, registry, &recorder, &profiler,
                                &error))
      << error;

  // The binary spill decodes back to the exact bytes the pre-tfcb JSONL
  // exporter produced: same line format, same number rendering.
  ASSERT_TRUE(ConvertMetricsTfcbToJsonl(dir + "/metrics.tfcb",
                                        dir + "/metrics.jsonl", &error))
      << error;
  EXPECT_EQ(Slurp(dir + "/metrics.jsonl"),
            "{\"t_ns\": 0, \"name\": \"queue\", \"v\": 0}\n"
            "{\"t_ns\": 10000, \"name\": \"queue\", \"v\": 1500}\n");

  // The spill itself: magic + version=1, one series, two records.
  const std::string tfcb = Slurp(dir + "/metrics.tfcb");
  ASSERT_GE(tfcb.size(), 20u);
  EXPECT_EQ(tfcb.substr(0, 4), "TFCB");
  EXPECT_EQ(tfcb.size(), 20u + (4 + 5) + 2 * SpillWriter::kRecordBytes);

  // The manifest carries the verbatim run section (with escaping) plus the
  // exporter's own provenance keys.
  const std::string manifest_text = Slurp(dir + "/manifest.json");
  EXPECT_NE(manifest_text.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(manifest_text.find("\"git_describe\": "), std::string::npos);
  EXPECT_NE(manifest_text.find("\"workload\": \"unit\\\"test\""), std::string::npos);
  EXPECT_NE(manifest_text.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(manifest_text.find("\"duration_s\": 0.5"), std::string::npos);
  EXPECT_NE(manifest_text.find("\"quick\": true"), std::string::npos);

  // summary.json: every metric's final value, histogram stats with sparse
  // buckets, and the profiler site.
  const std::string summary = Slurp(dir + "/summary.json");
  EXPECT_NE(summary.find("\"events\": 3"), std::string::npos);
  EXPECT_NE(summary.find("\"queue\": 1500"), std::string::npos);
  EXPECT_NE(summary.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(summary.find("\"buckets\": [[10, 11, 1], [20, 21, 1]]"),
            std::string::npos);
  EXPECT_NE(summary.find("\"test.site\": {\"hits\": 1, \"sim_ns\": 50, "
                         "\"wall_ns\": 0}"),
            std::string::npos);
}

TEST(ExporterTest, NullRecorderWritesHeaderOnlySpillThatConvertsToEmptyJsonl) {
  MetricRegistry registry;
  RunManifest manifest;
  const std::string dir = testing::TempDir() + "/telemetry_empty";
  std::string error;
  ASSERT_TRUE(WriteRunDirectory(dir, manifest, registry, nullptr, nullptr,
                                &error))
      << error;
  EXPECT_EQ(Slurp(dir + "/metrics.tfcb").size(), 20u);  // header, no payload
  ASSERT_TRUE(ConvertMetricsTfcbToJsonl(dir + "/metrics.tfcb",
                                        dir + "/metrics.jsonl", &error))
      << error;
  EXPECT_EQ(Slurp(dir + "/metrics.jsonl"), "");
}

TEST(ExporterTest, ConverterRejectsMissingAndCorruptSpills) {
  const std::string dir = testing::TempDir() + "/telemetry_corrupt";
  std::string error;
  EXPECT_FALSE(ConvertMetricsTfcbToJsonl(dir + "/nope.tfcb",
                                         dir + "/out.jsonl", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  std::filesystem::create_directories(dir);
  {
    std::ofstream f(dir + "/bad.tfcb", std::ios::binary);
    f << "JUNKJUNKJUNKJUNKJUNK";  // 20 bytes, wrong magic
  }
  EXPECT_FALSE(ConvertMetricsTfcbToJsonl(dir + "/bad.tfcb",
                                         dir + "/out.jsonl", &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos);

  {
    // Valid magic/version but the header promises records that are not
    // there: 1 series, 1 record, then a truncated body.
    std::ofstream f(dir + "/short.tfcb", std::ios::binary);
    const unsigned char header[] = {'T', 'F', 'C', 'B', 1, 0, 0, 0,
                                    1,   0,   0,   0,   1, 0, 0, 0,
                                    0,   0,   0,   0};
    f.write(reinterpret_cast<const char*>(header), sizeof header);
    f << "\x01" << std::string(3, '\0') << "q";  // name table: "q"
  }
  EXPECT_FALSE(ConvertMetricsTfcbToJsonl(dir + "/short.tfcb",
                                         dir + "/out.jsonl", &error));
  EXPECT_NE(error.find("record section"), std::string::npos);
}

TEST(ExporterTest, WriteFailureReportsError) {
  MetricRegistry registry;
  RunManifest manifest;
  std::string error;
  EXPECT_FALSE(WriteRunDirectory("/proc/definitely/not/writable", manifest,
                                 registry, nullptr, nullptr, &error));
  EXPECT_FALSE(error.empty());
}

// --- Profiler ---------------------------------------------------------------

TEST(ProfilerTest, SitesRegisterGaugesAndScopeCounts) {
  MetricRegistry registry;
  Profiler profiler(&registry);
  ProfileSite* site = profiler.Site("x.y");
  EXPECT_EQ(profiler.Site("x.y"), site);  // get-or-create
  EXPECT_EQ(profiler.site_count(), 1u);

  {
    ProfileScope scope(&profiler, site);
  }
  {
    ProfileScope scope(&profiler, site);
  }
  EXPECT_EQ(site->hits(), 2u);

  double v = 0;
  ASSERT_TRUE(registry.Read("profile.x.y.hits", &v));
  EXPECT_DOUBLE_EQ(v, 2.0);
  ASSERT_TRUE(registry.Read("profile.x.y.wall_ns", &v));
  ASSERT_TRUE(registry.Read("profile.x.y.sim_ns", &v));

  // Disabled profiler (the default unless TFC_PROFILE is set): hits count,
  // wall clock is never read.
  if (!profiler.enabled()) {
    EXPECT_EQ(site->wall_ns(), 0u);
  }

  // Null-safe: a scope on a component with no profiler wired is a no-op.
  ProfileScope inert(nullptr, nullptr);
}

}  // namespace
}  // namespace tfc
