// Direct tests of ReliableReceiver reassembly and ACK generation: segments
// arriving out of order, overlapping, duplicated, and interleaved with
// control packets.

#include <gtest/gtest.h>

#include <vector>

#include "src/net/network.h"
#include "src/transport/reliable_receiver.h"

namespace tfc {
namespace {

class ReassemblyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>(3);
    snd_ = net_->AddHost("snd");
    rcv_ = net_->AddHost("rcv");
    net_->Link(snd_, rcv_, kGbps, Microseconds(1));
    net_->BuildRoutes();
    snd_->RegisterEndpoint(kFlow, &sink_);
    receiver_ = std::make_unique<ReliableReceiver>(net_.get(), rcv_, kFlow,
                                                   /*advertised_window=*/1 << 20);
    receiver_->on_deliver = [this](uint64_t n) { delivered_chunks_.push_back(n); };
  }

  void TearDown() override { snd_->UnregisterEndpoint(kFlow); }

  // Injects a data segment [seq, seq+len) directly into the receiver host.
  void Inject(uint64_t seq, uint32_t len, PacketType type = PacketType::kData) {
    PacketPtr pkt = std::make_unique<Packet>();
    pkt->uid = net_->AllocatePacketUid();
    pkt->flow_id = kFlow;
    pkt->src = snd_->id();
    pkt->dst = rcv_->id();
    pkt->type = type;
    pkt->seq = seq;
    pkt->payload = len;
    pkt->ts = net_->scheduler().now() + 1;  // nonzero for echo checks
    rcv_->Receive(std::move(pkt), nullptr);
  }

  // Drains the network and returns the ack values of all ACKs received.
  std::vector<uint64_t> DrainAcks() {
    net_->scheduler().Run();
    std::vector<uint64_t> acks;
    for (auto& p : sink_.packets) {
      acks.push_back(p->ack);
    }
    sink_.packets.clear();
    return acks;
  }

  static constexpr int kFlow = 9;

  struct Sink : Endpoint {
    void OnReceive(PacketPtr pkt) override { packets.push_back(std::move(pkt)); }
    std::vector<PacketPtr> packets;
  };

  std::unique_ptr<Network> net_;
  Host* snd_ = nullptr;
  Host* rcv_ = nullptr;
  Sink sink_;
  std::unique_ptr<ReliableReceiver> receiver_;
  std::vector<uint64_t> delivered_chunks_;
};

TEST_F(ReassemblyTest, InOrderDeliveryAcksCumulatively) {
  Inject(0, 100);
  Inject(100, 100);
  Inject(200, 50);
  EXPECT_EQ(DrainAcks(), (std::vector<uint64_t>{100, 200, 250}));
  EXPECT_EQ(receiver_->delivered_bytes(), 250u);
}

TEST_F(ReassemblyTest, OutOfOrderHoleFillsInOneJump) {
  Inject(100, 100);  // hole at [0,100)
  Inject(200, 100);
  EXPECT_EQ(DrainAcks(), (std::vector<uint64_t>{0, 0}));  // dup ACKs at 0
  Inject(0, 100);  // plug the hole
  EXPECT_EQ(DrainAcks(), (std::vector<uint64_t>{300}));
  EXPECT_EQ(delivered_chunks_, (std::vector<uint64_t>{300}));
}

TEST_F(ReassemblyTest, DuplicateSegmentsAreIdempotent) {
  Inject(0, 100);
  Inject(0, 100);
  Inject(0, 100);
  EXPECT_EQ(DrainAcks(), (std::vector<uint64_t>{100, 100, 100}));
  EXPECT_EQ(receiver_->delivered_bytes(), 100u);
}

TEST_F(ReassemblyTest, OverlappingSegmentsMergeCorrectly) {
  Inject(50, 100);   // [50,150) buffered
  Inject(100, 100);  // [100,200) overlaps; merged to [50,200)
  Inject(0, 60);     // [0,60) bridges to the buffer
  DrainAcks();
  EXPECT_EQ(receiver_->delivered_bytes(), 200u);
}

TEST_F(ReassemblyTest, ManyInterleavedRangesEventuallyCoalesce) {
  // Even-indexed 100-byte segments first, then odd ones.
  for (uint64_t i = 0; i < 20; i += 2) {
    Inject(i * 100, 100);
  }
  DrainAcks();
  EXPECT_EQ(receiver_->delivered_bytes(), 100u);  // only segment 0 in order
  for (uint64_t i = 1; i < 20; i += 2) {
    Inject(i * 100, 100);
  }
  DrainAcks();
  EXPECT_EQ(receiver_->delivered_bytes(), 2000u);
}

TEST_F(ReassemblyTest, ZeroPayloadDataIsAckedWithoutDelivery) {
  Inject(0, 0);  // a TFC-style probe
  auto acks = DrainAcks();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0], 0u);
  EXPECT_EQ(receiver_->delivered_bytes(), 0u);
  EXPECT_TRUE(delivered_chunks_.empty());
}

TEST_F(ReassemblyTest, SynGetsSynAckWithTimestampEcho) {
  Inject(0, 0, PacketType::kSyn);
  net_->scheduler().Run();
  ASSERT_EQ(sink_.packets.size(), 1u);
  EXPECT_EQ(sink_.packets[0]->type, PacketType::kSynAck);
  EXPECT_GT(sink_.packets[0]->ts_echo, 0);
}

TEST_F(ReassemblyTest, FinAckedOnlyWhenAllDataArrived) {
  Inject(0, 100);
  DrainAcks();
  Inject(200, 0, PacketType::kFin);  // premature: data [100,200) missing
  net_->scheduler().Run();
  ASSERT_EQ(sink_.packets.size(), 1u);
  EXPECT_EQ(sink_.packets[0]->type, PacketType::kAck);
  EXPECT_EQ(sink_.packets[0]->ack, 100u);
  sink_.packets.clear();

  Inject(100, 100);
  DrainAcks();
  Inject(200, 0, PacketType::kFin);
  net_->scheduler().Run();
  ASSERT_EQ(sink_.packets.size(), 1u);
  EXPECT_EQ(sink_.packets[0]->type, PacketType::kFinAck);
}

TEST_F(ReassemblyTest, EcnCeIsEchoedPerPacket) {
  PacketPtr pkt = std::make_unique<Packet>();
  pkt->flow_id = kFlow;
  pkt->src = snd_->id();
  pkt->dst = rcv_->id();
  pkt->type = PacketType::kData;
  pkt->payload = 10;
  pkt->ecn_capable = true;
  pkt->ecn_ce = true;
  rcv_->Receive(std::move(pkt), nullptr);
  net_->scheduler().Run();
  ASSERT_EQ(sink_.packets.size(), 1u);
  EXPECT_TRUE(sink_.packets[0]->ecn_echo);

  sink_.packets.clear();
  Inject(10, 10);  // unmarked
  net_->scheduler().Run();
  ASSERT_EQ(sink_.packets.size(), 1u);
  EXPECT_FALSE(sink_.packets[0]->ecn_echo);
}

TEST_F(ReassemblyTest, SegmentEntirelyBelowFrontierReAcksOnly) {
  Inject(0, 300);
  DrainAcks();
  delivered_chunks_.clear();
  Inject(100, 100);  // stale retransmission
  auto acks = DrainAcks();
  EXPECT_EQ(acks, (std::vector<uint64_t>{300}));
  EXPECT_TRUE(delivered_chunks_.empty());
}

}  // namespace
}  // namespace tfc
