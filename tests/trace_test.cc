// Packet-tracing tests: event coverage, conservation identities between
// event counts, text formatting, and flow filtering.

#include <gtest/gtest.h>

#include <sstream>

#include "src/net/network.h"
#include "src/net/trace.h"
#include "src/tcp/tcp.h"

namespace tfc {
namespace {

struct TracedDumbbell {
  Network net{13};
  Host* a;
  Host* b;
  Switch* s;

  explicit TracedDumbbell(LinkOptions opts = LinkOptions()) {
    a = net.AddHost("a");
    b = net.AddHost("b");
    s = net.AddSwitch("s");
    net.Link(a, s, kGbps, Microseconds(5), opts);
    net.Link(s, b, kGbps, Microseconds(5), opts);
    net.BuildRoutes();
  }
};

TEST(TraceTest, CountsBalanceOnLosslessRun) {
  TracedDumbbell d;
  CountingTracer tracer;
  d.net.set_tracer(&tracer);

  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(500'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  EXPECT_GT(tracer.enqueues, 0u);
  EXPECT_EQ(tracer.drops, 0u);
  // Lossless: everything enqueued was transmitted.
  EXPECT_EQ(tracer.enqueues, tracer.transmits);
  // Every host delivery corresponds to a final-hop transmit; forward path
  // has two hops (NIC + switch) and the reverse ACK path two as well, so
  // transmits = 2 * delivers exactly in this topology.
  EXPECT_EQ(tracer.transmits, 2 * tracer.delivers);
}

TEST(TraceTest, DropsAreTraced) {
  LinkOptions opts;
  opts.switch_buffer_bytes = 4 * 1518;
  TracedDumbbell d(opts);
  // A second sender makes the switch egress contend.
  Host* a2 = d.net.AddHost("a2");
  d.net.Link(a2, d.s, kGbps, Microseconds(5), opts);
  d.net.BuildRoutes();

  CountingTracer tracer;
  d.net.set_tracer(&tracer);
  TcpSender f1(&d.net, d.a, d.b, TcpConfig());
  TcpSender f2(&d.net, a2, d.b, TcpConfig());
  f1.Write(2'000'000);
  f2.Write(2'000'000);
  f1.Start();
  f2.Start();
  d.net.scheduler().RunUntil(Milliseconds(200));

  Port* bottleneck = Network::FindPort(d.s, d.b);
  EXPECT_EQ(tracer.drops, bottleneck->drops() + d.a->nic()->drops() + a2->nic()->drops());
  EXPECT_GT(tracer.drops, 0u);
  EXPECT_EQ(tracer.enqueues, tracer.transmits + bottleneck->queue_bytes() / 1518);
}

TEST(TraceTest, TextFormatContainsTheEssentials) {
  TracedDumbbell d;
  std::ostringstream out;
  TextTracer tracer(&out);
  d.net.set_tracer(&tracer);

  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(kMssBytes);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  const std::string text = out.str();
  EXPECT_NE(text.find("SYN"), std::string::npos);
  EXPECT_NE(text.find("DATA"), std::string::npos);
  EXPECT_NE(text.find("FINACK"), std::string::npos);
  EXPECT_NE(text.find("len=1460"), std::string::npos);
  EXPECT_NE(text.find("+ a:p0"), std::string::npos);  // NIC enqueue
  EXPECT_GT(tracer.events_written(), 10u);
}

TEST(TraceTest, FlowFilterSelectsOneFlow) {
  TracedDumbbell d;
  TcpSender f1(&d.net, d.a, d.b, TcpConfig());
  TcpSender f2(&d.net, d.a, d.b, TcpConfig());

  std::ostringstream out;
  TextTracer tracer(&out, /*flow_filter=*/f2.flow_id());
  d.net.set_tracer(&tracer);
  for (TcpSender* f : {&f1, &f2}) {
    f->Write(10'000);
    f->Close();
    f->Start();
  }
  d.net.scheduler().Run();

  const std::string needle1 = "f=" + std::to_string(f1.flow_id());
  const std::string needle2 = "f=" + std::to_string(f2.flow_id());
  EXPECT_EQ(out.str().find(needle1), std::string::npos);
  EXPECT_NE(out.str().find(needle2), std::string::npos);
}

// Direct OnEvent tests: hand the tracer a crafted event and pin the exact
// rendered line, so format drift is caught without a full simulation run.
TEST(TraceTest, DirectEventRendersExactLine) {
  TracedDumbbell d;
  Port* port = Network::FindPort(d.s, d.b);

  Packet pkt;
  pkt.flow_id = 7;
  pkt.type = PacketType::kData;
  pkt.seq = 14600;
  pkt.payload = 1460;
  pkt.rm = true;

  std::ostringstream out;
  TextTracer tracer(&out);
  TraceEvent event{/*time=*/Microseconds(3'021'840), TraceEventType::kEnqueue,
                   &pkt, d.s, port};
  tracer.OnEvent(event);

  EXPECT_EQ(out.str(), "3.021840 + s:p1 DATA f=7 seq=14600 len=1460 rm q=0\n");
  EXPECT_EQ(tracer.events_written(), 1u);
}

TEST(TraceTest, DirectDeliverEventOmitsPortAndShowsFlags) {
  TracedDumbbell d;

  Packet pkt;
  pkt.flow_id = 3;
  pkt.type = PacketType::kAck;
  pkt.seq = 1;
  pkt.rma = true;
  pkt.window = 2920;
  pkt.ecn_ce = true;

  std::ostringstream out;
  TextTracer tracer(&out);
  tracer.OnEvent({Seconds(1.5), TraceEventType::kDeliver, &pkt, d.b, nullptr});

  EXPECT_EQ(out.str(), "1.500000 r b ACK f=3 seq=1 len=0 rma w=2920 ce\n");
}

TEST(TraceTest, NodeFilterSelectsOneNode) {
  TracedDumbbell d;
  std::ostringstream out;
  TextTracer tracer(&out);
  tracer.set_node_filter("s");
  d.net.set_tracer(&tracer);

  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(50'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  const std::string text = out.str();
  EXPECT_GT(tracer.events_written(), 0u);
  // Every line names the switch; no host-side events leak through. Host
  // events would render as "+ a:p0", "+ b:p0", or deliveries "r a"/"r b".
  EXPECT_NE(text.find(" s:p"), std::string::npos);
  EXPECT_EQ(text.find(" a:p"), std::string::npos);
  EXPECT_EQ(text.find(" b:p"), std::string::npos);
  EXPECT_EQ(text.find(" r a "), std::string::npos);
  EXPECT_EQ(text.find(" r b "), std::string::npos);
}

TEST(TraceTest, PortFilterSelectsOnePortAndExcludesDelivers) {
  TracedDumbbell d;
  Port* to_b = Network::FindPort(d.s, d.b);

  std::ostringstream out;
  TextTracer tracer(&out);
  tracer.set_node_filter("s");
  tracer.set_port_filter(to_b->index());
  d.net.set_tracer(&tracer);

  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(50'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  const std::string text = out.str();
  EXPECT_GT(tracer.events_written(), 0u);
  const std::string wanted = ":p" + std::to_string(to_b->index());
  // Only the bottleneck port appears: the switch's other port (toward a)
  // carries the ACK stream and must be filtered out, as are deliveries
  // (they have no port).
  EXPECT_NE(text.find(wanted), std::string::npos);
  for (const auto& port : d.s->ports()) {
    if (port->index() == to_b->index()) {
      continue;
    }
    EXPECT_EQ(text.find(":p" + std::to_string(port->index())), std::string::npos);
  }
  EXPECT_EQ(text.find(" r "), std::string::npos);
}

TEST(TraceTest, CountingTracerDropAccountingUnderFullBuffer) {
  // A buffer of two frames forces sustained tail drops at the bottleneck.
  LinkOptions opts;
  opts.switch_buffer_bytes = 2 * 1518;
  TracedDumbbell d(opts);
  Host* a2 = d.net.AddHost("a2");
  d.net.Link(a2, d.s, kGbps, Microseconds(5), opts);
  d.net.BuildRoutes();

  CountingTracer tracer;
  d.net.set_tracer(&tracer);
  TcpSender f1(&d.net, d.a, d.b, TcpConfig());
  TcpSender f2(&d.net, a2, d.b, TcpConfig());
  f1.Write(1'000'000);
  f2.Write(1'000'000);
  f1.Start();
  f2.Start();
  d.net.scheduler().RunUntil(Milliseconds(100));

  uint64_t port_drops = 0;
  for (const auto& node : d.net.nodes()) {
    for (const auto& port : node->ports()) {
      port_drops += port->drops();
    }
  }
  EXPECT_GT(tracer.drops, 0u);
  // Every drop anywhere is traced exactly once...
  EXPECT_EQ(tracer.drops, port_drops);
  // ...and drops never show up as enqueues: what entered a queue either
  // left on the wire or is still sitting in some queue right now.
  uint64_t queued_frames = 0;
  for (const auto& node : d.net.nodes()) {
    for (const auto& port : node->ports()) {
      queued_frames += port->queue_packets();
    }
  }
  EXPECT_EQ(tracer.enqueues, tracer.transmits + queued_frames);
}

TEST(TraceTest, NoTracerMeansNoOverheadPathStillWorks) {
  TracedDumbbell d;
  EXPECT_EQ(d.net.tracer(), nullptr);
  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(100'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();
  EXPECT_EQ(flow.delivered_bytes(), 100'000u);
}

}  // namespace
}  // namespace tfc
