// Packet-tracing tests: event coverage, conservation identities between
// event counts, text formatting, and flow filtering.

#include <gtest/gtest.h>

#include <sstream>

#include "src/net/network.h"
#include "src/net/trace.h"
#include "src/tcp/tcp.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"

namespace tfc {
namespace {

struct TracedDumbbell {
  Network net{13};
  Host* a;
  Host* b;
  Switch* s;

  explicit TracedDumbbell(LinkOptions opts = LinkOptions()) {
    a = net.AddHost("a");
    b = net.AddHost("b");
    s = net.AddSwitch("s");
    net.Link(a, s, kGbps, Microseconds(5), opts);
    net.Link(s, b, kGbps, Microseconds(5), opts);
    net.BuildRoutes();
  }
};

TEST(TraceTest, CountsBalanceOnLosslessRun) {
  TracedDumbbell d;
  CountingTracer tracer;
  d.net.set_tracer(&tracer);

  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(500'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  EXPECT_GT(tracer.enqueues, 0u);
  EXPECT_EQ(tracer.drops, 0u);
  // Lossless: everything enqueued was transmitted.
  EXPECT_EQ(tracer.enqueues, tracer.transmits);
  // Every host delivery corresponds to a final-hop transmit; forward path
  // has two hops (NIC + switch) and the reverse ACK path two as well, so
  // transmits = 2 * delivers exactly in this topology.
  EXPECT_EQ(tracer.transmits, 2 * tracer.delivers);
}

TEST(TraceTest, DropsAreTraced) {
  LinkOptions opts;
  opts.switch_buffer_bytes = 4 * 1518;
  TracedDumbbell d(opts);
  // A second sender makes the switch egress contend.
  Host* a2 = d.net.AddHost("a2");
  d.net.Link(a2, d.s, kGbps, Microseconds(5), opts);
  d.net.BuildRoutes();

  CountingTracer tracer;
  d.net.set_tracer(&tracer);
  TcpSender f1(&d.net, d.a, d.b, TcpConfig());
  TcpSender f2(&d.net, a2, d.b, TcpConfig());
  f1.Write(2'000'000);
  f2.Write(2'000'000);
  f1.Start();
  f2.Start();
  d.net.scheduler().RunUntil(Milliseconds(200));

  Port* bottleneck = Network::FindPort(d.s, d.b);
  EXPECT_EQ(tracer.drops, bottleneck->drops() + d.a->nic()->drops() + a2->nic()->drops());
  EXPECT_GT(tracer.drops, 0u);
  EXPECT_EQ(tracer.enqueues, tracer.transmits + bottleneck->queue_bytes() / 1518);
}

TEST(TraceTest, TextFormatContainsTheEssentials) {
  TracedDumbbell d;
  std::ostringstream out;
  TextTracer tracer(&out);
  d.net.set_tracer(&tracer);

  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(kMssBytes);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  const std::string text = out.str();
  EXPECT_NE(text.find("SYN"), std::string::npos);
  EXPECT_NE(text.find("DATA"), std::string::npos);
  EXPECT_NE(text.find("FINACK"), std::string::npos);
  EXPECT_NE(text.find("len=1460"), std::string::npos);
  EXPECT_NE(text.find("+ a:p0"), std::string::npos);  // NIC enqueue
  EXPECT_GT(tracer.events_written(), 10u);
}

TEST(TraceTest, FlowFilterSelectsOneFlow) {
  TracedDumbbell d;
  TcpSender f1(&d.net, d.a, d.b, TcpConfig());
  TcpSender f2(&d.net, d.a, d.b, TcpConfig());

  std::ostringstream out;
  TextTracer tracer(&out, /*flow_filter=*/f2.flow_id());
  d.net.set_tracer(&tracer);
  for (TcpSender* f : {&f1, &f2}) {
    f->Write(10'000);
    f->Close();
    f->Start();
  }
  d.net.scheduler().Run();

  const std::string needle1 = "f=" + std::to_string(f1.flow_id());
  const std::string needle2 = "f=" + std::to_string(f2.flow_id());
  EXPECT_EQ(out.str().find(needle1), std::string::npos);
  EXPECT_NE(out.str().find(needle2), std::string::npos);
}

// Direct OnEvent tests: hand the tracer a crafted event and pin the exact
// rendered line, so format drift is caught without a full simulation run.
TEST(TraceTest, DirectEventRendersExactLine) {
  TracedDumbbell d;
  Port* port = Network::FindPort(d.s, d.b);

  Packet pkt;
  pkt.flow_id = 7;
  pkt.type = PacketType::kData;
  pkt.seq = 14600;
  pkt.payload = 1460;
  pkt.rm = true;

  std::ostringstream out;
  TextTracer tracer(&out);
  const FlightEvent event = MakePacketEvent(Microseconds(3'021'840),
                                            TraceEventType::kEnqueue, pkt, d.s, port);
  tracer.OnEvent(event, d.net);

  EXPECT_EQ(out.str(), "3.021840 + s:p1 DATA f=7 seq=14600 len=1460 rm q=0\n");
  EXPECT_EQ(tracer.events_written(), 1u);
}

TEST(TraceTest, DirectDeliverEventOmitsPortAndShowsFlags) {
  TracedDumbbell d;

  Packet pkt;
  pkt.flow_id = 3;
  pkt.type = PacketType::kAck;
  pkt.seq = 1;
  pkt.rma = true;
  pkt.window = 2920;
  pkt.ecn_ce = true;

  std::ostringstream out;
  TextTracer tracer(&out);
  tracer.OnEvent(
      MakePacketEvent(Seconds(1.5), TraceEventType::kDeliver, pkt, d.b, nullptr),
      d.net);

  EXPECT_EQ(out.str(), "1.500000 r b ACK f=3 seq=1 len=0 rma w=2920 ce\n");
}

// Control-plane events render with the '*' marker, the event mnemonic, and
// per-type key=value payload fields.
TEST(TraceTest, DirectSlotEndEventRendersExactLine) {
  TracedDumbbell d;
  Port* port = Network::FindPort(d.s, d.b);

  std::ostringstream out;
  TextTracer tracer(&out);
  FlightEvent e = ControlFlightEvent(FlightEventType::kSlotEnd, d.s->id(),
                                     port->index(), 4);
  e.time = Microseconds(213);
  e.seq = 8;  // effective flows E
  e.a = 11680;
  e.b = 1460;
  e.c = 52000;
  tracer.OnEvent(e, d.net);

  EXPECT_EQ(out.str(), "0.000213 * s:p1 slot_end E=8 token=11680 w=1460 rtt_m=52000 f=4\n");
  EXPECT_EQ(tracer.events_written(), 1u);
}

TEST(TraceTest, DirectGrantEventRendersExactLine) {
  TracedDumbbell d;
  Port* port = Network::FindPort(d.s, d.b);

  std::ostringstream out;
  TextTracer tracer(&out);
  FlightEvent e = ControlFlightEvent(FlightEventType::kTokenGrant, d.s->id(),
                                     port->index(), 3);
  e.time = Microseconds(201);
  e.a = 2920;
  e.b = -1460;  // the arbiter counter legitimately goes negative (debt)
  tracer.OnEvent(e, d.net);

  EXPECT_EQ(out.str(), "0.000201 * s:p1 grant w=2920 ctr=-1460 f=3\n");
}

TEST(TraceTest, DirectProbeEventIsPortlessAndRendersAttempt) {
  TracedDumbbell d;

  std::ostringstream out;
  TextTracer tracer(&out);
  FlightEvent e = ControlFlightEvent(FlightEventType::kProbeSend, d.a->id(), -1, 2);
  e.time = Microseconds(100);
  e.seq = 0;
  e.a = 1;
  tracer.OnEvent(e, d.net);

  EXPECT_EQ(out.str(), "0.000100 * a probe seq=0 attempt=1 f=2\n");
}

TEST(TraceTest, DirectWipeEventHasNoFlow) {
  TracedDumbbell d;
  Port* port = Network::FindPort(d.s, d.a);

  std::ostringstream out;
  TextTracer tracer(&out);
  FlightEvent e = ControlFlightEvent(FlightEventType::kAgentWipe, d.s->id(),
                                     port->index(), -1);
  e.time = Milliseconds(10);
  e.a = 1;
  tracer.OnEvent(e, d.net);

  EXPECT_EQ(out.str(), "0.010000 * s:p0 wipe n=1\n");
}

// An unknown node id (offline dump with a truncated name table) falls back
// to "n<id>" instead of crashing or printing garbage.
TEST(TraceTest, UnknownNodeIdRendersFallbackName) {
  FlightDump dump;  // empty name table
  std::ostringstream out;
  TextTracer tracer(&out);
  FlightEvent e = ControlFlightEvent(FlightEventType::kLinkDown, 5, 2, -1);
  e.time = Microseconds(1);
  tracer.OnEvent(e, dump);
  EXPECT_EQ(out.str(), "0.000001 * n5:p2 link_down\n");
}

// Filters apply to control-plane events exactly as to packet events: the
// flow filter matches the event's flow id, the node filter its node name,
// and a port filter excludes portless (host-side) control events.
TEST(TraceTest, FiltersApplyToControlEvents) {
  TracedDumbbell d;
  Port* port = Network::FindPort(d.s, d.b);

  FlightEvent grant = ControlFlightEvent(FlightEventType::kTokenGrant, d.s->id(),
                                         port->index(), 3);
  FlightEvent probe = ControlFlightEvent(FlightEventType::kProbeSend, d.a->id(), -1, 3);
  FlightEvent other = ControlFlightEvent(FlightEventType::kTokenGrant, d.s->id(),
                                         port->index(), 9);

  {
    std::ostringstream out;
    TextTracer tracer(&out, /*flow_filter=*/3);
    tracer.OnEvent(grant, d.net);
    tracer.OnEvent(other, d.net);
    EXPECT_EQ(tracer.events_written(), 1u);
    EXPECT_NE(out.str().find("f=3"), std::string::npos);
    EXPECT_EQ(out.str().find("f=9"), std::string::npos);
  }
  {
    std::ostringstream out;
    TextTracer tracer(&out);
    tracer.set_node_filter("s");
    tracer.OnEvent(grant, d.net);
    tracer.OnEvent(probe, d.net);
    EXPECT_EQ(tracer.events_written(), 1u);
    EXPECT_NE(out.str().find("grant"), std::string::npos);
  }
  {
    std::ostringstream out;
    TextTracer tracer(&out);
    tracer.set_port_filter(port->index());
    tracer.OnEvent(grant, d.net);
    tracer.OnEvent(probe, d.net);  // portless: excluded by any port filter
    EXPECT_EQ(tracer.events_written(), 1u);
  }
}

// CountingTracer tallies control-plane events both in aggregate and per type.
TEST(TraceTest, CountingTracerCountsControlEvents) {
  TracedDumbbell d;
  CountingTracer tracer;
  FlightEvent grant = ControlFlightEvent(FlightEventType::kTokenGrant, d.s->id(), 1, 3);
  FlightEvent wipe = ControlFlightEvent(FlightEventType::kAgentWipe, d.s->id(), 1, -1);
  tracer.OnEvent(grant, d.net);
  tracer.OnEvent(grant, d.net);
  tracer.OnEvent(wipe, d.net);
  EXPECT_EQ(tracer.control, 3u);
  EXPECT_EQ(tracer.by_type[static_cast<size_t>(FlightEventType::kTokenGrant)], 2u);
  EXPECT_EQ(tracer.by_type[static_cast<size_t>(FlightEventType::kAgentWipe)], 1u);
  EXPECT_EQ(tracer.enqueues, 0u);
}

// A live TFC run emits the control-plane events through the installed
// tracer: grants, slot begin/end pairs, and the senders' probe/rma pairs.
TEST(TraceTest, TfcRunEmitsControlPlaneEvents) {
  TracedDumbbell d;
  InstallTfcSwitches(d.net, TfcSwitchConfig());
  CountingTracer tracer;
  d.net.set_tracer(&tracer);

  TfcSender flow(&d.net, d.a, d.b, TfcHostConfig());
  flow.Write(200'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  EXPECT_EQ(flow.delivered_bytes(), 200'000u);
  EXPECT_GT(tracer.control, 0u);
  EXPECT_GT(tracer.by_type[static_cast<size_t>(FlightEventType::kProbeSend)], 0u);
  EXPECT_GT(tracer.by_type[static_cast<size_t>(FlightEventType::kRmaReceive)], 0u);
  EXPECT_GT(tracer.by_type[static_cast<size_t>(FlightEventType::kDelimiterAdopt)], 0u);
  EXPECT_GT(tracer.by_type[static_cast<size_t>(FlightEventType::kSlotBegin)], 0u);
  EXPECT_GT(tracer.by_type[static_cast<size_t>(FlightEventType::kSlotEnd)], 0u);
  EXPECT_GT(tracer.by_type[static_cast<size_t>(FlightEventType::kAgentConverge)], 0u);
  // Slots alternate begin/end: every end had a begin.
  EXPECT_GE(tracer.by_type[static_cast<size_t>(FlightEventType::kSlotBegin)],
            tracer.by_type[static_cast<size_t>(FlightEventType::kSlotEnd)]);
}

TEST(TraceTest, NodeFilterSelectsOneNode) {
  TracedDumbbell d;
  std::ostringstream out;
  TextTracer tracer(&out);
  tracer.set_node_filter("s");
  d.net.set_tracer(&tracer);

  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(50'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  const std::string text = out.str();
  EXPECT_GT(tracer.events_written(), 0u);
  // Every line names the switch; no host-side events leak through. Host
  // events would render as "+ a:p0", "+ b:p0", or deliveries "r a"/"r b".
  EXPECT_NE(text.find(" s:p"), std::string::npos);
  EXPECT_EQ(text.find(" a:p"), std::string::npos);
  EXPECT_EQ(text.find(" b:p"), std::string::npos);
  EXPECT_EQ(text.find(" r a "), std::string::npos);
  EXPECT_EQ(text.find(" r b "), std::string::npos);
}

TEST(TraceTest, PortFilterSelectsOnePortAndExcludesDelivers) {
  TracedDumbbell d;
  Port* to_b = Network::FindPort(d.s, d.b);

  std::ostringstream out;
  TextTracer tracer(&out);
  tracer.set_node_filter("s");
  tracer.set_port_filter(to_b->index());
  d.net.set_tracer(&tracer);

  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(50'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  const std::string text = out.str();
  EXPECT_GT(tracer.events_written(), 0u);
  const std::string wanted = ":p" + std::to_string(to_b->index());
  // Only the bottleneck port appears: the switch's other port (toward a)
  // carries the ACK stream and must be filtered out, as are deliveries
  // (they have no port).
  EXPECT_NE(text.find(wanted), std::string::npos);
  for (const auto& port : d.s->ports()) {
    if (port->index() == to_b->index()) {
      continue;
    }
    EXPECT_EQ(text.find(":p" + std::to_string(port->index())), std::string::npos);
  }
  EXPECT_EQ(text.find(" r "), std::string::npos);
}

TEST(TraceTest, CountingTracerDropAccountingUnderFullBuffer) {
  // A buffer of two frames forces sustained tail drops at the bottleneck.
  LinkOptions opts;
  opts.switch_buffer_bytes = 2 * 1518;
  TracedDumbbell d(opts);
  Host* a2 = d.net.AddHost("a2");
  d.net.Link(a2, d.s, kGbps, Microseconds(5), opts);
  d.net.BuildRoutes();

  CountingTracer tracer;
  d.net.set_tracer(&tracer);
  TcpSender f1(&d.net, d.a, d.b, TcpConfig());
  TcpSender f2(&d.net, a2, d.b, TcpConfig());
  f1.Write(1'000'000);
  f2.Write(1'000'000);
  f1.Start();
  f2.Start();
  d.net.scheduler().RunUntil(Milliseconds(100));

  uint64_t port_drops = 0;
  for (const auto& node : d.net.nodes()) {
    for (const auto& port : node->ports()) {
      port_drops += port->drops();
    }
  }
  EXPECT_GT(tracer.drops, 0u);
  // Every drop anywhere is traced exactly once...
  EXPECT_EQ(tracer.drops, port_drops);
  // ...and drops never show up as enqueues: what entered a queue either
  // left on the wire or is still sitting in some queue right now.
  uint64_t queued_frames = 0;
  for (const auto& node : d.net.nodes()) {
    for (const auto& port : node->ports()) {
      queued_frames += port->queue_packets();
    }
  }
  EXPECT_EQ(tracer.enqueues, tracer.transmits + queued_frames);
}

TEST(TraceTest, NoTracerMeansNoOverheadPathStillWorks) {
  TracedDumbbell d;
  EXPECT_EQ(d.net.tracer(), nullptr);
  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(100'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();
  EXPECT_EQ(flow.delivered_bytes(), 100'000u);
}

}  // namespace
}  // namespace tfc
