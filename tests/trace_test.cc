// Packet-tracing tests: event coverage, conservation identities between
// event counts, text formatting, and flow filtering.

#include <gtest/gtest.h>

#include <sstream>

#include "src/net/network.h"
#include "src/net/trace.h"
#include "src/tcp/tcp.h"

namespace tfc {
namespace {

struct TracedDumbbell {
  Network net{13};
  Host* a;
  Host* b;
  Switch* s;

  explicit TracedDumbbell(LinkOptions opts = LinkOptions()) {
    a = net.AddHost("a");
    b = net.AddHost("b");
    s = net.AddSwitch("s");
    net.Link(a, s, kGbps, Microseconds(5), opts);
    net.Link(s, b, kGbps, Microseconds(5), opts);
    net.BuildRoutes();
  }
};

TEST(TraceTest, CountsBalanceOnLosslessRun) {
  TracedDumbbell d;
  CountingTracer tracer;
  d.net.set_tracer(&tracer);

  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(500'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  EXPECT_GT(tracer.enqueues, 0u);
  EXPECT_EQ(tracer.drops, 0u);
  // Lossless: everything enqueued was transmitted.
  EXPECT_EQ(tracer.enqueues, tracer.transmits);
  // Every host delivery corresponds to a final-hop transmit; forward path
  // has two hops (NIC + switch) and the reverse ACK path two as well, so
  // transmits = 2 * delivers exactly in this topology.
  EXPECT_EQ(tracer.transmits, 2 * tracer.delivers);
}

TEST(TraceTest, DropsAreTraced) {
  LinkOptions opts;
  opts.switch_buffer_bytes = 4 * 1518;
  TracedDumbbell d(opts);
  // A second sender makes the switch egress contend.
  Host* a2 = d.net.AddHost("a2");
  d.net.Link(a2, d.s, kGbps, Microseconds(5), opts);
  d.net.BuildRoutes();

  CountingTracer tracer;
  d.net.set_tracer(&tracer);
  TcpSender f1(&d.net, d.a, d.b, TcpConfig());
  TcpSender f2(&d.net, a2, d.b, TcpConfig());
  f1.Write(2'000'000);
  f2.Write(2'000'000);
  f1.Start();
  f2.Start();
  d.net.scheduler().RunUntil(Milliseconds(200));

  Port* bottleneck = Network::FindPort(d.s, d.b);
  EXPECT_EQ(tracer.drops, bottleneck->drops() + d.a->nic()->drops() + a2->nic()->drops());
  EXPECT_GT(tracer.drops, 0u);
  EXPECT_EQ(tracer.enqueues, tracer.transmits + bottleneck->queue_bytes() / 1518);
}

TEST(TraceTest, TextFormatContainsTheEssentials) {
  TracedDumbbell d;
  std::ostringstream out;
  TextTracer tracer(&out);
  d.net.set_tracer(&tracer);

  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(kMssBytes);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  const std::string text = out.str();
  EXPECT_NE(text.find("SYN"), std::string::npos);
  EXPECT_NE(text.find("DATA"), std::string::npos);
  EXPECT_NE(text.find("FINACK"), std::string::npos);
  EXPECT_NE(text.find("len=1460"), std::string::npos);
  EXPECT_NE(text.find("+ a:p0"), std::string::npos);  // NIC enqueue
  EXPECT_GT(tracer.events_written(), 10u);
}

TEST(TraceTest, FlowFilterSelectsOneFlow) {
  TracedDumbbell d;
  TcpSender f1(&d.net, d.a, d.b, TcpConfig());
  TcpSender f2(&d.net, d.a, d.b, TcpConfig());

  std::ostringstream out;
  TextTracer tracer(&out, /*flow_filter=*/f2.flow_id());
  d.net.set_tracer(&tracer);
  for (TcpSender* f : {&f1, &f2}) {
    f->Write(10'000);
    f->Close();
    f->Start();
  }
  d.net.scheduler().Run();

  const std::string needle1 = "f=" + std::to_string(f1.flow_id());
  const std::string needle2 = "f=" + std::to_string(f2.flow_id());
  EXPECT_EQ(out.str().find(needle1), std::string::npos);
  EXPECT_NE(out.str().find(needle2), std::string::npos);
}

TEST(TraceTest, NoTracerMeansNoOverheadPathStillWorks) {
  TracedDumbbell d;
  EXPECT_EQ(d.net.tracer(), nullptr);
  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(100'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();
  EXPECT_EQ(flow.delivered_bytes(), 100'000u);
}

}  // namespace
}  // namespace tfc
