// Unit tests for the simulator core: scheduler, timers, RNG, statistics.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/sim/stats.h"
#include "src/sim/timer.h"

namespace tfc {
namespace {

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(300, [&] { order.push_back(3); });
  sched.ScheduleAt(100, [&] { order.push_back(1); });
  sched.ScheduleAt(200, [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 300);
}

TEST(SchedulerTest, EqualTimesFireInInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SchedulerTest, ScheduleAfterUsesCurrentTime) {
  Scheduler sched;
  TimeNs inner_fire = -1;
  sched.ScheduleAt(100, [&] {
    sched.ScheduleAfter(50, [&] { inner_fire = sched.now(); });
  });
  sched.Run();
  EXPECT_EQ(inner_fire, 150);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  auto id = sched.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(sched.Cancel(id));
  sched.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(SchedulerTest, CancelIsIdempotentAndSafeOnInvalidIds) {
  Scheduler sched;
  auto id = sched.ScheduleAt(10, [] {});
  EXPECT_TRUE(sched.Cancel(id));
  EXPECT_FALSE(sched.Cancel(id));
  EXPECT_FALSE(sched.Cancel(Scheduler::EventId{}));
  sched.Run();
}

TEST(SchedulerTest, RunUntilAdvancesClockWithoutOvershooting) {
  Scheduler sched;
  int count = 0;
  sched.ScheduleAt(100, [&] { ++count; });
  sched.ScheduleAt(200, [&] { ++count; });
  sched.ScheduleAt(300, [&] { ++count; });
  sched.RunUntil(200);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sched.now(), 200);
  EXPECT_EQ(sched.pending(), 1u);
  sched.RunUntil(250);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sched.now(), 250);
}

TEST(SchedulerTest, StopHaltsRun) {
  Scheduler sched;
  int count = 0;
  sched.ScheduleAt(1, [&] {
    ++count;
    sched.Stop();
  });
  sched.ScheduleAt(2, [&] { ++count; });
  sched.Run();
  EXPECT_EQ(count, 1);
  sched.Run();
  EXPECT_EQ(count, 2);
}

TEST(SchedulerTest, EventsScheduledDuringRunExecute) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) {
      sched.ScheduleAfter(1, recurse);
    }
  };
  sched.ScheduleAt(0, recurse);
  sched.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sched.now(), 99);
}

TEST(TimerTest, FiresOnceAfterDelay) {
  Scheduler sched;
  int fires = 0;
  Timer timer(&sched, [&] { ++fires; });
  timer.RestartAfter(100);
  EXPECT_TRUE(timer.pending());
  EXPECT_EQ(timer.expiry(), 100);
  sched.Run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(timer.pending());
}

TEST(TimerTest, RestartCancelsPrevious) {
  Scheduler sched;
  int fires = 0;
  Timer timer(&sched, [&] { ++fires; });
  timer.RestartAfter(100);
  timer.RestartAfter(500);
  sched.Run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sched.now(), 500);
}

TEST(TimerTest, CancelStopsExpiry) {
  Scheduler sched;
  int fires = 0;
  Timer timer(&sched, [&] { ++fires; });
  timer.RestartAfter(100);
  timer.Cancel();
  sched.Run();
  EXPECT_EQ(fires, 0);
}

TEST(PeriodicTimerTest, TicksAtFixedInterval) {
  Scheduler sched;
  std::vector<TimeNs> ticks;
  PeriodicTimer timer(&sched, [&] { ticks.push_back(sched.now()); });
  timer.Start(10);
  sched.RunUntil(55);
  timer.Stop();
  EXPECT_EQ(ticks, (std::vector<TimeNs>{10, 20, 30, 40, 50}));
}

TEST(PeriodicTimerTest, FirstDelayOverride) {
  Scheduler sched;
  std::vector<TimeNs> ticks;
  PeriodicTimer timer(&sched, [&] { ticks.push_back(sched.now()); });
  timer.Start(10, /*first_delay=*/0);
  sched.RunUntil(25);
  timer.Stop();
  EXPECT_EQ(ticks, (std::vector<TimeNs>{0, 10, 20}));
}

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(250.0);
  }
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    saw_lo |= v == 0;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(EmpiricalCdfTest, SamplesWithinSupportAndMatchesMean) {
  EmpiricalCdf cdf({{0.0, 0.0}, {10.0, 0.5}, {100.0, 1.0}});
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double v = cdf.Sample(rng);
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 100.0);
    stats.Add(v);
  }
  EXPECT_NEAR(stats.mean(), cdf.Mean(), 0.5);
}

TEST(EmpiricalCdfTest, MeanOfPiecewiseLinear) {
  EmpiricalCdf cdf({{0.0, 0.0}, {10.0, 1.0}});
  EXPECT_DOUBLE_EQ(cdf.Mean(), 5.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(SampleSetTest, PercentilesInterpolate) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.Percentile(99), 99.01, 0.01);
}

TEST(SampleSetTest, BatchPercentilesMatchSingleQueries) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) {
    s.Add(i);
  }
  const std::vector<double> ps = {0, 25, 50, 99, 100};
  const std::vector<double> batch = s.Percentiles(ps);
  ASSERT_EQ(batch.size(), ps.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], s.Percentile(ps[i])) << "p=" << ps[i];
  }

  SampleSet empty;
  EXPECT_EQ(empty.Percentiles({50, 99}), (std::vector<double>{0.0, 0.0}));
}

TEST(JainFairnessTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JainFairness({1, 1, 1, 1}), 1.0);
  EXPECT_NEAR(JainFairness({1, 0, 0, 0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(JainFairness({}), 1.0);
}

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(Microseconds(160), 160'000);
  EXPECT_EQ(Milliseconds(200), 200'000'000);
  EXPECT_EQ(Seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.0)), 2.0);
  EXPECT_DOUBLE_EQ(ToMicroseconds(Microseconds(59)), 59.0);
}

}  // namespace
}  // namespace tfc
