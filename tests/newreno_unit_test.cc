// Precise NewReno state-machine tests: a scripted fake receiver replaces
// the real one so tests control the exact ACK stream the sender sees —
// dup-ACK thresholds, window inflation/deflation, partial ACKs, recovery
// exit, and RTO backoff are asserted against hand-computed values.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/tcp/tcp.h"
#include "src/topo/topologies.h"

namespace tfc {
namespace {

// Captures data packets and sends only the ACKs the test scripts.
class ScriptedReceiver : public Endpoint {
 public:
  ScriptedReceiver(Network* net, Host* local) : net_(net), local_(local) {}

  void OnReceive(PacketPtr pkt) override {
    if (pkt->type == PacketType::kSyn) {
      Reply(*pkt, PacketType::kSynAck, 0);
      return;
    }
    received.push_back(std::move(pkt));
  }

  // Sends a cumulative ACK with the given ack value (echoing the timestamp
  // of the most recent data packet so RTT sampling keeps working).
  void Ack(uint64_t ack_value) {
    TFC_CHECK(!received.empty());
    Reply(*received.back(), PacketType::kAck, ack_value);
  }

  std::vector<PacketPtr> received;

 private:
  void Reply(const Packet& cause, PacketType type, uint64_t ack_value) {
    PacketPtr ack = std::make_unique<Packet>();
    ack->uid = net_->AllocatePacketUid();
    ack->flow_id = cause.flow_id;
    ack->src = local_->id();
    ack->dst = cause.src;
    ack->type = type;
    ack->ack = ack_value;
    ack->ts_echo = cause.ts;
    ack->window = kWindowInfinite;
    local_->Send(std::move(ack));
  }

  Network* net_;
  Host* local_;
};

class NewRenoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>(3);
    a_ = net_->AddHost("a");
    b_ = net_->AddHost("b");
    net_->Link(a_, b_, kGbps, Microseconds(5));
    net_->BuildRoutes();

    TcpConfig cfg;
    cfg.transport.rto_min = Milliseconds(10);
    sender_ = std::make_unique<TcpSender>(net_.get(), a_, b_, cfg);
    // Swap the real receiver for the scripted one.
    fake_ = std::make_unique<ScriptedReceiver>(net_.get(), b_);
    b_->UnregisterEndpoint(sender_->flow_id());
    b_->RegisterEndpoint(sender_->flow_id(), fake_.get());

    sender_->Write(1'000'000);
    sender_->Start();
    Drain();  // SYN -> SYNACK -> initial window of data
    ASSERT_EQ(sender_->state(), ReliableSender::State::kEstablished);
  }

  void TearDown() override {
    // Restore the original registration so teardown order stays clean.
    b_->UnregisterEndpoint(sender_->flow_id());
    b_->RegisterEndpoint(sender_->flow_id(), &sender_->receiver());
  }

  // Runs until the network is quiet (all in-flight packets delivered) but
  // stops before the retransmission timer would fire.
  void Drain() {
    const TimeNs guard = net_->scheduler().now() + Milliseconds(5);
    net_->scheduler().RunUntil(guard);
  }

  double mss() const { return kMssBytes; }

  std::unique_ptr<Network> net_;
  Host* a_ = nullptr;
  Host* b_ = nullptr;
  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<ScriptedReceiver> fake_;
};

TEST_F(NewRenoTest, InitialWindowSendsThreeSegments) {
  EXPECT_EQ(fake_->received.size(), 3u);
  EXPECT_EQ(fake_->received[0]->seq, 0u);
  EXPECT_EQ(fake_->received[1]->seq, 1460u);
  EXPECT_EQ(fake_->received[2]->seq, 2920u);
}

TEST_F(NewRenoTest, SlowStartGrowsByAckedBytes) {
  const double before = sender_->cwnd_bytes();
  fake_->Ack(1460);
  Drain();
  EXPECT_DOUBLE_EQ(sender_->cwnd_bytes(), before + 1460.0);
}

TEST_F(NewRenoTest, TwoDupAcksDoNotTriggerRetransmit) {
  fake_->Ack(1460);
  Drain();
  const size_t sent = fake_->received.size();
  fake_->Ack(1460);  // dup 1
  fake_->Ack(1460);  // dup 2
  Drain();
  // No retransmission of seq 1460 appeared.
  for (size_t i = sent; i < fake_->received.size(); ++i) {
    EXPECT_NE(fake_->received[i]->seq, 1460u);
  }
  EXPECT_EQ(sender_->stats().retransmits, 0u);
}

TEST_F(NewRenoTest, ThirdDupAckTriggersFastRetransmitAndHalvesWindow) {
  fake_->Ack(1460);
  Drain();
  const Bytes inflight = sender_->inflight_bytes();
  for (int i = 0; i < 3; ++i) {
    fake_->Ack(1460);
  }
  const size_t sent_before = fake_->received.size();
  Drain();
  EXPECT_EQ(sender_->stats().retransmits, 1u);
  // The hole at snd_una was retransmitted (new segments may follow under
  // the inflated window).
  bool hole_resent = false;
  for (size_t i = sent_before; i < fake_->received.size(); ++i) {
    hole_resent |= fake_->received[i]->seq == 1460u;
  }
  EXPECT_TRUE(hole_resent);
  // ssthresh = max(flight/2, 2*MSS); cwnd = ssthresh + 3*MSS.
  const double expect_ssthresh = std::max(static_cast<double>(inflight) / 2.0, 2 * mss());
  EXPECT_DOUBLE_EQ(sender_->ssthresh_bytes(), expect_ssthresh);
  EXPECT_DOUBLE_EQ(sender_->cwnd_bytes(), expect_ssthresh + 3 * mss());
  EXPECT_EQ(sender_->stats().timeouts, 0u);
}

TEST_F(NewRenoTest, FullAckExitsRecoveryAtSsthresh) {
  fake_->Ack(1460);
  Drain();
  for (int i = 0; i < 3; ++i) {
    fake_->Ack(1460);
  }
  Drain();
  const double ssthresh = sender_->ssthresh_bytes();
  // Acknowledge everything sent so far: recovery completes.
  uint64_t highest = 0;
  for (const auto& p : fake_->received) {
    highest = std::max(highest, p->seq + p->payload);
  }
  fake_->Ack(highest);
  Drain();
  EXPECT_GE(sender_->cwnd_bytes(), ssthresh);  // deflated to ssthresh, then grew
  EXPECT_LE(sender_->cwnd_bytes(), ssthresh + 2 * mss());
}

TEST_F(NewRenoTest, PartialAckRepairsNextHoleWithoutLeavingRecovery) {
  // Build up a larger flight first.
  fake_->Ack(1460);
  fake_->Ack(2920);
  fake_->Ack(4380);
  Drain();
  // Now three dups at 4380: enter recovery.
  for (int i = 0; i < 3; ++i) {
    fake_->Ack(4380);
  }
  Drain();
  ASSERT_EQ(sender_->stats().retransmits, 1u);
  // A partial ACK (one segment forward, still below the recovery point)
  // must immediately retransmit the next hole.
  const size_t sent_before = fake_->received.size();
  fake_->Ack(4380 + 1460);
  Drain();
  EXPECT_EQ(sender_->stats().retransmits, 2u);
  bool hole_resent = false;
  for (size_t i = sent_before; i < fake_->received.size(); ++i) {
    hole_resent |= fake_->received[i]->seq == 4380u + 1460u;
  }
  EXPECT_TRUE(hole_resent);
  EXPECT_EQ(sender_->stats().timeouts, 0u);
}

TEST_F(NewRenoTest, RtoBacksOffExponentially) {
  // Never ACK anything beyond the handshake: RTOs fire at rto, 2*rto, ...
  std::vector<TimeNs> timeout_times;
  const TimeNs start = net_->scheduler().now();
  uint64_t last_count = 0;
  for (int step = 0; step < 2000 && timeout_times.size() < 4; ++step) {
    net_->scheduler().RunUntil(start + step * Milliseconds(1));
    if (sender_->stats().timeouts > last_count) {
      last_count = sender_->stats().timeouts;
      timeout_times.push_back(net_->scheduler().now());
    }
  }
  ASSERT_GE(timeout_times.size(), 3u);
  const double gap1 = ToSeconds(timeout_times[1] - timeout_times[0]);
  const double gap2 = ToSeconds(timeout_times[2] - timeout_times[1]);
  EXPECT_NEAR(gap2 / gap1, 2.0, 0.3);  // doubling, +- sampling granularity
  EXPECT_DOUBLE_EQ(sender_->cwnd_bytes(), mss());  // collapsed to one segment
}

TEST_F(NewRenoTest, CongestionAvoidanceGrowsOneMssPerWindow) {
  // Force congestion avoidance by setting up a loss first.
  fake_->Ack(1460);
  Drain();
  for (int i = 0; i < 3; ++i) {
    fake_->Ack(1460);
  }
  Drain();
  uint64_t highest = 0;
  for (const auto& p : fake_->received) {
    highest = std::max(highest, p->seq + p->payload);
  }
  fake_->Ack(highest);
  Drain();
  // Now in congestion avoidance at cwnd == ssthresh(+growth). Acking one
  // full window must grow cwnd by ~one MSS.
  const double cwnd = sender_->cwnd_bytes();
  uint64_t acked = highest;
  double expected_growth = 0;
  while (acked < highest + static_cast<uint64_t>(cwnd)) {
    acked += 1460;
    expected_growth += mss() * 1460.0 / cwnd;  // per-ack increment (approx)
    fake_->Ack(acked);
  }
  Drain();
  EXPECT_NEAR(sender_->cwnd_bytes() - cwnd, mss(), mss() * 0.35);
}

}  // namespace
}  // namespace tfc
