// Flight recorder: ring semantics, TFCT dump/load round-trip, post-mortem
// dumps through the TFC_CHECK abort funnel, passivity (arming never perturbs
// the simulation), and causal ordering of the TFC control-plane events an
// armed run captures.

#include "src/sim/flight.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/trace.h"
#include "src/sim/check.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"

namespace tfc {
namespace {

FlightEvent Ev(int64_t time_ns, FlightEventType type, int node, int32_t a = 0) {
  FlightEvent e = ControlFlightEvent(type, node, /*port=*/0, /*flow=*/-1);
  e.time = time_ns;
  e.a = a;
  return e;
}

std::string TempPath(const std::string& name) {
  const std::string dir = testing::TempDir() + "/tfc_flight_test";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir + "/" + name;
}

TEST(FlightRecorderTest, DisarmedRecordIsANoOp) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.armed());
  rec.Record(Ev(1, FlightEventType::kTokenGrant, 0));
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.size(), 0u);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwoWithFloor) {
  FlightRecorder rec;
  rec.Arm(1);
  EXPECT_EQ(rec.capacity(), FlightRecorder::kMinCapacity);
  rec.Arm(100);
  EXPECT_EQ(rec.capacity(), 128u);
  rec.Arm(1 << 12);
  EXPECT_EQ(rec.capacity(), static_cast<size_t>(1) << 12);
}

TEST(FlightRecorderTest, RingWrapsAndForEachWalksOldestFirst) {
  FlightRecorder rec;
  rec.Arm(64);
  for (int i = 0; i < 200; ++i) {
    rec.Record(Ev(i, FlightEventType::kTokenRefill, 0, i));
  }
  EXPECT_EQ(rec.recorded(), 200u);
  EXPECT_EQ(rec.size(), 64u);
  std::vector<int32_t> seen;
  rec.ForEach([&](const FlightEvent& e) { seen.push_back(e.a); });
  ASSERT_EQ(seen.size(), 64u);
  // The 64 newest events, oldest first: 136, 137, ..., 199.
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<int32_t>(136 + i));
  }
}

TEST(FlightRecorderTest, RearmingClearsTheRing) {
  FlightRecorder rec;
  rec.Arm(64);
  rec.Record(Ev(1, FlightEventType::kTokenGrant, 0));
  rec.Arm(64);
  EXPECT_EQ(rec.recorded(), 0u);
  rec.Disarm();
  EXPECT_FALSE(rec.armed());
  rec.Record(Ev(2, FlightEventType::kTokenGrant, 0));
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(FlightRecorderTest, DumpLoadRoundTripPreservesEverything) {
  FlightRecorder rec;
  rec.Arm(64);
  FlightEvent e1 = Ev(1000, FlightEventType::kSlotEnd, 0, -123);
  e1.seq = 77;
  e1.b = 456;
  e1.c = 789;
  e1.flow = 5;
  e1.port = 3;
  e1.ptype = 2;
  e1.flags = kFlightRm | kFlightCe;
  e1.weight = 9;
  rec.Record(e1);
  rec.Record(Ev(2000, FlightEventType::kLinkDown, 1));

  const std::string path = TempPath("roundtrip.tfct");
  std::vector<std::string> names = {"S", "h1"};
  std::string error;
  ASSERT_TRUE(rec.Dump(path, names, &error)) << error;

  FlightDump dump;
  ASSERT_TRUE(LoadFlightDump(path, &dump, &error)) << error;
  EXPECT_EQ(dump.recorded_total, 2u);
  ASSERT_EQ(dump.nodes.size(), 2u);
  EXPECT_EQ(dump.nodes[0], "S");
  EXPECT_EQ(dump.NodeName(1), "h1");
  EXPECT_EQ(dump.NodeName(99), "");  // out of range -> fallback rendering
  ASSERT_EQ(dump.events.size(), 2u);
  const FlightEvent& r = dump.events[0];
  EXPECT_EQ(r.time, TimeNs(1000));
  EXPECT_EQ(r.seq, 77u);
  EXPECT_EQ(r.a, -123);
  EXPECT_EQ(r.b, 456);
  EXPECT_EQ(r.c, 789);
  EXPECT_EQ(r.flow, 5);
  EXPECT_EQ(r.node, 0);
  EXPECT_EQ(r.port, 3);
  EXPECT_EQ(r.type, FlightEventType::kSlotEnd);
  EXPECT_EQ(r.ptype, 2);
  EXPECT_EQ(r.flags, kFlightRm | kFlightCe);
  EXPECT_EQ(r.weight, 9);
  EXPECT_EQ(dump.events[1].type, FlightEventType::kLinkDown);
}

TEST(FlightRecorderTest, LoadRejectsCorruptFiles) {
  const std::string path = TempPath("corrupt.tfct");
  std::ofstream(path) << "not a flight dump at all";
  FlightDump dump;
  std::string error;
  EXPECT_FALSE(LoadFlightDump(path, &dump, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FlightRecorderTest, SaturatingConversionClampsPayloads) {
  EXPECT_EQ(FlightI32(int64_t{1} << 40), INT32_MAX);
  EXPECT_EQ(FlightI32(-(int64_t{1} << 40)), INT32_MIN);
  EXPECT_EQ(FlightI32(1e18), INT32_MAX);
  EXPECT_EQ(FlightI32(uint64_t{0xFFFFFFFFFFFFFFFFull}), INT32_MAX);
  EXPECT_EQ(FlightI32(int64_t{42}), 42);
}

// --- post-mortem dumps through the abort funnel -------------------------

// The death-test child aborts; the parent then loads the flight.tfct the
// child's CheckFailed funnel dumped.
TEST(FlightPostMortemTest, TfcCheckFailureDumpsArmedRecorder) {
  const std::string path = TempPath("check_postmortem.tfct");
  std::error_code ec;
  std::filesystem::remove(path, ec);
  ASSERT_DEATH(
      {
        Network net(1);
        net.flight().Arm(256);
        net.ArmFlightPostMortem(path);
        FlightEvent e = ControlFlightEvent(FlightEventType::kTokenGrant, 0, 0, 7);
        e.a = 1460;
        net.EmitFlight(e);
        TFC_CHECK_MSG(false, "deliberate failure for flight_test");
      },
      "deliberate failure for flight_test");
  FlightDump dump;
  std::string error;
  ASSERT_TRUE(LoadFlightDump(path, &dump, &error)) << error;
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.events[0].type, FlightEventType::kTokenGrant);
  EXPECT_EQ(dump.events[0].flow, 7);
}

TEST(FlightPostMortemTest, WatchdogStallAbortsAndDumpsWhenArmed) {
  const std::string path = TempPath("stall_postmortem.tfct");
  std::error_code ec;
  std::filesystem::remove(path, ec);
  ASSERT_DEATH(
      {
        Network net(1);
        net.flight().Arm(256);
        net.ArmFlightPostMortem(path);
        net.EmitFlight(ControlFlightEvent(FlightEventType::kHostDown, 0, -1, -1));
        LivenessWatchdog dog(&net.scheduler(), Milliseconds(1), Milliseconds(5));
        dog.set_abort_on_stall(true);
        dog.Watch("stuck", [] { return 0.0; }, [] { return false; });
        dog.Start();
        net.scheduler().RunUntil(Seconds(1));
      },
      "liveness watchdog");
  FlightDump dump;
  std::string error;
  ASSERT_TRUE(LoadFlightDump(path, &dump, &error)) << error;
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.events[0].type, FlightEventType::kHostDown);
}

// --- armed TFC run: passivity and causal ordering -----------------------

struct TfcRunResult {
  uint64_t executed = 0;
  uint64_t delivered = 0;
  FlightDump dump;  // only filled when armed
};

TfcRunResult RunTfcIncast(uint64_t seed, bool armed) {
  Network net(seed);
  if (armed) {
    net.flight().Arm(1 << 14);
  }
  TestbedTopology topo = BuildTestbed(net);
  InstallTfcSwitches(net);
  std::vector<std::unique_ptr<TfcSender>> flows;
  for (int i = 1; i <= 4; ++i) {
    auto f = std::make_unique<TfcSender>(&net, topo.hosts[static_cast<size_t>(i)],
                                         topo.hosts[0], TfcHostConfig());
    f->Write(40 * kMssBytes);
    f->Close();
    f->Start();
    flows.push_back(std::move(f));
  }
  net.scheduler().Run();
  TfcRunResult result;
  result.executed = net.scheduler().executed();
  for (const auto& f : flows) {
    result.delivered += f->delivered_bytes();
  }
  if (armed) {
    net.flight().ForEach(
        [&](const FlightEvent& e) { result.dump.events.push_back(e); });
    result.dump.recorded_total = net.flight().recorded();
  }
  return result;
}

TEST(FlightCausalityTest, ArmingTheRecorderIsPurelyPassive) {
  const TfcRunResult off = RunTfcIncast(7, /*armed=*/false);
  const TfcRunResult on = RunTfcIncast(7, /*armed=*/true);
  EXPECT_EQ(off.executed, on.executed);
  EXPECT_EQ(off.delivered, on.delivered);
  EXPECT_GT(on.dump.recorded_total, 0u);
}

TEST(FlightCausalityTest, ArmedTfcRunHasCausallyOrderedControlPlane) {
  const TfcRunResult r = RunTfcIncast(3, /*armed=*/true);
  const std::vector<FlightEvent>& events = r.dump.events;
  ASSERT_FALSE(events.empty());

  // Timestamps are monotone oldest-first (the ring preserves record order).
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time) << "at index " << i;
  }

  // Per flow: the acquisition probe precedes the first RMA, which precedes
  // the first data enqueue (no data moves before the window arrives).
  for (int flow = 1; flow <= 4; ++flow) {
    int64_t probe_at = -1, rma_at = -1, data_at = -1;
    for (const FlightEvent& e : events) {
      if (e.flow != flow) {
        continue;
      }
      if (e.type == FlightEventType::kProbeSend && probe_at < 0) {
        probe_at = e.time.count();
      } else if (e.type == FlightEventType::kRmaReceive && rma_at < 0) {
        rma_at = e.time.count();
      } else if (e.type == FlightEventType::kEnqueue && data_at < 0 &&
                 e.ptype == static_cast<uint8_t>(PacketType::kData) && e.a > 0) {
        data_at = e.time.count();
      }
    }
    SCOPED_TRACE("flow=" + std::to_string(flow));
    ASSERT_GE(probe_at, 0);
    ASSERT_GE(rma_at, 0);
    ASSERT_GE(data_at, 0);
    EXPECT_LE(probe_at, rma_at);
    EXPECT_LE(rma_at, data_at);
  }

  // Per port: slot_begin/slot_end alternate, and every grant lies inside an
  // adopted delimiter regime (an adopt or slot event was seen on that port).
  int begins = 0, ends = 0;
  for (const FlightEvent& e : events) {
    if (e.type == FlightEventType::kSlotBegin) {
      ++begins;
    } else if (e.type == FlightEventType::kSlotEnd) {
      ++ends;
    }
  }
  EXPECT_GT(begins, 0);
  EXPECT_GT(ends, 0);
  EXPECT_GE(begins, ends);  // every completed slot opened first
}

// --- export smoke -------------------------------------------------------

TEST(FlightExportTest, ExportedPerfettoTraceIsWellFormed) {
  const std::string dir = testing::TempDir() + "/tfc_flight_export";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  Network net(11);
  net.flight().Arm(1 << 14);
  TestbedTopology topo = BuildTestbed(net);
  InstallTfcSwitches(net);
  auto f = std::make_unique<TfcSender>(&net, topo.hosts[1], topo.hosts[0],
                                       TfcHostConfig());
  f->Write(20 * kMssBytes);
  f->Close();
  f->Start();
  net.scheduler().Run();
  std::string error;
  ASSERT_TRUE(net.DumpFlight(dir + "/flight.tfct", &error)) << error;
  ASSERT_TRUE(ExportFlightTrace(dir, &error)) << error;

  std::ifstream in(dir + "/trace.perfetto.json");
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // slot spans
  // Async flow spans are balanced begin/end pairs.
  size_t b = 0, e = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"b\"", pos)) != std::string::npos) {
    ++b;
    pos += 8;
  }
  pos = 0;
  while ((pos = json.find("\"ph\":\"e\"", pos)) != std::string::npos) {
    ++e;
    pos += 8;
  }
  EXPECT_GT(b, 0u);
  EXPECT_EQ(b, e);

  std::ifstream flows_in(dir + "/flows.txt");
  ASSERT_TRUE(flows_in.good());
  std::string flows((std::istreambuf_iterator<char>(flows_in)),
                    std::istreambuf_iterator<char>());
  EXPECT_NE(flows.find("=== flow "), std::string::npos);
}

}  // namespace
}  // namespace tfc
