// Assorted edge cases across layers: speed mismatches, flow-control
// limits, sampler arithmetic, and boundary conditions that integration
// scenarios don't isolate.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/tcp/tcp.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/incast.h"
#include "src/workload/samplers.h"

namespace tfc {
namespace {

TEST(SpeedMismatchTest, FastToSlowQueuesAtTheSlowPort) {
  // 10G ingress feeding a 1G egress: the switch's slow port queues; with a
  // window-limited sender the queue is bounded by the window.
  Network net(91);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* s = net.AddSwitch("s");
  net.Link(a, s, 10 * kGbps, Microseconds(5));
  net.Link(s, b, kGbps, Microseconds(5));
  net.BuildRoutes();

  TcpConfig cfg;
  cfg.transport.receive_window = 64 * 1024;  // caps inflight
  TcpSender flow(&net, a, b, cfg);
  flow.Write(10'000'000);
  flow.Close();
  flow.Start();
  net.scheduler().Run();

  EXPECT_EQ(flow.delivered_bytes(), 10'000'000u);
  Port* slow = Network::FindPort(s, b);
  EXPECT_EQ(slow->drops(), 0u);
  // Queue bounded by the 64 KB window (plus headers).
  EXPECT_LE(slow->max_queue_bytes(), 70'000u);
}

TEST(SpeedMismatchTest, SlowToFastNeverQueues) {
  Network net(92);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* s = net.AddSwitch("s");
  net.Link(a, s, kGbps, Microseconds(5));
  net.Link(s, b, 10 * kGbps, Microseconds(5));
  net.BuildRoutes();
  TcpSender flow(&net, a, b, TcpConfig());
  flow.Write(5'000'000);
  flow.Close();
  flow.Start();
  net.scheduler().Run();
  EXPECT_LE(Network::FindPort(s, b)->max_queue_bytes(), 2u * kMtuFrameBytes);
}

TEST(FlowControlTest, ReceiveWindowBoundsInflight) {
  Network net(93);
  StarTopology topo = BuildStar(net, 2, LinkOptions(), kGbps, Microseconds(200));
  TcpConfig cfg;
  cfg.transport.receive_window = 8 * 1460;  // 8 segments on a long-RTT path
  TcpSender flow(&net, topo.hosts[1], topo.hosts[0], cfg);
  flow.Write(50'000'000);
  flow.Start();
  TimeNs t = 0;
  for (int i = 0; i < 200; ++i) {
    t += Microseconds(100);
    net.scheduler().RunUntil(t);
    EXPECT_LE(flow.inflight_bytes(), 8u * 1460u);
  }
}

TEST(FlowControlTest, ThroughputIsWindowOverRtt) {
  // With cwnd pinned by the receive window well below BDP, goodput must be
  // ~window/RTT — a golden check on the whole timing machinery.
  Network net(94);
  StarTopology topo = BuildStar(net, 2, LinkOptions(), kGbps, Microseconds(500));
  TcpConfig cfg;
  cfg.transport.receive_window = 16 * 1460;
  TcpSender flow(&net, topo.hosts[1], topo.hosts[0], cfg);
  flow.Write(100'000'000);
  flow.Start();
  net.scheduler().RunUntil(Milliseconds(100));
  const uint64_t before = flow.delivered_bytes();
  net.scheduler().RunUntil(Milliseconds(600));
  const double bps = static_cast<double>(flow.delivered_bytes() - before) * 8.0 / 0.5;
  // RTT ~= 4*500us prop + serialization ~= 2.03 ms; 16*1460B/2.03ms ~= 92 Mbps.
  EXPECT_NEAR(bps, 16 * 1460 * 8 / 2.03e-3, 8e6);
}

TEST(WriteApiTest, WriteBeforeStartIsBuffered) {
  Network net(95);
  StarTopology topo = BuildStar(net, 2);
  TcpSender flow(&net, topo.hosts[1], topo.hosts[0], TcpConfig());
  flow.Write(123'456);
  flow.Close();
  flow.Start();  // everything already queued
  net.scheduler().Run();
  EXPECT_EQ(flow.delivered_bytes(), 123'456u);
  EXPECT_EQ(flow.state(), ReliableSender::State::kClosed);
}

TEST(WriteApiTest, ZeroByteWriteIsANoop) {
  Network net(96);
  StarTopology topo = BuildStar(net, 2);
  TcpSender flow(&net, topo.hosts[1], topo.hosts[0], TcpConfig());
  flow.Write(0);
  flow.Write(1000);
  flow.Write(0);
  flow.Close();
  flow.Start();
  net.scheduler().Run();
  EXPECT_EQ(flow.delivered_bytes(), 1000u);
}

TEST(IncastEdgeTest, SingleSenderSingleRound) {
  Network net(97);
  ProtocolSuite suite;
  StarTopology topo = BuildStar(net, 2);
  suite.InstallSwitchLogic(net);
  IncastConfig cfg;
  cfg.block_bytes = 64 * 1024;
  cfg.rounds = 1;
  IncastApp app(&net, suite, topo.hosts[0], {topo.hosts[1]}, cfg);
  app.Start();
  net.scheduler().RunUntil(Seconds(5));
  EXPECT_TRUE(app.finished());
  EXPECT_EQ(app.flows()[0]->delivered_bytes(), 64u * 1024u);
}

TEST(SamplerTest, GoodputSamplerRateArithmetic) {
  // Feed the sampler a synthetic counter advancing 1250 bytes per 10 us:
  // exactly 1 Gbps.
  Network net(98);
  uint64_t counter = 0;
  PeriodicTimer feeder(&net.scheduler(), [&] { counter += 1250; });
  feeder.Start(Microseconds(10));
  GoodputSampler sampler(
      &net.scheduler(), [&] { return counter; }, Milliseconds(1));
  net.scheduler().RunUntil(Milliseconds(10));
  sampler.Stop();
  feeder.Stop();
  EXPECT_EQ(sampler.series.size(), 10u);
  for (double v : sampler.series.v) {
    EXPECT_NEAR(v, 1e9, 1e7);
  }
}

TEST(SamplerTest, QueueSamplerTracksInstantaneousDepth) {
  Network net(99);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  net.Link(a, b, kGbps, Microseconds(5));
  net.BuildRoutes();
  QueueSampler sampler(&net.scheduler(), a->nic(), Microseconds(5));
  // Enqueue 10 full frames at t=0; they drain at 12.3 us each.
  for (int i = 0; i < 10; ++i) {
    PacketPtr pkt = std::make_unique<Packet>();
    pkt->flow_id = 1;
    pkt->src = a->id();
    pkt->dst = b->id();
    pkt->type = PacketType::kData;
    pkt->payload = kMssBytes;
    a->nic()->Enqueue(std::move(pkt));
  }
  net.scheduler().RunUntil(Milliseconds(1));
  sampler.Stop();
  EXPECT_NEAR(sampler.stats.max(), 10.0 * 1518, 1600.0);
  EXPECT_EQ(sampler.series.v.back(), 0.0);  // drained by the end
}

TEST(TfcEdgeTest, AckOnlyReversePortNeverComputesSlots) {
  // The port carrying only ACK traffic (reverse direction) must never
  // elect a delimiter or compute windows — only data-direction ports do.
  Network net(100);
  StarTopology topo = BuildStar(net, 2, LinkOptions(), kGbps, Microseconds(20));
  InstallTfcSwitches(net);
  TfcSender flow(&net, topo.hosts[1], topo.hosts[0], TfcHostConfig());
  flow.Write(1'000'000);
  flow.Close();
  flow.Start();
  net.scheduler().Run();
  EXPECT_EQ(flow.delivered_bytes(), 1'000'000u);

  TfcPortAgent* reverse =
      TfcPortAgent::FromPort(Network::FindPort(topo.sw, topo.hosts[1]));
  EXPECT_EQ(reverse->slots_completed(), 0u);
  EXPECT_EQ(reverse->delimiter_flow(), -1);
}

TEST(TfcEdgeTest, BidirectionalFlowsEachDirectionAllocatedIndependently) {
  // Simultaneous transfers in both directions between two hosts: each
  // direction's egress port runs its own slot machinery and both reach
  // full rate (the reverse ACK streams ride along).
  Network net(101);
  StarTopology topo = BuildStar(net, 2, LinkOptions(), kGbps, Microseconds(20));
  InstallTfcSwitches(net);
  TfcSender ab(&net, topo.hosts[0], topo.hosts[1], TfcHostConfig());
  TfcSender ba(&net, topo.hosts[1], topo.hosts[0], TfcHostConfig());
  for (TfcSender* f : {&ab, &ba}) {
    f->Write(20'000'000);
    f->Close();
    f->Start();
  }
  net.scheduler().Run();
  EXPECT_EQ(ab.delivered_bytes(), 20'000'000u);
  EXPECT_EQ(ba.delivered_bytes(), 20'000'000u);
  // Both directions ~line rate: neither FCT more than ~40% above the ideal.
  const double ideal_s = 20e6 * 8 / 0.92e9;
  EXPECT_LT(ToSeconds(ab.stats().fct()), ideal_s * 1.4);
  EXPECT_LT(ToSeconds(ba.stats().fct()), ideal_s * 1.4);
}

TEST(PacketEdgeTest, MinimumFrameSizes) {
  Packet tiny;
  tiny.payload = 0;
  EXPECT_EQ(tiny.frame_bytes(), 58u);
  EXPECT_EQ(tiny.wire_bytes(), 84u);  // padded to 64 + 20 overhead
  Packet one;
  one.payload = 1;
  EXPECT_EQ(one.frame_bytes(), 59u);
  EXPECT_EQ(one.wire_bytes(), 84u);
  Packet exact;
  exact.payload = 64 - kHeaderBytes;
  EXPECT_EQ(exact.wire_bytes(), 84u);
  Packet above;
  above.payload = 64 - kHeaderBytes + 1;
  EXPECT_EQ(above.wire_bytes(), 85u);
}

}  // namespace
}  // namespace tfc
