// End-to-end TFC protocol tests: the paper's headline properties — high
// utilization, fairness, near-zero queueing, fast convergence, rare loss,
// work conservation, and correct handling of silent/on-off flows.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/sim/stats.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/incast.h"
#include "src/workload/persistent_flow.h"
#include "src/workload/protocol.h"
#include "src/workload/samplers.h"

namespace tfc {
namespace {

ProtocolSuite TfcSuite() {
  ProtocolSuite suite;
  suite.protocol = Protocol::kTfc;
  return suite;
}

// N senders on one switch, one receiver.
struct Star {
  Network net;
  StarTopology topo;
  Host* receiver;
  std::vector<Host*> senders;

  explicit Star(int num_senders, BitsPerSec bps = kGbps,
                LinkOptions opts = LinkOptions(), uint64_t seed = 21)
      : net(seed),
        topo(BuildStar(net, num_senders + 1, opts, bps, Microseconds(5))) {
    receiver = topo.hosts[0];
    senders.assign(topo.hosts.begin() + 1, topo.hosts.end());
    InstallTfcSwitches(net);
  }

  Port* bottleneck() { return Network::FindPort(topo.sw, receiver); }
};

TEST(TfcE2eTest, WindowAcquisitionPhasePrecedesData) {
  Star s(1);
  TfcSender flow(&s.net, s.senders[0], s.receiver, TfcHostConfig());
  flow.Write(1'000'000);
  flow.Start();
  EXPECT_FALSE(flow.window_acquired());

  s.net.scheduler().RunUntil(Microseconds(40));  // SYN exchanged, probe out
  // No data before the probe's RMA returns.
  EXPECT_EQ(flow.stats().data_packets_sent, 0u);
  EXPECT_EQ(flow.probes_sent(), 1u);

  s.net.scheduler().RunUntil(Milliseconds(2));
  EXPECT_TRUE(flow.window_acquired());
  EXPECT_GT(flow.stats().data_packets_sent, 0u);
}

TEST(TfcE2eTest, SingleFlowReachesTargetUtilization) {
  Star s(1);
  PersistentFlow flow(std::make_unique<TfcSender>(&s.net, s.senders[0], s.receiver,
                                                  TfcHostConfig()));
  flow.Start();
  s.net.scheduler().RunUntil(Milliseconds(100));
  const uint64_t before = flow.delivered_bytes();
  s.net.scheduler().RunUntil(Milliseconds(300));
  const double bps = static_cast<double>(flow.delivered_bytes() - before) * 8.0 / 0.2;
  // rho0 = 0.97 of 1 Gbps wire => ~0.97 * 949 Mbps payload, with slack.
  EXPECT_GT(bps, 0.85e9);
  EXPECT_LT(bps, 0.96e9);
}

TEST(TfcE2eTest, FlowsShareFairlyAtSmallTimescale) {
  Star s(4);
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (Host* h : s.senders) {
    flows.push_back(std::make_unique<PersistentFlow>(
        std::make_unique<TfcSender>(&s.net, h, s.receiver, TfcHostConfig())));
    flows.back()->Start();
  }
  s.net.scheduler().RunUntil(Milliseconds(100));
  std::vector<uint64_t> base;
  for (auto& f : flows) {
    base.push_back(f->delivered_bytes());
  }
  // 20 ms sampling window — the paper's Fig. 9 granularity.
  s.net.scheduler().RunUntil(Milliseconds(120));
  std::vector<double> rates;
  double total = 0;
  for (size_t i = 0; i < flows.size(); ++i) {
    rates.push_back(static_cast<double>(flows[i]->delivered_bytes() - base[i]));
    total += rates.back();
  }
  EXPECT_GT(JainFairness(rates), 0.99);
  EXPECT_GT(total * 8.0 / 0.02, 0.85e9);  // and the link is still full
}

TEST(TfcE2eTest, NearZeroQueueInSteadyState) {
  Star s(4);
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (Host* h : s.senders) {
    flows.push_back(std::make_unique<PersistentFlow>(
        std::make_unique<TfcSender>(&s.net, h, s.receiver, TfcHostConfig())));
    flows.back()->Start();
  }
  s.net.scheduler().RunUntil(Milliseconds(100));
  s.bottleneck()->ResetMaxQueue();
  QueueSampler sampler(&s.net.scheduler(), s.bottleneck(), Microseconds(100));
  s.net.scheduler().RunUntil(Milliseconds(400));

  // Paper Fig. 8: TFC's instantaneous queue stays within a few KB (max
  // observed ~9 KB) while TCP fills the 256 KB buffer.
  EXPECT_LT(s.bottleneck()->max_queue_bytes(), 15'000u);
  EXPECT_LT(sampler.stats.mean(), 8'000.0);
  EXPECT_EQ(s.bottleneck()->drops(), 0u);
}

TEST(TfcE2eTest, NewFlowConvergesWithinMilliseconds) {
  Star s(2);
  PersistentFlow f1(std::make_unique<TfcSender>(&s.net, s.senders[0], s.receiver,
                                                TfcHostConfig()));
  f1.Start();
  s.net.scheduler().RunUntil(Milliseconds(100));

  auto sender2 = std::make_unique<TfcSender>(&s.net, s.senders[1], s.receiver,
                                             TfcHostConfig());
  TfcSender* raw2 = sender2.get();
  PersistentFlow f2(std::move(sender2));
  f2.Start();

  // Within a handful of RTTs (connection setup + window acquisition + one
  // slot), the newcomer holds a window within 30% of the incumbent's.
  s.net.scheduler().RunUntil(Milliseconds(103));
  EXPECT_TRUE(raw2->window_acquired());
  const uint64_t d2_before = f2.delivered_bytes();
  const uint64_t d1_before = f1.delivered_bytes();
  s.net.scheduler().RunUntil(Milliseconds(113));
  const double r1 = static_cast<double>(f1.delivered_bytes() - d1_before);
  const double r2 = static_cast<double>(f2.delivered_bytes() - d2_before);
  EXPECT_GT(r2, 0.7 * r1);
  EXPECT_LT(r2, 1.4 * r1);
}

TEST(TfcE2eTest, IncastFiftySendersNoLossNoTimeouts) {
  Star s(50, kGbps, LinkOptions(), 33);
  IncastConfig cfg;
  cfg.block_bytes = 256 * 1024;
  cfg.rounds = 5;
  IncastApp app(&s.net, TfcSuite(), s.receiver, s.senders, cfg);
  app.Start();
  s.net.scheduler().RunUntil(Seconds(10));

  ASSERT_TRUE(app.finished());
  EXPECT_EQ(app.total_timeouts(), 0u);
  EXPECT_EQ(s.bottleneck()->drops(), 0u);
  EXPECT_GT(app.goodput_bps(), 0.80e9);
}

TEST(TfcE2eTest, WorkConservationAcrossTwoBottlenecks) {
  // Paper Fig. 11 scenario: n1=8 flows h1->h4, n2=2 h1->h3, n3=2 h2->h3.
  Network net(9);
  MultiBottleneckTopology topo = BuildMultiBottleneck(net);
  InstallTfcSwitches(net);
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  auto add = [&](Host* src, Host* dst) {
    flows.push_back(std::make_unique<PersistentFlow>(
        std::make_unique<TfcSender>(&net, src, dst, TfcHostConfig())));
    flows.back()->Start();
  };
  for (int i = 0; i < 8; ++i) {
    add(topo.h1, topo.h4);
  }
  for (int i = 0; i < 2; ++i) {
    add(topo.h1, topo.h3);
  }
  for (int i = 0; i < 2; ++i) {
    add(topo.h2, topo.h3);
  }

  Port* s1_up = Network::FindPort(topo.s1, topo.s2);
  Port* s2_down = Network::FindPort(topo.s2, topo.h3);
  net.scheduler().RunUntil(Milliseconds(200));
  const Bytes up0 = s1_up->tx_bytes();
  const Bytes down0 = s2_down->tx_bytes();
  net.scheduler().RunUntil(Milliseconds(700));
  const double up_bps = static_cast<double>(s1_up->tx_bytes() - up0) * 8.0 / 0.5;
  const double down_bps = static_cast<double>(s2_down->tx_bytes() - down0) * 8.0 / 0.5;

  // Both bottlenecks stay above 900 Mbps: the n2 flows are limited at S1,
  // and token adjustment lets the n3 flows absorb the slack at S2.
  EXPECT_GT(up_bps, 0.90e9);
  EXPECT_GT(down_bps, 0.90e9);
  // Near-zero queueing at both (paper: ~2 KB).
  EXPECT_LT(s1_up->queue_bytes(), 20'000u);
  EXPECT_LT(s2_down->queue_bytes(), 20'000u);
  EXPECT_EQ(s1_up->drops() + s2_down->drops(), 0u);

  // And the n3 flows (indices 10, 11) got strictly more than the n2 flows
  // (8, 9), which are bottlenecked upstream.
  EXPECT_GT(flows[10]->delivered_bytes(), flows[8]->delivered_bytes());
}

TEST(TfcE2eTest, SilentFlowsAreExcludedFromEffectiveFlows) {
  Star s(6);
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (Host* h : s.senders) {
    flows.push_back(std::make_unique<PersistentFlow>(
        std::make_unique<TfcSender>(&s.net, h, s.receiver, TfcHostConfig())));
    flows.back()->Start();
  }
  TfcPortAgent* agent = TfcPortAgent::FromPort(s.bottleneck());

  auto mean_effective_flows = [&](TimeNs from, TimeNs until) {
    double sum = 0;
    int count = 0;
    agent->on_slot = [&](const TfcPortAgent::SlotInfo& info) {
      sum += info.effective_flows;
      ++count;
    };
    s.net.scheduler().RunUntil(from);
    sum = 0;
    count = 0;
    s.net.scheduler().RunUntil(until);
    agent->on_slot = nullptr;
    return count > 0 ? sum / count : 0.0;
  };

  const double e_all = mean_effective_flows(Milliseconds(100), Milliseconds(200));
  EXPECT_NEAR(e_all, 6.0, 1.0);

  // Half the flows go silent (held open, no data) — E must track down and
  // the remaining flows take over the freed bandwidth.
  for (int i = 0; i < 3; ++i) {
    flows[static_cast<size_t>(i)]->SetActive(false);
  }
  const double e_half = mean_effective_flows(Milliseconds(250), Milliseconds(350));
  EXPECT_NEAR(e_half, 3.0, 1.0);

  const uint64_t before = flows[5]->delivered_bytes();
  s.net.scheduler().RunUntil(Milliseconds(450));
  const double bps = static_cast<double>(flows[5]->delivered_bytes() - before) * 8.0 / 0.1;
  EXPECT_GT(bps, 0.25e9);  // ~1/3 of the link instead of 1/6
}

TEST(TfcE2eTest, ResumingFlowReacquiresWindowInsteadOfBursting) {
  Star s(2);
  auto sender = std::make_unique<TfcSender>(&s.net, s.senders[0], s.receiver,
                                            TfcHostConfig());
  TfcSender* raw = sender.get();
  PersistentFlow f1(std::move(sender));
  PersistentFlow f2(std::make_unique<TfcSender>(&s.net, s.senders[1], s.receiver,
                                                TfcHostConfig()));
  f1.Start();
  f2.Start();
  s.net.scheduler().RunUntil(Milliseconds(50));
  const uint64_t probes_before = raw->probes_sent();

  f1.SetActive(false);
  s.net.scheduler().RunUntil(Milliseconds(60));  // idle >> resume threshold
  f1.SetActive(true);
  s.net.scheduler().RunUntil(Milliseconds(61));
  EXPECT_GT(raw->probes_sent(), probes_before);
}

TEST(TfcE2eTest, CompletedDelimiterFlowDoesNotStallOthers) {
  Star s(3);
  // One short flow (likely the delimiter, it starts first) plus two long.
  TfcSender short_flow(&s.net, s.senders[0], s.receiver, TfcHostConfig());
  short_flow.Write(100'000);
  short_flow.Close();
  short_flow.Start();
  s.net.scheduler().RunUntil(Milliseconds(1));

  PersistentFlow f1(std::make_unique<TfcSender>(&s.net, s.senders[1], s.receiver,
                                                TfcHostConfig()));
  PersistentFlow f2(std::make_unique<TfcSender>(&s.net, s.senders[2], s.receiver,
                                                TfcHostConfig()));
  f1.Start();
  f2.Start();
  s.net.scheduler().RunUntil(Milliseconds(100));
  EXPECT_EQ(short_flow.state(), ReliableSender::State::kClosed);

  // The survivors keep the link full after the delimiter's FIN.
  const uint64_t before = f1.delivered_bytes() + f2.delivered_bytes();
  s.net.scheduler().RunUntil(Milliseconds(200));
  const double bps =
      static_cast<double>(f1.delivered_bytes() + f2.delivered_bytes() - before) * 8.0 / 0.1;
  EXPECT_GT(bps, 0.85e9);
}

TEST(TfcE2eTest, RareLossUnderConcurrentFlowsWithSubMssWindows) {
  // 60 concurrent long flows at 1 Gbps: fair windows are well below one MSS
  // (BDP ~6 KB), exercising the delay function. Zero drops expected.
  Star s(60, kGbps, LinkOptions(), 41);
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (Host* h : s.senders) {
    flows.push_back(std::make_unique<PersistentFlow>(
        std::make_unique<TfcSender>(&s.net, h, s.receiver, TfcHostConfig()))) ;
    flows.back()->Start();
  }
  s.net.scheduler().RunUntil(Milliseconds(300));
  EXPECT_EQ(s.bottleneck()->drops(), 0u);

  uint64_t timeouts = 0;
  uint64_t delivered = 0;
  for (auto& f : flows) {
    timeouts += f->sender().stats().timeouts;
    delivered += f->delivered_bytes();
  }
  EXPECT_EQ(timeouts, 0u);
  EXPECT_GT(static_cast<double>(delivered) * 8.0 / 0.3, 0.80e9);
}

// --- parameterized sweeps (property-style) ---

class TfcFlowCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(TfcFlowCountSweep, UtilizationFairnessQueueAndLossInvariants) {
  const int n = GetParam();
  Star s(n, kGbps, LinkOptions(), 100 + static_cast<uint64_t>(n));
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (Host* h : s.senders) {
    flows.push_back(std::make_unique<PersistentFlow>(
        std::make_unique<TfcSender>(&s.net, h, s.receiver, TfcHostConfig())));
    flows.back()->Start();
  }
  s.net.scheduler().RunUntil(Milliseconds(150));
  std::vector<uint64_t> base;
  for (auto& f : flows) {
    base.push_back(f->delivered_bytes());
  }
  s.bottleneck()->ResetMaxQueue();
  s.net.scheduler().RunUntil(Milliseconds(350));

  std::vector<double> rates;
  double total = 0;
  for (size_t i = 0; i < flows.size(); ++i) {
    rates.push_back(static_cast<double>(flows[i]->delivered_bytes() - base[i]));
    total += rates.back();
  }
  const double total_bps = total * 8.0 / 0.2;

  // Invariants, independent of flow count:
  EXPECT_GT(total_bps, 0.80e9) << "link underutilized with " << n << " flows";
  EXPECT_LT(total_bps, 0.97e9) << "overcommitted with " << n << " flows";
  EXPECT_GT(JainFairness(rates), 0.95) << "unfair with " << n << " flows";
  EXPECT_EQ(s.bottleneck()->drops(), 0u) << "dropped packets with " << n << " flows";
  // Queue bound: transient spikes stay within half the 256 KB buffer (the
  // zero-loss expectation above is the hard invariant; steady-state means
  // are checked in NearZeroQueueInSteadyState).
  EXPECT_LT(s.bottleneck()->max_queue_bytes(), 128'000u);
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, TfcFlowCountSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32),
                         ::testing::PrintToStringParamName());

class TfcRho0Sweep : public ::testing::TestWithParam<int> {};

TEST_P(TfcRho0Sweep, GoodputScalesWithTargetUtilization) {
  const double rho0 = GetParam() / 100.0;
  Network net(55);
  // 100 us links keep per-flow windows well above one MSS, so rho0 (not the
  // one-packet quantization floor) governs the rate.
  StarTopology topo = BuildStar(net, 6, LinkOptions(), kGbps, Microseconds(100));
  TfcSwitchConfig sw_config;
  sw_config.rho0 = rho0;
  InstallTfcSwitches(net, sw_config);

  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (int i = 1; i <= 5; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(std::make_unique<TfcSender>(
        &net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0], TfcHostConfig())));
    flows.back()->Start();
  }
  net.scheduler().RunUntil(Milliseconds(150));
  uint64_t before = 0;
  for (auto& f : flows) {
    before += f->delivered_bytes();
  }
  net.scheduler().RunUntil(Milliseconds(350));
  uint64_t after = 0;
  for (auto& f : flows) {
    after += f->delivered_bytes();
  }
  const double bps = static_cast<double>(after - before) * 8.0 / 0.2;

  // Paper Fig. 14a: receiver goodput tracks rho0. The Eq. 7 static map's
  // fixed point sits at ~sqrt(rho0 * rtt_b/rtt_m) of capacity, so assert a
  // band around that rather than rho0 itself.
  const double payload_rate = 1e9 * 1460.0 / 1538.0;
  const double expected = std::sqrt(rho0) * payload_rate;
  EXPECT_GT(bps, expected * 0.90);
  EXPECT_LT(bps, expected * 1.06);
}

INSTANTIATE_TEST_SUITE_P(Rho0, TfcRho0Sweep, ::testing::Values(90, 94, 97),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace tfc
