// Differential scheduler fuzz: long random schedule/cancel/run-until op
// sequences executed against a trivially-correct reference model (a sorted
// std::multimap, which keeps equal keys in insertion order), asserting the
// exact firing order matches event for event. This proves the indexed
// 4-ary event heap equivalent to the obvious implementation, including the
// FIFO tie-break that determinism depends on.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/sim/audit.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace tfc {
namespace {

// Structural validation of the live heap (back-index consistency, heap
// property, free-list integrity) — the fuzz driver runs it after every
// run-until step, so any structural corruption is caught at the op that
// introduced it rather than as a later firing-order divergence.
void ExpectHeapStructurallyValid(const Scheduler& sched, int step, uint64_t seed) {
  AuditReport report;
  Auditor auditor(&report);
  auditor.set_component("fuzz.scheduler");
  sched.AuditInvariants(auditor);
  ASSERT_TRUE(report.ok()) << "heap structure broken at step " << step
                           << " (seed " << seed << ")\n"
                           << report.ToString();
  EXPECT_GT(report.checks, 0u);
}

TEST(SchedulerFuzzTest, FiringOrderMatchesReferenceModel) {
  constexpr int kOpsPerSeed = 12000;  // acceptance floor is 10k random ops
  for (uint64_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
    Rng rng(seed);
    Scheduler sched;

    // Reference: (time -> op) in FIFO-per-time order. The scheduler fires
    // callbacks that append their op-id to `executed`; draining the model
    // appends the same ids to `expected` in model order.
    std::multimap<TimeNs, int> model;
    std::map<int, std::pair<TimeNs, Scheduler::EventId>> live;  // op -> handle
    std::vector<int> executed;
    std::vector<int> expected;
    int next_op = 0;

    auto drain_model_until = [&](TimeNs horizon) {
      while (!model.empty() && model.begin()->first <= horizon) {
        expected.push_back(model.begin()->second);
        live.erase(model.begin()->second);
        model.erase(model.begin());
      }
    };

    TimeNs horizon = 0;
    for (int step = 0; step < kOpsPerSeed; ++step) {
      const double dice = rng.Uniform();
      if (dice < 0.60 || live.empty()) {
        // Schedule at a random future time (often colliding, to stress the
        // FIFO tie-break).
        const TimeNs at = horizon + rng.UniformInt(0, 500);
        const int op = next_op++;
        auto id = sched.ScheduleAt(at, [op, &executed] { executed.push_back(op); });
        model.emplace(at, op);
        live.emplace(op, std::make_pair(at, id));
      } else if (dice < 0.80) {
        // Cancel a random live event.
        auto it = live.begin();
        std::advance(it, rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
        EXPECT_TRUE(sched.Cancel(it->second.second));
        // Double-cancel must be a no-op.
        EXPECT_FALSE(sched.Cancel(it->second.second));
        auto range = model.equal_range(it->second.first);
        for (auto m = range.first; m != range.second; ++m) {
          if (m->second == it->first) {
            model.erase(m);
            break;
          }
        }
        live.erase(it);
      } else {
        // Run forward a random amount and drain the model to match.
        horizon += rng.UniformInt(0, 400);
        sched.RunUntil(horizon);
        drain_model_until(horizon);
        ASSERT_EQ(executed, expected) << "divergence at step " << step
                                      << " (seed " << seed << ")";
        ASSERT_EQ(sched.pending(), model.size());
        ASSERT_EQ(sched.now(), horizon);
        ExpectHeapStructurallyValid(sched, step, seed);
      }
    }
    sched.Run();
    drain_model_until(INT64_MAX);

    ASSERT_EQ(executed, expected) << "final divergence (seed " << seed << ")";
    EXPECT_EQ(sched.pending(), 0u);
    EXPECT_EQ(sched.executed(), executed.size());
    // No event fired twice.
    std::vector<int> sorted = executed;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
        << "an event executed twice (seed " << seed << ")";
  }
}

TEST(SchedulerFuzzTest, FifoOrderWithinEqualTimesSurvivesCancellations) {
  Rng rng(99);
  Scheduler sched;
  std::vector<int> executed;
  std::vector<int> expected;
  std::vector<Scheduler::EventId> ids;
  // 200 events at the same instant; cancel a random subset.
  for (int i = 0; i < 200; ++i) {
    ids.push_back(sched.ScheduleAt(1000, [i, &executed] { executed.push_back(i); }));
  }
  for (int i = 0; i < 200; ++i) {
    if (rng.Bernoulli(0.4)) {
      sched.Cancel(ids[static_cast<size_t>(i)]);
    } else {
      expected.push_back(i);
    }
  }
  sched.Run();
  EXPECT_EQ(executed, expected);
}

// Regression: cancelling an already-fired event used to insert a tombstone
// and decrement the pending count, underflowing it (the count is a size_t)
// and leaking the tombstone. The indexed heap detects the stale handle via
// its generation counter and treats the cancel as the documented no-op.
TEST(SchedulerFuzzTest, CancelAfterFireIsANoOp) {
  Scheduler sched;
  int fired = 0;
  Scheduler::EventId id = sched.ScheduleAt(10, [&fired] { ++fired; });
  EXPECT_EQ(sched.pending(), 1u);
  sched.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.pending(), 0u);

  EXPECT_FALSE(sched.Cancel(id));   // already fired: must not "succeed"
  EXPECT_EQ(sched.pending(), 0u);   // and must not underflow the count
  EXPECT_FALSE(sched.Cancel(id));

  // The scheduler stays fully usable: new events (which may recycle the
  // fired event's slot) schedule, count, and cancel correctly.
  Scheduler::EventId id2 = sched.ScheduleAfter(5, [&fired] { ++fired; });
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_FALSE(sched.Cancel(id));   // stale handle must not hit the new event
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_TRUE(sched.Cancel(id2));
  EXPECT_EQ(sched.pending(), 0u);
  sched.Run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace tfc
