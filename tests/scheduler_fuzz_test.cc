// Randomized scheduler test: a few thousand interleaved schedule/cancel
// operations checked against a simple reference model (sorted multimap).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace tfc {
namespace {

TEST(SchedulerFuzzTest, MatchesReferenceModelUnderRandomOps) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
    Rng rng(seed);
    Scheduler sched;

    // Reference: (time, op-id) in FIFO-per-time order; scheduler executes
    // callbacks that append their op-id to `executed`.
    std::multimap<TimeNs, int> model;
    std::map<int, std::pair<TimeNs, Scheduler::EventId>> live;  // op -> handle
    std::vector<int> executed;
    int next_op = 0;

    TimeNs horizon = 0;
    for (int step = 0; step < 3000; ++step) {
      const double dice = rng.Uniform();
      if (dice < 0.70 || live.empty()) {
        // Schedule at a random future time.
        const TimeNs at = horizon + rng.UniformInt(0, 5000);
        const int op = next_op++;
        auto id = sched.ScheduleAt(at, [op, &executed] { executed.push_back(op); });
        model.emplace(at, op);
        live.emplace(op, std::make_pair(at, id));
      } else if (dice < 0.85) {
        // Cancel a random live event.
        auto it = live.begin();
        std::advance(it, rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
        EXPECT_TRUE(sched.Cancel(it->second.second));
        // Remove the matching (time, op) pair from the model.
        auto range = model.equal_range(it->second.first);
        for (auto m = range.first; m != range.second; ++m) {
          if (m->second == it->first) {
            model.erase(m);
            break;
          }
        }
        live.erase(it);
      } else {
        // Run forward a random amount.
        horizon += rng.UniformInt(0, 4000);
        sched.RunUntil(horizon);
        // Drain the model up to the horizon in (time, insertion) order.
        while (!model.empty() && model.begin()->first <= horizon) {
          live.erase(model.begin()->second);
          model.erase(model.begin());
        }
      }
    }
    sched.Run();
    for (const auto& [time, op] : model) {
      (void)time;
      live.erase(op);
    }
    model.clear();

    // Everything not cancelled executed exactly once, in model order.
    std::multimap<TimeNs, int> expected_order;
    // Rebuild expected sequence from the executed list itself: check sorted
    // by (time): we stored times in live/model transiently, so instead
    // verify global properties: no duplicates, count matches.
    std::vector<int> sorted = executed;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
        << "an event executed twice (seed " << seed << ")";
    EXPECT_EQ(sched.pending(), 0u);
    EXPECT_EQ(sched.executed(), executed.size());
  }
}

TEST(SchedulerFuzzTest, FifoOrderWithinEqualTimesSurvivesCancellations) {
  Rng rng(99);
  Scheduler sched;
  std::vector<int> executed;
  std::vector<int> expected;
  std::vector<Scheduler::EventId> ids;
  // 200 events at the same instant; cancel a random subset.
  for (int i = 0; i < 200; ++i) {
    ids.push_back(sched.ScheduleAt(1000, [i, &executed] { executed.push_back(i); }));
  }
  for (int i = 0; i < 200; ++i) {
    if (rng.Bernoulli(0.4)) {
      sched.Cancel(ids[static_cast<size_t>(i)]);
    } else {
      expected.push_back(i);
    }
  }
  sched.Run();
  EXPECT_EQ(executed, expected);
}

}  // namespace
}  // namespace tfc
