// Delayed-ACK policy tests: coalescing, timeout flush, and the immediate
// short-circuits that keep loss recovery, DCTCP, and TFC correct.

#include <gtest/gtest.h>

#include <memory>

#include "src/dctcp/dctcp.h"
#include "src/net/network.h"
#include "src/tcp/tcp.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace tfc {
namespace {

struct Dumbbell {
  Network net{37};
  Host* a;
  Host* b;
  Switch* s;

  explicit Dumbbell(LinkOptions opts = LinkOptions()) {
    a = net.AddHost("a");
    b = net.AddHost("b");
    s = net.AddSwitch("s");
    net.Link(a, s, kGbps, Microseconds(5), opts);
    net.Link(s, b, kGbps, Microseconds(5), opts);
    net.BuildRoutes();
  }
};

TEST(DelayedAckTest, HalvesAckCountAtAckEveryTwo) {
  Dumbbell d;
  TcpConfig per_packet;
  TcpConfig delayed;
  delayed.transport.ack_every = 2;

  TcpSender f1(&d.net, d.a, d.b, per_packet);
  f1.Write(1'000'000);
  f1.Close();
  f1.Start();
  d.net.scheduler().Run();

  TcpSender f2(&d.net, d.a, d.b, delayed);
  f2.Write(1'000'000);
  f2.Close();
  f2.Start();
  d.net.scheduler().Run();

  EXPECT_EQ(f1.delivered_bytes(), 1'000'000u);
  EXPECT_EQ(f2.delivered_bytes(), 1'000'000u);
  // Roughly half the ACK packets (control ACKs and boundary effects allow
  // a margin).
  EXPECT_LT(f2.receiver().acks_sent(), f1.receiver().acks_sent() * 6 / 10);
}

TEST(DelayedAckTest, TimeoutFlushesTheTailAck) {
  Dumbbell d;
  TcpConfig cfg;
  cfg.transport.ack_every = 4;
  cfg.transport.delayed_ack_timeout = Microseconds(100);
  TcpSender flow(&d.net, d.a, d.b, cfg);
  // One segment: in-order, unmarked, below the coalescing threshold. Only
  // the delayed-ACK timer can acknowledge it.
  flow.Write(kMssBytes);
  flow.Start();
  d.net.scheduler().RunUntil(Milliseconds(5));
  EXPECT_EQ(flow.acked_bytes(), static_cast<uint64_t>(kMssBytes));
}

TEST(DelayedAckTest, OutOfOrderDataStillTriggersImmediateDupAcks) {
  // Loss must still produce 3 dup-ACKs promptly for fast retransmit: drop
  // one packet mid-flow and check the sender repairs without an RTO.
  LinkOptions opts;
  Dumbbell d(opts);
  TcpConfig cfg;
  cfg.transport.ack_every = 4;
  TcpSender flow(&d.net, d.a, d.b, cfg);
  flow.Write(4'000'000);
  flow.Close();
  flow.Start();
  // Briefly break the bottleneck mid-transfer to lose a handful of packets.
  Port* bottleneck = Network::FindPort(d.s, d.b);
  const Bytes limit = bottleneck->buffer_limit();
  d.net.scheduler().ScheduleAt(Milliseconds(5), [&] { bottleneck->set_buffer_limit(10); });
  d.net.scheduler().ScheduleAt(Milliseconds(5) + Microseconds(50),
                               [&] { bottleneck->set_buffer_limit(limit); });
  d.net.scheduler().Run();
  EXPECT_EQ(flow.delivered_bytes(), 4'000'000u);
  EXPECT_GT(flow.stats().retransmits, 0u);
  EXPECT_EQ(flow.stats().timeouts, 0u);  // dup-ACK recovery, no RTO
}

TEST(DelayedAckTest, DctcpStillSeesEveryMark) {
  // CE-marked packets short-circuit the delay, so alpha estimation keeps
  // per-packet granularity and the queue stays near K.
  Network net(39);
  Host* a1 = net.AddHost("a1");
  Host* a2 = net.AddHost("a2");
  Host* b = net.AddHost("b");
  Switch* s = net.AddSwitch("s");
  LinkOptions opts;
  opts.ecn_threshold_bytes = kDctcpMarkingThreshold1G;
  net.Link(a1, s, kGbps, Microseconds(5), opts);
  net.Link(a2, s, kGbps, Microseconds(5), opts);
  net.Link(s, b, kGbps, Microseconds(5), opts);
  net.BuildRoutes();

  DctcpConfig cfg;
  cfg.tcp.transport.ack_every = 2;
  PersistentFlow f1(std::make_unique<DctcpSender>(&net, a1, b, cfg));
  PersistentFlow f2(std::make_unique<DctcpSender>(&net, a2, b, cfg));
  f1.Start();
  f2.Start();
  Port* bottleneck = Network::FindPort(s, b);
  net.scheduler().RunUntil(Seconds(1.0));
  bottleneck->ResetMaxQueue();
  net.scheduler().RunUntil(Seconds(2.0));
  EXPECT_LT(bottleneck->max_queue_bytes(), 150'000u);
  EXPECT_EQ(bottleneck->drops(), 0u);
}

TEST(DelayedAckTest, TfcRoundMarksAlwaysAckedImmediately) {
  // The RMA is the window grant; with delayed ACKs enabled TFC must still
  // converge and keep the queue near zero.
  Network net(41);
  StarTopology topo = BuildStar(net, 4, LinkOptions(), kGbps, Microseconds(20));
  InstallTfcSwitches(net);
  TfcHostConfig cfg;
  cfg.transport.ack_every = 2;
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (int i = 1; i <= 3; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(std::make_unique<TfcSender>(
        &net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0], cfg)));
    flows.back()->Start();
  }
  net.scheduler().RunUntil(Milliseconds(100));
  uint64_t before = 0;
  for (auto& f : flows) {
    before += f->delivered_bytes();
  }
  net.scheduler().RunUntil(Milliseconds(300));
  uint64_t after = 0;
  for (auto& f : flows) {
    after += f->delivered_bytes();
  }
  const double bps = static_cast<double>(after - before) * 8.0 / 0.2;
  EXPECT_GT(bps, 0.85e9);
  EXPECT_EQ(Network::FindPort(topo.sw, topo.hosts[0])->drops(), 0u);
}

}  // namespace
}  // namespace tfc
