// Shuffle (all-to-all) workload tests across protocols and topologies.

#include <gtest/gtest.h>

#include "src/topo/topologies.h"
#include "src/workload/shuffle.h"

namespace tfc {
namespace {

TEST(ShuffleTest, CompletesAllPairTransfers) {
  Network net(51);
  StarTopology topo = BuildStar(net, 4);
  ProtocolSuite suite;
  suite.InstallSwitchLogic(net);
  ShuffleConfig cfg;
  cfg.block_bytes = 200'000;
  ShuffleApp app(&net, suite, topo.hosts, cfg);
  bool done = false;
  app.on_finished = [&] { done = true; };
  app.Start();
  net.scheduler().RunUntil(Seconds(10));

  EXPECT_TRUE(app.finished());
  EXPECT_TRUE(done);
  EXPECT_EQ(app.flows_total(), 12u);  // 4*3 ordered pairs
  for (const auto& f : app.flows()) {
    EXPECT_EQ(f->delivered_bytes(), 200'000u);
  }
  EXPECT_GT(app.goodput_bps(), 0.0);
}

TEST(ShuffleTest, TfcShuffleIsLossFreeWhereTcpIsNot) {
  auto run = [](Protocol p) {
    ProtocolSuite suite;
    suite.protocol = p;
    Network net(53);
    LinkOptions opts;
    opts.switch_buffer_bytes = 128 * 1024;
    opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
    StarTopology topo = BuildStar(net, 8, opts);
    suite.InstallSwitchLogic(net);
    ShuffleConfig cfg;
    cfg.block_bytes = 500'000;
    auto app = std::make_unique<ShuffleApp>(&net, suite, topo.hosts, cfg);
    app->Start();
    net.scheduler().RunUntil(Seconds(30));
    EXPECT_TRUE(app->finished()) << ProtocolName(p) << " shuffle did not finish";
    uint64_t drops = 0;
    for (const auto& port : topo.sw->ports()) {
      drops += port->drops();
    }
    return drops;
  };

  EXPECT_EQ(run(Protocol::kTfc), 0u);
  EXPECT_GT(run(Protocol::kTcp), 0u);
}

TEST(ShuffleTest, RunsAcrossTheFatTreeWithEcmp) {
  Network net(55);
  FatTreeTopology topo = BuildFatTree(net, 4);
  ProtocolSuite suite;
  suite.InstallSwitchLogic(net);
  // One participant per pod: all traffic is inter-pod.
  std::vector<Host*> participants = {topo.host(0, 0), topo.host(1, 0), topo.host(2, 0),
                                     topo.host(3, 0)};
  ShuffleConfig cfg;
  cfg.block_bytes = 300'000;
  ShuffleApp app(&net, suite, participants, cfg);
  app.Start();
  net.scheduler().RunUntil(Seconds(10));
  EXPECT_TRUE(app.finished());
  EXPECT_EQ(app.total_timeouts(), 0u);
}

}  // namespace
}  // namespace tfc
