// White/grey-box tests of the TFC end-host endpoints: round-mark (RM/RMA)
// sequencing on the wire, the window-acquisition probe, weight stamping,
// and receiver ACK decoration.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace tfc {
namespace {

// Wraps the real TFC agent and records every data packet seen on the
// egress, so tests can inspect the on-the-wire RM sequence.
class SpyAgent : public PortAgent {
 public:
  SpyAgent(std::unique_ptr<PortAgent> inner) : inner_(std::move(inner)) {}

  void OnEgress(Packet& pkt) override {
    if (pkt.is_data()) {
      Seen s;
      s.flow = pkt.flow_id;
      s.rm = pkt.rm;
      s.payload = pkt.payload;
      s.weight = pkt.weight;
      s.type = pkt.type;
      seen.push_back(s);
    }
    if (inner_ != nullptr) {
      inner_->OnEgress(pkt);
    }
  }
  bool OnReverse(PacketPtr& pkt) override {
    return inner_ == nullptr ? true : inner_->OnReverse(pkt);
  }

  struct Seen {
    int flow;
    bool rm;
    uint32_t payload;
    uint8_t weight;
    PacketType type;
  };
  std::vector<Seen> seen;

 private:
  std::unique_ptr<PortAgent> inner_;
};

struct Rig {
  Network net{5};
  StarTopology topo;
  SpyAgent* spy = nullptr;

  Rig() : topo(BuildStar(net, 3, LinkOptions(), kGbps, Microseconds(20))) {
    InstallTfcSwitches(net);
    Port* egress = Network::FindPort(topo.sw, topo.hosts[0]);
    // Steal the installed agent and wrap it.
    auto inner = std::make_unique<TfcPortAgent>(topo.sw, egress, TfcSwitchConfig());
    auto wrapper = std::make_unique<SpyAgent>(std::move(inner));
    spy = wrapper.get();
    egress->set_agent(std::move(wrapper));
  }
};

TEST(TfcEndpointTest, WireSequenceStartsSynProbeMarkedData) {
  Rig rig;
  TfcSender flow(&rig.net, rig.topo.hosts[1], rig.topo.hosts[0], TfcHostConfig());
  flow.Write(10 * kMssBytes);
  flow.Start();
  rig.net.scheduler().RunUntil(Milliseconds(5));

  ASSERT_GE(rig.spy->seen.size(), 3u);
  // SYN carries the round mark (Fig. 2's "marked SYN").
  EXPECT_EQ(rig.spy->seen[0].type, PacketType::kSyn);
  EXPECT_TRUE(rig.spy->seen[0].rm);
  // Then the zero-payload acquisition probe, marked.
  EXPECT_EQ(rig.spy->seen[1].type, PacketType::kData);
  EXPECT_EQ(rig.spy->seen[1].payload, 0u);
  EXPECT_TRUE(rig.spy->seen[1].rm);
  // Then the first real data packet, marked (window just acquired).
  EXPECT_EQ(rig.spy->seen[2].type, PacketType::kData);
  EXPECT_GT(rig.spy->seen[2].payload, 0u);
  EXPECT_TRUE(rig.spy->seen[2].rm);
}

TEST(TfcEndpointTest, ExactlyOneRoundMarkPerWindow) {
  Rig rig;
  PersistentFlow flow(std::make_unique<TfcSender>(&rig.net, rig.topo.hosts[1],
                                                  rig.topo.hosts[0], TfcHostConfig()));
  flow.Start();
  rig.net.scheduler().RunUntil(Milliseconds(50));

  // Steady state: count data packets between consecutive round marks; the
  // gaps must be stable (one mark per window of packets) and positive.
  std::vector<size_t> mark_positions;
  for (size_t i = 0; i < rig.spy->seen.size(); ++i) {
    if (rig.spy->seen[i].rm && rig.spy->seen[i].payload > 0) {
      mark_positions.push_back(i);
    }
  }
  ASSERT_GT(mark_positions.size(), 20u);
  // Skip the convergence prefix; check the last 10 gaps.
  std::vector<size_t> gaps;
  for (size_t i = mark_positions.size() - 10; i < mark_positions.size(); ++i) {
    gaps.push_back(mark_positions[i] - mark_positions[i - 1]);
  }
  for (size_t g : gaps) {
    EXPECT_GE(g, 1u);
    EXPECT_LE(g, 16u);  // window is a handful of packets at this BDP
  }
  // Gaps are near-constant in steady state (within one packet).
  const size_t g0 = gaps.back();
  for (size_t g : gaps) {
    EXPECT_NEAR(static_cast<double>(g), static_cast<double>(g0), 1.01);
  }
}

TEST(TfcEndpointTest, WeightIsStampedOnDataAndProbe) {
  Rig rig;
  TfcHostConfig config;
  config.weight = 3;
  TfcSender flow(&rig.net, rig.topo.hosts[1], rig.topo.hosts[0], config);
  flow.Write(5 * kMssBytes);
  flow.Start();
  rig.net.scheduler().RunUntil(Milliseconds(5));

  int data_seen = 0;
  for (const auto& s : rig.spy->seen) {
    if (s.type == PacketType::kData) {
      EXPECT_EQ(s.weight, 3);
      ++data_seen;
    }
  }
  EXPECT_GT(data_seen, 2);
}

TEST(TfcEndpointTest, ProbeRetriedWhenUnansweredAndFlowRecovers) {
  // Black-hole the data direction after the SYN passes but before the probe
  // arrives: the probe vanishes, the sender must retry it on its timer, and
  // once the path heals the flow completes normally.
  Network net(5);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* sw = net.AddSwitch("sw");
  net.Link(a, sw, kGbps, Microseconds(5));
  net.Link(sw, b, kGbps, Microseconds(5));
  net.BuildRoutes();
  InstallTfcSwitches(net);
  Port* egress = Network::FindPort(sw, b);
  const Bytes original_limit = egress->buffer_limit();

  TfcSender flow(&net, a, b, TfcHostConfig());
  flow.Write(kMssBytes);
  flow.Start();
  net.scheduler().RunUntil(Microseconds(25));  // SYN delivered, SYNACK under way
  egress->set_buffer_limit(10);                // probe will be dropped

  net.scheduler().RunUntil(Seconds(1));
  ASSERT_EQ(flow.state(), ReliableSender::State::kEstablished);
  EXPECT_FALSE(flow.window_acquired());
  EXPECT_GT(flow.probes_sent(), 1u);  // retried at least once

  egress->set_buffer_limit(original_limit);  // heal the path
  net.scheduler().RunUntil(Seconds(5));
  EXPECT_TRUE(flow.window_acquired());
  EXPECT_EQ(flow.delivered_bytes(), static_cast<uint64_t>(kMssBytes));
}

TEST(TfcEndpointTest, LostProbesAndRmaRecoverByBackoffWellBeforeRto) {
  // Kill the first two acquisition probes on the sender's wire and the first
  // RMA on the receiver's wire. The backoff timer (base 2 ms, doubling,
  // jittered) must re-probe through all three losses and acquire the window
  // long before the 200 ms RTO safety net would have acted.
  Network net(5);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* sw = net.AddSwitch("sw");
  net.Link(a, sw, kGbps, Microseconds(5));
  net.Link(sw, b, kGbps, Microseconds(5));
  net.BuildRoutes();
  InstallTfcSwitches(net);
  FaultInjector inject(&net, 2);
  inject.DropMatching(a->nic(), [budget = 2](const Packet& pkt) mutable {
    const bool probe = pkt.type == PacketType::kData && pkt.payload == 0 && pkt.rm;
    return probe && budget-- > 0;
  });
  inject.DropMatching(b->nic(), [budget = 1](const Packet& pkt) mutable {
    return pkt.is_ack() && pkt.rma && budget-- > 0;
  });

  TfcSender flow(&net, a, b, TfcHostConfig());
  flow.Write(4 * kMssBytes);
  flow.Close();
  flow.Start();

  // Probe 1 lost, retry ~2-2.5 ms; probe 2 lost, retry ~4-5 ms; probe 3's
  // RMA lost, retry ~8-10 ms; probe 4 completes the acquisition. Budget
  // 60 ms covers all four rounds with jitter, still a third of one RTO.
  net.scheduler().RunUntil(Milliseconds(60));
  EXPECT_TRUE(flow.window_acquired());
  EXPECT_GE(flow.probe_retries(), 3u);
  EXPECT_EQ(inject.filtered_drops(), 3u);

  net.scheduler().RunUntil(Seconds(1));
  EXPECT_EQ(flow.delivered_bytes(), 4u * kMssBytes);
  EXPECT_EQ(flow.state(), ReliableSender::State::kClosed);
}

TEST(TfcEndpointTest, ProbeRetryDisabledFallsBackToRto) {
  // base = 0 turns the retry timer off: a lost probe then waits for the RTO
  // (the pre-hardening behaviour, kept reachable for comparison).
  Network net(5);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* sw = net.AddSwitch("sw");
  net.Link(a, sw, kGbps, Microseconds(5));
  net.Link(sw, b, kGbps, Microseconds(5));
  net.BuildRoutes();
  InstallTfcSwitches(net);
  FaultInjector inject(&net, 2);
  inject.DropMatching(a->nic(), [budget = 1](const Packet& pkt) mutable {
    const bool probe = pkt.type == PacketType::kData && pkt.payload == 0 && pkt.rm;
    return probe && budget-- > 0;
  });

  TfcHostConfig config;
  config.probe_retry_base = 0;
  TfcSender flow(&net, a, b, config);
  flow.Write(kMssBytes);
  flow.Start();

  net.scheduler().RunUntil(Milliseconds(150));  // inside the RTO window
  EXPECT_FALSE(flow.window_acquired());
  EXPECT_EQ(flow.probe_retries(), 0u);

  net.scheduler().RunUntil(Seconds(1));  // the RTO path still recovers
  EXPECT_TRUE(flow.window_acquired());
  EXPECT_EQ(flow.delivered_bytes(), static_cast<uint64_t>(kMssBytes));
}

TEST(TfcEndpointTest, ReceiverEchoesWindowOnlyOnRma) {
  // Drive a TfcReceiver directly and inspect the ACKs it hands to the host.
  Network net(5);
  Host* sender_host = net.AddHost("snd");
  Host* receiver_host = net.AddHost("rcv");
  net.Link(sender_host, receiver_host, kGbps, Microseconds(1));
  net.BuildRoutes();

  // Capture ACKs arriving back at the sender host.
  struct AckSink : Endpoint {
    std::vector<PacketPtr> acks;
    void OnReceive(PacketPtr pkt) override { acks.push_back(std::move(pkt)); }
  } sink;
  sender_host->RegisterEndpoint(42, &sink);

  TfcReceiver receiver(&net, receiver_host, 42, /*advertised_window=*/1 << 20);

  PacketPtr data = std::make_unique<Packet>();
  data->flow_id = 42;
  data->src = sender_host->id();
  data->dst = receiver_host->id();
  data->type = PacketType::kData;
  data->payload = kMssBytes;
  data->seq = 0;
  data->rm = true;
  data->window = 5000;  // as stamped by switches
  receiver_host->Receive(std::move(data), nullptr);

  PacketPtr plain = std::make_unique<Packet>();
  plain->flow_id = 42;
  plain->src = sender_host->id();
  plain->dst = receiver_host->id();
  plain->type = PacketType::kData;
  plain->payload = kMssBytes;
  plain->seq = kMssBytes;
  plain->rm = false;
  plain->window = 7777;
  receiver_host->Receive(std::move(plain), nullptr);

  net.scheduler().Run();
  ASSERT_EQ(sink.acks.size(), 2u);
  EXPECT_TRUE(sink.acks[0]->rma);
  EXPECT_EQ(sink.acks[0]->window, 5000u);  // echoed switch allocation
  EXPECT_FALSE(sink.acks[1]->rma);
  EXPECT_EQ(sink.acks[1]->window, kWindowInfinite);  // no allocation carried

  sender_host->UnregisterEndpoint(42);
}

TEST(TfcEndpointTest, ReceiverCapsEchoedWindowAtAdvertisedWindow) {
  Network net(5);
  Host* sender_host = net.AddHost("snd");
  Host* receiver_host = net.AddHost("rcv");
  net.Link(sender_host, receiver_host, kGbps, Microseconds(1));
  net.BuildRoutes();
  struct AckSink : Endpoint {
    std::vector<PacketPtr> acks;
    void OnReceive(PacketPtr pkt) override { acks.push_back(std::move(pkt)); }
  } sink;
  sender_host->RegisterEndpoint(43, &sink);
  TfcReceiver receiver(&net, receiver_host, 43, /*advertised_window=*/4000);

  PacketPtr data = std::make_unique<Packet>();
  data->flow_id = 43;
  data->src = sender_host->id();
  data->dst = receiver_host->id();
  data->type = PacketType::kData;
  data->payload = 100;
  data->rm = true;
  data->window = 50'000;  // network allows more than the receiver does
  receiver_host->Receive(std::move(data), nullptr);
  net.scheduler().Run();

  ASSERT_EQ(sink.acks.size(), 1u);
  EXPECT_EQ(sink.acks[0]->window, 4000u);
  sender_host->UnregisterEndpoint(43);
}

TEST(TfcEndpointTest, SynAckDoesNotGrantAWindow) {
  Rig rig;
  TfcSender flow(&rig.net, rig.topo.hosts[1], rig.topo.hosts[0], TfcHostConfig());
  flow.Write(kMssBytes);
  flow.Start();
  // Run just past the SYN/SYNACK exchange but before the probe's RMA.
  rig.net.scheduler().RunUntil(Microseconds(120));
  EXPECT_EQ(flow.state(), ReliableSender::State::kEstablished);
  EXPECT_FALSE(flow.window_acquired());
}

TEST(TfcEndpointTest, ResumeProbeDisabledKeepsStaleWindow) {
  Network net(5);
  StarTopology topo = BuildStar(net, 3, LinkOptions(), kGbps, Microseconds(20));
  InstallTfcSwitches(net);
  TfcHostConfig config;
  config.resume_probe = false;
  auto sender = std::make_unique<TfcSender>(&net, topo.hosts[1], topo.hosts[0], config);
  TfcSender* raw = sender.get();
  PersistentFlow flow(std::move(sender));
  flow.Start();
  net.scheduler().RunUntil(Milliseconds(20));
  const uint64_t probes = raw->probes_sent();
  flow.SetActive(false);
  net.scheduler().RunUntil(Milliseconds(40));
  flow.SetActive(true);
  net.scheduler().RunUntil(Milliseconds(41));
  EXPECT_EQ(raw->probes_sent(), probes);  // paper-faithful: no re-probe
  EXPECT_TRUE(raw->window_acquired());
}

}  // namespace
}  // namespace tfc
