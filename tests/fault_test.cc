// Unit tests for the fault-injection subsystem (src/net/fault.h): stochastic
// wire impairments, targeted filters, link outages and flapping, switch-agent
// state wipes, host crashes, the liveness watchdog, and fault-spec parsing.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace tfc {
namespace {

// Two hosts on one wire. Synthetic packets addressed to an unregistered flow
// are counted by the receiver's unroutable counter, which doubles as a
// delivery counter here (no endpoint consumes them).
struct WireRig {
  Network net{7};
  Host* a = nullptr;
  Host* b = nullptr;
  Port* wire = nullptr;  // a's NIC: the egress the injector sits on

  WireRig() {
    a = net.AddHost("a");
    b = net.AddHost("b");
    net.Link(a, b, kGbps, Microseconds(5));
    net.BuildRoutes();
    wire = a->nic();
  }

  void SendBurst(int count, int flow_id = 99) {
    for (int i = 0; i < count; ++i) {
      PacketPtr pkt = net.AllocatePacket();
      pkt->flow_id = flow_id;
      pkt->src = a->id();
      pkt->dst = b->id();
      pkt->type = PacketType::kData;
      pkt->payload = 100;
      pkt->seq = static_cast<uint64_t>(i) * 100;
      wire->Enqueue(std::move(pkt));
    }
  }

  uint64_t arrived() const { return b->unroutable_packets(); }
};

TEST(FaultInjectorTest, NoProfileIsTransparent) {
  WireRig rig;
  FaultInjector inject(&rig.net, 1);
  rig.SendBurst(50);
  rig.net.scheduler().Run();
  EXPECT_EQ(rig.arrived(), 50u);
  EXPECT_EQ(inject.drops(), 0u);
}

TEST(FaultInjectorTest, IidDropLosesRoughlyTheConfiguredFraction) {
  WireRig rig;
  FaultInjector inject(&rig.net, 11);
  FaultProfile profile;
  profile.drop_prob = 0.3;
  inject.Attach(rig.wire, profile);

  rig.SendBurst(2000);
  rig.net.scheduler().Run();

  EXPECT_EQ(rig.arrived() + inject.random_drops(), 2000u);
  // 0.3 +- 5 sigma on n=2000.
  EXPECT_GT(inject.random_drops(), 450u);
  EXPECT_LT(inject.random_drops(), 750u);
  EXPECT_EQ(inject.drops(), inject.random_drops());
}

TEST(FaultInjectorTest, GilbertElliottDropsInBursts) {
  WireRig rig;
  FaultInjector inject(&rig.net, 12);
  FaultProfile profile;
  profile.ge_enter_bad = 0.05;
  profile.ge_exit_bad = 0.25;
  profile.ge_drop_bad = 1.0;  // everything dies while the wire is "bad"
  inject.Attach(rig.wire, profile);

  rig.SendBurst(2000);
  rig.net.scheduler().Run();

  // Stationary bad-state probability = enter/(enter+exit) ~ 0.167.
  EXPECT_GT(inject.burst_drops(), 150u);
  EXPECT_LT(inject.burst_drops(), 550u);
  EXPECT_EQ(rig.arrived() + inject.burst_drops(), 2000u);
  EXPECT_EQ(inject.random_drops(), 0u);
}

TEST(FaultInjectorTest, DuplicationDeliversOriginalAndCopy) {
  WireRig rig;
  FaultInjector inject(&rig.net, 13);
  FaultProfile profile;
  profile.dup_prob = 1.0;
  inject.Attach(rig.wire, profile);

  rig.SendBurst(40);
  rig.net.scheduler().Run();

  EXPECT_EQ(inject.dups(), 40u);
  EXPECT_EQ(rig.arrived(), 80u);
}

TEST(FaultInjectorTest, ReorderDelaysButNeverLoses) {
  WireRig rig;
  FaultInjector inject(&rig.net, 14);
  FaultProfile profile;
  profile.reorder_prob = 1.0;
  profile.reorder_max_delay = Microseconds(50);
  inject.Attach(rig.wire, profile);

  rig.SendBurst(100);
  rig.net.scheduler().Run();

  EXPECT_EQ(inject.reorders(), 100u);
  EXPECT_EQ(rig.arrived(), 100u);
  EXPECT_EQ(inject.drops(), 0u);
}

TEST(FaultInjectorTest, ActiveWindowGatesStochasticFaults) {
  WireRig rig;
  FaultInjector inject(&rig.net, 15);
  FaultProfile profile;
  profile.drop_prob = 1.0;
  profile.active_from = Milliseconds(1);
  profile.active_until = Milliseconds(2);
  inject.Attach(rig.wire, profile);

  rig.SendBurst(10);  // before the window: untouched
  rig.net.scheduler().Run();
  EXPECT_EQ(rig.arrived(), 10u);

  rig.net.scheduler().RunUntil(Milliseconds(1));
  rig.SendBurst(10);  // inside the window: all lost
  rig.net.scheduler().Run();
  EXPECT_EQ(rig.arrived(), 10u);
  EXPECT_EQ(inject.random_drops(), 10u);

  rig.net.scheduler().RunUntil(Milliseconds(3));
  rig.SendBurst(10);  // after the window: untouched again
  rig.net.scheduler().Run();
  EXPECT_EQ(rig.arrived(), 20u);
}

TEST(FaultInjectorTest, FilterKillsOnlyMatchingPackets) {
  WireRig rig;
  FaultInjector inject(&rig.net, 16);
  inject.DropMatching(rig.wire,
                      [](const Packet& pkt) { return pkt.flow_id == 1; });

  rig.SendBurst(20, /*flow_id=*/1);
  rig.SendBurst(20, /*flow_id=*/2);
  rig.net.scheduler().Run();
  EXPECT_EQ(inject.filtered_drops(), 20u);
  EXPECT_EQ(rig.arrived(), 20u);

  inject.ClearFilter(rig.wire);
  rig.SendBurst(20, /*flow_id=*/1);
  rig.net.scheduler().Run();
  EXPECT_EQ(inject.filtered_drops(), 20u);  // unchanged
  EXPECT_EQ(rig.arrived(), 40u);
}

TEST(FaultInjectorTest, StatefulFilterCanDropFirstNMatches) {
  WireRig rig;
  FaultInjector inject(&rig.net, 17);
  inject.DropMatching(rig.wire, [budget = 3](const Packet&) mutable {
    return budget-- > 0;
  });
  rig.SendBurst(10);
  rig.net.scheduler().Run();
  EXPECT_EQ(inject.filtered_drops(), 3u);
  EXPECT_EQ(rig.arrived(), 7u);
}

TEST(FaultInjectorTest, LinkDownDestroysWirePacketsAndAccumulatesDowntime) {
  WireRig rig;
  FaultInjector inject(&rig.net, 18);

  inject.SetLinkDown(rig.wire, true);
  EXPECT_TRUE(inject.link_down(rig.wire));
  rig.SendBurst(10);
  rig.net.scheduler().Run();
  EXPECT_EQ(rig.arrived(), 0u);
  EXPECT_EQ(inject.link_drops(), 10u);

  rig.net.scheduler().RunUntil(Milliseconds(2));
  inject.SetLinkDown(rig.wire, false);
  EXPECT_FALSE(inject.link_down(rig.wire));
  EXPECT_GE(inject.link_down_ns(), Milliseconds(2) - Microseconds(50));
  EXPECT_EQ(inject.link_transitions(), 2u);

  rig.SendBurst(10);  // healed
  rig.net.scheduler().Run();
  EXPECT_EQ(rig.arrived(), 10u);
}

TEST(FaultInjectorTest, ScheduledOutageHealsAndFlowCompletes) {
  Network net(21);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* sw = net.AddSwitch("sw");
  net.Link(a, sw, kGbps, Microseconds(5));
  net.Link(sw, b, kGbps, Microseconds(5));
  net.BuildRoutes();
  InstallTfcSwitches(net);
  FaultInjector inject(&net, 3);
  // Take the sw->b segment down (both directions) mid-transfer.
  inject.ScheduleLinkDown(Network::FindPort(sw, b), Milliseconds(1), Milliseconds(2));

  TfcSender flow(&net, a, b, TfcHostConfig());
  flow.Write(400 * kMssBytes);
  flow.Close();
  flow.Start();
  net.scheduler().RunUntil(Seconds(5));

  EXPECT_EQ(inject.link_transitions(), 4u);  // two ports x down+up
  EXPECT_GT(inject.link_drops(), 0u);
  EXPECT_EQ(flow.delivered_bytes(), 400u * kMssBytes);
  EXPECT_EQ(flow.state(), ReliableSender::State::kClosed);
}

TEST(FaultInjectorTest, FlappingStopsCleanAndLeavesLinkUp) {
  WireRig rig;
  FaultInjector inject(&rig.net, 19);
  inject.ScheduleFlapping(rig.wire, /*mean_up=*/Microseconds(300),
                          /*mean_down=*/Microseconds(200),
                          /*start=*/Milliseconds(1), /*stop=*/Milliseconds(6));
  rig.net.scheduler().RunUntil(Milliseconds(10));

  EXPECT_FALSE(inject.link_down(rig.wire));   // forced up at stop
  EXPECT_GT(inject.link_transitions(), 2u);   // actually flapped
  EXPECT_GT(inject.link_down_ns(), 0);
  // With these dwell means the link is down ~2/5 of the 5 ms window.
  EXPECT_LT(inject.link_down_ns(), Milliseconds(5));
}

TEST(FaultInjectorTest, AgentWipeDiscardsParkedAcksAndAccountsThem) {
  Network net(3);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* sw = net.AddSwitch("sw");
  net.Link(a, sw, kGbps, Microseconds(5));
  net.Link(sw, b, kGbps, Microseconds(5));
  net.BuildRoutes();
  Port* egress = Network::FindPort(sw, b);
  egress->set_agent(std::make_unique<TfcPortAgent>(sw, egress, TfcSwitchConfig()));
  TfcPortAgent* agent = TfcPortAgent::FromPort(egress);

  // Exhaust the arbiter counter (cap = 2 quanta), then park three grants.
  for (int i = 0; i < 2; ++i) {
    PacketPtr ack = std::make_unique<Packet>();
    ack->uid = net.AllocatePacketUid();
    ack->flow_id = 5;
    ack->type = PacketType::kAck;
    ack->rma = true;
    ack->window = 200;
    ASSERT_TRUE(agent->OnReverse(ack));
  }
  for (int i = 0; i < 3; ++i) {
    PacketPtr ack = std::make_unique<Packet>();
    ack->uid = net.AllocatePacketUid();
    ack->flow_id = 6 + i;
    ack->type = PacketType::kAck;
    ack->rma = true;
    ack->window = 200;
    ASSERT_FALSE(agent->OnReverse(ack));
  }
  ASSERT_EQ(agent->delay_queue_length(), 3u);

  FaultInjector inject(&net, 4);
  inject.WipeAgentNow(egress);

  EXPECT_EQ(inject.agent_wipes(), 1u);
  EXPECT_EQ(inject.wiped_parked_acks(), 3u);
  EXPECT_EQ(inject.drops(), 3u);
  EXPECT_EQ(agent->delay_queue_length(), 0u);
  EXPECT_EQ(agent->state_wipes(), 1u);
  EXPECT_EQ(agent->delimiter_flow(), -1);
  EXPECT_FALSE(agent->has_window());

  const AuditReport report = net.RunAudit();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(FaultInjectorTest, WipedAgentReconvergesUnderLiveTraffic) {
  Network net(31);
  StarTopology topo = BuildStar(net, 3, LinkOptions(), kGbps, Microseconds(20));
  InstallTfcSwitches(net);
  net.EnableAudit(Microseconds(500));
  FaultInjector inject(&net, 5);

  Port* egress = Network::FindPort(topo.sw, topo.hosts[0]);
  TfcPortAgent* agent = TfcPortAgent::FromPort(egress);

  PersistentFlow f1(std::make_unique<TfcSender>(&net, topo.hosts[1], topo.hosts[0],
                                                TfcHostConfig()));
  PersistentFlow f2(std::make_unique<TfcSender>(&net, topo.hosts[2], topo.hosts[0],
                                                TfcHostConfig()));
  f1.Start();
  f2.Start();
  net.scheduler().RunUntil(Milliseconds(20));
  ASSERT_GT(agent->slots_completed(), 0u);
  const uint64_t slots_before = agent->slots_completed();
  const uint64_t delivered_before = f1.delivered_bytes() + f2.delivered_bytes();

  inject.WipeAgentNow(egress);
  EXPECT_FALSE(agent->has_window());

  net.scheduler().RunUntil(Milliseconds(40));
  // The agent re-elected a delimiter, completed fresh slots, re-measured
  // rtt_b, and traffic kept flowing.
  EXPECT_GE(agent->delimiter_flow(), 0);
  EXPECT_GT(agent->slots_completed(), slots_before);
  EXPECT_TRUE(agent->has_window());
  EXPECT_GT(agent->rtt_b(), 0);
  EXPECT_LE(agent->rtt_b(), Milliseconds(1));
  EXPECT_GT(f1.delivered_bytes() + f2.delivered_bytes(), delivered_before);
}

TEST(FaultInjectorTest, HostOutageDropsTrafficThenTransportRecovers) {
  Network net(41);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* sw = net.AddSwitch("sw");
  net.Link(a, sw, kGbps, Microseconds(5));
  net.Link(sw, b, kGbps, Microseconds(5));
  net.BuildRoutes();
  InstallTfcSwitches(net);
  FaultInjector inject(&net, 6);
  inject.ScheduleHostOutage(b, Milliseconds(1), Milliseconds(2));

  TfcSender flow(&net, a, b, TfcHostConfig());
  flow.Write(300 * kMssBytes);
  flow.Close();
  flow.Start();
  net.scheduler().RunUntil(Seconds(5));

  EXPECT_EQ(inject.host_transitions(), 2u);
  EXPECT_GT(b->down_drops(), 0u);
  EXPECT_EQ(flow.delivered_bytes(), 300u * kMssBytes);
  EXPECT_EQ(flow.state(), ReliableSender::State::kClosed);
}

TEST(FaultInjectorTest, MetricsExportFaultCounters) {
  WireRig rig;
  FaultInjector inject(&rig.net, 20);
  FaultProfile profile;
  profile.drop_prob = 1.0;
  inject.Attach(rig.wire, profile);
  rig.SendBurst(5);
  rig.net.scheduler().Run();

  double value = 0.0;
  ASSERT_TRUE(rig.net.metrics().Read("fault.drops", &value));
  EXPECT_EQ(value, 5.0);
  ASSERT_TRUE(rig.net.metrics().Read("fault.random_drops", &value));
  EXPECT_EQ(value, 5.0);
  ASSERT_TRUE(rig.net.metrics().Read("fault.link_down_ns", &value));
  EXPECT_EQ(value, 0.0);
}

TEST(FaultInjectorTest, FaultDropsEmitTraceEvents) {
  WireRig rig;
  CountingTracer tracer;
  rig.net.set_tracer(&tracer);
  FaultInjector inject(&rig.net, 22);
  FaultProfile profile;
  profile.drop_prob = 1.0;
  inject.Attach(rig.wire, profile);
  rig.SendBurst(8);
  rig.net.scheduler().Run();
  EXPECT_EQ(tracer.fault_drops, 8u);
  EXPECT_EQ(tracer.delivers, 0u);
}

// --- satellite: the host's own drop paths are observable ---

TEST(HostDropAccountingTest, UnroutablePacketIsCountedTracedAndExported) {
  WireRig rig;
  CountingTracer tracer;
  rig.net.set_tracer(&tracer);
  rig.SendBurst(3);  // flow 99 has no registered endpoint at b
  rig.net.scheduler().Run();

  EXPECT_EQ(rig.b->unroutable_packets(), 3u);
  EXPECT_EQ(tracer.drops, 3u);     // the post-teardown drop is a kDrop event
  EXPECT_EQ(tracer.delivers, 3u);  // still delivered to the host first
  double value = 0.0;
  ASSERT_TRUE(rig.net.metrics().Read("host.b.unroutable", &value));
  EXPECT_EQ(value, 3.0);
}

TEST(HostDropAccountingTest, DownHostDropsAreFaultDrops) {
  WireRig rig;
  CountingTracer tracer;
  rig.net.set_tracer(&tracer);
  rig.b->set_down(true);
  rig.SendBurst(4);
  rig.net.scheduler().Run();

  EXPECT_EQ(rig.b->down_drops(), 4u);
  EXPECT_EQ(rig.b->unroutable_packets(), 0u);
  EXPECT_EQ(tracer.fault_drops, 4u);
  EXPECT_EQ(tracer.delivers, 0u);
  double value = 0.0;
  ASSERT_TRUE(rig.net.metrics().Read("host.b.down_drops", &value));
  EXPECT_EQ(value, 4.0);
}

// --- liveness watchdog ---

TEST(LivenessWatchdogTest, FlagsStalledEntryAndNotProgressingOne) {
  Network net(1);
  double moving = 0.0;
  LivenessWatchdog dog(&net.scheduler(), /*check_period=*/Milliseconds(1),
                       /*stall_after=*/Milliseconds(5));
  dog.Watch("stuck", [] { return 1.0; }, [] { return false; });
  dog.Watch("moving", [&moving] { return moving += 1.0; }, [] { return false; });
  dog.Start();

  net.scheduler().RunUntil(Milliseconds(3));
  EXPECT_TRUE(dog.clean());  // not stalled long enough yet

  net.scheduler().RunUntil(Milliseconds(20));
  ASSERT_EQ(dog.flagged().size(), 1u);
  EXPECT_EQ(dog.flagged()[0], "stuck");
  const std::vector<std::string> stalled = dog.Stalled();
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0], "stuck");
}

TEST(LivenessWatchdogTest, DoneEntriesAreNeverFlagged) {
  Network net(1);
  LivenessWatchdog dog(&net.scheduler(), Milliseconds(1), Milliseconds(4));
  dog.Watch("finished", [] { return 42.0; }, [] { return true; });
  dog.Start();
  net.scheduler().RunUntil(Milliseconds(30));
  EXPECT_TRUE(dog.clean());
}

TEST(LivenessWatchdogTest, RecoveredEntryLeavesStalledButStaysOnRecord) {
  Network net(1);
  double value = 0.0;
  LivenessWatchdog dog(&net.scheduler(), Milliseconds(1), Milliseconds(4));
  dog.Watch("wedged", [&value] { return value; }, [] { return false; });
  dog.Start();

  net.scheduler().RunUntil(Milliseconds(10));  // stalls at value=0
  ASSERT_EQ(dog.flagged().size(), 1u);

  value = 7.0;  // progress resumes
  net.scheduler().RunUntil(Milliseconds(12));
  EXPECT_TRUE(dog.Stalled().empty());
  EXPECT_EQ(dog.flagged().size(), 1u);  // the record is sticky
}

TEST(LivenessWatchdogTest, WatchMetricTracksARegistryGauge) {
  Network net(1);
  uint64_t counter = 0;
  MetricRegistry& metrics = net.metrics();
  ScopedMetrics scoped(&metrics);
  scoped.AddCallbackGauge("test.progress",
                          [&counter] { return static_cast<double>(counter); });

  LivenessWatchdog dog(&net.scheduler(), Milliseconds(1), Milliseconds(4));
  dog.WatchMetric(&metrics, "test.progress", [] { return false; });
  dog.Start();
  net.scheduler().RunUntil(Milliseconds(10));
  ASSERT_EQ(dog.flagged().size(), 1u);
  EXPECT_EQ(dog.flagged()[0], "test.progress");
}

TEST(LivenessWatchdogTest, StopHaltsTicking) {
  Network net(1);
  LivenessWatchdog dog(&net.scheduler(), Milliseconds(1), Milliseconds(2));
  dog.Watch("stuck", [] { return 0.0; }, [] { return false; });
  dog.Start();
  net.scheduler().RunUntil(Milliseconds(1));
  dog.Stop();
  const uint64_t ticks = dog.ticks();
  net.scheduler().RunUntil(Milliseconds(30));
  EXPECT_EQ(dog.ticks(), ticks);
  EXPECT_TRUE(dog.clean());  // never reached the stall threshold
}

// --- fault-spec parsing ---

TEST(FaultSpecTest, ParsesFullSpec) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(FaultSpec::Parse(
      "drop=0.01,dup=0.002,reorder=0.005,reorder_delay=20us,"
      "ge=0.02/0.3/0.5,flap=5ms/500us,wipe=10ms,host_down=4ms+1ms,"
      "start=1ms,stop=50ms,seed=7",
      &spec, &error))
      << error;
  EXPECT_DOUBLE_EQ(spec.profile.drop_prob, 0.01);
  EXPECT_DOUBLE_EQ(spec.profile.dup_prob, 0.002);
  EXPECT_DOUBLE_EQ(spec.profile.reorder_prob, 0.005);
  EXPECT_EQ(spec.profile.reorder_max_delay, Microseconds(20));
  EXPECT_DOUBLE_EQ(spec.profile.ge_enter_bad, 0.02);
  EXPECT_DOUBLE_EQ(spec.profile.ge_exit_bad, 0.3);
  EXPECT_DOUBLE_EQ(spec.profile.ge_drop_bad, 0.5);
  EXPECT_EQ(spec.flap_mean_up, Milliseconds(5));
  EXPECT_EQ(spec.flap_mean_down, Microseconds(500));
  EXPECT_EQ(spec.wipe_period, Milliseconds(10));
  EXPECT_EQ(spec.host_down_at, Milliseconds(4));
  EXPECT_EQ(spec.host_down_for, Milliseconds(1));
  EXPECT_EQ(spec.profile.active_from, Milliseconds(1));
  EXPECT_EQ(spec.profile.active_until, Milliseconds(50));
  EXPECT_EQ(spec.seed, 7u);
}

TEST(FaultSpecTest, BareNumbersAreNanoseconds) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(FaultSpec::Parse("wipe=1500", &spec, &error)) << error;
  EXPECT_EQ(spec.wipe_period, 1500);
}

TEST(FaultSpecTest, RejectsMalformedInput) {
  FaultSpec spec;
  std::string error;
  EXPECT_FALSE(FaultSpec::Parse("bogus=1", &spec, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FaultSpec::Parse("drop=1.5", &spec, &error));  // prob > 1
  EXPECT_FALSE(FaultSpec::Parse("drop=abc", &spec, &error));
  EXPECT_FALSE(FaultSpec::Parse("reorder=0.1", &spec, &error));  // needs delay
  EXPECT_FALSE(FaultSpec::Parse("ge=0.1/0.2", &spec, &error));   // 3 fields
  EXPECT_FALSE(FaultSpec::Parse("wipe=10xs", &spec, &error));    // bad suffix
}

TEST(FaultSpecTest, AppliedSpecDisruptsButFlowsComplete) {
  Network net(51);
  TestbedTopology topo = BuildTestbed(net);
  InstallTfcSwitches(net);
  net.EnableAudit(Milliseconds(1));
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(FaultSpec::Parse("drop=0.01,start=1ms,stop=20ms,wipe=8ms", &spec, &error))
      << error;
  FaultInjector inject(&net, spec.seed);
  inject.ApplySpec(spec);

  // Cross-rack flows: H1->H4 and H5->H2 traverse the NF0 trunks.
  std::vector<std::unique_ptr<TfcSender>> flows;
  flows.push_back(std::make_unique<TfcSender>(&net, topo.hosts[0], topo.hosts[3],
                                              TfcHostConfig()));
  flows.push_back(std::make_unique<TfcSender>(&net, topo.hosts[4], topo.hosts[1],
                                              TfcHostConfig()));
  for (auto& f : flows) {
    f->Write(100 * kMssBytes);
    f->Close();
    f->Start();
  }
  net.scheduler().RunUntil(Seconds(10));

  EXPECT_GT(inject.drops() + inject.agent_wipes(), 0u);
  for (auto& f : flows) {
    EXPECT_EQ(f->delivered_bytes(), 100u * kMssBytes);
    EXPECT_EQ(f->state(), ReliableSender::State::kClosed);
  }
}

}  // namespace
}  // namespace tfc
