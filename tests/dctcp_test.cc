// DCTCP behaviour tests: marking, alpha estimation, bounded queues.

#include <gtest/gtest.h>

#include "src/dctcp/dctcp.h"
#include "src/net/network.h"
#include "src/workload/persistent_flow.h"
#include "src/workload/samplers.h"

namespace tfc {
namespace {

struct Dumbbell {
  Network net;
  Host* a;
  Host* b;
  Switch* s;

  explicit Dumbbell(uint64_t ecn_threshold) : net(13) {
    LinkOptions opts;
    opts.ecn_threshold_bytes = ecn_threshold;
    a = net.AddHost("a");
    b = net.AddHost("b");
    s = net.AddSwitch("s");
    net.Link(a, s, kGbps, Microseconds(5), opts);
    net.Link(s, b, kGbps, Microseconds(5), opts);
    net.BuildRoutes();
  }
};

TEST(DctcpTest, QueueStabilizesNearMarkingThreshold) {
  Dumbbell d(kDctcpMarkingThreshold1G);
  PersistentFlow flow(
      std::make_unique<DctcpSender>(&d.net, d.a, d.b, DctcpConfig()));
  flow.Start();

  Port* bottleneck = Network::FindPort(d.s, d.b);
  d.net.scheduler().RunUntil(Seconds(1.0));  // warm up
  bottleneck->ResetMaxQueue();
  QueueSampler sampler(&d.net.scheduler(), bottleneck, Microseconds(100));
  d.net.scheduler().RunUntil(Seconds(3.0));
  sampler.Stop();

  // Paper Fig. 8: DCTCP holds the queue around K (~30 KB), far below the
  // 256 KB buffer that TCP fills.
  EXPECT_LT(sampler.stats.max(), 100'000.0);
  EXPECT_GT(sampler.stats.mean(), 1'000.0);
  EXPECT_LT(sampler.stats.mean(), 60'000.0);
}

TEST(DctcpTest, AlphaConvergesBelowOneUnderMildCongestion) {
  Dumbbell d(kDctcpMarkingThreshold1G);
  auto sender = std::make_unique<DctcpSender>(&d.net, d.a, d.b, DctcpConfig());
  DctcpSender* raw = sender.get();
  PersistentFlow flow(std::move(sender));
  flow.Start();
  d.net.scheduler().RunUntil(Seconds(2.0));

  // A single long flow sees only occasional marks: alpha must have decayed
  // from its initial 1.0 but stays positive.
  EXPECT_LT(raw->alpha(), 0.9);
  EXPECT_GE(raw->alpha(), 0.0);
}

TEST(DctcpTest, AchievesFullThroughputDespiteMarking) {
  Dumbbell d(kDctcpMarkingThreshold1G);
  PersistentFlow flow(
      std::make_unique<DctcpSender>(&d.net, d.a, d.b, DctcpConfig()));
  flow.Start();
  d.net.scheduler().RunUntil(Seconds(1.0));
  const uint64_t before = flow.delivered_bytes();
  d.net.scheduler().RunUntil(Seconds(2.0));
  const double bps = static_cast<double>(flow.delivered_bytes() - before) * 8.0;
  EXPECT_GT(bps, 0.90e9);
}

TEST(DctcpTest, NoMarkingBehavesLikeTcp) {
  Dumbbell d(/*ecn_threshold=*/0);
  auto sender = std::make_unique<DctcpSender>(&d.net, d.a, d.b, DctcpConfig());
  DctcpSender* raw = sender.get();
  PersistentFlow flow(std::move(sender));
  flow.Start();
  d.net.scheduler().RunUntil(Seconds(1.0));
  // Without CE marks alpha decays toward zero and the window keeps growing.
  EXPECT_LT(raw->alpha(), 0.15);
  EXPECT_GT(raw->cwnd_bytes(), 10.0 * kMssBytes);
}

TEST(DctcpTest, ManyFlowsStillBoundQueueBelowDropTailLevels) {
  Dumbbell d(kDctcpMarkingThreshold1G);
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (int i = 0; i < 5; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(
        std::make_unique<DctcpSender>(&d.net, d.a, d.b, DctcpConfig())));
    flows.back()->Start();
  }
  Port* bottleneck = Network::FindPort(d.s, d.b);
  d.net.scheduler().RunUntil(Seconds(1.0));
  bottleneck->ResetMaxQueue();
  d.net.scheduler().RunUntil(Seconds(2.0));
  EXPECT_LT(bottleneck->max_queue_bytes(), 150'000u);
}

}  // namespace
}  // namespace tfc
