// RCP baseline tests: rate stamping, control-loop convergence, and the
// slow-convergence / flow-join weaknesses that motivate TFC.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/rcp/rcp.h"
#include "src/sim/stats.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace tfc {
namespace {

struct RcpStar {
  Network net{27};
  StarTopology topo;

  explicit RcpStar(int hosts) : topo(BuildStar(net, hosts, LinkOptions(), kGbps, Microseconds(20))) {
    InstallRcpSwitches(net);
  }
};

TEST(RcpTest, InstallsOnAllSwitchPorts) {
  RcpStar s(4);
  for (const auto& port : s.topo.sw->ports()) {
    EXPECT_NE(RcpPortAgent::FromPort(port.get()), nullptr);
  }
  EXPECT_EQ(s.topo.hosts[0]->nic()->agent(), nullptr);
}

TEST(RcpTest, StampsPathMinimumRate) {
  RcpStar s(3);
  RcpPortAgent* agent =
      RcpPortAgent::FromPort(Network::FindPort(s.topo.sw, s.topo.hosts[0]));
  Packet pkt;
  pkt.type = PacketType::kData;
  pkt.payload = kMssBytes;
  pkt.rate_bps = 0;
  agent->OnEgress(pkt);
  EXPECT_EQ(pkt.rate_bps, static_cast<uint64_t>(agent->fair_rate_bps()));

  Packet tighter;
  tighter.type = PacketType::kData;
  tighter.payload = kMssBytes;
  tighter.rate_bps = 1000;  // upstream router allocated less
  agent->OnEgress(tighter);
  EXPECT_EQ(tighter.rate_bps, 1000u);
}

TEST(RcpTest, SingleFlowRampsToNearLineRate) {
  RcpStar s(2);
  PersistentFlow flow(
      std::make_unique<RcpSender>(&s.net, s.topo.hosts[1], s.topo.hosts[0], RcpHostConfig()));
  flow.Start();
  s.net.scheduler().RunUntil(Milliseconds(200));
  const uint64_t before = flow.delivered_bytes();
  s.net.scheduler().RunUntil(Milliseconds(400));
  const double bps = static_cast<double>(flow.delivered_bytes() - before) * 8.0 / 0.2;
  EXPECT_GT(bps, 0.80e9);
}

TEST(RcpTest, FlowsShareFairly) {
  RcpStar s(5);
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (int i = 1; i <= 4; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(std::make_unique<RcpSender>(
        &s.net, s.topo.hosts[static_cast<size_t>(i)], s.topo.hosts[0], RcpHostConfig())));
    flows.back()->Start();
  }
  s.net.scheduler().RunUntil(Milliseconds(300));
  std::vector<uint64_t> base;
  for (auto& f : flows) {
    base.push_back(f->delivered_bytes());
  }
  s.net.scheduler().RunUntil(Milliseconds(600));
  std::vector<double> rates;
  for (size_t i = 0; i < flows.size(); ++i) {
    rates.push_back(static_cast<double>(flows[i]->delivered_bytes() - base[i]));
  }
  EXPECT_GT(JainFairness(rates), 0.95);
}

TEST(RcpTest, FairRateSignalNeedsManyControlIntervalsToSettle) {
  // The property that motivates TFC (paper Sec. 3.1 / 7): RCP's allocation
  // is a control loop over the *stale* fair rate, so after a flow joins the
  // advertised rate takes many RTT-scale intervals to reach the new fair
  // share (the overshoot meanwhile parks in the queue — see the next test).
  // TFC recomputes the exact split within one slot.
  RcpStar s(3);
  PersistentFlow incumbent(std::make_unique<RcpSender>(&s.net, s.topo.hosts[1],
                                                       s.topo.hosts[0], RcpHostConfig()));
  incumbent.Start();
  s.net.scheduler().RunUntil(Milliseconds(300));
  RcpPortAgent* agent =
      RcpPortAgent::FromPort(Network::FindPort(s.topo.sw, s.topo.hosts[0]));
  // Steady state with one flow: R near line rate.
  EXPECT_GT(agent->fair_rate_bps(), 0.7e9);

  PersistentFlow joiner(std::make_unique<RcpSender>(&s.net, s.topo.hosts[2],
                                                    s.topo.hosts[0], RcpHostConfig()));
  joiner.Start();
  const TimeNs t0 = s.net.scheduler().now();
  const TimeNs rtt = Microseconds(170);  // base path RTT in this topology
  TimeNs settle = -1;
  int in_band = 0;
  for (int step = 1; step <= 2000; ++step) {
    s.net.scheduler().RunUntil(t0 + step * Microseconds(100));
    const double r = agent->fair_rate_bps();
    if (r > 0.375e9 && r < 0.625e9) {  // within 25% of C/2
      if (++in_band == 5) {
        settle = s.net.scheduler().now() - t0;
        break;
      }
    } else {
      in_band = 0;
    }
  }
  ASSERT_GE(settle, 0) << "fair rate never settled";
  // Slow relative to TFC's one-slot convergence: at least several RTTs.
  EXPECT_GT(settle, 4 * rtt);
}

TEST(RcpTest, FlowJoinBuildsQueueUnlikeTfc) {
  // RCP hands the newcomer the current fair rate while the incumbents still
  // send at theirs: the overload parks in the buffer until the control loop
  // reacts. TFC recomputes the split within a slot.
  auto join_queue = [](bool use_tfc) {
    Network net(33);
    StarTopology topo = BuildStar(net, 6, LinkOptions(), kGbps, Microseconds(20));
    if (use_tfc) {
      InstallTfcSwitches(net);
    } else {
      InstallRcpSwitches(net);
    }
    std::vector<std::unique_ptr<PersistentFlow>> flows;
    auto add = [&](int host) {
      std::unique_ptr<ReliableSender> s;
      if (use_tfc) {
        s = std::make_unique<TfcSender>(&net, topo.hosts[static_cast<size_t>(host)],
                                        topo.hosts[0], TfcHostConfig());
      } else {
        s = std::make_unique<RcpSender>(&net, topo.hosts[static_cast<size_t>(host)],
                                        topo.hosts[0], RcpHostConfig());
      }
      flows.push_back(std::make_unique<PersistentFlow>(std::move(s)));
      flows.back()->Start();
    };
    add(1);
    net.scheduler().RunUntil(Milliseconds(300));
    Port* bottleneck = Network::FindPort(topo.sw, topo.hosts[0]);
    bottleneck->ResetMaxQueue();
    for (int h = 2; h <= 5; ++h) {
      add(h);  // four joiners at once
    }
    net.scheduler().RunUntil(Milliseconds(350));
    return bottleneck->max_queue_bytes();
  };

  const Bytes tfc_queue = join_queue(true);
  const Bytes rcp_queue = join_queue(false);
  EXPECT_GT(rcp_queue, 2 * tfc_queue);
}

}  // namespace
}  // namespace tfc
