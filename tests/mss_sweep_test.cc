// Segment-size robustness: every protocol must work with small and jumbo
// MSS configurations, not just the 1460-byte default the paper uses.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"
#include "src/workload/protocol.h"

namespace tfc {
namespace {

struct MssCase {
  Protocol protocol;
  uint32_t mss;
};

std::string CaseName(const ::testing::TestParamInfo<MssCase>& info) {
  return std::string(ProtocolName(info.param.protocol)) + "Mss" +
         std::to_string(info.param.mss);
}

class MssSweep : public ::testing::TestWithParam<MssCase> {};

TEST_P(MssSweep, TransferCompletesAndSaturates) {
  const MssCase param = GetParam();
  ProtocolSuite suite;
  suite.protocol = param.protocol;
  suite.tcp.transport.mss = param.mss;
  suite.dctcp.tcp.transport.mss = param.mss;
  suite.tfc.transport.mss = param.mss;
  // TFC's switch-side quantum must match the frame size in use, exactly as
  // an operator would configure a jumbo-frame fabric.
  suite.tfc_switch.delay_quantum = param.mss + kHeaderBytes;
  suite.tfc_switch.rtt_measure_min_frame = std::min<uint32_t>(1500, param.mss);

  Network net(71);
  LinkOptions opts;
  opts.switch_buffer_bytes = 512 * 1024;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  StarTopology topo = BuildStar(net, 4, opts, kGbps, Microseconds(20));
  suite.InstallSwitchLogic(net);

  // One fixed-size transfer plus two saturating flows.
  auto fixed = suite.MakeSender(&net, topo.hosts[1], topo.hosts[0]);
  fixed->Write(3'000'000);
  fixed->Close();
  fixed->Start();
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (int i = 2; i <= 3; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(
        suite.MakeSender(&net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0])));
    flows.back()->Start();
  }
  net.scheduler().RunUntil(Seconds(1.0));

  EXPECT_EQ(fixed->delivered_bytes(), 3'000'000u)
      << CaseName({::testing::TestParamInfo<MssCase>(param, 0)});
  uint64_t total = fixed->delivered_bytes();
  for (auto& f : flows) {
    total += f->delivered_bytes();
  }
  // The link moved a healthy volume regardless of segment size (smaller
  // MSS pays more header overhead, so the floor is loose).
  EXPECT_GT(static_cast<double>(total) * 8.0, 0.5e9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MssSweep,
                         ::testing::Values(MssCase{Protocol::kTcp, 536},
                                           MssCase{Protocol::kTcp, 8960},
                                           MssCase{Protocol::kDctcp, 536},
                                           MssCase{Protocol::kDctcp, 8960},
                                           MssCase{Protocol::kTfc, 536},
                                           MssCase{Protocol::kTfc, 8960},
                                           MssCase{Protocol::kTfc, 1460}),
                         CaseName);

TEST(JumboTest, TfcJumboFlowSurvivesDefaultQuantumSwitch) {
  // Deliberate misconfiguration: jumbo sender, switch quantum left at the
  // 1518 default. The sender's own-frame floor must keep the flow moving
  // (degraded, not deadlocked).
  Network net(73);
  StarTopology topo = BuildStar(net, 3, LinkOptions(), kGbps, Microseconds(20));
  InstallTfcSwitches(net);  // default 1518 quantum
  TfcHostConfig cfg;
  cfg.transport.mss = 8960;
  auto flow = std::make_unique<TfcSender>(&net, topo.hosts[1], topo.hosts[0], cfg);
  flow->Write(1'000'000);
  flow->Close();
  flow->Start();
  net.scheduler().RunUntil(Seconds(5));
  EXPECT_EQ(flow->delivered_bytes(), 1'000'000u);
}

}  // namespace
}  // namespace tfc
