// Unit tests for the network substrate: links, queues, ECN, routing, hosts.

#include <gtest/gtest.h>

#include <vector>

#include "src/net/network.h"
#include "src/topo/topologies.h"

namespace tfc {
namespace {

PacketPtr MakeData(Network& net, int flow, int src, int dst, uint32_t payload) {
  PacketPtr pkt = std::make_unique<Packet>();
  pkt->uid = net.AllocatePacketUid();
  pkt->flow_id = flow;
  pkt->src = src;
  pkt->dst = dst;
  pkt->type = PacketType::kData;
  pkt->payload = payload;
  return pkt;
}

// Endpoint that records delivery times of all packets it receives.
class SinkEndpoint : public Endpoint {
 public:
  explicit SinkEndpoint(Scheduler* sched) : sched_(sched) {}
  void OnReceive(PacketPtr pkt) override {
    arrival_times.push_back(sched_->now());
    packets.push_back(std::move(pkt));
  }
  std::vector<TimeNs> arrival_times;
  std::vector<PacketPtr> packets;

 private:
  Scheduler* sched_;
};

TEST(PacketTest, SizeAccounting) {
  Packet p;
  p.payload = kMssBytes;
  EXPECT_EQ(p.frame_bytes(), 1518u);
  EXPECT_EQ(p.wire_bytes(), 1538u);
  Packet ack;
  ack.payload = 0;
  EXPECT_EQ(ack.frame_bytes(), kHeaderBytes);
  EXPECT_EQ(ack.wire_bytes(), kMinFrameBytes + kWireOverheadBytes);
}

TEST(LinkTest, SerializationPlusPropagationDelay) {
  Network net;
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  net.Link(a, b, kGbps, Microseconds(5));
  net.BuildRoutes();

  SinkEndpoint sink(&net.scheduler());
  b->RegisterEndpoint(1, &sink);

  a->Send(MakeData(net, 1, a->id(), b->id(), kMssBytes));
  net.scheduler().Run();

  // 1538 wire bytes at 1 Gbps = 12304 ns serialization + 5000 ns propagation.
  ASSERT_EQ(sink.arrival_times.size(), 1u);
  EXPECT_EQ(sink.arrival_times[0], 12304 + 5000);
}

TEST(LinkTest, BackToBackPacketsSerializeSequentially) {
  Network net;
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  net.Link(a, b, kGbps, Microseconds(5));
  net.BuildRoutes();

  SinkEndpoint sink(&net.scheduler());
  b->RegisterEndpoint(1, &sink);

  for (int i = 0; i < 3; ++i) {
    a->Send(MakeData(net, 1, a->id(), b->id(), kMssBytes));
  }
  net.scheduler().Run();

  ASSERT_EQ(sink.arrival_times.size(), 3u);
  EXPECT_EQ(sink.arrival_times[0], 12304 + 5000);
  EXPECT_EQ(sink.arrival_times[1], 2 * 12304 + 5000);
  EXPECT_EQ(sink.arrival_times[2], 3 * 12304 + 5000);
}

TEST(LinkTest, TenGigIsTenTimesFaster) {
  Network net;
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Port* pa = net.Link(a, b, 10 * kGbps, 0);
  net.BuildRoutes();
  EXPECT_EQ(pa->SerializationTime(1538), 1230);  // 12304 / 10, truncated
}

TEST(QueueTest, TailDropWhenBufferFull) {
  Network net;
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  LinkOptions opts;
  opts.host_buffer_bytes = 3 * 1518;  // room for exactly 3 full frames
  net.Link(a, b, kGbps, 0, opts);
  net.BuildRoutes();

  SinkEndpoint sink(&net.scheduler());
  b->RegisterEndpoint(1, &sink);

  // The first packet starts serializing immediately (leaves the queue space
  // accounting only after serialization completes), so with a 3-frame buffer
  // we can accept 3 queued + 0 in flight at enqueue time of the 4th/5th.
  for (int i = 0; i < 6; ++i) {
    a->Send(MakeData(net, 1, a->id(), b->id(), kMssBytes));
  }
  net.scheduler().Run();

  Port* nic = a->nic();
  EXPECT_GT(nic->drops(), 0u);
  EXPECT_EQ(sink.packets.size() + nic->drops(), 6u);
  EXPECT_LE(nic->max_queue_bytes(), 3u * 1518u);
}

TEST(QueueTest, EcnMarkingAboveThreshold) {
  Network net;
  Host* a = net.AddHost("a");
  Switch* s = net.AddSwitch("s");
  Host* b = net.AddHost("b");
  LinkOptions opts;
  opts.ecn_threshold_bytes = 2 * 1518;
  net.Link(a, s, 10 * kGbps, 0, opts);  // fast ingress so the egress queues
  net.Link(s, b, kGbps, 0, opts);
  net.BuildRoutes();

  SinkEndpoint sink(&net.scheduler());
  b->RegisterEndpoint(1, &sink);

  for (int i = 0; i < 8; ++i) {
    auto pkt = MakeData(net, 1, a->id(), b->id(), kMssBytes);
    pkt->ecn_capable = true;
    a->Send(std::move(pkt));
  }
  net.scheduler().Run();

  ASSERT_EQ(sink.packets.size(), 8u);
  int marked = 0;
  for (const auto& p : sink.packets) {
    marked += p->ecn_ce ? 1 : 0;
  }
  // Early packets pass unmarked; once the switch egress queue exceeds 2
  // frames, later packets get CE.
  EXPECT_GT(marked, 0);
  EXPECT_LT(marked, 8);
  EXPECT_FALSE(sink.packets.front()->ecn_ce);
}

TEST(QueueTest, NonEcnCapablePacketsNeverMarked) {
  Network net;
  Host* a = net.AddHost("a");
  Switch* s = net.AddSwitch("s");
  Host* b = net.AddHost("b");
  LinkOptions opts;
  opts.ecn_threshold_bytes = 1518;
  net.Link(a, s, 10 * kGbps, 0, opts);
  net.Link(s, b, kGbps, 0, opts);
  net.BuildRoutes();

  SinkEndpoint sink(&net.scheduler());
  b->RegisterEndpoint(1, &sink);
  for (int i = 0; i < 6; ++i) {
    a->Send(MakeData(net, 1, a->id(), b->id(), kMssBytes));
  }
  net.scheduler().Run();
  for (const auto& p : sink.packets) {
    EXPECT_FALSE(p->ecn_ce);
  }
}

TEST(RoutingTest, TestbedShortestPaths) {
  Network net;
  TestbedTopology topo = BuildTestbed(net);

  // H1 (on NF1) -> H4 (on NF2) must traverse NF1 -> NF0 -> NF2.
  SinkEndpoint sink(&net.scheduler());
  topo.hosts[3]->RegisterEndpoint(1, &sink);
  topo.hosts[0]->Send(
      MakeData(net, 1, topo.hosts[0]->id(), topo.hosts[3]->id(), kMssBytes));
  net.scheduler().Run();
  ASSERT_EQ(sink.packets.size(), 1u);
  // 4 hops: H1->NF1->NF0->NF2->H4, each 12304 ns serialization + 5 us.
  EXPECT_EQ(sink.arrival_times[0], 4 * (12304 + 5000));
}

TEST(RoutingTest, IntraRackPathIsTwoHops) {
  Network net;
  TestbedTopology topo = BuildTestbed(net);
  SinkEndpoint sink(&net.scheduler());
  topo.hosts[1]->RegisterEndpoint(1, &sink);
  topo.hosts[0]->Send(
      MakeData(net, 1, topo.hosts[0]->id(), topo.hosts[1]->id(), kMssBytes));
  net.scheduler().Run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.arrival_times[0], 2 * (12304 + 5000));
}

TEST(RoutingTest, LeafSpineRoutesAcrossRacks) {
  Network net;
  LeafSpineTopology topo = BuildLeafSpine(net, 4, 3);
  Host* src = topo.racks[0][0];
  Host* dst = topo.racks[3][2];
  SinkEndpoint sink(&net.scheduler());
  dst->RegisterEndpoint(1, &sink);
  src->Send(MakeData(net, 1, src->id(), dst->id(), kMssBytes));
  net.scheduler().Run();
  ASSERT_EQ(sink.packets.size(), 1u);
  // Host->leaf (1G) + leaf->spine (10G) + spine->leaf (10G) + leaf->host (1G),
  // each with 20 us propagation.
  const TimeNs expect = 2 * (12304 + 20000) + 2 * (1230 + 20000);
  EXPECT_EQ(sink.arrival_times[0], expect);
}

TEST(RoutingTest, UnroutablePacketCountsNotCrashes) {
  Network net;
  Host* a = net.AddHost("a");
  Switch* s = net.AddSwitch("s");
  net.Link(a, s, kGbps, 0);
  net.BuildRoutes();
  auto pkt = MakeData(net, 1, a->id(), 99, 100);  // bogus destination
  pkt->dst = a->id();  // route back to sender: host has no endpoint for it
  a->Send(std::move(pkt));
  net.scheduler().Run();
  // Delivered back to a, which has no endpoint registered for flow 1.
  EXPECT_EQ(a->unroutable_packets(), 1u);
}

TEST(HostTest, ProcessingDelayPreservesPacketOrder) {
  Network net(/*seed=*/123);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  net.Link(a, b, kGbps, 0);
  net.BuildRoutes();
  a->set_processing_delay(Microseconds(5), Microseconds(20));

  SinkEndpoint sink(&net.scheduler());
  b->RegisterEndpoint(1, &sink);
  for (int i = 0; i < 50; ++i) {
    auto pkt = MakeData(net, 1, a->id(), b->id(), 100);
    pkt->seq = static_cast<uint64_t>(i);
    a->Send(std::move(pkt));
  }
  net.scheduler().Run();
  ASSERT_EQ(sink.packets.size(), 50u);
  for (size_t i = 0; i < sink.packets.size(); ++i) {
    EXPECT_EQ(sink.packets[i]->seq, i);  // no reordering
  }
  // And delay was actually applied.
  EXPECT_GE(sink.arrival_times[0], Microseconds(5));
}

TEST(NetworkTest, FindPortLocatesDirectNeighbors) {
  Network net;
  MultiBottleneckTopology topo = BuildMultiBottleneck(net);
  Port* p = Network::FindPort(topo.s1, topo.s2);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->owner(), topo.s1);
  EXPECT_EQ(p->peer(), topo.s2);
  EXPECT_EQ(Network::FindPort(topo.h1, topo.s2), nullptr);
}

TEST(NetworkTest, SwitchBuffersUseSwitchLimitHostsUseHostLimit) {
  Network net;
  LinkOptions opts;
  opts.switch_buffer_bytes = 512 * 1024;
  opts.host_buffer_bytes = 1024 * 1024;
  Host* a = net.AddHost("a");
  Switch* s = net.AddSwitch("s");
  Port* pa = net.Link(a, s, kGbps, 0, opts);
  EXPECT_EQ(pa->buffer_limit(), 1024u * 1024u);
  EXPECT_EQ(pa->peer_port()->buffer_limit(), 512u * 1024u);
}

}  // namespace
}  // namespace tfc
