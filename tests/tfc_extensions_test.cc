// Tests for the documented TFC extensions: weighted token allocation
// (paper Sec. 4.1's "any allocation policies") and the token-adjustment
// ablation switch.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace tfc {
namespace {

struct WeightedPair {
  double rate_w1;
  double rate_w;
};

// Two long flows share a 1 Gbps port; the second has the given weight.
WeightedPair RunWeighted(uint8_t weight) {
  Network net(77);
  StarTopology topo = BuildStar(net, 3, LinkOptions(), kGbps, Microseconds(20));
  InstallTfcSwitches(net);

  TfcHostConfig plain;
  TfcHostConfig weighted;
  weighted.weight = weight;
  PersistentFlow f1(std::make_unique<TfcSender>(&net, topo.hosts[1], topo.hosts[0], plain));
  PersistentFlow f2(
      std::make_unique<TfcSender>(&net, topo.hosts[2], topo.hosts[0], weighted));
  f1.Start();
  f2.Start();
  net.scheduler().RunUntil(Milliseconds(150));
  const uint64_t b1 = f1.delivered_bytes();
  const uint64_t b2 = f2.delivered_bytes();
  net.scheduler().RunUntil(Milliseconds(350));
  return WeightedPair{static_cast<double>(f1.delivered_bytes() - b1),
                      static_cast<double>(f2.delivered_bytes() - b2)};
}

TEST(TfcWeightedAllocationTest, EqualWeightsShareEqually) {
  WeightedPair r = RunWeighted(1);
  EXPECT_NEAR(r.rate_w / r.rate_w1, 1.0, 0.1);
}

TEST(TfcWeightedAllocationTest, DoubleWeightGetsDoubleShare) {
  WeightedPair r = RunWeighted(2);
  EXPECT_NEAR(r.rate_w / r.rate_w1, 2.0, 0.3);
}

TEST(TfcWeightedAllocationTest, QuadWeightGetsQuadShare) {
  WeightedPair r = RunWeighted(4);
  EXPECT_NEAR(r.rate_w / r.rate_w1, 4.0, 0.8);
}

TEST(TfcWeightedAllocationTest, TotalUtilizationUnaffectedByWeights) {
  WeightedPair equal = RunWeighted(1);
  WeightedPair skewed = RunWeighted(4);
  const double total_equal = equal.rate_w1 + equal.rate_w;
  const double total_skewed = skewed.rate_w1 + skewed.rate_w;
  EXPECT_NEAR(total_skewed / total_equal, 1.0, 0.12);
}

TEST(TfcAblationTest, TokenAdjustmentCompensatesHostJitter) {
  // Sec. 4.5's second motivation: rtt_b (a minimum) excludes the random
  // host processing delay, so without the rho0/rho boost the token value
  // undershoots the real pipeline and the link runs visibly below target.
  auto run = [](bool adjust) {
    Network net(78);
    StarTopology topo = BuildStar(net, 5, LinkOptions(), kGbps, Microseconds(100));
    for (Host* h : topo.hosts) {
      // Large jitter relative to the ~450 us RTT: mean ~50 us per direction.
      h->set_processing_delay(Microseconds(20), Microseconds(60));
    }
    TfcSwitchConfig sw;
    sw.enable_token_adjustment = adjust;
    InstallTfcSwitches(net, sw);
    std::vector<std::unique_ptr<PersistentFlow>> flows;
    for (int i = 1; i <= 4; ++i) {
      flows.push_back(std::make_unique<PersistentFlow>(std::make_unique<TfcSender>(
          &net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0], TfcHostConfig())));
      flows.back()->Start();
    }
    net.scheduler().RunUntil(Milliseconds(200));
    uint64_t before = 0;
    for (auto& f : flows) {
      before += f->delivered_bytes();
    }
    net.scheduler().RunUntil(Milliseconds(500));
    uint64_t after = 0;
    for (auto& f : flows) {
      after += f->delivered_bytes();
    }
    return static_cast<double>(after - before) * 8.0 / 0.3;
  };

  const double with_adjust = run(true);
  const double without_adjust = run(false);
  EXPECT_GT(with_adjust, 0.85e9);
  // The boost recovers the few percent of capacity the jitter-depressed
  // rtt_b leaves on the table.
  EXPECT_LT(without_adjust, with_adjust * 0.97);
}

TEST(TfcAblationTest, WithoutDelayFunctionConcurrencyCausesDrops) {
  // 80 concurrent flows at 1 Gbps: fair windows are far below one MSS.
  // Without the Sec. 4.6 delay function every flow still sends at least one
  // full frame per round, overrunning the port.
  auto run = [](bool delay_fn) {
    Network net(79);
    LinkOptions opts;
    opts.switch_buffer_bytes = 64 * 1024;  // tight buffer to expose the burst
    TfcSwitchConfig sw;
    sw.enable_delay_function = delay_fn;
    StarTopology topo = BuildStar(net, 81, opts, kGbps, Microseconds(5));
    InstallTfcSwitches(net, sw);
    std::vector<std::unique_ptr<PersistentFlow>> flows;
    for (int i = 1; i <= 80; ++i) {
      flows.push_back(std::make_unique<PersistentFlow>(std::make_unique<TfcSender>(
          &net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0], TfcHostConfig())));
      flows.back()->Start();
    }
    net.scheduler().RunUntil(Milliseconds(200));
    return Network::FindPort(topo.sw, topo.hosts[0])->drops();
  };

  EXPECT_EQ(run(true), 0u);
  EXPECT_GT(run(false), 0u);
}

// --- SYN/FIN flow counting (the strawman of paper Sec. 4.2) ---

TEST(SynFinCountingTest, CountsHandshakesAtTheSwitch) {
  Network net(80);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* sw = net.AddSwitch("sw");
  net.Link(a, sw, kGbps, Microseconds(5));
  net.Link(sw, b, kGbps, Microseconds(5));
  net.BuildRoutes();
  TfcSwitchConfig config;
  config.flow_count_mode = FlowCountMode::kSynFin;
  InstallTfcSwitches(net, config);
  TfcPortAgent* agent = TfcPortAgent::FromPort(Network::FindPort(sw, b));

  // Two short flows overlap, then finish.
  TfcSender f1(&net, a, b, TfcHostConfig());
  TfcSender f2(&net, a, b, TfcHostConfig());
  for (TfcSender* f : {&f1, &f2}) {
    f->Write(100'000);
    f->Close();
    f->Start();
  }
  net.scheduler().RunUntil(Milliseconds(1));
  EXPECT_EQ(agent->last_effective_flows(), 2);
  net.scheduler().Run();
  EXPECT_EQ(f1.delivered_bytes(), 100'000u);
  EXPECT_EQ(f2.delivered_bytes(), 100'000u);
}

TEST(SynFinCountingTest, RetransmittedSynAccumulatesPermanentError) {
  // Drop the first SYN: its retransmission is counted again, so the port
  // believes two flows exist forever and halves the single flow's window —
  // the cumulative-error argument for round-mark counting.
  Network net(80);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* sw = net.AddSwitch("sw");
  net.Link(a, sw, kGbps, Microseconds(5));
  net.Link(sw, b, kGbps, Microseconds(5));
  net.BuildRoutes();
  TfcSwitchConfig config;
  config.flow_count_mode = FlowCountMode::kSynFin;
  InstallTfcSwitches(net, config);
  Port* egress = Network::FindPort(sw, b);
  TfcPortAgent* agent = TfcPortAgent::FromPort(egress);
  const Bytes limit = egress->buffer_limit();

  // Count the SYN at the switch, then lose it before delivery: shrink the
  // buffer for the receiver-facing... the SYN is already past. Instead we
  // emulate the paper's scenario directly: the SYN is counted by *this*
  // switch and dropped at the *next* hop, so the sender retransmits.
  // Here, with one switch, drop the SYNACK path instead by blocking the
  // reverse direction briefly — the sender retransmits the SYN, and the
  // switch counts it twice.
  Port* reverse = Network::FindPort(sw, a);
  const Bytes rlimit = reverse->buffer_limit();
  reverse->set_buffer_limit(10);  // SYNACK dropped
  TfcHostConfig host;
  host.transport.rto_min = Milliseconds(10);
  PersistentFlow flow(std::make_unique<TfcSender>(&net, a, b, host));
  flow.Start();
  net.scheduler().RunUntil(Milliseconds(100));  // SYN retransmitted >= once
  reverse->set_buffer_limit(rlimit);
  egress->set_buffer_limit(limit);
  net.scheduler().RunUntil(Milliseconds(300));

  // The single flow is under-allocated forever: counted flows >= 2.
  EXPECT_GE(agent->last_effective_flows(), 2);
  const uint64_t d0 = flow.delivered_bytes();
  net.scheduler().RunUntil(Milliseconds(500));
  const double bps = static_cast<double>(flow.delivered_bytes() - d0) * 8.0 / 0.2;
  EXPECT_LT(bps, 0.75e9);  // well under the ~0.92 Gbps it should get
  // (the rho0/rho boost partially masks the error, bounded by its cap)
}

TEST(SynFinCountingTest, SilentFlowsKeepConsumingAllocation) {
  // Round-mark counting hands a silent flow's share to the active ones;
  // SYN/FIN counting cannot (the connection is open, so it stays counted).
  auto active_share = [](FlowCountMode mode) {
    Network net(81);
    StarTopology topo = BuildStar(net, 6, LinkOptions(), kGbps, Microseconds(20));
    TfcSwitchConfig config;
    config.flow_count_mode = mode;
    InstallTfcSwitches(net, config);
    std::vector<std::unique_ptr<PersistentFlow>> flows;
    for (int i = 1; i <= 5; ++i) {
      flows.push_back(std::make_unique<PersistentFlow>(std::make_unique<TfcSender>(
          &net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0], TfcHostConfig())));
      flows.back()->Start();
    }
    net.scheduler().RunUntil(Milliseconds(50));
    for (int i = 1; i <= 4; ++i) {
      flows[static_cast<size_t>(i)]->SetActive(false);  // 4 of 5 go silent
    }
    net.scheduler().RunUntil(Milliseconds(150));
    const uint64_t d0 = flows[0]->delivered_bytes();
    net.scheduler().RunUntil(Milliseconds(350));
    return static_cast<double>(flows[0]->delivered_bytes() - d0) * 8.0 / 0.2;
  };

  const double with_marks = active_share(FlowCountMode::kRoundMarks);
  const double with_synfin = active_share(FlowCountMode::kSynFin);
  EXPECT_GT(with_marks, 0.80e9);             // sole active flow takes the link
  EXPECT_LT(with_synfin, with_marks * 0.5);  // stuck near 1/5 of the link
}

}  // namespace
}  // namespace tfc
