// Negative-compile battery for src/sim/units.h.
//
// Each CASE_* macro enables exactly one expression that the unit layer must
// REJECT at compile time; the CMake harness compiles this file once per case
// with `-fsyntax-only` and registers the ctest entry WILL_FAIL, so a build
// that starts accepting a banned conversion turns the test suite red. The
// no-macro build is the control: every *sanctioned* conversion must keep
// compiling, which guards against the opposite failure (the types becoming
// so strict that migrated code breaks).

#include <cstdint>

#include "src/sim/units.h"

namespace tfc {

int Exercise() {
  const Bytes b = 1500;
  const TimeNs t = 120'000;
  const Tokens tok(18'000.0);
  const BitsPerSec rate = 1'000'000'000ull;

#if defined(CASE_BYTES_PLUS_TIME)
  // Cross-dimension addition does not exist: bytes + nanoseconds is
  // physically meaningless.
  auto bad = b + t;
  (void)bad;
#elif defined(CASE_TOKENS_TO_BYTES)
  // Tokens are byte-denominated but represent a *claim*, not traffic:
  // crossing the boundary must name Tokens::ToBytes(), never be implicit.
  Bytes bad = tok;
  (void)bad;
#elif defined(CASE_BYTES_NARROWING)
  // Narrowing out to a wire-format field must go through the checked
  // ToU32Saturating(), never an implicit conversion.
  uint32_t bad = b;
  (void)bad;
#else
  // Control build: the sanctioned operations all compile.
  const Tokens bdp = rate * t;             // rate x time -> fractional bytes
  const TimeNs ser = b / rate;             // bytes / rate -> time
  const Ratio rho = tok / bdp;             // tokens / tokens -> dimensionless
  const Bytes floor_bytes = tok.ToBytes(); // explicit boundary crossing
  const uint32_t wire = b.ToU32Saturating();
  return static_cast<int>(ser.count() + floor_bytes.count()) +
         static_cast<int>(rho.value()) + static_cast<int>(wire);
#endif
  return 0;
}

}  // namespace tfc

int main() { return tfc::Exercise(); }
