// src/sim/units.h — the strong unit types' arithmetic, conversion policy,
// and checked narrowing. Everything here is also the bit-identity contract:
// each operator must perform the same machine arithmetic as the raw code it
// replaced (same operand order, same rounding), which the constexpr battery
// pins down value by value.

#include "src/sim/units.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/sim/time.h"

namespace tfc {
namespace {

// ---------------------------------------------------------------------------
// Constexpr battery: everything evaluates at compile time.
// ---------------------------------------------------------------------------

static_assert(TimeNs(5) + TimeNs(7) == TimeNs(12));
static_assert(TimeNs(5) - TimeNs(7) == TimeNs(-2));
static_assert(-TimeNs(3) == TimeNs(-3));
static_assert(TimeNs(6) * 4 == TimeNs(24));
static_assert(3 * TimeNs(6) == TimeNs(18));
static_assert(TimeNs(20) / 4 == TimeNs(5));
static_assert(TimeNs(20) / TimeNs(6) == 3);      // integer count, truncating
static_assert(TimeNs(20) % TimeNs(6) == TimeNs(2));
static_assert(TimeNs(1) < TimeNs(2) && TimeNs(2) <= TimeNs(2));

static_assert(Bytes(1500) + Bytes(38) == Bytes(1538));
static_assert(Bytes(100) - Bytes(260) == Bytes(-160));  // signed differences
static_assert(Bytes(1500) * 3 == Bytes(4500));
static_assert(Bytes(4500) / 3 == Bytes(1500));
static_assert(Bytes(4500) / Bytes(1500) == 3);
static_assert(Bytes(10).count() == 10);

static_assert(Tokens(10.0) + Tokens(2.5) == Tokens(12.5));
static_assert(Tokens(10.0) - Tokens(2.5) == Tokens(7.5));
static_assert(Tokens(10.0) * 0.5 == Tokens(5.0));
static_assert(Tokens(10.0) / 4.0 == Tokens(2.5));
static_assert(Tokens::FromBytes(Bytes(1500)).value() == 1500.0);
static_assert(Tokens(1500.9).ToBytes() == Bytes(1500));  // truncates
static_assert(double(Tokens(6.0) / Tokens(8.0)) == 0.75);

static_assert(BitsPerSec(1'000'000'000ull).bytes_per_ns() == 1e9 / 8.0 / 1e9);
static_assert(BitsPerSec(1'000'000'000ull).bytes_per_sec() == 1.25e8);
static_assert((10 * BitsPerSec(1'000'000'000ull)).count() == 10'000'000'000ull);
static_assert(BitsPerSec(2'000'000'000ull) / BitsPerSec(1'000'000'000ull) == 2.0);

// The time.h constants survive the TimeNs promotion.
static_assert(kMicrosecond == TimeNs(1'000));
static_assert(kMillisecond == TimeNs(1'000'000));
static_assert(kSecond == TimeNs(1'000'000'000));

// Checked narrowing: in-range passes through, out-of-range saturates, and
// NaN/negative clamp to zero (the old unguarded cast was UB for all three).
static_assert(SaturatingU32(1234.0) == 1234u);
static_assert(SaturatingU32(-5.0) == 0u);
static_assert(SaturatingU32(5e12) == 0xffffffffu);
static_assert(SaturatingU32(int64_t{-1}) == 0u);
static_assert(SaturatingU32(int64_t{1} << 40) == 0xffffffffu);
static_assert(Bytes(70'000).ToU32Saturating() == 70'000u);
static_assert(Tokens(1e15).ToU32Saturating() == 0xffffffffu);

// numeric_limits is specialized: the unspecialized primary template would
// return TimeNs{} == 0 from max() — which silently zeroed the fault
// injector's kNoStop sentinel during the migration (caught by the chaos
// byte-identity gate, fixed by the specializations in units.h).
static_assert(std::numeric_limits<TimeNs>::is_specialized);
static_assert(std::numeric_limits<TimeNs>::max().count() ==
              std::numeric_limits<int64_t>::max());
static_assert(std::numeric_limits<TimeNs>::max() > TimeNs(0));
static_assert(std::numeric_limits<Bytes>::max().count() ==
              std::numeric_limits<int64_t>::max());
static_assert(std::numeric_limits<Tokens>::max().value() ==
              std::numeric_limits<double>::max());
static_assert(std::numeric_limits<BitsPerSec>::max().count() ==
              std::numeric_limits<uint64_t>::max());

TEST(Units, SaturatingU32HandlesNaN) {
  EXPECT_EQ(SaturatingU32(std::nan("")), 0u);
  EXPECT_EQ(SaturatingU32(std::numeric_limits<double>::infinity()), 0xffffffffu);
  EXPECT_EQ(SaturatingU32(-std::numeric_limits<double>::infinity()), 0u);
}

// ---------------------------------------------------------------------------
// rate x time and bytes / rate at the three deployed link speeds.
// ---------------------------------------------------------------------------

TEST(Units, RateTimesTimeMatchesRawDoubleMath) {
  // The product must equal the exact expression the control plane used
  // before the migration: bytes_per_ns * (double)ns.
  const TimeNs rtt = Microseconds(160);
  for (const BitsPerSec rate :
       {kGbps, 10 * kGbps, 100 * kGbps, BitsPerSec(1'000'000ull)}) {
    const double raw = (static_cast<double>(rate.count()) / 8.0 / 1e9) *
                       static_cast<double>(rtt.count());
    EXPECT_EQ((rate * rtt).value(), raw);
    EXPECT_EQ((rtt * rate).value(), raw);
  }
  // Spot values: one BDP at 160 us.
  EXPECT_DOUBLE_EQ((kGbps * rtt).value(), 20'000.0);
  EXPECT_DOUBLE_EQ((10 * kGbps * rtt).value(), 200'000.0);
  EXPECT_DOUBLE_EQ((100 * kGbps * rtt).value(), 2'000'000.0);
}

TEST(Units, BytesOverRateIsExactTruncatingSerialization) {
  // 1538-byte frame: 12304 bits. 1 Gbps -> 12304 ns exactly;
  // 10 Gbps -> 1230.4 ns, truncated; 100 Gbps -> 123.04 ns, truncated.
  EXPECT_EQ(Bytes(1538) / kGbps, TimeNs(12304));
  EXPECT_EQ(Bytes(1538) / (10 * kGbps), TimeNs(1230));
  EXPECT_EQ(Bytes(1538) / (100 * kGbps), TimeNs(123));
  // Minimum frame at 100G: 64B + 20B overhead would be sub-10ns territory —
  // 84 * 8 * 1e9 / 1e11 = 6.72 -> 6 ns truncated.
  EXPECT_EQ(Bytes(84) / (100 * kGbps), TimeNs(6));
  // The 128-bit interior does not overflow even for absurd byte counts:
  // (2^52 bytes * 8 bits) * 1e9 would overflow int64 mid-expression, but
  // the result (2^52 * 8 ns at 1 Gbps) is exact.
  EXPECT_EQ(Bytes(int64_t{1} << 52) / kGbps, TimeNs((int64_t{1} << 52) * 8));
}

TEST(Units, GiantBdpSaturatesInsteadOfUb) {
  // 100 Gbps x 4 seconds is a ~50 GB "window": far beyond uint32. The wire
  // stamp must clamp, not wrap (the PR 2 StampWindow bug class).
  const Tokens bdp = (100 * kGbps) * Seconds(4.0);
  EXPECT_GT(bdp.value(), 4.9e10);
  EXPECT_EQ(bdp.ToU32Saturating(), 0xffffffffu);
  // And the Bytes path as well.
  EXPECT_EQ(bdp.ToBytes().ToU32Saturating(), 0xffffffffu);
}

// ---------------------------------------------------------------------------
// Tokens ledger round-trip: the conservation arithmetic the delay arbiter
// audits, done end to end in the strong types.
// ---------------------------------------------------------------------------

TEST(Units, TokenLedgerRoundTrip) {
  const Tokens quantum = Tokens::FromBytes(Bytes(1538));
  Tokens counter = 2.0 * quantum;  // construction-time cap
  const Tokens initial = counter;
  Tokens refilled(0.0), overflow(0.0), debited(0.0), forgiven(0.0);

  // Refill beyond the cap: the excess is recorded as overflow.
  const Tokens cap = 2.0 * quantum;
  Tokens add(900.0);
  counter += add;
  refilled += add;
  if (counter > cap) {
    overflow += counter - cap;
    counter = cap;
  }
  // Grant two sub-MSS upgrades.
  for (int i = 0; i < 2; ++i) {
    counter -= quantum;
    debited += quantum;
  }
  // Debt floor: forgive anything below -1 BDP.
  const Tokens floor(-20'000.0);
  if (counter < floor) {
    forgiven += floor - counter;
    counter = floor;
  }

  const Tokens expected = initial + refilled - overflow - debited + forgiven;
  EXPECT_DOUBLE_EQ(counter.value(), expected.value());
  // The dimension check is the point: this arithmetic cannot silently mix
  // in a Bytes or TimeNs operand — those expressions do not compile
  // (tests/units_compile_fail/).
}

TEST(Units, RatioConvertsFreely) {
  const Ratio rho = Tokens(18'000.0) / Tokens(20'000.0);
  EXPECT_DOUBLE_EQ(rho, 0.9);
  const double boosted = 0.97 / rho;  // the Eq. 7 token boost shape
  EXPECT_NEAR(boosted, 1.0778, 1e-4);
}

TEST(Units, ExplicitEscapesMatchRawViews) {
  const Bytes b = 123'456;
  EXPECT_EQ(static_cast<double>(b), 123'456.0);
  EXPECT_EQ(static_cast<int64_t>(b), 123'456);
  const TimeNs t = Milliseconds(5);
  EXPECT_EQ(t.count(), 5'000'000);
  EXPECT_EQ(static_cast<double>(t), 5e6);
  EXPECT_DOUBLE_EQ(ToSeconds(t), 0.005);
}

}  // namespace
}  // namespace tfc
