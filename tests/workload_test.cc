// Tests for the workload layer: incast app semantics, benchmark traffic
// generation, FCT binning, persistent flows, and protocol suite plumbing.

#include <gtest/gtest.h>

#include "src/topo/topologies.h"
#include "src/workload/benchmark_traffic.h"
#include "src/workload/fct.h"
#include "src/workload/incast.h"
#include "src/workload/persistent_flow.h"
#include "src/workload/protocol.h"

namespace tfc {
namespace {

TEST(FctBinsTest, SizeBinEdgesMatchThePaper) {
  EXPECT_EQ(SizeBin(500), 0);             // <1KB
  EXPECT_EQ(SizeBin(999), 0);
  EXPECT_EQ(SizeBin(1'000), 1);           // 1-10KB
  EXPECT_EQ(SizeBin(9'999), 1);
  EXPECT_EQ(SizeBin(10'000), 2);          // 10-100KB
  EXPECT_EQ(SizeBin(99'999), 2);
  EXPECT_EQ(SizeBin(100'000), 3);         // 100KB-1MB
  EXPECT_EQ(SizeBin(1'000'000), 4);       // 1-10MB
  EXPECT_EQ(SizeBin(10'000'000), 5);      // >10MB
  EXPECT_EQ(SizeBin(100'000'000), 5);
}

TEST(FctRecorderTest, RoutesSamplesToTheRightPopulation) {
  FctRecorder rec;
  rec.AddQuery(Microseconds(100));
  rec.AddQuery(Microseconds(300));
  rec.AddBackground(5'000, Microseconds(50));
  rec.AddBackground(5'000'000, Milliseconds(20));

  EXPECT_EQ(rec.query().count(), 2u);
  EXPECT_DOUBLE_EQ(rec.query().Mean(), 200.0);
  EXPECT_EQ(rec.background(1).count(), 1u);
  EXPECT_EQ(rec.background(4).count(), 1u);
  EXPECT_EQ(rec.background(0).count(), 0u);
}

TEST(WebSearchSizesTest, DistributionIsHeavyTailed) {
  EmpiricalCdf cdf = WebSearchFlowSizes();
  Rng rng(3);
  int small = 0;
  int huge = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = cdf.Sample(rng);
    small += v < 10'000 ? 1 : 0;
    huge += v > 10'000'000 ? 1 : 0;
  }
  // ~50% of flows under 10 KB, ~2% above 10 MB.
  EXPECT_NEAR(small / static_cast<double>(n), 0.50, 0.03);
  EXPECT_NEAR(huge / static_cast<double>(n), 0.02, 0.01);
}

TEST(ProtocolSuiteTest, MakesTheRightSenderKind) {
  Network net(1);
  StarTopology topo = BuildStar(net, 2);
  ProtocolSuite suite;

  suite.protocol = Protocol::kTcp;
  auto tcp = suite.MakeSender(&net, topo.hosts[0], topo.hosts[1]);
  EXPECT_NE(dynamic_cast<TcpSender*>(tcp.get()), nullptr);
  EXPECT_EQ(dynamic_cast<DctcpSender*>(tcp.get()), nullptr);

  suite.protocol = Protocol::kDctcp;
  auto dctcp = suite.MakeSender(&net, topo.hosts[0], topo.hosts[1]);
  EXPECT_NE(dynamic_cast<DctcpSender*>(dctcp.get()), nullptr);

  suite.protocol = Protocol::kTfc;
  auto tfc_sender = suite.MakeSender(&net, topo.hosts[0], topo.hosts[1]);
  EXPECT_NE(dynamic_cast<TfcSender*>(tfc_sender.get()), nullptr);
}

TEST(ProtocolSuiteTest, EcnThresholdOnlyForDctcp) {
  ProtocolSuite suite;
  suite.protocol = Protocol::kTcp;
  EXPECT_EQ(suite.EcnThresholdBytes(kGbps), 0u);
  suite.protocol = Protocol::kTfc;
  EXPECT_EQ(suite.EcnThresholdBytes(kGbps), 0u);
  suite.protocol = Protocol::kDctcp;
  EXPECT_EQ(suite.EcnThresholdBytes(kGbps), kDctcpMarkingThreshold1G);
  EXPECT_EQ(suite.EcnThresholdBytes(10 * kGbps), kDctcpMarkingThreshold10G);
}

TEST(PersistentFlowTest, KeepsPipeSaturatedWhileActive) {
  Network net(2);
  StarTopology topo = BuildStar(net, 2);
  ProtocolSuite suite;
  suite.protocol = Protocol::kTcp;
  PersistentFlow flow(suite.MakeSender(&net, topo.hosts[0], topo.hosts[1]));
  flow.Start();
  net.scheduler().RunUntil(Milliseconds(50));
  const uint64_t first = flow.delivered_bytes();
  EXPECT_GT(first, 0u);

  flow.SetActive(false);
  net.scheduler().RunUntil(Milliseconds(100));
  const uint64_t idle_start = flow.delivered_bytes();
  net.scheduler().RunUntil(Milliseconds(150));
  // Inactive: at most the residual write drains, then nothing.
  EXPECT_EQ(flow.delivered_bytes(), idle_start);

  flow.SetActive(true);
  net.scheduler().RunUntil(Milliseconds(200));
  EXPECT_GT(flow.delivered_bytes(), idle_start);
}

TEST(IncastAppTest, CompletesAllRoundsAndCountsBytes) {
  Network net(4);
  StarTopology topo = BuildStar(net, 5);
  ProtocolSuite suite;
  suite.protocol = Protocol::kTfc;
  suite.InstallSwitchLogic(net);
  std::vector<Host*> senders(topo.hosts.begin() + 1, topo.hosts.end());
  IncastConfig cfg;
  cfg.block_bytes = 64 * 1024;
  cfg.rounds = 3;
  IncastApp app(&net, suite, topo.hosts[0], senders, cfg);
  bool finished_cb = false;
  app.on_finished = [&] { finished_cb = true; };
  app.Start();
  net.scheduler().RunUntil(Seconds(5));

  EXPECT_TRUE(app.finished());
  EXPECT_TRUE(finished_cb);
  EXPECT_EQ(app.rounds_completed(), 3);
  for (const auto& f : app.flows()) {
    EXPECT_EQ(f->delivered_bytes(), 3u * 64u * 1024u);
    EXPECT_EQ(f->state(), ReliableSender::State::kClosed);
  }
  EXPECT_GT(app.goodput_bps(), 0.0);
}

TEST(IncastAppTest, RoundsAreBarrierSynchronized) {
  // With one artificially slow sender (tiny path), faster senders must not
  // run ahead: after the run, every flow has delivered the same rounds.
  Network net(4);
  StarTopology topo = BuildStar(net, 4);
  ProtocolSuite suite;
  suite.protocol = Protocol::kTcp;
  std::vector<Host*> senders(topo.hosts.begin() + 1, topo.hosts.end());
  IncastConfig cfg;
  cfg.block_bytes = 32 * 1024;
  cfg.rounds = 4;
  IncastApp app(&net, suite, topo.hosts[0], senders, cfg);
  app.Start();
  net.scheduler().RunUntil(Seconds(5));
  ASSERT_TRUE(app.finished());
  for (const auto& f : app.flows()) {
    EXPECT_EQ(f->delivered_bytes(), 4u * 32u * 1024u);
  }
}

TEST(BenchmarkTrafficTest, GeneratesAndCompletesFlows) {
  Network net(8);
  TestbedTopology topo = BuildTestbed(net);
  ProtocolSuite suite;
  suite.protocol = Protocol::kTfc;
  suite.InstallSwitchLogic(net);

  BenchmarkTrafficConfig cfg;
  cfg.query_interarrival = Milliseconds(5);
  cfg.background_interarrival = Milliseconds(5);
  cfg.stop_time = Milliseconds(200);
  BenchmarkTrafficApp app(&net, suite, topo.hosts, cfg);
  app.Start();
  net.scheduler().RunUntil(Seconds(20));

  EXPECT_GT(app.flows_started(), 50u);
  // Everything that started eventually completed (run long past stop time).
  EXPECT_EQ(app.flows_completed(), app.flows_started());
  EXPECT_GT(app.fct().query().count(), 0u);
  // Query FCT at 1 Gbps with 2 KB payloads: well under a millisecond each.
  EXPECT_LT(app.fct().query().Mean(), 5'000.0);  // microseconds
}

TEST(BenchmarkTrafficTest, QueryFaninTargetsOneAggregator) {
  Network net(8);
  StarTopology topo = BuildStar(net, 6);
  ProtocolSuite suite;
  suite.protocol = Protocol::kTcp;
  BenchmarkTrafficConfig cfg;
  cfg.query_interarrival = Milliseconds(10);
  cfg.background_interarrival = 0;  // queries only
  cfg.query_fanin = 3;
  cfg.stop_time = Milliseconds(15);  // exactly one query expected (roughly)
  BenchmarkTrafficApp app(&net, suite, topo.hosts, cfg);
  app.Start();
  net.scheduler().RunUntil(Seconds(2));
  ASSERT_GT(app.flows_started(), 0u);
  EXPECT_EQ(app.flows_started() % 3, 0u);  // flows come in fan-in groups
}

TEST(TopologyTest, TestbedShape) {
  Network net(1);
  TestbedTopology topo = BuildTestbed(net);
  EXPECT_EQ(topo.hosts.size(), 9u);
  EXPECT_EQ(topo.switches.size(), 4u);
  // NF0 connects only to the three leaves.
  EXPECT_EQ(topo.switches[0]->ports().size(), 3u);
  // Each leaf: one uplink + three hosts.
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(topo.switches[static_cast<size_t>(i)]->ports().size(), 4u);
  }
}

TEST(TopologyTest, LeafSpineShape) {
  Network net(1);
  LeafSpineTopology topo = BuildLeafSpine(net, 18, 20);
  EXPECT_EQ(topo.all_hosts.size(), 360u);
  EXPECT_EQ(topo.leaves.size(), 18u);
  EXPECT_EQ(topo.spine->ports().size(), 18u);
  for (Switch* leaf : topo.leaves) {
    EXPECT_EQ(leaf->ports().size(), 21u);  // uplink + 20 hosts
  }
  // Uplinks are 10 Gbps, host links 1 Gbps.
  EXPECT_EQ(Network::FindPort(topo.leaves[0], topo.spine)->bps(), 10 * kGbps);
  EXPECT_EQ(Network::FindPort(topo.leaves[0], topo.racks[0][0])->bps(), kGbps);
}

}  // namespace
}  // namespace tfc
