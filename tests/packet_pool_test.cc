// Packet pool: recycling, full field reset between uses, stats, and the
// deleter's interaction with pool-less packets.

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/net/packet_pool.h"
#include "src/topo/topologies.h"
#include "src/workload/protocol.h"

namespace tfc {
namespace {

// Every field of a recycled packet must come back at its default: a stale
// ECN/TFC/XCP field leaking from one flow into another would silently skew
// protocol behaviour.
void ExpectDefaultPacket(const Packet& p) {
  const Packet d;
  EXPECT_EQ(p.uid, d.uid);
  EXPECT_EQ(p.flow_id, d.flow_id);
  EXPECT_EQ(p.src, d.src);
  EXPECT_EQ(p.dst, d.dst);
  EXPECT_EQ(p.type, d.type);
  EXPECT_EQ(p.seq, d.seq);
  EXPECT_EQ(p.ack, d.ack);
  EXPECT_EQ(p.payload, d.payload);
  EXPECT_EQ(p.rm, d.rm);
  EXPECT_EQ(p.rma, d.rma);
  EXPECT_EQ(p.weight, d.weight);
  EXPECT_EQ(p.ecn_capable, d.ecn_capable);
  EXPECT_EQ(p.ecn_ce, d.ecn_ce);
  EXPECT_EQ(p.ecn_echo, d.ecn_echo);
  EXPECT_EQ(p.window, d.window);
  EXPECT_EQ(p.ts, d.ts);
  EXPECT_EQ(p.ts_echo, d.ts_echo);
  EXPECT_EQ(p.rate_bps, d.rate_bps);
  EXPECT_EQ(p.rtt_hint, d.rtt_hint);
  EXPECT_EQ(p.cwnd_hint, d.cwnd_hint);
  EXPECT_EQ(p.xcp_feedback, d.xcp_feedback);
  EXPECT_EQ(p.xcp_feedback_set, d.xcp_feedback_set);
}

Packet DirtyPacket() {
  Packet p;
  p.uid = 77;
  p.flow_id = 5;
  p.src = 1;
  p.dst = 2;
  p.type = PacketType::kFinAck;
  p.seq = 1000;
  p.ack = 2000;
  p.payload = 1460;
  p.rm = true;
  p.rma = true;
  p.weight = 9;
  p.ecn_capable = true;
  p.ecn_ce = true;
  p.ecn_echo = true;
  p.window = 12345;
  p.ts = 42;
  p.ts_echo = 43;
  p.rate_bps = 1'000'000;
  p.rtt_hint = 99;
  p.cwnd_hint = 888;
  p.xcp_feedback = -3.5;
  p.xcp_feedback_set = true;
  return p;
}

TEST(PacketPoolTest, RecycledPacketComesBackFullyReset) {
  PacketPool pool;
  Packet* first;
  {
    PacketPtr pkt = pool.Allocate();
    first = pkt.get();
    *pkt = DirtyPacket();
  }  // released back to the pool, still dirty
  EXPECT_EQ(pool.free_size(), 1u);

  PacketPtr again = pool.Allocate();
  EXPECT_EQ(again.get(), first) << "free-list should hand back the hot object";
  ExpectDefaultPacket(*again);
}

TEST(PacketPoolTest, StatsTrackHitsMissesAndHighWater) {
  PacketPool pool;
  {
    PacketPtr a = pool.Allocate();
    PacketPtr b = pool.Allocate();
    PacketPtr c = pool.Allocate();
    EXPECT_EQ(pool.misses(), 3u);
    EXPECT_EQ(pool.hits(), 0u);
    EXPECT_EQ(pool.outstanding(), 3u);
    EXPECT_EQ(pool.high_water(), 3u);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.free_size(), 3u);
  {
    PacketPtr a = pool.Allocate();
    PacketPtr b = pool.Allocate();
    EXPECT_EQ(pool.hits(), 2u);
    EXPECT_EQ(pool.misses(), 3u);
    EXPECT_EQ(pool.high_water(), 3u) << "high-water must not reset";
  }
}

TEST(PacketPoolTest, PoollessPacketsStillWork) {
  // Tests and tools construct loose packets with make_unique; the deleter
  // must fall back to `delete` when no pool is attached.
  PacketPtr loose = std::make_unique<Packet>();
  loose->payload = 100;
  EXPECT_EQ(loose->frame_bytes(), 100u + kHeaderBytes);
  loose.reset();  // must not crash or touch any pool
}

TEST(PacketPoolTest, NetworkAllocatePacketAssignsFreshUids) {
  Network net(1);
  PacketPtr a = net.AllocatePacket();
  PacketPtr b = net.AllocatePacket();
  EXPECT_NE(a->uid, 0u);
  EXPECT_EQ(b->uid, a->uid + 1);
  uint64_t reused_uid;
  {
    PacketPtr c = net.AllocatePacket();
    reused_uid = c->uid;
  }
  PacketPtr d = net.AllocatePacket();  // recycles c's storage
  EXPECT_EQ(d->uid, reused_uid + 1) << "uids must stay unique across recycling";
}

// End-to-end: a full simulation run recycles packets heavily (hits greatly
// outnumber misses) and leaks nothing — after the run drains, every packet
// the pool ever issued is either back on the free list or was never pooled.
TEST(PacketPoolTest, SimulationRecyclesAndBalances) {
  ProtocolSuite suite;
  Network net(7);
  StarTopology topo = BuildStar(net, 4);
  suite.InstallSwitchLogic(net);
  auto flow = suite.MakeSender(&net, topo.hosts[1], topo.hosts[0]);
  flow->Write(2'000'000);
  flow->Close();
  flow->Start();
  net.scheduler().Run();
  EXPECT_EQ(flow->delivered_bytes(), 2'000'000u);

  const PacketPool& pool = net.packet_pool();
  EXPECT_EQ(pool.outstanding(), 0u) << "all packets must return after drain";
  EXPECT_EQ(pool.free_size(), pool.misses());
  EXPECT_GT(pool.hits(), 10 * pool.misses())
      << "steady state should run allocation-free";
  EXPECT_LT(pool.high_water(), 1000u);
}

}  // namespace
}  // namespace tfc
