// TCP NewReno window-dynamics tests.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/net/network.h"
#include "src/tcp/tcp.h"
#include "src/workload/persistent_flow.h"

namespace tfc {
namespace {

struct Dumbbell {
  Network net;
  Host* a;
  Host* b;
  Switch* s;

  explicit Dumbbell(LinkOptions opts = LinkOptions()) : net(11) {
    a = net.AddHost("a");
    b = net.AddHost("b");
    s = net.AddSwitch("s");
    net.Link(a, s, kGbps, Microseconds(5), opts);
    net.Link(s, b, kGbps, Microseconds(5), opts);
    net.BuildRoutes();
  }
};

TEST(TcpTest, InitialWindowIsThreeSegments) {
  Dumbbell d;
  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  EXPECT_DOUBLE_EQ(flow.cwnd_bytes(), 3.0 * kMssBytes);
}

TEST(TcpTest, SlowStartDoublesWindowPerRtt) {
  Dumbbell d;
  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(50'000'000);
  flow.Start();
  // After a few RTTs of slow start with no loss, cwnd must have grown far
  // beyond the initial window.
  d.net.scheduler().RunUntil(Milliseconds(2));
  EXPECT_GT(flow.cwnd_bytes(), 20.0 * kMssBytes);
}

// Two hosts sending to one: the switch egress is oversubscribed 2:1 and
// loss-driven dynamics show (a single flow is paced by its own NIC and
// never congests an equal-rate path).
struct TwoToOne {
  Network net;
  Host* a1;
  Host* a2;
  Host* b;
  Switch* s;

  explicit TwoToOne(LinkOptions opts = LinkOptions()) : net(17) {
    a1 = net.AddHost("a1");
    a2 = net.AddHost("a2");
    b = net.AddHost("b");
    s = net.AddSwitch("s");
    net.Link(a1, s, kGbps, Microseconds(5), opts);
    net.Link(a2, s, kGbps, Microseconds(5), opts);
    net.Link(s, b, kGbps, Microseconds(5), opts);
    net.BuildRoutes();
  }
};

TEST(TcpTest, LossHalvesWindowViaFastRetransmit) {
  LinkOptions opts;
  opts.switch_buffer_bytes = 64 * 1518;
  TwoToOne d(opts);
  TcpConfig cfg;
  cfg.transport.rto_min = Milliseconds(10);
  TcpSender f1(&d.net, d.a1, d.b, cfg);
  TcpSender f2(&d.net, d.a2, d.b, cfg);
  f1.Write(80'000'000);
  f2.Write(80'000'000);
  f1.Start();
  f2.Start();
  d.net.scheduler().RunUntil(Milliseconds(500));

  // The buffer overflowed, so at least one flow repaired losses and its
  // ssthresh dropped far below the initial (receive-window-sized) value.
  EXPECT_GT(f1.stats().retransmits + f2.stats().retransmits, 0u);
  EXPECT_LT(std::min(f1.ssthresh_bytes(), f2.ssthresh_bytes()), 1'000'000.0);
  EXPECT_GT(Network::FindPort(d.s, d.b)->drops(), 0u);
}

TEST(TcpTest, LongFlowsFillDropTailBuffer) {
  LinkOptions opts;
  opts.switch_buffer_bytes = 256 * 1024;
  TwoToOne d(opts);
  PersistentFlow f1(std::make_unique<TcpSender>(&d.net, d.a1, d.b, TcpConfig()));
  PersistentFlow f2(std::make_unique<TcpSender>(&d.net, d.a2, d.b, TcpConfig()));
  f1.Start();
  f2.Start();
  d.net.scheduler().RunUntil(Seconds(2.0));

  // Loss-driven TCP pushes the queue to the full buffer (paper Fig. 8).
  Port* bottleneck = Network::FindPort(d.s, d.b);
  EXPECT_GT(bottleneck->max_queue_bytes(), 240'000u);
}

TEST(TcpTest, TimeoutCollapsesWindowToOneSegment) {
  Dumbbell d;
  TcpConfig cfg;
  cfg.transport.rto_min = Milliseconds(10);
  TcpSender flow(&d.net, d.a, d.b, cfg);
  flow.Write(100'000);
  flow.Start();
  d.net.scheduler().RunUntil(Microseconds(200));  // connection established
  ASSERT_EQ(flow.state(), ReliableSender::State::kEstablished);

  // Break the path: nothing fits in the switch egress buffer any more, so
  // every in-flight and retransmitted packet vanishes.
  Network::FindPort(d.s, d.b)->set_buffer_limit(10);
  d.net.scheduler().RunUntil(Milliseconds(500));
  EXPECT_GT(flow.stats().timeouts, 0u);
  EXPECT_DOUBLE_EQ(flow.cwnd_bytes(), static_cast<double>(kMssBytes));
}

TEST(TcpTest, CongestionAvoidanceGrowsLinearly) {
  Dumbbell d;
  TcpConfig cfg;
  TcpSender flow(&d.net, d.a, d.b, cfg);
  flow.Write(100'000'000);
  flow.Start();
  d.net.scheduler().RunUntil(Milliseconds(1));
  // Force congestion avoidance from a known point.
  d.net.scheduler().RunUntil(Milliseconds(30));
  const double cwnd_before = flow.cwnd_bytes();
  d.net.scheduler().RunUntil(Milliseconds(60));
  const double cwnd_after = flow.cwnd_bytes();
  // Still growing, monotonically, while no loss occurred (256 KB buffer and
  // cwnd capped by the 4 MB receive window means growth continues a while).
  EXPECT_GE(cwnd_after, cwnd_before);
}

}  // namespace
}  // namespace tfc
