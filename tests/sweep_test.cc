// Parallel experiment-sweep runner (src/sim/sweep.h) + multi-instance
// thread-compatibility of the simulator core.
//
// The contract under test is the one the Fig. 15/16 large-scale sweeps
// depend on: running N independent simulations on a worker pool must
// produce *bit-identical* per-run output to running them serially — the
// pool changes wall-clock, never results. The MultiInstance tests are the
// regression tests for the shared-state sweep (process-wide caches such as
// GitDescribe) and are the designated prey of the tsan preset: any hidden
// cross-simulation mutable state shows up here as a TSan report.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/sim/sweep.h"
#include "src/sim/telemetry.h"
#include "src/topo/topologies.h"
#include "src/workload/incast.h"
#include "src/workload/protocol.h"

namespace tfc {
namespace {

Protocol ProtocolForIndex(int i) {
  switch (i % 3) {
    case 0:
      return Protocol::kTfc;
    case 1:
      return Protocol::kDctcp;
    default:
      return Protocol::kTcp;
  }
}

// One self-contained Fig. 4 testbed incast run: builds its own Network,
// runs to completion, and (when `dir` is non-empty) exports a telemetry run
// directory. Returns a compact result line so sweeps can also be compared
// without touching the filesystem.
std::string RunTestbedIncast(uint64_t seed, Protocol protocol, const std::string& dir) {
  ProtocolSuite suite;
  suite.protocol = protocol;
  Network net(seed);
  LinkOptions link_opts;
  link_opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  TestbedTopology topo = BuildTestbed(net, link_opts, kGbps);
  suite.InstallSwitchLogic(net);

  TimeSeriesRecorder recorder(&net.scheduler(), &net.metrics());
  for (const char* prefix : {"port.", "tfc.", "flow.", "sim.", "pool."}) {
    recorder.WatchPrefix(prefix);
  }
  recorder.Start(Microseconds(500));

  std::vector<Host*> responders(topo.hosts.begin() + 1, topo.hosts.begin() + 1 + 6);
  IncastConfig cfg;
  cfg.block_bytes = 64 * 1024;
  cfg.rounds = 2;
  IncastApp app(&net, suite, topo.hosts[0], responders, cfg);
  app.Start();
  net.scheduler().Run();
  recorder.Stop();

  if (!dir.empty()) {
    RunManifest manifest;
    manifest.Set("protocol", suite.name());
    manifest.SetInt("seed", static_cast<int64_t>(seed));
    std::string error;
    EXPECT_TRUE(WriteRunDirectory(dir, manifest, net.metrics(), &recorder,
                                  &net.profiler(), &error))
        << error;
  }

  std::ostringstream line;
  line << ProtocolName(protocol) << " seed=" << seed
       << " rounds=" << app.rounds_completed() << " goodput=" << app.goodput_bps()
       << " executed=" << net.scheduler().executed();
  return line.str();
}

// ---------------------------------------------------------------------------
// SweepRunner mechanics
// ---------------------------------------------------------------------------

TEST(SweepRunnerTest, ResultsLandInSubmissionOrderWithBufferedReports) {
  SweepRunner runner(/*workers=*/4);
  constexpr int kJobs = 16;
  for (int i = 0; i < kJobs; ++i) {
    runner.Add("job" + std::to_string(i), [i](std::string* report) {
      *report = "hello from " + std::to_string(i) + "\n";
      return i == 11 ? 3 : 0;  // one deliberate failure
    });
  }
  std::vector<SweepResult> results = runner.Run();
  ASSERT_EQ(results.size(), static_cast<size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) {
    const SweepResult& r = results[static_cast<size_t>(i)];
    EXPECT_EQ(r.index, i);
    EXPECT_EQ(r.name, "job" + std::to_string(i));
    EXPECT_EQ(r.report, "hello from " + std::to_string(i) + "\n");
    EXPECT_EQ(r.exit_code, i == 11 ? 3 : 0);
    EXPECT_GE(r.wall_seconds, 0.0);
  }
}

TEST(SweepRunnerTest, SerialRunnerExecutesInline) {
  // workers=1 must run jobs in the calling thread, in order.
  SweepRunner runner(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> order{0};
  for (int i = 0; i < 4; ++i) {
    runner.Add("s" + std::to_string(i), [i, caller, &order](std::string*) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      EXPECT_EQ(order.fetch_add(1), i);
      return 0;
    });
  }
  std::vector<SweepResult> results = runner.Run();
  EXPECT_EQ(results.size(), 4u);
  EXPECT_EQ(order.load(), 4);
}

TEST(SweepRunnerTest, ThrowingJobBecomesExitCode70) {
  SweepRunner runner(2);
  runner.Add("ok", [](std::string*) { return 0; });
  runner.Add("throws", [](std::string*) -> int {
    throw std::runtime_error("boom");
  });
  std::vector<SweepResult> results = runner.Run();
  EXPECT_EQ(results[0].exit_code, 0);
  EXPECT_EQ(results[1].exit_code, 70);
  EXPECT_NE(results[1].report.find("boom"), std::string::npos);
}

TEST(SweepRunnerTest, ManifestListsEveryRun) {
  SweepRunner runner(2);
  for (int i = 0; i < 3; ++i) {
    runner.Add("m" + std::to_string(i), [](std::string*) { return 0; });
  }
  std::vector<SweepResult> results = runner.Run();
  const std::string path =
      ::testing::TempDir() + "/tfc_sweep_manifest_test/sweep.json";
  std::filesystem::remove_all(std::filesystem::path(path).parent_path());
  RunManifest extra;
  extra.Set("tool", "sweep_test");
  extra.SetInt("sweep", 3);
  std::string error;
  ASSERT_TRUE(WriteSweepManifest(path, extra, results, &error)) << error;
  std::ifstream f(path);
  std::stringstream text;
  text << f.rdbuf();
  const std::string json = text.str();
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"sweep_test\""), std::string::npos);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(json.find("\"name\": \"m" + std::to_string(i) + "\""),
              std::string::npos);
  }
  // In-process results become single-attempt v2 rows.
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"attempts\": 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parallel == serial, bit for bit
// ---------------------------------------------------------------------------

std::string ReadFile(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << p;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// manifest.json carries wall-clock fields (created_unix/created_utc) that
// legitimately differ between two executions; every *simulation-derived*
// field must still match exactly, so compare line by line minus those keys.
std::string StripWallClockFields(const std::string& json) {
  std::istringstream in(json);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"created_unix\"") != std::string::npos ||
        line.find("\"created_utc\"") != std::string::npos) {
      continue;
    }
    out += line;
    out += '\n';
  }
  return out;
}

TEST(SweepTest, EightRunParallelSweepIsBitIdenticalToSerial) {
  const std::filesystem::path base =
      std::filesystem::path(::testing::TempDir()) / "tfc_sweep_bitident";
  std::filesystem::remove_all(base);
  constexpr int kRuns = 8;

  // Mixed TFC/DCTCP/TCP over the Fig. 4 testbed, distinct seeds — the same
  // grid twice: once serial, once on 8 workers.
  std::vector<std::string> serial_lines;
  std::vector<std::string> parallel_lines;
  for (const char* mode : {"serial", "parallel"}) {
    SweepRunner runner(mode == std::string("serial") ? 1 : 8);
    for (int i = 0; i < kRuns; ++i) {
      const std::string dir = (base / mode / ("run-" + std::to_string(i))).string();
      const uint64_t seed = 100 + static_cast<uint64_t>(i);
      const Protocol protocol = ProtocolForIndex(i);
      runner.Add("run-" + std::to_string(i), [seed, protocol, dir](std::string* report) {
        *report = RunTestbedIncast(seed, protocol, dir);
        return 0;
      });
    }
    for (const SweepResult& r : runner.Run()) {
      ASSERT_EQ(r.exit_code, 0) << r.name << ": " << r.report;
      (mode == std::string("serial") ? serial_lines : parallel_lines)
          .push_back(r.report);
    }
  }

  // Same results, in the same order.
  ASSERT_EQ(serial_lines.size(), parallel_lines.size());
  for (size_t i = 0; i < serial_lines.size(); ++i) {
    EXPECT_EQ(serial_lines[i], parallel_lines[i]) << "run " << i;
  }

  // Same bytes on disk, file for file.
  for (int i = 0; i < kRuns; ++i) {
    const std::string run = "run-" + std::to_string(i);
    for (const char* file : {"metrics.tfcb", "summary.json"}) {
      EXPECT_EQ(ReadFile(base / "serial" / run / file),
                ReadFile(base / "parallel" / run / file))
          << run << "/" << file;
    }
    EXPECT_EQ(StripWallClockFields(ReadFile(base / "serial" / run / "manifest.json")),
              StripWallClockFields(ReadFile(base / "parallel" / run / "manifest.json")))
        << run << "/manifest.json";
  }
}

// ---------------------------------------------------------------------------
// Fault-spec sweep: the PR 4 replay-equality contract survives the pool
// ---------------------------------------------------------------------------

// A seeded fault schedule over the testbed (parsed from the same spec string
// the CLI accepts), reporting every injector counter plus per-flow delivery —
// the field-for-field replay signature from tests/chaos_test.cc.
std::string RunFaultCase(uint64_t seed) {
  Network net(seed);
  net.EnableAudit(Milliseconds(1));
  TestbedTopology topo = BuildTestbed(net);
  InstallTfcSwitches(net);

  FaultSpec spec;
  std::string error;
  const std::string text =
      "drop=0.004,ge=0.01/0.3/0.6,flap=2ms/300us,wipe=8ms,start=1ms,stop=30ms,seed=" +
      std::to_string(seed * 977 + 13);
  EXPECT_TRUE(FaultSpec::Parse(text, &spec, &error)) << error;
  FaultInjector inject(&net, spec.seed);
  inject.ApplySpec(spec);

  ProtocolSuite suite;
  constexpr int kPairs[4][2] = {{0, 3}, {1, 6}, {4, 2}, {7, 5}};
  std::vector<std::unique_ptr<ReliableSender>> flows;
  for (const auto& pair : kPairs) {
    auto f = suite.MakeSender(&net, topo.hosts[static_cast<size_t>(pair[0])],
                              topo.hosts[static_cast<size_t>(pair[1])]);
    f->Write(96 * 1024);
    f->Close();
    f->Start();
    flows.push_back(std::move(f));
  }
  net.scheduler().RunUntil(Seconds(10));

  std::ostringstream line;
  line << "seed=" << seed << " executed=" << net.scheduler().executed()
       << " drops=" << inject.drops() << " dups=" << inject.dups()
       << " reorders=" << inject.reorders() << " wipes=" << inject.agent_wipes()
       << " transitions=" << inject.link_transitions()
       << " down_ns=" << inject.link_down_ns();
  for (const auto& f : flows) {
    line << " d=" << f->delivered_bytes();
  }
  line << " audit_ok=" << net.RunAudit().ok();
  return line.str();
}

TEST(SweepTest, FaultSpecSweepReplaysIdenticallyAcrossPoolSizes) {
  constexpr int kRuns = 6;
  std::vector<std::string> by_pool[2];
  int which = 0;
  for (int workers : {1, 6}) {
    SweepRunner runner(workers);
    for (int i = 0; i < kRuns; ++i) {
      const uint64_t seed = 7 + static_cast<uint64_t>(i);
      runner.Add("fault-" + std::to_string(i), [seed](std::string* report) {
        *report = RunFaultCase(seed);
        return 0;
      });
    }
    for (const SweepResult& r : runner.Run()) {
      ASSERT_EQ(r.exit_code, 0);
      by_pool[which].push_back(r.report);
    }
    ++which;
  }
  ASSERT_EQ(by_pool[0].size(), by_pool[1].size());
  for (size_t i = 0; i < by_pool[0].size(); ++i) {
    EXPECT_EQ(by_pool[0][i], by_pool[1][i]) << "fault case " << i;
    // The schedule actually injected something.
    EXPECT_NE(by_pool[0][i].find(" drops="), std::string::npos);
    EXPECT_EQ(by_pool[0][i].find(" drops=0 "), std::string::npos) << by_pool[0][i];
  }
}

// ---------------------------------------------------------------------------
// Multi-instance thread compatibility (the shared-state regression tests)
// ---------------------------------------------------------------------------

TEST(MultiInstanceTest, TwoSimulationsRunConcurrentlyFromTwoThreads) {
  // Two full simulations, two protocols, constructed and destroyed on two
  // plain threads with overlapping lifetimes. Before the shared-state sweep
  // this was undefined behavior waiting to be scheduled (shared telemetry
  // caches); now it must produce exactly the single-threaded results.
  const std::string expect_a =
      RunTestbedIncast(/*seed=*/41, Protocol::kTfc, /*dir=*/"");
  const std::string expect_b =
      RunTestbedIncast(/*seed=*/42, Protocol::kDctcp, /*dir=*/"");

  std::string got_a;
  std::string got_b;
  std::thread ta([&got_a] { got_a = RunTestbedIncast(41, Protocol::kTfc, ""); });
  std::thread tb([&got_b] { got_b = RunTestbedIncast(42, Protocol::kDctcp, ""); });
  ta.join();
  tb.join();
  EXPECT_EQ(got_a, expect_a);
  EXPECT_EQ(got_b, expect_b);
}

TEST(MultiInstanceTest, ConcurrentManifestExportsShareTheGitDescribeCache) {
  // GitDescribe() is the one process-wide cache in the telemetry layer
  // (popen, filled once, guarded by a tfc::Mutex). Hammer it from several
  // threads while manifests export — TSan verifies the guard, and every
  // caller must observe the same value.
  const std::string first = GitDescribe();
  std::vector<std::thread> threads;
  std::vector<std::string> seen(8);
  for (size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([t, &seen] { seen[t] = GitDescribe(); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const std::string& s : seen) {
    EXPECT_EQ(s, first);
  }
}

}  // namespace
}  // namespace tfc
