// End-to-end tests of the reliable transport machinery (using TcpSender as
// the concrete protocol): handshakes, delivery, retransmission, persistent
// connections, and conservation invariants.

#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/tcp/tcp.h"
#include "src/workload/samplers.h"

namespace tfc {
namespace {

struct Dumbbell {
  Network net;
  Host* a;
  Host* b;
  Switch* s;

  explicit Dumbbell(LinkOptions opts = LinkOptions(), BitsPerSec bps = kGbps,
                    TimeNs delay = Microseconds(5))
      : net(7) {
    a = net.AddHost("a");
    b = net.AddHost("b");
    s = net.AddSwitch("s");
    net.Link(a, s, bps, delay, opts);
    net.Link(s, b, bps, delay, opts);
    net.BuildRoutes();
  }
};

TEST(TransportTest, TransfersExactByteCount) {
  Dumbbell d;
  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  bool completed = false;
  flow.on_complete = [&] { completed = true; };
  flow.Write(1'000'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  EXPECT_TRUE(completed);
  EXPECT_EQ(flow.delivered_bytes(), 1'000'000u);
  EXPECT_EQ(flow.acked_bytes(), 1'000'000u);
  EXPECT_EQ(flow.state(), ReliableSender::State::kClosed);
  EXPECT_GT(flow.stats().fct(), 0);
}

TEST(TransportTest, ZeroByteFlowCompletesViaHandshakeOnly) {
  Dumbbell d;
  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  bool completed = false;
  flow.on_complete = [&] { completed = true; };
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(flow.stats().data_packets_sent, 0u);
}

TEST(TransportTest, LargeTransferApproachesLineRate) {
  Dumbbell d;
  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  const uint64_t bytes = 20'000'000;
  flow.Write(bytes);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  const double rate = static_cast<double>(bytes) * 8.0 / ToSeconds(flow.stats().fct());
  // Payload efficiency of a 1 Gbps link is 1460/1538 = 94.9%.
  EXPECT_GT(rate, 0.85e9);
  EXPECT_LT(rate, 0.95e9);
}

TEST(TransportTest, PersistentConnectionFiresDrainedPerRound) {
  Dumbbell d;
  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  int drains = 0;
  flow.on_drained = [&] {
    if (++drains < 5) {
      flow.Write(100'000);
    }
  };
  flow.Write(100'000);
  flow.Start();
  d.net.scheduler().Run();
  EXPECT_EQ(drains, 5);
  EXPECT_EQ(flow.delivered_bytes(), 500'000u);
}

TEST(TransportTest, RecoversFromLossAndStillDeliversEverything) {
  // Two senders converging on one egress with a tiny buffer force drops;
  // a single flow cannot congest the equal-rate dumbbell (the NIC paces it).
  LinkOptions opts;
  opts.switch_buffer_bytes = 8 * 1518;
  Network net(19);
  Host* a1 = net.AddHost("a1");
  Host* a2 = net.AddHost("a2");
  Host* b = net.AddHost("b");
  Switch* s = net.AddSwitch("s");
  net.Link(a1, s, kGbps, Microseconds(5), opts);
  net.Link(a2, s, kGbps, Microseconds(5), opts);
  net.Link(s, b, kGbps, Microseconds(5), opts);
  net.BuildRoutes();

  TcpSender f1(&net, a1, b, TcpConfig());
  TcpSender f2(&net, a2, b, TcpConfig());
  for (TcpSender* f : {&f1, &f2}) {
    f->Write(5'000'000);
    f->Close();
    f->Start();
  }
  net.scheduler().Run();

  EXPECT_EQ(f1.delivered_bytes(), 5'000'000u);
  EXPECT_EQ(f2.delivered_bytes(), 5'000'000u);
  EXPECT_EQ(f1.state(), ReliableSender::State::kClosed);
  EXPECT_GT(f1.stats().retransmits + f2.stats().retransmits, 0u);
  Port* bottleneck = Network::FindPort(s, b);
  EXPECT_GT(bottleneck->drops(), 0u);
}

TEST(TransportTest, ByteConservationAcrossTheBottleneck) {
  LinkOptions opts;
  opts.switch_buffer_bytes = 16 * 1518;
  Dumbbell d(opts);
  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(3'000'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  // Every data frame entering the bottleneck either was transmitted or
  // dropped; transmitted minus duplicates equals delivered payload.
  Port* nic = d.a->nic();
  Port* bottleneck = Network::FindPort(d.s, d.b);
  EXPECT_EQ(nic->tx_packets(), bottleneck->tx_packets() + bottleneck->drops());
  EXPECT_EQ(flow.delivered_bytes(), 3'000'000u);
}

TEST(TransportTest, RtoFiresWhenPathIsDead) {
  // Receiver host with a zero-capacity path: emulate by dropping everything
  // at an absurdly small switch buffer (even one frame doesn't fit).
  LinkOptions opts;
  opts.switch_buffer_bytes = 10;  // nothing fits: all data dropped at switch
  Dumbbell d(opts);
  TcpConfig cfg;
  cfg.transport.rto_min = Milliseconds(10);
  TcpSender flow(&d.net, d.a, d.b, TcpConfig(cfg));
  flow.Write(10'000);
  flow.Start();
  d.net.scheduler().RunUntil(Seconds(3.0));

  // Exponential backoff: fires at ~0.2, 0.6, 1.4, 3.0 s.
  EXPECT_GE(flow.stats().timeouts, 3u);
  EXPECT_EQ(flow.delivered_bytes(), 0u);
}

TEST(TransportTest, RttEstimateTracksPathRtt) {
  Dumbbell d;
  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  flow.Write(1'000'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().Run();

  // Base RTT: 4 serializations (2 data, 2 ack hops) + 4 propagations + queue.
  // With queueing it can only be larger than the bare minimum.
  EXPECT_GT(flow.srtt(), Microseconds(30));
  EXPECT_LT(flow.srtt(), Milliseconds(5));
}

TEST(TransportTest, TwoFlowsShareBottleneckAndBothFinish) {
  Dumbbell d;
  TcpSender f1(&d.net, d.a, d.b, TcpConfig());
  TcpSender f2(&d.net, d.a, d.b, TcpConfig());
  f1.Write(5'000'000);
  f1.Close();
  f2.Write(5'000'000);
  f2.Close();
  f1.Start();
  f2.Start();
  d.net.scheduler().Run();
  EXPECT_EQ(f1.delivered_bytes(), 5'000'000u);
  EXPECT_EQ(f2.delivered_bytes(), 5'000'000u);
}

TEST(TransportTest, SynRetransmittedWhenLost) {
  LinkOptions opts;
  opts.switch_buffer_bytes = 10;  // drops the SYN too
  Dumbbell d(opts);
  TcpConfig cfg;
  cfg.transport.rto_min = Milliseconds(10);
  TcpSender flow(&d.net, d.a, d.b, cfg);
  flow.Start();
  d.net.scheduler().RunUntil(Milliseconds(700));
  EXPECT_EQ(flow.state(), ReliableSender::State::kSynSent);
  EXPECT_GT(flow.stats().timeouts, 0u);
}

TEST(TransportTest, GoodputSamplerMatchesDeliveredBytes) {
  Dumbbell d;
  TcpSender flow(&d.net, d.a, d.b, TcpConfig());
  GoodputSampler sampler(
      &d.net.scheduler(), [&] { return flow.delivered_bytes(); }, Milliseconds(10));
  flow.Write(10'000'000);
  flow.Close();
  flow.Start();
  d.net.scheduler().RunUntil(Milliseconds(100));
  sampler.Stop();
  d.net.scheduler().Run();

  // Mean sampled goodput over the run should be near line rate after ramp-up.
  EXPECT_GT(sampler.stats.max(), 0.9e9);
}

}  // namespace
}  // namespace tfc
