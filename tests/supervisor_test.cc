// Crash-isolated run supervisor (src/sim/supervisor.h).
//
// The contracts under test are the ones `tfcsim --sweep` leans on: a child
// that aborts (even through the TFC_CHECK/audit funnel, with a post-mortem
// flight dump) takes only itself down and its artifacts are salvaged; a
// hung child is SIGKILLed at the deadline; failed runs retry with a
// deterministic backoff schedule and stop early when the failure is
// deterministic (two attempts dying the same way); completed runs leave a
// done marker that --resume verifies before skipping; and a retried run
// with the same seed produces byte-identical output to a clean run —
// supervision changes *whether* a run executes, never what it computes.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/sim/audit.h"
#include "src/sim/supervisor.h"
#include "src/sim/telemetry.h"
#include "src/topo/topologies.h"
#include "src/workload/incast.h"
#include "src/workload/protocol.h"

namespace tfc {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFile(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  EXPECT_TRUE(f.is_open()) << p;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void WriteFile(const fs::path& p, const std::string& contents) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f << contents;
}

// Fast supervisor options for tests: 1ms backoff so retry tests don't wait.
SupervisorOptions FastOptions(int workers) {
  SupervisorOptions o;
  o.workers = workers;
  o.backoff_base_ms = 1;
  o.backoff_cap_ms = 4;
  return o;
}

// A self-contained micro incast run that exports a telemetry run directory —
// what a real sweep job does, scaled down. Runs *in the forked child*.
int RunMicroIncast(uint64_t seed, const std::string& run_dir,
                   std::string* report) {
  ProtocolSuite suite;
  Network net(seed);
  LinkOptions link_opts;
  link_opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  StarTopology topo = BuildStar(net, 5, link_opts, kGbps);
  suite.InstallSwitchLogic(net);

  TimeSeriesRecorder recorder(&net.scheduler(), &net.metrics());
  recorder.WatchPrefix("port.");
  recorder.WatchPrefix("incast.");
  recorder.Start(Microseconds(500));

  std::vector<Host*> responders(topo.hosts.begin() + 1, topo.hosts.end());
  IncastConfig cfg;
  cfg.block_bytes = 32 * 1024;
  cfg.rounds = 1;
  IncastApp app(&net, suite, topo.hosts[0], responders, cfg);
  app.Start();
  net.scheduler().Run();
  recorder.Stop();

  RunManifest manifest;
  manifest.SetInt("seed", static_cast<int64_t>(seed));
  std::string error;
  if (!WriteRunDirectory(run_dir, manifest, net.metrics(), &recorder,
                         &net.profiler(), &error)) {
    *report += "export failed: " + error + "\n";
    return 1;
  }
  *report += "rounds=" + std::to_string(app.rounds_completed()) + "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Pure mechanics: backoff schedule, done markers
// ---------------------------------------------------------------------------

TEST(SupervisorTest, BackoffScheduleIsDeterministicAndCapped) {
  EXPECT_EQ(RunSupervisor::BackoffMs(1, 250, 8000), 250);
  EXPECT_EQ(RunSupervisor::BackoffMs(2, 250, 8000), 500);
  EXPECT_EQ(RunSupervisor::BackoffMs(3, 250, 8000), 1000);
  EXPECT_EQ(RunSupervisor::BackoffMs(6, 250, 8000), 8000);   // capped
  EXPECT_EQ(RunSupervisor::BackoffMs(40, 250, 8000), 8000);  // shift clamp
  EXPECT_EQ(RunSupervisor::BackoffMs(0, 250, 8000), 250);    // floor at 1
  // Same inputs, same schedule — every call site sees identical delays.
  for (int i = 1; i < 10; ++i) {
    EXPECT_EQ(RunSupervisor::BackoffMs(i, 10, 100),
              RunSupervisor::BackoffMs(i, 10, 100));
  }
}

TEST(SupervisorTest, DoneMarkerRoundTrip) {
  const fs::path dir = FreshDir("tfc_supervisor_marker");
  const std::string key = SweepCacheKey("workload=incast|senders=4", 7);
  EXPECT_NE(key.find("|seed=7"), std::string::npos);
  EXPECT_NE(key.find("|sweep_schema=" + std::to_string(kSweepSchemaVersion)),
            std::string::npos);

  // No marker yet.
  EXPECT_FALSE(RunSupervisor::DoneMarkerMatches(dir.string(), key));
  std::string error;
  ASSERT_TRUE(RunSupervisor::WriteDoneMarker(dir.string(), key, &error)) << error;
  EXPECT_TRUE(RunSupervisor::DoneMarkerMatches(dir.string(), key));

  // The marker embeds both the hash and the full key.
  const std::string contents =
      ReadFile(fs::path(RunSupervisor::DoneMarkerPath(dir.string())));
  EXPECT_EQ(contents, RunSupervisor::DoneMarkerContents(key));
  EXPECT_NE(contents.find("tfc-run-done v1\n"), std::string::npos);
  EXPECT_NE(contents.find("key " + key), std::string::npos);

  // A different key (config drift, new git describe, schema bump) must not
  // verify; neither must a corrupted marker.
  EXPECT_FALSE(RunSupervisor::DoneMarkerMatches(
      dir.string(), SweepCacheKey("workload=incast|senders=4", 8)));
  WriteFile(RunSupervisor::DoneMarkerPath(dir.string()), contents + "x");
  EXPECT_FALSE(RunSupervisor::DoneMarkerMatches(dir.string(), key));
  // Empty key/dir never match (uncacheable runs).
  EXPECT_FALSE(RunSupervisor::DoneMarkerMatches(dir.string(), ""));
  EXPECT_FALSE(RunSupervisor::DoneMarkerMatches("", key));
}

// ---------------------------------------------------------------------------
// Crash isolation
// ---------------------------------------------------------------------------

TEST(SupervisorTest, AbortingChildIsIsolatedAndReportsSignal) {
  const fs::path dir = FreshDir("tfc_supervisor_abort");
  RunSupervisor sup(FastOptions(/*workers=*/3));
  sup.Add("ok-0", "", "", [](std::string* report) {
    *report = "first fine\n";
    return 0;
  });
  sup.Add("crashes", (dir / "crash").string(), "",
          [&](std::string* report) -> int {
            fs::create_directories(dir / "crash");
            WriteFile(dir / "crash" / "partial.bin", "partial artifact");
            *report = "about to abort\n";  // lost: never reaches the pipe flush
            std::abort();
          });
  sup.Add("ok-2", "", "", [](std::string* report) {
    *report = "second fine\n";
    return 0;
  });

  std::vector<SupervisedResult> results = sup.Run();
  ASSERT_EQ(results.size(), 3u);

  // Siblings of the crashed run completed normally.
  EXPECT_EQ(results[0].status, RunStatus::kOk);
  EXPECT_EQ(results[0].report, "first fine\n");
  EXPECT_EQ(results[2].status, RunStatus::kOk);
  EXPECT_EQ(results[2].report, "second fine\n");

  // The crash is classified, not propagated.
  EXPECT_EQ(results[1].status, RunStatus::kFailed);
  EXPECT_EQ(results[1].term_signal, SIGABRT);
  EXPECT_EQ(results[1].exit_code, 128 + SIGABRT);
  EXPECT_EQ(results[1].attempts, 1);
  EXPECT_NE(results[1].report.find("killed by signal"), std::string::npos);
  // Artifacts the dead child left behind are inventoried.
  ASSERT_EQ(results[1].salvaged.size(), 1u);
  EXPECT_EQ(results[1].salvaged[0], "partial.bin");
}

TEST(SupervisorTest, AuditTripInChildSalvagesFlightPostMortem) {
  // The full tfcsim crash path in miniature: the child arms the flight
  // recorder, registers the post-mortem dump, and trips an audit — the
  // TFC_CHECK funnel dumps flight.tfct and aborts. The parent must classify
  // the SIGABRT and inventory the dump for the manifest.
  const fs::path dir = FreshDir("tfc_supervisor_trip");
  const std::string run_dir = (dir / "run").string();
  RunSupervisor sup(FastOptions(1));
  sup.Add("tripped", run_dir, "", [run_dir](std::string* report) {
    ProtocolSuite suite;
    Network net(3);
    LinkOptions link_opts;
    link_opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
    StarTopology topo = BuildStar(net, 5, link_opts, kGbps);
    suite.InstallSwitchLogic(net);
    net.flight().Arm(1024);
    std::error_code ec;
    fs::create_directories(run_dir, ec);
    net.ArmFlightPostMortem(run_dir + "/flight.tfct");
    net.EnableAudit(Microseconds(50));
    Network* net_ptr = &net;
    ScopedAudit trip(&net.audit(), "supervisor_test.trip",
                     [net_ptr](Auditor& a) {
                       a.Check(net_ptr->scheduler().now() < Microseconds(200),
                               "forced trip");
                     });
    std::vector<Host*> responders(topo.hosts.begin() + 1, topo.hosts.end());
    IncastConfig cfg;
    cfg.block_bytes = 64 * 1024;
    cfg.rounds = 4;
    IncastApp app(&net, suite, topo.hosts[0], responders, cfg);
    app.Start();
    net.scheduler().Run();  // aborts at the 200us audit tick
    *report += "unreachable\n";
    return 0;
  });

  std::vector<SupervisedResult> results = sup.Run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RunStatus::kFailed);
  EXPECT_EQ(results[0].term_signal, SIGABRT);
  ASSERT_FALSE(results[0].salvaged.empty());
  EXPECT_NE(std::find(results[0].salvaged.begin(), results[0].salvaged.end(),
                      std::string("flight.tfct")),
            results[0].salvaged.end());
  // The salvaged post-mortem is a real, non-empty dump.
  EXPECT_GT(fs::file_size(fs::path(run_dir) / "flight.tfct"), 0u);
}

TEST(SupervisorTest, HungChildIsKilledAtDeadline) {
  SupervisorOptions o = FastOptions(1);
  o.timeout_s = 0.2;
  RunSupervisor sup(o);
  sup.Add("hangs", "", "", [](std::string*) {
    for (;;) {
      sleep(1);
    }
    return 0;
  });
  std::vector<SupervisedResult> results = sup.Run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RunStatus::kTimeout);
  EXPECT_EQ(results[0].term_signal, SIGKILL);
  EXPECT_EQ(results[0].exit_code, 128 + SIGKILL);
  EXPECT_NE(results[0].report.find("timed out"), std::string::npos);
}

TEST(SupervisorTest, ThrowPreservesPartialReportAndMapsToExit70) {
  // Partial output buffered before the throw must survive into the result —
  // the child catches, appends the message, and ships the report over the
  // pipe before exiting 70 (mirroring SweepRunner).
  RunSupervisor sup(FastOptions(1));
  sup.Add("throws", "", "", [](std::string* report) -> int {
    *report += "progress before the explosion\n";
    throw std::runtime_error("boom");
  });
  std::vector<SupervisedResult> results = sup.Run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RunStatus::kFailed);
  EXPECT_EQ(results[0].exit_code, 70);
  EXPECT_EQ(results[0].term_signal, 0);
  EXPECT_NE(results[0].report.find("progress before the explosion"),
            std::string::npos);
  EXPECT_NE(results[0].report.find("boom"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

TEST(SupervisorTest, DeterministicFailureStopsAfterTwoIdenticalAttempts) {
  SupervisorOptions o = FastOptions(1);
  o.max_retries = 5;
  RunSupervisor sup(o);
  sup.Add("det", "", "", [](std::string*) { return 9; });
  std::vector<SupervisedResult> results = sup.Run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RunStatus::kFailed);
  EXPECT_EQ(results[0].exit_code, 9);
  // Budget allowed 6 attempts; two identical failures end it at 2.
  EXPECT_EQ(results[0].attempts, 2);
  EXPECT_NE(results[0].report.find("deterministic, not retrying"),
            std::string::npos);
}

TEST(SupervisorTest, TransientFailureRetriesThenSucceeds) {
  // Attempt state must live on the filesystem: every attempt is a fresh
  // fork, so in-memory state resets. First attempt fails, second succeeds.
  const fs::path dir = FreshDir("tfc_supervisor_transient");
  const fs::path flag = dir / "first_attempt_done";
  SupervisorOptions o = FastOptions(1);
  o.max_retries = 3;
  RunSupervisor sup(o);
  sup.Add("transient", "", "", [flag](std::string* report) {
    if (!fs::exists(flag)) {
      WriteFile(flag, "x");
      *report += "failing once\n";
      return 21;
    }
    *report += "recovered\n";
    return 0;
  });
  std::vector<SupervisedResult> results = sup.Run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RunStatus::kOk);
  EXPECT_EQ(results[0].exit_code, 0);
  EXPECT_EQ(results[0].attempts, 2);
  // Both attempts' reports, in order.
  EXPECT_NE(results[0].report.find("failing once"), std::string::npos);
  EXPECT_NE(results[0].report.find("retrying in"), std::string::npos);
  EXPECT_NE(results[0].report.find("recovered"), std::string::npos);
}

TEST(SupervisorTest, AlternatingFailuresExhaustTheRetryBudget) {
  const fs::path dir = FreshDir("tfc_supervisor_budget");
  const fs::path counter = dir / "attempts";
  SupervisorOptions o = FastOptions(1);
  o.max_retries = 2;
  RunSupervisor sup(o);
  sup.Add("flaky", "", "", [counter](std::string*) {
    int n = 0;
    if (fs::exists(counter)) {
      n = std::atoi(ReadFile(counter).c_str());
    }
    WriteFile(counter, std::to_string(n + 1));
    return 11 + n;  // 11, 12, 13 — never the same signature twice
  });
  std::vector<SupervisedResult> results = sup.Run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RunStatus::kFailed);
  EXPECT_EQ(results[0].attempts, 3);  // 1 + max_retries
  EXPECT_EQ(results[0].exit_code, 13);
  EXPECT_NE(results[0].report.find("retry budget exhausted"), std::string::npos);
}

TEST(SupervisorTest, RetrySalvagesThePreviousAttemptsArtifacts) {
  const fs::path dir = FreshDir("tfc_supervisor_salvage");
  const std::string run_dir = (dir / "run").string();
  SupervisorOptions o = FastOptions(1);
  o.max_retries = 1;
  RunSupervisor sup(o);
  const fs::path flag = dir / "failed_once";
  sup.Add("salvage", run_dir, "", [run_dir, flag](std::string* report) {
    fs::create_directories(run_dir);
    if (!fs::exists(flag)) {
      WriteFile(flag, "x");
      WriteFile(fs::path(run_dir) / "flight.tfct", "attempt-1 post-mortem");
      std::abort();
    }
    WriteFile(fs::path(run_dir) / "metrics.tfcb", "attempt-2 output");
    *report += "clean rerun\n";
    return 0;
  });
  std::vector<SupervisedResult> results = sup.Run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, RunStatus::kOk);
  EXPECT_EQ(results[0].attempts, 2);
  // Attempt 1's artifact was moved aside before attempt 2 ran, not lost.
  EXPECT_EQ(ReadFile(fs::path(run_dir) / "salvage-attempt-1" / "flight.tfct"),
            "attempt-1 post-mortem");
  EXPECT_EQ(ReadFile(fs::path(run_dir) / "metrics.tfcb"), "attempt-2 output");
  EXPECT_NE(results[0].report.find("salvaged 1 file(s)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Resume
// ---------------------------------------------------------------------------

TEST(SupervisorTest, ResumeSkipsVerifiedRunsAndExecutesTheRest) {
  const fs::path dir = FreshDir("tfc_supervisor_resume");
  const std::string key_a = SweepCacheKey("cfg", 1);
  const std::string key_b = SweepCacheKey("cfg", 2);
  const std::string run_a = (dir / "run-a").string();
  const std::string run_b = (dir / "run-b").string();

  // First sweep: run A succeeds (marker written), run B aborts (no marker).
  {
    RunSupervisor sup(FastOptions(2));
    sup.Add("a", run_a, key_a, [](std::string* r) {
      *r = "a ran\n";
      return 0;
    });
    sup.Add("b", run_b, key_b, [](std::string*) -> int { std::abort(); });
    std::vector<SupervisedResult> results = sup.Run();
    EXPECT_EQ(results[0].status, RunStatus::kOk);
    EXPECT_EQ(results[1].status, RunStatus::kFailed);
    EXPECT_TRUE(RunSupervisor::DoneMarkerMatches(run_a, key_a));
    EXPECT_FALSE(RunSupervisor::DoneMarkerMatches(run_b, key_b));
  }

  // Resume: A is skipped without forking (its side effect would be visible),
  // B re-executes and completes.
  {
    SupervisorOptions o = FastOptions(2);
    o.resume = true;
    RunSupervisor sup(o);
    const fs::path a_reran = dir / "a_reran";
    sup.Add("a", run_a, key_a, [a_reran](std::string*) {
      WriteFile(a_reran, "x");
      return 0;
    });
    sup.Add("b", run_b, key_b, [](std::string* r) {
      *r = "b recovered\n";
      return 0;
    });
    std::vector<SupervisedResult> results = sup.Run();
    EXPECT_EQ(results[0].status, RunStatus::kSkippedCached);
    EXPECT_EQ(results[0].attempts, 0);
    EXPECT_FALSE(fs::exists(a_reran)) << "skipped run must not fork";
    EXPECT_EQ(results[1].status, RunStatus::kOk);
    EXPECT_EQ(results[1].report, "b recovered\n");
    EXPECT_TRUE(RunSupervisor::DoneMarkerMatches(run_b, key_b));
  }

  // A stale key (config drift) invalidates the cache: A re-executes.
  {
    SupervisorOptions o = FastOptions(1);
    o.resume = true;
    RunSupervisor sup(o);
    sup.Add("a", run_a, SweepCacheKey("cfg-changed", 1), [](std::string* r) {
      *r = "a re-ran under new config\n";
      return 0;
    });
    std::vector<SupervisedResult> results = sup.Run();
    EXPECT_EQ(results[0].status, RunStatus::kOk);
    EXPECT_EQ(results[0].attempts, 1);
  }
}

// ---------------------------------------------------------------------------
// Determinism: supervision never changes what a run computes
// ---------------------------------------------------------------------------

TEST(SupervisorTest, RetriedRunIsByteIdenticalToACleanRun) {
  const fs::path dir = FreshDir("tfc_supervisor_bitident");
  const std::string clean_dir = (dir / "clean").string();
  const std::string retried_dir = (dir / "retried").string();
  constexpr uint64_t kSeed = 77;

  // Clean reference: one supervised attempt, no drama.
  {
    RunSupervisor sup(FastOptions(1));
    sup.Add("clean", clean_dir, "", [clean_dir](std::string* report) {
      return RunMicroIncast(kSeed, clean_dir, report);
    });
    std::vector<SupervisedResult> results = sup.Run();
    ASSERT_EQ(results[0].status, RunStatus::kOk) << results[0].report;
  }

  // Same simulation, but the first attempt crashes mid-run; the retry must
  // reproduce the clean run bit for bit (same seed, fresh process).
  {
    SupervisorOptions o = FastOptions(1);
    o.max_retries = 1;
    RunSupervisor sup(o);
    const fs::path flag = dir / "crashed_once";
    sup.Add("retried", retried_dir, "", [retried_dir, flag](std::string* report) {
      if (!fs::exists(flag)) {
        WriteFile(flag, "x");
        fs::create_directories(retried_dir);
        WriteFile(fs::path(retried_dir) / "metrics.tfcb", "garbage partial");
        std::abort();
      }
      return RunMicroIncast(kSeed, retried_dir, report);
    });
    std::vector<SupervisedResult> results = sup.Run();
    ASSERT_EQ(results[0].status, RunStatus::kOk) << results[0].report;
    EXPECT_EQ(results[0].attempts, 2);
  }

  for (const char* file : {"metrics.tfcb", "summary.json"}) {
    EXPECT_EQ(ReadFile(fs::path(clean_dir) / file),
              ReadFile(fs::path(retried_dir) / file))
        << file;
  }
  // The garbage partial from the crashed attempt was salvaged, not merged.
  EXPECT_EQ(ReadFile(fs::path(retried_dir) / "salvage-attempt-1" / "metrics.tfcb"),
            "garbage partial");
}

// ---------------------------------------------------------------------------
// Manifest plumbing
// ---------------------------------------------------------------------------

TEST(SupervisorTest, ManifestRecordsPerRunStatusSignalAndSalvage) {
  const fs::path dir = FreshDir("tfc_supervisor_manifest");
  RunSupervisor sup(FastOptions(2));
  sup.Add("good", "", "", [](std::string*) { return 0; });
  const std::string crash_dir = (dir / "crash").string();
  sup.Add("bad", crash_dir, "", [crash_dir](std::string*) -> int {
    fs::create_directories(crash_dir);
    WriteFile(fs::path(crash_dir) / "flight.tfct", "dump");
    std::abort();
  });
  std::vector<SupervisedResult> results = sup.Run();

  const std::string path = (dir / "sweep.json").string();
  RunManifest extra;
  extra.Set("tool", "supervisor_test");
  std::string error;
  ASSERT_TRUE(WriteSweepManifest(path, extra, results, &error)) << error;
  const std::string json = ReadFile(path);
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
  std::ostringstream sig;
  sig << "\"signal\": " << SIGABRT;
  EXPECT_NE(json.find(sig.str()), std::string::npos);
  EXPECT_NE(json.find("\"salvaged\": [\"flight.tfct\"]"), std::string::npos);
}

}  // namespace
}  // namespace tfc
