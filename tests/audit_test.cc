// Runtime invariant auditor (src/sim/audit.h): registry mechanics, daemon
// event scheduling, the end-to-end token-conservation audit on the paper's
// Fig. 4 testbed, and regression tests for the bugs the tooling caught
// (PeriodicTimer re-arming after Stop, packet-pool double free, giant-BDP
// window stamping).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/net/packet_pool.h"
#include "src/sim/audit.h"
#include "src/sim/scheduler.h"
#include "src/sim/timer.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"

namespace tfc {
namespace {

// --- registry mechanics -----------------------------------------------------

TEST(AuditRegistryTest, RunAllCollectsChecksAndFailures) {
  AuditRegistry registry;
  registry.Register("good", [](Auditor& a) {
    a.Check(true, "always holds");
    a.CheckEq(2 + 2, 4, "arithmetic works");
  });
  registry.Register("bad", [](Auditor& a) {
    a.CheckLe(5, 3, "five<=three");
  });

  AuditReport report = registry.RunAll();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.components, 2u);
  EXPECT_EQ(report.checks, 3u);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].component, "bad");
  EXPECT_EQ(report.failures[0].invariant, "five<=three");
  EXPECT_NE(report.failures[0].detail.find("lhs = 5"), std::string::npos);
  EXPECT_NE(report.ToString().find("five<=three"), std::string::npos);
}

TEST(AuditRegistryTest, ScopedAuditUnregistersOnDestruction) {
  AuditRegistry registry;
  {
    ScopedAudit reg(&registry, "ephemeral", [](Auditor& a) {
      a.Check(true, "alive");
    });
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.RunAll().components, 1u);
  }
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.RunAll().components, 0u);
}

// --- daemon events ----------------------------------------------------------

// A self-rescheduling daemon (the auditor's periodic tick) must not keep
// drain-mode Run() alive, and must stay invisible to leak-detection
// pending() checks.
TEST(SchedulerDaemonTest, RunDrainsUserEventsDespitePendingDaemon) {
  Scheduler sched;
  int user_fires = 0;
  int daemon_fires = 0;
  // Daemon every 10ns, forever; user events at 5 and 25.
  struct Ticker {
    Scheduler* sched;
    int* fires;
    void Arm() {
      sched->ScheduleDaemonAfter(10, [this] {
        ++*fires;
        Arm();
      });
    }
  } ticker{&sched, &daemon_fires};
  ticker.Arm();
  sched.ScheduleAfter(5, [&] { ++user_fires; });
  sched.ScheduleAfter(25, [&] { ++user_fires; });

  sched.Run();
  EXPECT_EQ(user_fires, 2);
  EXPECT_EQ(daemon_fires, 2) << "daemons at t=10,20 fire; t=30 stays pending";
  EXPECT_EQ(sched.now(), 25);
  EXPECT_EQ(sched.pending(), 0u) << "pending() must not count daemons";
  EXPECT_EQ(sched.daemon_pending(), 1u);
  EXPECT_EQ(sched.pending_total(), 1u);

  // RunUntil still fires daemons inside its window.
  sched.RunUntil(45);
  EXPECT_EQ(daemon_fires, 4);
}

// --- PeriodicTimer regressions ----------------------------------------------

// Regression (found by the auditor work): Fire() re-armed unconditionally
// after the callback, so a Stop() issued inside the callback was silently
// undone and the timer ticked forever.
TEST(PeriodicTimerTest, StopInsideCallbackActuallyStops) {
  Scheduler sched;
  int fires = 0;
  PeriodicTimer timer(&sched, [&] {
    if (++fires == 3) {
      timer.Stop();
    }
  });
  timer.Start(10);
  sched.Run();
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(timer.running());
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(PeriodicTimerTest, RestartInsideCallbackAdoptsNewCadence) {
  Scheduler sched;
  std::vector<TimeNs> ticks;
  PeriodicTimer timer(&sched, [&] {
    ticks.push_back(sched.now());
    if (ticks.size() == 2) {
      timer.Start(100);  // re-cadence from inside the callback
    }
    if (ticks.size() == 4) {
      timer.Stop();
    }
  });
  timer.Start(10);
  sched.Run();
  EXPECT_EQ(ticks, (std::vector<TimeNs>{10, 20, 120, 220}));
}

// --- packet pool poisoning --------------------------------------------------

TEST(PacketPoolTest, ReleasedPacketIsPoisoned) {
  PacketPool pool;
  PacketPtr pkt = pool.Allocate();
  Packet* raw = pkt.get();
  pkt.reset();  // returns to the free list (storage stays owned by the pool)
  EXPECT_EQ(raw->uid, kPoisonUid);
  EXPECT_EQ(raw->seq, kPoisonUid);
  EXPECT_EQ(raw->ack, kPoisonUid);

  // Recycling scrubs the poison back to defaults.
  PacketPtr again = pool.Allocate();
  EXPECT_EQ(again.get(), raw);
  EXPECT_NE(again->uid, kPoisonUid);
}

using PacketPoolDeathTest = ::testing::Test;

TEST(PacketPoolDeathTest, DoubleFreeAborts) {
  EXPECT_DEATH(
      {
        PacketPool pool;
        PacketPtr pkt = pool.Allocate();
        Packet* raw = pkt.get();
        pkt.reset();               // first (legal) release
        pool.Release(raw);         // second release of the same storage
      },
      "double free");
}

TEST(PacketPoolDeathTest, UseAfterFreeWriteIsCaughtByAudit) {
  PacketPool pool;
  PacketPtr pkt = pool.Allocate();
  Packet* raw = pkt.get();
  pkt.reset();

  AuditReport before;
  {
    Auditor a(&before);
    pool.AuditInvariants(a);
  }
  EXPECT_TRUE(before.ok()) << before.ToString();

  raw->seq = 12345;  // stale-pointer write into pooled storage

  AuditReport after;
  {
    Auditor a(&after);
    pool.AuditInvariants(a);
  }
  ASSERT_FALSE(after.ok());
  EXPECT_NE(after.failures[0].invariant.find("use-after-free"), std::string::npos);
}

// --- end-to-end audits ------------------------------------------------------

// Token conservation on the paper's Fig. 4 NetFPGA testbed: nine hosts
// under three leaf switches and a root, all-to-one incast into H1 under
// TFC. Every switch port runs its full ledger audit (counter == initial +
// refilled - overflow - debited + forgiven) both periodically during the
// run and in a final explicit pass.
TEST(AuditE2eTest, TestbedIncastConservesTokens) {
  Network net(17);
  TestbedTopology topo = BuildTestbed(net);
  InstallTfcSwitches(net);
  net.EnableAudit(Microseconds(500));

  std::vector<std::unique_ptr<TfcSender>> flows;
  for (size_t i = 1; i < topo.hosts.size(); ++i) {
    auto flow = std::make_unique<TfcSender>(&net, topo.hosts[i], topo.hosts[0],
                                            TfcHostConfig());
    flow->Write(200'000);
    flow->Close();
    flow->Start();
    flows.push_back(std::move(flow));
  }
  net.scheduler().Run();

  for (const auto& flow : flows) {
    EXPECT_EQ(flow->delivered_bytes(), 200'000u);
  }
  EXPECT_GT(net.audit_passes(), 0u) << "periodic daemon audits must have run";

  AuditReport report = net.RunAudit();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks, 100u);
  // Every switch port agent registered (NF0: 3 ports to leaves; NF1-3:
  // 1 uplink + 3 host ports each) plus scheduler, pool, and port sweeps.
  EXPECT_GE(report.components, 15u);
}

// Regression: stamping a window on a giant-BDP path (100 Gbps x 10 ms)
// produces window_bytes far above 2^32; the unguarded double->uint32 cast
// was undefined behavior (aborts under -fsanitize=float-cast-overflow).
// The stamp must clamp to kWindowInfinite instead.
TEST(AuditE2eTest, GiantBdpWindowStampClampsInsteadOfOverflowing) {
  Network net(5);
  StarTopology topo =
      BuildStar(net, 3, LinkOptions(), /*bps=*/100 * kGbps,
                /*link_delay=*/Milliseconds(10));
  InstallTfcSwitches(net);
  net.EnableAudit(Milliseconds(5));

  auto flow = std::make_unique<TfcSender>(&net, topo.hosts[1], topo.hosts[0],
                                          TfcHostConfig());
  flow->Write(5'000'000);
  flow->Close();
  flow->Start();
  net.scheduler().Run();

  EXPECT_EQ(flow->delivered_bytes(), 5'000'000u);
  AuditReport report = net.RunAudit();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace tfc
