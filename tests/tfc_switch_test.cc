// Unit tests for the TFC switch port agent, driving it with synthetic
// packets: slot machinery, effective-flow counting, token adjustment,
// window stamping, delimiter failover, and the delay arbiter.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace tfc {
namespace {

// Minimal fixture: a <- sw -> b, TFC agent on the sw->b (data egress) port.
class TfcPortFixture : public ::testing::Test {
 protected:
  void SetUp() override { Build(TfcSwitchConfig()); }

  void Build(const TfcSwitchConfig& config) {
    net_ = std::make_unique<Network>(3);
    a_ = net_->AddHost("a");
    b_ = net_->AddHost("b");
    sw_ = net_->AddSwitch("sw");
    net_->Link(a_, sw_, kGbps, Microseconds(5));
    net_->Link(sw_, b_, kGbps, Microseconds(5));
    net_->BuildRoutes();
    egress_ = Network::FindPort(sw_, b_);
    egress_->set_agent(std::make_unique<TfcPortAgent>(sw_, egress_, config));
    agent_ = TfcPortAgent::FromPort(egress_);
  }

  Packet MakeData(int flow, uint32_t payload, bool rm) {
    Packet pkt;
    pkt.uid = net_->AllocatePacketUid();
    pkt.flow_id = flow;
    pkt.src = a_->id();
    pkt.dst = b_->id();
    pkt.type = PacketType::kData;
    pkt.payload = payload;
    pkt.rm = rm;
    return pkt;
  }

  PacketPtr MakeRmaAck(int flow, uint32_t window) {
    PacketPtr pkt = std::make_unique<Packet>();
    pkt->uid = net_->AllocatePacketUid();
    pkt->flow_id = flow;
    pkt->src = b_->id();
    pkt->dst = a_->id();
    pkt->type = PacketType::kAck;
    pkt->rma = true;
    pkt->window = window;
    return pkt;
  }

  void Advance(TimeNs dt) { net_->scheduler().RunUntil(net_->scheduler().now() + dt); }

  std::unique_ptr<Network> net_;
  Host* a_ = nullptr;
  Host* b_ = nullptr;
  Switch* sw_ = nullptr;
  Port* egress_ = nullptr;
  TfcPortAgent* agent_ = nullptr;
};

TEST_F(TfcPortFixture, InitialTokenIsOneInitialBdp) {
  // c * initial_rttb = 1 Gbps * 160 us = 20 KB.
  EXPECT_NEAR(agent_->token_bytes(), 20'000.0, 1.0);
  EXPECT_EQ(agent_->rtt_b(), Microseconds(160));
  EXPECT_FALSE(agent_->has_window());
}

TEST_F(TfcPortFixture, FirstRmPacketBecomesDelimiter) {
  Packet p = MakeData(7, kMssBytes, /*rm=*/true);
  agent_->OnEgress(p);
  EXPECT_EQ(agent_->delimiter_flow(), 7);
  EXPECT_EQ(agent_->slots_completed(), 0u);
}

TEST_F(TfcPortFixture, SlotEndsOnSecondDelimiterMarkAndComputesWindow) {
  Packet p1 = MakeData(7, kMssBytes, true);
  agent_->OnEgress(p1);
  Advance(Microseconds(100));
  Packet p2 = MakeData(7, kMssBytes, true);
  agent_->OnEgress(p2);

  EXPECT_EQ(agent_->slots_completed(), 1u);
  EXPECT_TRUE(agent_->has_window());
  EXPECT_EQ(agent_->rtt_m(), Microseconds(100));
  // E was 1 (only the delimiter) so W == T.
  EXPECT_DOUBLE_EQ(agent_->window_bytes(), agent_->token_bytes());
  EXPECT_EQ(agent_->last_effective_flows(), 1);
}

TEST_F(TfcPortFixture, EffectiveFlowsCountRoundMarksPerSlot) {
  Packet d = MakeData(1, kMssBytes, true);
  agent_->OnEgress(d);
  // Three other flows mark once each; unmarked packets don't count.
  for (int flow = 2; flow <= 4; ++flow) {
    Packet p = MakeData(flow, kMssBytes, true);
    agent_->OnEgress(p);
    Packet q = MakeData(flow, kMssBytes, false);
    agent_->OnEgress(q);
  }
  Advance(Microseconds(100));
  Packet end = MakeData(1, kMssBytes, true);
  agent_->OnEgress(end);

  EXPECT_EQ(agent_->last_effective_flows(), 4);
  EXPECT_NEAR(agent_->window_bytes(), agent_->token_bytes() / 4.0, 1.0);
}

TEST_F(TfcPortFixture, RttbOnlyLearnsFromFullSizeFrames) {
  Packet p1 = MakeData(7, 0, true);  // small probe starts the slot
  agent_->OnEgress(p1);
  Advance(Microseconds(50));
  Packet p2 = MakeData(7, 0, true);  // small probe ends it: no rttb update
  agent_->OnEgress(p2);
  EXPECT_EQ(agent_->rtt_b(), Microseconds(160));

  Advance(Microseconds(80));
  Packet p3 = MakeData(7, kMssBytes, true);  // full frame: rttb learns 80 us
  agent_->OnEgress(p3);
  EXPECT_EQ(agent_->rtt_b(), Microseconds(80));

  Advance(Microseconds(200));
  Packet p4 = MakeData(7, kMssBytes, true);  // larger sample: min keeps 80 us
  agent_->OnEgress(p4);
  EXPECT_EQ(agent_->rtt_b(), Microseconds(80));
}

TEST_F(TfcPortFixture, StampsConservativeWindowBeforeFirstSlot) {
  Packet p = MakeData(9, kMssBytes, false);
  agent_->OnEgress(p);
  // Just under one frame until the port learns: below the arbiter quantum,
  // so bootstrap grants are paced rather than released all at once.
  EXPECT_EQ(p.window, kMtuFrameBytes - 1);
}

TEST_F(TfcPortFixture, StampsMinimumOfCarriedAndComputedWindow) {
  // Complete a slot to get a window.
  Packet p1 = MakeData(7, kMssBytes, true);
  agent_->OnEgress(p1);
  Advance(Microseconds(100));
  Packet p2 = MakeData(7, kMssBytes, true);
  agent_->OnEgress(p2);
  const uint32_t w = static_cast<uint32_t>(agent_->window_bytes());

  Packet fresh = MakeData(8, kMssBytes, false);
  agent_->OnEgress(fresh);
  EXPECT_EQ(fresh.window, w);

  Packet tighter = MakeData(8, kMssBytes, false);
  tighter.window = w / 2;  // an upstream switch allocated less
  agent_->OnEgress(tighter);
  EXPECT_EQ(tighter.window, w / 2);
}

TEST_F(TfcPortFixture, TokenBoostsWhenLinkUnderutilized) {
  // Slot with almost no traffic: rho tiny => target boosted, EWMA moves T up.
  Packet p1 = MakeData(7, kMssBytes, true);
  agent_->OnEgress(p1);
  const double t0 = agent_->token_bytes();
  Advance(Microseconds(500));
  Packet p2 = MakeData(7, kMssBytes, true);
  agent_->OnEgress(p2);
  EXPECT_GT(agent_->token_bytes(), t0);
}

TEST_F(TfcPortFixture, TokenStaysBoundedUnderRepeatedIdleSlots) {
  Packet first = MakeData(7, kMssBytes, true);
  agent_->OnEgress(first);
  for (int i = 0; i < 50; ++i) {
    Advance(Microseconds(200));
    Packet p = MakeData(7, kMssBytes, true);
    agent_->OnEgress(p);
  }
  // Cap: token_boost_cap (4) * c * rtt_b. rtt_b has converged to 200 us.
  const double bdp = 1e9 / 8.0 * 200e-6;
  EXPECT_LE(agent_->token_bytes(), 4.0 * bdp + 1.0);
  EXPECT_GT(agent_->token_bytes(), 0.0);
}

TEST_F(TfcPortFixture, DelimiterFinTriggersReelection) {
  Packet p1 = MakeData(7, kMssBytes, true);
  agent_->OnEgress(p1);
  Packet fin = MakeData(7, 0, false);
  fin.type = PacketType::kFin;
  agent_->OnEgress(fin);

  // The next RM packet (from another flow) becomes the delimiter.
  Packet p2 = MakeData(8, kMssBytes, true);
  agent_->OnEgress(p2);
  EXPECT_EQ(agent_->delimiter_flow(), 8);
}

TEST_F(TfcPortFixture, SilentDelimiterIsReplacedAfterBackoff) {
  Packet p1 = MakeData(7, kMssBytes, true);
  agent_->OnEgress(p1);
  Advance(Microseconds(100));
  Packet p2 = MakeData(7, kMssBytes, true);
  agent_->OnEgress(p2);
  ASSERT_EQ(agent_->delimiter_flow(), 7);

  // Flow 7 goes silent; flow 8 keeps marking. After 2*rtt_last of silence
  // the failover fires and flow 8's next mark is adopted.
  for (int i = 0; i < 10; ++i) {
    Advance(Microseconds(100));
    Packet p = MakeData(8, kMssBytes, true);
    agent_->OnEgress(p);
    if (agent_->delimiter_flow() == 8) {
      break;
    }
  }
  EXPECT_EQ(agent_->delimiter_flow(), 8);
}

TEST_F(TfcPortFixture, MissExponentSurvivesAdoptionUntilSuccessfulSlot) {
  // Regression test: when the true round interval exceeds 2^k * rtt_last,
  // each adopted delimiter is deposed before completing a slot. The backoff
  // must keep growing across adoptions so a slot eventually completes.
  Packet p1 = MakeData(1, kMssBytes, true);
  agent_->OnEgress(p1);
  Advance(Microseconds(50));
  Packet p2 = MakeData(1, kMssBytes, true);
  agent_->OnEgress(p2);  // slot completes; rtt_last = 50 us
  ASSERT_EQ(agent_->slots_completed(), 1u);

  // Now every flow marks only every 700 us (>> 2 * 50 us). Round-robin the
  // marking flow so re-elections keep landing on "fresh" flows.
  uint64_t slots_before = agent_->slots_completed();
  for (int i = 0; i < 40; ++i) {
    Advance(Microseconds(700));
    Packet p = MakeData(2 + (i % 3), kMssBytes, true);
    agent_->OnEgress(p);
  }
  EXPECT_GT(agent_->slots_completed(), slots_before);
}

// --- delay arbiter ---

TEST_F(TfcPortFixture, FullWindowRmaPassesImmediately) {
  PacketPtr ack = MakeRmaAck(5, 3 * kMtuFrameBytes);
  Packet* raw = ack.get();
  EXPECT_TRUE(agent_->OnReverse(ack));
  EXPECT_EQ(raw->window, 3 * kMtuFrameBytes);  // untouched
  EXPECT_EQ(agent_->delayed_acks(), 0u);
}

TEST_F(TfcPortFixture, SubMssRmaUpgradedWhenCounterAffords) {
  PacketPtr ack = MakeRmaAck(5, 200);
  Packet* raw = ack.get();
  EXPECT_TRUE(agent_->OnReverse(ack));  // counter starts at its cap
  EXPECT_EQ(raw->window, kMtuFrameBytes);
}

TEST_F(TfcPortFixture, SubMssRmaParkedWhenCounterExhausted) {
  // Drain the counter with two immediate upgrades (cap = 2 quanta)...
  for (int i = 0; i < 2; ++i) {
    PacketPtr ack = MakeRmaAck(5, 200);
    ASSERT_TRUE(agent_->OnReverse(ack));
  }
  // ...so the third is parked.
  PacketPtr ack = MakeRmaAck(6, 200);
  EXPECT_FALSE(agent_->OnReverse(ack));
  EXPECT_EQ(agent_->delayed_acks(), 1u);
  EXPECT_EQ(agent_->delay_queue_length(), 1u);

  // After ~quantum/(rho0*c) the parked ACK is released toward the sender
  // upgraded to one MSS.
  net_->scheduler().Run();
  EXPECT_EQ(agent_->delay_queue_length(), 0u);
}

TEST_F(TfcPortFixture, ParkedAcksReleaseAtTargetRate) {
  // Park a burst of 20 sub-MSS RMAs and measure the drain time: it must be
  // about quantum / (rho0 * c) per ACK.
  int forwarded = 0;
  std::vector<PacketPtr> parked;
  for (int i = 0; i < 22; ++i) {
    PacketPtr ack = MakeRmaAck(100 + i, 200);
    if (agent_->OnReverse(ack)) {
      ++forwarded;  // the first two consume the counter cap
    }
  }
  EXPECT_EQ(forwarded, 2);
  EXPECT_EQ(agent_->delay_queue_length(), 20u);

  const TimeNs start = net_->scheduler().now();
  net_->scheduler().Run();
  const double elapsed_us = ToMicroseconds(net_->scheduler().now() - start);
  // 20 quanta at rho0*c(wire-adjusted) ~= 20 * 12.69 us ~= 254 us.
  EXPECT_GT(elapsed_us, 200.0);
  EXPECT_LT(elapsed_us, 320.0);
}

TEST_F(TfcPortFixture, NonRmaTrafficIgnoredByArbiter) {
  PacketPtr data = std::make_unique<Packet>();
  data->flow_id = 1;
  data->src = b_->id();
  data->dst = a_->id();
  data->type = PacketType::kData;
  data->payload = 100;
  EXPECT_TRUE(agent_->OnReverse(data));

  auto plain = MakeRmaAck(1, 200);
  plain->rma = false;
  EXPECT_TRUE(agent_->OnReverse(plain));
}

TEST_F(TfcPortFixture, ArbiterFailsOpenAtQueueLimit) {
  TfcSwitchConfig config;
  config.delay_queue_limit = 4;
  Build(config);
  int parked = 0;
  int passed = 0;
  for (int i = 0; i < 20; ++i) {
    PacketPtr ack = MakeRmaAck(i, 200);
    Packet* raw = ack.get();
    if (agent_->OnReverse(ack)) {
      ++passed;
      EXPECT_EQ(raw->window, kMtuFrameBytes);
    } else {
      ++parked;
    }
  }
  EXPECT_EQ(parked, 4);
  EXPECT_EQ(passed, 16);
  net_->scheduler().Run();  // parked ones still drain
  EXPECT_EQ(agent_->delay_queue_length(), 0u);
}

TEST_F(TfcPortFixture, DelayFunctionCanBeDisabled) {
  TfcSwitchConfig config;
  config.enable_delay_function = false;
  Build(config);
  for (int i = 0; i < 10; ++i) {
    PacketPtr ack = MakeRmaAck(i, 200);
    Packet* raw = ack.get();
    EXPECT_TRUE(agent_->OnReverse(ack));
    EXPECT_EQ(raw->window, 200u);  // untouched
  }
  EXPECT_EQ(agent_->delayed_acks(), 0u);
}

// --- resilience: FIN purge, age expiry, forced delimiter loss ---

TEST_F(TfcPortFixture, FinPurgesThatFlowsParkedAcksOnly) {
  // Exhaust the counter, then park grants for flows 6 and 7.
  for (int i = 0; i < 2; ++i) {
    PacketPtr ack = MakeRmaAck(5, 200);
    ASSERT_TRUE(agent_->OnReverse(ack));
  }
  PacketPtr a6 = MakeRmaAck(6, 200);
  PacketPtr a7 = MakeRmaAck(7, 200);
  ASSERT_FALSE(agent_->OnReverse(a6));
  ASSERT_FALSE(agent_->OnReverse(a7));
  ASSERT_EQ(agent_->delay_queue_length(), 2u);

  // Flow 6 FINs on the data path: its parked grant is destroyed, flow 7's
  // survives and is still released later.
  Packet fin = MakeData(6, 0, false);
  fin.type = PacketType::kFin;
  agent_->OnEgress(fin);
  EXPECT_EQ(agent_->arbiter_expired(), 1u);
  EXPECT_EQ(agent_->delay_queue_length(), 1u);

  net_->scheduler().Run();
  EXPECT_EQ(agent_->delay_queue_length(), 0u);
  EXPECT_EQ(agent_->arbiter_expired(), 1u);  // flow 7's was released, not expired
}

TEST_F(TfcPortFixture, AgedParkedAckExpiresInsteadOfWaitingOutDeepDebt) {
  TfcSwitchConfig config;
  config.delay_park_timeout = Microseconds(100);
  Build(config);
  CountingTracer tracer;
  // Drain the cap, then sink the counter far below zero with a full-window
  // grant, so the next refill to one quantum takes ~670 us — far past the
  // 100 us park timeout.
  for (int i = 0; i < 2; ++i) {
    PacketPtr ack = MakeRmaAck(5, 200);
    ASSERT_TRUE(agent_->OnReverse(ack));
  }
  PacketPtr big = MakeRmaAck(5, 100'000);
  ASSERT_TRUE(agent_->OnReverse(big));

  net_->set_tracer(&tracer);
  PacketPtr parked = MakeRmaAck(6, 200);
  ASSERT_FALSE(agent_->OnReverse(parked));

  const TimeNs start = net_->scheduler().now();
  net_->scheduler().Run();
  // The release timer fired at the park timeout (not the full refill wait)
  // and expired the aged grant instead of releasing it.
  EXPECT_EQ(agent_->arbiter_expired(), 1u);
  EXPECT_EQ(agent_->delay_queue_length(), 0u);
  EXPECT_EQ(tracer.drops, 1u);
  EXPECT_LT(net_->scheduler().now() - start, Microseconds(300));

  double value = 0.0;
  ASSERT_TRUE(net_->metrics().Read("tfc.sw.p1.arbiter_expired", &value));
  EXPECT_EQ(value, 1.0);
  net_->set_tracer(nullptr);
}

TEST_F(TfcPortFixture, ZeroParkTimeoutDisablesExpiry) {
  TfcSwitchConfig config;
  config.delay_park_timeout = 0;
  Build(config);
  for (int i = 0; i < 2; ++i) {
    PacketPtr ack = MakeRmaAck(5, 200);
    ASSERT_TRUE(agent_->OnReverse(ack));
  }
  PacketPtr big = MakeRmaAck(5, 100'000);
  ASSERT_TRUE(agent_->OnReverse(big));
  PacketPtr parked = MakeRmaAck(6, 200);
  ASSERT_FALSE(agent_->OnReverse(parked));

  net_->scheduler().Run();
  // With expiry disabled the grant waits out the debt and is released.
  EXPECT_EQ(agent_->arbiter_expired(), 0u);
  EXPECT_EQ(agent_->delay_queue_length(), 0u);
  EXPECT_EQ(agent_->delayed_acks(), 1u);
}

TEST(TfcDelimiterFailoverTest, ForcedRmLossFailsOverWithinBackoffBound) {
  // End to end: two flows share an egress; the delimiter's RM packets are
  // then force-dropped on its sender's wire. The agent must depose the
  // silent delimiter within the 2^k * rtt_last backoff and adopt the
  // surviving flow, with rtt_b staying sane across the handover.
  Network net(9);
  StarTopology topo = BuildStar(net, 3, LinkOptions(), kGbps, Microseconds(20));
  InstallTfcSwitches(net);
  Port* egress = Network::FindPort(topo.sw, topo.hosts[0]);
  TfcPortAgent* agent = TfcPortAgent::FromPort(egress);

  PersistentFlow f1(std::make_unique<TfcSender>(&net, topo.hosts[1], topo.hosts[0],
                                                TfcHostConfig()));
  PersistentFlow f2(std::make_unique<TfcSender>(&net, topo.hosts[2], topo.hosts[0],
                                                TfcHostConfig()));
  f1.Start();
  f2.Start();
  net.scheduler().RunUntil(Milliseconds(30));
  const int delim = agent->delimiter_flow();
  ASSERT_GE(delim, 0);
  ASSERT_GT(agent->slots_completed(), 0u);
  const uint64_t failovers_before = agent->delimiter_failovers();
  const TimeNs rtt_last = agent->rtt_m();
  ASSERT_GT(rtt_last, 0);

  // Kill every further RM of the delimiter flow on its sender's NIC.
  FaultInjector inject(&net, 4);
  Host* delim_host =
      f1.sender().flow_id() == delim ? topo.hosts[1] : topo.hosts[2];
  ASSERT_TRUE(f1.sender().flow_id() == delim || f2.sender().flow_id() == delim);
  inject.DropMatching(delim_host->nic(), [delim](const Packet& pkt) {
    return pkt.rm && pkt.flow_id == delim;
  });

  const TimeNs loss_start = net.scheduler().now();
  TimeNs elapsed = 0;
  while (agent->delimiter_flow() == delim && elapsed < Milliseconds(50)) {
    net.scheduler().RunUntil(net.scheduler().now() + Microseconds(50));
    elapsed = net.scheduler().now() - loss_start;
  }

  EXPECT_NE(agent->delimiter_flow(), delim);
  EXPECT_GT(agent->delimiter_failovers(), failovers_before);
  // Re-election bound: first failover fires after 2*rtt_last of silence and
  // adoption needs one further RM arrival; 2^3 * rtt_last covers both with
  // the backoff's next doubling to spare.
  EXPECT_LE(elapsed, 8 * rtt_last);
  // rtt_b stays sane across the handover (re-seeded from rtt_last, then
  // min-corrected): positive and no larger than the pre-loss slot length.
  EXPECT_GT(agent->rtt_b(), 0);
  EXPECT_LE(agent->rtt_b(), rtt_last);

  net.scheduler().RunUntil(net.scheduler().now() + Milliseconds(10));
  EXPECT_GT(agent->slots_completed(), 0u);  // new delimiter completes slots
  const AuditReport report = net.RunAudit();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(TfcPortFixture, InstallAttachesAgentsToAllSwitchPorts) {
  Network net(1);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* s1 = net.AddSwitch("s1");
  Switch* s2 = net.AddSwitch("s2");
  net.Link(a, s1, kGbps, 0);
  net.Link(s1, s2, kGbps, 0);
  net.Link(s2, b, kGbps, 0);
  net.BuildRoutes();
  EXPECT_EQ(InstallTfcSwitches(net), 4);
  EXPECT_NE(TfcPortAgent::FromPort(Network::FindPort(s1, s2)), nullptr);
  EXPECT_NE(TfcPortAgent::FromPort(Network::FindPort(s2, b)), nullptr);
  EXPECT_EQ(a->nic()->agent(), nullptr);  // hosts get none
}

}  // namespace
}  // namespace tfc
