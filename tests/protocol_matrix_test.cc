// Cross-product sweeps: every protocol on every topology shape must at
// minimum complete transfers correctly; protocol-specific invariants are
// layered per case. These are the "does the whole matrix hold together"
// tests a release gets judged by.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/topo/topologies.h"
#include "src/workload/incast.h"
#include "src/workload/protocol.h"

namespace tfc {
namespace {

// ---------------------------------------------------------------------------
// Protocol x topology: a 1 MB transfer across every distinct path shape.
// ---------------------------------------------------------------------------

enum class Topo { kStar, kTestbed, kMultiBottleneck, kLeafSpine, kFatTree };

const char* TopoName(Topo t) {
  switch (t) {
    case Topo::kStar:
      return "Star";
    case Topo::kTestbed:
      return "Testbed";
    case Topo::kMultiBottleneck:
      return "MultiBottleneck";
    case Topo::kLeafSpine:
      return "LeafSpine";
    case Topo::kFatTree:
      return "FatTree";
  }
  return "?";
}

struct MatrixCase {
  Protocol protocol;
  Topo topo;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  return std::string(ProtocolName(info.param.protocol)) + TopoName(info.param.topo);
}

class ProtocolTopologyMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ProtocolTopologyMatrix, OneMegabyteTransferCompletesExactly) {
  const MatrixCase param = GetParam();
  ProtocolSuite suite;
  suite.protocol = param.protocol;
  Network net(61);
  LinkOptions opts;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);

  Host* src = nullptr;
  Host* dst = nullptr;
  switch (param.topo) {
    case Topo::kStar: {
      StarTopology t = BuildStar(net, 3, opts);
      src = t.hosts[1];
      dst = t.hosts[0];
      break;
    }
    case Topo::kTestbed: {
      TestbedTopology t = BuildTestbed(net, opts);
      src = t.hosts[0];  // cross-rack 4-hop path
      dst = t.hosts[8];
      break;
    }
    case Topo::kMultiBottleneck: {
      MultiBottleneckTopology t = BuildMultiBottleneck(net, opts);
      src = t.h1;
      dst = t.h3;
      break;
    }
    case Topo::kLeafSpine: {
      LeafSpineTopology t = BuildLeafSpine(net, 3, 2, opts);
      src = t.racks[0][0];
      dst = t.racks[2][1];
      break;
    }
    case Topo::kFatTree: {
      FatTreeTopology t = BuildFatTree(net, 4, opts);
      src = t.host(0, 0);
      dst = t.host(2, 3);
      break;
    }
  }
  suite.InstallSwitchLogic(net);

  auto flow = suite.MakeSender(&net, src, dst);
  flow->Write(1'000'000);
  flow->Close();
  flow->Start();
  net.scheduler().RunUntil(Seconds(30));

  EXPECT_EQ(flow->state(), ReliableSender::State::kClosed)
      << ProtocolName(param.protocol) << " on " << TopoName(param.topo);
  EXPECT_EQ(flow->delivered_bytes(), 1'000'000u);
  EXPECT_EQ(flow->stats().timeouts, 0u);  // single flow: no congestion
  EXPECT_EQ(net.scheduler().pending(), 0u) << "leaked timers";
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ProtocolTopologyMatrix,
    ::testing::Values(MatrixCase{Protocol::kTcp, Topo::kStar},
                      MatrixCase{Protocol::kTcp, Topo::kTestbed},
                      MatrixCase{Protocol::kTcp, Topo::kMultiBottleneck},
                      MatrixCase{Protocol::kTcp, Topo::kLeafSpine},
                      MatrixCase{Protocol::kTcp, Topo::kFatTree},
                      MatrixCase{Protocol::kDctcp, Topo::kStar},
                      MatrixCase{Protocol::kDctcp, Topo::kTestbed},
                      MatrixCase{Protocol::kDctcp, Topo::kMultiBottleneck},
                      MatrixCase{Protocol::kDctcp, Topo::kLeafSpine},
                      MatrixCase{Protocol::kDctcp, Topo::kFatTree},
                      MatrixCase{Protocol::kTfc, Topo::kStar},
                      MatrixCase{Protocol::kTfc, Topo::kTestbed},
                      MatrixCase{Protocol::kTfc, Topo::kMultiBottleneck},
                      MatrixCase{Protocol::kTfc, Topo::kLeafSpine},
                      MatrixCase{Protocol::kTfc, Topo::kFatTree}),
    CaseName);

// ---------------------------------------------------------------------------
// TFC incast zero-loss invariant across sender counts (the paper's core
// claim, asserted as a sweep).
// ---------------------------------------------------------------------------

class TfcIncastSenderSweep : public ::testing::TestWithParam<int> {};

TEST_P(TfcIncastSenderSweep, ZeroLossZeroTimeouts) {
  const int senders = GetParam();
  Network net(63);
  ProtocolSuite suite;
  StarTopology topo = BuildStar(net, senders + 1);
  suite.InstallSwitchLogic(net);
  std::vector<Host*> responders(topo.hosts.begin() + 1, topo.hosts.end());
  IncastConfig cfg;
  cfg.block_bytes = 128 * 1024;
  cfg.rounds = 3;
  IncastApp app(&net, suite, topo.hosts[0], responders, cfg);
  app.Start();
  net.scheduler().RunUntil(Seconds(20));
  ASSERT_TRUE(app.finished()) << senders << " senders";
  EXPECT_EQ(app.total_timeouts(), 0u);
  EXPECT_EQ(Network::FindPort(topo.sw, topo.hosts[0])->drops(), 0u);
  EXPECT_GT(app.goodput_bps(), 0.75e9);
}

INSTANTIATE_TEST_SUITE_P(Senders, TfcIncastSenderSweep,
                         ::testing::Values(2, 10, 40, 80, 120),
                         ::testing::PrintToStringParamName());

// ---------------------------------------------------------------------------
// TFC weighted allocation sweep (ratio tracks the weight in the W>MSS
// regime).
// ---------------------------------------------------------------------------

class TfcWeightSweep : public ::testing::TestWithParam<int> {};

TEST_P(TfcWeightSweep, RatioTracksWeight) {
  const uint8_t w = static_cast<uint8_t>(GetParam());
  Network net(65);
  StarTopology topo = BuildStar(net, 3, LinkOptions(), kGbps, Microseconds(100));
  InstallTfcSwitches(net);
  TfcHostConfig plain;
  TfcHostConfig weighted;
  weighted.weight = w;
  auto f1 = std::make_unique<TfcSender>(&net, topo.hosts[1], topo.hosts[0], plain);
  auto f2 = std::make_unique<TfcSender>(&net, topo.hosts[2], topo.hosts[0], weighted);
  f1->Write(100'000'000);
  f2->Write(100'000'000);
  f1->Start();
  f2->Start();
  net.scheduler().RunUntil(Milliseconds(200));
  const uint64_t b1 = f1->delivered_bytes();
  const uint64_t b2 = f2->delivered_bytes();
  net.scheduler().RunUntil(Milliseconds(500));
  const double r1 = static_cast<double>(f1->delivered_bytes() - b1);
  const double r2 = static_cast<double>(f2->delivered_bytes() - b2);
  EXPECT_NEAR(r2 / r1, static_cast<double>(w), 0.25 * w);
}

INSTANTIATE_TEST_SUITE_P(Weights, TfcWeightSweep, ::testing::Values(1, 2, 3),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace tfc
