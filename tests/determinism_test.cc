// Simulation-level properties: determinism for fixed seeds, byte
// conservation across the network, and scale/parameter sweeps that assert
// protocol invariants rather than point values.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/topo/topologies.h"
#include "src/workload/benchmark_traffic.h"
#include "src/workload/incast.h"
#include "src/workload/persistent_flow.h"
#include "src/workload/protocol.h"

namespace tfc {
namespace {

// Runs a small mixed workload and returns a behaviour fingerprint.
struct Fingerprint {
  uint64_t delivered = 0;
  uint64_t events = 0;
  uint64_t drops = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint RunFingerprint(uint64_t seed, Protocol protocol) {
  ProtocolSuite suite;
  suite.protocol = protocol;
  Network net(seed);
  LinkOptions opts;
  opts.switch_buffer_bytes = 64 * 1024;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  TestbedTopology topo = BuildTestbed(net, opts);
  suite.InstallSwitchLogic(net);
  for (Host* h : topo.hosts) {
    h->set_processing_delay(Microseconds(2), Microseconds(8));  // uses the RNG
  }

  BenchmarkTrafficConfig cfg;
  cfg.query_interarrival = Milliseconds(3);
  cfg.background_interarrival = Milliseconds(3);
  cfg.stop_time = Milliseconds(120);
  BenchmarkTrafficApp app(&net, suite, topo.hosts, cfg);
  app.Start();
  net.scheduler().RunUntil(Milliseconds(200));

  Fingerprint fp;
  fp.events = net.scheduler().executed();
  for (const auto& node : net.nodes()) {
    for (const auto& port : node->ports()) {
      fp.delivered += static_cast<uint64_t>(port->tx_bytes().count());
      fp.drops += port->drops();
    }
  }
  return fp;
}

TEST(DeterminismTest, SameSeedSameProtocolIdenticalRun) {
  for (Protocol p : {Protocol::kTfc, Protocol::kDctcp, Protocol::kTcp}) {
    Fingerprint a = RunFingerprint(1234, p);
    Fingerprint b = RunFingerprint(1234, p);
    EXPECT_EQ(a, b) << "non-deterministic run for " << ProtocolName(p);
  }
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  Fingerprint a = RunFingerprint(1234, Protocol::kTfc);
  Fingerprint b = RunFingerprint(4321, Protocol::kTfc);
  EXPECT_NE(a.events, b.events);
}

// Same workload with a full fault schedule layered on top: the injected
// randomness (drops, duplication, flapping, wipes, a host outage) must be
// just as replayable as the fault-free run.
Fingerprint RunFaultFingerprint(uint64_t seed) {
  ProtocolSuite suite;
  suite.protocol = Protocol::kTfc;
  Network net(seed);
  TestbedTopology topo = BuildTestbed(net);
  suite.InstallSwitchLogic(net);
  for (Host* h : topo.hosts) {
    h->set_processing_delay(Microseconds(2), Microseconds(8));
  }
  FaultInjector inject(&net, seed + 99);
  FaultSpec spec;
  std::string error;
  EXPECT_TRUE(FaultSpec::Parse(
      "drop=0.01,dup=0.002,ge=0.01/0.3/0.6,flap=2ms/300us,wipe=15ms,"
      "host_down=10ms+1ms,start=1ms,stop=60ms",
      &spec, &error))
      << error;
  inject.ApplySpec(spec);

  BenchmarkTrafficConfig cfg;
  cfg.query_interarrival = Milliseconds(3);
  cfg.background_interarrival = Milliseconds(3);
  cfg.stop_time = Milliseconds(80);
  BenchmarkTrafficApp app(&net, suite, topo.hosts, cfg);
  app.Start();
  net.scheduler().RunUntil(Milliseconds(150));

  Fingerprint fp;
  fp.events = net.scheduler().executed();
  fp.drops = inject.drops() + inject.dups() + inject.link_transitions() +
             inject.agent_wipes();
  for (const auto& node : net.nodes()) {
    for (const auto& port : node->ports()) {
      fp.delivered += static_cast<uint64_t>(port->tx_bytes().count());
      fp.drops += port->drops();
    }
  }
  return fp;
}

TEST(DeterminismTest, FaultScheduleReplaysBitIdentically) {
  Fingerprint a = RunFaultFingerprint(555);
  Fingerprint b = RunFaultFingerprint(555);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.drops, 0u);  // the schedule actually fired
}

TEST(DeterminismTest, FaultScheduleDivergesAcrossSeeds) {
  Fingerprint a = RunFaultFingerprint(555);
  Fingerprint b = RunFaultFingerprint(556);
  EXPECT_NE(a.events, b.events);
}

TEST(ConservationTest, EveryQueuedByteIsTransmittedOrDropped) {
  // After a finite workload fully drains, every port's queue must be empty
  // and per-port accounting must balance.
  Network net(7);
  StarTopology topo = BuildStar(net, 6);
  InstallTfcSwitches(net);
  ProtocolSuite suite;
  std::vector<std::unique_ptr<ReliableSender>> flows;
  for (int i = 1; i <= 5; ++i) {
    auto f = suite.MakeSender(&net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0]);
    f->Write(777'777);
    f->Close();
    f->Start();
    flows.push_back(std::move(f));
  }
  net.scheduler().Run();

  for (const auto& f : flows) {
    EXPECT_EQ(f->delivered_bytes(), 777'777u);
    EXPECT_EQ(f->state(), ReliableSender::State::kClosed);
  }
  for (const auto& node : net.nodes()) {
    for (const auto& port : node->ports()) {
      EXPECT_EQ(port->queue_bytes(), 0u);
      EXPECT_EQ(port->queue_packets(), 0u);
    }
  }
  EXPECT_EQ(net.scheduler().pending(), 0u);  // no leaked timers
}

// TFC invariants across link speeds: zero loss, high utilization.
class TfcLinkSpeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(TfcLinkSpeedSweep, InvariantsHoldAcrossLinkRates) {
  const uint64_t gbps = static_cast<uint64_t>(GetParam());
  Network net(31 + gbps);
  LinkOptions opts;
  opts.switch_buffer_bytes = 512 * 1024;
  StarTopology topo = BuildStar(net, 9, opts, gbps * kGbps, Microseconds(5));
  InstallTfcSwitches(net);
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (int i = 1; i <= 8; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(std::make_unique<TfcSender>(
        &net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0], TfcHostConfig())));
    flows.back()->Start();
  }
  net.scheduler().RunUntil(Milliseconds(60));
  uint64_t before = 0;
  for (auto& f : flows) {
    before += f->delivered_bytes();
  }
  net.scheduler().RunUntil(Milliseconds(160));
  uint64_t after = 0;
  for (auto& f : flows) {
    after += f->delivered_bytes();
  }
  const double rate = static_cast<double>(after - before) * 8.0 / 0.1;
  const double capacity = static_cast<double>(gbps) * 1e9;
  EXPECT_GT(rate, 0.75 * capacity);
  EXPECT_EQ(Network::FindPort(topo.sw, topo.hosts[0])->drops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(LinkRates, TfcLinkSpeedSweep, ::testing::Values(1, 10, 40),
                         ::testing::PrintToStringParamName());

// TFC incast invariants across block sizes.
class TfcIncastBlockSweep : public ::testing::TestWithParam<int> {};

TEST_P(TfcIncastBlockSweep, ZeroLossForAnyBlockSize) {
  const uint64_t block_kb = static_cast<uint64_t>(GetParam());
  Network net(17);
  ProtocolSuite suite;
  StarTopology topo = BuildStar(net, 41);
  suite.InstallSwitchLogic(net);
  std::vector<Host*> senders(topo.hosts.begin() + 1, topo.hosts.end());
  IncastConfig cfg;
  cfg.block_bytes = block_kb * 1024;
  cfg.rounds = 4;
  IncastApp app(&net, suite, topo.hosts[0], senders, cfg);
  app.Start();
  net.scheduler().RunUntil(Seconds(10));
  ASSERT_TRUE(app.finished());
  EXPECT_EQ(app.total_timeouts(), 0u);
  EXPECT_EQ(Network::FindPort(topo.sw, topo.hosts[0])->drops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Blocks, TfcIncastBlockSweep,
                         ::testing::Values(16, 64, 256, 1024),
                         ::testing::PrintToStringParamName());

// RTT heterogeneity: flows spanning the paper's intra-rack/cross-rack RTT
// spread (Sec. 4.3: at most ~3x in tree topologies) share a TFC bottleneck
// without loss, with throughput inversely biased by RTT (the paper's
// equal-window-per-flow policy).
TEST(TfcHeterogeneousRttTest, EqualWindowsRttBiasNoLoss) {
  Network net(19);
  Switch* sw = net.AddSwitch("sw");
  Host* receiver = net.AddHost("rcv");
  net.Link(sw, receiver, kGbps, Microseconds(10));
  const TimeNs delays[] = {Microseconds(10), Microseconds(15), Microseconds(20),
                           Microseconds(30)};
  std::vector<Host*> senders;
  for (int i = 0; i < 4; ++i) {
    Host* h = net.AddHost("h" + std::to_string(i));
    net.Link(h, sw, kGbps, delays[i]);
    senders.push_back(h);
  }
  net.BuildRoutes();
  InstallTfcSwitches(net);

  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (Host* h : senders) {
    flows.push_back(std::make_unique<PersistentFlow>(
        std::make_unique<TfcSender>(&net, h, receiver, TfcHostConfig())));
    flows.back()->Start();
  }
  net.scheduler().RunUntil(Milliseconds(100));
  std::vector<uint64_t> base;
  for (auto& f : flows) {
    base.push_back(f->delivered_bytes());
  }
  net.scheduler().RunUntil(Milliseconds(400));

  std::vector<double> rates;
  double total = 0;
  for (size_t i = 0; i < flows.size(); ++i) {
    rates.push_back(static_cast<double>(flows[i]->delivered_bytes() - base[i]));
    total += rates.back();
  }
  // Link stays highly utilized and lossless despite 8x RTT spread.
  EXPECT_GT(total * 8.0 / 0.3, 0.80e9);
  EXPECT_EQ(Network::FindPort(sw, receiver)->drops(), 0u);
  // Short-RTT flows get at least as much as long-RTT ones (RTT bias).
  EXPECT_GE(rates[0], rates[3]);
}

}  // namespace
}  // namespace tfc
