// XCP baseline tests: feedback stamping, efficiency/fairness controllers,
// and the gradual-convergence behaviour that motivates TFC.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/sim/stats.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"
#include "src/xcp/xcp.h"

namespace tfc {
namespace {

struct XcpStar {
  Network net{47};
  StarTopology topo;

  explicit XcpStar(int hosts)
      : topo(BuildStar(net, hosts, LinkOptions(), kGbps, Microseconds(20))) {
    InstallXcpSwitches(net);
  }
};

TEST(XcpTest, InstallsOnSwitchPortsOnly) {
  XcpStar s(3);
  for (const auto& port : s.topo.sw->ports()) {
    EXPECT_NE(XcpPortAgent::FromPort(port.get()), nullptr);
  }
  EXPECT_EQ(s.topo.hosts[0]->nic()->agent(), nullptr);
}

TEST(XcpTest, KeepsMostRestrictiveFeedbackAlongPath) {
  XcpStar s(3);
  XcpPortAgent* agent =
      XcpPortAgent::FromPort(Network::FindPort(s.topo.sw, s.topo.hosts[0]));
  Packet pkt;
  pkt.type = PacketType::kData;
  pkt.payload = kMssBytes;
  pkt.cwnd_hint = 10 * kMssBytes;
  pkt.rtt_hint = Microseconds(100);
  pkt.xcp_feedback = -5000.0;  // an upstream router already throttled hard
  pkt.xcp_feedback_set = true;
  agent->OnEgress(pkt);
  EXPECT_LE(pkt.xcp_feedback, -5000.0);  // can only become more restrictive
  EXPECT_TRUE(pkt.xcp_feedback_set);
}

TEST(XcpTest, SingleFlowReachesHighUtilization) {
  XcpStar s(2);
  PersistentFlow flow(std::make_unique<XcpSender>(&s.net, s.topo.hosts[1],
                                                  s.topo.hosts[0], XcpHostConfig()));
  flow.Start();
  s.net.scheduler().RunUntil(Milliseconds(150));
  const uint64_t before = flow.delivered_bytes();
  s.net.scheduler().RunUntil(Milliseconds(350));
  const double bps = static_cast<double>(flow.delivered_bytes() - before) * 8.0 / 0.2;
  EXPECT_GT(bps, 0.80e9);
}

TEST(XcpTest, FlowsConvergeToFairWindows) {
  XcpStar s(5);
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  std::vector<XcpSender*> senders;
  for (int i = 1; i <= 4; ++i) {
    auto sender = std::make_unique<XcpSender>(&s.net, s.topo.hosts[static_cast<size_t>(i)],
                                              s.topo.hosts[0], XcpHostConfig());
    senders.push_back(sender.get());
    flows.push_back(std::make_unique<PersistentFlow>(std::move(sender)));
    flows.back()->Start();
  }
  s.net.scheduler().RunUntil(Milliseconds(300));
  std::vector<double> cwnds;
  for (XcpSender* snd : senders) {
    cwnds.push_back(snd->cwnd_bytes());
  }
  EXPECT_GT(JainFairness(cwnds), 0.97);
  // And the queue stays small (XCP's efficiency controller drains it).
  EXPECT_LT(Network::FindPort(s.topo.sw, s.topo.hosts[0])->queue_bytes(), 20'000u);
  EXPECT_EQ(Network::FindPort(s.topo.sw, s.topo.hosts[0])->drops(), 0u);
}

TEST(XcpTest, WindowEvolvesGraduallyUnlikeTfcOneShotAllocation) {
  // XCP's window moves by per-RTT feedback increments: starting from one
  // MSS, a flow needs multiple control intervals to reach its share.
  XcpStar s(2);
  auto sender = std::make_unique<XcpSender>(&s.net, s.topo.hosts[1], s.topo.hosts[0],
                                            XcpHostConfig());
  XcpSender* raw = sender.get();
  PersistentFlow flow(std::move(sender));
  flow.Start();
  // After ~2 RTTs the window is still a fraction of its eventual value...
  s.net.scheduler().RunUntil(Microseconds(300));
  const double early = raw->cwnd_bytes();
  // ...and grows over subsequent control intervals (a TFC flow would hold
  // its full window after the first slot).
  s.net.scheduler().RunUntil(Milliseconds(100));
  const double late = raw->cwnd_bytes();
  EXPECT_GT(late, 8'000.0);
  EXPECT_LT(early, 0.6 * late);
}

TEST(XcpTest, DhatTracksTrafficRtt) {
  XcpStar s(2);
  PersistentFlow flow(std::make_unique<XcpSender>(&s.net, s.topo.hosts[1],
                                                  s.topo.hosts[0], XcpHostConfig()));
  flow.Start();
  s.net.scheduler().RunUntil(Milliseconds(100));
  XcpPortAgent* agent =
      XcpPortAgent::FromPort(Network::FindPort(s.topo.sw, s.topo.hosts[0]));
  // Base path RTT is ~106 us in this topology (full-size data frames one
  // way, small ACKs back); d-hat must have left its 160 us default and
  // settled around it.
  EXPECT_GT(agent->dhat(), Microseconds(80));
  EXPECT_LT(agent->dhat(), Microseconds(200));
}

TEST(XcpTest, RecoversAfterPathBreak) {
  XcpStar s(2);
  PersistentFlow flow(std::make_unique<XcpSender>(&s.net, s.topo.hosts[1],
                                                  s.topo.hosts[0], XcpHostConfig()));
  flow.Start();
  s.net.scheduler().RunUntil(Milliseconds(50));
  Port* egress = Network::FindPort(s.topo.sw, s.topo.hosts[0]);
  const Bytes limit = egress->buffer_limit();
  egress->set_buffer_limit(10);
  s.net.scheduler().RunUntil(Milliseconds(300));  // RTOs, cwnd collapses
  egress->set_buffer_limit(limit);
  s.net.scheduler().RunUntil(Milliseconds(800));
  const uint64_t before = flow.delivered_bytes();
  s.net.scheduler().RunUntil(Milliseconds(1000));
  const double bps = static_cast<double>(flow.delivered_bytes() - before) * 8.0 / 0.2;
  EXPECT_GT(bps, 0.5e9);  // back in business
}

}  // namespace
}  // namespace tfc
