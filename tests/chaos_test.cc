// Chaos harness: randomized fault schedules over the Fig. 4 testbed.
//
// Each seed derives a different fault schedule (stochastic wire impairments,
// trunk outages, link flapping, switch-agent wipes, one host crash) and a
// different set of cross-rack flow sizes. For every seed the harness asserts
// the protocol-resilience contract:
//   - every flow completes (no flow is stranded by any fault),
//   - the liveness watchdog never flags a stuck flow,
//   - all runtime-auditor invariants hold through every fault,
//   - an identical seed replays bit-identically (same event count, same
//     per-flow byte counts, same fault counters).
//
// Every run executes with the flight recorder armed: arming must not perturb
// the simulation (the recorder is purely passive), and the number of events
// it captures is itself part of the replay-identity contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"

namespace tfc {
namespace {

constexpr int kSeeds = 20;

struct ChaosResult {
  uint64_t executed = 0;
  uint64_t fault_drops = 0;
  uint64_t dups = 0;
  uint64_t reorders = 0;
  uint64_t agent_wipes = 0;
  uint64_t link_transitions = 0;
  TimeNs link_down_ns = 0;
  std::vector<uint64_t> delivered;  // per flow
  bool all_closed = true;
  std::vector<std::string> stuck;  // watchdog-flagged flows
  bool audit_ok = true;
  uint64_t flight_recorded = 0;  // flight-recorder events captured

  bool operator==(const ChaosResult&) const = default;
};

ChaosResult RunChaos(uint64_t seed) {
  Network net(seed);
  net.EnableAudit(Microseconds(500));
  net.flight().Arm(1 << 15);
  TestbedTopology topo = BuildTestbed(net);
  InstallTfcSwitches(net);
  FaultInjector inject(&net, seed * 0x9E3779B97F4A7C15ull + 1);
  Rng& rng = inject.rng();

  // Randomized schedule, all draws from the injector's own Rng so the
  // schedule is a pure function of the seed.
  FaultSpec spec;
  spec.profile.drop_prob = 0.002 + 0.008 * rng.Uniform();
  spec.profile.dup_prob = 0.002 * rng.Uniform();
  spec.profile.reorder_prob = 0.002 * rng.Uniform();
  spec.profile.reorder_max_delay = Microseconds(20);
  spec.profile.ge_enter_bad = 0.005 * rng.Uniform();
  spec.profile.ge_exit_bad = 0.3;
  spec.profile.ge_drop_bad = 0.8;
  spec.profile.active_from = Milliseconds(1);
  spec.profile.active_until = Milliseconds(40);
  spec.flap_mean_up = Microseconds(500) + static_cast<TimeNs>(rng.Uniform() * 1.5e6);
  spec.flap_mean_down = Microseconds(100) + static_cast<TimeNs>(rng.Uniform() * 3e5);
  spec.wipe_period = Milliseconds(5) + static_cast<TimeNs>(rng.Uniform() * 1e7);
  spec.host_down_at = Milliseconds(3) + static_cast<TimeNs>(rng.Uniform() * 5e6);
  spec.host_down_for = Microseconds(500) + static_cast<TimeNs>(rng.Uniform() * 1.5e6);
  inject.ApplySpec(spec);

  // Two extra hard outages on the NF0 trunks (the spec's flapping already
  // covers one trunk; these hit rng-chosen ones with rng-chosen timing).
  for (int i = 0; i < 2; ++i) {
    Switch* root = topo.switches[0];
    Port* trunk = root->ports()[static_cast<size_t>(rng.UniformInt(
                                    0, static_cast<int64_t>(root->ports().size()) - 1))]
                      .get();
    const TimeNs at = Milliseconds(5) + static_cast<TimeNs>(rng.Uniform() * 2e7);
    const TimeNs dur = Microseconds(200) + static_cast<TimeNs>(rng.Uniform() * 1.5e6);
    inject.ScheduleLinkDown(trunk, at, dur);
  }

  // Eight cross-rack flows with seed-dependent sizes (the Fig. 4 testbed:
  // hosts 0-2 on NF1, 3-5 on NF2, 6-8 on NF3).
  constexpr int kPairs[8][2] = {{0, 3}, {1, 6}, {4, 1}, {5, 7},
                                {6, 2}, {7, 4}, {2, 8}, {8, 5}};
  std::vector<std::unique_ptr<TfcSender>> flows;
  for (const auto& pair : kPairs) {
    const uint64_t size = static_cast<uint64_t>(40 + rng.UniformInt(0, 70)) * kMssBytes;
    auto f = std::make_unique<TfcSender>(&net, topo.hosts[static_cast<size_t>(pair[0])],
                                         topo.hosts[static_cast<size_t>(pair[1])],
                                         TfcHostConfig());
    f->Write(size);
    f->Close();
    f->Start();
    flows.push_back(std::move(f));
  }

  LivenessWatchdog watchdog(&net.scheduler(), /*check_period=*/Milliseconds(1),
                            /*stall_after=*/Seconds(2));
  for (size_t i = 0; i < flows.size(); ++i) {
    TfcSender* f = flows[i].get();
    watchdog.Watch("flow" + std::to_string(i),
                   [f] { return static_cast<double>(f->delivered_bytes()); },
                   [f] { return f->state() == ReliableSender::State::kClosed; });
  }
  watchdog.Start();

  // All faults end by ~40 ms; 20 s of simulated time is enough for even an
  // RTO-backoff recovery chain to finish many times over.
  net.scheduler().RunUntil(Seconds(20));

  ChaosResult result;
  result.executed = net.scheduler().executed();
  result.fault_drops = inject.drops();
  result.dups = inject.dups();
  result.reorders = inject.reorders();
  result.agent_wipes = inject.agent_wipes();
  result.link_transitions = inject.link_transitions();
  result.link_down_ns = inject.link_down_ns();
  for (const auto& f : flows) {
    result.delivered.push_back(f->delivered_bytes());
    if (f->state() != ReliableSender::State::kClosed) {
      result.all_closed = false;
    }
  }
  result.stuck = watchdog.flagged();
  result.audit_ok = net.RunAudit().ok();
  result.flight_recorded = net.flight().recorded();
  return result;
}

TEST(ChaosTest, EverySeedSurvivesItsFaultScheduleAndReplaysIdentically) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ChaosResult first = RunChaos(seed);

    // The schedule actually did something.
    EXPECT_GT(first.fault_drops, 0u);
    EXPECT_GT(first.agent_wipes, 0u);
    EXPECT_GT(first.link_transitions, 0u);
    EXPECT_GT(first.link_down_ns, 0);
    EXPECT_GT(first.flight_recorded, 0u);

    // Contract: no stranded flows, no watchdog flags, invariants hold.
    EXPECT_TRUE(first.all_closed);
    EXPECT_TRUE(first.stuck.empty())
        << "stuck: " << ::testing::PrintToString(first.stuck);
    EXPECT_TRUE(first.audit_ok);

    // Bit-identical replay.
    const ChaosResult replay = RunChaos(seed);
    EXPECT_EQ(first, replay);
  }
}

TEST(ChaosTest, DifferentSeedsProduceDifferentSchedules) {
  const ChaosResult a = RunChaos(101);
  const ChaosResult b = RunChaos(202);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace tfc
