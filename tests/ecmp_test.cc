// ECMP routing and fat-tree topology tests: equal-cost set computation,
// per-flow path stability, load spreading, and TFC over multipath.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/net/network.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

namespace tfc {
namespace {

TEST(EcmpTest, EqualCostSetsOnParallelPaths) {
  // a -- s1 -- {m1,m2} -- s2 -- b : two equal-cost paths between s1 and s2.
  Network net(3);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* s1 = net.AddSwitch("s1");
  Switch* s2 = net.AddSwitch("s2");
  Switch* m1 = net.AddSwitch("m1");
  Switch* m2 = net.AddSwitch("m2");
  net.Link(a, s1, kGbps, 0);
  net.Link(s1, m1, kGbps, 0);
  net.Link(s1, m2, kGbps, 0);
  net.Link(m1, s2, kGbps, 0);
  net.Link(m2, s2, kGbps, 0);
  net.Link(s2, b, kGbps, 0);
  net.BuildRoutes();

  EXPECT_EQ(s1->equal_cost_ports(b->id()).size(), 2u);
  EXPECT_EQ(s2->equal_cost_ports(a->id()).size(), 2u);
  EXPECT_EQ(m1->equal_cost_ports(b->id()).size(), 1u);
}

TEST(EcmpTest, FlowsSpreadAcrossPathsButEachFlowIsStable) {
  Network net(3);
  Host* a = net.AddHost("a");
  Host* b = net.AddHost("b");
  Switch* s1 = net.AddSwitch("s1");
  Switch* s2 = net.AddSwitch("s2");
  Switch* m1 = net.AddSwitch("m1");
  Switch* m2 = net.AddSwitch("m2");
  net.Link(a, s1, kGbps, 0);
  net.Link(s1, m1, kGbps, 0);
  net.Link(s1, m2, kGbps, 0);
  net.Link(m1, s2, kGbps, 0);
  net.Link(m2, s2, kGbps, 0);
  net.Link(s2, b, kGbps, 0);
  net.BuildRoutes();

  Port* via_m1 = Network::FindPort(s1, m1);
  Port* via_m2 = Network::FindPort(s1, m2);

  // Inject many flows; both paths must carry traffic, and re-sending the
  // same flow id must always take the same path.
  uint64_t m1_before = 0;
  uint64_t m2_before = 0;
  for (int flow = 1; flow <= 32; ++flow) {
    m1_before = via_m1->tx_packets();
    m2_before = via_m2->tx_packets();
    for (int rep = 0; rep < 3; ++rep) {
      PacketPtr pkt = std::make_unique<Packet>();
      pkt->flow_id = flow;
      pkt->src = a->id();
      pkt->dst = b->id();
      pkt->type = PacketType::kData;
      pkt->payload = 100;
      a->Send(std::move(pkt));
    }
    net.scheduler().Run();
    const uint64_t d1 = via_m1->tx_packets() - m1_before;
    const uint64_t d2 = via_m2->tx_packets() - m2_before;
    // All three copies of one flow take exactly one of the two paths.
    EXPECT_TRUE((d1 == 3 && d2 == 0) || (d1 == 0 && d2 == 3))
        << "flow " << flow << " split across paths: " << d1 << "/" << d2;
  }
  EXPECT_GT(via_m1->tx_packets(), 0u);
  EXPECT_GT(via_m2->tx_packets(), 0u);
}

TEST(FatTreeTest, K4ShapeAndPathLengths) {
  Network net(5);
  FatTreeTopology topo = BuildFatTree(net, 4);
  EXPECT_EQ(topo.hosts.size(), 16u);
  EXPECT_EQ(topo.cores.size(), 4u);
  EXPECT_EQ(topo.edges.size(), 4u);
  EXPECT_EQ(topo.aggs.size(), 4u);
  for (int pod = 0; pod < 4; ++pod) {
    EXPECT_EQ(topo.edges[static_cast<size_t>(pod)].size(), 2u);
    // Edge: 2 agg uplinks + 2 hosts; agg: 2 edge + 2 core.
    for (Switch* sw : topo.edges[static_cast<size_t>(pod)]) {
      EXPECT_EQ(sw->ports().size(), 4u);
    }
    for (Switch* sw : topo.aggs[static_cast<size_t>(pod)]) {
      EXPECT_EQ(sw->ports().size(), 4u);
    }
  }
  for (Switch* core : topo.cores) {
    EXPECT_EQ(core->ports().size(), 4u);  // one per pod
  }

  // Inter-pod: the edge switch sees 2 equal-cost agg uplinks.
  Host* src = topo.host(0, 0);
  Host* dst = topo.host(3, 3);
  Switch* edge = topo.edges[0][0];
  EXPECT_EQ(edge->equal_cost_ports(dst->id()).size(), 2u);
  // Intra-pod, different edge: also 2 paths (via either agg).
  EXPECT_EQ(edge->equal_cost_ports(topo.host(0, 2)->id()).size(), 2u);
  // Same edge switch: single path down.
  EXPECT_EQ(edge->equal_cost_ports(topo.host(0, 1)->id()).size(), 1u);
  (void)src;
}

TEST(FatTreeTest, PermutationTrafficUsesMultiplePathsUnderTfc) {
  Network net(7);
  FatTreeTopology topo = BuildFatTree(net, 4);
  InstallTfcSwitches(net);

  // Pod-shifted permutation: host i of pod p sends to host i of pod p+1 —
  // all traffic is inter-pod, the stress case for the core layer.
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (int pod = 0; pod < 4; ++pod) {
    for (int i = 0; i < 4; ++i) {
      Host* src = topo.host(pod, i);
      Host* dst = topo.host((pod + 1) % 4, i);
      flows.push_back(std::make_unique<PersistentFlow>(
          std::make_unique<TfcSender>(&net, src, dst, TfcHostConfig())));
      flows.back()->Start();
    }
  }
  net.scheduler().RunUntil(Milliseconds(100));
  std::vector<uint64_t> base;
  for (auto& f : flows) {
    base.push_back(f->delivered_bytes());
  }
  net.scheduler().RunUntil(Milliseconds(300));

  // Multiple core switches carry traffic.
  int cores_used = 0;
  for (Switch* core : topo.cores) {
    uint64_t tx = 0;
    for (const auto& port : core->ports()) {
      tx += static_cast<uint64_t>(port->tx_bytes().count());
    }
    cores_used += tx > 0 ? 1 : 0;
  }
  EXPECT_GE(cores_used, 3);

  // Every flow makes progress; aggregate is a healthy share of the 16 Gbps
  // bisection (per-flow ECMP cannot perfectly pack 16 flows onto 4 cores).
  double total = 0;
  for (size_t i = 0; i < flows.size(); ++i) {
    const double bps =
        static_cast<double>(flows[i]->delivered_bytes() - base[i]) * 8.0 / 0.2;
    EXPECT_GT(bps, 0.05e9) << "starved flow " << i;
    total += bps;
  }
  EXPECT_GT(total, 6e9);

  // And no switch port dropped anything (TFC's rare-loss property holds
  // under multipath).
  for (const auto& node : net.nodes()) {
    if (!node->is_host()) {
      for (const auto& port : node->ports()) {
        EXPECT_EQ(port->drops(), 0u);
      }
    }
  }
}

TEST(FatTreeTest, K6Scales) {
  Network net(9);
  FatTreeTopology topo = BuildFatTree(net, 6);
  EXPECT_EQ(topo.hosts.size(), 54u);
  EXPECT_EQ(topo.cores.size(), 9u);
  // Inter-pod equal-cost fanout at the aggregation layer: 3 core uplinks.
  Switch* agg = topo.aggs[0][0];
  EXPECT_EQ(agg->equal_cost_ports(topo.host(5, 0)->id()).size(), 3u);
}

}  // namespace
}  // namespace tfc
