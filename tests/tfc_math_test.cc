// Golden-value tests for the TFC switch arithmetic: exact Eq. 3-8
// computations for hand-constructed slots, so regressions in the control
// math are caught at the unit level rather than as drifted experiments.

#include <gtest/gtest.h>

#include <cmath>

#include "src/net/network.h"
#include "src/tfc/switch_port.h"

namespace tfc {
namespace {

class TfcMathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<Network>(3);
    a_ = net_->AddHost("a");
    b_ = net_->AddHost("b");
    sw_ = net_->AddSwitch("sw");
    net_->Link(a_, sw_, kGbps, Microseconds(5));
    net_->Link(sw_, b_, kGbps, Microseconds(5));
    net_->BuildRoutes();
    egress_ = Network::FindPort(sw_, b_);
    TfcSwitchConfig config;
    config.rho0 = 0.97;
    config.history_weight = 7.0 / 8.0;
    egress_->set_agent(std::make_unique<TfcPortAgent>(sw_, egress_, config));
    agent_ = TfcPortAgent::FromPort(egress_);
  }

  // Feeds a full-size RM data packet of `flow` into the agent.
  void Rm(int flow) {
    Packet p;
    p.flow_id = flow;
    p.src = a_->id();
    p.dst = b_->id();
    p.type = PacketType::kData;
    p.payload = kMssBytes;
    p.rm = true;
    agent_->OnEgress(p);
  }

  void Data(int flow, uint32_t payload) {
    Packet p;
    p.flow_id = flow;
    p.src = a_->id();
    p.dst = b_->id();
    p.type = PacketType::kData;
    p.payload = payload;
    agent_->OnEgress(p);
  }

  void Advance(TimeNs dt) { net_->scheduler().RunUntil(net_->scheduler().now() + dt); }

  std::unique_ptr<Network> net_;
  Host* a_ = nullptr;
  Host* b_ = nullptr;
  Switch* sw_ = nullptr;
  Port* egress_ = nullptr;
  TfcPortAgent* agent_ = nullptr;
};

TEST_F(TfcMathTest, FirstSlotExactArithmetic) {
  // Slot: delimiter RM at t=0, 10 unmarked data packets, delimiter RM at
  // t=100us. All full-size (1518 frame / 1538 wire bytes).
  Rm(1);
  for (int i = 0; i < 10; ++i) {
    Data(1, kMssBytes);
  }
  Advance(Microseconds(100));
  Rm(1);

  // Hand computation:
  //   rtt_m = 100 us, full frame => rtt_b = min(160us, 100us - local_wait).
  //   The slot-opening RM saw an empty queue (packets enqueue and drain at
  //   line rate... the queue the RM joined was whatever was unsent). At
  //   t=0 eleven packets were enqueued instantly, the RM first: wait 0.
  //   rtt_b = 100 us.
  EXPECT_EQ(agent_->rtt_m(), Microseconds(100));
  EXPECT_EQ(agent_->rtt_b(), Microseconds(100));

  //   A = 11 packets counted into the slot (the closing RM belongs to the
  //   next slot): 11 * 1538 wire bytes = 16918.
  //   rho = 16918*8 / (1e9 * 100e-6) = 1.35344 (above 1: the burst landed
  //   within one slot).
  //   bdp = 0.125 B/ns * 100000 ns = 12500 B.
  //   target = bdp * 0.97 / 1.35344 = 8959.38...
  //   T = 7/8 * T_init(=20000, from 160us initial rtt_b) + 1/8 * target
  //     = 17500 + 1119.92 = 18619.92..., clamped to <= 4*bdp = 50000: no-op.
  //   W = T / E, E = 1 (only the delimiter marked).
  const double rho = 11.0 * 1538 * 8 / (1e9 * 100e-6);
  const double bdp = 0.125 * 100000;
  const double target = bdp * 0.97 / rho;
  const double expect_t = 7.0 / 8.0 * 20000.0 + 1.0 / 8.0 * target;
  EXPECT_NEAR(agent_->token_bytes(), expect_t, 1.0);
  EXPECT_EQ(agent_->last_effective_flows(), 1);
  EXPECT_NEAR(agent_->window_bytes(), expect_t, 1.0);
}

TEST_F(TfcMathTest, EffectiveFlowDivision) {
  Rm(1);
  Rm(2);
  Rm(3);
  Rm(4);
  Advance(Microseconds(100));
  Rm(1);
  // E = 4 (delimiter + three others); W = T / 4 exactly.
  EXPECT_EQ(agent_->last_effective_flows(), 4);
  EXPECT_NEAR(agent_->window_bytes() * 4.0, agent_->token_bytes(), 1e-6);
}

TEST_F(TfcMathTest, RhoFloorPreventsDivergence) {
  // A nearly idle slot: only the two delimiter RMs. rho would be ~0.002,
  // but the floor (0.05) caps the boost at bdp*0.97/0.05 = 19.4*bdp,
  // which the 4*bdp clamp then bounds. rtt_b keeps its 160 us initial
  // value (the minimum of 160 us and the 1 ms slot), so bdp = 20000 B.
  Rm(1);
  Advance(Milliseconds(1));
  Rm(1);
  const double bdp = 0.125 * 160e3;
  // target clamped to 4*bdp = 80000; EWMA from 20000.
  const double expect_t = 7.0 / 8.0 * 20000.0 + 1.0 / 8.0 * (4.0 * bdp);
  EXPECT_NEAR(agent_->token_bytes(), expect_t, 1.0);
}

TEST_F(TfcMathTest, LocalQueueWaitIsSubtractedFromRttb) {
  // Pre-fill the queue with 20 full frames, then start a slot: the opening
  // RM waits 20*1518 B / 0.125 B/ns = 242.88 us in this port's queue, and
  // rtt_b must exclude that wait.
  for (int i = 0; i < 20; ++i) {
    PacketPtr pkt = std::make_unique<Packet>();
    pkt->flow_id = 99;
    pkt->src = a_->id();
    pkt->dst = b_->id();
    pkt->type = PacketType::kData;
    pkt->payload = kMssBytes;
    // Bypass the agent: enqueue directly so the prefill isn't slot traffic.
    egress_->Enqueue(std::move(pkt));
  }
  const Bytes backlog = egress_->queue_bytes();
  ASSERT_EQ(backlog, 20u * 1518u);

  Rm(1);
  Advance(Microseconds(400));
  Rm(1);
  const double wait_ns = static_cast<double>(backlog) / 0.125;
  const double expected_rttb_us = 400.0 - wait_ns / 1000.0;
  EXPECT_NEAR(ToMicroseconds(agent_->rtt_b()), expected_rttb_us, 1.0);
  EXPECT_EQ(agent_->rtt_m(), Microseconds(400));  // rtt_m keeps the raw slot
}

TEST_F(TfcMathTest, EwmaConvergesGeometrically) {
  // Repeat identical slots; T must approach the fixed point of the EWMA,
  // closing 1/8 of the gap per slot.
  Rm(1);
  double prev_gap = -1;
  for (int slot = 0; slot < 30; ++slot) {
    for (int i = 0; i < 7; ++i) {
      Data(1, kMssBytes);
    }
    Advance(Microseconds(100));
    Rm(1);
    if (slot >= 25) {
      // Near steady state the slot-to-slot change must be tiny.
      const double target = agent_->token_bytes();
      (void)target;
    }
    prev_gap = agent_->token_bytes();
  }
  // Fixed point: T* = bdp * rho0 / rho with rho from 8 packets/slot.
  const double rho = 8.0 * 1538 * 8 / (1e9 * 100e-6);
  const double fixed_point = 0.125 * 100000 * 0.97 / rho;
  EXPECT_NEAR(agent_->token_bytes(), fixed_point, fixed_point * 0.02);
  EXPECT_GT(prev_gap, 0.0);
}

TEST_F(TfcMathTest, WeightedMarksCountAsMultipleConsumers) {
  Rm(1);
  Packet heavy;
  heavy.flow_id = 2;
  heavy.src = a_->id();
  heavy.dst = b_->id();
  heavy.type = PacketType::kData;
  heavy.payload = kMssBytes;
  heavy.rm = true;
  heavy.weight = 4;
  agent_->OnEgress(heavy);
  Advance(Microseconds(100));
  Rm(1);
  EXPECT_EQ(agent_->last_effective_flows(), 5);  // 1 + 4
}

}  // namespace
}  // namespace tfc
