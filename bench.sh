#!/usr/bin/env bash
# Entry point for the performance trajectory (mirrors repro.sh for figures):
# builds the optimized benchmark binary and refreshes BENCH_core.json.
# See docs/perf.md for how to read the results.
exec "$(dirname "$0")/bench/run_bench.sh" "$@"
