#!/usr/bin/env bash
# clang-tidy gate over every first-party translation unit. Check groups
# live in .clang-tidy (bugprone-*, concurrency-*, performance-*, a
# modernize subset); concurrency-* exists for the one threaded corner of
# the tree — the sweep worker pool and the annotated mutex wrappers.
#
# Usage: tools/tidy.sh [build-dir]
#   build-dir must contain compile_commands.json (any preset configures one:
#   cmake --preset release). Defaults to build/.
#
# Skips with a notice (exit 0) when clang-tidy is not installed — the base
# image ships only gcc; the lint still runs in environments that have LLVM.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  echo "tidy.sh: clang-tidy not found on PATH; skipping (install LLVM to enable)" >&2
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "tidy.sh: ${BUILD_DIR}/compile_commands.json missing;" \
       "configure with cmake --preset release first" >&2
  exit 2
fi

# The file list comes from the build's own compile_commands.json (every
# preset exports one), so the lint surface is exactly the set of TUs the
# build compiles — no drift between find(1) globs and reality, and the same
# database astlint.py analyzes.
mapfile -t FILES < <(python3 - "${BUILD_DIR}/compile_commands.json" <<'PY'
import json, os, sys
repo = os.getcwd()
files = set()
with open(sys.argv[1]) as f:
    for entry in json.load(f):
        path = os.path.realpath(os.path.join(entry["directory"], entry["file"]))
        if path.startswith(repo + os.sep):
            files.add(os.path.relpath(path, repo))
print("\n".join(sorted(files)))
PY
)
echo "tidy.sh: linting ${#FILES[@]} TUs from ${BUILD_DIR}/compile_commands.json" \
     "with $("${TIDY}" --version | head -n1)"

RUNNER="$(command -v run-clang-tidy || true)"
if [[ -n "${RUNNER}" ]]; then
  "${RUNNER}" -quiet -p "${BUILD_DIR}" "${FILES[@]}"
else
  "${TIDY}" -quiet -p "${BUILD_DIR}" "${FILES[@]}"
fi
echo "tidy.sh: clean"
