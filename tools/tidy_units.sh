#!/usr/bin/env bash
# clang-tidy narrowing profile for the quantity-carrying layers.
#
# The unit types (src/sim/units.h) make cross-dimension arithmetic a compile
# error, but a raw `int` truncation *inside* one dimension is still legal
# C++ — this profile turns the remaining narrowing class into errors for the
# layers where a silently truncated byte count or timestamp corrupts the
# protocol: src/net, src/tfc, src/transport. The per-directory .clang-tidy
# files there carry the same profile for editor integration; this script is
# the CI entry point (ci.sh units).
#
# Usage: tools/tidy_units.sh [build-dir]
#   build-dir must contain compile_commands.json (cmake --preset release).
#
# Skips with a notice (exit 0) when clang-tidy is not installed — the base
# image ships only gcc; the gate still runs in environments that have LLVM
# (the GitHub lint job installs clang-tidy).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  echo "tidy_units.sh: clang-tidy not found on PATH; skipping (install LLVM to enable)" >&2
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "tidy_units.sh: ${BUILD_DIR}/compile_commands.json missing;" \
       "configure with cmake --preset release first" >&2
  exit 2
fi

CHECKS='-*,bugprone-narrowing-conversions,bugprone-implicit-widening-of-multiplication-result,cppcoreguidelines-narrowing-conversions'

# Quantity-carrying TUs, taken from the build's compile_commands.json (not
# a find glob) so the gate covers exactly what the build compiles.
mapfile -t FILES < <(python3 - "${BUILD_DIR}/compile_commands.json" <<'PY'
import json, os, sys
repo = os.getcwd()
layers = ("src/net/", "src/tfc/", "src/transport/")
files = set()
with open(sys.argv[1]) as f:
    for entry in json.load(f):
        path = os.path.realpath(os.path.join(entry["directory"], entry["file"]))
        if not path.startswith(repo + os.sep):
            continue
        rel = os.path.relpath(path, repo)
        if rel.startswith(layers):
            files.add(rel)
print("\n".join(sorted(files)))
PY
)
echo "tidy_units.sh: narrowing profile over ${#FILES[@]} TUs" \
     "with $("${TIDY}" --version | head -n1)"
"${TIDY}" -quiet -p "${BUILD_DIR}" --checks="${CHECKS}" \
    --warnings-as-errors='*' "${FILES[@]}"
echo "tidy_units.sh: clean"
