#!/usr/bin/env python3
"""Validator for telemetry run directories (stdlib only; used by ci.sh).

Usage: telemetry_schema.py RUN_DIR [RUN_DIR ...]
       telemetry_schema.py --flight DIR [DIR ...]
       telemetry_schema.py --sweep SWEEP_DIR [SWEEP_DIR ...]

Checks the files the exporter (src/sim/telemetry.cc) writes per run:

  manifest.json   object with schema_version == 2, git_describe,
                  created_unix / created_utc, and a "run" object.
  metrics.tfcb    binary series spill: "TFCB" magic, u32 version (=1),
                  u32 series_count, u64 record_count, interned name table
                  ({u32 len, bytes} per series), then fixed-width
                  {u32 series_id, u64 t_ns, f64 v} records (all little-
                  endian). t_ns must be non-decreasing per series and ids
                  must stay in range.
  metrics.jsonl   optional converter output (`tfcsim --convert=RUN_DIR`):
                  one sample object {"t_ns", "name", "v"} per line; when
                  present its line count is cross-checked against the
                  spill's record count.
  summary.json    schema_version == 2 plus counters / gauges / histograms /
                  profile sections with the shapes documented in
                  docs/observability.md.

At least one of metrics.tfcb / metrics.jsonl must exist.

Flight-recorder artifacts (src/sim/flight.cc) are validated when present in
a run directory, or standalone via `--flight DIR`:

  flight.tfct           binary ring dump: "TFCT" magic, u32 version (=1),
                        u32 record_bytes (=40), u32 node_count,
                        u64 recorded_total, u64 event_count, a name table
                        ({u32 len, bytes} per node), then fixed 40-byte
                        little-endian records {i64 time_ns, u64 seq, i32 a,
                        i32 b, i32 c, i32 flow, i16 node, i16 port, u8 type,
                        u8 ptype, u8 flags, u8 weight}. Timestamps must be
                        non-decreasing (the ring preserves record order),
                        types in range, and event_count <= recorded_total.
  trace.perfetto.json   Chrome trace-event export (`tfcsim --export-trace`):
                        a traceEvents array whose non-metadata events have
                        non-decreasing ts, whose "X" slices have dur >= 0,
                        and whose async "b"/"e" span pairs balance per
                        (cat, id).

Sweep directories (`tfcsim --sweep N --telemetry-dir=DIR`) are validated
via `--sweep DIR`:

  sweep.json      object with schema_version == 2, git_describe, a "sweep"
                  config object, and a "runs" list with one row per run:
                  {index, name, status, exit_code, signal, attempts,
                  wall_seconds} plus an optional "salvaged" file list.
                  status is one of ok / failed / timeout / skipped-cached;
                  every completed run's directory must itself validate as a
                  full run directory (a degraded sweep may carry failed
                  rows, but never corrupt completed ones).

Exit status: 0 when every directory validates, 1 otherwise.
"""

import json
import struct
import sys
from pathlib import Path

SCHEMA_VERSION = 2
TFCB_MAGIC = b"TFCB"
TFCB_VERSION = 1
TFCB_HEADER = struct.Struct("<4sIIQ")   # magic, version, series, records
TFCB_RECORD = struct.Struct("<IQd")     # series_id, t_ns, v

TFCT_MAGIC = b"TFCT"
TFCT_VERSION = 1
TFCT_HEADER = struct.Struct("<4sIIIQQ")  # magic, version, record_bytes,
                                         # node_count, recorded_total, events
TFCT_RECORD = struct.Struct("<qQiiiihhBBBB")
TFCT_EVENT_TYPE_COUNT = 23  # kFlightEventTypeCount (src/sim/flight.h)


class Checker:
    def __init__(self):
        self.errors = []

    def error(self, where: str, msg: str) -> None:
        self.errors.append(f"{where}: {msg}")

    def expect(self, cond: bool, where: str, msg: str) -> bool:
        if not cond:
            self.error(where, msg)
        return cond


def is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def is_uint(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def load_json(path: Path, ck: Checker):
    try:
        with path.open() as f:
            return json.load(f)
    except FileNotFoundError:
        ck.error(str(path), "missing")
    except json.JSONDecodeError as e:
        ck.error(str(path), f"invalid JSON: {e}")
    return None


def check_manifest(path: Path, ck: Checker) -> None:
    doc = load_json(path, ck)
    if doc is None:
        return
    where = str(path)
    if not ck.expect(isinstance(doc, dict), where, "top level must be an object"):
        return
    ck.expect(doc.get("schema_version") == SCHEMA_VERSION, where,
              f"schema_version must be {SCHEMA_VERSION}, got {doc.get('schema_version')!r}")
    ck.expect(isinstance(doc.get("git_describe"), str) and doc.get("git_describe"),
              where, "git_describe must be a non-empty string")
    ck.expect(is_uint(doc.get("created_unix")), where,
              "created_unix must be a non-negative integer")
    created_utc = doc.get("created_utc")
    ck.expect(isinstance(created_utc, str) and created_utc.endswith("Z"),
              where, "created_utc must be an ISO-8601 UTC string ending in Z")
    ck.expect(isinstance(doc.get("run"), dict), where, '"run" must be an object')


def check_metrics_tfcb(path: Path, ck: Checker) -> int:
    """Validates the binary spill; returns its record count (or 0 on error)."""
    where = str(path)
    data = path.read_bytes()
    if len(data) < TFCB_HEADER.size:
        ck.error(where, f"truncated header ({len(data)} bytes)")
        return 0
    magic, version, series_count, record_count = TFCB_HEADER.unpack_from(data)
    if not ck.expect(magic == TFCB_MAGIC, where, f"bad magic {magic!r}"):
        return 0
    if not ck.expect(version == TFCB_VERSION, where,
                     f"version must be {TFCB_VERSION}, got {version}"):
        return 0
    off = TFCB_HEADER.size
    names = []
    for i in range(series_count):
        if off + 4 > len(data):
            ck.error(where, f"truncated name table at entry {i}")
            return 0
        (length,) = struct.unpack_from("<I", data, off)
        off += 4
        if off + length > len(data):
            ck.error(where, f"truncated name table at entry {i}")
            return 0
        try:
            name = data[off:off + length].decode("utf-8")
        except UnicodeDecodeError:
            ck.error(where, f"name {i} is not valid UTF-8")
            name = ""
        ck.expect(bool(name), where, f"name {i} must be non-empty")
        names.append(name)
        off += length
    body = len(data) - off
    if not ck.expect(body == record_count * TFCB_RECORD.size, where,
                     f"record section is {body} bytes, header promises "
                     f"{record_count * TFCB_RECORD.size}"):
        return 0
    last_t = {}  # series_id -> last t_ns
    for i in range(record_count):
        series_id, t_ns, _v = TFCB_RECORD.unpack_from(data, off)
        off += TFCB_RECORD.size
        if not ck.expect(series_id < series_count, where,
                         f"record {i} names out-of-range series {series_id}"):
            return 0
        prev = last_t.get(series_id)
        ck.expect(prev is None or t_ns >= prev, where,
                  f"t_ns went backwards for series {names[series_id]!r}: "
                  f"{prev} -> {t_ns}")
        last_t[series_id] = t_ns
    return record_count


def check_metrics_jsonl(path: Path, ck: Checker) -> int:
    where = str(path)
    if not path.exists():
        ck.error(where, "missing")
        return 0
    last_t = {}  # series name -> last t_ns
    lines = 0
    with path.open() as f:
        for lineno, raw in enumerate(f, start=1):
            raw = raw.strip()
            if not raw:
                continue
            lines += 1
            loc = f"{where}:{lineno}"
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as e:
                ck.error(loc, f"invalid JSON: {e}")
                continue
            if not ck.expect(isinstance(obj, dict), loc, "sample must be an object"):
                continue
            ck.expect(set(obj.keys()) == {"t_ns", "name", "v"}, loc,
                      f'sample keys must be exactly t_ns/name/v, got {sorted(obj.keys())}')
            name = obj.get("name")
            t_ns = obj.get("t_ns")
            v = obj.get("v")
            ck.expect(isinstance(name, str) and name, loc, "name must be a non-empty string")
            ck.expect(v is None or is_number(v), loc, "v must be a number or null")
            if not ck.expect(is_uint(t_ns), loc, "t_ns must be a non-negative integer"):
                continue
            if isinstance(name, str):
                prev = last_t.get(name)
                ck.expect(prev is None or t_ns >= prev, loc,
                          f"t_ns went backwards for series {name!r}: {prev} -> {t_ns}")
                last_t[name] = t_ns
    return lines


def check_flight_tfct(path: Path, ck: Checker) -> int:
    """Validates a flight-recorder dump; returns its event count (0 on error)."""
    where = str(path)
    data = path.read_bytes()
    if len(data) < TFCT_HEADER.size:
        ck.error(where, f"truncated header ({len(data)} bytes)")
        return 0
    magic, version, record_bytes, node_count, recorded_total, event_count = \
        TFCT_HEADER.unpack_from(data)
    if not ck.expect(magic == TFCT_MAGIC, where, f"bad magic {magic!r}"):
        return 0
    if not ck.expect(version == TFCT_VERSION, where,
                     f"version must be {TFCT_VERSION}, got {version}"):
        return 0
    if not ck.expect(record_bytes == TFCT_RECORD.size, where,
                     f"record size must be {TFCT_RECORD.size}, got {record_bytes}"):
        return 0
    ck.expect(event_count <= recorded_total, where,
              f"ring holds {event_count} events but only {recorded_total} "
              "were ever recorded")
    off = TFCT_HEADER.size
    for i in range(node_count):
        if off + 4 > len(data):
            ck.error(where, f"truncated node-name table at entry {i}")
            return 0
        (length,) = struct.unpack_from("<I", data, off)
        off += 4
        if off + length > len(data):
            ck.error(where, f"truncated node-name table at entry {i}")
            return 0
        try:
            data[off:off + length].decode("utf-8")
        except UnicodeDecodeError:
            ck.error(where, f"node name {i} is not valid UTF-8")
        off += length
    body = len(data) - off
    if not ck.expect(body == event_count * TFCT_RECORD.size, where,
                     f"event section is {body} bytes, header promises "
                     f"{event_count * TFCT_RECORD.size}"):
        return 0
    prev_time = None
    for i in range(event_count):
        time_ns, _seq, _a, _b, _c, flow, node, port, etype, _pt, _fl, _w = \
            TFCT_RECORD.unpack_from(data, off)
        off += TFCT_RECORD.size
        loc = f"{where} event[{i}]"
        ck.expect(time_ns >= 0, loc, f"negative timestamp {time_ns}")
        ck.expect(prev_time is None or time_ns >= prev_time, loc,
                  f"time went backwards: {prev_time} -> {time_ns}")
        prev_time = time_ns
        if not ck.expect(etype < TFCT_EVENT_TYPE_COUNT, loc,
                         f"unknown event type {etype}"):
            return 0
        ck.expect(flow >= -1, loc, f"bad flow id {flow}")
        ck.expect(node >= -1, loc, f"bad node id {node}")
        ck.expect(port >= -1, loc, f"bad port index {port}")
    return event_count


def check_perfetto_json(path: Path, ck: Checker) -> int:
    """Validates a Chrome trace-event export; returns its event count."""
    doc = load_json(path, ck)
    if doc is None:
        return 0
    where = str(path)
    if not ck.expect(isinstance(doc, dict), where, "top level must be an object"):
        return 0
    events = doc.get("traceEvents")
    if not ck.expect(isinstance(events, list), where,
                     '"traceEvents" must be a list'):
        return 0
    prev_ts = None
    open_spans = {}  # (cat, id) -> open-begin depth
    for i, ev in enumerate(events):
        loc = f"{where} traceEvents[{i}]"
        if not ck.expect(isinstance(ev, dict), loc, "event must be an object"):
            continue
        ph = ev.get("ph")
        if not ck.expect(isinstance(ph, str) and ph, loc,
                         '"ph" must be a non-empty string'):
            continue
        if ph == "M":
            ck.expect(isinstance(ev.get("name"), str), loc,
                      "metadata needs a name")
            continue
        ts = ev.get("ts")
        if not ck.expect(is_number(ts), loc, '"ts" must be a number'):
            continue
        ck.expect(prev_ts is None or ts >= prev_ts - 1e-9, loc,
                  f"ts went backwards: {prev_ts} -> {ts}")
        prev_ts = ts
        if ph == "X":
            ck.expect(is_number(ev.get("dur")) and ev.get("dur") >= 0, loc,
                      'slice "dur" must be a non-negative number')
        elif ph == "b":
            key = (ev.get("cat"), ev.get("id"))
            open_spans[key] = open_spans.get(key, 0) + 1
        elif ph == "e":
            key = (ev.get("cat"), ev.get("id"))
            if not ck.expect(open_spans.get(key, 0) > 0, loc,
                             f"span end without begin for {key}"):
                continue
            open_spans[key] -= 1
    for key, depth in open_spans.items():
        ck.expect(depth == 0, where, f"unclosed async span {key}")
    return len(events)


def check_flight_dir(run_dir: Path, ck: Checker) -> int:
    """Validates a directory's flight artifacts; returns the event count."""
    tfct = run_dir / "flight.tfct"
    if not tfct.exists():
        ck.error(str(tfct), "missing")
        return 0
    events = check_flight_tfct(tfct, ck)
    perfetto = run_dir / "trace.perfetto.json"
    if perfetto.exists():
        check_perfetto_json(perfetto, ck)
    return events


def check_histogram(h, where: str, ck: Checker) -> None:
    if not ck.expect(isinstance(h, dict), where, "histogram must be an object"):
        return
    for key in ("count", "sum", "min", "max", "p50", "p90", "p99", "p999"):
        ck.expect(is_uint(h.get(key)), where, f"{key} must be a non-negative integer")
    ck.expect(is_number(h.get("mean")), where, "mean must be a number")
    buckets = h.get("buckets")
    if not ck.expect(isinstance(buckets, list), where, "buckets must be a list"):
        return
    total = 0
    for i, b in enumerate(buckets):
        loc = f"{where} bucket[{i}]"
        if not ck.expect(isinstance(b, list) and len(b) == 3, loc,
                         "bucket must be [lower, upper, count]"):
            continue
        lo, hi, n = b
        ck.expect(is_uint(lo) and is_uint(hi) and is_uint(n), loc,
                  "bucket fields must be non-negative integers")
        # upper == 0 marks the unbounded top bucket.
        ck.expect(hi == 0 or hi > lo, loc, f"empty bucket range [{lo}, {hi})")
        ck.expect(n > 0, loc, "sparse export must omit empty buckets")
        if is_uint(n):
            total += n
    ck.expect(total == h.get("count"), where,
              f"bucket counts sum to {total}, count says {h.get('count')}")


def check_summary(path: Path, ck: Checker) -> None:
    doc = load_json(path, ck)
    if doc is None:
        return
    where = str(path)
    if not ck.expect(isinstance(doc, dict), where, "top level must be an object"):
        return
    ck.expect(doc.get("schema_version") == SCHEMA_VERSION, where,
              f"schema_version must be {SCHEMA_VERSION}, got {doc.get('schema_version')!r}")
    for section in ("counters", "gauges", "histograms", "profile"):
        ck.expect(isinstance(doc.get(section), dict), where,
                  f'"{section}" must be an object')
    for name, v in (doc.get("counters") or {}).items():
        ck.expect(is_uint(v), f"{where} counters[{name!r}]",
                  "counter must be a non-negative integer")
    for name, v in (doc.get("gauges") or {}).items():
        ck.expect(v is None or is_number(v), f"{where} gauges[{name!r}]",
                  "gauge must be a number or null")
    for name, h in (doc.get("histograms") or {}).items():
        check_histogram(h, f"{where} histograms[{name!r}]", ck)
    for name, site in (doc.get("profile") or {}).items():
        loc = f"{where} profile[{name!r}]"
        if ck.expect(isinstance(site, dict), loc, "site must be an object"):
            for key in ("hits", "sim_ns", "wall_ns"):
                ck.expect(is_uint(site.get(key)), loc,
                          f"{key} must be a non-negative integer")


def check_run_dir(run_dir: Path, ck: Checker) -> int:
    check_manifest(run_dir / "manifest.json", ck)
    tfcb = run_dir / "metrics.tfcb"
    jsonl = run_dir / "metrics.jsonl"
    samples = 0
    if not tfcb.exists() and not jsonl.exists():
        ck.error(str(run_dir), "neither metrics.tfcb nor metrics.jsonl exists")
    if tfcb.exists():
        samples = check_metrics_tfcb(tfcb, ck)
    if jsonl.exists():
        jsonl_samples = check_metrics_jsonl(jsonl, ck)
        if tfcb.exists():
            ck.expect(jsonl_samples == samples, str(jsonl),
                      f"{jsonl_samples} converted samples but the spill "
                      f"records {samples}")
        else:
            samples = jsonl_samples
    check_summary(run_dir / "summary.json", ck)
    # Flight-recorder artifacts ride along when the run was armed.
    if (run_dir / "flight.tfct").exists():
        check_flight_dir(run_dir, ck)
    return samples


SWEEP_SCHEMA_VERSION = 2
RUN_STATUSES = {"ok", "failed", "timeout", "skipped-cached"}


def check_sweep_dir(sweep_dir: Path, ck: Checker) -> int:
    """Validates sweep.json and every completed run's directory; returns the
    number of run rows."""
    path = sweep_dir / "sweep.json"
    doc = load_json(path, ck)
    if doc is None:
        return 0
    where = str(path)
    if not ck.expect(isinstance(doc, dict), where, "top level must be an object"):
        return 0
    ck.expect(doc.get("schema_version") == SWEEP_SCHEMA_VERSION, where,
              f"schema_version must be {SWEEP_SCHEMA_VERSION}, "
              f"got {doc.get('schema_version')!r}")
    ck.expect(isinstance(doc.get("git_describe"), str) and doc.get("git_describe"),
              where, "git_describe must be a non-empty string")
    ck.expect(isinstance(doc.get("sweep"), dict), where, '"sweep" must be an object')
    runs = doc.get("runs")
    if not ck.expect(isinstance(runs, list) and runs, where,
                     '"runs" must be a non-empty list'):
        return 0
    for i, r in enumerate(runs):
        loc = f"{where} runs[{i}]"
        if not ck.expect(isinstance(r, dict), loc, "run must be an object"):
            continue
        ck.expect(r.get("index") == i, loc,
                  f'index must be {i}, got {r.get("index")!r}')
        name = r.get("name")
        ck.expect(isinstance(name, str) and name, loc,
                  "name must be a non-empty string")
        status = r.get("status")
        if not ck.expect(status in RUN_STATUSES, loc,
                         f"status must be one of {sorted(RUN_STATUSES)}, "
                         f"got {status!r}"):
            continue
        exit_code = r.get("exit_code")
        ck.expect(isinstance(exit_code, int) and not isinstance(exit_code, bool),
                  loc, "exit_code must be an integer")
        ck.expect(is_uint(r.get("signal")), loc,
                  "signal must be a non-negative integer")
        ck.expect(is_uint(r.get("attempts")), loc,
                  "attempts must be a non-negative integer")
        wall = r.get("wall_seconds")
        ck.expect(is_number(wall) and wall >= 0, loc,
                  "wall_seconds must be a non-negative number")
        salvaged = r.get("salvaged", [])
        ck.expect(isinstance(salvaged, list) and
                  all(isinstance(s, str) and s for s in salvaged), loc,
                  "salvaged must be a list of non-empty strings")
        # Status/field consistency.
        if status in ("ok", "skipped-cached"):
            ck.expect(exit_code == 0, loc, f"{status} run with exit_code {exit_code!r}")
            ck.expect(r.get("signal") == 0, loc, f"{status} run with a signal")
        else:
            ck.expect(exit_code != 0, loc, f"{status} run with exit_code 0")
        if status == "skipped-cached":
            ck.expect(r.get("attempts") == 0, loc,
                      "skipped-cached run must record 0 attempts (never forked)")
        elif is_uint(r.get("attempts")):
            ck.expect(r.get("attempts") >= 1, loc,
                      f"{status} run must record at least 1 attempt")
        # A completed run must have left a fully valid run directory behind
        # (sweep.json lives in the telemetry dir, so run dirs are siblings).
        if status in ("ok", "skipped-cached") and isinstance(name, str) and name:
            run_dir = sweep_dir / name
            if ck.expect(run_dir.is_dir(), loc,
                         f"completed run has no run directory {run_dir}"):
                check_run_dir(run_dir, ck)
    return len(runs)


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    ck = Checker()
    args = argv[1:]
    mode = "run"
    if args and args[0] in ("--flight", "--sweep"):
        mode = args[0][2:]
        args = args[1:]
        if not args:
            print(__doc__.strip(), file=sys.stderr)
            return 2
    for arg in args:
        run_dir = Path(arg)
        if not run_dir.is_dir():
            ck.error(arg, "not a directory")
            continue
        if mode == "flight":
            events = check_flight_dir(run_dir, ck)
            print(f"telemetry_schema.py: {run_dir}: {events} flight event(s)",
                  file=sys.stderr)
        elif mode == "sweep":
            runs = check_sweep_dir(run_dir, ck)
            print(f"telemetry_schema.py: {run_dir}: {runs} sweep run(s)",
                  file=sys.stderr)
        else:
            samples = check_run_dir(run_dir, ck)
            print(f"telemetry_schema.py: {run_dir}: {samples} samples",
                  file=sys.stderr)
    for e in ck.errors:
        print(e)
    print(f"telemetry_schema.py: {len(ck.errors)} violation(s)", file=sys.stderr)
    return 1 if ck.errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
