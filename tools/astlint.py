#!/usr/bin/env python3
"""AST-driven determinism analyzer (libclang; see docs/correctness.md).

Every guarantee the replay/byte-identity gates enforce *dynamically* — chaos
replay equality, parallel-sweep bit-identity, resume/retry byte-identity —
is determinism. This tool makes nondeterminism a compile-time-class error:
it walks the real clang AST of every first-party translation unit (via the
build tree's compile_commands.json, no regex heuristics) and enforces the
determinism contracts of the simulation layers.

Rules (AST-precise; catalogue also via --list-rules):

  det-wallclock       No wall-clock or ambient-entropy source in the
                      deterministic layers (src/sim, src/net, src/tfc,
                      src/transport, src/topo, src/workload): time(),
                      gettimeofday(), clock_gettime(), rand()/srand()/
                      random()/drand48(), std::random_device, and the
                      std::chrono clocks (system_clock, steady_clock,
                      high_resolution_clock). Simulation results must be a
                      pure function of (config, seed); host time may only
                      appear at allowlisted cold sites (the profiler, run
                      manifests, supervisor timeouts) carried in the
                      suppression file with a justification.
  det-unordered-iter  No range-for / begin()/end() traversal of a
                      std::unordered_map/set in the deterministic layers.
                      Iteration order of an unordered container is a
                      function of libc hash salt and insertion history;
                      walking one leaks that order into results. Keyed
                      lookup (find/count/operator[]) is fine.
  det-pointer-key     No std::map/set/unordered_map/unordered_set or
                      priority_queue keyed by a raw pointer in the
                      deterministic layers. Address-ordered (or
                      address-hashed) containers order entries by heap
                      layout, which varies across ASLR runs and breaks
                      replay. Key by a stable identity (node id, port
                      index, flow id) instead.
  bare-assert         AST-precise version of the lint.py rule: an `assert`
                      macro instantiation (detected from the preprocessing
                      record, not brace/regex matching) must be TFC_CHECK /
                      TFC_DCHECK (src/sim/check.h) instead — assert()
                      vanishes under NDEBUG.
  hot-io              AST-precise version of the lint.py rule: no stream /
                      printf I/O referenced from the hot layers (src/sim,
                      src/net, src/tfc). The sanctioned funnel files carry
                      file-scoped suppressions with justifications.
  recorder-hot        AST-precise version of the lint.py rule: the
                      recording hot paths — resolved from their actual
                      FunctionDecls (TimeSeriesRecorder::Tick/AppendTo,
                      SpillWriter::AppendRecord, FlightRecorder::Record/
                      Append, Network::EmitTrace/EmitTraceArmed), not brace
                      matching — must stay free of lookups, allocation,
                      container growth, and I/O.

Findings are keyed by (rule, file, decl, line) and matched against the
checked-in suppression file tools/astlint_suppressions.txt, whose entries
require a justification (see that file's header; --selftest proves the
parser rejects unjustified entries). Unsuppressed findings fail the run;
unused suppressions are reported so the file cannot rot.

Engine: python clang bindings + libclang. When either is missing the
analyzer skips with a warning and exit code 77 (ctest SKIP_RETURN_CODE;
ci.sh treats it as skip unless TFC_ASTLINT_REQUIRE=1). tools/lint.py
remains the no-dependency regex fallback; which tool owns which rule is
documented in both headers and docs/correctness.md.

Usage:
  astlint.py [--build-dir DIR]            analyze src/ TUs via the DIR's
                                          compile_commands.json (default:
                                          first of build, build-asan,
                                          build-hardened, build-tsan,
                                          build-debug that has one)
  astlint.py --fixture TU.cc [--check-golden GOLDEN]
                                          analyze a standalone fixture TU
                                          (all rules active regardless of
                                          path; no suppressions); print
                                          findings as `rule line decl` or
                                          compare against GOLDEN
  astlint.py --probe                      exit 0 if the libclang engine is
                                          available, 3 if not
  astlint.py --selftest                   pure-python self-test (no
                                          libclang): suppression grammar,
                                          justification policy, matching
  astlint.py --list-rules                 print the rule catalogue

Exit codes: 0 clean, 1 findings/golden mismatch, 2 usage or setup error,
3 probe-unavailable, 77 engine unavailable (skip).
"""

import argparse
import glob
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SUPPRESSION_FILE = os.path.join(REPO, "tools", "astlint_suppressions.txt")

RULES = (
    "det-wallclock",
    "det-unordered-iter",
    "det-pointer-key",
    "bare-assert",
    "hot-io",
    "recorder-hot",
)

# Layers whose outputs must be a pure function of (config, seed).
DET_LAYERS = (
    "src/sim/",
    "src/net/",
    "src/tfc/",
    "src/transport/",
    "src/topo/",
    "src/workload/",
)
# Hot layers for the I/O ban (mirrors tools/lint.py HOT_IO_LAYERS).
HOT_IO_LAYERS = ("src/sim/", "src/net/", "src/tfc/")

# det-wallclock: banned free functions (global or std namespace).
WALLCLOCK_FUNCS = {
    "time", "gettimeofday", "clock_gettime", "clock", "timespec_get",
    "ftime", "rand", "srand", "random", "srandom", "rand_r",
    "drand48", "lrand48", "mrand48", "getentropy", "getrandom",
}
# det-wallclock: banned std classes (referenced as a type or via a static
# member call such as steady_clock::now()).
WALLCLOCK_CLASSES = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "random_device",
}

UNORDERED_CONTAINERS = {
    "unordered_map", "unordered_multimap", "unordered_set",
    "unordered_multiset",
}
KEYED_CONTAINERS = UNORDERED_CONTAINERS | {
    "map", "multimap", "set", "multiset", "priority_queue",
}
ITER_METHODS = {"begin", "end", "cbegin", "cend", "rbegin", "rend"}

# hot-io: banned stream objects / functions / stream types (std or global).
HOT_IO_OBJECTS = {"cout", "cerr", "clog", "wcout", "wcerr", "wclog"}
HOT_IO_FUNCS = {"printf", "fprintf", "fputs", "fwrite", "puts", "putchar",
                "vprintf", "vfprintf"}
HOT_IO_STREAM_TYPES = {"basic_ofstream", "basic_fstream", "basic_stringstream",
                       "basic_ostringstream"}

# recorder-hot: hot scopes resolved by qualified decl name. "lookup" scopes
# ban map types and keyed-lookup member calls; "append" scopes additionally
# ban allocation and container growth (mirrors tools/lint.py, but resolved
# from FunctionDecl bodies instead of brace matching).
RECORDER_HOT_SCOPES = {
    "TimeSeriesRecorder::Tick": "lookup",
    "TimeSeriesRecorder::AppendTo": "lookup",
    "SpillWriter::AppendRecord": "lookup",
    "FlightRecorder::Record": "append",
    "FlightRecorder::Append": "append",
    "Network::EmitTrace": "append",
    "Network::EmitTraceArmed": "append",
}
RECORDER_LOOKUP_CALLS = {"find", "at"}
RECORDER_GROWTH_CALLS = {"resize", "reserve", "push_back", "emplace_back",
                         "assign", "insert", "emplace"}
RECORDER_LOOKUP_TYPES = {"map", "unordered_map", "multimap",
                         "unordered_multimap"}
RECORDER_APPEND_TYPES = RECORDER_LOOKUP_TYPES | {"basic_string", "vector",
                                                 "deque", "list"}

MIN_JUSTIFICATION = 15  # chars; "mandatory" means it must actually say why


class Finding:
    __slots__ = ("rule", "file", "line", "decl", "message")

    def __init__(self, rule, file, line, decl, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.decl = decl or "<file-scope>"
        self.message = message

    def key(self):
        return (self.rule, self.file, self.decl, self.line)

    def __str__(self):
        return (f"{self.file}:{self.line}: [{self.rule}] ({self.decl}) "
                f"{self.message}")


# ---------------------------------------------------------------------------
# Suppression file: `rule file decl -- justification` per line. decl `*`
# suppresses the whole file for that rule. Matching is on (rule, file) plus
# decl equality or suffix (so `Tick` matches `TimeSeriesRecorder::Tick`).
# ---------------------------------------------------------------------------

class SuppressionError(ValueError):
    pass


class Suppression:
    __slots__ = ("rule", "file", "decl", "justification", "lineno", "used")

    def __init__(self, rule, file, decl, justification, lineno):
        self.rule = rule
        self.file = file
        self.decl = decl
        self.justification = justification
        self.lineno = lineno
        self.used = False

    def matches(self, finding):
        if self.rule != finding.rule or self.file != finding.file:
            return False
        if self.decl == "*":
            return True
        return (finding.decl == self.decl
                or finding.decl.endswith("::" + self.decl))


def parse_suppressions(text, source="<suppressions>"):
    entries = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if " -- " not in line:
            raise SuppressionError(
                f"{source}:{lineno}: missing ' -- <justification>' — every "
                "suppression must say why the site is sanctioned")
        head, justification = line.split(" -- ", 1)
        justification = justification.strip()
        fields = head.split()
        if len(fields) != 3:
            raise SuppressionError(
                f"{source}:{lineno}: expected 'rule file decl -- "
                f"justification', got {len(fields)} field(s) before ' -- '")
        rule, file, decl = fields
        if rule not in RULES:
            raise SuppressionError(
                f"{source}:{lineno}: unknown rule '{rule}' (known: "
                f"{', '.join(RULES)})")
        if len(justification) < MIN_JUSTIFICATION:
            raise SuppressionError(
                f"{source}:{lineno}: justification too short "
                f"({len(justification)} chars, need >= {MIN_JUSTIFICATION}) "
                "— explain why determinism/hot-path rules do not apply here")
        entries.append(Suppression(rule, file, decl, justification, lineno))
    return entries


def load_suppressions(path):
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as f:
        return parse_suppressions(f.read(), source=os.path.relpath(path, REPO))


# ---------------------------------------------------------------------------
# Engine discovery. The analyzer needs the python clang bindings AND a
# loadable libclang shared object; both are probed lazily so --selftest and
# --probe work (and fail informatively) everywhere.
# ---------------------------------------------------------------------------

def _libclang_candidates():
    env = os.environ.get("TFC_LIBCLANG")
    if env:
        yield env
    patterns = (
        "/usr/lib/llvm-*/lib/libclang.so*",
        "/usr/lib/llvm-*/lib/libclang-*.so*",
        "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
        "/usr/lib/x86_64-linux-gnu/libclang.so*",
        "/usr/local/lib/libclang*.so*",
        "/opt/homebrew/opt/llvm/lib/libclang.dylib",
        "/Library/Developer/CommandLineTools/usr/lib/libclang.dylib",
    )
    seen = set()
    for pat in patterns:
        # Prefer the newest LLVM when several are installed.
        for path in sorted(glob.glob(pat), reverse=True):
            if "libclang-cpp" in os.path.basename(path):
                continue  # the C++ library is not the C API
            if path not in seen:
                seen.add(path)
                yield path


def load_engine():
    """Returns (cindex module, Index) or (None, reason string)."""
    try:
        from clang import cindex
    except ImportError:
        return None, ("python clang bindings not importable "
                      "(install python3-clang / the libclang wheel)")
    last_error = "no libclang shared library found"
    tried_default = False
    for candidate in [None] + list(_libclang_candidates()):
        try:
            if candidate is None:
                if tried_default:
                    continue
                tried_default = True
            else:
                cindex.Config.loaded = False
                cindex.Config.library_file = candidate
            index = cindex.Index.create()
            return cindex, index
        except Exception as e:  # LibclangError, OSError
            last_error = f"{candidate or '<default>'}: {e}"
            continue
    return None, f"libclang not loadable ({last_error})"


# ---------------------------------------------------------------------------
# AST analysis
# ---------------------------------------------------------------------------

class Analyzer:
    def __init__(self, cindex, index, fixture_mode=False):
        self.ci = cindex
        self.index = index
        self.fixture_mode = fixture_mode
        self.findings = {}
        # (file -> [(start_line, end_line, label)]) for attributing flat
        # preprocessing-record cursors (assert instantiations) to decls.
        self.decl_spans = {}

    # -- path/layer helpers --------------------------------------------------

    def rel_path(self, cursor):
        loc = cursor.location
        if loc.file is None:
            return None
        path = os.path.realpath(loc.file.name)
        if self.fixture_mode:
            return os.path.basename(path) if path.startswith(
                os.path.realpath(self.fixture_root)) else None
        if not path.startswith(REPO + os.sep):
            return None
        return os.path.relpath(path, REPO)

    def in_layers(self, rel, layers):
        if self.fixture_mode:
            return True  # fixtures exercise every rule regardless of path
        return rel is not None and rel.startswith(layers)

    def add(self, rule, rel, line, decl, message):
        f = Finding(rule, rel, line, decl, message)
        self.findings.setdefault(f.key(), f)

    # -- type helpers --------------------------------------------------------

    def strip_refs(self, t):
        TypeKind = self.ci.TypeKind
        t = t.get_canonical()
        while t.kind in (TypeKind.LVALUEREFERENCE, TypeKind.RVALUEREFERENCE,
                         TypeKind.POINTER):
            t = t.get_pointee().get_canonical()
        return t

    def container_name(self, t):
        """std container record name of canonical type t, or None."""
        t = self.strip_refs(t)
        decl = t.get_declaration()
        if decl is None or not decl.spelling:
            return None
        if decl.spelling not in KEYED_CONTAINERS:
            return None
        return decl.spelling if self.in_std(decl) else None

    def in_std(self, decl):
        """True if decl's enclosing namespaces are std (incl. inline ones)."""
        CursorKind = self.ci.CursorKind
        p = decl.semantic_parent
        saw_std = False
        while p is not None and p.kind != CursorKind.TRANSLATION_UNIT:
            if p.kind == CursorKind.NAMESPACE:
                name = p.spelling
                if name == "std":
                    saw_std = True
                elif name not in ("", "__1", "__cxx11", "__gnu_cxx", "chrono",
                                  "__detail", "filesystem"):
                    return False
            elif p.kind in (CursorKind.CLASS_DECL, CursorKind.STRUCT_DECL,
                            CursorKind.CLASS_TEMPLATE,
                            CursorKind.CLASS_TEMPLATE_PARTIAL_SPECIALIZATION):
                pass  # nested record (e.g. chrono clock) — keep walking
            else:
                return False
            p = p.semantic_parent
        return saw_std

    def std_or_global(self, decl):
        CursorKind = self.ci.CursorKind
        p = decl.semantic_parent
        if p is None or p.kind == CursorKind.TRANSLATION_UNIT:
            return True
        return self.in_std(decl)

    def qualified_label(self, cursor):
        """Class-qualified decl name without namespaces (Foo::Bar)."""
        CursorKind = self.ci.CursorKind
        parts = []
        p = cursor
        while p is not None and p.kind not in (CursorKind.TRANSLATION_UNIT,):
            if p.kind in (CursorKind.NAMESPACE, CursorKind.LINKAGE_SPEC,
                          CursorKind.UNEXPOSED_DECL):
                p = p.semantic_parent
                continue
            parts.append(p.spelling or "<anon>")
            p = p.semantic_parent
        return "::".join(reversed(parts)) or "<file-scope>"

    # -- per-rule checks -----------------------------------------------------

    def check_wallclock(self, cursor, rel, decl_label):
        CursorKind = self.ci.CursorKind
        if not self.in_layers(rel, DET_LAYERS):
            return
        ref = None
        if cursor.kind in (CursorKind.DECL_REF_EXPR, CursorKind.TYPE_REF,
                           CursorKind.TEMPLATE_REF):
            ref = cursor.referenced
        if ref is None:
            return
        name = ref.spelling
        if name in WALLCLOCK_FUNCS and ref.kind in (
                CursorKind.FUNCTION_DECL,) and self.std_or_global(ref):
            self.add("det-wallclock", rel, cursor.location.line, decl_label,
                     f"call to wall-clock/entropy source '{name}()' in a "
                     "deterministic layer — results must be a pure function "
                     "of (config, seed); use the Scheduler clock / seeded Rng")
            return
        if ref.kind == CursorKind.CXX_METHOD and ref.spelling == "now":
            parent = ref.semantic_parent
            if (parent is not None and parent.spelling in WALLCLOCK_CLASSES
                    and self.in_std(parent)):
                name = parent.spelling
            else:
                return
        if name in WALLCLOCK_CLASSES and self.in_std(
                ref if ref.kind != CursorKind.CXX_METHOD
                else ref.semantic_parent):
            self.add("det-wallclock", rel, cursor.location.line, decl_label,
                     f"std::{name} referenced in a deterministic layer — "
                     "host clocks and ambient entropy leak wall time into "
                     "results; use the Scheduler clock / seeded Rng")

    def check_unordered_iter(self, cursor, rel, decl_label):
        CursorKind = self.ci.CursorKind
        if not self.in_layers(rel, DET_LAYERS):
            return
        if cursor.kind == CursorKind.CXX_FOR_RANGE_STMT:
            kids = list(cursor.get_children())
            if not kids:
                return
            body = kids[-1] if kids[-1].kind == CursorKind.COMPOUND_STMT \
                else None
            head = kids[:-1] if body is not None else kids
            for k in head:
                name = self._unordered_in_subtree(k)
                if name:
                    self.add(
                        "det-unordered-iter", rel, cursor.location.line,
                        decl_label,
                        f"range-for over std::{name} in a deterministic "
                        "layer — iteration order is a function of hash salt "
                        "and insertion history; use a sorted container or "
                        "iterate a deterministic index")
                    return
        elif (cursor.kind == CursorKind.CALL_EXPR
              and cursor.spelling in ITER_METHODS):
            for k in cursor.get_children():
                name = self._unordered_in_subtree(k, depth=2)
                if name:
                    self.add(
                        "det-unordered-iter", rel, cursor.location.line,
                        decl_label,
                        f"{cursor.spelling}() on std::{name} in a "
                        "deterministic layer — traversal order leaks hash "
                        "salt; use a sorted container")
                    return

    def _unordered_in_subtree(self, cursor, depth=4):
        t = cursor.type
        if t is not None and t.kind != self.ci.TypeKind.INVALID:
            name = self.container_name(t)
            if name in UNORDERED_CONTAINERS:
                return name
        if depth <= 0:
            return None
        for k in cursor.get_children():
            name = self._unordered_in_subtree(k, depth - 1)
            if name:
                return name
        return None

    def check_pointer_key(self, cursor, rel, decl_label):
        CursorKind = self.ci.CursorKind
        TypeKind = self.ci.TypeKind
        if not self.in_layers(rel, DET_LAYERS):
            return
        if cursor.kind not in (CursorKind.FIELD_DECL, CursorKind.VAR_DECL,
                               CursorKind.PARM_DECL,
                               CursorKind.TYPE_ALIAS_DECL,
                               CursorKind.TYPEDEF_DECL):
            return
        t = cursor.type
        if cursor.kind in (CursorKind.TYPE_ALIAS_DECL,
                           CursorKind.TYPEDEF_DECL):
            t = cursor.underlying_typedef_type
        if t is None or t.kind == TypeKind.INVALID:
            return
        t = self.strip_refs(t)
        name = self.container_name(t)
        if name is None:
            return
        if t.get_num_template_arguments() < 1:
            return
        key = t.get_template_argument_type(0)
        if key is None or key.kind == TypeKind.INVALID:
            return
        if key.get_canonical().kind == TypeKind.POINTER:
            self.add(
                "det-pointer-key", rel, cursor.location.line,
                decl_label if cursor.kind not in (
                    CursorKind.FIELD_DECL, CursorKind.VAR_DECL)
                else self.qualified_label(cursor),
                f"std::{name} keyed by a raw pointer "
                f"('{key.spelling}') in a deterministic layer — "
                "address-dependent order varies across ASLR runs and breaks "
                "replay; key by a stable identity (node id, port index, "
                "flow id)")

    def check_hot_io(self, cursor, rel, decl_label):
        CursorKind = self.ci.CursorKind
        if not self.in_layers(rel, HOT_IO_LAYERS):
            return
        if cursor.kind == CursorKind.DECL_REF_EXPR:
            ref = cursor.referenced
            if ref is None:
                return
            if (ref.spelling in HOT_IO_OBJECTS
                    and ref.kind == CursorKind.VAR_DECL and self.in_std(ref)):
                self.add("hot-io", rel, cursor.location.line, decl_label,
                         f"std::{ref.spelling} referenced in a hot layer — "
                         "route observability through the metric registry / "
                         "tracer / exporter (src/sim/telemetry.h)")
            elif (ref.spelling in HOT_IO_FUNCS
                  and ref.kind == CursorKind.FUNCTION_DECL
                  and self.std_or_global(ref)):
                self.add("hot-io", rel, cursor.location.line, decl_label,
                         f"'{ref.spelling}()' called in a hot layer — no "
                         "printf-family I/O; use the telemetry exporter")
        elif cursor.kind in (CursorKind.VAR_DECL, CursorKind.FIELD_DECL):
            t = cursor.type
            if t is None or t.kind == self.ci.TypeKind.INVALID:
                return
            decl = self.strip_refs(t).get_declaration()
            if (decl is not None and decl.spelling in HOT_IO_STREAM_TYPES
                    and self.in_std(decl)):
                self.add("hot-io", rel, cursor.location.line,
                         self.qualified_label(cursor),
                         f"std::{decl.spelling} declared in a hot layer — "
                         "file/stream I/O belongs in the exporter, not the "
                         "simulation path")

    def recorder_scope_of(self, label):
        for suffix, kind in RECORDER_HOT_SCOPES.items():
            if label == suffix or label.endswith("::" + suffix):
                return kind
        return None

    def check_recorder_hot(self, cursor, rel, decl_label, scope_kind):
        CursorKind = self.ci.CursorKind
        line = cursor.location.line
        if cursor.kind == CursorKind.CALL_EXPR:
            callee = cursor.spelling
            banned = (callee in RECORDER_LOOKUP_CALLS
                      or (scope_kind == "append"
                          and callee in RECORDER_GROWTH_CALLS)
                      or (callee == "count"
                          and len(list(cursor.get_children())) > 1))
            if banned:
                self.add("recorder-hot", rel, line, decl_label,
                         f"'{callee}()' call inside a recording hot path — "
                         "resolve lookups and grow buffers at plan-build / "
                         "Arm() time, not per event")
            if callee == "malloc":
                self.add("recorder-hot", rel, line, decl_label,
                         "malloc inside a recording hot path")
        elif cursor.kind == CursorKind.CXX_NEW_EXPR:
            self.add("recorder-hot", rel, line, decl_label,
                     "allocation (new) inside a recording hot path — the "
                     "append is a masked store; do setup in Arm()")
        elif cursor.kind == CursorKind.VAR_DECL:
            t = cursor.type
            if t is not None and t.kind != self.ci.TypeKind.INVALID:
                decl = self.strip_refs(t).get_declaration()
                types = (RECORDER_APPEND_TYPES if scope_kind == "append"
                         else RECORDER_LOOKUP_TYPES)
                if (decl is not None and decl.spelling in types
                        and self.in_std(decl)):
                    self.add(
                        "recorder-hot", rel, line, decl_label,
                        f"std::{decl.spelling} local in a recording hot "
                        "path — keyed/allocating containers belong in the "
                        "cold setup path")
        elif cursor.kind == CursorKind.DECL_REF_EXPR:
            ref = cursor.referenced
            if (ref is not None and ref.kind == CursorKind.VAR_DECL
                    and ref.spelling in HOT_IO_OBJECTS and self.in_std(ref)):
                self.add("recorder-hot", rel, line, decl_label,
                         f"std::{ref.spelling} inside a recording hot path")
            elif (ref is not None and ref.kind == CursorKind.FUNCTION_DECL
                  and ref.spelling in HOT_IO_FUNCS
                  and self.std_or_global(ref)):
                self.add("recorder-hot", rel, line, decl_label,
                         f"'{ref.spelling}()' inside a recording hot path")

    # -- walk ----------------------------------------------------------------

    def analyze_tu(self, tu, fixture_root=None):
        self.fixture_root = fixture_root or REPO
        CursorKind = self.ci.CursorKind
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            raise RuntimeError(
                "fatal parse diagnostics:\n  "
                + "\n  ".join(str(d) for d in fatal[:5]))
        macro_sites = []
        for child in tu.cursor.get_children():
            if child.kind == CursorKind.MACRO_INSTANTIATION:
                if child.spelling == "assert":
                    rel = self.rel_path(child)
                    if rel is not None:
                        macro_sites.append((rel, child.location.line))
                continue
            if child.kind in (CursorKind.MACRO_DEFINITION,
                              CursorKind.INCLUSION_DIRECTIVE):
                continue
            self._visit(child, "<file-scope>", None)
        for rel, line in macro_sites:
            self.add("bare-assert", rel, line,
                     self._decl_at(rel, line),
                     "assert() vanishes under NDEBUG — use TFC_CHECK / "
                     "TFC_DCHECK (src/sim/check.h)")

    def _decl_at(self, rel, line):
        best = None
        best_span = None
        for start, end, label in self.decl_spans.get(rel, ()):
            if start <= line <= end:
                span = end - start
                if best_span is None or span < best_span:
                    best, best_span = label, span
        return best or "<file-scope>"

    def _visit(self, cursor, decl_label, recorder_kind):
        CursorKind = self.ci.CursorKind
        rel = self.rel_path(cursor)
        if cursor.kind.is_declaration() and rel is None \
                and cursor.location.file is not None:
            return  # out-of-repo subtree (system / third-party headers)
        if cursor.kind in (CursorKind.FUNCTION_DECL, CursorKind.CXX_METHOD,
                           CursorKind.CONSTRUCTOR, CursorKind.DESTRUCTOR,
                           CursorKind.CONVERSION_FUNCTION,
                           CursorKind.FUNCTION_TEMPLATE):
            label = self.qualified_label(cursor)
            if cursor.is_definition() and rel is not None:
                ext = cursor.extent
                self.decl_spans.setdefault(rel, []).append(
                    (ext.start.line, ext.end.line, label))
            decl_label = label
            kind = self.recorder_scope_of(label)
            if kind is not None and cursor.is_definition():
                recorder_kind = kind
        if rel is not None:
            self.check_wallclock(cursor, rel, decl_label)
            self.check_unordered_iter(cursor, rel, decl_label)
            self.check_pointer_key(cursor, rel, decl_label)
            self.check_hot_io(cursor, rel, decl_label)
            if recorder_kind is not None and (
                    self.fixture_mode or rel.startswith("src/")):
                self.check_recorder_hot(cursor, rel, decl_label,
                                        recorder_kind)
        for child in cursor.get_children():
            self._visit(child, decl_label, recorder_kind)


# ---------------------------------------------------------------------------
# Translation-unit enumeration and parsing
# ---------------------------------------------------------------------------

GCC_ONLY_FLAGS = {
    "-Wduplicated-cond", "-Wduplicated-branches", "-Wlogical-op",
    "-fno-lifetime-dse", "-fconcepts",
}

PARSE_EXTRA = ["-Wno-unknown-warning-option", "-Wno-unused-command-line-argument",
               "-ferror-limit=200"]


def tu_parse_args(command):
    """compile_commands entry -> clang parse args (compiler/-c/-o stripped)."""
    args = list(command.arguments)
    out = []
    skip = False
    for i, a in enumerate(args):
        if i == 0:  # the compiler executable
            continue
        if skip:
            skip = False
            continue
        if a in ("-c",):
            continue
        if a == "-o":
            skip = True
            continue
        if a in GCC_ONLY_FLAGS:
            continue
        if os.path.basename(a) == os.path.basename(command.filename) \
                and a.endswith((".cc", ".cpp", ".cxx", ".c")):
            continue
        out.append(a)
    return out + PARSE_EXTRA


def find_build_dir(explicit):
    if explicit:
        if os.path.exists(os.path.join(explicit, "compile_commands.json")):
            return explicit
        return None
    for d in ("build", "build-asan", "build-hardened", "build-tsan",
              "build-debug"):
        path = os.path.join(REPO, d)
        if os.path.exists(os.path.join(path, "compile_commands.json")):
            return path
    return None


def analyze_src(cindex, index, build_dir, all_tus=False):
    db = cindex.CompilationDatabase.fromDirectory(build_dir)
    commands = db.getAllCompileCommands()
    analyzer = Analyzer(cindex, index)
    options = cindex.TranslationUnit.PARSE_DETAILED_PREPROCESSING_RECORD
    parsed = 0
    cwd = os.getcwd()
    try:
        for cmd in commands:
            src = os.path.realpath(
                os.path.join(cmd.directory, cmd.filename))
            if not src.startswith(REPO + os.sep):
                continue
            rel = os.path.relpath(src, REPO)
            if not all_tus and not rel.startswith("src/"):
                continue
            os.chdir(cmd.directory)
            tu = index.parse(src, args=tu_parse_args(cmd), options=options)
            analyzer.analyze_tu(tu)
            parsed += 1
    finally:
        os.chdir(cwd)
    if parsed == 0:
        raise RuntimeError(
            f"no first-party TUs found in {build_dir}/compile_commands.json")
    return analyzer, parsed


def analyze_fixture(cindex, index, path):
    analyzer = Analyzer(cindex, index, fixture_mode=True)
    options = cindex.TranslationUnit.PARSE_DETAILED_PREPROCESSING_RECORD
    args = ["-x", "c++", "-std=c++20", "-I", os.path.dirname(path),
            "-nostdinc", "-nostdinc++"] + PARSE_EXTRA
    tu = index.parse(path, args=args, options=options)
    analyzer.analyze_tu(tu, fixture_root=os.path.dirname(path))
    return analyzer


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------

def report_src(analyzer, suppressions):
    unsuppressed = []
    suppressed = 0
    for key in sorted(analyzer.findings):
        f = analyzer.findings[key]
        hit = None
        for s in suppressions:
            if s.matches(f):
                hit = s
                break
        if hit is not None:
            hit.used = True
            suppressed += 1
        else:
            unsuppressed.append(f)
    for f in unsuppressed:
        print(f)
    unused = [s for s in suppressions if not s.used]
    for s in unused:
        print(f"astlint: warning: unused suppression at "
              f"tools/astlint_suppressions.txt:{s.lineno} "
              f"({s.rule} {s.file} {s.decl}) — delete it or the rule it "
              "sanctions has moved", file=sys.stderr)
    total = len(analyzer.findings)
    print(f"astlint: {total} finding(s), {suppressed} suppressed, "
          f"{len(unsuppressed)} unsuppressed, {len(unused)} unused "
          "suppression(s)", file=sys.stderr)
    return 1 if unsuppressed else 0


def fixture_lines(analyzer):
    lines = []
    for key in sorted(analyzer.findings,
                      key=lambda k: (analyzer.findings[k].line, k[0])):
        f = analyzer.findings[key]
        lines.append(f"{f.rule} {f.line} {f.decl}")
    return lines


def check_golden(produced, golden_path):
    with open(golden_path, encoding="utf-8") as f:
        expected = [ln.strip() for ln in f
                    if ln.strip() and not ln.strip().startswith("#")]
    if produced == expected:
        print(f"astlint: fixture matches {os.path.basename(golden_path)} "
              f"({len(expected)} finding(s))")
        return 0
    print(f"astlint: fixture mismatch vs {golden_path}", file=sys.stderr)
    for ln in sorted(set(expected) - set(produced)):
        print(f"  missing:    {ln}", file=sys.stderr)
    for ln in sorted(set(produced) - set(expected)):
        print(f"  unexpected: {ln}", file=sys.stderr)
    return 1


# ---------------------------------------------------------------------------
# Self-test (pure python; runs everywhere, no libclang)
# ---------------------------------------------------------------------------

def selftest():
    failures = []

    def check(name, fn):
        try:
            fn()
        except AssertionError as e:
            failures.append(f"{name}: {e}")

    def good_entries():
        text = (
            "# comment\n"
            "\n"
            "det-wallclock src/sim/profile.h * -- profiler measures host "
            "wall-clock by design; gated behind TFC_PROFILE\n"
            "hot-io src/sim/telemetry.cc Exporter::Flush -- exporter is the "
            "sanctioned cold I/O funnel\n")
        entries = parse_suppressions(text, "t")
        assert len(entries) == 2, f"expected 2 entries, got {len(entries)}"
        assert entries[0].decl == "*"
        assert entries[1].decl == "Exporter::Flush"
    check("parse-good", good_entries)

    def reject_missing_justification():
        try:
            parse_suppressions("det-wallclock src/sim/a.h Foo::Bar\n", "t")
        except SuppressionError as e:
            assert "justification" in str(e), str(e)
            return
        raise AssertionError("entry without ' -- justification' accepted")
    check("reject-unjustified", reject_missing_justification)

    def reject_short_justification():
        try:
            parse_suppressions("hot-io src/sim/a.h Foo -- ok\n", "t")
        except SuppressionError as e:
            assert "too short" in str(e), str(e)
            return
        raise AssertionError("trivial justification accepted")
    check("reject-short", reject_short_justification)

    def reject_unknown_rule():
        try:
            parse_suppressions(
                "det-cosmic-rays src/sim/a.h Foo -- justification long "
                "enough to pass length check\n", "t")
        except SuppressionError as e:
            assert "unknown rule" in str(e), str(e)
            return
        raise AssertionError("unknown rule accepted")
    check("reject-unknown-rule", reject_unknown_rule)

    def reject_bad_fields():
        try:
            parse_suppressions(
                "det-wallclock src/sim/a.h -- no decl field present here\n",
                "t")
        except SuppressionError as e:
            assert "field" in str(e), str(e)
            return
        raise AssertionError("missing decl field accepted")
    check("reject-bad-fields", reject_bad_fields)

    def matching():
        s = parse_suppressions(
            "recorder-hot src/sim/telemetry.cc Tick -- suffix matching must "
            "hit the qualified decl\n", "t")[0]
        hit = Finding("recorder-hot", "src/sim/telemetry.cc", 10,
                      "TimeSeriesRecorder::Tick", "m")
        miss_rule = Finding("hot-io", "src/sim/telemetry.cc", 10,
                            "TimeSeriesRecorder::Tick", "m")
        miss_file = Finding("recorder-hot", "src/sim/flight.h", 10,
                            "TimeSeriesRecorder::Tick", "m")
        miss_decl = Finding("recorder-hot", "src/sim/telemetry.cc", 10,
                            "TimeSeriesRecorder::Tock", "m")
        assert s.matches(hit), "suffix decl match failed"
        assert not s.matches(miss_rule), "matched across rules"
        assert not s.matches(miss_file), "matched across files"
        assert not s.matches(miss_decl), "matched a different decl"
        wild = parse_suppressions(
            "hot-io src/net/trace.cc * -- whole-file funnel allowance for "
            "the tracer\n", "t")[0]
        assert wild.matches(Finding("hot-io", "src/net/trace.cc", 3,
                                    "Anything::AtAll", "m"))
    check("matching", matching)

    def checked_in_file_is_valid():
        entries = load_suppressions(SUPPRESSION_FILE)
        assert entries, f"{SUPPRESSION_FILE} missing or empty"
        for e in entries:
            assert len(e.justification) >= MIN_JUSTIFICATION
    check("checked-in-suppressions-valid", checked_in_file_is_valid)

    def finding_key():
        f = Finding("bare-assert", "src/sim/a.cc", 7, None, "m")
        assert f.key() == ("bare-assert", "src/sim/a.cc", "<file-scope>", 7)
    check("finding-key", finding_key)

    if failures:
        for f in failures:
            print(f"astlint selftest FAIL: {f}", file=sys.stderr)
        return 1
    print("astlint: selftest ok (suppression grammar, justification policy, "
          "matching, checked-in file)")
    return 0


# ---------------------------------------------------------------------------

def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0],
                                 add_help=True)
    ap.add_argument("--build-dir", default=None,
                    help="build tree containing compile_commands.json")
    ap.add_argument("--all-tus", action="store_true",
                    help="also parse tests/bench/examples TUs (default: "
                    "src/ only; headers are covered either way)")
    ap.add_argument("--fixture", default=None,
                    help="analyze one standalone fixture TU")
    ap.add_argument("--check-golden", default=None,
                    help="with --fixture: compare findings to this golden "
                    "file (lines: 'rule line decl')")
    ap.add_argument("--probe", action="store_true",
                    help="exit 0 if the libclang engine is available, 3 if "
                    "not")
    ap.add_argument("--selftest", action="store_true",
                    help="pure-python self-test; needs no libclang")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0
    if args.selftest:
        return selftest()

    cindex, index_or_reason = load_engine()
    if args.probe:
        if cindex is None:
            print(f"astlint: engine unavailable: {index_or_reason}",
                  file=sys.stderr)
            return 3
        print("astlint: engine available")
        return 0
    if cindex is None:
        print(f"astlint: skipping — {index_or_reason}. tools/lint.py remains "
              "the no-dependency fallback for bare-assert/hot-io/"
              "recorder-hot; the det-* rules run where libclang is installed "
              "(CI).", file=sys.stderr)
        return 77
    index = index_or_reason

    if args.fixture:
        path = os.path.abspath(args.fixture)
        if not os.path.exists(path):
            print(f"astlint: no such fixture: {path}", file=sys.stderr)
            return 2
        try:
            analyzer = analyze_fixture(cindex, index, path)
        except RuntimeError as e:
            print(f"astlint: {path}: {e}", file=sys.stderr)
            return 2
        lines = fixture_lines(analyzer)
        if args.check_golden:
            return check_golden(lines, args.check_golden)
        for ln in lines:
            print(ln)
        return 0

    build_dir = find_build_dir(args.build_dir)
    if build_dir is None:
        where = args.build_dir or "build*/"
        print(f"astlint: no compile_commands.json under {where}; configure "
              "with `cmake --preset release` first "
              "(CMAKE_EXPORT_COMPILE_COMMANDS is on in every preset)",
              file=sys.stderr)
        return 2
    try:
        suppressions = load_suppressions(SUPPRESSION_FILE)
    except SuppressionError as e:
        print(f"astlint: bad suppression file: {e}", file=sys.stderr)
        return 2
    try:
        analyzer, parsed = analyze_src(cindex, index, build_dir,
                                       all_tus=args.all_tus)
    except RuntimeError as e:
        print(f"astlint: {e}", file=sys.stderr)
        return 2
    print(f"astlint: parsed {parsed} TU(s) from "
          f"{os.path.relpath(build_dir, REPO)}/compile_commands.json",
          file=sys.stderr)
    return report_src(analyzer, suppressions)


if __name__ == "__main__":
    sys.exit(main())
