#!/usr/bin/env python3
"""Repo-convention linter (no third-party deps; stdlib only).

Rules enforced (see docs/correctness.md):
  include-root    quoted #includes must be repo-root-relative, i.e. start
                  with src/ or bench/ (system headers use <...>).
  new-packet      `new Packet` may appear only in the pool allocator
                  (src/net/packet_pool.h). All other code must allocate via
                  PacketPool::Allocate so poisoning / pooling stay airtight.
                  Suppress a sanctioned site with `// lint:allow new-packet`.
  std-function    src/sim and src/net are hot-path layers: callbacks there
                  must use InplaceFunction (no allocation, SBO) rather than
                  std::function. Suppress with `// lint:allow std-function`.
  bare-assert     use TFC_CHECK / TFC_DCHECK (src/sim/check.h), which print
                  context and abort under all build types; bare assert()
                  vanishes in NDEBUG builds. static_assert is fine.
  hot-io          src/sim, src/net, and src/tfc are simulation hot paths:
                  no stream/printf I/O there (std::cout, printf, ofstream,
                  ...). Observability goes through the metric registry /
                  tracer / exporter (src/sim/telemetry.h) so the per-event
                  cost is a pointer bump, not formatting. The tracer and
                  exporter implementations themselves are allowlisted.
                  Suppress a sanctioned site with `// lint:allow hot-io`.
  packet-drop     packet loss must stay auditable: the only sanctioned
                  emission sites for kDrop / kFaultDrop trace events in src/
                  are the port TX path (src/net/port.cc) and the fault
                  injector (src/net/fault.cc). Any other layer that destroys
                  a packet must either route it through those funnels or
                  carry an explicit `// lint:allow packet-drop` with a
                  counter/metric justifying the loss (e.g. host teardown
                  drops, arbiter expiry).
  raw-thread      threading primitives in src/ must be the annotated wrappers
                  from src/sim/thread_annotations.h (tfc::Mutex, MutexLock,
                  CondVar) so clang's -Wthread-safety sees every lock. Raw
                  std::mutex / std::lock_guard / std::thread & co. are
                  allowed only inside src/sim/thread_annotations.h (the
                  wrappers themselves) and src/sim/sweep.cc (the worker
                  pool). Suppress with `// lint:allow raw-thread`.
  guarded-by      a tfc::Mutex that guards nothing is either dead or — worse
                  — a lock someone forgot to annotate: every Mutex declared
                  in src/ must have at least one TFC_GUARDED_BY /
                  TFC_PT_GUARDED_BY user naming it in the same file.
  units           the quantity-carrying layers (src/sim, src/net, src/tfc,
                  src/transport, src/topo, src/workload) are migrated to the
                  strong unit types in src/sim/units.h: a declaration of a
                  raw arithmetic type (double, uint64_t, ...) whose name is
                  suffixed _bytes/_tokens/_ns/_bps is a dimension the type
                  system can no longer see. Declare it as Bytes / Tokens /
                  TimeNs / BitsPerSec instead. Wire-format boundaries
                  (src/net/packet.h header fields) are allowlisted; named
                  raw-view escapes carry `// lint:allow units`.
  recorder-hot    the per-event recording hot paths must stay allocation-,
                  lookup-, and I/O-free. Three brace-matched scopes are
                  scanned: the telemetry sampler (TimeSeriesRecorder::Tick /
                  ::AppendTo and SpillWriter::AppendRecord in
                  src/sim/telemetry.cc — no std::map / unordered_map, no
                  string-keyed lookups, no stream I/O; cold helpers like
                  RebuildPlan and Flush do that work), the flight-recorder
                  ring append (FlightRecorder::Record in src/sim/flight.h —
                  a masked store, so additionally no allocation or container
                  growth), and the trace emission path (Network::EmitTrace /
                  ::EmitTraceArmed in src/net/network.h — a gate branch plus
                  an inline record fill). Suppress with
                  `// lint:allow recorder-hot`.

Rule ownership vs tools/astlint.py (see docs/correctness.md): astlint
carries AST-precise versions of bare-assert, hot-io, and recorder-hot
(macro instantiations from the preprocessing record, canonical types,
scopes resolved from real FunctionDecls) plus the det-* determinism rules,
but it needs libclang. This file stays the no-dependency fallback that runs
everywhere. Under `--ast-owned` (passed by ci.sh when the astlint engine is
available) the superseded regex rules stand down where astlint covers them:
hot-io and recorder-hot entirely (their scopes are all under src/), and
bare-assert for src/ files only — astlint's default scan parses src/ TUs,
so tests/bench/examples keep the regex check either way.

Exit status: 0 when clean, 1 when any violation is found.
"""

import re
import sys
from pathlib import Path

# Set by --ast-owned: stand down rules that tools/astlint.py enforces
# AST-precisely in this environment (see docstring).
AST_OWNED = False

REPO = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "tests", "bench", "examples")
# Seeded-violation analyzer test data (tests/astlint/) is violating by
# construction — it exists to prove tools/astlint.py flags those patterns.
SKIP_PREFIXES = ("tests/astlint/",)
CXX_SUFFIXES = {".h", ".cc", ".cpp"}

INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"')
NEW_PACKET_RE = re.compile(r"\bnew\s+Packet\b")
STD_FUNCTION_RE = re.compile(r"\bstd::function\b")
# assert( not preceded by an identifier character (rules out static_assert,
# TFC_ASSERT-style macros, and _assert suffixes).
BARE_ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
LINE_COMMENT_RE = re.compile(r"//.*$")

ROOT_PREFIXES = tuple(f"{d}/" for d in SCAN_DIRS)
HOT_LAYERS = ("src/sim/", "src/net/")
POOL_FILE = "src/net/packet_pool.h"

# hot-io: stream/printf I/O is banned in the simulation hot layers. The
# tracer and the telemetry exporter are the sanctioned I/O funnels; check.h
# prints on the abort path only.
HOT_IO_LAYERS = ("src/sim/", "src/net/", "src/tfc/")
HOT_IO_ALLOWED_FILES = {
    "src/net/trace.h",
    "src/net/trace.cc",
    "src/sim/telemetry.h",
    "src/sim/telemetry.cc",
    "src/sim/check.h",
    # Flight-recorder dump/load: cold-path file I/O only (post-mortem spill
    # and offline loader); the per-event Record stays in flight.h and is
    # covered by the recorder-hot rule.
    "src/sim/flight.cc",
    # The sweep runner writes the merged sweep manifest once per sweep —
    # orchestration-layer I/O, never per event.
    "src/sim/sweep.cc",
    # The run supervisor forks/reaps children and reads their report pipes —
    # cold orchestration I/O, once per run attempt, never per event.
    "src/sim/supervisor.cc",
}
# packet-drop: the sanctioned drop-trace funnels. Everything else in src/
# needs an explicit suppression tied to a counter.
PACKET_DROP_RE = re.compile(
    r"EmitTrace\s*\(\s*(?:Trace|Flight)EventType::k(?:Fault)?Drop\b"
)
PACKET_DROP_ALLOWED_FILES = {
    "src/net/port.cc",
    "src/net/fault.cc",
}

# raw-thread: the annotated wrappers are the only threading primitives
# allowed in src/ — everything else would be invisible to -Wthread-safety.
RAW_THREAD_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable|condition_variable_any|thread|jthread"
    r"|atomic|atomic_[a-z0-9_]+)\b"
)
RAW_THREAD_ALLOWED_FILES = {
    "src/sim/thread_annotations.h",  # the wrappers themselves
    "src/sim/sweep.cc",              # the worker pool (std::thread)
}

# guarded-by: a declared tfc::Mutex must be named by at least one
# TFC_GUARDED_BY / TFC_PT_GUARDED_BY in the same file. Matches member and
# namespace-scope declarations ("Mutex mu_;", "tfc::Mutex g_mu;"); pointers
# and references ("Mutex* mu") are uses, not declarations, and are skipped.
MUTEX_DECL_RE = re.compile(r"\b(?:tfc::)?Mutex\s+(\w+)\s*;")
GUARDED_BY_RE = re.compile(r"\bTFC_(?:PT_)?GUARDED_BY\s*\(\s*([A-Za-z0-9_:.\->]+)\s*\)")

HOT_IO_RE = re.compile(
    r"\bstd::(cout|cerr|clog|ofstream|fstream|printf|fprintf)\b"
    r"|(?<![A-Za-z0-9_:])(printf|fprintf|fputs|fwrite|puts)\s*\("
)

# units: in the migrated layers, a raw arithmetic declaration whose name
# carries a unit suffix must be a strong type from src/sim/units.h. The
# regex intentionally matches both variable and function declarations
# ("double token_bytes;" and "double token_bytes() const") — a raw-typed
# accessor leaks the dimension just as much as a raw member.
UNITS_LAYERS = (
    "src/sim/",
    "src/net/",
    "src/tfc/",
    "src/transport/",
    "src/topo/",
    "src/workload/",
)
UNITS_ALLOWED_FILES = {
    "src/sim/units.h",   # the unit types' own raw-view escapes (bytes_per_ns)
    "src/net/packet.h",  # wire format: header fields are raw on purpose
}
UNITS_RAW_TYPE = (
    r"(?:double|float|u?int(?:8|16|32|64)_t|size_t"
    r"|unsigned(?:\s+long(?:\s+long)?|\s+int)?|long(?:\s+long)?(?:\s+int)?)"
)
UNITS_RE = re.compile(
    r"\b" + UNITS_RAW_TYPE + r"\s+(?:const\s+)?(\w*_(?:bytes|tokens|ns|bps))_?\s*(?=[;=,(){])"
)

# recorder-hot: per-event recording hot functions, matched by symbol name
# and scanned brace-to-brace. Each scope is (file, function regex, ban
# regex, hint). The telemetry sampler bans lookups; the flight-recorder
# append and trace gate additionally ban allocation and container growth —
# those bodies are a branch plus a masked store.
RECORDER_HOT_LOOKUP_BAN_RE = re.compile(
    r"\bstd::(?:map|unordered_map)\b"
    r"|\.(?:find|at)\s*\("
    r"|\.count\s*\(\s*[^)\s]"  # .count(key) lookups; .count() accessors are fine
    r"|\bseries_\s*\["
)
RECORDER_HOT_APPEND_BAN_RE = re.compile(
    r"\bnew\b|\bmalloc\s*\(|\bstd::(?:map|unordered_map|string|vector)\b"
    r"|\.(?:find|at|resize|reserve|push_back|emplace_back|assign|insert)\s*\("
)
RECORDER_HOT_SCOPES = [
    (
        "src/sim/telemetry.cc",
        re.compile(
            r"\b(?:TimeSeriesRecorder::(?:Tick|AppendTo)|SpillWriter::AppendRecord)\s*\("
        ),
        RECORDER_HOT_LOOKUP_BAN_RE,
        "resolve in RebuildPlan / at Open time instead",
    ),
    (
        "src/sim/flight.h",
        re.compile(r"\b(?:void\s+Record|FlightEvent\*\s+Append)\s*\("),
        RECORDER_HOT_APPEND_BAN_RE,
        "the ring append is a masked store; do setup work in Arm()",
    ),
    (
        "src/net/network.h",
        re.compile(r"\bvoid\s+EmitTrace(?:Armed)?\s*\("),
        RECORDER_HOT_APPEND_BAN_RE,
        "the emission gate is one branch and the armed fill is direct "
        "stores; batch-format offline instead",
    ),
]


def recorder_hot_body_lines(text: str, func_re: re.Pattern) -> list[tuple[int, str]]:
    """(lineno, line) pairs inside the matched hot-function bodies."""
    out = []
    for m in func_re.finditer(text):
        open_brace = text.find("{", m.end())
        if open_brace < 0:
            continue
        # A declaration ends in ';' before any '{': skip it, or the scan
        # would brace-match some unrelated later body.
        if ";" in text[m.end():open_brace]:
            continue
        depth = 0
        end = open_brace
        for i in range(open_brace, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        first_line = text.count("\n", 0, open_brace) + 1
        body = text[open_brace:end]
        for offset, line in enumerate(body.splitlines()):
            out.append((first_line + offset, line))
    return out


def allow(line: str, tag: str) -> bool:
    return f"lint:allow {tag}" in line


def lint_recorder_hot(
    text: str, rel: str, func_re: re.Pattern, ban_re: re.Pattern, hint: str
) -> list[str]:
    errors = []
    for lineno, raw in recorder_hot_body_lines(text, func_re):
        code = LINE_COMMENT_RE.sub("", raw)
        if allow(raw, "recorder-hot"):
            continue
        if ban_re.search(code):
            errors.append(
                f"{rel}:{lineno}: [recorder-hot] banned construct in a "
                f"recording hot path — {hint}"
            )
        if HOT_IO_RE.search(code):
            errors.append(
                f"{rel}:{lineno}: [recorder-hot] no stream/printf I/O in a "
                f"recording hot path — {hint}"
            )
    return errors


def lint_file(path: Path, rel: str) -> list[str]:
    errors = []
    mutex_decls: list[tuple[int, str]] = []  # (lineno, mutex name)
    guarded_names: set[str] = set()
    text = path.read_text()
    if not AST_OWNED:  # astlint resolves these scopes from real FunctionDecls
        for scope_file, func_re, ban_re, hint in RECORDER_HOT_SCOPES:
            if rel == scope_file:
                errors.extend(lint_recorder_hot(text, rel, func_re, ban_re, hint))
    for lineno, raw in enumerate(text.splitlines(), start=1):
        m = INCLUDE_RE.match(raw)
        if m and not m.group(1).startswith(ROOT_PREFIXES):
            errors.append(
                f"{rel}:{lineno}: [include-root] quoted include "
                f'"{m.group(1)}" must be repo-root-relative (src/... or bench/...)'
            )
        # Strip trailing // comments before content rules so prose like
        # "never call new Packet directly" does not trip them — but check
        # the raw line for suppressions first.
        code = LINE_COMMENT_RE.sub("", raw)
        if NEW_PACKET_RE.search(code) and rel != POOL_FILE and not allow(raw, "new-packet"):
            errors.append(
                f"{rel}:{lineno}: [new-packet] allocate packets via "
                "PacketPool::Allocate, not bare new Packet"
            )
        if (
            STD_FUNCTION_RE.search(code)
            and rel.startswith(HOT_LAYERS)
            and not allow(raw, "std-function")
        ):
            errors.append(
                f"{rel}:{lineno}: [std-function] hot-path layers use "
                "InplaceFunction (src/sim/inplace_function.h), not std::function"
            )
        if (
            BARE_ASSERT_RE.search(code)
            and not (AST_OWNED and rel.startswith("src/"))
            and not allow(raw, "bare-assert")
        ):
            errors.append(
                f"{rel}:{lineno}: [bare-assert] use TFC_CHECK / TFC_DCHECK "
                "(src/sim/check.h) instead of assert()"
            )
        if (
            not AST_OWNED
            and HOT_IO_RE.search(code)
            and rel.startswith(HOT_IO_LAYERS)
            and rel not in HOT_IO_ALLOWED_FILES
            and not allow(raw, "hot-io")
        ):
            errors.append(
                f"{rel}:{lineno}: [hot-io] no stream/printf I/O in hot-path "
                "layers; use the metric registry / tracer / exporter "
                "(src/sim/telemetry.h)"
            )
        if (
            PACKET_DROP_RE.search(code)
            and rel.startswith("src/")
            and rel not in PACKET_DROP_ALLOWED_FILES
            and not allow(raw, "packet-drop")
        ):
            errors.append(
                f"{rel}:{lineno}: [packet-drop] drop traces may only be "
                "emitted by src/net/port.cc or src/net/fault.cc; other "
                "sites need a counter and `// lint:allow packet-drop`"
            )
        if (
            RAW_THREAD_RE.search(code)
            and rel.startswith("src/")
            and rel not in RAW_THREAD_ALLOWED_FILES
            and not allow(raw, "raw-thread")
        ):
            errors.append(
                f"{rel}:{lineno}: [raw-thread] use the annotated wrappers "
                "from src/sim/thread_annotations.h (tfc::Mutex / MutexLock / "
                "CondVar), not raw std threading primitives"
            )
        if (
            rel.startswith(UNITS_LAYERS)
            and rel not in UNITS_ALLOWED_FILES
            and not allow(raw, "units")
        ):
            m = UNITS_RE.search(code)
            if m:
                errors.append(
                    f"{rel}:{lineno}: [units] '{m.group(1)}' declares a "
                    "unit-suffixed quantity with a raw arithmetic type — use "
                    "Bytes / Tokens / TimeNs / BitsPerSec (src/sim/units.h), "
                    "or mark a sanctioned raw view with `// lint:allow units`"
                )
        if rel.startswith("src/") and rel != "src/sim/thread_annotations.h":
            m = MUTEX_DECL_RE.search(code)
            if m and not allow(raw, "guarded-by"):
                mutex_decls.append((lineno, m.group(1)))
            for g in GUARDED_BY_RE.finditer(code):
                guarded_names.add(g.group(1))
    for lineno, name in mutex_decls:
        # The annotation may spell the mutex with qualifiers ("impl_->mu_");
        # a substring match on the bare name keeps the rule usable.
        if not any(name in g for g in guarded_names):
            errors.append(
                f"{rel}:{lineno}: [guarded-by] tfc::Mutex '{name}' has no "
                "TFC_GUARDED_BY user in this file — annotate the data it "
                "protects (or delete the unused lock)"
            )
    return errors


def main() -> int:
    global AST_OWNED
    args = sys.argv[1:]
    if "--ast-owned" in args:
        AST_OWNED = True
        args.remove("--ast-owned")
    if args:
        print(f"lint.py: unknown argument(s): {' '.join(args)}", file=sys.stderr)
        return 2
    errors = []
    files = 0
    for d in SCAN_DIRS:
        for path in sorted((REPO / d).rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                rel = path.relative_to(REPO).as_posix()
                if rel.startswith(SKIP_PREFIXES):
                    continue
                files += 1
                errors.extend(lint_file(path, rel))
    for e in errors:
        print(e)
    print(f"lint.py: {files} files, {len(errors)} violation(s)", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
