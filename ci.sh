#!/usr/bin/env bash
# Local CI entry point — the same matrix .github/workflows/ci.yml runs.
#
#   ./ci.sh            full matrix: release, asan-ubsan, hardened, tsan, lint,
#                      astlint, tidy, units, telemetry, trace, chaos, sweep
#   ./ci.sh release    one leg by name
#
# Every leg must pass for the gate to be green. The sanitizer and hardened
# presets build with -Werror and run the full test suite with the runtime
# invariant auditor enabled (TFC_AUDIT=ON); see docs/correctness.md.
set -euo pipefail
cd "$(dirname "$0")"

run_preset() {
  local preset="$1"
  echo "=== [${preset}] configure + build + test ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}"
}

leg_release()    { run_preset release; }
leg_asan_ubsan() { run_preset asan-ubsan; }
leg_hardened()   { run_preset hardened; }
# When the astlint engine is available, the AST-precise rules own
# bare-assert (src/), hot-io, and recorder-hot; lint.py stands those down
# (--ast-owned) so a site is never double-reported. Without libclang, lint.py
# runs all of its regex rules as the fallback.
leg_lint() {
  echo "=== [lint] tools/lint.py ==="
  if python3 tools/astlint.py --probe >/dev/null 2>&1; then
    python3 tools/lint.py --ast-owned
  else
    python3 tools/lint.py
  fi
}

# AST determinism analyzer (tools/astlint.py): suppression-policy selftest
# always runs; the libclang battery (fixture goldens + zero unsuppressed
# findings over src/) skips with a warning where libclang is absent unless
# TFC_ASTLINT_REQUIRE=1 (set in the CI job, which installs a pinned
# libclang) turns a skip into a failure.
leg_astlint() {
  echo "=== [astlint] tools/astlint.py ==="
  python3 tools/astlint.py --selftest
  if ! python3 tools/astlint.py --probe; then
    if [[ "${TFC_ASTLINT_REQUIRE:-0}" == "1" ]]; then
      echo "astlint: engine required (TFC_ASTLINT_REQUIRE=1) but unavailable" >&2
      exit 1
    fi
    echo "astlint: libclang unavailable — skipping AST battery (lint.py regex rules remain in force)" >&2
    return 0
  fi
  for fixture in tests/astlint/fixtures/*.cc; do
    python3 tools/astlint.py --fixture "${fixture}" \
        --check-golden "${fixture%.cc}.expected"
  done
  if [[ ! -f build/compile_commands.json ]]; then
    cmake --preset release
  fi
  python3 tools/astlint.py --build-dir build
}

# ThreadSanitizer leg: the tsan preset's ctest filter covers the concurrent
# surface — the parallel sweep runner, the multi-instance (two Networks from
# two threads) regression tests, chaos replay, and determinism. Any data race
# in the sweep pool or a hidden process-wide cache fails this leg. The
# parallel-vs-serial bit-identity check rides along in sweep_test.
leg_tsan() {
  run_preset tsan
  echo "--- [tsan] tfcsim --sweep smoke (parallel CLI path under TSan) ---"
  cmake --build build-tsan -j "$(nproc)" --target tfcsim
  # --in-process pins the legacy thread-pool executor: this smoke exists to
  # race-check the worker pool, which the default fork-based supervisor
  # (single-threaded parent) would bypass.
  ./build-tsan/examples/tfcsim --workload=incast --protocol=all \
      --topology=testbed --senders=6 --block_kb=64 --rounds=2 \
      --sweep=4 --jobs=4 --in-process --telemetry-dir=build-tsan/sweep-smoke
}
leg_tidy()       { echo "=== [tidy] tools/tidy.sh ==="; bash tools/tidy.sh build; }

# Units leg: the dimension-safety gate (docs/correctness.md "Units").
# (1) Negative-compile battery — each banned cross-dimension conversion must
#     be rejected, and the control case must compile (same cases ctest runs
#     as WILL_FAIL entries, checked here without needing a configured build).
# (2) The lint.py units rule (raw unit-suffixed declarations).
# (3) clang-tidy narrowing profile over src/{net,tfc,transport} — skips with
#     a notice when clang-tidy is absent, like leg_tidy.
leg_units() {
  echo "=== [units] negative-compile battery ==="
  local src=tests/units_compile_fail/compile_fail.cc
  local cxx="${CXX:-g++}"
  "${cxx}" -std=c++20 -I. -fsyntax-only "${src}"
  echo "units: control case compiles"
  local case
  for case in BYTES_PLUS_TIME TOKENS_TO_BYTES BYTES_NARROWING; do
    if "${cxx}" -std=c++20 -I. -fsyntax-only "-DCASE_${case}=1" "${src}" 2>/dev/null; then
      echo "units: CASE_${case} compiled but must be rejected" >&2
      return 1
    fi
    echo "units: CASE_${case} rejected (expected)"
  done
  echo "=== [units] lint units rule ==="
  python3 tools/lint.py
  echo "=== [units] clang-tidy narrowing profile ==="
  bash tools/tidy_units.sh build
}

# Telemetry-enabled incast smoke on the paper's Fig. 4 testbed topology:
# runs tfcsim with --telemetry-dir and validates the emitted run directory
# against the documented schema (docs/observability.md).
leg_telemetry() {
  echo "=== [telemetry] tfcsim incast smoke + schema check ==="
  cmake --preset release
  cmake --build build -j "$(nproc)" --target tfcsim
  local dir=build/telemetry-smoke
  rm -rf "${dir}"
  ./build/examples/tfcsim --workload=incast --protocol=tfc --topology=testbed \
      --senders=8 --block_kb=64 --rounds=5 \
      --telemetry-dir="${dir}" --telemetry-interval=500
  # Decode the binary spill back to JSONL, then validate both (the schema
  # checker cross-checks converted line count against the spill's records).
  ./build/examples/tfcsim --convert="${dir}"
  python3 tools/telemetry_schema.py "${dir}"
  # The run must actually contain the series the figures are built from.
  python3 - "${dir}" <<'EOF'
import json, sys
names = {json.loads(l)["name"] for l in open(sys.argv[1] + "/metrics.jsonl")}
want_prefixes = ("port.", "tfc.", "flow.")
for p in want_prefixes:
    assert any(n.startswith(p) for n in names), f"no {p}* series recorded"
summary = json.load(open(sys.argv[1] + "/summary.json"))
assert any("block_fct" in k for k in summary["histograms"]), "no FCT histogram"
print(f"telemetry smoke: {len(names)} series OK")
EOF
}

# Flight-recorder leg (docs/observability.md "Flight recorder"):
# (1) arming the ring must not perturb the simulation — the telemetry spill
#     and summary of an armed run are byte-identical to a trace-off run;
# (2) a forced audit trip post-mortem-dumps the ring to flight.tfct, and two
#     identical runs produce byte-identical dumps;
# (3) --export-trace round-trips the dump into Perfetto JSON + a per-flow
#     timeline, and every artifact validates against the documented schema.
# CI uploads build/trace-smoke as the workflow's post-mortem artifact.
leg_trace() {
  echo "=== [trace] flight recorder: passivity + post-mortem + export ==="
  cmake --preset release
  cmake --build build -j "$(nproc)" --target tfcsim
  local dir=build/trace-smoke
  rm -rf "${dir}"
  mkdir -p "${dir}"
  local common=(--workload=incast --protocol=tfc --topology=testbed
                --senders=8 --block_kb=64 --rounds=5 --seed=5)

  echo "--- [trace] armed ring leaves outputs byte-identical ---"
  ./build/examples/tfcsim "${common[@]}" --telemetry-dir="${dir}/off"
  ./build/examples/tfcsim "${common[@]}" --telemetry-dir="${dir}/armed" \
      --trace-ring=65536
  cmp "${dir}/off/metrics.tfcb" "${dir}/armed/metrics.tfcb"
  cmp "${dir}/off/summary.json" "${dir}/armed/summary.json"
  echo "trace: off vs armed byte-identical"

  echo "--- [trace] forced audit trip dumps deterministically ---"
  local rc=0
  ./build/examples/tfcsim "${common[@]}" --telemetry-dir="${dir}/trip1" \
      --trace-ring=16384 --force-audit-trip=3000 >/dev/null 2>&1 || rc=$?
  [[ "${rc}" -ne 0 ]] || { echo "trace: forced trip did not abort" >&2; return 1; }
  [[ -s "${dir}/trip1/flight.tfct" ]] || {
    echo "trace: no post-mortem dump written" >&2; return 1; }
  ./build/examples/tfcsim "${common[@]}" --telemetry-dir="${dir}/trip2" \
      --trace-ring=16384 --force-audit-trip=3000 >/dev/null 2>&1 || true
  cmp "${dir}/trip1/flight.tfct" "${dir}/trip2/flight.tfct"
  echo "trace: post-mortem dumps byte-identical across runs"

  echo "--- [trace] export + schema validation ---"
  ./build/examples/tfcsim --export-trace="${dir}/armed"
  ./build/examples/tfcsim --export-trace="${dir}/trip1"
  python3 tools/telemetry_schema.py "${dir}/armed"
  python3 tools/telemetry_schema.py --flight "${dir}/trip1"
  grep -q '"ph":"X"' "${dir}/armed/trace.perfetto.json"
  grep -q '=== flow ' "${dir}/armed/flows.txt"
  echo "trace: export round-trip validates"
}

# Chaos smoke under ASan: a handful of seeded fault schedules on the Fig. 4
# testbed via tfcsim --fault-spec, plus the chaos_test harness gtest filter
# that replays one full schedule bit-identically (docs/robustness.md). The
# full 20-seed sweep runs in the asan-ubsan/hardened ctest legs; this leg is
# the fast end-to-end check that the CLI path and injector survive sanitizers.
leg_chaos() {
  echo "=== [chaos] seeded fault-injection smoke (ASan) ==="
  cmake --preset asan-ubsan
  cmake --build build-asan -j "$(nproc)" --target tfcsim chaos_test
  for seed in 11 12 13; do
    echo "--- chaos seed ${seed} ---"
    ./build-asan/examples/tfcsim --workload=incast --protocol=tfc \
        --topology=testbed --senders=6 --block_kb=64 --rounds=3 \
        --seed="${seed}" \
        --fault-spec="drop=0.005,ge=0.01/0.3/0.5,flap=5ms/300us,wipe=10ms,start=1ms,seed=${seed}"
  done
  ./build-asan/tests/chaos_test \
      --gtest_filter='ChaosTest.DifferentSeedsProduceDifferentSchedules'
}

# Supervised-sweep crash drill (docs/robustness.md "Supervised sweeps"):
# (1) a sweep with one force-tripped run must complete every other run,
#     write a partial sweep.json naming the failure (with the salvaged
#     post-mortem flight.tfct), and exit nonzero;
# (2) --resume must re-execute only the crashed run and go green;
# (3) the recovered sweep must be byte-identical, run for run, to a clean
#     serial in-process sweep — supervision and resumption never change
#     what a run computes.
# CI uploads build/sweep-smoke as the workflow's post-mortem artifact.
leg_sweep() {
  echo "=== [sweep] supervised sweep: crash isolation + resume + identity ==="
  cmake --preset release
  cmake --build build -j "$(nproc)" --target tfcsim
  local dir=build/sweep-smoke
  rm -rf "${dir}"
  local common=(--workload=incast --protocol=tfc --topology=testbed
                --senders=6 --block_kb=64 --rounds=3 --seed=9
                --sweep=3 --trace-ring=16384)

  echo "--- [sweep] one tripped run fails alone, siblings complete ---"
  local rc=0
  ./build/examples/tfcsim "${common[@]}" --jobs=3 \
      --telemetry-dir="${dir}/supervised" \
      --force-audit-trip=3000 --trip-run=1 || rc=$?
  [[ "${rc}" -ne 0 ]] || { echo "sweep: tripped sweep exited 0" >&2; return 1; }
  [[ -s "${dir}/supervised/sweep.json" ]] || {
    echo "sweep: no partial sweep.json after the crash" >&2; return 1; }
  grep -q '"status": "failed"' "${dir}/supervised/sweep.json"
  grep -q '"salvaged": \["flight.tfct"\]' "${dir}/supervised/sweep.json"
  [[ -s "${dir}/supervised/run-0001/flight.tfct" ]] || {
    echo "sweep: crashed run's post-mortem was not salvaged" >&2; return 1; }
  python3 tools/telemetry_schema.py --sweep "${dir}/supervised"
  echo "sweep: partial sweep.json validates, post-mortem salvaged"

  echo "--- [sweep] --resume re-executes only the crashed run ---"
  rm -f "${dir}/supervised/run-0001/flight.tfct"
  ./build/examples/tfcsim "${common[@]}" --jobs=3 \
      --telemetry-dir="${dir}/supervised" --resume | tee "${dir}/resume.log"
  [[ "$(grep -c 'skipped-cached' "${dir}/resume.log")" -eq 2 ]] || {
    echo "sweep: resume did not skip the two completed runs" >&2; return 1; }
  grep -q '"status": "ok"' "${dir}/supervised/sweep.json"
  python3 tools/telemetry_schema.py --sweep "${dir}/supervised"
  echo "sweep: resume completed only the missing run"

  echo "--- [sweep] recovered sweep == clean serial in-process sweep ---"
  ./build/examples/tfcsim "${common[@]}" --jobs=1 --in-process \
      --telemetry-dir="${dir}/clean" >/dev/null
  local run
  for run in run-0000 run-0001 run-0002; do
    cmp "${dir}/supervised/${run}/metrics.tfcb" "${dir}/clean/${run}/metrics.tfcb"
    cmp "${dir}/supervised/${run}/summary.json" "${dir}/clean/${run}/summary.json"
    cmp "${dir}/supervised/${run}/flight.tfct" "${dir}/clean/${run}/flight.tfct"
  done
  echo "sweep: supervised+resumed outputs byte-identical to clean serial"
}

case "${1:-all}" in
  release)    leg_release ;;
  asan-ubsan) leg_asan_ubsan ;;
  hardened)   leg_hardened ;;
  tsan)       leg_tsan ;;
  lint)       leg_lint ;;
  astlint)    leg_astlint ;;
  tidy)       leg_tidy ;;
  units)      leg_units ;;
  telemetry)  leg_telemetry ;;
  trace)      leg_trace ;;
  chaos)      leg_chaos ;;
  sweep)      leg_sweep ;;
  all)
    leg_release
    leg_asan_ubsan
    leg_hardened
    leg_tsan
    leg_lint
    leg_astlint
    leg_tidy
    leg_units
    leg_telemetry
    leg_trace
    leg_chaos
    leg_sweep
    echo "=== ci.sh: all legs green ==="
    ;;
  *)
    echo "usage: $0 [release|asan-ubsan|hardened|tsan|lint|astlint|tidy|units|telemetry|trace|chaos|sweep|all]" >&2
    exit 2
    ;;
esac
