#!/usr/bin/env bash
# Local CI entry point — the same matrix .github/workflows/ci.yml runs.
#
#   ./ci.sh            full matrix: release, asan-ubsan, hardened, lint, tidy
#   ./ci.sh release    one leg by name
#
# Every leg must pass for the gate to be green. The sanitizer and hardened
# presets build with -Werror and run the full test suite with the runtime
# invariant auditor enabled (TFC_AUDIT=ON); see docs/correctness.md.
set -euo pipefail
cd "$(dirname "$0")"

run_preset() {
  local preset="$1"
  echo "=== [${preset}] configure + build + test ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  ctest --preset "${preset}"
}

leg_release()    { run_preset release; }
leg_asan_ubsan() { run_preset asan-ubsan; }
leg_hardened()   { run_preset hardened; }
leg_lint()       { echo "=== [lint] tools/lint.py ==="; python3 tools/lint.py; }
leg_tidy()       { echo "=== [tidy] tools/tidy.sh ==="; bash tools/tidy.sh build; }

case "${1:-all}" in
  release)    leg_release ;;
  asan-ubsan) leg_asan_ubsan ;;
  hardened)   leg_hardened ;;
  lint)       leg_lint ;;
  tidy)       leg_tidy ;;
  all)
    leg_release
    leg_asan_ubsan
    leg_hardened
    leg_lint
    leg_tidy
    echo "=== ci.sh: all legs green ==="
    ;;
  *)
    echo "usage: $0 [release|asan-ubsan|hardened|lint|tidy|all]" >&2
    exit 2
    ;;
esac
