// Building a custom topology by hand and comparing protocols on it.
//
//   ./custom_topology
//
// Constructs the paper's Fig. 5 multi-bottleneck network from individual
// Link() calls (no helper), runs the same 12-flow workload under TFC, DCTCP
// and TCP, and prints each bottleneck's utilization and queue — the
// work-conserving experiment as a template for your own topologies.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/workload/persistent_flow.h"
#include "src/workload/protocol.h"

namespace {

void RunOnce(tfc::Protocol protocol) {
  using namespace tfc;

  ProtocolSuite suite;
  suite.protocol = protocol;

  // Hand-built Fig. 5: h1 -- S1 -- S2 -- {h2, h3, h4}.
  Network net(23);
  LinkOptions opts;
  opts.switch_buffer_bytes = 256 * 1024;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  Host* h1 = net.AddHost("h1");
  Host* h2 = net.AddHost("h2");
  Host* h3 = net.AddHost("h3");
  Host* h4 = net.AddHost("h4");
  Switch* s1 = net.AddSwitch("S1");
  Switch* s2 = net.AddSwitch("S2");
  net.Link(h1, s1, kGbps, Microseconds(5), opts);
  net.Link(s1, s2, kGbps, Microseconds(5), opts);
  net.Link(h2, s2, kGbps, Microseconds(5), opts);
  net.Link(h3, s2, kGbps, Microseconds(5), opts);
  net.Link(h4, s2, kGbps, Microseconds(5), opts);
  net.BuildRoutes();
  suite.InstallSwitchLogic(net);

  // Workload: n1=8 flows h1->h4 and n2=2 h1->h3 contend at S1's uplink;
  // n3=2 flows h2->h3 contend with n2 at S2's downlink.
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  auto add = [&](Host* src, Host* dst) {
    flows.push_back(std::make_unique<PersistentFlow>(suite.MakeSender(&net, src, dst)));
    flows.back()->Start();
  };
  for (int i = 0; i < 8; ++i) {
    add(h1, h4);
  }
  for (int i = 0; i < 2; ++i) {
    add(h1, h3);
  }
  for (int i = 0; i < 2; ++i) {
    add(h2, h3);
  }

  Port* uplink = Network::FindPort(s1, s2);
  Port* downlink = Network::FindPort(s2, h3);
  net.scheduler().RunUntil(Milliseconds(200));  // warm up
  const Bytes up0 = uplink->tx_bytes();
  const Bytes down0 = downlink->tx_bytes();
  uplink->ResetMaxQueue();
  downlink->ResetMaxQueue();
  net.scheduler().RunUntil(Milliseconds(1200));

  const double up_mbps = static_cast<double>(uplink->tx_bytes() - up0) * 8.0 / 1.0 / 1e6;
  const double down_mbps =
      static_cast<double>(downlink->tx_bytes() - down0) * 8.0 / 1.0 / 1e6;
  std::printf("%-6s  S1-uplink %7.1f Mbps (maxq %6.1f KB)   S2-downlink %7.1f Mbps "
              "(maxq %6.1f KB)   drops %llu\n",
              suite.name(), up_mbps,
              static_cast<double>(uplink->max_queue_bytes()) / 1024.0, down_mbps,
              static_cast<double>(downlink->max_queue_bytes()) / 1024.0,
              static_cast<unsigned long long>(uplink->drops() + downlink->drops()));
}

}  // namespace

int main() {
  std::printf("Work conservation on a hand-built two-bottleneck topology\n");
  std::printf("(n2 flows are limited upstream; a work-conserving protocol lets\n");
  std::printf(" n3 flows absorb the slack so both links stay full)\n\n");
  RunOnce(tfc::Protocol::kTfc);
  RunOnce(tfc::Protocol::kDctcp);
  RunOnce(tfc::Protocol::kTcp);
  return 0;
}
