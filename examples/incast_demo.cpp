// Incast demo: partition/aggregate fan-in with a protocol of your choice.
//
//   ./incast_demo [protocol] [senders] [block_kb] [rounds]
//     protocol: tfc | dctcp | tcp      (default: tfc)
//     senders:  number of responders   (default: 40)
//     block_kb: block size per sender  (default: 256)
//     rounds:   request rounds         (default: 10)
//
// A receiver requests a block from every sender; the next round starts only
// when every block arrived (the classic incast barrier). Prints goodput,
// timeouts, and queue behaviour — run it with the three protocols to see
// TCP's incast collapse and TFC's flat goodput.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/topo/topologies.h"
#include "src/workload/incast.h"

int main(int argc, char** argv) {
  using namespace tfc;

  ProtocolSuite suite;
  suite.protocol = Protocol::kTfc;
  if (argc > 1) {
    const std::string name = argv[1];
    if (name == "tcp") {
      suite.protocol = Protocol::kTcp;
    } else if (name == "dctcp") {
      suite.protocol = Protocol::kDctcp;
    } else if (name != "tfc") {
      std::fprintf(stderr, "unknown protocol '%s' (want tfc|dctcp|tcp)\n", argv[1]);
      return 1;
    }
  }
  const int senders = argc > 2 ? std::atoi(argv[2]) : 40;
  const uint64_t block_kb = argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 256;
  const int rounds = argc > 4 ? std::atoi(argv[4]) : 10;
  if (senders < 1 || block_kb < 1 || rounds < 1) {
    std::fprintf(stderr, "senders, block_kb and rounds must be positive\n");
    return 1;
  }

  Network net(7);
  LinkOptions opts;
  opts.switch_buffer_bytes = 256 * 1024;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  StarTopology topo = BuildStar(net, senders + 1, opts);
  suite.InstallSwitchLogic(net);

  Host* receiver = topo.hosts[0];
  std::vector<Host*> responders(topo.hosts.begin() + 1, topo.hosts.end());
  IncastConfig cfg;
  cfg.block_bytes = block_kb * 1024;
  cfg.rounds = rounds;
  IncastApp app(&net, suite, receiver, responders, cfg);
  app.Start();
  net.scheduler().RunUntil(Seconds(120));

  Port* bottleneck = Network::FindPort(topo.sw, receiver);
  std::printf("protocol            : %s\n", suite.name());
  std::printf("senders x block     : %d x %llu KB, %d rounds\n", senders,
              static_cast<unsigned long long>(block_kb), rounds);
  std::printf("rounds completed    : %d%s\n", app.rounds_completed(),
              app.finished() ? "" : "  (did not finish within 120 s!)");
  std::printf("application goodput : %.1f Mbps\n", app.goodput_bps() / 1e6);
  std::printf("timeouts (total)    : %llu\n",
              static_cast<unsigned long long>(app.total_timeouts()));
  std::printf("max timeouts/block  : %.2f\n", app.max_timeouts_per_block());
  std::printf("switch drops        : %llu\n",
              static_cast<unsigned long long>(bottleneck->drops()));
  std::printf("max queue           : %.1f KB of %.0f KB buffer\n",
              static_cast<double>(bottleneck->max_queue_bytes()) / 1024.0,
              static_cast<double>(opts.switch_buffer_bytes) / 1024.0);
  return 0;
}
