// Quickstart: the smallest complete TFC simulation.
//
// Builds a three-host star, installs TFC on the switch, runs two long-lived
// flows plus one late joiner, and prints per-flow goodput, switch queue
// occupancy, and the TFC state of the bottleneck port.
//
//   ./quickstart

#include <cstdio>
#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

int main() {
  using namespace tfc;

  // 1. Topology: three senders + one receiver on a 1 Gbps switch.
  Network net(/*seed=*/42);
  StarTopology topo = BuildStar(net, /*num_hosts=*/4);
  Host* receiver = topo.hosts[0];

  // 2. Protocol: attach the TFC agent to every switch port.
  InstallTfcSwitches(net);

  // 3. Workload: two flows from the start, a third joining at t = 50 ms.
  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (int i = 1; i <= 3; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(
        std::make_unique<TfcSender>(&net, topo.hosts[static_cast<size_t>(i)],
                                    receiver, TfcHostConfig())));
  }
  flows[0]->Start();
  flows[1]->Start();
  net.scheduler().ScheduleAt(Milliseconds(50), [&] { flows[2]->Start(); });

  // 4. Run and report in 25 ms windows.
  Port* bottleneck = Network::FindPort(topo.sw, receiver);
  TfcPortAgent* agent = TfcPortAgent::FromPort(bottleneck);
  std::printf("%8s %10s %10s %10s %8s %8s %8s\n", "time(ms)", "flow1(Mbps)",
              "flow2(Mbps)", "flow3(Mbps)", "E", "W(B)", "queue(B)");
  std::vector<uint64_t> last(flows.size(), 0);
  for (int ms = 25; ms <= 200; ms += 25) {
    net.scheduler().RunUntil(Milliseconds(ms));
    std::printf("%8d", ms);
    for (size_t i = 0; i < flows.size(); ++i) {
      const uint64_t d = flows[i]->delivered_bytes();
      std::printf(" %10.1f", static_cast<double>(d - last[i]) * 8.0 / 0.025 / 1e6);
      last[i] = d;
    }
    std::printf(" %8d %8.0f %8llu\n", agent->last_effective_flows(),
                agent->window_bytes(),
                static_cast<unsigned long long>(bottleneck->queue_bytes().count()));
  }

  std::printf("\nbottleneck: drops=%llu max_queue=%llu bytes\n",
              static_cast<unsigned long long>(bottleneck->drops()),
              static_cast<unsigned long long>(bottleneck->max_queue_bytes().count()));
  std::printf("Note how the late joiner converges to the fair share within a "
              "few RTTs\nand the queue stays at a couple of packets.\n");
  return 0;
}
