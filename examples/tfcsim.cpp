// tfcsim — scenario driver for the TFC simulator.
//
// One binary to run any combination of workload, protocol, and topology
// from the command line and get a standard report (goodput, FCT, queues,
// loss), with optional packet tracing.
//
//   ./tfcsim --workload=incast --protocol=tfc --senders=60
//   ./tfcsim --workload=shuffle --protocol=dctcp --topology=fattree
//   ./tfcsim --workload=longflows --protocol=tcp --flows=8 --duration=2
//   ./tfcsim --workload=benchmark --protocol=tfc --topology=leafspine
//   ./tfcsim --help
//
// Flags (all optional):
//   --workload=incast|shuffle|longflows|benchmark     (default incast)
//   --protocol=tfc|dctcp|tcp|all                      (default tfc)
//   --topology=star|testbed|leafspine|fattree         (default star)
//   --senders=N  --flows=N  --block_kb=N  --rounds=N  --duration=SECONDS
//   --gbps=N (link rate)  --seed=N  --trace=FILE  --quick
//   --trace-ring=N            arm the binary flight recorder (N events)
//   --export-trace=RUN_DIR    render RUN_DIR/flight.tfct to Perfetto JSON
//   --force-audit-trip=US     fail an audit at US microseconds (testing)
//   --telemetry-dir=DIR       write manifest.json/metrics.tfcb/summary.json
//   --telemetry-interval=US   recorder sampling period in microseconds
//   --convert=RUN_DIR         decode RUN_DIR/metrics.tfcb to RUN_DIR/metrics.jsonl
//   --fault-spec=SPEC         inject faults (see src/net/fault.h), e.g.
//                             drop=0.01,flap=5ms/500us,wipe=10ms,seed=7
//   --sweep=N                 run N independent repetitions (seeds seed..seed+N-1)
//   --jobs=J                  concurrent sweep runs (default: all hardware threads)
//   --retry=N --run-timeout=S --resume --backoff-ms=MS   supervised-sweep knobs
//   --watchdog=S              per-run no-progress detector (sim seconds)
//   --in-process              legacy thread-pool sweep (no crash isolation)

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "src/net/fault.h"
#include "src/net/trace.h"
#include "src/sim/supervisor.h"
#include "src/sim/sweep.h"
#include "src/sim/telemetry.h"
#include "src/topo/topologies.h"
#include "src/workload/benchmark_traffic.h"
#include "src/workload/incast.h"
#include "src/workload/persistent_flow.h"
#include "src/workload/shuffle.h"

namespace {

using namespace tfc;

struct Options {
  std::string workload = "incast";
  std::string protocol = "tfc";
  std::string topology = "star";
  int senders = 40;
  int flows = 4;
  uint64_t block_kb = 256;
  int rounds = 10;
  double duration_s = 1.0;
  uint64_t gbps = 1;
  uint64_t seed = 1;
  std::string trace_file;
  std::string telemetry_dir;
  std::string convert_dir;
  std::string fault_spec;
  uint64_t telemetry_interval_us = 1000;
  int sweep = 1;
  int jobs = 0;  // 0 = SweepRunner::DefaultWorkers()
  uint64_t trace_ring = 0;  // flight-recorder capacity (0 = disarmed)
  std::string export_trace_dir;
  uint64_t force_audit_trip_us = 0;  // schedule a failing audit (testing)
  int trip_run = -1;        // sweep repetition the forced trip applies to (-1 = all)
  int retry = 0;            // supervised sweeps: extra attempts per failed run
  double run_timeout_s = 0; // supervised sweeps: per-run wall-clock limit
  int backoff_ms = 250;     // supervised sweeps: first retry delay
  bool resume = false;      // supervised sweeps: skip done-marker-verified runs
  double watchdog_s = -1;   // no-progress stall threshold (sim s); -1 = default
  bool in_process = false;  // legacy thread-pool sweep (no crash isolation)
};

// Buffered per-run output: sweep jobs must never write to stdout directly
// (parallel runs would interleave), so every run appends to the caller's
// string and main() prints reports in submission order. Identical bytes
// whether the run executed serially, on a pool, or in a forked child.
// Writing *through* to the result slot (instead of copying at job end)
// preserves everything written before a mid-run throw or crash.
struct Report {
  explicit Report(std::string* out) : text(*out) {}
  std::string& text;

  __attribute__((format(printf, 2, 3))) void Printf(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    char buf[1024];
    const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    if (n > 0) {
      text.append(buf, std::min(static_cast<size_t>(n), sizeof buf - 1));
    }
  }
};

void PrintHelp() {
  std::puts(
      "tfcsim - TFC simulator scenario driver\n"
      "  --workload=incast|shuffle|longflows|benchmark   (default incast)\n"
      "  --protocol=tfc|dctcp|tcp|all                    (default tfc)\n"
      "  --topology=star|testbed|leafspine|fattree       (default star)\n"
      "  --senders=N      incast responders               (default 40)\n"
      "  --flows=N        longflows/shuffle participants  (default 4)\n"
      "  --block_kb=N     incast block / shuffle block    (default 256)\n"
      "  --rounds=N       incast rounds                   (default 10)\n"
      "  --duration=S     longflows/benchmark seconds     (default 1.0)\n"
      "  --gbps=N         edge link rate                  (default 1)\n"
      "  --seed=N         RNG seed                        (default 1)\n"
      "  --trace=FILE     write a packet trace (ns-2 style text)\n"
      "  --trace-ring=N   arm the flight recorder with an N-event ring; the\n"
      "                   ring dumps to flight.tfct (next to metrics.tfcb when\n"
      "                   --telemetry-dir is set) at end of run and on any\n"
      "                   audit/TFC_CHECK/watchdog abort\n"
      "  --export-trace=DIR        read DIR/flight.tfct and write\n"
      "                            DIR/trace.perfetto.json (load in Perfetto)\n"
      "                            and DIR/flows.txt, then exit\n"
      "  --force-audit-trip=US     register an audit invariant that fails once\n"
      "                            sim time reaches US microseconds (exercises\n"
      "                            the post-mortem dump path; testing only)\n"
      "  --telemetry-dir=DIR       write a telemetry run directory\n"
      "                            (manifest.json, metrics.tfcb, summary.json)\n"
      "  --telemetry-interval=US   recorder sampling period (default 1000 us)\n"
      "  --convert=RUN_DIR         decode RUN_DIR/metrics.tfcb into the legacy\n"
      "                            RUN_DIR/metrics.jsonl and exit\n"
      "  --fault-spec=SPEC         deterministic fault schedule, e.g.\n"
      "                            drop=0.01,ge=0.02/0.3/0.5,flap=5ms/500us,\n"
      "                            wipe=10ms,host_down=4ms+1ms,seed=7\n"
      "                            (keys: drop dup reorder reorder_delay ge\n"
      "                             flap wipe host_down start stop seed)\n"
      "  --sweep=N        run N repetitions with seeds seed..seed+N-1;\n"
      "                   telemetry lands in DIR/run-NNNN, DIR/sweep.json merges;\n"
      "                   each run executes in its own forked child (a crashing\n"
      "                   run cannot take the sweep down)\n"
      "  --jobs=J         concurrent sweep runs (default: hardware threads)\n"
      "  --retry=N        extra attempts per failed sweep run; two attempts that\n"
      "                   die the same way stop early (deterministic failure)\n"
      "  --run-timeout=S  SIGKILL a sweep run after S wall-clock seconds\n"
      "  --backoff-ms=MS  first retry delay, doubling per failure (default 250)\n"
      "  --resume         skip sweep runs whose done marker verifies against\n"
      "                   (config, seed, git describe, schema); needs\n"
      "                   --telemetry-dir\n"
      "  --trip-run=K     apply --force-audit-trip to sweep repetition K only\n"
      "  --watchdog=S     abort a run that makes no progress for S sim-seconds\n"
      "                   (default: 5 in sweep mode, off single-run; 0 disables)\n"
      "  --in-process     legacy thread-pool sweep: faster startup, but a\n"
      "                   crashing run aborts the whole sweep");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

struct BuiltTopology {
  std::vector<Host*> hosts;
  std::vector<Switch*> switches;
};

BuiltTopology Build(Network& net, const Options& opt, const LinkOptions& link_opts) {
  BuiltTopology out;
  const BitsPerSec bps = opt.gbps * kGbps;
  if (opt.topology == "testbed") {
    TestbedTopology t = BuildTestbed(net, link_opts, bps);
    out.hosts = t.hosts;
    out.switches = t.switches;
  } else if (opt.topology == "leafspine") {
    LeafSpineTopology t = BuildLeafSpine(net, 6, 8, link_opts, bps, 10 * bps);
    out.hosts = t.all_hosts;
    out.switches = t.leaves;
    out.switches.push_back(t.spine);
  } else if (opt.topology == "fattree") {
    FatTreeTopology t = BuildFatTree(net, 4, link_opts, bps);
    out.hosts = t.hosts;
    out.switches = t.cores;
  } else {  // star
    const int hosts = std::max(opt.senders + 1, opt.flows + 1);
    StarTopology t = BuildStar(net, hosts, link_opts, bps);
    out.hosts = t.hosts;
    out.switches.push_back(t.sw);
  }
  return out;
}

struct PortTotals {
  uint64_t drops = 0;
  Bytes max_queue = 0;
};

PortTotals SwitchTotals(const Network& net) {
  PortTotals totals;
  for (const auto& node : net.nodes()) {
    if (node->is_host()) {
      continue;
    }
    for (const auto& port : node->ports()) {
      totals.drops += port->drops();
      totals.max_queue = std::max(totals.max_queue, port->max_queue_bytes());
    }
  }
  return totals;
}

int RunOne(const Options& opt, Protocol protocol, const std::string& run_dir,
           Report& rep) {
  ProtocolSuite suite;
  suite.protocol = protocol;
  Network net(opt.seed);
  LinkOptions link_opts;
  link_opts.ecn_threshold_bytes = suite.EcnThresholdBytes(opt.gbps * kGbps);
  BuiltTopology topo = Build(net, opt, link_opts);
  suite.InstallSwitchLogic(net);

  // Flight recorder: arm the ring before any workload traffic, and register
  // the post-mortem path immediately so an abort at *any* later point (audit
  // trip, TFC_CHECK, watchdog stall) still drains the ring to disk. The dump
  // directory must exist before the trip, not after.
  std::string flight_path;
  if (opt.trace_ring > 0) {
    net.flight().Arm(static_cast<size_t>(opt.trace_ring));
    if (run_dir.empty()) {
      flight_path = "flight.tfct";
    } else {
      std::error_code ec;
      std::filesystem::create_directories(run_dir, ec);
      flight_path = run_dir + "/flight.tfct";
    }
    net.ArmFlightPostMortem(flight_path);
  }

  // Forced audit trip (testing): an invariant that holds until the requested
  // sim time, then fails — the next periodic AuditTick aborts through the
  // TFC_CHECK funnel, which dumps the armed flight recorder first.
  std::unique_ptr<ScopedAudit> forced_trip;
  if (opt.force_audit_trip_us > 0) {
    net.EnableAudit(Microseconds(100));
    const TimeNs trip_at =
        Microseconds(static_cast<int64_t>(opt.force_audit_trip_us));
    Network* net_ptr = &net;
    forced_trip = std::make_unique<ScopedAudit>(
        &net.audit(), "tfcsim.forced_trip", [net_ptr, trip_at](Auditor& a) {
          a.Check(net_ptr->scheduler().now() < trip_at,
                  "forced audit trip (--force-audit-trip)");
        });
  }

  // Liveness watchdog (default-on in sweep mode): samples the total bytes
  // every port has transmitted; a workload that is neither done nor moving
  // any bytes for watchdog_s sim-seconds aborts through the TFC_CHECK
  // funnel, which drains any armed flight recorder to flight.tfct first.
  // Ticks are daemon events, so the watchdog never keeps drain-mode Run()
  // alive and never perturbs what the simulation computes.
  std::unique_ptr<LivenessWatchdog> watchdog;
  if (opt.watchdog_s > 0) {
    watchdog = std::make_unique<LivenessWatchdog>(&net.scheduler(),
                                                  Seconds(opt.watchdog_s / 4.0),
                                                  Seconds(opt.watchdog_s));
    watchdog->set_abort_on_stall(true);
  }
  Network* const net_for_watch = &net;
  const auto arm_watchdog = [&watchdog,
                             net_for_watch](LivenessWatchdog::DoneFn done) {
    if (watchdog == nullptr) {
      return;
    }
    watchdog->Watch(
        "workload",
        [net_for_watch] {
          double total = 0;
          for (const auto& node : net_for_watch->nodes()) {
            for (const auto& port : node->ports()) {
              total += static_cast<double>(port->tx_bytes());
            }
          }
          return total;
        },
        std::move(done));
    watchdog->Start();
  };

  // The injector owns daemon timers into the scheduler, so it must die
  // before the Network: declare it after `net`.
  std::unique_ptr<FaultInjector> inject;
  if (!opt.fault_spec.empty()) {
    FaultSpec spec;
    std::string error;
    if (!FaultSpec::Parse(opt.fault_spec, &spec, &error)) {
      rep.Printf("bad --fault-spec: %s\n", error.c_str());
      return 1;
    }
    inject = std::make_unique<FaultInjector>(&net, spec.seed);
    inject->ApplySpec(spec);
  }

  std::ofstream trace_out;
  std::unique_ptr<TextTracer> tracer;
  if (!opt.trace_file.empty()) {
    trace_out.open(opt.trace_file);
    if (!trace_out) {
      rep.Printf("cannot open trace file '%s'\n", opt.trace_file.c_str());
      return 1;
    }
    tracer = std::make_unique<TextTracer>(&trace_out);
    net.set_tracer(tracer.get());
  }

  // Telemetry: watch every component prefix (prefixes re-expand on each
  // tick, so flows and apps registered below are picked up automatically).
  std::unique_ptr<TimeSeriesRecorder> recorder;
  if (!run_dir.empty()) {
    recorder = std::make_unique<TimeSeriesRecorder>(&net.scheduler(), &net.metrics());
    for (const char* prefix : {"port.", "tfc.", "flow.", "sim.", "pool.", "incast."}) {
      recorder->WatchPrefix(prefix);
    }
    recorder->Start(Microseconds(static_cast<int64_t>(opt.telemetry_interval_us)));
  }

  rep.Printf("--- %s | %s | %s ---\n", suite.name(), opt.workload.c_str(),
              opt.topology.c_str());

  // Workload objects are hoisted out of the branches so their registered
  // metrics (FCT histograms, per-flow gauges) are still alive when the
  // telemetry exporter snapshots the registry below.
  std::unique_ptr<IncastApp> incast_app;
  std::unique_ptr<ShuffleApp> shuffle_app;
  std::vector<std::unique_ptr<PersistentFlow>> long_flows;
  std::unique_ptr<BenchmarkTrafficApp> bench_app;

  if (opt.workload == "incast") {
    if (static_cast<size_t>(opt.senders) + 1 > topo.hosts.size()) {
      rep.Printf("topology too small for %d senders\n", opt.senders);
      return 1;
    }
    std::vector<Host*> responders(topo.hosts.begin() + 1,
                                  topo.hosts.begin() + 1 + opt.senders);
    IncastConfig cfg;
    cfg.block_bytes = opt.block_kb * 1024;
    cfg.rounds = opt.rounds;
    incast_app = std::make_unique<IncastApp>(&net, suite, topo.hosts[0],
                                             responders, cfg);
    IncastApp& app = *incast_app;
    app.Start();
    arm_watchdog([app_ptr = &app, rounds = opt.rounds] {
      return app_ptr->rounds_completed() >= rounds;
    });
    // Drain-mode Run(): finishes when the workload does, and recorder
    // daemon ticks never keep it alive (unlike RunUntil with a horizon).
    net.scheduler().Run();
    if (recorder != nullptr) {
      // Per-flow block FCT summary gauges land in summary.json.
      for (size_t i = 0; i < responders.size(); ++i) {
        SampleSet fcts = app.block_fcts(i);
        const std::string prefix = "incast.flow" + std::to_string(i);
        net.metrics().AddGauge(prefix + ".fct_mean_us")->Set(fcts.Mean() * 1e6);
        net.metrics().AddGauge(prefix + ".fct_p99_us")->Set(fcts.Percentile(99) * 1e6);
        net.metrics().AddGauge(prefix + ".fct_max_us")->Set(fcts.Max() * 1e6);
      }
    }
    PortTotals totals = SwitchTotals(net);
    rep.Printf("rounds=%d/%d goodput=%.1fMbps timeouts=%llu maxTO/block=%.2f "
                "drops=%llu maxq=%.1fKB\n",
                app.rounds_completed(), opt.rounds, app.goodput_bps() / 1e6,
                static_cast<unsigned long long>(app.total_timeouts()),
                app.max_timeouts_per_block(),
                static_cast<unsigned long long>(totals.drops),
                static_cast<double>(totals.max_queue) / 1024.0);
  } else if (opt.workload == "shuffle") {
    std::vector<Host*> participants(topo.hosts.begin(),
                                    topo.hosts.begin() + std::min<size_t>(
                                                             topo.hosts.size(),
                                                             static_cast<size_t>(opt.flows)));
    ShuffleConfig cfg;
    cfg.block_bytes = opt.block_kb * 1024;
    shuffle_app = std::make_unique<ShuffleApp>(&net, suite, participants, cfg);
    ShuffleApp& app = *shuffle_app;
    app.Start();
    arm_watchdog([app_ptr = &app] {
      return app_ptr->flows_completed() >= app_ptr->flows_total();
    });
    net.scheduler().Run();
    PortTotals totals = SwitchTotals(net);
    rep.Printf("flows=%zu/%zu elapsed=%.3fs goodput=%.1fMbps timeouts=%llu "
                "drops=%llu maxq=%.1fKB\n",
                app.flows_completed(), app.flows_total(), ToSeconds(app.elapsed()),
                app.goodput_bps() / 1e6,
                static_cast<unsigned long long>(app.total_timeouts()),
                static_cast<unsigned long long>(totals.drops),
                static_cast<double>(totals.max_queue) / 1024.0);
  } else if (opt.workload == "longflows") {
    std::vector<std::unique_ptr<PersistentFlow>>& flows = long_flows;
    for (int i = 1; i <= opt.flows && static_cast<size_t>(i) < topo.hosts.size(); ++i) {
      flows.push_back(std::make_unique<PersistentFlow>(
          suite.MakeSender(&net, topo.hosts[static_cast<size_t>(i)], topo.hosts[0])));
      flows.back()->Start();
    }
    // Persistent flows are never "done": only the duration horizon ends the
    // run, so any sustained silence is a genuine stall.
    arm_watchdog([] { return false; });
    net.scheduler().RunUntil(Seconds(opt.duration_s));
    uint64_t delivered = 0;
    for (auto& f : flows) {
      delivered += f->delivered_bytes();
    }
    PortTotals totals = SwitchTotals(net);
    rep.Printf("flows=%zu goodput=%.1fMbps drops=%llu maxq=%.1fKB\n", flows.size(),
                static_cast<double>(delivered) * 8.0 / opt.duration_s / 1e6,
                static_cast<unsigned long long>(totals.drops),
                static_cast<double>(totals.max_queue) / 1024.0);
  } else if (opt.workload == "benchmark") {
    BenchmarkTrafficConfig cfg;
    cfg.stop_time = Seconds(opt.duration_s);
    bench_app = std::make_unique<BenchmarkTrafficApp>(&net, suite, topo.hosts, cfg);
    BenchmarkTrafficApp& app = *bench_app;
    app.Start();
    arm_watchdog([app_ptr = &app, net_for_watch, stop = Seconds(opt.duration_s)] {
      return net_for_watch->scheduler().now() >= stop &&
             app_ptr->flows_completed() >= app_ptr->flows_started();
    });
    net.scheduler().RunUntil(Seconds(opt.duration_s) + Seconds(30));
    rep.Printf("flows=%llu/%llu query FCT: mean=%.1fus 99th=%.1fus 99.9th=%.1fus "
                "timeouts=%llu\n",
                static_cast<unsigned long long>(app.flows_completed()),
                static_cast<unsigned long long>(app.flows_started()),
                app.fct().query().Mean(), app.fct().query().Percentile(99),
                app.fct().query().Percentile(99.9),
                static_cast<unsigned long long>(app.total_timeouts()));
  } else {
    rep.Printf("unknown workload '%s'\n", opt.workload.c_str());
    return 1;
  }

  if (inject != nullptr) {
    rep.Printf("faults: drops=%llu (rand=%llu burst=%llu link=%llu) dups=%llu "
                "reorders=%llu wipes=%llu link_transitions=%llu downtime=%.3fms\n",
                static_cast<unsigned long long>(inject->drops()),
                static_cast<unsigned long long>(inject->random_drops()),
                static_cast<unsigned long long>(inject->burst_drops()),
                static_cast<unsigned long long>(inject->link_drops()),
                static_cast<unsigned long long>(inject->dups()),
                static_cast<unsigned long long>(inject->reorders()),
                static_cast<unsigned long long>(inject->agent_wipes()),
                static_cast<unsigned long long>(inject->link_transitions()),
                static_cast<double>(inject->link_down_ns()) / 1e6);
  }

  if (tracer != nullptr) {
    rep.Printf("trace: %llu events -> %s\n",
                static_cast<unsigned long long>(tracer->events_written()),
                opt.trace_file.c_str());
    net.set_tracer(nullptr);
  }

  if (opt.trace_ring > 0) {
    // Clean end of run: dump the ring now. The recorder stays armed (and the
    // post-mortem registration stays live) through teardown, so a violation
    // in the final audit pass still overwrites this file with the fuller
    // picture.
    std::string error;
    if (!net.DumpFlight(flight_path, &error)) {
      rep.Printf("flight dump failed: %s\n", error.c_str());
      return 1;
    }
    rep.Printf("flight: %llu event(s) in ring (%llu recorded) -> %s\n",
                static_cast<unsigned long long>(net.flight().size()),
                static_cast<unsigned long long>(net.flight().recorded()),
                flight_path.c_str());
  }

  if (recorder != nullptr) {
    recorder->Stop();
    RunManifest manifest;
    manifest.Set("tool", "tfcsim");
    manifest.Set("workload", opt.workload);
    manifest.Set("protocol", suite.name());
    manifest.Set("topology", opt.topology);
    manifest.SetInt("senders", opt.senders);
    manifest.SetInt("flows", opt.flows);
    manifest.SetInt("block_kb", static_cast<int64_t>(opt.block_kb));
    manifest.SetInt("rounds", opt.rounds);
    manifest.SetDouble("duration_s", opt.duration_s);
    manifest.SetInt("gbps", static_cast<int64_t>(opt.gbps));
    manifest.SetInt("seed", static_cast<int64_t>(opt.seed));
    if (!opt.fault_spec.empty()) {
      manifest.Set("fault_spec", opt.fault_spec);
    }
    manifest.SetInt("telemetry_interval_us",
                    static_cast<int64_t>(opt.telemetry_interval_us));
    manifest.SetDouble("sim_end_s", ToSeconds(net.scheduler().now()));
    std::string error;
    if (!WriteRunDirectory(run_dir, manifest, net.metrics(), recorder.get(),
                           &net.profiler(), &error)) {
      rep.Printf("telemetry export failed: %s\n", error.c_str());
      return 1;
    }
    rep.Printf("telemetry: %zu series, %llu ticks -> %s/\n",
                recorder->SeriesNames().size(),
                static_cast<unsigned long long>(recorder->ticks()), run_dir.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintHelp();
      return 0;
    } else if (ParseFlag(arg, "workload", &opt.workload) ||
               ParseFlag(arg, "protocol", &opt.protocol) ||
               ParseFlag(arg, "topology", &opt.topology) ||
               ParseFlag(arg, "trace", &opt.trace_file) ||
               ParseFlag(arg, "telemetry-dir", &opt.telemetry_dir) ||
               ParseFlag(arg, "convert", &opt.convert_dir) ||
               ParseFlag(arg, "export-trace", &opt.export_trace_dir) ||
               ParseFlag(arg, "fault-spec", &opt.fault_spec)) {
      continue;
    } else if (ParseFlag(arg, "trace-ring", &value)) {
      opt.trace_ring = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "force-audit-trip", &value)) {
      opt.force_audit_trip_us = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "telemetry-interval", &value)) {
      opt.telemetry_interval_us = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "senders", &value)) {
      opt.senders = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "flows", &value)) {
      opt.flows = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "block_kb", &value)) {
      opt.block_kb = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "rounds", &value)) {
      opt.rounds = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "duration", &value)) {
      opt.duration_s = std::atof(value.c_str());
    } else if (ParseFlag(arg, "gbps", &value)) {
      opt.gbps = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "seed", &value)) {
      opt.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(arg, "sweep", &value)) {
      opt.sweep = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "jobs", &value)) {
      opt.jobs = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "retry", &value)) {
      opt.retry = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "run-timeout", &value)) {
      opt.run_timeout_s = std::atof(value.c_str());
    } else if (ParseFlag(arg, "backoff-ms", &value)) {
      opt.backoff_ms = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "trip-run", &value)) {
      opt.trip_run = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "watchdog", &value)) {
      opt.watchdog_s = std::atof(value.c_str());
    } else if (std::strcmp(arg, "--resume") == 0) {
      opt.resume = true;
    } else if (std::strcmp(arg, "--in-process") == 0) {
      opt.in_process = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg);
      return 1;
    }
  }
  if (!opt.convert_dir.empty()) {
    // Offline converter mode: no simulation, just decode the binary spill
    // back to the legacy JSONL for plotting scripts and diffing.
    const std::string tfcb = opt.convert_dir + "/metrics.tfcb";
    const std::string jsonl = opt.convert_dir + "/metrics.jsonl";
    std::string error;
    if (!tfc::ConvertMetricsTfcbToJsonl(tfcb, jsonl, &error)) {
      std::fprintf(stderr, "convert failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("converted %s -> %s\n", tfcb.c_str(), jsonl.c_str());
    return 0;
  }
  if (!opt.export_trace_dir.empty()) {
    // Offline exporter mode: no simulation, just render DIR/flight.tfct into
    // a Perfetto-loadable JSON trace and a per-flow text timeline.
    std::string error;
    if (!tfc::ExportFlightTrace(opt.export_trace_dir, &error)) {
      std::fprintf(stderr, "export-trace failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("exported %s/flight.tfct -> %s/trace.perfetto.json, %s/flows.txt\n",
                opt.export_trace_dir.c_str(), opt.export_trace_dir.c_str(),
                opt.export_trace_dir.c_str());
    return 0;
  }
  if (opt.senders < 1 || opt.flows < 1 || opt.rounds < 1 || opt.gbps < 1 ||
      opt.duration_s <= 0 || opt.telemetry_interval_us < 1 || opt.sweep < 1 ||
      opt.jobs < 0 || opt.retry < 0 || opt.run_timeout_s < 0 ||
      opt.backoff_ms < 1) {
    std::fprintf(stderr, "numeric flags must be positive\n");
    return 1;
  }
  if (opt.sweep > 1 && !opt.trace_file.empty()) {
    std::fprintf(stderr, "--trace and --sweep cannot combine "
                         "(runs would clobber one trace file)\n");
    return 1;
  }
  if (opt.sweep > 1 && opt.trace_ring > 0 && opt.telemetry_dir.empty()) {
    std::fprintf(stderr, "--trace-ring with --sweep needs --telemetry-dir "
                         "(each run dumps flight.tfct into its run directory)\n");
    return 1;
  }
  if (opt.sweep == 1 && (opt.resume || opt.retry > 0 || opt.run_timeout_s > 0 ||
                         opt.trip_run >= 0 || opt.in_process)) {
    std::fprintf(stderr, "--resume/--retry/--run-timeout/--trip-run/--in-process "
                         "require --sweep\n");
    return 1;
  }
  if (opt.in_process && (opt.resume || opt.retry > 0 || opt.run_timeout_s > 0 ||
                         opt.trip_run >= 0)) {
    std::fprintf(stderr, "--in-process is the legacy thread-pool sweep: it cannot "
                         "combine with --resume/--retry/--run-timeout/--trip-run\n");
    return 1;
  }
  if (opt.sweep > 1 && opt.force_audit_trip_us > 0 && opt.in_process) {
    std::fprintf(stderr, "--force-audit-trip with --in-process --sweep would "
                         "abort the whole process; drop --in-process so the trip "
                         "is contained to its own child\n");
    return 1;
  }
  if (opt.resume && opt.telemetry_dir.empty()) {
    std::fprintf(stderr, "--resume needs --telemetry-dir "
                         "(done markers live in the run directories)\n");
    return 1;
  }
  // Watchdog default: on (5 sim-seconds) for sweep runs — a silently hung
  // run should fail loudly, not pin a worker slot — off for interactive
  // single runs. --watchdog=0 disables it everywhere.
  if (opt.watchdog_s < 0) {
    opt.watchdog_s = opt.sweep > 1 ? 5.0 : 0.0;
  }

  std::vector<tfc::Protocol> protocols;
  if (opt.protocol == "all") {
    protocols = {tfc::Protocol::kTfc, tfc::Protocol::kDctcp, tfc::Protocol::kTcp};
  } else if (opt.protocol == "tfc") {
    protocols = {tfc::Protocol::kTfc};
  } else if (opt.protocol == "dctcp") {
    protocols = {tfc::Protocol::kDctcp};
  } else if (opt.protocol == "tcp") {
    protocols = {tfc::Protocol::kTcp};
  } else {
    std::fprintf(stderr, "unknown protocol '%s' (tfc|dctcp|tcp|all)\n",
                 opt.protocol.c_str());
    return 1;
  }
  if (opt.sweep == 1) {
    for (tfc::Protocol p : protocols) {
      // With --protocol=all each protocol gets its own run subdirectory.
      std::string run_dir = opt.telemetry_dir;
      if (!run_dir.empty() && protocols.size() > 1) {
        run_dir += std::string("/") + tfc::ProtocolName(p);
      }
      std::string text;
      Report rep(&text);
      const int rc = RunOne(opt, p, run_dir, rep);
      std::fputs(text.c_str(), stdout);
      if (rc != 0) {
        return rc;
      }
    }
    return 0;
  }

  // Sweep mode: one job per (repetition, protocol), each with its own seed
  // and telemetry subdirectory. The default executor forks every run into
  // its own child process (crash isolation, per-run timeout, retry with
  // backoff, done-marker resume); --in-process keeps the legacy thread-pool
  // runner. Either way, reports print in submission order.
  const int workers = opt.jobs > 0 ? opt.jobs : tfc::SweepRunner::DefaultWorkers();

  struct SweepJob {
    std::string name;
    std::string run_dir;
    uint64_t seed = 0;
    tfc::Protocol protocol = tfc::Protocol::kTfc;
    Options options;
  };
  std::vector<SweepJob> jobs;
  for (int i = 0; i < opt.sweep; ++i) {
    char run_name[32];
    std::snprintf(run_name, sizeof run_name, "run-%04d", i);
    for (tfc::Protocol p : protocols) {
      SweepJob job;
      job.name = run_name;
      if (protocols.size() > 1) {
        job.name += std::string("/") + tfc::ProtocolName(p);
      }
      job.protocol = p;
      job.seed = opt.seed + static_cast<uint64_t>(i);
      if (!opt.telemetry_dir.empty()) {
        job.run_dir = opt.telemetry_dir + "/" + job.name;
      }
      job.options = opt;
      job.options.seed = job.seed;
      // The forced audit trip targets one repetition (--trip-run=K): the
      // others run clean, which is what makes crash isolation observable.
      if (opt.trip_run >= 0 && i != opt.trip_run) {
        job.options.force_audit_trip_us = 0;
      }
      jobs.push_back(std::move(job));
    }
  }

  // Cache-key fingerprint: every flag that influences a run's *output*.
  // Execution-only knobs (--jobs, --retry, --run-timeout, --backoff-ms,
  // --watchdog, --trip-run, --force-audit-trip, --trace-ring) are excluded
  // on purpose: a run that completed under different supervision is still
  // the same run, so `--resume` after a crashed or force-tripped sweep
  // reuses every run that finished clean.
  const auto fingerprint = [&opt](tfc::Protocol p) {
    std::string fp;
    fp += "workload=" + opt.workload;
    fp += "|protocol=" + std::string(tfc::ProtocolName(p));
    fp += "|topology=" + opt.topology;
    fp += "|senders=" + std::to_string(opt.senders);
    fp += "|flows=" + std::to_string(opt.flows);
    fp += "|block_kb=" + std::to_string(opt.block_kb);
    fp += "|rounds=" + std::to_string(opt.rounds);
    fp += "|duration_s=" + std::to_string(opt.duration_s);
    fp += "|gbps=" + std::to_string(opt.gbps);
    fp += "|fault_spec=" + opt.fault_spec;
    fp += "|telemetry_interval_us=" + std::to_string(opt.telemetry_interval_us);
    return fp;
  };

  int exit_code = 0;
  std::vector<tfc::SweepRunRow> rows;
  std::vector<std::string> failed_names;
  if (opt.in_process) {
    tfc::SweepRunner runner(workers);
    for (const SweepJob& job : jobs) {
      const Options job_opt = job.options;
      const tfc::Protocol p = job.protocol;
      const std::string run_dir = job.run_dir;
      runner.Add(job.name, [job_opt, p, run_dir](std::string* report) {
        // Report writes *through* to the result slot, so output buffered
        // before a mid-run throw survives into SweepResult::report.
        Report rep(report);
        return RunOne(job_opt, p, run_dir, rep);
      });
    }
    for (const tfc::SweepResult& r : runner.Run()) {
      std::printf("=== %s (seed %llu, %.3fs) ===\n", r.name.c_str(),
                  static_cast<unsigned long long>(
                      jobs[static_cast<size_t>(r.index)].seed),
                  r.wall_seconds);
      std::fputs(r.report.c_str(), stdout);
      if (r.exit_code != 0) {
        std::printf("(exit code %d)\n", r.exit_code);
        exit_code = exit_code == 0 ? r.exit_code : exit_code;
        failed_names.push_back(r.name);
      }
      tfc::SweepRunRow row;
      row.index = r.index;
      row.name = r.name;
      row.status = r.exit_code == 0 ? "ok" : "failed";
      row.exit_code = r.exit_code;
      row.wall_seconds = r.wall_seconds;
      rows.push_back(std::move(row));
    }
  } else {
    tfc::SupervisorOptions sup;
    sup.workers = workers;
    sup.max_retries = opt.retry;
    sup.timeout_s = opt.run_timeout_s;
    sup.backoff_base_ms = opt.backoff_ms;
    sup.resume = opt.resume;
    tfc::RunSupervisor supervisor(sup);
    for (const SweepJob& job : jobs) {
      const Options job_opt = job.options;
      const tfc::Protocol p = job.protocol;
      const std::string run_dir = job.run_dir;
      std::string cache_key;
      if (!run_dir.empty()) {
        cache_key = tfc::SweepCacheKey(fingerprint(p), job.seed);
      }
      supervisor.Add(job.name, run_dir, cache_key,
                     [job_opt, p, run_dir](std::string* report) {
                       Report rep(report);
                       return RunOne(job_opt, p, run_dir, rep);
                     });
    }
    for (const tfc::SupervisedResult& r : supervisor.Run()) {
      std::string annot;
      if (r.status != tfc::RunStatus::kOk || r.attempts > 1) {
        annot = std::string(" [") + tfc::RunStatusName(r.status);
        if (r.attempts != 1) {
          annot += ", attempts=" + std::to_string(r.attempts);
        }
        annot += "]";
      }
      std::printf("=== %s (seed %llu, %.3fs)%s ===\n", r.name.c_str(),
                  static_cast<unsigned long long>(
                      jobs[static_cast<size_t>(r.index)].seed),
                  r.wall_seconds, annot.c_str());
      std::fputs(r.report.c_str(), stdout);
      if (!r.ok()) {
        std::printf("(exit code %d)\n", r.exit_code);
        const int rc = r.exit_code != 0 ? r.exit_code : 1;
        exit_code = exit_code == 0 ? rc : exit_code;
        failed_names.push_back(r.name);
      }
      tfc::SweepRunRow row;
      row.index = r.index;
      row.name = r.name;
      row.status = tfc::RunStatusName(r.status);
      row.exit_code = r.exit_code;
      row.signal = r.term_signal;
      row.attempts = r.attempts;
      row.wall_seconds = r.wall_seconds;
      row.salvaged = r.salvaged;
      rows.push_back(std::move(row));
    }
  }

  // The merged manifest is written even when runs failed — a degraded sweep
  // still ships a queryable sweep.json naming every failure.
  if (!opt.telemetry_dir.empty()) {
    tfc::RunManifest sweep_manifest;
    sweep_manifest.Set("tool", "tfcsim");
    sweep_manifest.Set("workload", opt.workload);
    sweep_manifest.Set("protocol", opt.protocol);
    sweep_manifest.Set("topology", opt.topology);
    sweep_manifest.SetInt("base_seed", static_cast<int64_t>(opt.seed));
    sweep_manifest.SetInt("sweep", opt.sweep);
    sweep_manifest.SetInt("jobs", workers);
    sweep_manifest.Set("executor", opt.in_process ? "in-process" : "supervised");
    if (!opt.in_process) {
      sweep_manifest.SetInt("retry", opt.retry);
      sweep_manifest.SetDouble("run_timeout_s", opt.run_timeout_s);
      sweep_manifest.SetBool("resume", opt.resume);
    }
    if (!opt.fault_spec.empty()) {
      sweep_manifest.Set("fault_spec", opt.fault_spec);
    }
    std::string error;
    if (!tfc::WriteSweepManifestRows(opt.telemetry_dir + "/sweep.json",
                                     sweep_manifest, rows, &error)) {
      std::fprintf(stderr, "sweep manifest failed: %s\n", error.c_str());
      return exit_code != 0 ? exit_code : 1;
    }
    std::printf("sweep: %d runs x %zu protocol(s) on %d worker(s) -> %s/sweep.json\n",
                opt.sweep, protocols.size(), workers, opt.telemetry_dir.c_str());
  }
  if (!failed_names.empty()) {
    std::string names;
    for (const std::string& n : failed_names) {
      names += (names.empty() ? "" : ", ") + n;
    }
    std::fprintf(stderr, "sweep: %zu run(s) failed: %s\n", failed_names.size(),
                 names.c_str());
  }
  return exit_code;
}
