// Packet-level tracing: watch TFC's control machinery on the wire.
//
//   ./trace_capture [flow_id]
//
// Runs a tiny two-flow TFC scenario with a TextTracer attached and prints
// the first few hundred trace lines — you can see the marked SYN, the
// zero-payload window-acquisition probe, the switch-stamped window coming
// back in the RMA, and the per-round RM marks. Pass a flow id to filter.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "src/net/network.h"
#include "src/net/trace.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"

int main(int argc, char** argv) {
  using namespace tfc;

  Network net(3);
  StarTopology topo = BuildStar(net, 3, LinkOptions(), kGbps, Microseconds(20));
  InstallTfcSwitches(net);

  const int filter = argc > 1 ? std::atoi(argv[1]) : -1;
  std::ostringstream capture;
  TextTracer tracer(&capture, filter);
  net.set_tracer(&tracer);

  TfcSender f1(&net, topo.hosts[1], topo.hosts[0], TfcHostConfig());
  TfcSender f2(&net, topo.hosts[2], topo.hosts[0], TfcHostConfig());
  f1.Write(8 * kMssBytes);
  f1.Close();
  f2.Write(8 * kMssBytes);
  f2.Close();
  f1.Start();
  net.scheduler().ScheduleAt(Microseconds(400), [&] { f2.Start(); });
  net.scheduler().Run();

  // Print the first 120 lines; the full capture can be large.
  std::istringstream lines(capture.str());
  std::string line;
  int printed = 0;
  while (printed < 120 && std::getline(lines, line)) {
    std::puts(line.c_str());
    ++printed;
  }
  std::printf("... (%llu events total; legend: + enqueue, - transmit, d drop, "
              "r deliver)\n",
              static_cast<unsigned long long>(tracer.events_written()));
  std::printf("flow ids: f1=%d f2=%d — rerun with an id to follow one flow\n",
              f1.flow_id(), f2.flow_id());
  return 0;
}
