// Storm-like on-off traffic: why effective-flow counting matters.
//
//   ./storm_onoff
//
// Ten long-lived connections share one 1 Gbps port, but only a changing
// subset is active at any time (the others are "silent flows" — open
// connections with nothing to send, exactly the Storm executor pattern the
// paper motivates in Sec. 2). The switch's measured number of effective
// flows E tracks the active subset, so the active flows always share the
// full link instead of being throttled to 1/10 each.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/tfc/endpoints.h"
#include "src/tfc/switch_port.h"
#include "src/topo/topologies.h"
#include "src/workload/persistent_flow.h"

int main() {
  using namespace tfc;
  constexpr int kFlows = 10;

  Network net(11);
  StarTopology topo = BuildStar(net, kFlows + 1);
  Host* receiver = topo.hosts[0];
  InstallTfcSwitches(net);

  std::vector<std::unique_ptr<PersistentFlow>> flows;
  for (int i = 1; i <= kFlows; ++i) {
    flows.push_back(std::make_unique<PersistentFlow>(
        std::make_unique<TfcSender>(&net, topo.hosts[static_cast<size_t>(i)],
                                    receiver, TfcHostConfig())));
    flows.back()->Start();
  }

  Port* bottleneck = Network::FindPort(topo.sw, receiver);
  TfcPortAgent* agent = TfcPortAgent::FromPort(bottleneck);

  // Average E over each phase via the slot callback.
  double e_sum = 0;
  int e_count = 0;
  agent->on_slot = [&](const TfcPortAgent::SlotInfo& info) {
    e_sum += info.effective_flows;
    ++e_count;
  };

  std::printf("%10s %8s %12s %14s %10s\n", "phase", "active", "measured_E",
              "goodput(Mbps)", "queue(B)");
  const int schedule[] = {10, 6, 3, 1, 5, 10};
  uint64_t last_total = 0;
  TimeNs t = Milliseconds(50);
  net.scheduler().RunUntil(t);  // warm up
  for (uint64_t d = 0; auto& f : flows) {
    d += f->delivered_bytes();
    last_total = d;
  }
  int phase = 0;
  for (int active : schedule) {
    for (int i = 0; i < kFlows; ++i) {
      flows[static_cast<size_t>(i)]->SetActive(i < active);
    }
    e_sum = 0;
    e_count = 0;
    t += Milliseconds(100);
    net.scheduler().RunUntil(t);
    uint64_t total = 0;
    for (auto& f : flows) {
      total += f->delivered_bytes();
    }
    std::printf("%10d %8d %12.2f %14.1f %10llu\n", ++phase, active,
                e_count > 0 ? e_sum / e_count : 0.0,
                static_cast<double>(total - last_total) * 8.0 / 0.1 / 1e6,
                static_cast<unsigned long long>(bottleneck->queue_bytes().count()));
    last_total = total;
  }

  std::printf("\nE follows the active subset and goodput stays at line rate\n"
              "whether 1 or 10 of the connections are talking. drops=%llu\n",
              static_cast<unsigned long long>(bottleneck->drops()));
  return 0;
}
