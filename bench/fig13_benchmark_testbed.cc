// Fig. 13 — Flow completion times under realistic benchmark traffic
// (testbed).
//
// Setup (paper Sec. 6.1.2): web-search-style traffic on the 9-host testbed —
// 2 KB query responses in a fan-in pattern plus heavy-tailed background
// flows, generated from the DCTCP paper's distributions (approximated here;
// see DESIGN.md).
//
// Paper result: query-flow FCT under TFC is far below DCTCP and TCP (TCP's
// 99.99th hits the 200 ms RTO); background flows under 10 KB finish faster
// with TFC, larger ones slightly slower (query traffic takes bandwidth).

#include "bench/common.h"
#include "src/topo/topologies.h"
#include "src/workload/benchmark_traffic.h"

namespace {

void RunOnce(tfc::Protocol protocol, bool quick) {
  using namespace tfc;
  ProtocolSuite suite = bench::MakeSuite(protocol);
  Network net(131);
  LinkOptions opts;
  opts.ecn_threshold_bytes = suite.EcnThresholdBytes(kGbps);
  TestbedTopology topo = BuildTestbed(net, opts);
  suite.InstallSwitchLogic(net);

  BenchmarkTrafficConfig cfg;
  cfg.query_interarrival = Milliseconds(2);
  cfg.background_interarrival = Milliseconds(4);
  cfg.stop_time = quick ? Milliseconds(300) : Seconds(3.0);
  BenchmarkTrafficApp app(&net, suite, topo.hosts, cfg);
  app.Start();
  net.scheduler().RunUntil(cfg.stop_time + Seconds(30.0));  // drain stragglers

  std::printf("\n--- %s: %llu flows (%llu completed), %llu timeouts ---\n",
              suite.name(), static_cast<unsigned long long>(app.flows_started()),
              static_cast<unsigned long long>(app.flows_completed()),
              static_cast<unsigned long long>(app.total_timeouts()));
  bench::PrintTailRow("query", app.fct().query());
  std::printf("background flows, 99.9th percentile FCT by size bin:\n");
  for (int bin = 0; bin < kNumSizeBins; ++bin) {
    SampleSet& s = app.fct().background(bin);
    if (s.empty()) {
      std::printf("  %-10s (no samples)\n", kSizeBinLabels[static_cast<size_t>(bin)]);
    } else {
      std::printf("  %-10s n=%-5zu mean=%10.1fus  99.9th=%12.1fus\n",
                  kSizeBinLabels[static_cast<size_t>(bin)], s.count(), s.Mean(),
                  s.Percentile(99.9));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfc;
  const bool quick = bench::QuickMode(argc, argv);
  bench::Header("Fig. 13 - FCT under benchmark (web-search) traffic, testbed",
                "query FCT: TFC << DCTCP << TCP (tails hit the 200 ms RTO); "
                "TFC slightly slower only for large background flows");
  for (Protocol p : bench::AllProtocols()) {
    RunOnce(p, quick);
  }
  return 0;
}
