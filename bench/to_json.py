#!/usr/bin/env python3
"""Convert google-benchmark JSON output into the BENCH trajectory format.

Usage: to_json.py <benchmark_out.json> <BENCH_core.json>

The output is a flat {bench_name: {"items_per_sec": float, "ns_per_op": float}}
map, one entry per benchmark, so successive PRs can diff a stable, minimal
schema. With repetitions, the kept entry is the repetition with the lowest
cpu_time (the minimum is the robust estimator under one-sided machine
noise; run_bench.sh interleaves the repetitions so drift is shared across
families); aggregate rows are ignored.
"""

import json
import sys

_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def convert(raw):
    # Per benchmark, the repetition with the lowest cpu_time wins.
    best = {}
    for r in raw["benchmarks"]:
        if r.get("run_type") == "aggregate":
            continue
        name = r.get("run_name", r["name"])
        if name not in best or r["cpu_time"] < best[name]["cpu_time"]:
            best[name] = r
    out = {}
    for name, r in best.items():
        entry = {}
        if "items_per_second" in r:
            entry["items_per_sec"] = r["items_per_second"]
        entry["ns_per_op"] = r["real_time"] * _TIME_UNIT_NS[r.get("time_unit", "ns")]
        # Carry user counters (pool stats etc.) through for the record.
        for key, value in r.items():
            if key.startswith("pool_"):
                entry[key] = value
        out[name] = entry
    return out


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        raw = json.load(f)
    with open(sys.argv[2], "w") as f:
        json.dump(convert(raw), f, indent=2, sort_keys=True)
        f.write("\n")


if __name__ == "__main__":
    main()
